(* Simulation kernel: heap, engine, worker pool, rng, zipf, stats, bits,
   metrics. *)

let test_heap_sorted () =
  let h : int Sim.Heap.t = Sim.Heap.create () in
  let rng = Sim.Rng.create 1 in
  let values = List.init 500 (fun _ -> Sim.Rng.int rng 1000) in
  List.iter (fun v -> Sim.Heap.add h ~priority:v v) values;
  let rec drain last acc =
    match Sim.Heap.pop h with
    | None -> List.rev acc
    | Some (p, v) ->
        Alcotest.(check bool) "non-decreasing" true (p >= last);
        Alcotest.(check int) "priority = value" p v;
        drain p (v :: acc)
  in
  let drained = drain min_int [] in
  Alcotest.(check int) "all popped" 500 (List.length drained);
  Alcotest.(check (list int)) "sorted multiset"
    (List.sort compare values) drained

let test_heap_fifo_ties () =
  let h : string Sim.Heap.t = Sim.Heap.create () in
  List.iter (fun s -> Sim.Heap.add h ~priority:7 s) [ "a"; "b"; "c"; "d" ];
  let order =
    List.init 4 (fun _ -> match Sim.Heap.pop h with
      | Some (_, v) -> v
      | None -> Alcotest.fail "heap empty")
  in
  Alcotest.(check (list string)) "FIFO among equal priorities"
    [ "a"; "b"; "c"; "d" ] order

let test_heap_interleaved () =
  let h : int Sim.Heap.t = Sim.Heap.create () in
  Sim.Heap.add h ~priority:5 5;
  Sim.Heap.add h ~priority:1 1;
  Alcotest.(check (option int)) "peek" (Some 1) (Sim.Heap.peek_priority h);
  (match Sim.Heap.pop h with
  | Some (1, 1) -> ()
  | _ -> Alcotest.fail "expected 1");
  Sim.Heap.add h ~priority:0 0;
  (match Sim.Heap.pop h with
  | Some (0, 0) -> ()
  | _ -> Alcotest.fail "expected 0");
  Alcotest.(check int) "one left" 1 (Sim.Heap.length h)

let test_engine_ordering () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.schedule e ~at:30 (fun () -> log := 30 :: !log);
  Sim.Engine.schedule e ~at:10 (fun () -> log := 10 :: !log);
  Sim.Engine.schedule e ~at:20 (fun () ->
      log := 20 :: !log;
      (* events scheduled during execution still honour time order *)
      Sim.Engine.schedule e ~at:25 (fun () -> log := 25 :: !log));
  Sim.Engine.run e;
  Alcotest.(check (list int)) "time order" [ 10; 20; 25; 30 ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 30 (Sim.Engine.now e)

let test_engine_past_rejected () =
  let e = Sim.Engine.create () in
  Sim.Engine.schedule e ~at:10 (fun () ->
      Alcotest.check_raises "past" (Invalid_argument
        "Engine.schedule: at=5 is in the past (now=10)")
        (fun () -> Sim.Engine.schedule e ~at:5 (fun () -> ())));
  Sim.Engine.run e

let test_engine_horizon () =
  let e = Sim.Engine.create () in
  let fired = ref [] in
  List.iter
    (fun t -> Sim.Engine.schedule e ~at:t (fun () -> fired := t :: !fired))
    [ 10; 20; 30; 40 ];
  Sim.Engine.run ~until:25 e;
  Alcotest.(check (list int)) "fired up to horizon" [ 10; 20 ] (List.rev !fired);
  Alcotest.(check int) "clock clamped to horizon" 25 (Sim.Engine.now e);
  Sim.Engine.run e;
  Alcotest.(check (list int)) "resumes" [ 10; 20; 30; 40 ] (List.rev !fired)

let test_engine_stop () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Sim.Engine.schedule e ~at:i (fun () ->
        incr count;
        if !count = 3 then Sim.Engine.stop e)
  done;
  Sim.Engine.run e;
  Alcotest.(check int) "stopped after 3" 3 !count;
  Sim.Engine.run e;
  Alcotest.(check int) "resumed the rest" 10 !count

let test_pool_respects_width () =
  let e = Sim.Engine.create () in
  let p = Sim.Worker_pool.create e ~workers:2 in
  let finish = ref [] in
  for i = 1 to 4 do
    Sim.Worker_pool.submit p ~cost:10 (fun () ->
        finish := (i, Sim.Engine.now e) :: !finish)
  done;
  Alcotest.(check int) "two run, two queue" 2 (Sim.Worker_pool.queue_length p);
  Sim.Engine.run e;
  let times = List.rev_map snd !finish in
  Alcotest.(check (list int)) "two waves of two" [ 10; 10; 20; 20 ]
    (List.sort compare times);
  Alcotest.(check int) "busy time = 4 jobs x 10" 40
    (Sim.Worker_pool.busy_time p);
  Alcotest.(check int) "jobs completed" 4 (Sim.Worker_pool.jobs_completed p)

let test_pool_priority () =
  let e = Sim.Engine.create () in
  let p = Sim.Worker_pool.create e ~workers:1 in
  let order = ref [] in
  Sim.Worker_pool.submit p ~cost:5 (fun () -> order := "first" :: !order);
  Sim.Worker_pool.submit p ~cost:5 (fun () -> order := "normal" :: !order);
  Sim.Worker_pool.submit_priority p ~cost:5 (fun () ->
      order := "prio" :: !order);
  Sim.Engine.run e;
  Alcotest.(check (list string)) "priority jumps the queue"
    [ "first"; "prio"; "normal" ] (List.rev !order)

let test_rng_determinism () =
  let a = Sim.Rng.create 42 and b = Sim.Rng.create 42 in
  let xs = List.init 100 (fun _ -> Sim.Rng.int a 1_000_000) in
  let ys = List.init 100 (fun _ -> Sim.Rng.int b 1_000_000) in
  Alcotest.(check (list int)) "same seed same stream" xs ys

let test_rng_split_independent () =
  let a = Sim.Rng.create 42 in
  let child = Sim.Rng.split a in
  let xs = List.init 50 (fun _ -> Sim.Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Sim.Rng.int child 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_bounds () =
  let rng = Sim.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Sim.Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v;
    let u = Sim.Rng.uniform_int rng ~lo:(-5) ~hi:5 in
    if u < -5 || u > 5 then Alcotest.failf "uniform out of range: %d" u;
    let f = Sim.Rng.float rng 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.failf "float out of range: %f" f
  done

let test_rng_bernoulli_mean () =
  let rng = Sim.Rng.create 13 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Sim.Rng.bernoulli rng 0.3 then incr hits
  done;
  let p = float_of_int !hits /. 10_000.0 in
  Alcotest.(check bool) "within 3 sigma of 0.3" true (abs_float (p -. 0.3) < 0.015)

let test_zipf_popularity () =
  let z = Sim.Zipf.create ~n:1000 ~theta:0.99 in
  let rng = Sim.Rng.create 5 in
  let counts = Array.make 1000 0 in
  for _ = 1 to 100_000 do
    let r = Sim.Zipf.sample z rng in
    if r < 0 || r >= 1000 then Alcotest.failf "rank out of range: %d" r;
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 0 much more popular than rank 500" true
    (counts.(0) > 10 * (counts.(500) + 1))

let test_stats_summary () =
  let s = Sim.Stats.Summary.create () in
  List.iter (Sim.Stats.Summary.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Sim.Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "variance" 2.5 (Sim.Stats.Summary.variance s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Sim.Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Sim.Stats.Summary.max s);
  Alcotest.(check (float 1e-9)) "total" 15.0 (Sim.Stats.Summary.total s)

let test_stats_summary_merge () =
  let a = Sim.Stats.Summary.create () and b = Sim.Stats.Summary.create () in
  let whole = Sim.Stats.Summary.create () in
  let rng = Sim.Rng.create 3 in
  for i = 1 to 200 do
    let x = Sim.Rng.float rng 100.0 in
    Sim.Stats.Summary.add (if i mod 2 = 0 then a else b) x;
    Sim.Stats.Summary.add whole x
  done;
  let m = Sim.Stats.Summary.merge a b in
  Alcotest.(check (float 1e-6)) "merged mean"
    (Sim.Stats.Summary.mean whole) (Sim.Stats.Summary.mean m);
  Alcotest.(check (float 1e-4)) "merged variance"
    (Sim.Stats.Summary.variance whole) (Sim.Stats.Summary.variance m)

let test_histogram_percentiles () =
  let h = Sim.Stats.Histogram.create () in
  for i = 1 to 10_000 do
    Sim.Stats.Histogram.add h i
  done;
  let check_pct p expected =
    let v = Sim.Stats.Histogram.percentile h p in
    let err = abs_float (float_of_int v /. expected -. 1.0) in
    if err > 0.08 then
      Alcotest.failf "p%.0f: got %d, want ~%.0f (err %.3f)" p v expected err
  in
  check_pct 50.0 5000.0;
  check_pct 90.0 9000.0;
  check_pct 99.0 9900.0;
  Alcotest.(check int) "min exact" 1 (Sim.Stats.Histogram.min h);
  Alcotest.(check int) "max exact" 10_000 (Sim.Stats.Histogram.max h);
  Alcotest.(check (float 1.0)) "mean" 5000.5 (Sim.Stats.Histogram.mean h)

let test_histogram_empty_and_negative () =
  let h = Sim.Stats.Histogram.create () in
  Alcotest.(check int) "empty percentile" 0
    (Sim.Stats.Histogram.percentile h 99.0);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Histogram.add: negative sample") (fun () ->
      Sim.Stats.Histogram.add h (-1))

let test_histogram_percentile_edges () =
  (* Single sample: every percentile is that sample. *)
  let h = Sim.Stats.Histogram.create () in
  Sim.Stats.Histogram.add h 42;
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "single sample p%.1f" p)
        42
        (Sim.Stats.Histogram.percentile h p))
    [ 0.1; 50.0; 99.9; 100.0 ];
  (* All samples in one bucket: percentiles clamp to the recorded range. *)
  let h = Sim.Stats.Histogram.create () in
  for _ = 1 to 100 do
    Sim.Stats.Histogram.add h 1_000
  done;
  Alcotest.(check int) "same-bucket p50" 1_000
    (Sim.Stats.Histogram.percentile h 50.0);
  Alcotest.(check int) "same-bucket p100" 1_000
    (Sim.Stats.Histogram.percentile h 100.0);
  (* p=100 must equal the exact max even when the top bucket is shared. *)
  let h = Sim.Stats.Histogram.create () in
  for i = 1 to 1_000 do
    Sim.Stats.Histogram.add h i
  done;
  Alcotest.(check int) "p100 is max" 1_000
    (Sim.Stats.Histogram.percentile h 100.0);
  Alcotest.check_raises "p0 rejected"
    (Invalid_argument "Histogram.percentile") (fun () ->
      ignore (Sim.Stats.Histogram.percentile h 0.0));
  Alcotest.check_raises "p>100 rejected"
    (Invalid_argument "Histogram.percentile") (fun () ->
      ignore (Sim.Stats.Histogram.percentile h 100.5))

let test_metrics_gauges () =
  let m = Sim.Metrics.create () in
  Alcotest.(check (float 0.0)) "unset gauge" 0.0
    (Sim.Metrics.gauge_value m "g");
  Sim.Metrics.set_gauge m "g" 3.5;
  Sim.Metrics.set_gauge m "g" 4.5;
  Alcotest.(check (float 0.0)) "last write wins" 4.5
    (Sim.Metrics.gauge_value m "g");
  let h = Sim.Metrics.gauge m "g" in
  h := 9.0;
  Alcotest.(check (float 0.0)) "handle aliases table" 9.0
    (Sim.Metrics.gauge_value m "g");
  Sim.Metrics.set_gauge m "a" 1.0;
  Alcotest.(check bool) "sorted listing" true
    (Sim.Metrics.gauges m = [ ("a", 1.0); ("g", 9.0) ]);
  Sim.Metrics.reset m;
  Alcotest.(check (float 0.0)) "reset zeroes" 0.0
    (Sim.Metrics.gauge_value m "g");
  Alcotest.(check (float 0.0)) "handles survive reset" 0.0 !h;
  h := 2.0;
  Alcotest.(check (float 0.0)) "handle still live" 2.0
    (Sim.Metrics.gauge_value m "g")

let test_bits () =
  Alcotest.(check int) "clz 1" 62 (Sim.Bits.count_leading_zeros 1);
  Alcotest.(check int) "clz 0" 63 (Sim.Bits.count_leading_zeros 0);
  Alcotest.(check int) "clz near max" 1 (Sim.Bits.count_leading_zeros (1 lsl 61));
  List.iter
    (fun (v, want) ->
      Alcotest.(check int) (Printf.sprintf "ceil_pow2 %d" v) want
        (Sim.Bits.ceil_pow2 v))
    [ (1, 1); (2, 2); (3, 4); (4, 4); (5, 8); (1023, 1024); (1024, 1024) ]

let test_metrics () =
  let m = Sim.Metrics.create () in
  Sim.Metrics.incr m "a";
  Sim.Metrics.add m "a" 4;
  Sim.Metrics.incr m "b";
  Alcotest.(check int) "a" 5 (Sim.Metrics.get m "a");
  Alcotest.(check int) "absent" 0 (Sim.Metrics.get m "zzz");
  Sim.Metrics.record_latency m "lat" 100;
  Sim.Metrics.record_latency m "lat" 300;
  (match Sim.Metrics.latency m "lat" with
  | Some h -> Alcotest.(check int) "count" 2 (Sim.Stats.Histogram.count h)
  | None -> Alcotest.fail "histogram missing");
  Sim.Metrics.reset m;
  Alcotest.(check int) "reset" 0 (Sim.Metrics.get m "a");
  (match Sim.Metrics.latency m "lat" with
  | Some h -> Alcotest.(check int) "hist reset" 0 (Sim.Stats.Histogram.count h)
  | None -> Alcotest.fail "histogram should survive reset")

(* qcheck: heap pops a sorted permutation of its input. *)
let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap pops sorted permutation" ~count:200
    QCheck2.Gen.(list_size (int_bound 200) (int_bound 10_000))
    (fun xs ->
      let h : int Sim.Heap.t = Sim.Heap.create () in
      List.iter (fun v -> Sim.Heap.add h ~priority:v v) xs;
      let rec drain acc =
        match Sim.Heap.pop h with
        | None -> List.rev acc
        | Some (_, v) -> drain (v :: acc)
      in
      drain [] = List.sort compare xs)

(* qcheck: histogram percentile within bucket resolution of exact. *)
let prop_histogram_accuracy =
  QCheck2.Test.make ~name:"histogram percentile ~ exact" ~count:100
    QCheck2.Gen.(list_size (int_range 1 500) (int_range 0 1_000_000))
    (fun xs ->
      let h = Sim.Stats.Histogram.create () in
      List.iter (Sim.Stats.Histogram.add h) xs;
      let sorted = Array.of_list (List.sort compare xs) in
      let n = Array.length sorted in
      List.for_all
        (fun p ->
          (* Same rank convention as the histogram: ceil(p% of count). *)
          let rank = ((n * p) + 99) / 100 in
          let exact = sorted.(Stdlib.max 0 (rank - 1)) in
          let approx = Sim.Stats.Histogram.percentile h (float_of_int p) in
          (* within one sub-bucket (1/16) or tiny absolute slack *)
          abs (approx - exact) <= (exact / 8) + 16)
        [ 50; 90; 99 ])

let suite =
  [ Alcotest.test_case "heap sorted drain" `Quick test_heap_sorted;
    Alcotest.test_case "heap fifo ties" `Quick test_heap_fifo_ties;
    Alcotest.test_case "heap interleaved" `Quick test_heap_interleaved;
    Alcotest.test_case "engine ordering" `Quick test_engine_ordering;
    Alcotest.test_case "engine rejects past" `Quick test_engine_past_rejected;
    Alcotest.test_case "engine horizon+resume" `Quick test_engine_horizon;
    Alcotest.test_case "engine stop/resume" `Quick test_engine_stop;
    Alcotest.test_case "pool width" `Quick test_pool_respects_width;
    Alcotest.test_case "pool priority" `Quick test_pool_priority;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng bernoulli" `Quick test_rng_bernoulli_mean;
    Alcotest.test_case "zipf popularity" `Quick test_zipf_popularity;
    Alcotest.test_case "stats summary" `Quick test_stats_summary;
    Alcotest.test_case "stats merge" `Quick test_stats_summary_merge;
    Alcotest.test_case "histogram percentiles" `Quick
      test_histogram_percentiles;
    Alcotest.test_case "histogram edge cases" `Quick
      test_histogram_empty_and_negative;
    Alcotest.test_case "histogram percentile edges" `Quick
      test_histogram_percentile_edges;
    Alcotest.test_case "metrics gauges" `Quick test_metrics_gauges;
    Alcotest.test_case "bits" `Quick test_bits;
    Alcotest.test_case "metrics" `Quick test_metrics;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    QCheck_alcotest.to_alcotest prop_histogram_accuracy ]
