(* Workload-level integration tests: TPC-C invariants on both engines,
   Scaled TPC-C, YCSB.  Workloads produce engine-neutral Kernel.Txn
   values; these tests submit them through the ENGINE adapters. *)

module Value = Functor_cc.Value
module Tpcc = Workload.Tpcc
module Stpcc = Workload.Scaled_tpcc
module Ycsb = Workload.Ycsb

let n = 2

let small_tpcc_cfg =
  { (Tpcc.default_cfg ~n_servers:n ~warehouses_per_host:1) with
    Tpcc.items = 50;
    customers = 10;
    invalid_item_fraction = 0.1 (* exaggerate to exercise aborts *) }

(* ---- ALOHA TPC-C --------------------------------------------------------- *)

(* Alohadb.Engine's cluster is the native cluster, so native inspection
   (scans below) composes with the adapter's submit path. *)
let aloha_cluster load_workload =
  let c = Alohadb.Engine.create (Kernel.Params.make ~n_servers:n ()) in
  load_workload c;
  Alohadb.Engine.start c;
  c

let run_aloha_tpcc ~payments ~neworders =
  let c =
    aloha_cluster (fun c ->
        Tpcc.register ~register:(Alohadb.Engine.register c);
        Tpcc.load small_tpcc_cfg ~put:(Alohadb.Engine.load c))
  in
  let gen = Tpcc.generator small_tpcc_cfg ~n_servers:n ~seed:5 in
  let committed_no = ref 0 and aborted_no = ref 0 in
  let committed_pay = ref 0 and pay_total = ref 0 in
  let outstanding = ref 0 in
  let sim = Alohadb.Cluster.sim c in
  for i = 0 to neworders - 1 do
    incr outstanding;
    let fe = i mod n in
    Sim.Engine.schedule sim ~at:(1_000 + (i * 37)) (fun () ->
        Alohadb.Engine.submit c ~fe (Tpcc.gen_neworder gen ~fe)
          ~k:(fun reply ->
            decr outstanding;
            match reply with
            | Kernel.Txn.Ok -> incr committed_no
            | Kernel.Txn.Aborted _ -> incr aborted_no))
  done;
  for i = 0 to payments - 1 do
    incr outstanding;
    let fe = i mod n in
    Sim.Engine.schedule sim ~at:(2_000 + (i * 41)) (fun () ->
        (* The payment amount h appears as Add h on both the wytd and dytd
           keys; extract it so the invariants can track the total. *)
        let txn = Tpcc.gen_payment gen ~fe in
        let amount =
          List.fold_left
            (fun acc (_, op) ->
              match op with Kernel.Txn.Add h -> acc + h | _ -> acc)
            0
            (Kernel.Txn.functor_form txn).Kernel.Txn.writes
          / 2 (* wytd and dytd both add h *)
        in
        Alohadb.Engine.submit c ~fe txn ~k:(fun reply ->
            decr outstanding;
            match reply with
            | Kernel.Txn.Ok ->
                incr committed_pay;
                pay_total := !pay_total + amount
            | Kernel.Txn.Aborted _ -> ()))
  done;
  Sim.Engine.run ~until:600_000 sim;
  Alcotest.(check int) "all resolved" 0 !outstanding;
  (c, !committed_no, !aborted_no, !committed_pay, !pay_total)

(* Enumerate a partition's committed latest values by key prefix. *)
let aloha_scan c ~prefix =
  let acc = ref [] in
  for i = 0 to Alohadb.Cluster.n_servers c - 1 do
    let engine = Alohadb.Server.engine (Alohadb.Cluster.server c i) in
    let table = Functor_cc.Compute_engine.table engine in
    List.iter
      (fun key ->
        let name = Mvstore.Key.name key in
        if String.length name >= String.length prefix
           && String.sub name 0 (String.length prefix) = prefix
        then begin
          let got = ref None in
          Functor_cc.Compute_engine.get engine ~key ~version:max_int
            (fun v -> got := Some v);
          match !got with
          | Some (Some v) -> acc := (name, v) :: !acc
          | Some None -> ()
          | None -> Alcotest.fail "scan read did not resolve"
        end)
      (Mvstore.Table.keys table)
  done;
  !acc

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_aloha_tpcc_neworder_invariants () =
  let c, committed, aborted, _, _ = run_aloha_tpcc ~payments:0 ~neworders:120 in
  Alcotest.(check int) "all accounted" 120 (committed + aborted);
  Alcotest.(check bool) "some aborted (10% invalid items)" true (aborted > 0);
  Alcotest.(check bool) "most committed" true (committed > aborted);
  (* Order-id consistency: sum over districts of (next_o_id - 1) equals
     the number of committed NewOrders, and order/neworder rows match. *)
  let dnoid_sum =
    aloha_scan c ~prefix:"w:"
    |> List.filter (fun (k, _) -> contains_sub k ":dnoid:")
    |> List.fold_left (fun acc (_, v) -> acc + (Value.to_int v - 1)) 0
  in
  Alcotest.(check int) "district counters = committed orders" committed
    dnoid_sum;
  let orders =
    aloha_scan c ~prefix:"w:"
    |> List.filter (fun (k, _) -> contains_sub k ":order:")
  in
  Alcotest.(check int) "order rows = committed orders" committed
    (List.length orders);
  let neworders =
    aloha_scan c ~prefix:"w:"
    |> List.filter (fun (k, _) -> contains_sub k ":no:")
  in
  Alcotest.(check int) "neworder rows = committed orders" committed
    (List.length neworders);
  (* Order lines: every committed order has exactly ol_cnt line rows. *)
  let ol_count =
    aloha_scan c ~prefix:"w:"
    |> List.filter (fun (k, _) -> contains_sub k ":ol:")
    |> List.length
  in
  let ol_expected =
    List.fold_left (fun acc (_, row) -> acc + Value.to_int (Value.nth row 1))
      0 orders
  in
  Alcotest.(check int) "orderline rows match ol_cnt" ol_expected ol_count;
  (* Stock: order_cnt total equals total order lines. *)
  let stock_order_cnt =
    aloha_scan c ~prefix:"w:"
    |> List.filter (fun (k, _) -> contains_sub k ":stock:")
    |> List.fold_left (fun acc (_, row) -> acc + Value.to_int (Value.nth row 2)) 0
  in
  Alcotest.(check int) "stock order_cnt = order lines" ol_expected
    stock_order_cnt

let test_aloha_tpcc_payment_invariants () =
  let c, _, _, committed_pay, pay_total =
    run_aloha_tpcc ~payments:100 ~neworders:0
  in
  Alcotest.(check int) "payments all commit" 100 committed_pay;
  let wytd_sum =
    aloha_scan c ~prefix:"w:"
    |> List.filter (fun (k, _) -> contains_sub k ":wytd")
    |> List.fold_left (fun acc (_, v) -> acc + Value.to_int v) 0
  in
  Alcotest.(check int) "sum w_ytd = sum of payments" pay_total wytd_sum;
  let dytd_sum =
    aloha_scan c ~prefix:"w:"
    |> List.filter (fun (k, _) -> contains_sub k ":dytd:")
    |> List.fold_left (fun acc (_, v) -> acc + Value.to_int v) 0
  in
  Alcotest.(check int) "sum d_ytd = sum of payments" pay_total dytd_sum;
  (* Customer balances: sum of balances = -pay_total; payment counts = 100. *)
  let custs =
    aloha_scan c ~prefix:"w:"
    |> List.filter (fun (k, _) -> contains_sub k ":cust:")
  in
  let bal = List.fold_left (fun a (_, r) -> a + Value.to_int (Value.nth r 0)) 0 custs in
  let cnt = List.fold_left (fun a (_, r) -> a + Value.to_int (Value.nth r 2)) 0 custs in
  Alcotest.(check int) "balances sum" (-pay_total) bal;
  Alcotest.(check int) "payment counts" 100 cnt

(* ---- Calvin TPC-C --------------------------------------------------------- *)

let test_calvin_tpcc_neworder_invariants () =
  let c = Calvin.Engine.create (Kernel.Params.make ~n_servers:n ()) in
  Tpcc.register ~register:(Calvin.Engine.register c);
  Tpcc.load small_tpcc_cfg ~put:(Calvin.Engine.load c);
  Calvin.Engine.start c;
  let gen = Tpcc.generator small_tpcc_cfg ~n_servers:n ~seed:5 in
  let committed = ref 0 in
  for i = 0 to 79 do
    Calvin.Engine.submit c ~fe:(i mod n)
      (Tpcc.gen_neworder gen ~fe:(i mod n))
      ~k:(fun _ -> incr committed)
  done;
  Sim.Engine.run ~until:600_000 (Calvin.Engine.sim c);
  Alcotest.(check int) "all committed (Calvin cannot abort)" 80 !committed;
  (* District counters advanced once per order on each home district
     (the static facet pre-assigns the order ids the counter tracks). *)
  let dnoid_sum = ref 0 in
  for w = 0 to small_tpcc_cfg.Tpcc.warehouses - 1 do
    for d = 0 to small_tpcc_cfg.Tpcc.districts - 1 do
      match Calvin.Engine.read_committed c (Tpcc.dnoid_key ~w ~d) with
      | Some v -> dnoid_sum := !dnoid_sum + (Value.to_int v - 1)
      | None -> ()
    done
  done;
  Alcotest.(check int) "district counters = orders" 80 !dnoid_sum

(* ---- Scaled TPC-C ---------------------------------------------------------- *)

let test_stpcc_aloha_basic () =
  let cfg =
    { (Stpcc.default_cfg ~n_servers:n ~districts_per_host:2) with
      Stpcc.items = 40; customers = 10; invalid_item_fraction = 0.0 }
  in
  let c =
    aloha_cluster (fun c ->
        Stpcc.register ~register:(Alohadb.Engine.register c);
        Stpcc.load cfg ~put:(Alohadb.Engine.load c))
  in
  let gen = Stpcc.generator cfg ~seed:9 in
  let committed = ref 0 and outstanding = ref 0 in
  let sim = Alohadb.Cluster.sim c in
  for i = 0 to 59 do
    incr outstanding;
    Sim.Engine.schedule sim ~at:(1_000 + (i * 53)) (fun () ->
        Alohadb.Engine.submit c ~fe:(i mod n) (Stpcc.gen_neworder gen)
          ~k:(fun reply ->
            decr outstanding;
            match reply with
            | Kernel.Txn.Ok -> incr committed
            | Kernel.Txn.Aborted _ -> ()))
  done;
  Sim.Engine.run ~until:500_000 sim;
  Alcotest.(check int) "resolved" 0 !outstanding;
  Alcotest.(check int) "all committed" 60 !committed;
  let dnoid_sum =
    aloha_scan c ~prefix:"d:"
    |> List.filter (fun (k, _) -> contains_sub k ":noid")
    |> List.fold_left (fun acc (_, v) -> acc + Value.to_int v - 1) 0
  in
  Alcotest.(check int) "district counters" 60 dnoid_sum

(* ---- YCSB ------------------------------------------------------------------ *)

let test_ycsb_aloha_conservation () =
  let cfg =
    { Ycsb.keys_per_partition = 200; hot_keys = 4; rw_keys = 10;
      distributed = true }
  in
  let c =
    aloha_cluster (fun c -> Ycsb.load cfg ~n_servers:n ~put:(Alohadb.Engine.load c))
  in
  let gen = Ycsb.generator cfg ~n_partitions:n ~seed:21 in
  let sim = Alohadb.Cluster.sim c in
  let keys_written = ref 0 and outstanding = ref 0 in
  for i = 0 to 99 do
    incr outstanding;
    Sim.Engine.schedule sim ~at:(1_000 + (i * 29)) (fun () ->
        let txn = Ycsb.gen gen ~fe:(i mod n) in
        keys_written :=
          !keys_written
          + List.length (Kernel.Txn.functor_form txn).Kernel.Txn.writes;
        Alohadb.Engine.submit c ~fe:(i mod n) txn ~k:(fun _ ->
            decr outstanding))
  done;
  Sim.Engine.run ~until:400_000 sim;
  Alcotest.(check int) "resolved" 0 !outstanding;
  let total =
    aloha_scan c ~prefix:"y:"
    |> List.fold_left (fun acc (_, v) -> acc + Value.to_int v) 0
  in
  Alcotest.(check int) "sum of values = increments applied" !keys_written total

let test_ycsb_generator_shape () =
  let cfg =
    { Ycsb.keys_per_partition = 1000; hot_keys = 10; rw_keys = 10;
      distributed = true }
  in
  let gen = Ycsb.generator cfg ~n_partitions:8 ~seed:3 in
  for fe = 0 to 7 do
    let txn = Ycsb.gen gen ~fe in
    let keys =
      List.map fst (Kernel.Txn.functor_form txn).Kernel.Txn.writes
    in
    (* Exactly two partitions: the submitting one plus one other. *)
    let parts =
      List.sort_uniq compare
        (List.map
           (fun k -> int_of_string (List.nth (String.split_on_char ':' k) 1))
           keys)
    in
    Alcotest.(check int) "two partitions" 2 (List.length parts);
    Alcotest.(check bool) "includes own partition" true (List.mem fe parts);
    (* Exactly one hot key (< hot_keys) per participant partition. *)
    List.iter
      (fun p ->
        let hot =
          List.filter
            (fun k ->
              match String.split_on_char ':' k with
              | [ _; part; idx ] ->
                  int_of_string part = p && int_of_string idx < 10
              | _ -> false)
            keys
        in
        Alcotest.(check int) "one hot key per partition" 1 (List.length hot))
      parts
  done

let test_tpcc_generator_distribution () =
  let cfg = Tpcc.default_cfg ~n_servers:4 ~warehouses_per_host:2 in
  let gen = Tpcc.generator cfg ~n_servers:4 ~seed:7 in
  for fe = 0 to 3 do
    (* The static facet is what the deterministic engines see. *)
    let d = Kernel.Txn.static_form (Tpcc.gen_neworder gen ~fe) in
    let writes = Kernel.Txn.write_keys d in
    (* The home district key routes to the submitting host. *)
    (match List.filter (fun k -> contains_sub k ":dnoid:") writes with
    | dnoid :: _ ->
        let w = int_of_string (List.nth (String.split_on_char ':' dnoid) 1) in
        Alcotest.(check int) "home warehouse on fe" fe (w mod 4)
    | [] -> Alcotest.fail "no district counter in write set");
    (* Distributed: some stock key lives on another host. *)
    let remote =
      List.exists
        (fun k ->
          contains_sub k ":stock:"
          && int_of_string (List.nth (String.split_on_char ':' k) 1) mod 4 <> fe)
        writes
    in
    Alcotest.(check bool) "always distributed" true remote
  done

let suite =
  [ Alcotest.test_case "aloha tpcc neworder invariants" `Quick
      test_aloha_tpcc_neworder_invariants;
    Alcotest.test_case "aloha tpcc payment invariants" `Quick
      test_aloha_tpcc_payment_invariants;
    Alcotest.test_case "calvin tpcc neworder invariants" `Quick
      test_calvin_tpcc_neworder_invariants;
    Alcotest.test_case "stpcc aloha basic" `Quick test_stpcc_aloha_basic;
    Alcotest.test_case "ycsb conservation" `Quick test_ycsb_aloha_conservation;
    Alcotest.test_case "ycsb generator shape" `Quick test_ycsb_generator_shape;
    Alcotest.test_case "tpcc generator distribution" `Quick
      test_tpcc_generator_distribution ]
