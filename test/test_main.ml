let () =
  Alcotest.run "alohadb"
    [ ("sim", Test_sim.suite);
      ("net", Test_net.suite);
      ("clocksync", Test_clocksync.suite);
      ("mvstore", Test_mvstore.suite);
      ("functor_cc", Test_functor_cc.suite);
      ("epoch", Test_epoch.suite);
      ("alohadb", Test_alohadb.suite);
      ("alohadb-extra", Test_alohadb_extra.suite);
      ("calvin", Test_calvin.suite);
      ("serializability", Test_serializability.suite);
      ("workload", Test_workload.suite);
      ("harness", Test_harness.suite);
      ("durability", Test_durability.suite);
      ("twopl", Test_twopl.suite);
      ("cross-engine", Test_cross_engine.suite);
      ("gc", Test_gc.suite);
      ("components", Test_components.suite);
      ("runtime", Test_runtime.suite);
      ("obs", Test_obs.suite);
      ("timeline", Test_timeline.suite);
      ("chaos", Test_chaos.suite);
      ("replication", Test_replication.suite);
      ("fastpath", Test_fastpath.suite) ]
