(* Version garbage collection: history below the horizon is reclaimed
   while reads at and above it are unaffected. *)

module Chain = Mvstore.Chain
module Value = Functor_cc.Value
module Engine = Functor_cc.Compute_engine
module Funct = Functor_cc.Funct

let test_chain_truncate () =
  let c : int Chain.t = Chain.create () in
  List.iter (fun v -> ignore (Chain.insert c ~version:v v)) [ 1; 3; 5; 7; 9 ];
  let reclaimed = Chain.truncate_below c ~version:6 in
  Alcotest.(check int) "two dropped" 2 reclaimed;
  Alcotest.(check (list int)) "base kept" [ 5; 7; 9 ] (Chain.versions c);
  (* Reads at the horizon land on the kept base. *)
  (match Chain.find_le c ~version:6 with
  | Some (5, _) -> ()
  | _ -> Alcotest.fail "base lost");
  Alcotest.(check int) "idempotent" 0 (Chain.truncate_below c ~version:6)

let test_chain_truncate_all_below () =
  let c : int Chain.t = Chain.create () in
  List.iter (fun v -> ignore (Chain.insert c ~version:v v)) [ 10; 20 ];
  Alcotest.(check int) "nothing below first" 0
    (Chain.truncate_below c ~version:5);
  Alcotest.(check int) "everything below keeps latest" 1
    (Chain.truncate_below c ~version:100);
  Alcotest.(check (list int)) "latest survives" [ 20 ] (Chain.versions c)

let mk_engine () =
  let callbacks =
    { Engine.is_local = (fun _ -> true);
      remote_get = (fun ~key:_ ~version:_ k -> k None);
      send_push = (fun ~dst_key:_ ~version:_ ~src_key:_ _ -> ());
      send_dep_write = (fun ~key:_ ~version:_ _ -> ());
      notify_final = (fun ~key:_ ~version:_ ~pending:_ ~final:_ -> ());
      exec = (fun ~cost:_ k -> k ());
      now = (fun () -> 0) }
  in
  Engine.create
    ~registry:(Functor_cc.Registry.with_builtins ())
    ~callbacks ~compute_cost_us:0 ~metrics:(Sim.Metrics.create ()) ()

let test_engine_gc_preserves_reads () =
  let e = mk_engine () in
  Engine.load_initial e ~key:(Mvstore.Key.intern "k") (Value.int 0);
  for v = 1 to 50 do
    ignore
      (Engine.install e ~key:(Mvstore.Key.intern "k") ~version:v ~lo:0 ~hi:max_int
         (Funct.mk_pending ~ftype:Functor_cc.Ftype.Add
            ~farg:(Funct.farg_args [ Value.int 1 ])
            ~txn_id:v ~coordinator:0))
  done;
  Engine.compute_key e ~key:(Mvstore.Key.intern "k") ~version:50;
  let read version =
    let got = ref 0 in
    Engine.get e ~key:(Mvstore.Key.intern "k") ~version (function
      | Some v -> got := Value.to_int v
      | None -> got := -1);
    !got
  in
  Alcotest.(check int) "pre-gc latest" 50 (read max_int);
  let reclaimed = Engine.gc e ~before:30 in
  Alcotest.(check int) "records reclaimed" 30 reclaimed;
  Alcotest.(check int) "latest unchanged" 50 (read max_int);
  Alcotest.(check int) "read at horizon" 30 (read 30);
  Alcotest.(check int) "read above horizon" 42 (read 42);
  (* Reads strictly below the horizon are no longer served — the
     documented historical-read horizon. *)
  Alcotest.(check int) "below horizon unsupported" (-1) (read 10)

let test_engine_gc_spares_pending () =
  let e = mk_engine () in
  Engine.load_initial e ~key:(Mvstore.Key.intern "k") (Value.int 0);
  for v = 1 to 10 do
    ignore
      (Engine.install e ~key:(Mvstore.Key.intern "k") ~version:v ~lo:0 ~hi:max_int
         (Funct.mk_pending ~ftype:Functor_cc.Ftype.Add
            ~farg:(Funct.farg_args [ Value.int 1 ])
            ~txn_id:v ~coordinator:0))
  done;
  (* Nothing computed yet: the watermark is still 0, so gc must not touch
     anything above it. *)
  let reclaimed = Engine.gc e ~before:100 in
  Alcotest.(check int) "nothing reclaimed above watermark" 0 reclaimed;
  Engine.compute_key e ~key:(Mvstore.Key.intern "k") ~version:10;
  let got = ref 0 in
  Engine.get e ~key:(Mvstore.Key.intern "k") ~version:max_int (function
    | Some v -> got := Value.to_int v
    | None -> ());
  Alcotest.(check int) "values intact after gc attempt" 10 !got

let suite =
  [ Alcotest.test_case "chain truncate" `Quick test_chain_truncate;
    Alcotest.test_case "chain truncate edges" `Quick
      test_chain_truncate_all_below;
    Alcotest.test_case "engine gc preserves reads" `Quick
      test_engine_gc_preserves_reads;
    Alcotest.test_case "engine gc spares pending" `Quick
      test_engine_gc_spares_pending ]
