(* Load generation and the experiment driver. *)

let test_poisson_rate () =
  let sim = Sim.Engine.create () in
  let rng = Sim.Rng.create 3 in
  let count = ref 0 in
  Harness.Arrivals.install ~sim ~rng ~n_fes:4
    ~arrival:(Harness.Arrivals.Open_poisson { rate_per_fe = 1000.0 })
    ~submit:(fun ~fe:_ ~done_k:_ -> incr count);
  Sim.Engine.run ~until:1_000_000 sim;
  (* 4 FEs x 1000/s x 1 s = 4000 expected; allow 10 %. *)
  Alcotest.(check bool) "poisson rate"
    true (abs (!count - 4000) < 400)

let test_burst_arrivals_cluster_at_period () =
  let sim = Sim.Engine.create () in
  let rng = Sim.Rng.create 3 in
  let times = ref [] in
  Harness.Arrivals.install ~sim ~rng ~n_fes:1
    ~arrival:
      (Harness.Arrivals.Open_burst { rate_per_fe = 500.0; period_us = 20_000 })
    ~submit:(fun ~fe:_ ~done_k:_ -> times := Sim.Engine.now sim :: !times);
  Sim.Engine.run ~until:200_000 sim;
  Alcotest.(check bool) "some arrivals" true (List.length !times > 50);
  (* Every arrival lands exactly on a period boundary (+1 µs offset). *)
  List.iter
    (fun t ->
      Alcotest.(check int) "on period boundary" 1 ((t - 1) mod 20_000 + 1))
    !times

let test_closed_loop_sustains () =
  let sim = Sim.Engine.create () in
  let rng = Sim.Rng.create 3 in
  let inflight = ref 0 and max_inflight = ref 0 and completed = ref 0 in
  Harness.Arrivals.install ~sim ~rng ~n_fes:2
    ~arrival:(Harness.Arrivals.Closed { clients_per_fe = 5 })
    ~submit:(fun ~fe:_ ~done_k ->
      incr inflight;
      if !inflight > !max_inflight then max_inflight := !inflight;
      Sim.Engine.after sim 1_000 (fun () ->
          decr inflight;
          incr completed;
          done_k ()));
  Sim.Engine.run ~until:100_000 sim;
  Alcotest.(check int) "bounded concurrency" 10 !max_inflight;
  (* 10 clients x (100 ms / 1 ms service) ~ 1000 completions *)
  Alcotest.(check bool) "throughput sustained" true (!completed > 900)

let test_driver_ycsb_both_systems () =
  (* End-to-end smoke of the Figure-9 machinery at a tiny scale: ALOHA
     throughput must exceed Calvin's and both must make progress.  Both
     go through the generic kernel loop via packed ENGINE modules. *)
  let point name clients =
    let engine = List.assoc name Harness.Setup.engines in
    let built =
      Harness.Setup.ycsb ~engine ~n:2 ~ci:0.01 ~keys_per_partition:1_000 ()
    in
    Harness.Driver.run built
      ~arrival:(Harness.Arrivals.Closed { clients_per_fe = clients })
      ~warmup_us:50_000 ~measure_us:50_000 ()
  in
  let ra = point "aloha" 200 in
  let rc = point "calvin" 100 in
  Alcotest.(check bool) "aloha progresses" true (ra.Harness.Driver.committed > 100);
  Alcotest.(check bool) "calvin progresses" true (rc.Harness.Driver.committed > 50);
  Alcotest.(check bool) "aloha beats calvin" true
    (ra.Harness.Driver.throughput_tps > rc.Harness.Driver.throughput_tps);
  Alcotest.(check bool) "aloha stages recorded" true
    (List.length ra.Harness.Driver.stages = 3);
  Alcotest.(check bool) "latencies sane" true
    (ra.Harness.Driver.lat_mean_us > 0.0
     && ra.Harness.Driver.lat_p99_us >= ra.Harness.Driver.lat_p50_us)

let test_driver_tpcc_abort_accounting () =
  let engine = List.assoc "aloha" Harness.Setup.engines in
  let built =
    Harness.Setup.tpcc ~engine ~n:2 ~warehouses_per_host:1 ~kind:`NewOrder ()
  in
  let r =
    Harness.Driver.run built
      ~arrival:(Harness.Arrivals.Closed { clients_per_fe = 100 })
      ~warmup_us:50_000 ~measure_us:100_000 ()
  in
  Alcotest.(check bool) "commits" true (r.Harness.Driver.committed > 100);
  (* 1 % of NewOrders reference an unknown item and must abort in the
     write-only phase. *)
  let aborted_install = Kernel.Result.abort r "install" in
  Alcotest.(check bool) "install aborts occur" true (aborted_install > 0);
  let ratio =
    float_of_int aborted_install
    /. float_of_int (r.Harness.Driver.committed + aborted_install)
  in
  Alcotest.(check bool) "abort rate ~1%" true (ratio > 0.001 && ratio < 0.05)

let test_scale_profiles_sane () =
  let q = Harness.Experiments.quick and f = Harness.Experiments.full in
  Alcotest.(check bool) "quick smaller" true
    (q.Harness.Experiments.measure_us <= f.Harness.Experiments.measure_us);
  Alcotest.(check bool) "full has the paper's server counts" true
    (List.mem 20 f.Harness.Experiments.fig8_servers);
  Alcotest.(check bool) "full sweeps the paper's CI range" true
    (List.mem 0.1 f.Harness.Experiments.fig9_cis
     && List.mem 1e-4 f.Harness.Experiments.fig9_cis)

let suite =
  [ Alcotest.test_case "poisson rate" `Quick test_poisson_rate;
    Alcotest.test_case "burst arrivals" `Quick
      test_burst_arrivals_cluster_at_period;
    Alcotest.test_case "closed loop" `Quick test_closed_loop_sustains;
    Alcotest.test_case "driver ycsb both systems" `Slow
      test_driver_ycsb_both_systems;
    Alcotest.test_case "driver tpcc aborts" `Slow
      test_driver_tpcc_abort_accounting;
    Alcotest.test_case "scale profiles" `Quick test_scale_profiles_sane ]
