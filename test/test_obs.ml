(* Observability subsystem: trace ring buffer, sampling, gauges, the
   Chrome exporter, epoch rollups, fault correlation, and — the contract
   that justifies shipping tracing on by default in experiments — that
   tracing never perturbs simulated results. *)

let all_stages =
  [ Obs.Trace.Submit; Epoch_assign; Functor_write; Batch_ack; Epoch_close;
    Compute_start; Compute_done; Read_served; Sequenced; Scheduled;
    Locks_acquired; Exec_start; Exec_done; Lock_timeout; Prepared;
    Committed; Aborted; Restarted; Fault_drop; Fault_delay;
    Plan_build; Plan_evaluate; Stratum_dispatch; Wal_ship; Promote;
    Fastpath_commit ]

let test_stage_codec () =
  List.iter
    (fun s ->
      let i = Obs.Trace.stage_to_int s in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" (Obs.Trace.stage_name s))
        true
        (Obs.Trace.stage_of_int i = s))
    all_stages;
  let names = List.map Obs.Trace.stage_name all_stages in
  Alcotest.(check int) "names unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_ring_wrap () =
  let t = Obs.Trace.create ~capacity:8 () in
  for i = 0 to 11 do
    Obs.Trace.emit t ~txn:i ~stage:Obs.Trace.Submit ~node:0 ~ts:(i * 10)
      ~arg:(-1) ~tag:0
  done;
  Alcotest.(check int) "length capped" 8 (Obs.Trace.length t);
  Alcotest.(check int) "total counts everything" 12 (Obs.Trace.total t);
  Alcotest.(check int) "dropped = overflow" 4 (Obs.Trace.dropped t);
  let seen = ref [] in
  Obs.Trace.iter t ~f:(fun e -> seen := e.Obs.Trace.txn :: !seen);
  Alcotest.(check (list int)) "oldest-first, newest kept"
    [ 4; 5; 6; 7; 8; 9; 10; 11 ]
    (List.rev !seen)

let test_sampling () =
  let t = Obs.Trace.create ~sample:4 () in
  Alcotest.(check bool) "multiple sampled" true
    (Obs.Trace.would_sample t ~txn:8);
  Alcotest.(check bool) "non-multiple skipped" false
    (Obs.Trace.would_sample t ~txn:9);
  Alcotest.(check bool) "negative ids always sampled" true
    (Obs.Trace.would_sample t ~txn:(-1));
  Obs.Trace.set_enabled t false;
  Alcotest.(check bool) "disabled samples nothing" false
    (Obs.Trace.would_sample t ~txn:8)

let test_gauges_sampler () =
  let sim = Sim.Engine.create () in
  let metrics = Sim.Metrics.create () in
  let g = Obs.Gauges.create ~interval_us:1_000 () in
  Obs.Gauges.bind_metrics g metrics;
  let ticks = ref 0 in
  Obs.Gauges.add_probe g (fun () ->
      incr ticks;
      Sim.Metrics.set_gauge metrics "gauge.ticks" (float_of_int !ticks));
  Obs.Gauges.arm g ~sim ~for_us:10_000;
  Sim.Engine.run ~until:20_000 sim;
  (* Horizon-bounded: no samples past for_us even though the sim ran on. *)
  Alcotest.(check bool) "sampled ~10 times" true (!ticks >= 9 && !ticks <= 11);
  match Obs.Gauges.series g with
  | [ (name, samples) ] ->
      Alcotest.(check string) "series name" "gauge.ticks" name;
      Alcotest.(check int) "one sample per tick" !ticks
        (List.length samples);
      let ts = List.map fst samples in
      Alcotest.(check (list int)) "timestamps ascending"
        (List.sort compare ts) ts
  | other ->
      Alcotest.failf "expected one series, got %d" (List.length other)

let test_fault_correlation () =
  let ctl = Obs.Ctl.create ~corr_window_us:2_000 () in
  let tr = Obs.Ctl.trace ctl in
  (* No fault seen yet: must not tag (regression: min_int arithmetic). *)
  Obs.Ctl.emit ctl ~txn:1 ~stage:Obs.Trace.Submit ~node:0 ~ts:100 ();
  Obs.Ctl.note_fault ctl ~now:1_000 ~node:0 ~kind:`Drop;
  Obs.Ctl.emit ctl ~txn:2 ~stage:Obs.Trace.Submit ~node:0 ~ts:2_500 ();
  Obs.Ctl.emit ctl ~txn:3 ~stage:Obs.Trace.Submit ~node:0 ~ts:9_999 ();
  let tags =
    List.map
      (fun e -> (e.Obs.Trace.txn, e.Obs.Trace.tag))
      (Obs.Trace.events tr)
  in
  Alcotest.(check bool) "pre-fault untagged" true (List.mem_assoc 1 tags);
  Alcotest.(check int) "pre-fault tag" 0 (List.assoc 1 tags);
  Alcotest.(check int) "within window tagged" 1 (List.assoc 2 tags);
  Alcotest.(check int) "outside window untagged" 0 (List.assoc 3 tags);
  Alcotest.(check int) "drop counted" 1 (Obs.Ctl.fault_drops ctl);
  (* The fault marker itself lands in the ring as a negative-id event. *)
  Alcotest.(check bool) "fault marker present" true
    (List.exists
       (fun e -> e.Obs.Trace.stage = Obs.Trace.Fault_drop)
       (Obs.Trace.events tr));
  Obs.Ctl.measure_reset ctl;
  Alcotest.(check int) "reset clears ring" 0 (Obs.Trace.length tr);
  Alcotest.(check int) "reset clears counters" 0 (Obs.Ctl.fault_drops ctl);
  Obs.Ctl.emit ctl ~txn:4 ~stage:Obs.Trace.Submit ~node:0 ~ts:10_100 ();
  (match Obs.Trace.events tr with
  | [ e ] -> Alcotest.(check int) "correlation forgotten" 0 e.Obs.Trace.tag
  | _ -> Alcotest.fail "expected exactly one event after reset")

let test_chrome_export () =
  let ctl = Obs.Ctl.create () in
  List.iteri
    (fun i stage ->
      Obs.Ctl.emit ctl ~txn:7 ~stage ~node:(i mod 2) ~ts:(100 * (i + 1))
        ~arg:3 ())
    [ Obs.Trace.Submit; Epoch_assign; Functor_write; Batch_ack;
      Compute_start; Compute_done ];
  Obs.Ctl.emit ctl ~txn:(-1) ~stage:Obs.Trace.Epoch_close ~node:0 ~ts:900
    ~arg:3 ();
  let json =
    Obs.Export.chrome_trace ~engine:"aloha" ~trace:(Obs.Ctl.trace ctl)
      ~gauges:None ()
  in
  let has needle =
    let nl = String.length needle and jl = String.length json in
    let rec go i =
      i + nl <= jl && (String.sub json i nl = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "traceEvents array" true (has "\"traceEvents\":[");
  Alcotest.(check bool) "process metadata" true (has "\"process_name\"");
  Alcotest.(check bool) "instant events" true (has "\"ph\":\"i\"");
  Alcotest.(check bool) "span event for txn" true (has "\"ph\":\"X\"");
  List.iter
    (fun n ->
      Alcotest.(check bool) (Printf.sprintf "stage %s exported" n) true
        (has (Printf.sprintf "\"name\":\"%s\"" n)))
    [ "submit"; "epoch_assign"; "functor_write"; "batch_ack"; "epoch_close";
      "compute_start"; "compute_done" ];
  Alcotest.(check bool) "ts field" true (has "\"ts\":100");
  Alcotest.(check bool) "pid field" true (has "\"pid\":0");
  Alcotest.(check bool) "tid field" true (has "\"tid\":")

(* Chrome-trace well-formedness: parse the exported document with the
   timeline JSON reader and hold it to the trace_events contract — every
   event carries pid/tid/ts, duration ("B"/"E") events balance per tid,
   and counter samples are monotone in ts per series.  Includes the
   ledger-driven per-worker tracks, which are the only emitter of "B"/"E"
   pairs. *)
let test_chrome_well_formed () =
  let ctl = Obs.Ctl.create ~gauge_interval_us:1_000 () in
  List.iteri
    (fun i stage ->
      Obs.Ctl.emit ctl ~txn:i ~stage ~node:(i mod 2) ~ts:(50 * (i + 1))
        ~arg:2 ())
    [ Obs.Trace.Submit; Epoch_assign; Functor_write; Committed; Submit;
      Epoch_assign ];
  let sim = Sim.Engine.create () in
  let metrics = Sim.Metrics.create () in
  let g = Obs.Ctl.gauges ctl in
  Obs.Gauges.bind_metrics g metrics;
  let tick = ref 0 in
  Obs.Gauges.add_probe g (fun () ->
      incr tick;
      Sim.Metrics.set_gauge metrics "gauge.tick" (float_of_int !tick));
  Obs.Gauges.arm g ~sim ~for_us:5_000;
  Sim.Engine.run ~until:6_000 sim;
  let ledger = Obs.Ledger.create () in
  Obs.Ledger.note_stratum ledger ~node:0 ~t0_us:1_000 ~t1_us:1_400 ~size:8
    ~workers:[| (5, 0, 0); (3, 2, 1) |];
  Obs.Ledger.note_stratum ledger ~node:0 ~t0_us:1_500 ~t1_us:1_650 ~size:2
    ~workers:[| (2, 0, 0); (0, 0, 0) |];
  let doc =
    Obs.Export.chrome_trace ~engine:"aloha" ~shards:8 ~ledger
      ~trace:(Obs.Ctl.trace ctl)
      ~gauges:(Some g) ()
  in
  let open Obs.Analyze.Json in
  let events =
    match member "traceEvents" (parse doc) with
    | Some (Arr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "document holds events" true (events <> []);
  (* Per-tid B/E balance and per-counter-series ts monotonicity. *)
  let depth = Hashtbl.create 8 in
  let last_counter_ts = Hashtbl.create 8 in
  let b_seen = ref 0 and steal_seen = ref 0 in
  List.iter
    (fun ev ->
      let ph = to_str (member "ph" ev) ~default:"?" in
      let pid = to_int (member "pid" ev) ~default:min_int in
      let tid = to_int (member "tid" ev) ~default:min_int in
      let ts = to_int (member "ts" ev) ~default:min_int in
      Alcotest.(check bool) "every event has a pid" true (pid > min_int);
      Alcotest.(check bool) "every event has a ts" true (ts > min_int);
      (* counters live on pid 0 without a tid; all else has one *)
      if ph <> "C" then
        Alcotest.(check bool) "every non-counter event has a tid" true
          (tid > min_int);
      match ph with
      | "B" ->
          incr b_seen;
          Hashtbl.replace depth (pid, tid)
            (1
            + (match Hashtbl.find_opt depth (pid, tid) with
              | Some d -> d
              | None -> 0))
      | "E" ->
          let d =
            match Hashtbl.find_opt depth (pid, tid) with
            | Some d -> d
            | None -> 0
          in
          Alcotest.(check bool) "E never precedes its B" true (d > 0);
          Hashtbl.replace depth (pid, tid) (d - 1)
      | "C" ->
          let name = to_str (member "name" ev) ~default:"" in
          (match Hashtbl.find_opt last_counter_ts name with
          | Some prev ->
              Alcotest.(check bool)
                (Printf.sprintf "counter %s monotone in ts" name)
                true (ts >= prev)
          | None -> ());
          Hashtbl.replace last_counter_ts name ts
      | "i" ->
          if to_str (member "name" ev) ~default:"" = "steal" then
            incr steal_seen
      | _ -> ())
    events;
  Hashtbl.iter
    (fun (pid, tid) d ->
      Alcotest.(check int)
        (Printf.sprintf "B/E balanced on pid %d tid %d" pid tid)
        0 d)
    depth;
  Alcotest.(check bool) "worker spans exported" true (!b_seen >= 3);
  Alcotest.(check int) "steal marker exported" 1 !steal_seen;
  Alcotest.(check bool) "counter series sampled" true
    (Hashtbl.length last_counter_ts > 0);
  (* Worker lanes sit above the shard lanes and are named. *)
  let has needle =
    let nl = String.length needle and jl = String.length doc in
    let rec go i =
      i + nl <= jl && (String.sub doc i nl = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "worker thread names" true
    (has "\"name\":\"worker 1\"");
  Alcotest.(check bool) "worker tid above shards" true (has "\"tid\":9")

let test_epoch_rollup () =
  let t = Obs.Trace.create () in
  let emit txn stage arg ts =
    Obs.Trace.emit t ~txn ~stage ~node:0 ~ts ~arg ~tag:0
  in
  emit 1 Obs.Trace.Epoch_assign 5 10;
  emit 2 Obs.Trace.Epoch_assign 5 12;
  emit 1 Obs.Trace.Functor_write 5 20;
  emit 1 Obs.Trace.Batch_ack 5 30;
  emit (-1) Obs.Trace.Epoch_close 5 40;
  emit 3 Obs.Trace.Epoch_assign 6 50;
  match Obs.Export.epoch_rollup t with
  | [ r5; r6 ] ->
      Alcotest.(check int) "epoch" 5 r5.Obs.Export.epoch;
      Alcotest.(check int) "assigned" 2 r5.Obs.Export.assigned;
      Alcotest.(check int) "functor writes" 1 r5.Obs.Export.functor_writes;
      Alcotest.(check int) "acks" 1 r5.Obs.Export.batch_acks;
      Alcotest.(check int) "close ts" 40 r5.Obs.Export.close_ts;
      Alcotest.(check int) "next epoch" 6 r6.Obs.Export.epoch;
      Alcotest.(check int) "unclosed" (-1) r6.Obs.Export.close_ts
  | rows -> Alcotest.failf "expected 2 rollup rows, got %d" (List.length rows)

(* The load-bearing invariant: turning tracing on (at any sampling rate)
   must not change simulated behaviour.  Same seed, same workload, with
   tracing off vs 1-in-16 sampling — identical commits and throughput. *)
let test_overhead_neutral () =
  let point obs =
    let engine = List.assoc "aloha" Harness.Setup.engines in
    let built =
      Harness.Setup.ycsb ~engine ~n:2 ~ci:0.01 ~keys_per_partition:1_000
        ?obs ~seed:23 ()
    in
    Harness.Driver.run built
      ~arrival:(Harness.Arrivals.Closed { clients_per_fe = 100 })
      ?obs ~warmup_us:30_000 ~measure_us:40_000 ~seed:23 ()
  in
  let bare = point None in
  let ctl = Obs.Ctl.create ~sample:16 () in
  let traced = point (Some ctl) in
  Alcotest.(check int) "identical commits" bare.Harness.Driver.committed
    traced.Harness.Driver.committed;
  Alcotest.(check (float 1e-9)) "identical tps"
    bare.Harness.Driver.throughput_tps traced.Harness.Driver.throughput_tps;
  Alcotest.(check (float 1e-9)) "identical mean latency"
    bare.Harness.Driver.lat_mean_us traced.Harness.Driver.lat_mean_us;
  (* And the traced run actually recorded something. *)
  Alcotest.(check bool) "trace non-empty" true
    (Obs.Trace.total (Obs.Ctl.trace ctl) > 0);
  Alcotest.(check bool) "gauges sampled" true
    (Obs.Gauges.series (Obs.Ctl.gauges ctl) <> [])

let test_telemetry_file () =
  let engine = List.assoc "aloha" Harness.Setup.engines in
  let ctl = Obs.Ctl.create () in
  let built =
    Harness.Setup.ycsb ~engine ~n:2 ~ci:0.01 ~keys_per_partition:1_000
      ~obs:ctl ()
  in
  let result =
    Harness.Driver.run built
      ~arrival:(Harness.Arrivals.Closed { clients_per_fe = 50 })
      ~obs:ctl ~warmup_us:20_000 ~measure_us:20_000 ()
  in
  let path = Filename.temp_file "telemetry" ".json" in
  Harness.Report.write_telemetry ~path ~engine:"aloha" ~workload:"ycsb"
    ~result ~ctl ();
  let ic = open_in path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  let has needle =
    let nl = String.length needle and jl = String.length body in
    let rec go i =
      i + nl <= jl && (String.sub body i nl = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun n -> Alcotest.(check bool) n true (has n))
    [ "\"suite\":\"telemetry\""; "\"engine\":\"aloha\""; "\"p999_us\"";
      "\"gauges\":["; "\"sample_rate\"" ]

let suite =
  [ Alcotest.test_case "stage codec" `Quick test_stage_codec;
    Alcotest.test_case "ring wrap" `Quick test_ring_wrap;
    Alcotest.test_case "sampling" `Quick test_sampling;
    Alcotest.test_case "gauges sampler" `Quick test_gauges_sampler;
    Alcotest.test_case "fault correlation" `Quick test_fault_correlation;
    Alcotest.test_case "chrome export" `Quick test_chrome_export;
    Alcotest.test_case "chrome trace well-formed" `Quick
      test_chrome_well_formed;
    Alcotest.test_case "epoch rollup" `Quick test_epoch_rollup;
    Alcotest.test_case "tracing is behaviour-neutral" `Quick
      test_overhead_neutral;
    Alcotest.test_case "telemetry file" `Quick test_telemetry_file ]
