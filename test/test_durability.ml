(* §III-A fault tolerance: write-ahead logging, checkpointing, and
   deterministic replay recovery of a crashed partition. *)

module Value = Functor_cc.Value
module Txn = Alohadb.Txn
module Cluster = Alohadb.Cluster
module Wal = Alohadb.Wal
module Recovery = Alohadb.Recovery

(* ---- WAL unit tests ------------------------------------------------------ *)

let ik = Mvstore.Key.intern

let entry key version =
  Wal.Log_install
    { key = ik key; version;
      spec = Alohadb.Message.fspec_value (Value.int version);
      txn_id = version; coordinator = 0; epoch = 1; fast = false }

let test_wal_flush_timing () =
  let sim = Sim.Engine.create () in
  let wal = Wal.create sim ~flush_latency_us:500 () in
  Wal.append wal (entry "a" 1);
  Wal.append wal (entry "b" 2);
  Alcotest.(check int) "buffered, not durable" 0 (Wal.durable_count wal);
  Alcotest.(check int) "pending" 2 (Wal.pending_count wal);
  Sim.Engine.run ~until:500 sim;
  Alcotest.(check int) "durable after flush" 2 (Wal.durable_count wal);
  Alcotest.(check int) "nothing pending" 0 (Wal.pending_count wal)

let test_wal_order_preserved () =
  let sim = Sim.Engine.create () in
  let wal = Wal.create sim ~flush_latency_us:100 () in
  for i = 1 to 5 do
    Wal.append wal (entry "k" i)
  done;
  Sim.Engine.run ~until:1_000 sim;
  let versions =
    List.filter_map
      (function
        | Wal.Log_install { version; _ } -> Some version
        | Wal.Log_abort _ | Wal.Log_epoch_closed _ -> None)
      (Wal.durable wal)
  in
  Alcotest.(check (list int)) "replay order = append order" [ 1; 2; 3; 4; 5 ]
    versions

let test_wal_checkpoint_truncates () =
  let sim = Sim.Engine.create () in
  let wal = Wal.create sim ~flush_latency_us:100 () in
  for i = 1 to 6 do
    Wal.append wal (entry "k" i)
  done;
  Sim.Engine.run ~until:1_000 sim;
  Wal.checkpoint wal
    ~snapshot:[ (ik "k", 4, Alohadb.Message.fspec_value (Value.int 99)) ]
    ~retain_above:4;
  Alcotest.(check int) "suffix retained" 2 (Wal.durable_count wal);
  Alcotest.(check int) "snapshot stored" 1 (List.length (Wal.snapshot wal))

(* ---- end-to-end crash/recovery ------------------------------------------- *)

let durable_options n =
  { Cluster.default_options with
    n_servers = n;
    partitioner = `Prefix;
    config = { Alohadb.Config.default with durability = true } }

let registry_with_xfer () =
  let r = Functor_cc.Registry.with_builtins () in
  Functor_cc.Registry.register r "xfer_guard" (fun ctx ->
      let src = Value.to_str (Functor_cc.Registry.arg ctx 0) in
      let amount = Value.to_int (Functor_cc.Registry.arg ctx 1) in
      let delta = Value.to_int (Functor_cc.Registry.arg ctx 2) in
      let bal =
        match Functor_cc.Registry.read ctx src with
        | Some v -> Value.to_int v
        | None -> 0
      in
      if bal < amount then Functor_cc.Registry.Abort
      else
        let own =
          match Functor_cc.Registry.read ctx ctx.Functor_cc.Registry.key with
          | Some v -> Value.to_int v
          | None -> 0
        in
        Functor_cc.Registry.Commit (Value.int (own + delta)));
  r

let keys = List.init 8 (fun i -> Printf.sprintf "k:%d:a%d" (i mod 2) i)

let run_mixed_load c sim =
  let rng = Sim.Rng.create 77 in
  let resolved = ref 0 and submitted = ref 0 in
  for i = 0 to 79 do
    incr submitted;
    let src = List.nth keys (Sim.Rng.int rng 8) in
    let dst = List.nth keys (Sim.Rng.int rng 8) in
    Sim.Engine.schedule sim ~at:(1_000 + (i * 600)) (fun () ->
        let req =
          if String.equal src dst then
            Txn.read_write [ (src, Txn.Add 1) ]
          else if i mod 3 = 0 then
            (* guarded transfer with cross-partition reads *)
            Txn.read_write
              [ (src,
                 Txn.Call
                   { handler = "xfer_guard"; read_set = [ src ];
                     args = [ Value.str src; Value.int 5; Value.int (-5) ] });
                (dst,
                 Txn.Call
                   { handler = "xfer_guard"; read_set = [ src; dst ];
                     args = [ Value.str src; Value.int 5; Value.int 5 ] }) ]
          else
            Txn.read_write [ (src, Txn.Subtr 2); (dst, Txn.Add 2) ]
        in
        Cluster.submit c ~fe:(i mod 2) req (fun _ -> incr resolved))
  done;
  Sim.Engine.run ~until:400_000 sim;
  Alcotest.(check int) "load resolved" !submitted !resolved

(* Read every key's latest value directly from an engine. *)
let engine_state engine =
  List.filter_map
    (fun key ->
      let got = ref None in
      Functor_cc.Compute_engine.get engine ~key:(ik key) ~version:max_int
        (fun v -> got := Some v);
      match !got with
      | Some (Some v) -> Some (key, Value.to_int v)
      | Some None -> None
      | None -> Alcotest.fail "read did not resolve")
    keys

(* A fresh engine for the crashed partition, with remote reads wired to
   the surviving server's live engine. *)
let fresh_engine ~survivor ~partition_of ~my_partition =
  let self = ref None in
  let callbacks =
    { Functor_cc.Compute_engine.is_local =
        (fun key -> partition_of key = my_partition);
      remote_get =
        (fun ~key ~version k ->
          Functor_cc.Compute_engine.get survivor ~key ~version k);
      send_push =
        (fun ~dst_key ~version ~src_key v ->
          match !self with
          | Some e when partition_of dst_key = my_partition ->
              Functor_cc.Compute_engine.deliver_push e ~key:dst_key ~version
                ~src_key v
          | Some _ | None -> ());
      send_dep_write =
        (fun ~key ~version final ->
          match !self with
          | Some e when partition_of key = my_partition ->
              Functor_cc.Compute_engine.deliver_dep_write e ~key ~version
                ~final
          | Some _ | None -> ());
      notify_final = (fun ~key:_ ~version:_ ~pending:_ ~final:_ -> ());
      exec = (fun ~cost:_ k -> k ());
      now = (fun () -> 0) }
  in
  let e =
    Functor_cc.Compute_engine.create
      ~registry:(registry_with_xfer ())
      ~callbacks ~compute_cost_us:0 ~metrics:(Sim.Metrics.create ()) ()
  in
  self := Some e;
  e

let crash_and_recover ~checkpoint_midway () =
  let c = Cluster.create ~registry:(registry_with_xfer ()) (durable_options 2) in
  List.iter (fun k -> Cluster.load c ~key:k (Value.int 100)) keys;
  Cluster.start c;
  let sim = Cluster.sim c in
  if checkpoint_midway then
    Sim.Engine.schedule sim ~at:120_000 (fun () ->
        (* Quiesce: by 120 ms, all load of the first ~4 epochs has been
           computed; take the checkpoint then. *)
        Alohadb.Server.checkpoint_now (Cluster.server c 1));
  run_mixed_load c sim;
  (* Let the WAL flush everything before the crash. *)
  Sim.Engine.run ~until:(Sim.Engine.now sim + 10_000) sim;
  let victim = Cluster.server c 1 in
  let survivor = Alohadb.Server.engine (Cluster.server c 0) in
  let before = engine_state (Alohadb.Server.engine victim) in
  let wal =
    match Alohadb.Server.wal victim with
    | Some w -> w
    | None -> Alcotest.fail "durability not enabled"
  in
  Alcotest.(check int) "wal fully flushed" 0 (Wal.pending_count wal);
  (* Crash: partition 1's memory is gone; rebuild from its WAL. *)
  let recovered =
    fresh_engine ~survivor
      ~partition_of:(fun k -> Cluster.partition_of c (Mvstore.Key.name k))
      ~my_partition:1
  in
  (* Initial data is not logged (it predates the log); a real deployment
     reloads it from the loader or the first checkpoint. *)
  if not checkpoint_midway then
    List.iter
      (fun k ->
        if Cluster.partition_of c k = 1 then
          Functor_cc.Compute_engine.load_initial recovered ~key:(ik k)
            (Value.int 100))
      keys;
  let restored = Recovery.rebuild ~engine:recovered ~wal in
  Alcotest.(check bool) "something restored" true (restored > 0);
  Recovery.recompute recovered;
  Alcotest.(check int) "no pending after recompute" 0
    (Functor_cc.Compute_engine.pending_count recovered);
  (* The recovered partition's state equals the pre-crash state. *)
  List.iter
    (fun (key, v_before) ->
      if Cluster.partition_of c key = 1 then begin
        let got = ref None in
        Functor_cc.Compute_engine.get recovered ~key:(ik key) ~version:max_int
          (fun v -> got := Some v);
        match !got with
        | Some (Some v) ->
            Alcotest.(check int)
              (Printf.sprintf "recovered %s" key)
              v_before (Value.to_int v)
        | Some None -> Alcotest.failf "%s lost" key
        | None -> Alcotest.fail "read did not resolve"
      end)
    before

let test_recovery_replay () = crash_and_recover ~checkpoint_midway:false ()

let test_recovery_with_checkpoint () =
  crash_and_recover ~checkpoint_midway:true ()

let test_unflushed_tail_lost () =
  let sim = Sim.Engine.create () in
  let wal = Wal.create sim ~flush_latency_us:1_000 () in
  Wal.append wal (entry "a" 1);
  Sim.Engine.run ~until:1_000 sim;
  Wal.append wal (entry "a" 2);
  (* Crash 100 µs later: the second entry never reached the device. *)
  Sim.Engine.run ~until:1_100 sim;
  Alcotest.(check int) "only the flushed prefix survives" 1
    (Wal.durable_count wal)

let suite =
  [ Alcotest.test_case "wal flush timing" `Quick test_wal_flush_timing;
    Alcotest.test_case "wal order" `Quick test_wal_order_preserved;
    Alcotest.test_case "wal checkpoint" `Quick test_wal_checkpoint_truncates;
    Alcotest.test_case "recovery by replay" `Quick test_recovery_replay;
    Alcotest.test_case "recovery with checkpoint" `Quick
      test_recovery_with_checkpoint;
    Alcotest.test_case "unflushed tail lost" `Quick test_unflushed_tail_lost ]
