(* The functor compute engine in isolation (single partition, synchronous
   callbacks), plus Value / Ftype / Registry units. *)

module Value = Functor_cc.Value
module Ftype = Functor_cc.Ftype
module Funct = Functor_cc.Funct
module Registry = Functor_cc.Registry
module Engine = Functor_cc.Compute_engine

let ik = Mvstore.Key.intern

(* ---- Value -------------------------------------------------------------- *)

let test_value_accessors () =
  Alcotest.(check int) "int" 5 (Value.to_int (Value.int 5));
  Alcotest.(check string) "str" "x" (Value.to_str (Value.str "x"));
  Alcotest.(check (float 1e-9)) "float widen" 3.0 (Value.to_float (Value.int 3));
  let t = Value.tup [ Value.int 1; Value.str "a" ] in
  Alcotest.(check int) "nth" 1 (Value.to_int (Value.nth t 0));
  let t' = Value.set_nth t 1 (Value.str "b") in
  Alcotest.(check string) "set_nth" "b" (Value.to_str (Value.nth t' 1));
  Alcotest.(check string) "original untouched" "a" (Value.to_str (Value.nth t 1));
  Alcotest.check_raises "type error" (Invalid_argument "Value: expected int, got str")
    (fun () -> ignore (Value.to_int (Value.str "no")))

let test_value_equal_compare () =
  let a = Value.tup [ Value.int 1; Value.tup [ Value.str "x" ] ] in
  let b = Value.tup [ Value.int 1; Value.tup [ Value.str "x" ] ] in
  Alcotest.(check bool) "structural equal" true (Value.equal a b);
  Alcotest.(check bool) "compare consistent" true (Value.compare a b = 0);
  Alcotest.(check bool) "unequal" false
    (Value.equal a (Value.tup [ Value.int 2 ]))

(* ---- Ftype -------------------------------------------------------------- *)

let test_ftype () =
  Alcotest.(check bool) "VALUE final" true (Ftype.is_final Ftype.Value);
  Alcotest.(check bool) "ADD not final" false (Ftype.is_final Ftype.Add);
  Alcotest.(check bool) "ADD reads own" true (Ftype.reads_own_key Ftype.Add);
  Alcotest.(check bool) "user doesn't implicitly" false
    (Ftype.reads_own_key (Ftype.User "h"));
  Alcotest.(check int) "table I rows" 6 (List.length Ftype.table_i)

(* ---- Registry ----------------------------------------------------------- *)

let test_registry_duplicate () =
  let r = Registry.create () in
  Registry.register r "h" (fun _ -> Registry.Abort);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Registry.register: duplicate handler \"h\"") (fun () ->
      Registry.register r "h" (fun _ -> Registry.Abort));
  Alcotest.(check (list string)) "names" [ "h" ] (Registry.names r)

(* ---- engine harness ------------------------------------------------------ *)

type harness = {
  engine : Engine.t;
  pushes : (string * int * string) list ref;
  dep_writes : (string * int * Funct.final) list ref;
  finals : (string * int) list ref;
  computes : int ref;  (* handler executions, via exec *)
}

let mk_engine ?(registry = Registry.with_builtins ()) ?remote_get () =
  let pushes = ref [] and dep_writes = ref [] and finals = ref [] in
  let computes = ref 0 in
  let engine_ref = ref None in
  let callbacks =
    { Engine.is_local = (fun _ -> true);
      remote_get =
        (match remote_get with
        | Some f -> f
        | None -> fun ~key:_ ~version:_ k -> k None);
      send_push =
        (fun ~dst_key ~version ~src_key _ ->
          pushes :=
            (Mvstore.Key.name dst_key, version, Mvstore.Key.name src_key)
            :: !pushes;
          match !engine_ref with
          | Some e ->
              Engine.deliver_push e ~key:dst_key ~version ~src_key None
          | None -> ());
      send_dep_write =
        (fun ~key ~version final ->
          dep_writes := (Mvstore.Key.name key, version, final) :: !dep_writes;
          match !engine_ref with
          | Some e -> Engine.deliver_dep_write e ~key ~version ~final
          | None -> ());
      notify_final =
        (fun ~key ~version ~pending:_ ~final:_ ->
          finals := (Mvstore.Key.name key, version) :: !finals);
      exec =
        (fun ~cost:_ k ->
          incr computes;
          k ());
      now = (fun () -> 0) }
  in
  let e =
    Engine.create ~registry ~callbacks ~compute_cost_us:1
      ~metrics:(Sim.Metrics.create ()) ()
  in
  engine_ref := Some e;
  { engine = e; pushes; dep_writes; finals; computes }

(* The helpers below speak client-side string keys and intern at entry,
   keeping the test bodies readable. *)

let install_pending h ~key ~version ~ftype ~farg =
  match
    Engine.install h.engine ~key:(ik key) ~version ~lo:0 ~hi:max_int
      (Funct.mk_pending ~ftype ~farg ~txn_id:version ~coordinator:0)
  with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "install failed"

let install_value h ~key ~version v =
  match
    Engine.install h.engine ~key:(ik key) ~version ~lo:0 ~hi:max_int
      (Funct.mk_value v)
  with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "install failed"

let get_int h ~key ~version =
  let result = ref None in
  Engine.get h.engine ~key:(ik key) ~version (fun v -> result := Some v);
  match !result with
  | Some (Some v) -> Some (Value.to_int v)
  | Some None -> None
  | None -> Alcotest.fail "get did not complete synchronously"

let load_initial h ~key v = Engine.load_initial h.engine ~key:(ik key) v

let compute_key h ~key ~version =
  Engine.compute_key h.engine ~key:(ik key) ~version

let abort_version h ~key ~version =
  Engine.abort_version h.engine ~key:(ik key) ~version

let watermark h ~key = Engine.watermark h.engine ~key:(ik key)

(* ---- engine behaviour ---------------------------------------------------- *)

let test_builtin_add_chain () =
  let h = mk_engine () in
  load_initial h ~key:"k" (Value.int 10);
  install_pending h ~key:"k" ~version:5 ~ftype:Ftype.Add
    ~farg:(Funct.farg_args [ Value.int 3 ]);
  install_pending h ~key:"k" ~version:9 ~ftype:Ftype.Subtr
    ~farg:(Funct.farg_args [ Value.int 1 ]);
  (* An on-demand read of version 9 recursively computes version 5. *)
  Alcotest.(check (option int)) "chain computed" (Some 12)
    (get_int h ~key:"k" ~version:9);
  Alcotest.(check (option int)) "intermediate version" (Some 13)
    (get_int h ~key:"k" ~version:5);
  Alcotest.(check (option int)) "initial untouched" (Some 10)
    (get_int h ~key:"k" ~version:4);
  Alcotest.(check int) "watermark caught up" 9
    (watermark h ~key:"k")

let test_max_min () =
  let h = mk_engine () in
  load_initial h ~key:"k" (Value.int 10);
  install_pending h ~key:"k" ~version:1 ~ftype:Ftype.Max
    ~farg:(Funct.farg_args [ Value.int 50 ]);
  install_pending h ~key:"k" ~version:2 ~ftype:Ftype.Min
    ~farg:(Funct.farg_args [ Value.int 20 ]);
  Alcotest.(check (option int)) "max then min" (Some 20)
    (get_int h ~key:"k" ~version:10)

let test_add_absent_key_aborts () =
  (* Built-ins are total: absent keys count as 0, so a lone ADD commits
     (aborting here would break sibling-functor atomicity, §IV-C). *)
  let h = mk_engine () in
  install_pending h ~key:"ghost" ~version:3 ~ftype:Ftype.Add
    ~farg:(Funct.farg_args [ Value.int 1 ]);
  Alcotest.(check (option int)) "absent counts as zero" (Some 1)
    (get_int h ~key:"ghost" ~version:10)

let test_aborted_version_skipped () =
  let h = mk_engine () in
  load_initial h ~key:"k" (Value.int 1);
  install_value h ~key:"k" ~version:5 (Value.int 2);
  (match
     Engine.install h.engine ~key:(ik "k") ~version:7 ~lo:0 ~hi:max_int
       (Funct.mk_final Funct.Aborted_v)
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "install");
  Alcotest.(check (option int)) "read skips aborted" (Some 2)
    (get_int h ~key:"k" ~version:8)

let test_delete_tombstone () =
  let h = mk_engine () in
  load_initial h ~key:"k" (Value.int 1);
  (match
     Engine.install h.engine ~key:(ik "k") ~version:4 ~lo:0 ~hi:max_int
       (Funct.mk_final Funct.Deleted_v)
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "install");
  Alcotest.(check (option int)) "deleted reads as absent" None
    (get_int h ~key:"k" ~version:6);
  Alcotest.(check (option int)) "older version visible" (Some 1)
    (get_int h ~key:"k" ~version:3)

let test_compute_at_most_once () =
  let h = mk_engine () in
  load_initial h ~key:"k" (Value.int 0);
  install_pending h ~key:"k" ~version:2 ~ftype:Ftype.Add
    ~farg:(Funct.farg_args [ Value.int 1 ]);
  ignore (get_int h ~key:"k" ~version:5);
  let after_first = !(h.computes) in
  ignore (get_int h ~key:"k" ~version:5);
  compute_key h ~key:"k" ~version:2;
  Alcotest.(check int) "no recomputation" after_first !(h.computes)

let test_user_handler_reads () =
  let registry = Registry.create () in
  Registry.register registry "sum2" (fun ctx ->
      let a = Value.to_int (Option.get (Registry.read ctx "a")) in
      let b = Value.to_int (Option.get (Registry.read ctx "b")) in
      Registry.Commit (Value.int (a + b)));
  let h = mk_engine ~registry () in
  load_initial h ~key:"a" (Value.int 7);
  load_initial h ~key:"b" (Value.int 5);
  load_initial h ~key:"c" (Value.int 0);
  install_pending h ~key:"c" ~version:3 ~ftype:(Ftype.User "sum2")
    ~farg:{ Funct.read_set = [ ik "a"; ik "b" ]; args = []; recipients = [];
            dependents = []; pushed_reads = [] };
  Alcotest.(check (option int)) "sum of reads" (Some 12)
    (get_int h ~key:"c" ~version:4)

let test_handler_reads_snapshot_below_version () =
  (* A functor at version v must read the latest version < v, not the
     globally latest. *)
  let registry = Registry.create () in
  Registry.register registry "copy_a" (fun ctx ->
      match Registry.read ctx "a" with
      | Some v -> Registry.Commit v
      | None -> Registry.Abort);
  let h = mk_engine ~registry () in
  load_initial h ~key:"a" (Value.int 1);
  load_initial h ~key:"b" (Value.int 0);
  install_value h ~key:"a" ~version:10 (Value.int 2);
  install_pending h ~key:"b" ~version:5 ~ftype:(Ftype.User "copy_a")
    ~farg:{ Funct.read_set = [ ik "a" ]; args = []; recipients = [];
            dependents = []; pushed_reads = [] };
  Alcotest.(check (option int)) "reads version < 5, not version 10" (Some 1)
    (get_int h ~key:"b" ~version:5)

let test_missing_handler_aborts () =
  let h = mk_engine () in
  load_initial h ~key:"k" (Value.int 9);
  install_pending h ~key:"k" ~version:2 ~ftype:(Ftype.User "nope")
    ~farg:Funct.farg_empty;
  Alcotest.(check (option int)) "missing handler aborts version" (Some 9)
    (get_int h ~key:"k" ~version:5)

let test_dep_marker_resolution () =
  let registry = Registry.create () in
  Registry.register registry "det" (fun ctx ->
      let own = Value.to_int (Option.get (Registry.read ctx ctx.Registry.key)) in
      Registry.Commit_det
        ( Value.int (own + 1),
          [ ("dep", Registry.Dep_put (Value.int 99)) ] ));
  let h = mk_engine ~registry () in
  load_initial h ~key:"det_key" (Value.int 0);
  load_initial h ~key:"dep" (Value.int 1);
  install_pending h ~key:"det_key" ~version:4 ~ftype:(Ftype.User "det")
    ~farg:{ Funct.read_set = [ ik "det_key" ]; args = []; recipients = [];
            dependents = [ ik "dep" ]; pushed_reads = [] };
  install_pending h ~key:"dep" ~version:4 ~ftype:(Ftype.Dep_marker (ik "det_key"))
    ~farg:Funct.farg_empty;
  (* Reading the dependent key triggers the determinate functor. *)
  Alcotest.(check (option int)) "deferred write observed" (Some 99)
    (get_int h ~key:"dep" ~version:4);
  Alcotest.(check (option int)) "determinate value" (Some 1)
    (get_int h ~key:"det_key" ~version:4)

let test_dynamic_dep_write () =
  let registry = Registry.create () in
  Registry.register registry "emit" (fun _ ->
      Registry.Commit_det
        (Value.int 0, [ ("dyn:7", Registry.Dep_put (Value.int 42)) ]));
  let h = mk_engine ~registry () in
  load_initial h ~key:"k" (Value.int 0);
  install_pending h ~key:"k" ~version:3 ~ftype:(Ftype.User "emit")
    ~farg:{ Funct.read_set = []; args = []; recipients = []; dependents = []; pushed_reads = [] };
  compute_key h ~key:"k" ~version:3;
  Alcotest.(check (option int)) "dynamically named row inserted" (Some 42)
    (get_int h ~key:"dyn:7" ~version:3);
  Alcotest.(check (option int)) "absent below its version" None
    (get_int h ~key:"dyn:7" ~version:2)

let test_abort_version_rolls_back_final () =
  let h = mk_engine () in
  load_initial h ~key:"k" (Value.int 1);
  install_value h ~key:"k" ~version:5 (Value.int 2);
  abort_version h ~key:"k" ~version:5;
  Alcotest.(check (option int)) "rolled back" (Some 1)
    (get_int h ~key:"k" ~version:9)

let test_abort_version_pending () =
  let h = mk_engine () in
  load_initial h ~key:"k" (Value.int 1);
  install_pending h ~key:"k" ~version:5 ~ftype:Ftype.Add
    ~farg:(Funct.farg_args [ Value.int 10 ]);
  abort_version h ~key:"k" ~version:5;
  Alcotest.(check (option int)) "pending aborted, not applied" (Some 1)
    (get_int h ~key:"k" ~version:9);
  (* notify fired exactly once for the aborted functor *)
  Alcotest.(check int) "one final notification" 1 (List.length !(h.finals))

let test_recipient_push_emitted () =
  let registry = Registry.create () in
  Registry.register registry "recv" (fun ctx ->
      match Registry.read ctx "src" with
      | Some v -> Registry.Commit v
      | None -> Registry.Commit (Value.int (-1)));
  let h = mk_engine ~registry () in
  load_initial h ~key:"src" (Value.int 5);
  load_initial h ~key:"dst" (Value.int 0);
  install_pending h ~key:"src" ~version:3 ~ftype:Ftype.Add
    ~farg:{ Funct.read_set = []; args = [ Value.int 1 ];
            recipients = [ ik "dst" ]; dependents = []; pushed_reads = [] };
  install_pending h ~key:"dst" ~version:3 ~ftype:(Ftype.User "recv")
    ~farg:{ Funct.read_set = [ ik "src" ]; args = []; recipients = [];
            dependents = []; pushed_reads = [] };
  compute_key h ~key:"src" ~version:3;
  Alcotest.(check bool) "push was sent" true (!(h.pushes) <> []);
  (match !(h.pushes) with
  | (dst, 3, "src") :: _ -> Alcotest.(check string) "to dst functor" "dst" dst
  | _ -> Alcotest.fail "unexpected push shape")

let test_optimistic_validation () =
  let registry = Registry.with_builtins () in
  Functor_cc.Optimistic.register registry;
  let h = mk_engine ~registry () in
  load_initial h ~key:"k" (Value.int 10);
  (* Valid snapshot: commits. *)
  (match
     Engine.install h.engine ~key:(ik "k") ~version:5 ~lo:0 ~hi:max_int
       (Functor_cc.Optimistic.make_functor
          ~snapshot:[ ("k", Some (Value.int 10)) ]
          ~new_value:(Value.int 11) ~txn_id:5 ~coordinator:0)
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "install");
  Alcotest.(check (option int)) "validates and commits" (Some 11)
    (get_int h ~key:"k" ~version:6);
  (* Stale snapshot: aborts. *)
  (match
     Engine.install h.engine ~key:(ik "k") ~version:9 ~lo:0 ~hi:max_int
       (Functor_cc.Optimistic.make_functor
          ~snapshot:[ ("k", Some (Value.int 10)) ]  (* stale: now 11 *)
          ~new_value:(Value.int 12) ~txn_id:9 ~coordinator:0)
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "install");
  Alcotest.(check (option int)) "stale snapshot aborts" (Some 11)
    (get_int h ~key:"k" ~version:10)

(* qcheck: a random series of ADD/SUBTR/VALUE writes equals a fold. *)
let prop_numeric_series =
  let op_gen =
    QCheck2.Gen.(oneof
      [ map (fun n -> `Add n) (int_range 1 100);
        map (fun n -> `Subtr n) (int_range 1 100);
        map (fun n -> `Put n) (int_range 0 1000) ])
  in
  QCheck2.Test.make ~name:"numeric functor series = fold" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) op_gen)
    (fun ops ->
      let h = mk_engine () in
      load_initial h ~key:"k" (Value.int 0);
      List.iteri
        (fun i op ->
          let version = i + 1 in
          match op with
          | `Add n ->
              install_pending h ~key:"k" ~version ~ftype:Ftype.Add
                ~farg:(Funct.farg_args [ Value.int n ])
          | `Subtr n ->
              install_pending h ~key:"k" ~version ~ftype:Ftype.Subtr
                ~farg:(Funct.farg_args [ Value.int n ])
          | `Put n -> install_value h ~key:"k" ~version (Value.int n))
        ops;
      let expected =
        List.fold_left
          (fun acc op ->
            match op with
            | `Add n -> acc + n
            | `Subtr n -> acc - n
            | `Put n -> n)
          0 ops
      in
      get_int h ~key:"k" ~version:max_int = Some expected)

(* qcheck: watermark equals the highest version after computing all. *)
let prop_watermark_complete =
  QCheck2.Test.make ~name:"watermark reaches top after compute" ~count:100
    QCheck2.Gen.(list_size (int_range 1 30) (int_range 1 100))
    (fun raw ->
      let versions = List.sort_uniq compare raw in
      let h = mk_engine () in
      load_initial h ~key:"k" (Value.int 0);
      List.iter
        (fun version ->
          install_pending h ~key:"k" ~version ~ftype:Ftype.Add
            ~farg:(Funct.farg_args [ Value.int 1 ]))
        versions;
      let top = List.fold_left max 0 versions in
      compute_key h ~key:"k" ~version:top;
      watermark h ~key:"k" = top
      && Engine.pending_count h.engine = 0)

(* qcheck (planner): random single-epoch plans through the per-epoch
   dependency-graph planner, evaluated over a real worker pool so all
   dispatch jobs run before any evaluation finalises.  Checks: the
   finalisation order respects both intra-key and read→write edges, and
   every pending functor evaluates exactly once. *)
let prop_planner_epoch =
  let n_keys = 6 in
  let op_gen =
    QCheck2.Gen.(
      pair
        (int_range 0 (n_keys - 1))
        (oneof
           [ map (fun d -> `Add d) (int_range 1 9);
             map (fun rks -> `Sum rks)
               (list_size (int_range 1 3) (int_range 0 (n_keys - 1))) ]))
  in
  let print (ops, seed) =
    Printf.sprintf "seed=%d ops=[%s]" seed
      (String.concat "; "
         (List.map
            (fun (k, op) ->
              match op with
              | `Add d -> Printf.sprintf "p%d+=%d" k d
              | `Sum rks ->
                  Printf.sprintf "p%d=sum(%s)" k
                    (String.concat "," (List.map string_of_int rks)))
            ops))
  in
  QCheck2.Test.make ~name:"planner: edge order + exactly-once" ~count:100
    ~print
    QCheck2.Gen.(pair (list_size (int_range 1 40) op_gen) (int_bound 10_000))
    (fun (ops, shuffle_seed) ->
      let sim = Sim.Engine.create () in
      let pool = Sim.Worker_pool.create sim ~workers:3 in
      let registry = Registry.with_builtins () in
      Registry.register registry "sum" (fun ctx ->
          let total =
            List.fold_left
              (fun acc (_, v) ->
                acc + match v with Some v -> Value.to_int v | None -> 0)
              0 ctx.Registry.reads
          in
          Registry.Commit (Value.int total));
      let order = ref [] in
      let engine_ref = ref None in
      let callbacks =
        { Engine.is_local = (fun _ -> true);
          remote_get = (fun ~key:_ ~version:_ k -> k None);
          send_push =
            (fun ~dst_key ~version ~src_key v ->
              match !engine_ref with
              | Some e -> Engine.deliver_push e ~key:dst_key ~version ~src_key v
              | None -> ());
          send_dep_write = (fun ~key:_ ~version:_ _ -> ());
          notify_final =
            (fun ~key ~version ~pending:_ ~final:_ ->
              order := (Mvstore.Key.name key, version) :: !order);
          exec = (fun ~cost k -> Sim.Worker_pool.submit pool ~cost k);
          now = (fun () -> Sim.Engine.now sim) }
      in
      let e =
        Engine.create ~registry ~callbacks ~compute_cost_us:1
          ~metrics:(Sim.Metrics.create ()) ()
      in
      engine_ref := Some e;
      for i = 0 to n_keys - 1 do
        Engine.load_initial e ~key:(ik (Printf.sprintf "p%d" i)) (Value.int 0)
      done;
      (* Epoch items: globally unique versions in op order, then a
         deterministic shuffle so plans also see out-of-version-order
         installs (the planner's bucket-sort path). *)
      let indexed = Array.of_list (List.mapi (fun i op -> (i + 1, op)) ops) in
      let st = ref ((2 * shuffle_seed) + 1) in
      let rand n =
        st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF;
        !st mod n
      in
      for i = Array.length indexed - 1 downto 1 do
        let j = rand (i + 1) in
        let tmp = indexed.(i) in
        indexed.(i) <- indexed.(j);
        indexed.(j) <- tmp
      done;
      let items =
        Array.to_list
          (Array.map
             (fun (version, (ki, op)) ->
               let key = ik (Printf.sprintf "p%d" ki) in
               let funct =
                 match op with
                 | `Add d ->
                     Funct.mk_pending ~ftype:Ftype.Add
                       ~farg:(Funct.farg_args [ Value.int d ])
                       ~txn_id:version ~coordinator:0
                 | `Sum rks ->
                     let read_set =
                       List.sort_uniq compare
                         (List.map (fun r -> ik (Printf.sprintf "p%d" r)) rks)
                     in
                     Funct.mk_pending ~ftype:(Ftype.User "sum")
                       ~farg:{ Funct.farg_empty with read_set }
                       ~txn_id:version ~coordinator:0
               in
               (match
                  Engine.install e ~key ~version ~lo:0 ~hi:max_int funct
                with
               | Ok () -> ()
               | Error _ -> Alcotest.fail "install failed");
               { Functor_cc.Processor.key; version })
             indexed)
      in
      let planner =
        Functor_cc.Planner.create ~engine:e ~pool ~dispatch_cost_us:1
          ~metrics:(Sim.Metrics.create ()) ()
      in
      let stats = Functor_cc.Planner.run planner ~items in
      Sim.Engine.run sim;
      let n_ops = List.length ops in
      let final_order = List.rev !order in
      (* exactly-once: every item finalised, none twice, nothing pending *)
      let distinct = List.sort_uniq compare final_order in
      let pos =
        let h = Hashtbl.create 64 in
        List.iteri (fun i kv -> Hashtbl.replace h kv i) final_order;
        h
      in
      let pos_of kv = Hashtbl.find pos kv in
      (* every dependency edge implied by the epoch is respected in the
         finalisation order *)
      let producer key_name ~below =
        Array.fold_left
          (fun best (version, (ki, _)) ->
            if
              version <= below
              && String.equal (Printf.sprintf "p%d" ki) key_name
              && (match best with Some b -> version > b | None -> true)
            then Some version
            else best)
          None indexed
      in
      (* Execution-order edges the engine actually enforces: built-ins
         implicitly read their own key at version - 1 (intra-key edge);
         user functors finalise after the producers of their read-set
         keys, but not after lower versions of their own key (the
         watermark, not the record, waits for those). *)
      let edges_ok =
        Array.for_all
          (fun (version, (ki, op)) ->
            let kname = Printf.sprintf "p%d" ki in
            let after_producer rk_name =
              match producer rk_name ~below:(version - 1) with
              | None -> true
              | Some pv -> pos_of (rk_name, pv) < pos_of (kname, version)
            in
            match op with
            | `Add _ -> after_producer kname
            | `Sum rks ->
                List.for_all
                  (fun r -> after_producer (Printf.sprintf "p%d" r))
                  rks)
          indexed
      in
      stats.Functor_cc.Planner.nodes = n_ops
      && stats.Functor_cc.Planner.critical_path
         = stats.Functor_cc.Planner.strata - 1
      && List.length final_order = n_ops
      && List.length distinct = n_ops
      && Engine.pending_count e = 0
      && edges_ok)

let suite =
  [ Alcotest.test_case "value accessors" `Quick test_value_accessors;
    Alcotest.test_case "value equal/compare" `Quick test_value_equal_compare;
    Alcotest.test_case "ftype" `Quick test_ftype;
    Alcotest.test_case "registry duplicate" `Quick test_registry_duplicate;
    Alcotest.test_case "builtin add chain" `Quick test_builtin_add_chain;
    Alcotest.test_case "max/min" `Quick test_max_min;
    Alcotest.test_case "add on absent defaults to zero" `Quick
      test_add_absent_key_aborts;
    Alcotest.test_case "aborted version skipped" `Quick
      test_aborted_version_skipped;
    Alcotest.test_case "delete tombstone" `Quick test_delete_tombstone;
    Alcotest.test_case "compute at most once" `Quick test_compute_at_most_once;
    Alcotest.test_case "user handler reads" `Quick test_user_handler_reads;
    Alcotest.test_case "reads strictly below version" `Quick
      test_handler_reads_snapshot_below_version;
    Alcotest.test_case "missing handler aborts" `Quick
      test_missing_handler_aborts;
    Alcotest.test_case "dep marker resolution" `Quick
      test_dep_marker_resolution;
    Alcotest.test_case "dynamic dep write" `Quick test_dynamic_dep_write;
    Alcotest.test_case "abort rolls back final" `Quick
      test_abort_version_rolls_back_final;
    Alcotest.test_case "abort pending" `Quick test_abort_version_pending;
    Alcotest.test_case "recipient push" `Quick test_recipient_push_emitted;
    Alcotest.test_case "optimistic validation" `Quick
      test_optimistic_validation;
    QCheck_alcotest.to_alcotest prop_numeric_series;
    QCheck_alcotest.to_alcotest prop_watermark_complete;
    QCheck_alcotest.to_alcotest prop_planner_epoch ]
