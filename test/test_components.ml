(* Focused unit tests for smaller components: the processor's per-epoch
   buffering, the FE's functor transforms, and recipient-set derivation. *)

module Value = Functor_cc.Value
module Funct = Functor_cc.Funct
module Ftype = Functor_cc.Ftype
module Txn = Alohadb.Txn
module Message = Alohadb.Message

let ik = Mvstore.Key.intern
let names = List.map Mvstore.Key.name

(* ---- processor ------------------------------------------------------- *)

let mk_proc () =
  let sim = Sim.Engine.create () in
  let callbacks =
    { Functor_cc.Compute_engine.is_local = (fun _ -> true);
      remote_get = (fun ~key:_ ~version:_ k -> k None);
      send_push = (fun ~dst_key:_ ~version:_ ~src_key:_ _ -> ());
      send_dep_write = (fun ~key:_ ~version:_ _ -> ());
      notify_final = (fun ~key:_ ~version:_ ~pending:_ ~final:_ -> ());
      exec = (fun ~cost:_ k -> k ());
      now = (fun () -> Sim.Engine.now sim) }
  in
  let engine =
    Functor_cc.Compute_engine.create
      ~registry:(Functor_cc.Registry.with_builtins ())
      ~callbacks ~compute_cost_us:0 ~metrics:(Sim.Metrics.create ()) ()
  in
  let pool = Sim.Worker_pool.create sim ~workers:2 in
  let proc =
    Functor_cc.Processor.create ~engine ~pool ~dispatch_cost_us:1
      ~metrics:(Sim.Metrics.create ()) ()
  in
  (sim, engine, proc)

let test_processor_release_by_epoch () =
  let sim, engine, proc = mk_proc () in
  Functor_cc.Compute_engine.load_initial engine ~key:(ik "k") (Value.int 0);
  let install version =
    ignore
      (Functor_cc.Compute_engine.install engine ~key:(ik "k") ~version ~lo:0
         ~hi:max_int
         (Funct.mk_pending ~ftype:Ftype.Add
            ~farg:(Funct.farg_args [ Value.int 1 ])
            ~txn_id:version ~coordinator:0))
  in
  install 1;
  install 2;
  Functor_cc.Processor.buffer proc ~epoch:1 ~key:(ik "k") ~version:1;
  Functor_cc.Processor.buffer proc ~epoch:2 ~key:(ik "k") ~version:2;
  Alcotest.(check int) "both buffered" 2 (Functor_cc.Processor.buffered proc);
  (* Closing epoch 1 must not release epoch 2's metadata. *)
  Functor_cc.Processor.release proc ~upto_epoch:1;
  Alcotest.(check int) "one still buffered" 1
    (Functor_cc.Processor.buffered proc);
  Sim.Engine.run sim;
  Alcotest.(check int) "epoch-1 item dispatched" 1
    (Functor_cc.Processor.dispatched proc);
  Functor_cc.Processor.release proc ~upto_epoch:2;
  Sim.Engine.run sim;
  Alcotest.(check int) "all dispatched" 2
    (Functor_cc.Processor.dispatched proc);
  (* Both functors computed through the pool. *)
  Alcotest.(check int) "computed" 0
    (Functor_cc.Compute_engine.pending_count engine)

(* ---- transaction -> functor transforms -------------------------------- *)

let test_fspec_of_op_shapes () =
  let spec =
    Message.fspec_of_op ~key:(ik "k") ~recipients:[ ik "r" ] (Txn.Add 5)
  in
  Alcotest.(check bool) "ADD ftype" true
    (Ftype.equal spec.Message.ftype Ftype.Add);
  Alcotest.(check (list string)) "recipients carried" [ "r" ]
    (names spec.Message.farg.Funct.recipients);
  let call =
    Message.fspec_of_op ~key:(ik "k") ~recipients:[] ~pushed_reads:[ ik "a" ]
      (Txn.Call { handler = "h"; read_set = [ "a"; "b" ]; args = [] })
  in
  Alcotest.(check (list string)) "read set" [ "a"; "b" ]
    (names call.Message.farg.Funct.read_set);
  Alcotest.(check (list string)) "pushed reads" [ "a" ]
    (names call.Message.farg.Funct.pushed_reads);
  let det =
    Message.fspec_of_op ~key:(ik "k") ~recipients:[]
      (Txn.Det
         { handler = "h"; read_set = [ "k" ]; args = []; dependents = [ "d" ] })
  in
  Alcotest.(check (list string)) "dependents" [ "d" ]
    (names det.Message.farg.Funct.dependents)

let test_functor_of_fspec_final_forms () =
  let v = Message.functor_of_fspec (Message.fspec_value (Value.int 9))
      ~txn_id:1 ~coordinator:0
  in
  (match v.Funct.state with
  | Funct.Final (Funct.Committed x) ->
      Alcotest.(check int) "value payload" 9 (Value.to_int x)
  | _ -> Alcotest.fail "VALUE should be final");
  let d = Message.functor_of_fspec Message.fspec_delete ~txn_id:1 ~coordinator:0 in
  (match d.Funct.state with
  | Funct.Final Funct.Deleted_v -> ()
  | _ -> Alcotest.fail "DELETE should be a tombstone");
  let marker =
    Message.functor_of_fspec (Message.fspec_dep_marker ~det_key:(ik "a"))
      ~txn_id:1 ~coordinator:0
  in
  match marker.Funct.state with
  | Funct.Pending p ->
      Alcotest.(check bool) "marker carries det key" true
        (Ftype.equal p.Funct.ftype (Ftype.Dep_marker (ik "a")))
  | Funct.Final _ -> Alcotest.fail "marker must be pending"

(* ---- recipient derivation --------------------------------------------- *)

let test_recipients_for () =
  let writes =
    [ ("a", Txn.Add 1);
      ("b",
       Txn.Call { handler = "h"; read_set = [ "a"; "b" ]; args = [] });
      ("c",
       Txn.Call { handler = "h"; read_set = [ "a" ]; args = [] }) ]
  in
  (* Functors for b and c read a, so a's functor should push to them. *)
  Alcotest.(check (list string)) "a's recipients" [ "b"; "c" ]
    (List.sort compare (Txn.recipients_for writes "a"));
  Alcotest.(check (list string)) "b has none" []
    (Txn.recipients_for writes "b");
  (* Numeric self-reads don't make a key its own recipient. *)
  Alcotest.(check bool) "no self recipient" true
    (not (List.mem "a" (Txn.recipients_for writes "a")))

let test_write_keys_includes_dependents () =
  let req =
    Txn.read_write
      [ ("det",
         Txn.Det
           { handler = "h"; read_set = [ "det" ]; args = [];
             dependents = [ "dep1"; "dep2" ] });
        ("x", Txn.Put Value.unit) ]
  in
  Alcotest.(check (list string)) "write keys with dependents"
    [ "dep1"; "dep2"; "det"; "x" ]
    (List.sort compare (Txn.write_keys req))

(* ---- value wire-size model -------------------------------------------- *)

let test_value_size () =
  Alcotest.(check bool) "tuple bigger than parts" true
    (Value.size_bytes (Value.tup [ Value.int 1; Value.str "abc" ])
     > Value.size_bytes (Value.int 1));
  Alcotest.(check int) "string size" 7 (Value.size_bytes (Value.str "abc"))

let suite =
  [ Alcotest.test_case "processor epoch buffering" `Quick
      test_processor_release_by_epoch;
    Alcotest.test_case "fspec shapes" `Quick test_fspec_of_op_shapes;
    Alcotest.test_case "fspec final forms" `Quick
      test_functor_of_fspec_final_forms;
    Alcotest.test_case "recipients_for" `Quick test_recipients_for;
    Alcotest.test_case "write_keys dependents" `Quick
      test_write_keys_includes_dependents;
    Alcotest.test_case "value size" `Quick test_value_size ]
