(* Network layer: addresses, latency models, message delivery, RPC,
   partitioning. *)

let addr = Net.Address.of_int

let mk_net ?(fifo = true) () =
  let e = Sim.Engine.create () in
  let rng = Sim.Rng.create 11 in
  let net : int Net.Network.t =
    Net.Network.create e rng
      ~latency:(Net.Latency.uniform ~base:50 ~jitter:100) ~fifo ()
  in
  (e, net)

let test_address () =
  Alcotest.(check int) "roundtrip" 7 (Net.Address.to_int (addr 7));
  Alcotest.(check bool) "equal" true (Net.Address.equal (addr 3) (addr 3));
  Alcotest.check_raises "negative"
    (Invalid_argument "Address.of_int: negative id") (fun () ->
      ignore (addr (-1)))

let test_latency_bounds () =
  let rng = Sim.Rng.create 3 in
  let u = Net.Latency.uniform ~base:100 ~jitter:50 in
  for _ = 1 to 1000 do
    let s = Net.Latency.sample u rng in
    if s < 100 || s > 150 then Alcotest.failf "uniform out of bounds: %d" s
  done;
  let c = Net.Latency.constant 42 in
  Alcotest.(check int) "constant" 42 (Net.Latency.sample c rng);
  let e = Net.Latency.exponential_tail ~base:10 ~mean_tail:20.0 in
  for _ = 1 to 1000 do
    if Net.Latency.sample e rng < 10 then Alcotest.fail "below base"
  done

let test_latency_spiky () =
  let rng = Sim.Rng.create 5 in
  let l =
    Net.Latency.spiky
      ~normal:(Net.Latency.constant 10)
      ~spike:(Net.Latency.constant 10_000) ~spike_probability:0.2
  in
  let spikes = ref 0 in
  for _ = 1 to 5000 do
    if Net.Latency.sample l rng = 10_000 then incr spikes
  done;
  let p = float_of_int !spikes /. 5000.0 in
  Alcotest.(check bool) "spike rate ~0.2" true (abs_float (p -. 0.2) < 0.03)

let test_delivery () =
  let e, net = mk_net () in
  let got = ref [] in
  Net.Network.register net (addr 1) (fun ~src msg ->
      got := (Net.Address.to_int src, msg) :: !got);
  Net.Network.send net ~src:(addr 0) ~dst:(addr 1) 99;
  Sim.Engine.run e;
  Alcotest.(check (list (pair int int))) "delivered" [ (0, 99) ] !got;
  Alcotest.(check int) "sent" 1 (Net.Network.messages_sent net)

let test_fifo_per_link () =
  let e, net = mk_net ~fifo:true () in
  let got = ref [] in
  Net.Network.register net (addr 1) (fun ~src:_ msg -> got := msg :: !got);
  for i = 1 to 50 do
    Net.Network.send net ~src:(addr 0) ~dst:(addr 1) i
  done;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "in order" (List.init 50 (fun i -> i + 1))
    (List.rev !got)

let test_drop_unregistered () =
  let e, net = mk_net () in
  Net.Network.send net ~src:(addr 0) ~dst:(addr 9) 1;
  Sim.Engine.run e;
  Alcotest.(check int) "dropped" 1 (Net.Network.messages_dropped net)

(* Each drop cause lands under its own counter: injected edicts,
   partition windows, crashed endpoints, and unregistered addresses. *)
let test_drop_accounting () =
  let e = Sim.Engine.create () in
  let rng = Sim.Rng.create 11 in
  let faults = Net.Faults.create ~seed:7 () in
  let net : int Net.Network.t =
    Net.Network.create e rng ~latency:(Net.Latency.constant 10) ~faults ()
  in
  let got = ref 0 in
  List.iter
    (fun i -> Net.Network.register net (addr i) (fun ~src:_ _ -> incr got))
    [ 1; 2; 3 ];
  Net.Faults.install faults
    [ Net.Faults.edict ~dst:(addr 1) Net.Faults.Drop ~p:1.0 ~from_us:0
        ~until_us:1_000 ];
  Net.Faults.partition faults ~group:[ addr 2 ] ~from_us:0 ~until_us:1_000;
  Net.Faults.mark_crashed faults (addr 3);
  Net.Network.send net ~src:(addr 0) ~dst:(addr 1) 1;
  Net.Network.send net ~src:(addr 0) ~dst:(addr 2) 2;
  Net.Network.send net ~src:(addr 0) ~dst:(addr 3) 3;
  Net.Network.send net ~src:(addr 0) ~dst:(addr 9) 4;
  Sim.Engine.run e;
  let d = Net.Network.drop_stats net in
  Alcotest.(check int) "injected" 1 d.Net.Network.injected;
  Alcotest.(check int) "partitioned" 1 d.Net.Network.partitioned;
  Alcotest.(check int) "crashed" 1 d.Net.Network.crashed;
  Alcotest.(check int) "unregistered" 1 d.Net.Network.unregistered;
  Alcotest.(check int) "total" 4 (Net.Network.messages_dropped net);
  Alcotest.(check int) "nothing delivered" 0 !got

let test_unregister_models_crash () =
  let e, net = mk_net () in
  let got = ref 0 in
  Net.Network.register net (addr 1) (fun ~src:_ _ -> incr got);
  Net.Network.send net ~src:(addr 0) ~dst:(addr 1) 1;
  Sim.Engine.run e;
  Net.Network.unregister net (addr 1);
  Net.Network.send net ~src:(addr 0) ~dst:(addr 1) 2;
  Sim.Engine.run e;
  Alcotest.(check int) "only first delivered" 1 !got;
  Alcotest.(check int) "second dropped" 1 (Net.Network.messages_dropped net)

let mk_rpc () =
  let e = Sim.Engine.create () in
  let rng = Sim.Rng.create 11 in
  let rpc : (string, string) Net.Rpc.t =
    Net.Rpc.create e rng ~latency:(Net.Latency.constant 100) ()
  in
  (e, rpc)

let test_rpc_roundtrip () =
  let e, rpc = mk_rpc () in
  Net.Rpc.serve rpc (addr 1) (fun ~src:_ req ~reply ->
      reply (String.uppercase_ascii req));
  let answer = ref None in
  Net.Rpc.call rpc ~src:(addr 0) ~dst:(addr 1) "ping" (fun r ->
      answer := Some (r, Sim.Engine.now e));
  Sim.Engine.run e;
  (match !answer with
  | Some ("PING", t) -> Alcotest.(check int) "one RTT" 200 t
  | Some (r, _) -> Alcotest.failf "wrong reply %s" r
  | None -> Alcotest.fail "no reply")

let test_rpc_deferred_reply () =
  let e, rpc = mk_rpc () in
  Net.Rpc.serve rpc (addr 1) (fun ~src:_ req ~reply ->
      (* Reply asynchronously after internal work. *)
      Sim.Engine.after e 500 (fun () -> reply req));
  let got = ref false in
  Net.Rpc.call rpc ~src:(addr 0) ~dst:(addr 1) "x" (fun _ -> got := true);
  Sim.Engine.run e;
  Alcotest.(check bool) "deferred reply arrives" true !got;
  Alcotest.(check int) "no outstanding calls" 0 (Net.Rpc.outstanding_calls rpc)

let test_rpc_double_reply_rejected () =
  let e, rpc = mk_rpc () in
  let saw_failure = ref false in
  Net.Rpc.serve rpc (addr 1) (fun ~src:_ req ~reply ->
      reply req;
      match reply req with
      | () -> ()
      | exception Failure _ -> saw_failure := true);
  Net.Rpc.call rpc ~src:(addr 0) ~dst:(addr 1) "x" (fun _ -> ());
  Sim.Engine.run e;
  Alcotest.(check bool) "double reply raises" true !saw_failure

let test_rpc_oneway () =
  let e, rpc = mk_rpc () in
  let got = ref [] in
  Net.Rpc.serve_oneway rpc (addr 2) (fun ~src msg ->
      got := (Net.Address.to_int src, msg) :: !got);
  Net.Rpc.send rpc ~src:(addr 0) ~dst:(addr 2) "hello";
  Sim.Engine.run e;
  Alcotest.(check (list (pair int string))) "oneway" [ (0, "hello") ] !got

let test_rpc_crash_drops () =
  let e, rpc = mk_rpc () in
  let served = ref 0 in
  Net.Rpc.serve rpc (addr 1) (fun ~src:_ req ~reply ->
      incr served;
      reply req);
  Net.Rpc.crash rpc (addr 1);
  let replied = ref false in
  Net.Rpc.call rpc ~src:(addr 0) ~dst:(addr 1) "x" (fun _ -> replied := true);
  Sim.Engine.run e;
  Alcotest.(check int) "not served" 0 !served;
  Alcotest.(check bool) "no reply" false !replied;
  Alcotest.(check int) "call hangs (tracked)" 1 (Net.Rpc.outstanding_calls rpc)

let test_partitioner_prefix () =
  let p = Net.Partitioner.by_prefix_int ~partitions:8 in
  Alcotest.(check int) "w:3 routes to 3" 3
    (Net.Partitioner.partition_of p "w:3:stock:17");
  Alcotest.(check int) "w:11 wraps" 3
    (Net.Partitioner.partition_of p "w:11:dist:0");
  (* No prefix: falls back to hashing, still in range. *)
  let v = Net.Partitioner.partition_of p "noprefix" in
  Alcotest.(check bool) "hash fallback in range" true (v >= 0 && v < 8)

let test_partitioner_hash_spread () =
  let p = Net.Partitioner.hash ~partitions:4 in
  let counts = Array.make 4 0 in
  for i = 0 to 9999 do
    let k = Printf.sprintf "key-%d" i in
    let part = Net.Partitioner.partition_of p k in
    counts.(part) <- counts.(part) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "roughly uniform" true (c > 2000 && c < 3000))
    counts

let test_fnv_deterministic () =
  Alcotest.(check int) "same input same hash"
    (Net.Partitioner.fnv1a "abc") (Net.Partitioner.fnv1a "abc");
  Alcotest.(check bool) "different inputs differ" true
    (Net.Partitioner.fnv1a "abc" <> Net.Partitioner.fnv1a "abd");
  Alcotest.(check bool) "non-negative" true (Net.Partitioner.fnv1a "x" >= 0)

(* qcheck: FIFO holds for any message batch on a link. *)
let prop_fifo =
  QCheck2.Test.make ~name:"network FIFO per link" ~count:50
    QCheck2.Gen.(list_size (int_range 1 100) (int_bound 1000))
    (fun msgs ->
      let e, net = mk_net ~fifo:true () in
      let got = ref [] in
      Net.Network.register net (addr 1) (fun ~src:_ m -> got := m :: !got);
      List.iter (fun m -> Net.Network.send net ~src:(addr 0) ~dst:(addr 1) m) msgs;
      Sim.Engine.run e;
      List.rev !got = msgs)

let suite =
  [ Alcotest.test_case "address" `Quick test_address;
    Alcotest.test_case "latency bounds" `Quick test_latency_bounds;
    Alcotest.test_case "latency spiky" `Quick test_latency_spiky;
    Alcotest.test_case "delivery" `Quick test_delivery;
    Alcotest.test_case "fifo per link" `Quick test_fifo_per_link;
    Alcotest.test_case "drop unregistered" `Quick test_drop_unregistered;
    Alcotest.test_case "drop accounting" `Quick test_drop_accounting;
    Alcotest.test_case "unregister crash" `Quick test_unregister_models_crash;
    Alcotest.test_case "rpc roundtrip" `Quick test_rpc_roundtrip;
    Alcotest.test_case "rpc deferred reply" `Quick test_rpc_deferred_reply;
    Alcotest.test_case "rpc double reply" `Quick test_rpc_double_reply_rejected;
    Alcotest.test_case "rpc oneway" `Quick test_rpc_oneway;
    Alcotest.test_case "rpc crash" `Quick test_rpc_crash_drops;
    Alcotest.test_case "partitioner prefix" `Quick test_partitioner_prefix;
    Alcotest.test_case "partitioner hash spread" `Quick
      test_partitioner_hash_spread;
    Alcotest.test_case "fnv deterministic" `Quick test_fnv_deterministic;
    QCheck_alcotest.to_alcotest prop_fifo ]
