(* Coordination-free commit fast path: classifier coverage (unit +
   qcheck), a commutativity oracle under random interleavings of fast-
   and slow-lane transactions, fastpath-on vs off state equivalence on
   scripted histories, and the chaos battery with the lane enabled.

   Every equivalence test scripts its arrivals (Kernel.Arrivals.Scripted):
   a closed loop re-submits on reply, so collapsing commit latency would
   change the submitted history and the runs would not be comparable. *)

module Value = Functor_cc.Value
module ATxn = Alohadb.Txn

(* ---- classifier ---------------------------------------------------------- *)

let call ?(read_set = []) handler =
  ATxn.Call { handler; read_set; args = [] }

let test_classifier () =
  let ok writes = ATxn.all_commutative ~writes ~precondition_keys:[] in
  Alcotest.(check bool)
    "all four arithmetic builtins accepted" true
    (ok [ ("a", ATxn.Add 1); ("b", ATxn.Subtr 2); ("c", ATxn.Max 3);
          ("d", ATxn.Min 4) ]);
  Alcotest.(check bool) "empty write set rejected" false (ok []);
  Alcotest.(check bool)
    "non-empty read set rejected" false
    (ATxn.all_commutative
       ~writes:[ ("a", ATxn.Add 1) ]
       ~precondition_keys:[ "b" ]);
  Alcotest.(check bool)
    "blind put rejected" false
    (ok [ ("a", ATxn.Put (Value.int 7)) ]);
  Alcotest.(check bool) "delete rejected" false (ok [ ("a", ATxn.Delete) ]);
  Alcotest.(check bool)
    "user call rejected" false
    (ok [ ("a", call ~read_set:[ "b" ] "h") ]);
  Alcotest.(check bool)
    "mixed write set rejected" false
    (ok [ ("a", ATxn.Add 1); ("b", ATxn.Put (Value.int 7)) ]);
  (* Ftype-level view agrees with the op-level one. *)
  List.iter
    (fun (ft, want) ->
      Alcotest.(check bool)
        (Printf.sprintf "ftype %s" (Functor_cc.Ftype.to_string ft))
        want
        (Functor_cc.Ftype.commutative ft))
    [ (Functor_cc.Ftype.Add, true); (Functor_cc.Ftype.Subtr, true);
      (Functor_cc.Ftype.Max, true); (Functor_cc.Ftype.Min, true);
      (Functor_cc.Ftype.Value, false); (Functor_cc.Ftype.Deleted, false);
      (Functor_cc.Ftype.User "x", false) ]

(* The classifier is exactly "non-empty, preconditions empty, every op an
   arithmetic built-in" — checked against an independent fold over random
   write sets. *)
let prop_classifier =
  let op_gen =
    QCheck2.Gen.(
      let* k = int_range 0 6 in
      let* d = int_range (-9) 9 in
      return
        (match k with
        | 0 -> ATxn.Add d
        | 1 -> ATxn.Subtr d
        | 2 -> ATxn.Max d
        | 3 -> ATxn.Min d
        | 4 -> ATxn.Put (Value.int d)
        | 5 -> ATxn.Delete
        | _ -> call "h"))
  in
  let writes_gen =
    QCheck2.Gen.(
      list_size (int_range 0 8)
        (let* key = map (Printf.sprintf "k%d") (int_range 0 5) in
         let* op = op_gen in
         return (key, op)))
  in
  QCheck2.Test.make ~name:"classifier accepts exactly the commutative sets"
    ~count:500
    QCheck2.Gen.(pair writes_gen bool)
    (fun (writes, with_precond) ->
      let precondition_keys = if with_precond then [ "p" ] else [] in
      let expect =
        (not with_precond)
        && writes <> []
        && List.for_all
             (fun (_, op) ->
               match op with
               | ATxn.Add _ | ATxn.Subtr _ | ATxn.Max _ | ATxn.Min _ -> true
               | _ -> false)
             writes
      in
      ATxn.all_commutative ~writes ~precondition_keys = expect)

(* ---- scripted ALOHA runs ------------------------------------------------- *)

let n = 2

(* Run one scripted transaction list through ALOHA and return (final
   values of [keys], result).  [setv] commits its first argument — a
   slow-lane stand-in for arbitrary user logic. *)
let run_aloha ~fastpath ~keys ~txns =
  let module E = Alohadb.Engine in
  let c = E.create (Kernel.Params.make ~fastpath ~n_servers:n ()) in
  E.register c "setv" (fun ctx ->
      Functor_cc.Registry.Commit (Functor_cc.Registry.arg ctx 0));
  List.iter (fun k -> E.load c k (Value.int 0)) keys;
  E.start c;
  let remaining = ref txns in
  let gen ~fe:_ =
    match !remaining with
    | [] -> Alcotest.fail "fastpath: generator exhausted"
    | t :: tl ->
        remaining := tl;
        t
  in
  let arrivals = List.mapi (fun i _ -> (1_000 + (i * 200), i mod n)) txns in
  let r =
    Kernel.Run.run
      (module E)
      ~cluster:c ~gen
      ~arrival:(Kernel.Arrivals.Scripted { arrivals })
      ~warmup_us:500 ~measure_us:3_000_000 ()
  in
  let values =
    List.map
      (fun k ->
        match E.read_committed c k with Some v -> Value.to_int v | None -> 0)
      keys
  in
  E.stop c;
  (values, r)

let fast_commits (r : Kernel.Result.t) =
  match List.assoc_opt "fastpath commits" r.Kernel.Result.counters with
  | Some v -> v
  | None -> 0

(* ---- commutativity oracle under random interleavings --------------------- *)

(* Key families, one commutative fold each, so every submission order
   reaches the same final state: additive counters (Add/Subtr), MAX
   watermarks, and per-transaction-unique slow keys (a blind Put or a
   [setv] call, at most one writer per key).  Slow transactions may also
   carry an Add — the mixed write set forces them onto the slow lane
   while still touching the shared counters. *)

let add_keys = List.init 4 (fun i -> Printf.sprintf "fa:%d:%d" (i mod n) i)
let max_keys = List.init 2 (fun i -> Printf.sprintf "fm:%d:%d" (i mod n) i)

type step =
  | Fast_add of int * int  (* counter idx, signed delta *)
  | Fast_max of int * int  (* watermark idx, value *)
  | Slow_put of int  (* value; key is the step's own slot *)
  | Slow_call of int
  | Slow_mixed of int * int  (* put value + counter idx (delta 1) *)

let step_gen =
  QCheck2.Gen.(
    let* k = int_range 0 5 in
    let* a = int_range 0 3 in
    let* v = int_range 1 50 in
    return
      (match k with
      | 0 | 1 -> Fast_add (a, if v mod 2 = 0 then v else -v)
      | 2 -> Fast_max (a mod 2, v)
      | 3 -> Slow_put v
      | 4 -> Slow_call v
      | _ -> Slow_mixed (v, a)))

let slow_key i = Printf.sprintf "fs:%d:%d" (i mod n) i

let txn_of_step i = function
  | Fast_add (a, d) ->
      Kernel.Txn.make [ (List.nth add_keys a, Kernel.Txn.Add d) ]
  | Fast_max (m, v) ->
      Kernel.Txn.make [ (List.nth max_keys m, Kernel.Txn.Max v) ]
  | Slow_put v -> Kernel.Txn.make [ (slow_key i, Kernel.Txn.Put (Value.int v)) ]
  | Slow_call v ->
      Kernel.Txn.make
        [ (slow_key i,
           Kernel.Txn.Call
             { handler = "setv"; read_set = [ slow_key i ];
               args = [ Value.int v ] }) ]
  | Slow_mixed (v, a) ->
      Kernel.Txn.make
        [ (slow_key i, Kernel.Txn.Put (Value.int v));
          (List.nth add_keys a, Kernel.Txn.Add 1) ]

let is_fast = function Fast_add _ | Fast_max _ -> true | _ -> false

let oracle steps =
  let adds = Array.make (List.length add_keys) 0 in
  let maxs = Array.make (List.length max_keys) 0 in
  let slows =
    List.mapi
      (fun i s ->
        match s with
        | Slow_put v | Slow_call v -> [ (slow_key i, v) ]
        | Slow_mixed (v, _) -> [ (slow_key i, v) ]
        | Fast_add _ | Fast_max _ -> [])
      steps
    |> List.concat
  in
  List.iteri
    (fun _ s ->
      match s with
      | Fast_add (a, d) -> adds.(a) <- adds.(a) + d
      | Fast_max (m, v) -> maxs.(m) <- max maxs.(m) v
      | Slow_mixed (_, a) -> adds.(a) <- adds.(a) + 1
      | Slow_put _ | Slow_call _ -> ())
    steps;
  (Array.to_list adds, Array.to_list maxs, slows)

let prop_interleaving_oracle =
  QCheck2.Test.make
    ~name:"fast lane converges to the commutative oracle (random history)"
    ~count:15
    QCheck2.Gen.(list_size (int_range 1 24) step_gen)
    (fun steps ->
      let exp_adds, exp_maxs, exp_slows = oracle steps in
      let keys = add_keys @ max_keys @ List.map fst exp_slows in
      let txns = List.mapi txn_of_step steps in
      let values_on, r_on = run_aloha ~fastpath:true ~keys ~txns in
      let values_off, r_off = run_aloha ~fastpath:false ~keys ~txns in
      let expected = exp_adds @ exp_maxs @ List.map snd exp_slows in
      values_on = expected && values_off = expected
      && r_on.Kernel.Result.committed = List.length steps
      && r_off.Kernel.Result.committed = List.length steps
      && fast_commits r_on
         = List.length (List.filter is_fast steps)
      && fast_commits r_off = 0)

(* ---- deterministic on-vs-off differentials -------------------------------- *)

(* Counter-only history (the cross-engine batch shape): every transaction
   takes the fast lane, state matches the closed-form totals, and the
   measured p50 collapses below the slow path's epoch-bound latency. *)
let test_equiv_counters () =
  let rng = Sim.Rng.create 321 in
  let batch =
    List.init 60 (fun _ ->
        (Sim.Rng.int rng 4, Sim.Rng.int rng 2, 1 + Sim.Rng.int rng 9))
  in
  let txns =
    List.map
      (fun (a, m, d) ->
        Kernel.Txn.make
          [ (List.nth add_keys a, Kernel.Txn.Add d);
            (List.nth max_keys m, Kernel.Txn.Max d) ])
      batch
  in
  let keys = add_keys @ max_keys in
  let values_off, r_off = run_aloha ~fastpath:false ~keys ~txns in
  let values_on, r_on = run_aloha ~fastpath:true ~keys ~txns in
  Alcotest.(check (list int)) "on = off" values_off values_on;
  Alcotest.(check int)
    "off committed all" (List.length batch) r_off.Kernel.Result.committed;
  Alcotest.(check int)
    "on committed all" (List.length batch) r_on.Kernel.Result.committed;
  Alcotest.(check int)
    "every txn took the fast lane" (List.length batch) (fast_commits r_on);
  Alcotest.(check bool)
    (Printf.sprintf "p50 collapsed (%d us on vs %d us off)"
       r_on.Kernel.Result.lat_p50_us r_off.Kernel.Result.lat_p50_us)
    true
    (r_on.Kernel.Result.lat_p50_us < r_off.Kernel.Result.lat_p50_us);
  Alcotest.(check bool) "on p50 sub-ms" true
    (r_on.Kernel.Result.lat_p50_us < 1_000)

(* Slow-only history under fastpath=on: the classifier must keep every
   transaction on the ordered lane (puts, calls, preconditioned adds,
   mixed write sets), and the final state must match fastpath=off. *)
let test_negative_stay_slow () =
  let keys = List.init 8 (fun i -> Printf.sprintf "ns:%d:%d" (i mod n) i) in
  let counter = List.hd add_keys in
  let txns =
    [ Kernel.Txn.make [ (List.nth keys 0, Kernel.Txn.Put (Value.int 11)) ];
      Kernel.Txn.make
        [ (List.nth keys 1,
           Kernel.Txn.Call
             { handler = "setv"; read_set = [ List.nth keys 1 ];
               args = [ Value.int 22 ] }) ];
      (* commutative ops but a non-empty read set: rejected *)
      Kernel.Txn.make
        ~precondition_keys:[ List.nth keys 2 ]
        [ (counter, Kernel.Txn.Add 5) ];
      (* mixed write set: rejected as a whole *)
      Kernel.Txn.make
        [ (List.nth keys 3, Kernel.Txn.Put (Value.int 33));
          (counter, Kernel.Txn.Add 7) ] ]
  in
  let all_keys = (counter :: keys) in
  let values_off, r_off = run_aloha ~fastpath:false ~keys:all_keys ~txns in
  let values_on, r_on = run_aloha ~fastpath:true ~keys:all_keys ~txns in
  Alcotest.(check (list int)) "on = off" values_off values_on;
  Alcotest.(check int) "counter total" 12 (List.hd values_on);
  Alcotest.(check int)
    "all committed" (List.length txns) r_on.Kernel.Result.committed;
  Alcotest.(check int) "no txn took the fast lane" 0 (fast_commits r_on);
  Alcotest.(check int) "off lane untouched" 0 (fast_commits r_off)

(* ---- chaos battery with the fast lane ------------------------------------ *)

(* The chaos workload is all blind increments, so with the lane enabled
   every transaction commits coordination-free — under crashes, loss and
   partitions, replicated and not.  Same fixed seeds as test_chaos. *)
let test_chaos_fastpath () =
  let aloha =
    match Chaos.Driver.target_of_name "aloha" with
    | Some t -> t
    | None -> Alcotest.fail "aloha chaos target missing"
  in
  List.iter
    (fun (seed, replicas) ->
      let r =
        Chaos.Driver.run_seed ~fastpath:true ~replicas aloha ~seed
          ~n_servers:3
      in
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d k=%d invariants" seed replicas)
        [] r.Chaos.Driver.violations;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d k=%d used the fast lane" seed replicas)
        true r.Chaos.Driver.fastpath)
    [ (1, 1); (2, 1); (3, 2) ]

let suite =
  [ Alcotest.test_case "classifier accepts/rejects" `Quick test_classifier;
    QCheck_alcotest.to_alcotest prop_classifier;
    QCheck_alcotest.to_alcotest prop_interleaving_oracle;
    Alcotest.test_case "counter history: on = off, latency collapses" `Slow
      test_equiv_counters;
    Alcotest.test_case "ineligible txns stay on the slow lane" `Quick
      test_negative_stay_slow;
    Alcotest.test_case "chaos battery with fast lane (k=1,2)" `Slow
      test_chaos_fastpath ]
