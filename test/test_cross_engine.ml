(* Cross-engine equivalence: the same seeded YCSB-style increment history
   fed through the shared kernel client loop to every registered ENGINE
   adapter (ALOHA-DB, Calvin, 2PL/2PC) must leave identical per-key
   totals — increments commute, so any serializable engine reaches the
   same state.  Also a model-based qcheck test for Calvin's lock manager. *)

module Value = Functor_cc.Value

let n = 2
let keys = List.init 12 (fun i -> Printf.sprintf "c:%d:%d" (i mod n) i)

(* A deterministic batch of increment transactions: (key indices, delta). *)
let batch =
  let rng = Sim.Rng.create 123 in
  List.init 60 (fun _ ->
      let k1 = Sim.Rng.int rng 12 in
      let k2 = Sim.Rng.int rng 12 in
      let delta = 1 + Sim.Rng.int rng 9 in
      ((k1, k2), delta))

let expected_totals () =
  let totals = Array.make 12 0 in
  List.iter
    (fun ((k1, k2), delta) ->
      totals.(k1) <- totals.(k1) + delta;
      if k2 <> k1 then totals.(k2) <- totals.(k2) + delta)
    batch;
  totals

let txn_keys (k1, k2) =
  List.sort_uniq compare [ List.nth keys k1; List.nth keys k2 ]

(* One scripted submission per batch entry, alternating frontends.  The
   warmup window ends before the first arrival, so the committed counter
   covers the whole history. *)
let run_engine ?compute ?runtime ?domains (Kernel.Intf.Pack (module E)) =
  let c =
    E.create (Kernel.Params.make ?compute ?runtime ?domains ~n_servers:n ())
  in
  List.iter (fun k -> E.load c k (Value.int 0)) keys;
  E.start c;
  let remaining = ref batch in
  let gen ~fe:_ =
    match !remaining with
    | [] -> Alcotest.fail (E.name ^ ": generator exhausted")
    | (ks, delta) :: tl ->
        remaining := tl;
        Kernel.Txn.make
          (List.map (fun k -> (k, Kernel.Txn.Add delta)) (txn_keys ks))
  in
  let arrivals = List.mapi (fun i _ -> (1_000 + (i * 400), i mod n)) batch in
  let r =
    Kernel.Run.run
      (module E)
      ~cluster:c ~gen
      ~arrival:(Kernel.Arrivals.Scripted { arrivals })
      ~warmup_us:500 ~measure_us:3_000_000 ()
  in
  Alcotest.(check int)
    (E.name ^ " committed all")
    (List.length batch) r.Kernel.Result.committed;
  Alcotest.(check int) (E.name ^ " aborted none") 0 (Kernel.Result.abort_count r);
  let totals =
    List.map
      (fun k ->
        match E.read_committed c k with Some v -> Value.to_int v | None -> 0)
      keys
  in
  (* Joins the real runtime's worker domains when there are any; a no-op
     for purely simulated runs. *)
  E.stop c;
  (totals, r)

let engines =
  [ Kernel.Intf.Pack (module Alohadb.Engine);
    Kernel.Intf.Pack (module Calvin.Engine);
    Kernel.Intf.Pack (module Twopl.Engine) ]

let test_three_engines_agree () =
  let expected = Array.to_list (expected_totals ()) in
  List.iter
    (fun (Kernel.Intf.Pack (module E) as engine) ->
      Alcotest.(check (list int))
        (E.name ^ " = oracle") expected (fst (run_engine engine)))
    engines

(* Compute-mode equivalence: the same scripted history through ALOHA's
   three functor-computing strategies must be indistinguishable in the
   simulation — identical committed state AND identical throughput.  All
   three modes submit one dispatch job per buffered item at the same
   simulated cost; only the host-side work per job differs, so any tps
   divergence means a mode leaked real work into simulated time. *)
let test_compute_modes_agree () =
  let expected = Array.to_list (expected_totals ()) in
  let aloha = Kernel.Intf.Pack (module Alohadb.Engine) in
  let runs =
    List.map
      (fun mode -> (mode, run_engine ~compute:mode aloha))
      [ "ondemand"; "pool"; "planned" ]
  in
  let _, (_, r0) = List.hd runs in
  List.iter
    (fun (mode, (totals, r)) ->
      Alcotest.(check (list int)) (mode ^ " totals = oracle") expected totals;
      Alcotest.(check (float 0.0))
        (mode ^ " tps matches ondemand")
        r0.Kernel.Result.throughput_tps r.Kernel.Result.throughput_tps)
    runs

(* Sim-vs-real equivalence: the same scripted history through ALOHA with
   functor evaluation on simulated workers (--runtime sim) and on real
   OCaml 5 domains (--runtime real) must commit the same transactions and
   leave identical final state, for every compute mode.  Deliberately NOT
   a throughput check: the real runtime evaluates strata eagerly at epoch
   close, which shifts simulated completion timing (see DESIGN.md §12) —
   state equivalence is the invariant, wall clock is the benchmark's job.
   run_engine already asserts the committed/aborted counts match the
   script, so a totals match here means identical committed sets. *)
let test_sim_vs_real_agree () =
  let expected = Array.to_list (expected_totals ()) in
  let aloha = Kernel.Intf.Pack (module Alohadb.Engine) in
  List.iter
    (fun mode ->
      let sim_totals, _ = run_engine ~compute:mode aloha in
      let real_totals, _ =
        run_engine ~compute:mode ~runtime:"real" ~domains:4 aloha
      in
      Alcotest.(check (list int)) (mode ^ " sim = oracle") expected sim_totals;
      Alcotest.(check (list int))
        (mode ^ " real(4 domains) = sim") sim_totals real_totals)
    [ "ondemand"; "pool"; "planned" ]

(* ---- model-based lock manager check -------------------------------------- *)

(* Random request/release sequences; invariants checked after each step:
   no write lock shared, readers never coexist with a writer, and every
   transaction eventually becomes ready once conflicts drain. *)
let prop_lock_manager_safety =
  let module LM = Calvin.Lock_manager in
  let step_gen =
    QCheck2.Gen.(
      let* uid = int_range 1 8 in
      let* kind = int_range 0 2 in
      let* key = map (Printf.sprintf "k%d") (int_range 0 3) in
      return (uid, kind, key))
  in
  QCheck2.Test.make ~name:"lock manager safety + liveness" ~count:300
    QCheck2.Gen.(list_size (int_range 1 60) step_gen)
    (fun steps ->
      let ready = Hashtbl.create 8 in
      let lm = LM.create ~on_ready:(fun uid -> Hashtbl.replace ready uid ()) in
      let live = Hashtbl.create 8 in
      let ok = ref true in
      let check_key key =
        let holders = LM.holders lm key in
        (* at most one writer, and a writer excludes everyone else *)
        let writers =
          List.filter
            (fun uid ->
              match Hashtbl.find_opt live uid with
              | Some keys -> List.mem_assoc key keys
                             && List.assoc key keys = LM.Write
              | None -> false)
            holders
        in
        if List.length writers > 1 then ok := false;
        if writers <> [] && List.length holders > 1 then ok := false
      in
      List.iter
        (fun (uid, kind, key) ->
          match kind with
          | 0 when not (Hashtbl.mem live uid) ->
              let keys = [ (key, LM.Read) ] in
              Hashtbl.replace live uid keys;
              LM.request lm ~uid ~keys;
              check_key key
          | 1 when not (Hashtbl.mem live uid) ->
              let keys = [ (key, LM.Write) ] in
              Hashtbl.replace live uid keys;
              LM.request lm ~uid ~keys;
              check_key key
          | 2 when Hashtbl.mem live uid ->
              Hashtbl.remove live uid;
              Hashtbl.remove ready uid;
              LM.release lm ~uid;
              check_key key
          | _ -> ())
        steps;
      (* liveness: release everything still live; everyone must have become
         ready at some point before or during drain *)
      Hashtbl.iter (fun uid _ -> LM.release lm ~uid) live;
      !ok)

let suite =
  [ Alcotest.test_case "three engines agree" `Slow test_three_engines_agree;
    Alcotest.test_case "compute modes agree" `Slow test_compute_modes_agree;
    Alcotest.test_case "sim vs real runtime agree" `Slow
      test_sim_vs_real_agree;
    QCheck_alcotest.to_alcotest prop_lock_manager_safety ]
