(* Replicated backends with failover (DESIGN.md §13).

   Four layers of proof, mirroring the ISSUE-8 battery:
   - seeded chaos schedules that crash EVERY backend once per run at
     k = 2 and k = 3, checked by the driver's survival invariants (no
     committed transaction lost, faulted state = replicated crash-free
     reference, completion, monotone probes, trace determinism);
   - targeted failover scenarios: a permanent primary loss served by a
     promoted replica to the end of the run, and a rejoin-then-promote-
     back round trip proving a re-joined primary converges;
   - a qcheck model test of the pure ack-gating state machine
     ({!Alohadb.Repl}) against a sorted-assoc reference: no epoch is
     ever reported durable unless every surviving replica can replay it;
   - the behaviour-neutrality differential: --replicas 2 with zero
     faults is indistinguishable from --replicas 1 (identical committed
     state AND identical simulated tps) across all three compute
     modes. *)

module Value = Functor_cc.Value
module R = Alohadb.Repl

let n_servers = 3

let aloha_target =
  match Chaos.Driver.target_of_name "aloha" with
  | Some t -> t
  | None -> assert false

let check_report (r : Chaos.Driver.report) =
  if not (Chaos.Driver.passed r) then
    Alcotest.failf "aloha k=%d seed %d: %s" r.Chaos.Driver.replicas
      r.Chaos.Driver.seed
      (String.concat "; " r.Chaos.Driver.violations)

(* ---- chaos battery: every backend crashed once per run ---------------- *)

let test_battery replicas seeds () =
  List.iter
    (fun seed ->
      let r =
        Chaos.Driver.run_seed aloha_target ~replicas ~seed ~n_servers
      in
      check_report r;
      (* the replicated generator really did crash every backend *)
      Alcotest.(check bool)
        (Printf.sprintf "seed %d committed everything" seed)
        true
        (r.Chaos.Driver.committed = r.Chaos.Driver.submitted))
    seeds

(* ---- targeted failover scenarios -------------------------------------- *)

(* A primary lost for good (restart far beyond the 1s run horizon): with
   k = 2 the promoted follower must carry its partition to the end of the
   run — every invariant including completion holds while one backend
   stays dark.  (With k = 1 this same schedule cannot complete, which is
   the availability figure's edge.) *)
let test_permanent_primary_loss () =
  let schedule =
    { Chaos.Schedule.seed = 77;
      n_servers;
      events =
        [ Chaos.Schedule.Crash
            { node = 1; at_us = 20_000; restart_at_us = 2_000_000 } ] }
  in
  check_report
    (Chaos.Driver.run_schedule aloha_target ~replicas:2 ~schedule)

(* Rejoin convergence, the hard way: crash primary 0 (partition 0 fails
   over to node 1), let 0 restart and catch up as a follower, then crash
   node 1 — partition 0 must fail over BACK to node 0, whose follower log
   is complete only if the rejoin resync worked.  The end-state oracle
   over all keys proves the round trip lost nothing. *)
let test_rejoin_then_promote_back () =
  let schedule =
    { Chaos.Schedule.seed = 78;
      n_servers;
      events =
        [ Chaos.Schedule.Crash
            { node = 0; at_us = 6_000; restart_at_us = 14_000 };
          Chaos.Schedule.Crash
            { node = 1; at_us = 45_000; restart_at_us = 53_000 } ] }
  in
  check_report
    (Chaos.Driver.run_schedule aloha_target ~replicas:2 ~schedule)

(* Message loss on top of a crash: ship, ack, re-route and Batch_done
   retransmission paths all under a lossy network. *)
let test_failover_under_loss () =
  let schedule =
    { Chaos.Schedule.seed = 79;
      n_servers;
      events =
        [ Chaos.Schedule.Crash
            { node = 2; at_us = 8_000; restart_at_us = 16_000 };
          Chaos.Schedule.Edict
            (Net.Faults.edict Net.Faults.Drop ~p:0.15 ~from_us:2_000
               ~until_us:30_000) ] }
  in
  check_report
    (Chaos.Driver.run_schedule aloha_target ~replicas:2 ~schedule)

(* ---- single-copy assumption regressions ------------------------------- *)

(* Checkpointing truncates and renumbers the WAL, but WAL positions ARE
   the replication ship sequence — taking a checkpoint on a replicated
   primary would silently desynchronise every follower.  The guard must
   refuse. *)
let test_checkpoint_refused_under_replication () =
  let c =
    Alohadb.Cluster.create
      { Alohadb.Cluster.default_options with
        n_servers;
        config = { Alohadb.Config.default with Alohadb.Config.replicas = 2 } }
  in
  Alohadb.Cluster.start c;
  Alcotest.check_raises "checkpoint_now refuses"
    (Invalid_argument
       "Server.checkpoint_now: unsupported under replication")
    (fun () -> Alohadb.Server.checkpoint_now (Alohadb.Cluster.server c 0))

(* Replication implies durability: a replicas > 1 cluster must come up
   with a WAL on every server even when the caller left durability off
   (shipping volatile entries would let a follower "ack" state the
   primary itself can lose). *)
let test_replication_forces_durability () =
  let c =
    Alohadb.Cluster.create
      { Alohadb.Cluster.default_options with
        n_servers;
        config =
          { Alohadb.Config.default with
            Alohadb.Config.replicas = 2;
            durability = false } }
  in
  Alcotest.(check bool) "wal present" true
    (Alohadb.Server.wal (Alohadb.Cluster.server c 0) <> None);
  Alcotest.(check int) "effective k" 2 (Alohadb.Cluster.replicas c);
  (* groups are the k consecutive nodes *)
  Alcotest.(check (list int)) "group of partition 2" [ 2; 0 ]
    (Alohadb.Cluster.group_members c ~partition:2)

(* ---- qcheck: ack gating vs a sorted-assoc reference ------------------- *)

(* Model of one replication group: the primary plus two followers, driven
   by a random interleaving of append / ack / crash(member) / rejoin /
   epoch-close / primary-crash events.  The reference keeps follower acks
   and epoch barriers as sorted assoc lists and recomputes the durable
   epoch from scratch after every op; {!Alohadb.Repl} must agree, and —
   the actual safety property — at the moment an epoch-durable gate
   fires, every live follower's acked prefix must cover the epoch's
   barrier (so ANY surviving replica can replay the epoch), unless no
   follower is live at all (degraded single-copy mode, where only the
   primary's own log holds it). *)

type model = {
  mutable m_len : int;
  mutable m_acked : (int * int) list;  (* member -> ack, sorted by member *)
  mutable m_live : (int * bool) list;
  mutable m_barriers : (int * int) list;  (* epoch -> seq, sorted by epoch *)
  mutable m_durable : int;
}

let followers = [ 2; 3 ]

let model_floor m =
  let live_acks =
    List.filter_map
      (fun (f, a) -> if List.assoc f m.m_live then Some a else None)
      m.m_acked
  in
  match live_acks with
  | [] -> m.m_len
  | acks -> List.fold_left min max_int acks

let model_refresh m =
  let fl = model_floor m in
  List.iter
    (fun (e, seq) -> if seq <= fl && e > m.m_durable then m.m_durable <- e)
    m.m_barriers

let set_assoc k v l = (k, v) :: List.remove_assoc k l |> List.sort compare

type op =
  | Append
  | Ack of int * int  (* follower index (0|1), raw seq (clamped to len) *)
  | Down of int
  | Rejoin of int
  | Close
  | PrimaryCrash of int  (* raw durable length (clamped to len) *)

let gen_ops =
  let open QCheck2.Gen in
  let op =
    frequency
      [ (6, pure Append);
        (5, map2 (fun f s -> Ack (f, s)) (int_range 0 1) (int_range 0 40));
        (2, map (fun f -> Down f) (int_range 0 1));
        (2, map (fun f -> Rejoin f) (int_range 0 1));
        (3, pure Close);
        (1, map (fun d -> PrimaryCrash d) (int_range 0 40)) ]
  in
  list_size (int_range 1 120) op

let prop_repl_matches_reference =
  QCheck2.Test.make ~name:"repl ack gating = sorted-assoc reference"
    ~count:500 gen_ops (fun ops ->
      let r =
        R.create ~partition:0 ~term:1 ~primary:1 ~members:(1 :: followers)
          ~len:0
      in
      let m =
        { m_len = 0;
          m_acked = List.map (fun f -> (f, 0)) followers;
          m_live = List.map (fun f -> (f, true)) followers;
          m_barriers = [];
          m_durable = 0 }
      in
      let next_epoch = ref 0 in
      let violations = ref [] in
      let watch_epoch epoch barrier_seq =
        R.when_epoch_durable r ~epoch (fun () ->
            (* safety: at fire time a surviving replica can replay it *)
            let live =
              List.filter (fun (_, l) -> l) m.m_live |> List.map fst
            in
            List.iter
              (fun f ->
                if List.assoc f m.m_acked < barrier_seq then
                  violations :=
                    Printf.sprintf
                      "epoch %d fired with follower %d acked %d < %d" epoch
                      f (List.assoc f m.m_acked) barrier_seq
                    :: !violations)
              live)
      in
      List.iter
        (fun op ->
          (* The model is updated BEFORE the Repl call: epoch-durable
             gates fire synchronously inside ack/member_down, and the
             safety callback reads the model at fire time. *)
          (match op with
          | Append ->
              m.m_len <- m.m_len + 1;
              ignore (R.append r)
          | Ack (fi, raw) ->
              let f = List.nth followers fi in
              let seq = min raw m.m_len in
              if seq > List.assoc f m.m_acked then
                m.m_acked <- set_assoc f seq m.m_acked;
              R.ack r ~member:f ~seq
          | Down fi ->
              let f = List.nth followers fi in
              m.m_live <- set_assoc f false m.m_live;
              R.member_down r ~id:f
          | Rejoin fi ->
              let f = List.nth followers fi in
              m.m_live <- set_assoc f true m.m_live;
              m.m_acked <- set_assoc f 0 m.m_acked;
              R.member_rejoin r ~id:f
          | Close ->
              incr next_epoch;
              let e = !next_epoch in
              m.m_barriers <- set_assoc e m.m_len m.m_barriers;
              R.close_epoch r ~epoch:e;
              watch_epoch e m.m_len
          | PrimaryCrash raw ->
              let durable = min raw m.m_len in
              m.m_len <- durable;
              m.m_barriers <-
                List.filter (fun (_, s) -> s <= durable) m.m_barriers;
              m.m_acked <- List.map (fun (f, _) -> (f, 0)) m.m_acked;
              R.crash r ~durable_len:durable);
          model_refresh m;
          if R.len r <> m.m_len then
            violations :=
              Printf.sprintf "len %d <> model %d" (R.len r) m.m_len
              :: !violations;
          if R.durable_epoch r <> m.m_durable then
            violations :=
              Printf.sprintf "durable_epoch %d <> model %d"
                (R.durable_epoch r) m.m_durable
              :: !violations;
          let model_lag = max 0 (m.m_len - model_floor m) in
          if R.replica_lag r <> model_lag then
            violations :=
              Printf.sprintf "replica_lag %d <> model %d" (R.replica_lag r)
                model_lag
              :: !violations)
        ops;
      match !violations with
      | [] -> true
      | v :: _ -> QCheck2.Test.fail_report v)

(* ---- behaviour-neutrality differential -------------------------------- *)

(* The cross-engine scripted increment history, run at k = 1 and k = 2
   with zero faults: replication must be invisible — identical committed
   state and EXACTLY identical simulated throughput (the ship plane has
   its own RNG stream and its handlers are off the worker pool, so not
   one data-plane event may shift).  Pinned with a 0.0-epsilon float
   check across all three compute modes. *)

let diff_n = 2
let diff_keys =
  List.init 12 (fun i -> Printf.sprintf "c:%d:%d" (i mod diff_n) i)

let diff_batch =
  let rng = Sim.Rng.create 321 in
  List.init 50 (fun _ ->
      let k1 = Sim.Rng.int rng 12 in
      let k2 = Sim.Rng.int rng 12 in
      let delta = 1 + Sim.Rng.int rng 9 in
      ((k1, k2), delta))

let run_aloha ?compute ~replicas () =
  let c =
    Alohadb.Engine.create
      (Kernel.Params.make ?compute ~replicas ~n_servers:diff_n ())
  in
  List.iter (fun k -> Alohadb.Engine.load c k (Value.int 0)) diff_keys;
  Alohadb.Engine.start c;
  let remaining = ref diff_batch in
  let gen ~fe:_ =
    match !remaining with
    | [] -> Alcotest.fail "replication differential: generator exhausted"
    | ((k1, k2), delta) :: tl ->
        remaining := tl;
        let ks =
          List.sort_uniq compare
            [ List.nth diff_keys k1; List.nth diff_keys k2 ]
        in
        Kernel.Txn.make (List.map (fun k -> (k, Kernel.Txn.Add delta)) ks)
  in
  let arrivals =
    List.mapi (fun i _ -> (1_000 + (i * 400), i mod diff_n)) diff_batch
  in
  let r =
    Kernel.Run.run
      (module Alohadb.Engine)
      ~cluster:c ~gen
      ~arrival:(Kernel.Arrivals.Scripted { arrivals })
      ~warmup_us:500 ~measure_us:3_000_000 ()
  in
  let totals =
    List.map
      (fun k ->
        match Alohadb.Engine.read_committed c k with
        | Some v -> Value.to_int v
        | None -> 0)
      diff_keys
  in
  Alohadb.Engine.stop c;
  (totals, r)

let test_replicas_behaviour_neutral () =
  List.iter
    (fun compute ->
      let t1, r1 = run_aloha ~compute ~replicas:1 () in
      let t2, r2 = run_aloha ~compute ~replicas:2 () in
      Alcotest.(check (list int))
        (compute ^ ": k=2 state = k=1 state") t1 t2;
      Alcotest.(check int)
        (compute ^ ": k=2 committed = k=1")
        r1.Kernel.Result.committed r2.Kernel.Result.committed;
      Alcotest.(check (float 0.0))
        (compute ^ ": k=2 tps = k=1 tps (exact)")
        r1.Kernel.Result.throughput_tps r2.Kernel.Result.throughput_tps)
    [ "ondemand"; "pool"; "planned" ]

let suite =
  [ Alcotest.test_case "battery k=2 (crash every backend)" `Slow
      (test_battery 2 [ 1; 2; 3 ]);
    Alcotest.test_case "battery k=3 (crash every backend)" `Slow
      (test_battery 3 [ 4; 5 ]);
    Alcotest.test_case "permanent primary loss" `Slow
      test_permanent_primary_loss;
    Alcotest.test_case "rejoin then promote back" `Slow
      test_rejoin_then_promote_back;
    Alcotest.test_case "failover under message loss" `Slow
      test_failover_under_loss;
    Alcotest.test_case "checkpoint refused under replication" `Quick
      test_checkpoint_refused_under_replication;
    Alcotest.test_case "replication forces durability" `Quick
      test_replication_forces_durability;
    QCheck_alcotest.to_alcotest prop_repl_matches_reference;
    Alcotest.test_case "replicas=2 behaviour-neutral vs replicas=1" `Slow
      test_replicas_behaviour_neutral ]
