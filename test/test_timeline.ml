(* Epoch-ledger timeline: the Ledger accumulator, its JSONL rendering,
   the Analyze parser/incident reconstruction/doctor invariants, the
   append-only TIMELINE.jsonl writer, and — end to end — that a k=2 chaos
   run with backend crashes yields a timeline from which the doctor
   reconstructs resolved failover incidents.  Plus the load-bearing
   default: attaching a ledger must not change simulated behaviour. *)

let aloha =
  match Chaos.Driver.target_of_name "aloha" with
  | Some t -> t
  | None -> assert false

(* ---- hand-rolled JSON parser -------------------------------------------- *)

let test_json_parser () =
  let open Obs.Analyze.Json in
  (match parse "{\"a\":1,\"b\":[true,null,\"x\\n\"],\"c\":-2.5}" with
  | Obj fields ->
      Alcotest.(check int) "int member" 1 (to_int (member "a" (Obj fields)));
      (match member "b" (Obj fields) with
      | Some (Arr [ Bool true; Null; Str s ]) ->
          Alcotest.(check string) "escape decoded" "x\n" s
      | _ -> Alcotest.fail "array member shape");
      (match member "c" (Obj fields) with
      | Some (Num f) -> Alcotest.(check (float 1e-9)) "negative float" (-2.5) f
      | _ -> Alcotest.fail "number member")
  | _ -> Alcotest.fail "expected object");
  (match parse "{} x" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "trailing garbage accepted");
  Alcotest.(check bool) "missing member is None" true
    (member "zz" (parse "{}") = None)

(* ---- ledger -> lines -> segments roundtrip ------------------------------ *)

let test_ledger_roundtrip () =
  let l = Obs.Ledger.create () in
  Obs.Ledger.set_meta l ~cfg_epoch_us:10_000 ~nodes:2 ~replicas:2;
  Obs.Ledger.note_open l ~node:0 ~epoch:1 ~t_us:0;
  Obs.Ledger.note_assigned l ~node:0 ~epoch:1;
  Obs.Ledger.note_assigned l ~node:0 ~epoch:1;
  Obs.Ledger.note_fast_commit l ~node:0 ~epoch:1;
  Obs.Ledger.note_ship_lag l ~node:0 ~epoch:1 ~partition:0 ~lag_us:120;
  Obs.Ledger.note_ship_lag l ~node:0 ~epoch:1 ~partition:0 ~lag_us:80;
  Obs.Ledger.note_ship_lag l ~node:0 ~epoch:1 ~partition:0 ~lag_us:200;
  Obs.Ledger.note_gate_wait l ~node:0 ~epoch:1 ~partition:0 ~wait_us:45;
  Obs.Ledger.note_group l ~node:0 ~epoch:1 ~partition:0 ~ack_floor:7
    ~live_followers:1 ~degraded:false;
  Obs.Ledger.note_plan l ~node:0 ~epoch:1 ~nodes:4 ~edges:3 ~strata:2
    ~critical_path:1;
  Obs.Ledger.note_pool l ~node:0 ~epoch:1 ~workers:[| (3, 1, 0); (2, 0, 1) |];
  Obs.Ledger.note_close l ~node:0 ~epoch:1 ~t_us:11_000 ~watermark:42
    ~watermark_lag_us:500;
  Obs.Ledger.note_stratum l ~node:0 ~t0_us:100 ~t1_us:250 ~size:4
    ~workers:[| (3, 1, 0); (1, 0, 0) |];
  (* Crash -> detect -> promote -> first commit on the watched partition. *)
  Obs.Ledger.note_event l ~kind:Obs.Ledger.Crash ~node:1 ~t_us:2_000 ();
  Obs.Ledger.note_event l ~kind:Obs.Ledger.Detect ~node:1 ~t_us:5_000 ();
  Obs.Ledger.note_event l ~kind:Obs.Ledger.Promote ~node:0 ~t_us:5_100
    ~partition:1 ();
  Alcotest.(check bool) "promotion opens the watch" true
    (Obs.Ledger.awaiting_first_commit l);
  Obs.Ledger.note_commit l ~node:0 ~t_us:6_400 ~partitions:[ 0; 1 ];
  Alcotest.(check bool) "first commit closes the watch" false
    (Obs.Ledger.awaiting_first_commit l);
  (* A second commit must not emit another first_commit. *)
  Obs.Ledger.note_commit l ~node:0 ~t_us:7_000 ~partitions:[ 1 ];
  let lines = Obs.Ledger.to_lines l in
  match Obs.Analyze.parse_lines lines with
  | [ seg ] -> (
      Alcotest.(check int) "cfg epoch" 10_000 seg.Obs.Analyze.cfg_epoch_us;
      Alcotest.(check int) "replicas" 2 seg.Obs.Analyze.replicas;
      (match seg.Obs.Analyze.rows with
      | [ r ] ->
          Alcotest.(check int) "epoch" 1 r.Obs.Analyze.epoch;
          Alcotest.(check int) "assigned" 2 r.Obs.Analyze.assigned;
          Alcotest.(check int) "fast commits" 1 r.Obs.Analyze.fast_commits;
          Alcotest.(check int) "watermark" 42 r.Obs.Analyze.watermark;
          (* (11000 - 0) / 10000 in thousandths *)
          Alcotest.(check int) "stretch" 1_100 r.Obs.Analyze.stretch_millis;
          Alcotest.(check bool) "not degraded" false r.Obs.Analyze.degraded
      | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows));
      Alcotest.(check int) "events survive the roundtrip" 4
        (List.length seg.Obs.Analyze.events);
      (match Obs.Analyze.incidents seg with
      | [ i ] ->
          Alcotest.(check int) "crashed node" 1 i.Obs.Analyze.crashed_node;
          Alcotest.(check int) "promoted node" 0 i.Obs.Analyze.promoted_node;
          Alcotest.(check int) "detect latency" 3_000
            (i.Obs.Analyze.detect_us - i.Obs.Analyze.crash_us);
          Alcotest.(check int) "promote latency" 100
            (i.Obs.Analyze.promote_us - i.Obs.Analyze.detect_us);
          Alcotest.(check int) "recover latency" 1_300
            (i.Obs.Analyze.first_commit_us - i.Obs.Analyze.promote_us);
          Alcotest.(check bool) "resolved" true (Obs.Analyze.resolved i)
      | is -> Alcotest.failf "expected 1 incident, got %d" (List.length is));
      Alcotest.(check (list string)) "doctor clean" []
        (Obs.Analyze.check seg);
      (* Nearest-rank quantiles of the three ship lags [80;120;200]:
         p50 -> index 1 (120), p99 -> index 2 (200). *)
      let joined = String.concat "\n" lines in
      let has needle =
        let nl = String.length needle and jl = String.length joined in
        let rec go i =
          i + nl <= jl && (String.sub joined i nl = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "ship p50" true (has "\"ship_p50_us\":120");
      Alcotest.(check bool) "ship p99" true (has "\"ship_p99_us\":200");
      Alcotest.(check bool) "gate wait" true (has "\"gate_wait_us\":45");
      Alcotest.(check bool) "plan row" true (has "\"strata\":2");
      Alcotest.(check bool) "pool row" true (has "\"stolen\":1");
      Alcotest.(check bool) "stratum line" true (has "\"type\":\"stratum\""))
  | segs -> Alcotest.failf "expected 1 segment, got %d" (List.length segs)

(* ---- fabricated violations --------------------------------------------- *)

let fabricated ~watermark2 =
  [ "{\"type\":\"meta\",\"cfg_epoch_us\":10000,\"nodes\":1,\"replicas\":1}";
    "{\"type\":\"epoch\",\"epoch\":1,\"node\":0,\"open_us\":0,\
     \"close_us\":10000,\"wall_open_us\":0,\"wall_close_us\":0,\
     \"stretch_millis\":1000,\"assigned\":3,\"fast_commits\":0,\
     \"fast_merges\":0,\"watermark\":500,\"watermark_lag_us\":0}";
    Printf.sprintf
      "{\"type\":\"epoch\",\"epoch\":2,\"node\":0,\"open_us\":10000,\
       \"close_us\":20000,\"wall_open_us\":0,\"wall_close_us\":0,\
       \"stretch_millis\":1000,\"assigned\":3,\"fast_commits\":0,\
       \"fast_merges\":0,\"watermark\":%d,\"watermark_lag_us\":0}"
      watermark2 ]

let test_doctor_violations () =
  (* Non-monotone watermark with no crash: the doctor must object... *)
  (match Obs.Analyze.parse_lines (fabricated ~watermark2:100) with
  | [ seg ] -> (
      match Obs.Analyze.check seg with
      | [ v ] ->
          Alcotest.(check bool) "names the regression" true
            (String.length v > 0)
      | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs))
  | _ -> Alcotest.fail "segment shape");
  (* ...and stay quiet when it is monotone. *)
  (match Obs.Analyze.parse_lines (fabricated ~watermark2:900) with
  | [ seg ] ->
      Alcotest.(check (list string)) "monotone is clean" []
        (Obs.Analyze.check seg)
  | _ -> Alcotest.fail "segment shape");
  (* A crash between the closes excuses the reset. *)
  match
    Obs.Analyze.parse_lines
      (fabricated ~watermark2:100
      @ [ "{\"type\":\"event\",\"kind\":\"crash\",\"node\":0,\
           \"t_us\":15000,\"partition\":-1}";
          "{\"type\":\"event\",\"kind\":\"restart\",\"node\":0,\
           \"t_us\":16000,\"partition\":-1}" ])
  with
  | [ seg ] ->
      Alcotest.(check (list string)) "crash excuses the reset" []
        (Obs.Analyze.check seg)
  | _ -> Alcotest.fail "segment shape"

(* ---- append-only file writer -------------------------------------------- *)

let test_append_only_file () =
  let path = Filename.temp_file "timeline" ".jsonl" in
  Sys.remove path;
  Harness.Report.write_timeline path (fabricated ~watermark2:900);
  Harness.Report.write_timeline path (fabricated ~watermark2:900);
  let segs = Obs.Analyze.load path in
  Sys.remove path;
  Alcotest.(check int) "two appends, two segments" 2 (List.length segs);
  List.iter
    (fun seg ->
      Alcotest.(check int) "rows per segment" 2
        (List.length seg.Obs.Analyze.rows))
    segs

(* ---- end to end: k=2 chaos run with failover ---------------------------- *)

let test_chaos_timeline () =
  let ledger = Obs.Ledger.create () in
  let obs = Obs.Ctl.create ~ledger () in
  (* Seed 2's replicated battery leaves at least one backend down past the
     3ms detection verdict, so the timeline holds real failovers. *)
  let r = Chaos.Driver.run_seed ~replicas:2 ~obs aloha ~seed:2 ~n_servers:3 in
  Alcotest.(check (list string)) "chaos invariants hold" []
    r.Chaos.Driver.violations;
  Alcotest.(check bool) "timeline non-empty" true
    (List.length r.Chaos.Driver.timeline > 10);
  match Obs.Analyze.parse_lines r.Chaos.Driver.timeline with
  | [ seg ] ->
      Alcotest.(check int) "replicas stamped" 2 seg.Obs.Analyze.replicas;
      Alcotest.(check bool) "epoch rows recorded" true
        (List.length seg.Obs.Analyze.rows > 10);
      Alcotest.(check bool) "crash events recorded" true
        (List.exists
           (fun e -> e.Obs.Analyze.kind = "crash")
           seg.Obs.Analyze.events);
      let incidents = Obs.Analyze.incidents seg in
      Alcotest.(check bool) "at least one failover incident" true
        (incidents <> []);
      let complete =
        List.filter
          (fun i ->
            Obs.Analyze.resolved i
            && i.Obs.Analyze.crash_us >= 0
            && i.Obs.Analyze.detect_us >= i.Obs.Analyze.crash_us
            && i.Obs.Analyze.promote_us >= i.Obs.Analyze.detect_us
            && i.Obs.Analyze.first_commit_us >= i.Obs.Analyze.promote_us)
          incidents
      in
      Alcotest.(check bool)
        "a resolved incident carries all three phase latencies" true
        (complete <> []);
      Alcotest.(check (list string)) "doctor passes the real run" []
        (Obs.Analyze.check seg)
  | segs -> Alcotest.failf "expected 1 segment, got %d" (List.length segs)

(* ---- ledger off by default is behaviour-identical ----------------------- *)

let test_ledger_neutral () =
  let point obs =
    let engine = List.assoc "aloha" Harness.Setup.engines in
    let built =
      Harness.Setup.ycsb ~engine ~n:2 ~ci:0.01 ~keys_per_partition:1_000
        ?obs ~seed:31 ()
    in
    Harness.Driver.run built
      ~arrival:(Harness.Arrivals.Closed { clients_per_fe = 100 })
      ?obs ~warmup_us:30_000 ~measure_us:40_000 ~seed:31 ()
  in
  let bare = point None in
  let ledger = Obs.Ledger.create () in
  let ctl = Obs.Ctl.create ~ledger () in
  let with_ledger = point (Some ctl) in
  Alcotest.(check int) "identical commits" bare.Harness.Driver.committed
    with_ledger.Harness.Driver.committed;
  Alcotest.(check (float 1e-9)) "identical tps"
    bare.Harness.Driver.throughput_tps
    with_ledger.Harness.Driver.throughput_tps;
  Alcotest.(check (float 1e-9)) "identical mean latency"
    bare.Harness.Driver.lat_mean_us with_ledger.Harness.Driver.lat_mean_us;
  (* And the ledger actually accumulated epoch rows. *)
  Alcotest.(check bool) "ledger recorded rows" true
    (Obs.Ledger.rows ledger <> [])

let suite =
  [ Alcotest.test_case "json parser" `Quick test_json_parser;
    Alcotest.test_case "ledger roundtrip" `Quick test_ledger_roundtrip;
    Alcotest.test_case "doctor violations" `Quick test_doctor_violations;
    Alcotest.test_case "append-only file" `Quick test_append_only_file;
    Alcotest.test_case "chaos run yields resolved incidents" `Quick
      test_chaos_timeline;
    Alcotest.test_case "ledger is behaviour-neutral" `Quick
      test_ledger_neutral ]
