(* The headline correctness property: ALOHA-DB execution is equivalent to
   serial execution in timestamp order.

   Random batches of read-write transactions — blind writes, numeric
   functors, deletes, and guarded (abortable) conditional transfers — are
   submitted to a 3-server cluster at random times.  An oracle then
   replays the committed/aborted decisions serially in timestamp order
   over a plain map and must reproduce (a) each transaction's
   commit/abort outcome and (b) the exact final database state. *)

module Value = Functor_cc.Value
module Txn = Alohadb.Txn
module Cluster = Alohadb.Cluster
module Ts = Clocksync.Timestamp

(* ---- transaction specs -------------------------------------------------- *)

type op_spec =
  | SPut of int
  | SAdd of int
  | SSubtr of int
  | SDelete

type txn_spec =
  | Multi of (int * op_spec) list  (* key index -> op *)
  | Transfer of { src : int; dst : int; amount : int }
      (* guarded: abort when src balance < amount (Fig. 5 T3) *)

let n_keys = 24
let n_servers = 3

let key_name i = Printf.sprintf "k:%d:x" (i mod n_servers) ^ string_of_int i

(* guarded transfer handler: both functors read the source key and make
   the same abort decision (§IV-C). *)
let transfer_handler (ctx : Functor_cc.Registry.ctx) =
  let src_key = Value.to_str (Functor_cc.Registry.arg ctx 0) in
  let amount = Value.to_int (Functor_cc.Registry.arg ctx 1) in
  let delta = Value.to_int (Functor_cc.Registry.arg ctx 2) in
  let src_balance =
    match Functor_cc.Registry.read ctx src_key with
    | Some v -> Value.to_int v
    | None -> 0
  in
  if src_balance < amount then Functor_cc.Registry.Abort
  else begin
    let own =
      match Functor_cc.Registry.read ctx ctx.Functor_cc.Registry.key with
      | Some v -> Value.to_int v
      | None -> 0
    in
    Functor_cc.Registry.Commit (Value.int (own + delta))
  end

let request_of_spec = function
  | Multi ops ->
      Txn.read_write
        (List.map
           (fun (ki, op) ->
             let key = key_name ki in
             match op with
             | SPut v -> (key, Txn.Put (Value.int v))
             | SAdd n -> (key, Txn.Add n)
             | SSubtr n -> (key, Txn.Subtr n)
             | SDelete -> (key, Txn.Delete))
           ops)
  | Transfer { src; dst; amount } ->
      let src_key = key_name src and dst_key = key_name dst in
      let args delta =
        [ Value.str src_key; Value.int amount; Value.int delta ]
      in
      Txn.read_write
        [ (src_key,
           Txn.Call
             { handler = "guarded_xfer"; read_set = [ src_key ];
               args = args (-amount) });
          (dst_key,
           Txn.Call
             { handler = "guarded_xfer"; read_set = [ src_key; dst_key ];
               args = args amount }) ]

(* ---- the oracle ---------------------------------------------------------- *)

(* Serial replay over a plain int-option map, in timestamp order.  Returns
   the final state and each transaction's expected outcome. *)
let oracle (specs : (Ts.t * txn_spec) list) =
  let state : (string, int option) Hashtbl.t = Hashtbl.create 64 in
  for i = 0 to n_keys - 1 do
    Hashtbl.replace state (key_name i) (Some 100)
  done;
  let value key =
    match Hashtbl.find_opt state key with Some v -> v | None -> None
  in
  let outcomes =
    List.map
      (fun (ts, spec) ->
        match spec with
        | Multi ops ->
            (* Built-in numeric functors are total (absent = 0), so Multi
               transactions always commit. *)
            List.iter
              (fun (ki, op) ->
                let key = key_name ki in
                let base = match value key with Some v -> v | None -> 0 in
                match op with
                | SPut v -> Hashtbl.replace state key (Some v)
                | SAdd n -> Hashtbl.replace state key (Some (base + n))
                | SSubtr n -> Hashtbl.replace state key (Some (base - n))
                | SDelete -> Hashtbl.replace state key None)
              ops;
            (ts, true)
        | Transfer { src; dst; amount } ->
            let src_key = key_name src and dst_key = key_name dst in
            let balance = match value src_key with Some v -> v | None -> 0 in
            if balance < amount then (ts, false)
            else begin
              let cur k = match value k with Some v -> v | None -> 0 in
              (* same-key transfer applies both deltas to one key *)
              Hashtbl.replace state src_key (Some (cur src_key - amount));
              Hashtbl.replace state dst_key (Some (cur dst_key + amount));
              (ts, true)
            end)
      (List.sort (fun (a, _) (b, _) -> Ts.compare a b) specs)
  in
  (state, outcomes)

(* ---- driving the cluster -------------------------------------------------- *)

let run_case (specs : txn_spec list) =
  let registry = Functor_cc.Registry.with_builtins () in
  Functor_cc.Registry.register registry "guarded_xfer" transfer_handler;
  let options =
    { Cluster.default_options with n_servers; partitioner = `Prefix }
  in
  let c = Cluster.create ~registry options in
  for i = 0 to n_keys - 1 do
    Cluster.load c ~key:(key_name i) (Value.int 100)
  done;
  Cluster.start c;
  let sim = Cluster.sim c in
  let results : (Ts.t * txn_spec * bool) list ref = ref [] in
  let pending = ref 0 in
  let arrival_rng = Sim.Rng.create 97 in
  List.iteri
    (fun i spec ->
      incr pending;
      let fe = i mod n_servers in
      let at = 1_000 + Sim.Rng.int arrival_rng 60_000 in
      Sim.Engine.schedule sim ~at (fun () ->
          Cluster.submit c ~fe (request_of_spec spec) (fun result ->
              decr pending;
              match result with
              | Txn.Committed { ts } -> results := (ts, spec, true) :: !results
              | Txn.Aborted { ts = Some ts; _ } ->
                  results := (ts, spec, false) :: !results
              | Txn.Aborted { ts = None; _ } | Txn.Values _ ->
                  Alcotest.fail "unexpected result shape")))
    specs;
  Sim.Engine.run ~until:500_000 sim;
  Alcotest.(check int) "all transactions resolved" 0 !pending;
  (c, !results)

let final_engine_state c =
  let state : (string, int option) Hashtbl.t = Hashtbl.create 64 in
  for i = 0 to n_keys - 1 do
    let key = key_name i in
    let server = Cluster.server c (Cluster.partition_of c key) in
    let got = ref None in
    Functor_cc.Compute_engine.get
      (Alohadb.Server.engine server)
      ~key:(Mvstore.Key.intern key) ~version:max_int
      (fun v -> got := Some v);
    match !got with
    | Some (Some v) -> Hashtbl.replace state key (Some (Value.to_int v))
    | Some None -> Hashtbl.replace state key None
    | None -> Alcotest.fail "read did not resolve synchronously"
  done;
  state

let check_case specs =
  let c, results = run_case specs in
  (* 1. Outcomes match the serial oracle. *)
  let specs_with_ts = List.map (fun (ts, spec, _) -> (ts, spec)) results in
  let _, oracle_outcomes = oracle specs_with_ts in
  let engine_outcomes =
    List.sort (fun (a, _, _) (b, _, _) -> Ts.compare a b) results
    |> List.map (fun (ts, _, ok) -> (ts, ok))
  in
  List.iter2
    (fun (ts_o, ok_o) (ts_e, ok_e) ->
      if not (Ts.equal ts_o ts_e) then Alcotest.fail "timestamp mismatch";
      if ok_o <> ok_e then
        Alcotest.failf "outcome mismatch at %s: oracle=%b engine=%b"
          (Format.asprintf "%a" Ts.pp ts_o)
          ok_o ok_e)
    oracle_outcomes engine_outcomes;
  (* 2. Final states identical. *)
  let oracle_state, _ = oracle specs_with_ts in
  let engine_state = final_engine_state c in
  for i = 0 to n_keys - 1 do
    let key = key_name i in
    let o = Option.join (Hashtbl.find_opt oracle_state key) in
    let e = Option.join (Hashtbl.find_opt engine_state key) in
    if o <> e then
      Alcotest.failf "state mismatch on %s: oracle=%s engine=%s" key
        (match o with Some v -> string_of_int v | None -> "⊥")
        (match e with Some v -> string_of_int v | None -> "⊥")
  done;
  true

(* ---- generators ----------------------------------------------------------- *)

let op_gen =
  QCheck2.Gen.(oneof
    [ map (fun v -> SPut v) (int_range 0 500);
      map (fun n -> SAdd n) (int_range 1 50);
      map (fun n -> SSubtr n) (int_range 1 50);
      return SDelete ])

let multi_gen =
  QCheck2.Gen.(
    let* n_ops = int_range 1 4 in
    let* raw =
      list_size (return n_ops) (pair (int_range 0 (n_keys - 1)) op_gen)
    in
    (* one op per key within a transaction *)
    let seen = Hashtbl.create 8 in
    let ops =
      List.filter
        (fun (k, _) ->
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.add seen k ();
            true
          end)
        raw
    in
    return (Multi ops))

let transfer_gen =
  QCheck2.Gen.(
    let* src = int_range 0 (n_keys - 1) in
    let* dst =
      map (fun d -> (src + 1 + d) mod n_keys) (int_range 0 (n_keys - 2))
    in
    let* amount = int_range 1 200 in
    return (Transfer { src; dst; amount }))

let spec_gen = QCheck2.Gen.(oneof [ multi_gen; multi_gen; transfer_gen ])

let prop_serializable =
  QCheck2.Test.make ~name:"ALOHA-DB ≡ serial execution in ts order" ~count:15
    QCheck2.Gen.(list_size (int_range 5 40) spec_gen)
    check_case

(* A deterministic, high-contention instance kept as a regression test:
   many guarded transfers hammering two keys. *)
let test_contended_transfers () =
  let specs =
    List.init 30 (fun i ->
        Transfer { src = i mod 2; dst = (i + 1) mod 2; amount = 60 })
  in
  ignore (check_case specs)

(* Deletes racing numeric updates across epochs. *)
let test_delete_vs_add () =
  let specs =
    [ Multi [ (0, SDelete) ];
      Multi [ (0, SAdd 5) ];
      Multi [ (0, SPut 7) ];
      Multi [ (0, SSubtr 2) ] ]
  in
  ignore (check_case specs)

let suite =
  [ QCheck_alcotest.to_alcotest prop_serializable;
    Alcotest.test_case "contended transfers" `Quick test_contended_transfers;
    Alcotest.test_case "delete vs add" `Quick test_delete_vs_add ]
