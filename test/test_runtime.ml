(* The real-parallelism runtime: the domain pool in isolation (barrier
   semantics, work stealing, shutdown discipline) and the end-to-end
   guarantee the planner builds on it — evaluating an epoch's strata on
   1 domain and on 8 domains is observationally identical. *)

module Pool = Runtime.Pool
module Value = Functor_cc.Value
module Ftype = Functor_cc.Ftype
module Funct = Functor_cc.Funct
module Registry = Functor_cc.Registry
module Engine = Functor_cc.Compute_engine

let ik = Mvstore.Key.intern

(* ---- pool: submit / run_batch barrier ----------------------------------- *)

(* run_batch must be a full barrier: every task's plain writes are visible
   to the caller when it returns, and to the tasks of any later batch.  A
   second batch sums the first batch's writes from worker domains — if the
   barrier leaked, a worker could observe a zero slot. *)
let test_batch_barrier () =
  let p = Pool.create ~domains:4 in
  Alcotest.(check int) "n_workers" 4 (Pool.n_workers p);
  let n = 256 in
  let a = Array.make n 0 in
  Pool.run_batch p (Array.init n (fun i () -> a.(i) <- i + 1));
  let expect = n * (n + 1) / 2 in
  Alcotest.(check int)
    "all writes visible after barrier" expect (Array.fold_left ( + ) 0 a);
  let sums = Array.make 8 0 in
  Pool.run_batch p
    (Array.init 8 (fun w () -> sums.(w) <- Array.fold_left ( + ) 0 a));
  Array.iteri
    (fun w s ->
      Alcotest.(check int) (Printf.sprintf "batch 2 reader %d" w) expect s)
    sums;
  (* a raising task is counted, not fatal: the pool stays usable *)
  Pool.submit p (fun () -> failwith "boom");
  Pool.drain p;
  Alcotest.(check int) "raise counted" 1 (Pool.tasks_raised p);
  Pool.run_batch p (Array.init 4 (fun i () -> a.(i) <- -a.(i)));
  Alcotest.(check int) "pool alive after raise" (-1) a.(0);
  Pool.shutdown p

(* ---- pool: work stealing under skew ------------------------------------- *)

(* Everything lands on worker 0's queue; the tasks block (simulating I/O
   or an uneven stratum), so the idle workers must steal to finish.  The
   whole point of per-worker queues + stealing over a single shared queue
   is that this skew self-levels. *)
let test_work_stealing () =
  let p = Pool.create ~domains:4 in
  let n = 32 in
  let hits = Atomic.make 0 in
  for _ = 1 to n do
    Pool.submit_to p ~worker:0 (fun () ->
        Unix.sleepf 0.002;
        Atomic.incr hits)
  done;
  Pool.drain p;
  Alcotest.(check int) "all tasks ran" n (Atomic.get hits);
  Alcotest.(check int) "completed counter" n (Pool.completed p);
  Alcotest.(check bool)
    (Printf.sprintf "stolen > 0 (got %d)" (Pool.stolen p))
    true
    (Pool.stolen p > 0);
  Alcotest.(check bool) "queue_peak saw the skew" true (Pool.queue_peak p > 1);
  Pool.shutdown p

(* ---- pool: shutdown discipline ------------------------------------------ *)

let test_shutdown () =
  let p = Pool.create ~domains:2 in
  let hits = Atomic.make 0 in
  let n = 200 in
  for _ = 1 to n do
    Pool.submit p (fun () -> Atomic.incr hits)
  done;
  (* no drain: shutdown itself must let already-submitted work finish *)
  Pool.shutdown p;
  Alcotest.(check int) "pending work drained" n (Atomic.get hits);
  Alcotest.(check int) "completed counter" n (Pool.completed p);
  Pool.shutdown p (* idempotent *);
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Runtime.Pool: submit after shutdown") (fun () ->
      Pool.submit p (fun () -> ()));
  Alcotest.check_raises "create with 0 domains"
    (Invalid_argument "Runtime.Pool.create: domains < 1") (fun () ->
      ignore (Pool.create ~domains:0))

(* ---- planner on the real pool: 1 domain = 8 domains --------------------- *)

(* 1000 commutative ADDs (50 keys x 20 versions) through the planner with
   a real pool.  The strata are wide (every key, one version) so every
   worker evaluates concurrently, and every item must take the parallel
   path (builtins with intra-key deps never fall back).  The final store
   state must be byte-identical across domain counts — the determinism
   half of the sim-vs-real oracle, without a cluster around it. *)
let n_keys = 50
let n_versions = 20

let delta i v = ((i * 31) + (v * 7)) mod 11 + 1

let expected_total i =
  let s = ref 0 in
  for v = 1 to n_versions do
    s := !s + delta i v
  done;
  !s

let run_adds ~domains =
  let sim = Sim.Engine.create () in
  let pool = Sim.Worker_pool.create sim ~workers:3 in
  let registry = Registry.with_builtins () in
  let finals : (string * int, Funct.final) Hashtbl.t = Hashtbl.create 1024 in
  let callbacks =
    { Engine.is_local = (fun _ -> true);
      remote_get = (fun ~key:_ ~version:_ k -> k None);
      send_push = (fun ~dst_key:_ ~version:_ ~src_key:_ _ -> ());
      send_dep_write = (fun ~key:_ ~version:_ _ -> ());
      notify_final =
        (fun ~key ~version ~pending:_ ~final ->
          Hashtbl.replace finals (Mvstore.Key.name key, version) final);
      exec = (fun ~cost k -> Sim.Worker_pool.submit pool ~cost k);
      now = (fun () -> Sim.Engine.now sim) }
  in
  let metrics = Sim.Metrics.create () in
  let e =
    Engine.create ~registry ~callbacks ~compute_cost_us:1 ~metrics ()
  in
  for i = 0 to n_keys - 1 do
    Engine.load_initial e ~key:(ik (Printf.sprintf "rt:%d" i)) (Value.int 0)
  done;
  let items = ref [] in
  for v = n_versions downto 1 do
    for i = n_keys - 1 downto 0 do
      let key = ik (Printf.sprintf "rt:%d" i) in
      let funct =
        Funct.mk_pending ~ftype:Ftype.Add
          ~farg:(Funct.farg_args [ Value.int (delta i v) ])
          ~txn_id:((v * n_keys) + i)
          ~coordinator:0
      in
      (match Engine.install e ~key ~version:v ~lo:0 ~hi:max_int funct with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "install failed");
      items := { Functor_cc.Processor.key; version = v } :: !items
    done
  done;
  let rpool = Pool.create ~domains in
  let stratum_sizes = ref [] in
  let planner =
    Functor_cc.Planner.create ~engine:e ~pool ~real:rpool ~dispatch_cost_us:1
      ~metrics
      ~on_stratum:(fun ~size -> stratum_sizes := size :: !stratum_sizes)
      ()
  in
  let stats = Functor_cc.Planner.run planner ~items:!items in
  Sim.Engine.run sim;
  Pool.shutdown rpool;
  Alcotest.(check int)
    "planned every item" (n_keys * n_versions)
    stats.Functor_cc.Planner.nodes;
  Alcotest.(check int)
    "every item took the parallel path" (n_keys * n_versions)
    (Sim.Metrics.get metrics "plan.real_evaluated");
  Alcotest.(check int) "no fallbacks" 0
    (Sim.Metrics.get metrics "plan.real_fallback");
  Alcotest.(check int) "one callback per stratum"
    (Sim.Metrics.get metrics "plan.real_strata")
    (List.length !stratum_sizes);
  Alcotest.(check int) "stratum sizes cover the epoch" (n_keys * n_versions)
    (List.fold_left ( + ) 0 !stratum_sizes);
  List.init n_keys (fun i ->
      match Hashtbl.find_opt finals (Printf.sprintf "rt:%d" i, n_versions) with
      | Some (Funct.Committed v) -> Value.to_int v
      | Some _ -> Alcotest.fail "top version aborted/deleted"
      | None -> Alcotest.fail "top version never finalised")

let test_domain_count_determinism () =
  let expected = List.init n_keys expected_total in
  let one = run_adds ~domains:1 in
  let eight = run_adds ~domains:8 in
  Alcotest.(check (list int)) "1 domain = oracle" expected one;
  Alcotest.(check (list int)) "8 domains = 1 domain" one eight

let suite =
  [ Alcotest.test_case "run_batch barrier" `Quick test_batch_barrier;
    Alcotest.test_case "work stealing under skew" `Quick test_work_stealing;
    Alcotest.test_case "shutdown drains pending work" `Quick test_shutdown;
    Alcotest.test_case "1 vs 8 domains deterministic" `Quick
      test_domain_count_determinism ]
