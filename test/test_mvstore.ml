(* Multi-version storage: chains and tables. *)

module Chain = Mvstore.Chain
module Table = Mvstore.Table

let ik = Mvstore.Key.intern

let test_chain_insert_find () =
  let c : string Chain.t = Chain.create () in
  List.iter
    (fun (v, s) ->
      match Chain.insert c ~version:v s with
      | Ok () -> ()
      | Error `Duplicate -> Alcotest.fail "unexpected duplicate")
    [ (10, "a"); (30, "c"); (20, "b") ];
  Alcotest.(check (list int)) "sorted" [ 10; 20; 30 ] (Chain.versions c);
  (match Chain.find_le c ~version:25 with
  | Some (20, "b") -> ()
  | Some (v, s) -> Alcotest.failf "got (%d,%s)" v s
  | None -> Alcotest.fail "missing");
  Alcotest.(check (option string)) "below first" None
    (Option.map snd (Chain.find_le c ~version:9));
  (match Chain.find_le c ~version:30 with
  | Some (30, "c") -> ()
  | _ -> Alcotest.fail "exact bound");
  (match Chain.find_le c ~version:1000 with
  | Some (30, "c") -> ()
  | _ -> Alcotest.fail "above all")

let test_chain_duplicate () =
  let c : int Chain.t = Chain.create () in
  (match Chain.insert c ~version:5 1 with Ok () -> () | Error _ -> assert false);
  (match Chain.insert c ~version:5 2 with
  | Error `Duplicate -> ()
  | Ok () -> Alcotest.fail "duplicate accepted");
  Alcotest.(check (option int)) "original kept" (Some 1)
    (Chain.find_exact c ~version:5)

let test_chain_update () =
  let c : int Chain.t = Chain.create () in
  ignore (Chain.insert c ~version:5 1);
  Alcotest.(check bool) "update hits" true (Chain.update c ~version:5 9);
  Alcotest.(check (option int)) "updated" (Some 9) (Chain.find_exact c ~version:5);
  Alcotest.(check bool) "update misses" false (Chain.update c ~version:6 0)

let test_chain_watermark_monotone () =
  let c : int Chain.t = Chain.create () in
  Alcotest.(check int) "initial" (-1) (Chain.watermark c);
  Chain.advance_watermark c 10;
  Chain.advance_watermark c 5;
  Alcotest.(check int) "monotone" 10 (Chain.watermark c)

let test_chain_iter_range () =
  let c : int Chain.t = Chain.create () in
  List.iter (fun v -> ignore (Chain.insert c ~version:v v)) [ 1; 3; 5; 7; 9 ];
  let got = ref [] in
  Chain.iter_range c ~lo:3 ~hi:7 (fun v _ -> got := v :: !got);
  Alcotest.(check (list int)) "inclusive range" [ 3; 5; 7 ] (List.rev !got);
  let got = ref [] in
  Chain.iter_range c ~lo:4 ~hi:4 (fun v _ -> got := v :: !got);
  Alcotest.(check (list int)) "empty range" [] !got

let test_chain_find_next_after () =
  let c : int Chain.t = Chain.create () in
  List.iter (fun v -> ignore (Chain.insert c ~version:v v)) [ 10; 20 ];
  (match Chain.find_next_after c ~version:10 with
  | Some (20, _) -> ()
  | _ -> Alcotest.fail "next after 10");
  (match Chain.find_next_after c ~version:5 with
  | Some (10, _) -> ()
  | _ -> Alcotest.fail "next after 5");
  Alcotest.(check bool) "nothing after last" true
    (Chain.find_next_after c ~version:20 = None)

let test_key_interning () =
  let a = ik "same" and b = ik "same" and c = ik "other" in
  Alcotest.(check bool) "same name, same key" true (Mvstore.Key.equal a b);
  Alcotest.(check bool) "physical sharing" true (a == b);
  Alcotest.(check bool) "distinct names differ" false (Mvstore.Key.equal a c);
  Alcotest.(check string) "name round-trips" "same" (Mvstore.Key.name a);
  (* memo slots: cached per stamp, recomputed under a new stamp *)
  let s1 = Mvstore.Key.new_stamp () in
  let calls = ref 0 in
  let f _name = incr calls; 7 in
  Alcotest.(check int) "computed" 7 (Mvstore.Key.memo_int a ~stamp:s1 ~f);
  Alcotest.(check int) "cached" 7 (Mvstore.Key.memo_int a ~stamp:s1 ~f);
  Alcotest.(check int) "one evaluation" 1 !calls;
  let s2 = Mvstore.Key.new_stamp () in
  ignore (Mvstore.Key.memo_int a ~stamp:s2 ~f);
  Alcotest.(check int) "new stamp recomputes" 2 !calls

(* Regression for the intern mutex (--runtime real): 4 domains hammer the
   global intern table with a mix of shared names (every domain must get
   the same record — checked via stable ids) and per-domain fresh names
   (which force concurrent Hashtbl growth, the resize race that makes a
   lock-free find_opt unsafe).  Before the mutex this segfaulted or
   returned duplicate records under parallel load. *)
let test_intern_four_domain_hammer () =
  let n_shared = 32 in
  let iters = 4_000 in
  let shared = Array.init n_shared (fun i -> Printf.sprintf "hammer:s:%d" i) in
  let results =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            let ids = Array.make n_shared (-1) in
            let stable = ref true in
            for it = 0 to iters - 1 do
              let i = (it + d) mod n_shared in
              let k = ik shared.(i) in
              let id = Mvstore.Key.id k in
              if ids.(i) = -1 then ids.(i) <- id
              else if ids.(i) <> id then stable := false;
              (* disjoint per-domain inserts keep the table resizing
                 while the other domains look names up *)
              ignore (ik (Printf.sprintf "hammer:p:%d:%d" d it))
            done;
            (ids, !stable)))
  in
  let out = Array.map Domain.join results in
  Array.iteri
    (fun d (_, stable) ->
      Alcotest.(check bool)
        (Printf.sprintf "domain %d saw stable ids" d)
        true stable)
    out;
  let ids0, _ = out.(0) in
  Array.iteri
    (fun d (ids, _) ->
      Alcotest.(check (array int))
        (Printf.sprintf "domain %d agrees with domain 0" d)
        ids0 ids)
    out;
  (* interning is still coherent from the orchestrating domain *)
  Array.iteri
    (fun i name ->
      Alcotest.(check int)
        (Printf.sprintf "shared %d id persists" i)
        ids0.(i)
        (Mvstore.Key.id (ik name)))
    shared

let test_table_window () =
  let t : int Table.t = Table.create () in
  let k = ik "k" in
  (match Table.put t ~key:k ~version:50 ~lo:10 ~hi:100 1 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "in-window put");
  (match Table.put t ~key:k ~version:5 ~lo:10 ~hi:100 2 with
  | Error `Version_out_of_window -> ()
  | _ -> Alcotest.fail "below window accepted");
  (match Table.put t ~key:k ~version:101 ~lo:10 ~hi:100 3 with
  | Error `Version_out_of_window -> ()
  | _ -> Alcotest.fail "above window accepted");
  (match Table.put t ~key:k ~version:50 ~lo:10 ~hi:100 4 with
  | Error `Duplicate_version -> ()
  | _ -> Alcotest.fail "duplicate accepted")

let test_table_counts () =
  let t : int Table.t = Table.create () in
  ignore (Table.put_unchecked t ~key:(ik "a") ~version:1 1);
  ignore (Table.put_unchecked t ~key:(ik "a") ~version:2 2);
  ignore (Table.put_unchecked t ~key:(ik "b") ~version:1 3);
  Alcotest.(check int) "keys" 2 (Table.key_count t);
  Alcotest.(check int) "records" 3 (Table.record_count t);
  Alcotest.(check (option (pair int int))) "find_le" (Some (2, 2))
    (Table.find_le t ~key:(ik "a") ~version:99);
  let folded =
    Table.fold_chains t ~init:0 ~f:(fun _ chain acc -> acc + Chain.length chain)
  in
  Alcotest.(check int) "fold_chains sees all records" 3 folded;
  let iterated = ref 0 in
  Table.iter t ~f:(fun _ chain -> iterated := !iterated + Chain.length chain);
  Alcotest.(check int) "iter sees all records" 3 !iterated

(* qcheck: chain behaves like a reference sorted association list. *)
let prop_chain_matches_reference =
  let gen =
    QCheck2.Gen.(list_size (int_range 1 200) (int_range 0 300))
  in
  QCheck2.Test.make ~name:"chain = reference model" ~count:300 gen
    (fun versions ->
      let c : int Chain.t = Chain.create () in
      let reference = Hashtbl.create 64 in
      List.iter
        (fun v ->
          match Chain.insert c ~version:v v with
          | Ok () ->
              if Hashtbl.mem reference v then raise Exit;
              Hashtbl.add reference v v
          | Error `Duplicate ->
              if not (Hashtbl.mem reference v) then raise Exit)
        versions;
      (* versions sorted & deduplicated *)
      let expected =
        Hashtbl.fold (fun v _ acc -> v :: acc) reference []
        |> List.sort compare
      in
      if Chain.versions c <> expected then false
      else begin
        (* find_le agrees with the reference for probe points *)
        List.for_all
          (fun probe ->
            let want =
              List.filter (fun v -> v <= probe) expected
              |> List.fold_left (fun acc v -> max acc v) (-1)
            in
            match Chain.find_le c ~version:probe with
            | None -> want = -1
            | Some (v, _) -> v = want)
          [ 0; 50; 150; 299; 1000 ]
      end)

(* qcheck: a random op sequence (insert / update / truncate_below /
   advance_watermark) keeps the chain agreeing with a sorted-assoc-list
   reference on find_le, find_next_after, find_exact and versions, and the
   watermark stays monotone throughout. *)
let prop_chain_ops_match_reference =
  let open QCheck2.Gen in
  let op =
    frequency
      [ (6, map2 (fun v x -> `Insert (v, x)) (int_range 0 300) (int_range 0 999));
        (2, map2 (fun v x -> `Update (v, x)) (int_range 0 300) (int_range 0 999));
        (1, map (fun v -> `Truncate v) (int_range 0 300));
        (1, map (fun v -> `Advance v) (int_range 0 300)) ]
  in
  let gen = list_size (int_range 1 120) op in
  QCheck2.Test.make ~name:"chain ops = reference model" ~count:300 gen
    (fun ops ->
      let c : int Chain.t = Chain.create () in
      (* reference: (version, payload) sorted ascending *)
      let model = ref [] in
      let wm = ref (-1) in
      let ok = ref true in
      let probes = [ 0; 75; 150; 225; 300; 1000 ] in
      let model_find_le probe =
        List.filter (fun (v, _) -> v <= probe) !model
        |> List.fold_left (fun _ (v, x) -> Some (v, x)) None
      in
      let model_next_after probe =
        List.find_opt (fun (v, _) -> v > probe) !model
      in
      let check_agreement () =
        List.iter
          (fun probe ->
            if Chain.find_le c ~version:probe <> model_find_le probe then
              ok := false;
            if Chain.find_next_after c ~version:probe <> model_next_after probe
            then ok := false;
            if
              Chain.find_exact c ~version:probe
              <> Option.map snd
                   (List.find_opt (fun (v, _) -> v = probe) !model)
            then ok := false)
          probes;
        if Chain.versions c <> List.map fst !model then ok := false;
        (* watermark monotone and equal to the model's *)
        if Chain.watermark c <> !wm then ok := false
      in
      List.iter
        (fun op ->
          (match op with
          | `Insert (v, x) -> (
              match Chain.insert c ~version:v x with
              | Ok () ->
                  if List.mem_assoc v !model then ok := false
                  else
                    model :=
                      List.sort (fun (a, _) (b, _) -> compare a b)
                        ((v, x) :: !model)
              | Error `Duplicate ->
                  if not (List.mem_assoc v !model) then ok := false)
          | `Update (v, x) ->
              let hit = Chain.update c ~version:v x in
              if hit <> List.mem_assoc v !model then ok := false;
              if hit then
                model :=
                  List.map (fun (v', x') -> if v' = v then (v, x) else (v', x'))
                    !model
          | `Truncate v ->
              let reclaimed = Chain.truncate_below c ~version:v in
              (* model: keep everything from the latest version <= v on
                 (that record stays as the base for historical reads) *)
              let keep =
                match model_find_le v with
                | Some (base, _) -> fun (v', _) -> v' >= base
                | None -> fun _ -> true
              in
              let before = List.length !model in
              model := List.filter keep !model;
              if reclaimed <> before - List.length !model then ok := false
          | `Advance v ->
              Chain.advance_watermark c v;
              if v > !wm then wm := v);
          check_agreement ())
        ops;
      !ok)

let suite =
  [ Alcotest.test_case "key interning" `Quick test_key_interning;
    Alcotest.test_case "intern 4-domain hammer" `Quick
      test_intern_four_domain_hammer;
    Alcotest.test_case "chain insert/find" `Quick test_chain_insert_find;
    Alcotest.test_case "chain duplicate" `Quick test_chain_duplicate;
    Alcotest.test_case "chain update" `Quick test_chain_update;
    Alcotest.test_case "chain watermark" `Quick test_chain_watermark_monotone;
    Alcotest.test_case "chain iter_range" `Quick test_chain_iter_range;
    Alcotest.test_case "chain find_next_after" `Quick
      test_chain_find_next_after;
    Alcotest.test_case "table window" `Quick test_table_window;
    Alcotest.test_case "table counts" `Quick test_table_counts;
    QCheck_alcotest.to_alcotest prop_chain_matches_reference;
    QCheck_alcotest.to_alcotest prop_chain_ops_match_reference ]
