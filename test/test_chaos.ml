(* Chaos subsystem: seeded fault schedules replay deterministically, and
   the protocol invariants (completion, state oracle, monotone
   watermarks, at-most-once evaluation, post-recovery equality with a
   crash-free reference) hold under loss, partitions, crashes, and clock
   skew.  A failing (engine, seed) pair reproduces exactly with
   `alohadb_cli chaos --engine E --seed N`. *)

let n_servers = 3

let find_target name =
  match Chaos.Driver.target_of_name name with
  | Some t -> t
  | None -> Alcotest.failf "no chaos target %s" name

let check_report (r : Chaos.Driver.report) =
  if not (Chaos.Driver.passed r) then
    Alcotest.failf "%s seed %d: %s" r.Chaos.Driver.engine r.Chaos.Driver.seed
      (String.concat "; " r.Chaos.Driver.violations)

(* The fixture seed is the first whose generated schedule includes a
   backend crash, so the replay covers WAL recovery re-entry. *)
let test_seed_replay () =
  let rec crashing s =
    if Chaos.Schedule.has_crash (Chaos.Schedule.generate ~seed:s ~n_servers)
    then s
    else crashing (s + 1)
  in
  let seed = crashing 1 in
  let schedule = Chaos.Schedule.generate ~seed ~n_servers in
  let t = find_target "aloha" in
  (* run_schedule itself runs the schedule twice and fails on a trace
     mismatch; a third independent run must land on the same digest. *)
  let r = Chaos.Driver.run_schedule t ~schedule in
  check_report r;
  Alcotest.(check string) "third run reproduces the trace hash"
    r.Chaos.Driver.trace_hash
    (Chaos.Driver.trace_hash_of t ~schedule);
  Alcotest.(check bool) "trace is non-trivial" true
    (r.Chaos.Driver.trace_events > 100)

let test_engine_seeds name seeds () =
  let t = find_target name in
  List.iter (fun seed -> check_report (Chaos.Driver.run_seed t ~seed ~n_servers)) seeds

(* Epoch revocation under partition: one server (and its Revoke_ack path
   to the epoch manager) cut off mid-run; the manager's revoke
   re-broadcast and the participant's duplicate/orphan ack handling must
   keep the epoch pipeline — and every transaction — live. *)
let test_partition_revocation () =
  let schedule =
    { Chaos.Schedule.seed = 99;
      n_servers;
      events =
        [ Chaos.Schedule.Partition
            { group = [ 0 ]; from_us = 4_000; until_us = 12_000 } ] }
  in
  check_report (Chaos.Driver.run_schedule (find_target "aloha") ~schedule)

(* Backend crash mid-epoch with background loss: installs retried until
   the restarted backend recovers them from the WAL, recomputes, and
   re-drives Batch_done. *)
let test_crash_recovery () =
  let schedule =
    { Chaos.Schedule.seed = 123;
      n_servers;
      events =
        [ Chaos.Schedule.Crash { node = 1; at_us = 6_000; restart_at_us = 14_000 };
          Chaos.Schedule.Edict
            (Net.Faults.edict Net.Faults.Drop ~p:0.2 ~from_us:2_000
               ~until_us:30_000) ] }
  in
  check_report (Chaos.Driver.run_schedule (find_target "aloha") ~schedule)

let suite =
  [ Alcotest.test_case "seed replay determinism" `Slow test_seed_replay;
    Alcotest.test_case "partition revocation" `Slow test_partition_revocation;
    Alcotest.test_case "crash recovery" `Slow test_crash_recovery;
    Alcotest.test_case "aloha schedules" `Slow
      (test_engine_seeds "aloha" [ 1; 2; 3 ]);
    Alcotest.test_case "calvin schedules" `Slow
      (test_engine_seeds "calvin" [ 1; 2 ]);
    Alcotest.test_case "twopl schedules" `Slow
      (test_engine_seeds "twopl" [ 1; 2 ]) ]
