.PHONY: all build test fmt check clean bench bench-smoke

all: build

build:
	dune build

test:
	dune runtest

# Full benchmark sweep (all figures at quick scale + micro suite).
bench:
	dune exec bench/main.exe -- --json all

# CI smoke: one macro figure + the micro suite, with JSON emission, so the
# bench binary and BENCH_*.json output can't silently rot.
bench-smoke:
	dune exec bench/main.exe -- --json fig6 micro

# Check dune-file formatting without promoting (ocamlformat is not a
# dependency; OCaml sources are exempt via dune-project).
fmt:
	dune build @fmt

check: fmt build test

clean:
	dune clean
