.PHONY: all build test fmt check clean bench bench-smoke bench-guard bench-real real-smoke chaos chaos-smoke replication replication-smoke availability fastpath fastpath-smoke obs-smoke

all: build

build:
	dune build

test:
	dune runtest

# Full benchmark sweep (all figures at quick scale + micro suite).  Each
# ALOHA series prints the compute mode it used ([fig9]/[fig10] lines and
# the pool/planned micro names); lock-based engines have no compute phase.
bench:
	dune exec bench/main.exe -- --json all
	@echo "compute-mode attribution: see '[fig9] ALOHA(...)' / '[fig10]' lines above;"
	@echo "  micro series 'functor_cc epoch 64x128 pool|planned' name their mode."

# CI smoke: one macro figure + the micro suite, with JSON emission, so the
# bench binary and BENCH_*.json output can't silently rot.
bench-smoke:
	dune exec bench/main.exe -- --json fig6 micro
	dune exec bin/alohadb_cli.exe -- trace --engine aloha --sample 16 \
	  --out TRACE_aloha.json --telemetry TELEMETRY.json

# Compare the micro suite against the committed baseline; fails on >30%
# ns/op regressions (see ci/check_bench_regression.py for how to update).
bench-guard:
	dune exec bench/main.exe -- --json micro
	python3 ci/check_bench_regression.py BENCH_micro.json bench/baseline_micro.json

# Wall-clock domain-scaling sweep for --runtime real: writes
# BENCH_real.json (cpu-add + latency-bound series at 1/2/4/8 domains,
# host core count recorded).  Numbers are machine-dependent; the checker
# validates structure, it never compares them across machines.
bench-real:
	dune exec bench/main.exe -- --json real
	python3 ci/check_bench_regression.py --validate-real BENCH_real.json

# CI smoke for the real runtime: pool + domain-determinism suites, the
# interning hammer, the sim-vs-real equivalence oracle, a 4-domain
# end-to-end CLI run, and the wall-clock sweep.
real-smoke:
	dune exec test/test_main.exe -- test runtime
	dune exec test/test_main.exe -- test mvstore
	dune exec test/test_main.exe -- test cross-engine
	dune exec bin/alohadb_cli.exe -- run --system aloha --workload ycsb \
	  --compute planned --runtime real --domains 4 --measure-ms 200
	$(MAKE) bench-real

# Randomized fault schedules against all three engines, 25 seeds each.
# A failing (engine, seed) pair replays with:
#   dune exec bin/alohadb_cli.exe -- chaos --engine E --seed N --verbose
chaos:
	dune exec bin/alohadb_cli.exe -- chaos --engine all --seed 1 --count 25

# CI smoke: fewer seeds so the job stays fast.  The second lane reruns
# ALOHA with the planned compute mode so the planner path stays under
# fault injection too.
chaos-smoke:
	dune exec bin/alohadb_cli.exe -- chaos --engine all --seed 1 --count 8
	dune exec bin/alohadb_cli.exe -- chaos --engine aloha --seed 1 --count 2 \
	  --compute planned

# The replication battery: every backend crashed once per run, k = 2,
# failover expected to mask each loss (invariants: no committed txn
# lost, converged state, completion).  50 seeds — the PR's acceptance
# sweep.  A failing seed replays with:
#   dune exec bin/alohadb_cli.exe -- chaos -e aloha --seed N -k 2 --verbose
replication:
	dune exec bin/alohadb_cli.exe -- chaos --engine aloha --seed 1 --count 50 \
	  --replicas 2

# CI smoke: fewer seeds, both k = 2 and k = 3, plus the dedicated
# replication test suite (failover scenarios, ack-gating model check,
# k=2-vs-k=1 behaviour-neutrality differential).
replication-smoke:
	dune exec test/test_main.exe -- test replication
	dune exec bin/alohadb_cli.exe -- chaos --engine aloha --seed 1 --count 8 \
	  --replicas 2
	dune exec bin/alohadb_cli.exe -- chaos --engine aloha --seed 1 --count 2 \
	  --replicas 3

# The availability figure: committed-work-over-time under a permanent
# primary crash at k = 1/2/3; writes BENCH_availability.json and
# validates its structure.
availability:
	dune exec bench/main.exe -- availability
	python3 ci/check_bench_regression.py --validate-availability \
	  BENCH_availability.json

# The latency-collapse figure: the counter-heavy workload with the
# coordination-free commit lane off and on; writes BENCH_fastpath.json
# and gates on the on-series p50 beating the off-series p50.
fastpath:
	dune exec bench/main.exe -- fastpath
	python3 ci/check_bench_regression.py --validate-fastpath \
	  BENCH_fastpath.json

# CI smoke for the fast path: the dedicated test suite (classifier
# unit + qcheck, interleaving oracle, on-vs-off equivalence, chaos
# battery with the lane on), a counter-heavy CLI run and a chaos seed
# with --fastpath, then the figure + its validator.
fastpath-smoke:
	dune exec test/test_main.exe -- test fastpath
	dune exec bin/alohadb_cli.exe -- run --system aloha --workload ycsb \
	  --fastpath on --servers 4 --clients 4 --measure-ms 200
	dune exec bin/alohadb_cli.exe -- chaos --engine aloha --seed 1 --count 2 \
	  --fastpath
	$(MAKE) fastpath

# CI smoke for the epoch ledger: the observability + timeline suites, a
# traced replicated chaos seed streamed to TIMELINE.jsonl, the OCaml
# doctor over that file (incident reconstruction + invariant checks,
# INCIDENTS.json written for the artifact upload), and the independent
# Python re-statement of the same invariants.  Seed 2 is chosen because
# its crashes outlive the failure detector, so the file always contains
# promote events for the doctor to reconstruct.
obs-smoke:
	dune exec test/test_main.exe -- test obs
	dune exec test/test_main.exe -- test timeline
	rm -f TIMELINE.jsonl
	dune exec bin/alohadb_cli.exe -- timeline --seed 2 --servers 3 \
	  --replicas 2 --out TIMELINE.jsonl
	dune exec bin/alohadb_cli.exe -- doctor TIMELINE.jsonl \
	  --report INCIDENTS.json
	python3 ci/check_bench_regression.py --validate-timeline TIMELINE.jsonl

# Check dune-file formatting without promoting (ocamlformat is not a
# dependency; OCaml sources are exempt via dune-project).
fmt:
	dune build @fmt

# fmt + build + full test run (the fastpath suite is part of dune
# runtest; run it alone with: dune exec test/test_main.exe -- test fastpath).
check: fmt build test

clean:
	dune clean
