.PHONY: all build test fmt check clean

all: build

build:
	dune build

test:
	dune runtest

# Check dune-file formatting without promoting (ocamlformat is not a
# dependency; OCaml sources are exempt via dune-project).
fmt:
	dune build @fmt

check: fmt build test

clean:
	dune clean
