(* A miniature of the paper's Figure 9: YCSB-like microbenchmark
   throughput as the contention index rises.  ALOHA-DB stays flat — its
   key-level concurrency control never blocks on hot keys — while Calvin's
   single-threaded lock manager collapses and the conventional 2PL/2PC
   baseline collapses even earlier.

   All three engines run through the same kernel client loop.

   Run with:  dune exec examples/ycsb_contention.exe *)

let () =
  let n = 4 in
  Format.printf
    "YCSB read-modify-write, %d servers, 10 keys/txn, 2 partitions/txn@.@."
    n;
  Format.printf "%-12s %-14s %-14s %-14s@." "CI" "ALOHA (txn/s)"
    "Calvin (txn/s)" "2PL (txn/s)";
  List.iter
    (fun ci ->
      let point name clients =
        let engine = List.assoc name Harness.Setup.engines in
        let built =
          Harness.Setup.ycsb ~engine ~n ~ci ~keys_per_partition:20_000 ()
        in
        let r =
          Harness.Driver.run built
            ~arrival:(Harness.Arrivals.Closed { clients_per_fe = clients })
            ~warmup_us:60_000 ~measure_us:80_000 ()
        in
        r.Harness.Driver.throughput_tps
      in
      Format.printf "%-12g %-14.0f %-14.0f %-14.0f@." ci
        (point "aloha" 1_200) (point "calvin" 300) (point "twopl" 300))
    [ 0.0001; 0.001; 0.01; 0.1 ]
