(* TPC-C on ALOHA-DB and Calvin side by side: a small cluster, a burst of
   NewOrder transactions, throughput and the paper's headline ratio.

   Both engines run through the same kernel client loop — only the packed
   ENGINE module differs.

   Run with:  dune exec examples/tpcc_demo.exe *)

let aloha_engine = List.assoc "aloha" Harness.Setup.engines
let calvin_engine = List.assoc "calvin" Harness.Setup.engines

let () =
  let n = 4 in
  Format.printf "TPC-C NewOrder, %d servers, 1 warehouse per host@." n;
  Format.printf "(distributed transactions, 1%% invalid-item aborts)@.@.";

  let run engine clients =
    let built =
      Harness.Setup.tpcc ~engine ~n ~warehouses_per_host:1 ~kind:`NewOrder ()
    in
    Harness.Driver.run built
      ~arrival:(Harness.Arrivals.Closed { clients_per_fe = clients })
      ~warmup_us:75_000 ~measure_us:100_000 ()
  in

  let aloha = run aloha_engine 1_000 in
  Format.printf "ALOHA-DB : %a@." Harness.Driver.pp_result aloha;
  List.iter
    (fun (stage, us) ->
      Format.printf "           %-22s %6.2f ms@." stage (us /. 1000.0))
    aloha.Harness.Driver.stages;

  let calvin = run calvin_engine 300 in
  Format.printf "@.Calvin   : %a@." Harness.Driver.pp_result calvin;
  List.iter
    (fun (stage, us) ->
      Format.printf "           %-22s %6.2f ms@." stage (us /. 1000.0))
    calvin.Harness.Driver.stages;

  Format.printf "@.speedup  : %.1fx (paper reports 13-112x depending on scale)@."
    (aloha.Harness.Driver.throughput_tps /. calvin.Harness.Driver.throughput_tps);
  Format.printf
    "aborts   : ALOHA %d installed-phase aborts (the required 1%%), Calvin %d (cannot abort)@."
    (Kernel.Result.abort aloha "install")
    (Kernel.Result.abort calvin "install")
