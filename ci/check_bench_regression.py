#!/usr/bin/env python3
"""Fail CI when a micro-benchmark regresses past the threshold.

Usage:
    python3 ci/check_bench_regression.py CURRENT_JSON... BASELINE_JSON

Compares ns/op per benchmark name against the committed baseline and
exits non-zero if any benchmark is more than THRESHOLD slower (default
30%, override with BENCH_REGRESSION_THRESHOLD, e.g. "0.5" for 50%).
A benchmark present in the baseline but missing from the current run is
also an error: coverage must not silently shrink.  New benchmarks are
reported but do not fail the check until they are added to the baseline.

More than one CURRENT_JSON may be given (e.g. a glob over the bench
output directory): files whose "suite" field is not "micro" — telemetry
summaries, Chrome traces, macro results — are skipped with a note, so
new kinds of run artifacts never break the gate.  A "real"-suite file
(BENCH_real.json, wall-clock domain scaling) is also skipped, but only
after its structure validates — a malformed real file fails the run.

    python3 ci/check_bench_regression.py --validate-real BENCH_real.json

validates a real-suite file on its own (the bench-real / real-smoke CI
lanes use this).

    python3 ci/check_bench_regression.py --validate-availability \
        BENCH_availability.json

validates an availability-suite file (committed-work-over-time series
under a crash schedule at several replication degrees): schema, a
series per degree with strictly increasing sample times and a monotone
non-decreasing committed counter, completed <= submitted, and — the
point of the figure — every replicated (k > 1) series must reach full
completion, while the k = 1 baseline may plateau.  Like the real suite
there is no numeric gate beyond that: the curves are the artifact.

    python3 ci/check_bench_regression.py --validate-fastpath \
        BENCH_fastpath.json

validates a fastpath-suite file (the latency-collapse figure: one
counter-heavy workload with the coordination-free commit lane off and
on): schema, exactly one "off" and one "on" series, sane percentiles
(0 < p50 <= p99), fast-lane commits only in the on series — and the
headline gate, the on-series p50 must be strictly below the off-series
p50.  Both runs are simulated time, so unlike the real suite this IS a
deterministic numeric gate.

    python3 ci/check_bench_regression.py --validate-timeline \
        TIMELINE.jsonl

validates an epoch-ledger timeline (the append-only JSONL the
`alohadb_cli timeline` subcommand emits; one meta-delimited segment per
run).  It is a language-independent re-statement of the OCaml doctor
(`alohadb_cli doctor` / Obs.Analyze.check): per-line schema by "type"
(meta / epoch / event / stratum), contiguous closed epochs per node,
monotone watermarks (a crash of that node between two closes excuses a
reset), every crash in a replicated segment followed by a restart or a
promotion, and every promotion with traffic still arriving afterwards
resolving with a first post-failover commit.  The CI obs-smoke lane
runs both checkers over the same file so a bug in one is caught by the
other.

Why the real suite has no numeric gate: BENCH_real.json holds host
wall-clock times, and those depend on the machine — physical core count
(a 1-core host cannot speed up the cpu-add series at all), CPU
frequency scaling, and co-tenant load all move the numbers by far more
than any honest regression threshold.  Simulated suites are
deterministic, so micro gets a 30% ns/op gate; real gets a
well-formedness gate (schema, positive times, the 1-domain baseline
each speedup is derived from) and the numbers themselves are for humans
reading the artifact next to its recorded host_cores.

Only the Python standard library is used.
"""

import json
import os
import sys


def validate_real(path, doc):
    """Exit with an error if a real-suite document is malformed."""
    def fail(msg):
        sys.exit(f"error: {path}: malformed real-suite document: {msg}")

    if not isinstance(doc.get("host_cores"), int) or doc["host_cores"] < 1:
        fail("host_cores must be a positive integer")
    series = doc.get("series")
    if not isinstance(series, list) or not series:
        fail("series must be a non-empty list")
    for s in series:
        if not isinstance(s, dict):
            fail("series entries must be objects")
        name = s.get("name")
        if not isinstance(name, str) or not name:
            fail("series name must be a non-empty string")
        if not isinstance(s.get("workload"), str):
            fail(f"series {name!r}: workload must be a string")
        points = s.get("points")
        if not isinstance(points, list) or not points:
            fail(f"series {name!r}: points must be a non-empty list")
        domains_seen = set()
        for p in points:
            if not isinstance(p, dict):
                fail(f"series {name!r}: points must be objects")
            d = p.get("domains")
            if not isinstance(d, int) or d < 1:
                fail(f"series {name!r}: domains must be a positive integer")
            if d in domains_seen:
                fail(f"series {name!r}: duplicate point for {d} domains")
            domains_seen.add(d)
            for field in ("wall_s", "txn_s"):
                v = p.get(field)
                if not isinstance(v, (int, float)) or v <= 0:
                    fail(f"series {name!r} @ {d} domains: "
                         f"{field} must be positive")
            txns = p.get("txns")
            if not isinstance(txns, int) or txns <= 0:
                fail(f"series {name!r} @ {d} domains: "
                     f"txns must be a positive integer")
        if 1 not in domains_seen:
            fail(f"series {name!r}: missing the 1-domain baseline point")


def validate_availability(path, doc):
    """Exit with an error if an availability-suite document is malformed."""
    def fail(msg):
        sys.exit(f"error: {path}: malformed availability document: {msg}")

    if not isinstance(doc.get("schedule"), str) or not doc["schedule"]:
        fail("schedule must be a non-empty string")
    series = doc.get("series")
    if not isinstance(series, list) or not series:
        fail("series must be a non-empty list")
    degrees_seen = set()
    for s in series:
        if not isinstance(s, dict):
            fail("series entries must be objects")
        k = s.get("replicas")
        if not isinstance(k, int) or k < 1:
            fail("replicas must be a positive integer")
        if k in degrees_seen:
            fail(f"duplicate series for replicas={k}")
        degrees_seen.add(k)
        if not isinstance(s.get("engine"), str) or not s["engine"]:
            fail(f"k={k}: engine must be a non-empty string")
        if not isinstance(s.get("seed"), int):
            fail(f"k={k}: seed must be an integer")
        submitted, completed = s.get("submitted"), s.get("completed")
        if not isinstance(submitted, int) or submitted <= 0:
            fail(f"k={k}: submitted must be a positive integer")
        if not isinstance(completed, int) or completed < 0:
            fail(f"k={k}: completed must be a non-negative integer")
        if completed > submitted:
            fail(f"k={k}: completed {completed} exceeds submitted {submitted}")
        if k > 1 and completed != submitted:
            fail(f"k={k}: a replicated run must complete "
                 f"({completed}/{submitted}) — failover did not mask the "
                 f"crash")
        points = s.get("points")
        if not isinstance(points, list) or not points:
            fail(f"k={k}: points must be a non-empty list")
        prev_t, prev_c = -1, 0
        for p in points:
            if not isinstance(p, dict):
                fail(f"k={k}: points must be objects")
            t, c = p.get("t_us"), p.get("committed")
            if not isinstance(t, int) or t <= prev_t:
                fail(f"k={k}: sample times must be strictly increasing")
            if not isinstance(c, int) or c < prev_c:
                fail(f"k={k}: committed counter regressed at t={t}us "
                     f"({prev_c} -> {c})")
            prev_t, prev_c = t, c
        if prev_c != completed:
            fail(f"k={k}: last sample {prev_c} != completed {completed}")


def validate_fastpath(path, doc):
    """Exit with an error if a fastpath-suite document is malformed."""
    def fail(msg):
        sys.exit(f"error: {path}: malformed fastpath document: {msg}")

    if not isinstance(doc.get("workload"), str) or not doc["workload"]:
        fail("workload must be a non-empty string")
    series = doc.get("series")
    if not isinstance(series, list) or not series:
        fail("series must be a non-empty list")
    by_mode = {}
    for s in series:
        if not isinstance(s, dict):
            fail("series entries must be objects")
        mode = s.get("mode")
        if mode not in ("on", "off"):
            fail(f"mode must be \"on\" or \"off\", got {mode!r}")
        if mode in by_mode:
            fail(f"duplicate series for mode={mode}")
        by_mode[mode] = s
        committed = s.get("committed")
        if not isinstance(committed, int) or committed <= 0:
            fail(f"mode={mode}: committed must be a positive integer")
        tps = s.get("tps")
        if not isinstance(tps, (int, float)) or tps <= 0:
            fail(f"mode={mode}: tps must be positive")
        p50, p99 = s.get("p50_us"), s.get("p99_us")
        if not isinstance(p50, int) or p50 <= 0:
            fail(f"mode={mode}: p50_us must be a positive integer")
        if not isinstance(p99, int) or p99 < p50:
            fail(f"mode={mode}: p99_us must be an integer >= p50_us")
        fast = s.get("fastpath_commits")
        if not isinstance(fast, int) or fast < 0:
            fail(f"mode={mode}: fastpath_commits must be a non-negative "
                 f"integer")
        if mode == "off" and fast != 0:
            fail(f"mode=off: fastpath_commits must be 0, got {fast}")
        if mode == "on" and fast == 0:
            fail("mode=on: no transaction took the fast lane")
    for mode in ("off", "on"):
        if mode not in by_mode:
            fail(f"missing the mode={mode} series")
    on, off = by_mode["on"], by_mode["off"]
    if on["p50_us"] >= off["p50_us"]:
        fail(f"fast-lane p50 ({on['p50_us']}us) must be below the "
             f"slow-lane p50 ({off['p50_us']}us) — the lane did not "
             f"collapse commit latency")


def parse_timeline(path):
    """Split a TIMELINE.jsonl into meta-delimited segments.

    Returns a list of {"meta": dict, "rows": [...], "events": [...],
    "strata": [...]}; exits on unreadable or schema-violating lines."""
    def fail(lineno, msg):
        sys.exit(f"error: {path}:{lineno}: {msg}")

    def need(lineno, rec, field, typ, kind):
        v = rec.get(field)
        if not isinstance(v, typ) or isinstance(v, bool) and typ is int:
            fail(lineno, f"{kind} line: {field!r} must be {typ.__name__}")
        return v

    try:
        with open(path) as f:
            raw = f.read().splitlines()
    except OSError as exc:
        sys.exit(f"error: cannot read {path}: {exc}")
    segments, seg = [], None
    kinds = ("crash", "restart", "detect", "promote", "first_commit")
    for lineno, line in enumerate(raw, start=1):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except ValueError as exc:
            fail(lineno, f"not JSON: {exc}")
        if not isinstance(rec, dict):
            fail(lineno, "line must be a JSON object")
        typ = rec.get("type")
        if typ == "meta":
            for field in ("cfg_epoch_us", "nodes", "replicas"):
                need(lineno, rec, field, int, "meta")
            seg = {"meta": rec, "rows": [], "events": [], "strata": []}
            segments.append(seg)
        elif typ == "epoch":
            if seg is None:
                fail(lineno, "epoch line before any meta line")
            for field in ("epoch", "node", "open_us", "close_us",
                          "stretch_millis", "assigned", "fast_commits",
                          "fast_merges", "watermark", "watermark_lag_us"):
                need(lineno, rec, field, int, "epoch")
            for field in ("assigned", "fast_commits", "fast_merges"):
                if rec[field] < 0:
                    fail(lineno, f"epoch line: negative {field}")
            if rec["fast_commits"] > rec["assigned"]:
                fail(lineno, "epoch line: fast_commits exceed assigned")
            if (rec["close_us"] >= 0 and rec["open_us"] >= 0
                    and rec["close_us"] < rec["open_us"]):
                fail(lineno, "epoch line: closed before it opened")
            for group in rec.get("groups", []):
                if not isinstance(group, dict):
                    fail(lineno, "epoch line: groups must be objects")
                need(lineno, group, "group", int, "group")
                need(lineno, group, "ships", int, "group")
            seg["rows"].append(rec)
        elif typ == "event":
            if seg is None:
                fail(lineno, "event line before any meta line")
            kind = need(lineno, rec, "kind", str, "event")
            if kind not in kinds:
                fail(lineno, f"unknown event kind {kind!r}")
            if need(lineno, rec, "t_us", int, "event") < 0:
                fail(lineno, "event line: negative t_us")
            need(lineno, rec, "node", int, "event")
            need(lineno, rec, "partition", int, "event")
            seg["events"].append(rec)
        elif typ == "stratum":
            if seg is None:
                fail(lineno, "stratum line before any meta line")
            for field in ("node", "t0_us", "t1_us", "size"):
                need(lineno, rec, field, int, "stratum")
            workers = rec.get("workers")
            if not isinstance(workers, list):
                fail(lineno, "stratum line: workers must be a list")
            for w in workers:
                if not isinstance(w, dict):
                    fail(lineno, "stratum line: workers must be objects")
                for field in ("worker", "completed", "stolen", "queue"):
                    need(lineno, w, field, int, "stratum worker")
            seg["strata"].append(rec)
        else:
            fail(lineno, f"unknown line type {typ!r}")
    if not segments:
        sys.exit(f"error: {path}: no timeline segments found")
    return segments


def timeline_incidents(seg):
    """Mirror Obs.Analyze.incidents: one incident per promote event."""
    evs = seg["events"]
    out = []
    for ev in evs:
        if ev["kind"] != "promote":
            continue
        crash = None
        for e in evs:
            if (e["kind"] == "crash" and e["t_us"] <= ev["t_us"]
                    and not any(r["kind"] == "restart"
                                and r["node"] == e["node"]
                                and e["t_us"] < r["t_us"] <= ev["t_us"]
                                for r in evs)
                    and (crash is None or e["t_us"] >= crash["t_us"])):
                crash = e
        first = None
        for e in evs:
            if (e["kind"] == "first_commit"
                    and e["partition"] == ev["partition"]
                    and e["t_us"] >= ev["t_us"]
                    and (first is None or e["t_us"] < first["t_us"])):
                first = e
        out.append({"partition": ev["partition"],
                    "promoted_node": ev["node"],
                    "crash": crash, "promote_us": ev["t_us"],
                    "first_commit_us": first["t_us"] if first else -1})
    return out


def validate_timeline_segment(idx, seg, problems):
    """Append doctor-invariant violations for one segment to problems."""
    def viol(msg):
        problems.append(f"segment {idx}: {msg}")

    events = seg["events"]

    def crashed_between(node, t0, t1):
        return any(e["kind"] == "crash" and e["node"] == node
                   and t0 < e["t_us"] <= t1 for e in events)

    by_node = {}
    for r in seg["rows"]:
        if r["close_us"] >= 0:
            by_node.setdefault(r["node"], []).append(r)
    for node, rows in sorted(by_node.items()):
        rows.sort(key=lambda r: r["epoch"])
        for a, b in zip(rows, rows[1:]):
            if b["epoch"] != a["epoch"] + 1:
                viol(f"node {node}: closed epochs not contiguous "
                     f"({a['epoch']} then {b['epoch']})")
            if (a["watermark"] >= 0 and 0 <= b["watermark"] < a["watermark"]
                    and not crashed_between(node, a["close_us"],
                                            b["close_us"])):
                viol(f"node {node}: watermark regressed {a['watermark']} -> "
                     f"{b['watermark']} across epochs {a['epoch']}-"
                     f"{b['epoch']} with no crash")
    if seg["meta"]["replicas"] > 1:
        for e in events:
            if e["kind"] != "crash":
                continue
            handled = any(
                e2["t_us"] >= e["t_us"]
                and ((e2["kind"] == "restart" and e2["node"] == e["node"])
                     or e2["kind"] == "promote")
                for e2 in events)
            if not handled:
                viol(f"node {e['node']} crashed at {e['t_us']}us with no "
                     f"subsequent promotion or restart "
                     f"(k={seg['meta']['replicas']})")
    incidents = timeline_incidents(seg)
    for i in incidents:
        traffic_after = any(r["assigned"] > 0
                            and r["open_us"] >= i["promote_us"]
                            for r in seg["rows"])
        if i["first_commit_us"] < 0 and traffic_after:
            viol(f"incident on partition {i['partition']} (promoted to node "
                 f"{i['promoted_node']} at {i['promote_us']}us) never saw a "
                 f"post-failover commit")
    return incidents


def report_timeline(path, segments):
    print(f"{path}: timeline ok ({len(segments)} segment(s))")
    for idx, seg in enumerate(segments):
        meta = seg["meta"]
        incidents = timeline_incidents(seg)
        resolved = sum(1 for i in incidents if i["first_commit_us"] >= 0)
        print(f"  segment {idx}: nodes={meta['nodes']} "
              f"k={meta['replicas']} epoch={meta['cfg_epoch_us']}us  "
              f"{len(seg['rows'])} epoch rows, {len(seg['events'])} events, "
              f"{len(seg['strata'])} strata, {len(incidents)} incident(s) "
              f"({resolved} resolved)")


def report_fastpath(path, doc):
    print(f"{path}: fastpath suite ok")
    for s in doc["series"]:
        print(f"  {s['mode']:3}: p50 {s['p50_us']}us  p99 {s['p99_us']}us  "
              f"{s['committed']} committed "
              f"({s['fastpath_commits']} via fast lane)")
    on = next(s for s in doc["series"] if s["mode"] == "on")
    off = next(s for s in doc["series"] if s["mode"] == "off")
    print(f"  p50 collapse: {off['p50_us'] / on['p50_us']:.1f}x")


def report_availability(path, doc):
    print(f"{path}: availability suite ok")
    for s in doc["series"]:
        pts = s["points"]
        rise = next((p["t_us"] for p in pts if p["committed"] > 0), None)
        when = f"first commit @ {rise}us" if rise is not None else "flatline"
        print(f"  k={s['replicas']}: {s['completed']}/{s['submitted']} "
              f"committed, {len(pts)} samples, {when}")


def report_real(path, doc):
    print(f"{path}: real suite ok (host_cores={doc['host_cores']})")
    for s in doc["series"]:
        pts = sorted(s["points"], key=lambda p: p["domains"])
        scaling = ", ".join(
            f"{p['domains']}d={p['txn_s']:.0f}/s"
            f" ({p['speedup_vs_1']:.2f}x)"
            if isinstance(p.get("speedup_vs_1"), (int, float))
            else f"{p['domains']}d={p['txn_s']:.0f}/s"
            for p in pts
        )
        print(f"  {s['name']:16} {scaling}")


def load(path):
    """Parse a micro-suite document; return None for other JSON files."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as exc:
        sys.exit(f"error: cannot read {path}: {exc}")
    if isinstance(doc, dict) and doc.get("suite") == "real":
        # skip, but never silently ship a broken artifact
        validate_real(path, doc)
        return None
    if isinstance(doc, dict) and doc.get("suite") == "availability":
        validate_availability(path, doc)
        return None
    if isinstance(doc, dict) and doc.get("suite") == "fastpath":
        validate_fastpath(path, doc)
        return None
    if not isinstance(doc, dict) or doc.get("suite") != "micro":
        return None
    try:
        return {r["name"]: float(r["ns_per_op"]) for r in doc["results"]}
    except (KeyError, TypeError) as exc:
        sys.exit(f"error: {path} is not a BENCH_micro.json document: {exc}")


def main(argv):
    if len(argv) >= 2 and argv[1] == "--validate-real":
        if len(argv) != 3:
            sys.exit(f"usage: {argv[0]} --validate-real BENCH_real.json")
        path = argv[2]
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, ValueError) as exc:
            sys.exit(f"error: cannot read {path}: {exc}")
        if not isinstance(doc, dict) or doc.get("suite") != "real":
            sys.exit(f"error: {path} is not a real-suite document")
        validate_real(path, doc)
        report_real(path, doc)
        return 0
    if len(argv) >= 2 and argv[1] == "--validate-availability":
        if len(argv) != 3:
            sys.exit(f"usage: {argv[0]} --validate-availability "
                     f"BENCH_availability.json")
        path = argv[2]
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, ValueError) as exc:
            sys.exit(f"error: cannot read {path}: {exc}")
        if not isinstance(doc, dict) or doc.get("suite") != "availability":
            sys.exit(f"error: {path} is not an availability-suite document")
        validate_availability(path, doc)
        report_availability(path, doc)
        return 0
    if len(argv) >= 2 and argv[1] == "--validate-timeline":
        if len(argv) != 3:
            sys.exit(f"usage: {argv[0]} --validate-timeline TIMELINE.jsonl")
        path = argv[2]
        segments = parse_timeline(path)
        problems = []
        for idx, seg in enumerate(segments):
            validate_timeline_segment(idx, seg, problems)
        if problems:
            print(f"error: {path}: {len(problems)} doctor violation(s):",
                  file=sys.stderr)
            for p in problems:
                print(f"  - {p}", file=sys.stderr)
            return 1
        report_timeline(path, segments)
        return 0
    if len(argv) >= 2 and argv[1] == "--validate-fastpath":
        if len(argv) != 3:
            sys.exit(f"usage: {argv[0]} --validate-fastpath "
                     f"BENCH_fastpath.json")
        path = argv[2]
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, ValueError) as exc:
            sys.exit(f"error: cannot read {path}: {exc}")
        if not isinstance(doc, dict) or doc.get("suite") != "fastpath":
            sys.exit(f"error: {path} is not a fastpath-suite document")
        validate_fastpath(path, doc)
        report_fastpath(path, doc)
        return 0
    if len(argv) < 3:
        sys.exit(f"usage: {argv[0]} CURRENT_JSON... BASELINE_JSON")
    current_paths, baseline_path = argv[1:-1], argv[-1]
    threshold = float(os.environ.get("BENCH_REGRESSION_THRESHOLD", "0.30"))

    current, current_path = None, None
    for path in current_paths:
        parsed = load(path)
        if parsed is None:
            print(f"note: {path} is not a micro-suite document, skipping")
        elif current is not None:
            sys.exit(f"error: more than one micro-suite file given "
                     f"({current_path}, {path})")
        else:
            current, current_path = parsed, path
    if current is None:
        sys.exit("error: no micro-suite document among the current files")
    baseline = load(baseline_path)
    if baseline is None:
        sys.exit(f"error: {baseline_path} is not a micro-suite document")

    regressions = []
    missing = sorted(set(baseline) - set(current))
    new = sorted(set(current) - set(baseline))

    print(f"{'benchmark':48} {'baseline':>12} {'current':>12} {'delta':>8}")
    for name in sorted(baseline):
        if name not in current:
            continue
        base, cur = baseline[name], current[name]
        delta = (cur - base) / base if base > 0 else 0.0
        flag = "  <-- REGRESSION" if delta > threshold else ""
        print(f"{name:48} {base:10.1f}ns {cur:10.1f}ns {delta:+7.1%}{flag}")
        if delta > threshold:
            regressions.append((name, base, cur, delta))
    for name in new:
        print(f"{name:48} {'(new)':>12} {current[name]:10.1f}ns")

    ok = True
    if missing:
        ok = False
        print(f"\nerror: benchmark(s) missing from {current_path}:", file=sys.stderr)
        for name in missing:
            print(f"  - {name}", file=sys.stderr)
    if regressions:
        ok = False
        print(
            f"\nerror: {len(regressions)} benchmark(s) regressed more than "
            f"{threshold:.0%} vs {baseline_path}:",
            file=sys.stderr,
        )
        for name, base, cur, delta in regressions:
            print(
                f"  - {name}: {base:.1f} -> {cur:.1f} ns/op ({delta:+.1%})",
                file=sys.stderr,
            )
    if not ok:
        print(
            "\nIf this slowdown is intentional (e.g. the primitive now does"
            " more work), refresh the baseline and commit it:\n"
            "    dune exec bench/main.exe -- --json micro\n"
            f"    cp BENCH_micro.json {baseline_path}\n"
            "and explain the regression in the commit message.",
            file=sys.stderr,
        )
        return 1
    print("\nbench regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
