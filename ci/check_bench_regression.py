#!/usr/bin/env python3
"""Fail CI when a micro-benchmark regresses past the threshold.

Usage:
    python3 ci/check_bench_regression.py CURRENT_JSON... BASELINE_JSON

Compares ns/op per benchmark name against the committed baseline and
exits non-zero if any benchmark is more than THRESHOLD slower (default
30%, override with BENCH_REGRESSION_THRESHOLD, e.g. "0.5" for 50%).
A benchmark present in the baseline but missing from the current run is
also an error: coverage must not silently shrink.  New benchmarks are
reported but do not fail the check until they are added to the baseline.

More than one CURRENT_JSON may be given (e.g. a glob over the bench
output directory): files whose "suite" field is not "micro" — telemetry
summaries, Chrome traces, macro results — are skipped with a note, so
new kinds of run artifacts never break the gate.

Only the Python standard library is used.
"""

import json
import os
import sys


def load(path):
    """Parse a micro-suite document; return None for other JSON files."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as exc:
        sys.exit(f"error: cannot read {path}: {exc}")
    if not isinstance(doc, dict) or doc.get("suite") != "micro":
        return None
    try:
        return {r["name"]: float(r["ns_per_op"]) for r in doc["results"]}
    except (KeyError, TypeError) as exc:
        sys.exit(f"error: {path} is not a BENCH_micro.json document: {exc}")


def main(argv):
    if len(argv) < 3:
        sys.exit(f"usage: {argv[0]} CURRENT_JSON... BASELINE_JSON")
    current_paths, baseline_path = argv[1:-1], argv[-1]
    threshold = float(os.environ.get("BENCH_REGRESSION_THRESHOLD", "0.30"))

    current, current_path = None, None
    for path in current_paths:
        parsed = load(path)
        if parsed is None:
            print(f"note: {path} is not a micro-suite document, skipping")
        elif current is not None:
            sys.exit(f"error: more than one micro-suite file given "
                     f"({current_path}, {path})")
        else:
            current, current_path = parsed, path
    if current is None:
        sys.exit("error: no micro-suite document among the current files")
    baseline = load(baseline_path)
    if baseline is None:
        sys.exit(f"error: {baseline_path} is not a micro-suite document")

    regressions = []
    missing = sorted(set(baseline) - set(current))
    new = sorted(set(current) - set(baseline))

    print(f"{'benchmark':48} {'baseline':>12} {'current':>12} {'delta':>8}")
    for name in sorted(baseline):
        if name not in current:
            continue
        base, cur = baseline[name], current[name]
        delta = (cur - base) / base if base > 0 else 0.0
        flag = "  <-- REGRESSION" if delta > threshold else ""
        print(f"{name:48} {base:10.1f}ns {cur:10.1f}ns {delta:+7.1%}{flag}")
        if delta > threshold:
            regressions.append((name, base, cur, delta))
    for name in new:
        print(f"{name:48} {'(new)':>12} {current[name]:10.1f}ns")

    ok = True
    if missing:
        ok = False
        print(f"\nerror: benchmark(s) missing from {current_path}:", file=sys.stderr)
        for name in missing:
            print(f"  - {name}", file=sys.stderr)
    if regressions:
        ok = False
        print(
            f"\nerror: {len(regressions)} benchmark(s) regressed more than "
            f"{threshold:.0%} vs {baseline_path}:",
            file=sys.stderr,
        )
        for name, base, cur, delta in regressions:
            print(
                f"  - {name}: {base:.1f} -> {cur:.1f} ns/op ({delta:+.1%})",
                file=sys.stderr,
            )
    if not ok:
        print(
            "\nIf this slowdown is intentional (e.g. the primitive now does"
            " more work), refresh the baseline and commit it:\n"
            "    dune exec bench/main.exe -- --json micro\n"
            f"    cp BENCH_micro.json {baseline_path}\n"
            "and explain the regression in the commit message.",
            file=sys.stderr,
        )
        return 1
    print("\nbench regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
