(* Command-line driver for single experiments.

   Examples:
     alohadb_cli run --system aloha --workload ycsb --ci 0.01 --servers 8
     alohadb_cli run --system twopl --workload ycsb --ci 0.001
     alohadb_cli run --system calvin --workload tpcc --per-host 1 \
       --clients 500 --measure-ms 200
     alohadb_cli figure fig9 --scale full
     alohadb_cli table1 *)

open Cmdliner

let run_cmd =
  let system =
    let doc = "System under test: aloha, calvin, or twopl." in
    Arg.(value
         & opt (enum
                  (List.map
                     (fun (name, e) -> (name, (name, e)))
                     Harness.Setup.engines))
             ("aloha", List.assoc "aloha" Harness.Setup.engines)
         & info [ "system"; "s" ] ~doc)
  in
  let workload =
    let doc = "Workload: tpcc, tpcc-payment, stpcc, or ycsb." in
    Arg.(value
         & opt (enum
                  [ ("tpcc", `Tpcc); ("tpcc-payment", `Tpcc_payment);
                    ("stpcc", `Stpcc); ("ycsb", `Ycsb) ])
             `Ycsb
         & info [ "workload"; "w" ] ~doc)
  in
  let servers =
    Arg.(value & opt int 8 & info [ "servers"; "n" ] ~doc:"Cluster size.")
  in
  let per_host =
    Arg.(value & opt int 10
         & info [ "per-host" ] ~doc:"Warehouses/districts per host (TPC-C).")
  in
  let ci =
    Arg.(value & opt float 0.01
         & info [ "ci" ] ~doc:"YCSB contention index (1/hot-keys).")
  in
  let clients =
    Arg.(value & opt int 0
         & info [ "clients" ]
             ~doc:"Closed-loop clients per frontend (0 = pick a default).")
  in
  let rate =
    Arg.(value & opt float 0.0
         & info [ "rate" ]
             ~doc:"Open-loop arrival rate per frontend in txn/s \
                   (overrides --clients when positive).")
  in
  let epoch_ms =
    Arg.(value & opt int 25
         & info [ "epoch-ms" ] ~doc:"Epoch / sequencer batch duration.")
  in
  let warmup_ms =
    Arg.(value & opt int 75 & info [ "warmup-ms" ] ~doc:"Warm-up window.")
  in
  let measure_ms =
    Arg.(value & opt int 100 & info [ "measure-ms" ] ~doc:"Measured window.")
  in
  let seed = Arg.(value & opt int 17 & info [ "seed" ] ~doc:"Workload seed.") in
  let run (sys_name, engine) workload n per_host ci clients rate epoch_ms
      warmup_ms measure_ms seed =
    let epoch_us = epoch_ms * 1000 in
    let warmup_us = warmup_ms * 1000 in
    let measure_us = measure_ms * 1000 in
    let arrival =
      if rate > 0.0 then Harness.Arrivals.Open_poisson { rate_per_fe = rate }
      else
        (* ALOHA sustains far more closed-loop clients than the lock-based
           engines. *)
        let default = if sys_name = "aloha" then 2_000 else 500 in
        Harness.Arrivals.Closed
          { clients_per_fe = (if clients > 0 then clients else default) }
    in
    let built =
      match workload with
      | `Tpcc ->
          Harness.Setup.tpcc ~engine ~n ~warehouses_per_host:per_host
            ~kind:`NewOrder ~epoch_us ~seed ()
      | `Tpcc_payment ->
          Harness.Setup.tpcc ~engine ~n ~warehouses_per_host:per_host
            ~kind:`Payment ~epoch_us ~seed ()
      | `Stpcc ->
          Harness.Setup.stpcc ~engine ~n ~districts_per_host:per_host
            ~epoch_us ~seed ()
      | `Ycsb -> Harness.Setup.ycsb ~engine ~n ~ci ~epoch_us ~seed ()
    in
    let result =
      Harness.Driver.run built ~arrival ~warmup_us ~measure_us ()
    in
    Format.printf "%a@." Harness.Driver.pp_result result;
    List.iter
      (fun (stage, us) ->
        Format.printf "  %-22s %8.2f ms@." stage (us /. 1000.0))
      result.Harness.Driver.stages
  in
  let doc = "Run one experiment point and print its metrics." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ system $ workload $ servers $ per_host $ ci $ clients
          $ rate $ epoch_ms $ warmup_ms $ measure_ms $ seed)

let figure_cmd =
  let target =
    let doc = "Figure or ablation to regenerate (fig6..fig11, table1, \
               ablation-straggler, ablation-push, ablation-dependent, all)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET" ~doc)
  in
  let scale =
    let doc = "Point-set scale: quick (development) or full (paper)." in
    Arg.(value
         & opt (enum
                  [ ("quick", Harness.Experiments.quick);
                    ("full", Harness.Experiments.full) ])
             Harness.Experiments.quick
         & info [ "scale" ] ~doc)
  in
  let run target scale =
    match target with
    | "table1" -> Harness.Experiments.table1 ()
    | "fig6" -> Harness.Experiments.fig6 scale
    | "fig7" -> Harness.Experiments.fig7 scale
    | "fig8" -> Harness.Experiments.fig8 scale
    | "fig9" -> Harness.Experiments.fig9 scale
    | "fig10" -> Harness.Experiments.fig10 scale
    | "fig11" -> Harness.Experiments.fig11 scale
    | "ablation-straggler" -> Harness.Experiments.ablation_straggler scale
    | "ablation-push" -> Harness.Experiments.ablation_push scale
    | "ablation-dependent" -> Harness.Experiments.ablation_dependent scale
    | "ext-conventional" -> Harness.Experiments.ext_conventional scale
    | "all" -> Harness.Experiments.all scale
    | other ->
        Format.eprintf "unknown target %s@." other;
        exit 2
  in
  let doc = "Regenerate one of the paper's figures." in
  Cmd.v (Cmd.info "figure" ~doc) Term.(const run $ target $ scale)

let table1_cmd =
  let doc = "Print Table I (supported f-types)." in
  Cmd.v (Cmd.info "table1" ~doc)
    Term.(const Harness.Experiments.table1 $ const ())

let () =
  let doc =
    "ALOHA-DB: scalable transaction processing using functors (ICDCS'18 \
     reproduction)"
  in
  let info = Cmd.info "alohadb_cli" ~doc in
  exit (Cmd.eval (Cmd.group info [ run_cmd; figure_cmd; table1_cmd ]))
