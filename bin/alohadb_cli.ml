(* Command-line driver for single experiments.

   Examples:
     alohadb_cli run --system aloha --workload ycsb --ci 0.01 --servers 8
     alohadb_cli run --system twopl --workload ycsb --ci 0.001
     alohadb_cli run --system calvin --workload tpcc --per-host 1 \
       --clients 500 --measure-ms 200
     alohadb_cli figure fig9 --scale full
     alohadb_cli table1 *)

open Cmdliner

let run_cmd =
  let system =
    let doc = "System under test: aloha, calvin, or twopl." in
    Arg.(value
         & opt (enum
                  (List.map
                     (fun (name, e) -> (name, (name, e)))
                     Harness.Setup.engines))
             ("aloha", List.assoc "aloha" Harness.Setup.engines)
         & info [ "system"; "s" ] ~doc)
  in
  let workload =
    let doc = "Workload: tpcc, tpcc-payment, stpcc, or ycsb." in
    Arg.(value
         & opt (enum
                  [ ("tpcc", `Tpcc); ("tpcc-payment", `Tpcc_payment);
                    ("stpcc", `Stpcc); ("ycsb", `Ycsb) ])
             `Ycsb
         & info [ "workload"; "w" ] ~doc)
  in
  let servers =
    Arg.(value & opt int 8 & info [ "servers"; "n" ] ~doc:"Cluster size.")
  in
  let per_host =
    Arg.(value & opt int 10
         & info [ "per-host" ] ~doc:"Warehouses/districts per host (TPC-C).")
  in
  let ci =
    Arg.(value & opt float 0.01
         & info [ "ci" ] ~doc:"YCSB contention index (1/hot-keys).")
  in
  let clients =
    Arg.(value & opt int 0
         & info [ "clients" ]
             ~doc:"Closed-loop clients per frontend (0 = pick a default).")
  in
  let rate =
    Arg.(value & opt float 0.0
         & info [ "rate" ]
             ~doc:"Open-loop arrival rate per frontend in txn/s \
                   (overrides --clients when positive).")
  in
  let epoch_ms =
    Arg.(value & opt int 25
         & info [ "epoch-ms" ] ~doc:"Epoch / sequencer batch duration.")
  in
  let warmup_ms =
    Arg.(value & opt int 75 & info [ "warmup-ms" ] ~doc:"Warm-up window.")
  in
  let measure_ms =
    Arg.(value & opt int 100 & info [ "measure-ms" ] ~doc:"Measured window.")
  in
  let seed = Arg.(value & opt int 17 & info [ "seed" ] ~doc:"Workload seed.") in
  let compute =
    let modes =
      Arg.enum
        [ ("ondemand", "ondemand"); ("pool", "pool"); ("planned", "planned") ]
    in
    Arg.(value & opt (some modes) None
         & info [ "compute" ]
             ~doc:"Compute-phase mode (ALOHA only): ondemand, pool, or \
                   planned.  Omitted = engine default.")
  in
  let runtime =
    let modes = Arg.enum [ ("sim", "sim"); ("real", "real") ] in
    Arg.(value & opt (some modes) None
         & info [ "runtime" ]
             ~doc:"Execution backend (ALOHA only): sim (default; \
                   single-domain simulation) or real (evaluate planned \
                   functor strata on OCaml 5 worker domains; pair with \
                   --compute planned).")
  in
  let domains =
    Arg.(value & opt (some int) None
         & info [ "domains" ]
             ~doc:"Worker domains for --runtime real (default: engine \
                   default).")
  in
  let replicas =
    Arg.(value & opt (some int) None
         & info [ "replicas"; "k" ]
             ~doc:"Replication degree per partition (ALOHA only; 1 = \
                   unreplicated, the default).  k > 1 ships WAL records \
                   to k-1 followers and survives any single backend \
                   crash by failover.")
  in
  let fastpath =
    let modes = Arg.enum [ ("on", true); ("off", false) ] in
    Arg.(value & opt (some modes) None
         & info [ "fastpath" ]
             ~doc:"Coordination-free commit lane for all-commutative \
                   transactions (ALOHA only): on commits ADD/SUBTR/MAX/MIN \
                   write sets at install time instead of waiting for epoch \
                   close + compute.  Omitted = off.")
  in
  let run (sys_name, engine) workload n per_host ci clients rate epoch_ms
      warmup_ms measure_ms seed compute runtime domains replicas fastpath =
    let epoch_us = epoch_ms * 1000 in
    let warmup_us = warmup_ms * 1000 in
    let measure_us = measure_ms * 1000 in
    let arrival =
      if rate > 0.0 then Harness.Arrivals.Open_poisson { rate_per_fe = rate }
      else
        (* ALOHA sustains far more closed-loop clients than the lock-based
           engines. *)
        let default = if sys_name = "aloha" then 2_000 else 500 in
        Harness.Arrivals.Closed
          { clients_per_fe = (if clients > 0 then clients else default) }
    in
    let built =
      match workload with
      | `Tpcc ->
          Harness.Setup.tpcc ~engine ~n ~warehouses_per_host:per_host
            ~kind:`NewOrder ~epoch_us ?compute ?runtime ?domains ?replicas
            ?fastpath ~seed ()
      | `Tpcc_payment ->
          Harness.Setup.tpcc ~engine ~n ~warehouses_per_host:per_host
            ~kind:`Payment ~epoch_us ?compute ?runtime ?domains ?replicas
            ?fastpath ~seed ()
      | `Stpcc ->
          Harness.Setup.stpcc ~engine ~n ~districts_per_host:per_host
            ~epoch_us ?compute ?runtime ?domains ?replicas ?fastpath ~seed ()
      | `Ycsb ->
          Harness.Setup.ycsb ~engine ~n ~ci ~epoch_us ?compute ?runtime
            ?domains ?replicas ?fastpath ~seed ()
    in
    let wall_t0 = Unix.gettimeofday () in
    let result =
      Harness.Driver.run built ~arrival ~warmup_us ~measure_us ()
    in
    let wall_s = Unix.gettimeofday () -. wall_t0 in
    (* Quiesce: joins the real runtime's worker domains (no-op on sim). *)
    (let (Harness.Setup.Built ((module E), c, _)) = built in
     E.stop c);
    (match compute with
    | Some mode -> Format.printf "compute mode: %s@." mode
    | None -> ());
    (match replicas with
    | Some k when k > 1 -> Format.printf "replication: k=%d@." k
    | _ -> ());
    (match fastpath with
    | Some true -> Format.printf "fastpath: on@."
    | _ -> ());
    (match runtime with
    | Some mode ->
        Format.printf "runtime: %s%s@." mode
          (match domains with
          | Some d when mode = "real" -> Printf.sprintf " (%d domains)" d
          | _ -> "")
    | None -> ());
    Format.printf "%a@." Harness.Driver.pp_result result;
    (* Wall-clock throughput: the first-class series under --runtime real
       (simulated tps is unchanged by construction there). *)
    Format.printf "wall clock: %.3f s (%.0f committed txn/s wall)@." wall_s
      (float_of_int result.Harness.Driver.committed /. wall_s);
    List.iter
      (fun (stage, (st : Kernel.Result.stage_stat)) ->
        Format.printf "  %-22s %8.2f ms  p99 %6.2f ms  p999 %6.2f ms@." stage
          (st.Kernel.Result.mean_us /. 1000.0)
          (float_of_int st.p99_us /. 1000.0)
          (float_of_int st.p999_us /. 1000.0))
      result.Harness.Driver.stage_stats
  in
  let doc = "Run one experiment point and print its metrics." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ system $ workload $ servers $ per_host $ ci $ clients
          $ rate $ epoch_ms $ warmup_ms $ measure_ms $ seed $ compute
          $ runtime $ domains $ replicas $ fastpath)

let figure_cmd =
  let target =
    let doc = "Figure or ablation to regenerate (fig6..fig11, table1, \
               ablation-straggler, ablation-push, ablation-dependent, all)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET" ~doc)
  in
  let scale =
    let doc = "Point-set scale: quick (development) or full (paper)." in
    Arg.(value
         & opt (enum
                  [ ("quick", Harness.Experiments.quick);
                    ("full", Harness.Experiments.full) ])
             Harness.Experiments.quick
         & info [ "scale" ] ~doc)
  in
  let run target scale =
    match target with
    | "table1" -> Harness.Experiments.table1 ()
    | "fig6" -> Harness.Experiments.fig6 scale
    | "fig7" -> Harness.Experiments.fig7 scale
    | "fig8" -> Harness.Experiments.fig8 scale
    | "fig9" -> Harness.Experiments.fig9 scale
    | "fig10" -> Harness.Experiments.fig10 scale
    | "fig11" -> Harness.Experiments.fig11 scale
    | "ablation-straggler" -> Harness.Experiments.ablation_straggler scale
    | "ablation-push" -> Harness.Experiments.ablation_push scale
    | "ablation-dependent" -> Harness.Experiments.ablation_dependent scale
    | "ext-conventional" -> Harness.Experiments.ext_conventional scale
    | "all" -> Harness.Experiments.all scale
    | other ->
        Format.eprintf "unknown target %s@." other;
        exit 2
  in
  let doc = "Regenerate one of the paper's figures." in
  Cmd.v (Cmd.info "figure" ~doc) Term.(const run $ target $ scale)

let table1_cmd =
  let doc = "Print Table I (supported f-types)." in
  Cmd.v (Cmd.info "table1" ~doc)
    Term.(const Harness.Experiments.table1 $ const ())

let chaos_cmd =
  let engine =
    let doc = "Engine under chaos: aloha, calvin, twopl, or all." in
    Arg.(value & opt string "all" & info [ "engine"; "e" ] ~doc)
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"First schedule seed.")
  in
  let count =
    Arg.(value & opt int 1
         & info [ "count"; "c" ]
             ~doc:"Number of consecutive seeds to run, starting at --seed.")
  in
  let servers =
    Arg.(value & opt int 3 & info [ "servers"; "n" ] ~doc:"Cluster size.")
  in
  let verbose =
    Arg.(value & flag
         & info [ "verbose"; "v" ] ~doc:"Print each schedule's events.")
  in
  let compute =
    let modes =
      Arg.enum
        [ ("ondemand", "ondemand"); ("pool", "pool"); ("planned", "planned") ]
    in
    Arg.(value & opt (some modes) None
         & info [ "compute" ]
             ~doc:"Compute-phase mode for engines that have one (ALOHA: \
                   ondemand, pool, or planned).  Omitted = engine default.")
  in
  let replicas =
    Arg.(value & opt int 1
         & info [ "replicas"; "k" ]
             ~doc:"Replication degree (ALOHA only).  k > 1 switches to \
                   the replication battery schedule: every backend \
                   crashed once per run, staggered, with failover \
                   expected to mask each loss.")
  in
  let fastpath =
    Arg.(value & flag
         & info [ "fastpath" ]
             ~doc:"Enable the coordination-free commit lane (ALOHA only). \
                   The chaos workload is all-commutative, so every \
                   transaction takes it.")
  in
  let run engine seed count servers verbose compute replicas fastpath =
    let names =
      if engine = "all" then List.map fst Chaos.Driver.targets else [ engine ]
    in
    let targets =
      List.map
        (fun name ->
          match Chaos.Driver.target_of_name name with
          | Some t -> (name, t)
          | None ->
              Format.eprintf "unknown engine %s@." name;
              exit 2)
        names
    in
    let failures = ref 0 in
    for s = seed to seed + count - 1 do
      let schedule =
        if replicas > 1 then
          Chaos.Schedule.generate_replicated ~seed:s ~n_servers:servers
        else Chaos.Schedule.generate ~seed:s ~n_servers:servers
      in
      if verbose then Format.printf "%a@." Chaos.Schedule.pp schedule;
      List.iter
        (fun (name, target) ->
          let r =
            Chaos.Driver.run_schedule ?compute ~replicas ~fastpath target
              ~schedule
          in
          let ok = Chaos.Driver.passed r in
          if not ok then incr failures;
          (* One machine-readable line per (engine, seed): the chaos-smoke
             CI job greps these out and archives the failing ones.  The
             drops object carries the categorized Net.Network.drop_stats
             so CI artifacts have full drop accounting without rerunning. *)
          let d = r.Chaos.Driver.drop_detail in
          Format.printf
            "{\"engine\":\"%s\",\"seed\":%d,\"compute\":\"%s\",\
             \"replicas\":%d,\"fastpath\":%b,\"trace_hash\":\"%s\",\
             \"trace_events\":%d,\
             \"committed\":%d,\"submitted\":%d,\
             \"drops\":{\"injected\":%d,\"partitioned\":%d,\"crashed\":%d,\
             \"unregistered\":%d,\"total\":%d},\"ok\":%b}@."
            name s
            (match r.Chaos.Driver.compute with
            | Some m -> m
            | None -> "default")
            r.Chaos.Driver.replicas r.Chaos.Driver.fastpath
            r.Chaos.Driver.trace_hash
            r.Chaos.Driver.trace_events r.Chaos.Driver.committed
            r.Chaos.Driver.submitted d.Net.Network.injected
            d.Net.Network.partitioned d.Net.Network.crashed
            d.Net.Network.unregistered r.Chaos.Driver.drops ok;
          if not ok then
            List.iter
              (fun v -> Format.printf "  violation: %s@." v)
              r.Chaos.Driver.violations)
        targets
    done;
    if !failures > 0 then begin
      Format.eprintf "chaos: %d failing (engine, seed) pairs@." !failures;
      exit 1
    end
  in
  let doc =
    "Run seeded fault-injection schedules (drop/delay/duplicate/reorder, \
     partitions, backend crash+recovery, clock skew) and check the chaos \
     invariants.  A failing schedule is reproduced exactly by rerunning \
     with its seed."
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(const run $ engine $ seed $ count $ servers $ verbose $ compute
          $ replicas $ fastpath)


(* ---- traced runs (trace / stats subcommands) ---------------------------- *)

(* Run one small YCSB point with lifecycle tracing enabled and hand back
   the observability handle alongside the result.  ALOHA is driven
   natively (its cluster type is transparent) so a trickle of read-only
   requests can be injected mid-measurement — the kernel client loop
   exercises only the read-write path, and without those the read_served
   stage would never appear in the trace. *)
let traced_run ~sys_name ~engine ~n ~ci ~sample ~epoch_us ~warmup_us
    ~measure_us ~seed =
  let ctl = Obs.Ctl.create ~sample () in
  let arrival =
    let clients = if sys_name = "aloha" then 400 else 100 in
    Harness.Arrivals.Closed { clients_per_fe = clients }
  in
  match sys_name with
  | "aloha" ->
      let params = Kernel.Params.make ~epoch_us ~obs:ctl ~n_servers:n () in
      let c = Alohadb.Engine.create ~seed params in
      let cfg =
        Workload.Ycsb.cfg_of_contention_index ~keys_per_partition:1_000 ci
      in
      Workload.Ycsb.Workload.register cfg
        ~register:(Alohadb.Engine.register c);
      Workload.Ycsb.Workload.load cfg ~n_servers:n
        ~put:(Alohadb.Engine.load c);
      Alohadb.Engine.start c;
      let g = Workload.Ycsb.generator cfg ~n_partitions:n ~seed in
      let gen ~fe = Workload.Ycsb.gen g ~fe in
      let sim = Alohadb.Engine.sim c in
      let step = max 1 (measure_us / 16) in
      for i = 1 to 12 do
        Sim.Engine.after sim
          (warmup_us + (i * step))
          (fun () ->
            let keys = [ Workload.Ycsb.key ~partition:(i mod n) 0 ] in
            Alohadb.Cluster.submit c ~fe:(i mod n)
              (Alohadb.Txn.Read_only { keys })
              (fun _ -> ()))
      done;
      let result =
        Harness.Driver.run_engine
          (module Alohadb.Engine)
          ~cluster:c ~gen ~arrival ~obs:ctl ~warmup_us ~measure_us ~seed ()
      in
      (result, ctl, Some (Alohadb.Engine.drop_stats c))
  | _ ->
      let built =
        Harness.Setup.ycsb ~engine ~n ~ci ~epoch_us ~obs:ctl ~seed ()
      in
      let result =
        Harness.Driver.run built ~arrival ~obs:ctl ~warmup_us ~measure_us
          ~seed ()
      in
      (result, ctl, None)

let traced_args =
  let engine =
    let doc = "Engine to trace: aloha, calvin, or twopl." in
    Cmdliner.Arg.(
      value
      & opt (enum
               (List.map
                  (fun (name, e) -> (name, (name, e)))
                  Harness.Setup.engines))
          ("aloha", List.assoc "aloha" Harness.Setup.engines)
      & info [ "engine"; "e" ] ~doc)
  in
  let servers =
    Arg.(value & opt int 4 & info [ "servers"; "n" ] ~doc:"Cluster size.")
  in
  let ci =
    Arg.(value & opt float 0.01
         & info [ "ci" ] ~doc:"YCSB contention index (1/hot-keys).")
  in
  let sample =
    Arg.(value & opt int 1
         & info [ "sample" ]
             ~doc:"Trace 1-in-N transactions (1 = trace everything).")
  in
  let epoch_ms =
    Arg.(value & opt int 10
         & info [ "epoch-ms" ] ~doc:"Epoch / sequencer batch duration.")
  in
  let warmup_ms =
    Arg.(value & opt int 30 & info [ "warmup-ms" ] ~doc:"Warm-up window.")
  in
  let measure_ms =
    Arg.(value & opt int 60 & info [ "measure-ms" ] ~doc:"Measured window.")
  in
  let seed = Arg.(value & opt int 17 & info [ "seed" ] ~doc:"Workload seed.") in
  (engine, servers, ci, sample, epoch_ms, warmup_ms, measure_ms, seed)

let trace_cmd =
  let engine, servers, ci, sample, epoch_ms, warmup_ms, measure_ms, seed =
    traced_args
  in
  let out =
    Arg.(value & opt string "TRACE.json"
         & info [ "out"; "o" ]
             ~doc:"Output path for the Chrome trace_events JSON.")
  in
  let telemetry =
    Arg.(value & opt string ""
         & info [ "telemetry" ]
             ~doc:"Also write a TELEMETRY.json run summary to this path.")
  in
  let run (sys_name, engine) n ci sample epoch_ms warmup_ms measure_ms seed
      out telemetry =
    let result, ctl, drops =
      traced_run ~sys_name ~engine ~n ~ci ~sample ~epoch_us:(epoch_ms * 1000)
        ~warmup_us:(warmup_ms * 1000) ~measure_us:(measure_ms * 1000) ~seed
    in
    Obs.Export.write_chrome_trace ~path:out ~engine:sys_name
      ?ledger:(Obs.Ctl.ledger ctl)
      ~trace:(Obs.Ctl.trace ctl)
      ~gauges:(Some (Obs.Ctl.gauges ctl))
      ();
    if telemetry <> "" then
      Harness.Report.write_telemetry ~path:telemetry ~engine:sys_name
        ~workload:"ycsb" ~result ?drops ~ctl ();
    let tr = Obs.Ctl.trace ctl in
    Format.printf
      "wrote %s: %d events in ring (%d emitted, %d dropped, sampling 1/%d), \
       %d committed@."
      out (Obs.Trace.length tr) (Obs.Trace.total tr) (Obs.Trace.dropped tr)
      sample result.Harness.Driver.committed
  in
  let doc =
    "Run a small traced YCSB experiment and export a Chrome trace_events      JSON file (load it in chrome://tracing or ui.perfetto.dev)."
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ engine $ servers $ ci $ sample $ epoch_ms $ warmup_ms
          $ measure_ms $ seed $ out $ telemetry)

let stats_cmd =
  let engine, servers, ci, sample, epoch_ms, warmup_ms, measure_ms, seed =
    traced_args
  in
  let run (sys_name, engine) n ci sample epoch_ms warmup_ms measure_ms seed =
    let result, ctl, _ =
      traced_run ~sys_name ~engine ~n ~ci ~sample ~epoch_us:(epoch_ms * 1000)
        ~warmup_us:(warmup_ms * 1000) ~measure_us:(measure_ms * 1000) ~seed
    in
    Format.printf "%a@." Harness.Driver.pp_result result;
    List.iter
      (fun (stage, (st : Kernel.Result.stage_stat)) ->
        Format.printf
          "  %-22s mean %8.2f ms  p50 %6.2f  p95 %6.2f  p99 %6.2f  p999 %6.2f ms@."
          stage
          (st.Kernel.Result.mean_us /. 1000.0)
          (float_of_int st.p50_us /. 1000.0)
          (float_of_int st.p95_us /. 1000.0)
          (float_of_int st.p99_us /. 1000.0)
          (float_of_int st.p999_us /. 1000.0))
      result.Harness.Driver.stage_stats;
    let tr = Obs.Ctl.trace ctl in
    let rollup = Obs.Export.epoch_rollup tr in
    if rollup <> [] then Format.printf "%a@." Obs.Export.pp_rollup rollup;
    let series = Obs.Gauges.series (Obs.Ctl.gauges ctl) in
    if series <> [] then begin
      Format.printf "gauges (samples / last / max):@.";
      List.iter
        (fun (name, samples) ->
          let n = List.length samples in
          let last =
            match List.rev samples with [] -> 0.0 | (_, v) :: _ -> v
          in
          let hi =
            List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 samples
          in
          Format.printf "  %-28s %5d  %12.1f  %12.1f@." name n last hi)
        series
    end;
    Format.printf "trace: %d events (%d emitted, %d dropped), faults: %d drops / %d \
       delays@."
      (Obs.Trace.length tr) (Obs.Trace.total tr) (Obs.Trace.dropped tr)
      (Obs.Ctl.fault_drops ctl) (Obs.Ctl.fault_delays ctl)
  in
  let doc =
    "Run a small traced YCSB experiment and print its per-epoch rollup,      stage tail latencies and gauge summaries."
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(const run $ engine $ servers $ ci $ sample $ epoch_ms $ warmup_ms
          $ measure_ms $ seed)

(* ---- epoch-ledger timeline / doctor ------------------------------------- *)

let pp_incident (i : Obs.Analyze.incident) =
  let phase label a b =
    if a >= 0 && b >= a then Printf.sprintf " %s %d us" label (b - a) else ""
  in
  Format.printf
    "  incident: partition %d, node %d -> node %d%s%s%s%s@."
    i.Obs.Analyze.i_partition i.Obs.Analyze.crashed_node
    i.Obs.Analyze.promoted_node
    (phase "detect" i.Obs.Analyze.crash_us i.Obs.Analyze.detect_us)
    (phase "promote" i.Obs.Analyze.detect_us i.Obs.Analyze.promote_us)
    (phase "first-commit" i.Obs.Analyze.promote_us
       i.Obs.Analyze.first_commit_us)
    (if Obs.Analyze.resolved i then "" else " UNRESOLVED")

let pp_segment idx (s : Obs.Analyze.segment) =
  Format.printf
    "segment %d: cfg epoch %d us, %d nodes, k=%d, %d epoch rows, %d events@."
    idx s.Obs.Analyze.cfg_epoch_us s.Obs.Analyze.nodes s.Obs.Analyze.replicas
    (List.length s.Obs.Analyze.rows)
    (List.length s.Obs.Analyze.events);
  List.iter pp_incident (Obs.Analyze.incidents s);
  List.iter
    (fun (a : Obs.Analyze.anomaly) ->
      Format.printf "  anomaly[%s]: %s@." a.Obs.Analyze.a_kind
        a.Obs.Analyze.a_detail)
    (Obs.Analyze.anomalies s)

let timeline_cmd =
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Chaos schedule seed.")
  in
  let servers =
    Arg.(value & opt int 3 & info [ "servers"; "n" ] ~doc:"Cluster size.")
  in
  let replicas =
    Arg.(value & opt int 2
         & info [ "replicas"; "k" ]
             ~doc:"Replication degree for the recorded chaos run (k > 1 \
                   crashes every backend once, so the timeline holds \
                   failover incidents).")
  in
  let out =
    Arg.(value & opt string "TIMELINE.jsonl"
         & info [ "out"; "o" ]
             ~doc:"Timeline output path (appended, one segment per run).")
  in
  let inspect =
    Arg.(value & opt (some string) None
         & info [ "inspect" ] ~docv:"FILE"
             ~doc:"Do not run anything; summarize an existing timeline \
                   file instead.")
  in
  let run seed servers replicas out inspect =
    match inspect with
    | Some path ->
        let segs = Obs.Analyze.load path in
        Format.printf "%s: %d segment(s)@." path (List.length segs);
        List.iteri pp_segment segs
    | None ->
        let target =
          match Chaos.Driver.target_of_name "aloha" with
          | Some t -> t
          | None -> assert false
        in
        let ledger = Obs.Ledger.create () in
        let obs = Obs.Ctl.create ~ledger () in
        let r =
          Chaos.Driver.run_seed ~replicas ~obs target ~seed
            ~n_servers:servers
        in
        Harness.Report.write_timeline out r.Chaos.Driver.timeline;
        Format.printf
          "appended %d lines to %s (seed %d, k=%d, committed %d/%d)@."
          (List.length r.Chaos.Driver.timeline)
          out seed r.Chaos.Driver.replicas r.Chaos.Driver.committed
          r.Chaos.Driver.submitted;
        List.iteri pp_segment
          (Obs.Analyze.parse_lines r.Chaos.Driver.timeline);
        if not (Chaos.Driver.passed r) then begin
          List.iter
            (fun v -> Format.eprintf "  violation: %s@." v)
            r.Chaos.Driver.violations;
          exit 1
        end
  in
  let doc =
    "Record an epoch-ledger timeline: run one replicated chaos schedule \
     with the ledger attached, append the segment to TIMELINE.jsonl, and \
     print the reconstructed failover incidents.  --inspect summarizes an \
     existing file instead."
  in
  Cmd.v (Cmd.info "timeline" ~doc)
    Term.(const run $ seed $ servers $ replicas $ out $ inspect)

let doctor_cmd =
  let file =
    Arg.(value & pos 0 string "TIMELINE.jsonl"
         & info [] ~docv:"FILE" ~doc:"Timeline file to check.")
  in
  let report =
    Arg.(value & opt string ""
         & info [ "report" ]
             ~doc:"Also write the reconstructed incidents (JSON) to this \
                   path.")
  in
  let run file report_path =
    let segs =
      try Obs.Analyze.load file with
      | Sys_error m ->
          Format.eprintf "doctor: %s@." m;
          exit 2
      | Failure m ->
          Format.eprintf "doctor: %s: %s@." file m;
          exit 2
    in
    if segs = [] then begin
      Format.eprintf "doctor: %s holds no timeline segments@." file;
      exit 2
    end;
    let violations = List.concat_map Obs.Analyze.check segs in
    let incidents = List.concat_map Obs.Analyze.incidents segs in
    let anomalies = List.concat_map Obs.Analyze.anomalies segs in
    Format.printf
      "%s: %d segment(s), %d incident(s), %d anomaly(ies), %d violation(s)@."
      file (List.length segs) (List.length incidents) (List.length anomalies)
      (List.length violations);
    List.iteri pp_segment segs;
    if report_path <> "" then begin
      let oc = open_out report_path in
      Printf.fprintf oc "{\"file\":%S,\"incidents\":[%s],\"violations\":%d}\n"
        file
        (String.concat "," (List.map Obs.Analyze.incident_json incidents))
        (List.length violations);
      close_out oc
    end;
    if violations <> [] then begin
      List.iter (fun v -> Format.eprintf "  violation: %s@." v) violations;
      exit 1
    end
  in
  let doc =
    "Check a TIMELINE.jsonl against the ledger invariants (contiguous \
     closed epochs, monotone watermarks modulo crashes, crashes answered \
     by restart or promotion, incidents resolved) and exit nonzero on any \
     violation."
  in
  Cmd.v (Cmd.info "doctor" ~doc) Term.(const run $ file $ report)

let () =
  let doc =
    "ALOHA-DB: scalable transaction processing using functors (ICDCS'18 \
     reproduction)"
  in
  let info = Cmd.info "alohadb_cli" ~doc in
  exit (Cmd.eval (Cmd.group info
       [ run_cmd; figure_cmd; table1_cmd; chaos_cmd; trace_cmd; stats_cmd;
         timeline_cmd; doctor_cmd ]))
