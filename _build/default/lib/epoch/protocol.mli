(** Wire messages of the epoch-management control plane (§II, §III-B).

    The epoch manager (EM) and the frontends exchange one-way messages on
    a dedicated control network: grants open a write epoch with a validity
    window, revokes close it, and acks confirm that a frontend has drained
    its in-flight transactions.  [Grant] for epoch [e] doubles as the
    "epoch [e - 1] is closed" announcement, which is what makes writes of
    the previous epoch visible and releases buffered functor metadata to
    the processors. *)

type msg =
  | Grant of {
      epoch : int;
      lo : int;  (** validity start (local-clock µs) *)
      hi : int;  (** validity finish *)
      next_duration : int;
          (** planned duration of the epoch after this one — the bound the
              straggler optimisation needs (§III-C) *)
    }
  | Revoke of { epoch : int }
  | Revoke_ack of { epoch : int }

val pp : Format.formatter -> msg -> unit

type rpc = (msg, unit) Net.Rpc.t
(** Control-plane transport; replies are never used (all one-way). *)
