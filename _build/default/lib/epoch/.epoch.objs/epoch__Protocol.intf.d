lib/epoch/protocol.mli: Format Net
