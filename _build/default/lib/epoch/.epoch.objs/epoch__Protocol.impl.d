lib/epoch/protocol.ml: Format Net
