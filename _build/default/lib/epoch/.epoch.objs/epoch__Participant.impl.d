lib/epoch/participant.ml: Clocksync Hashtbl List Net Protocol Sim
