lib/epoch/manager.mli: Clocksync Net Protocol Sim
