lib/epoch/participant.mli: Clocksync Net Protocol Sim
