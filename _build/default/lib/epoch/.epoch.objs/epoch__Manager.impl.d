lib/epoch/manager.ml: Clocksync List Net Protocol Sim
