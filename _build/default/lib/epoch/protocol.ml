type msg =
  | Grant of { epoch : int; lo : int; hi : int; next_duration : int }
  | Revoke of { epoch : int }
  | Revoke_ack of { epoch : int }

let pp fmt = function
  | Grant { epoch; lo; hi; next_duration } ->
      Format.fprintf fmt "Grant(e=%d, [%d,%d], next=%d)" epoch lo hi
        next_duration
  | Revoke { epoch } -> Format.fprintf fmt "Revoke(e=%d)" epoch
  | Revoke_ack { epoch } -> Format.fprintf fmt "RevokeAck(e=%d)" epoch

type rpc = (msg, unit) Net.Rpc.t
