type window = { epoch : int; lo : int; hi : int; authorized : bool }

type auth_state =
  | Waiting  (** no grant yet (startup) *)
  | Authorized of { epoch : int; lo : int; hi : int; next_duration : int }
  | Revoked of { epoch : int; hi : int; next_duration : int; acked : bool }
      (** authorization for [epoch] revoked; straggler-rule starts may use
          timestamps in (hi, hi + next_duration] *)

type t = {
  rpc : Protocol.rpc;
  addr : Net.Address.t;
  em : Net.Address.t;
  clock : Clocksync.Node_clock.t;
  straggler_opt : bool;
  metrics : Sim.Metrics.t;
  in_flight : (int, int) Hashtbl.t;  (* epoch -> count *)
  mutable state : auth_state;
  mutable granted : int;  (* latest epoch granted *)
  mutable on_open : epoch:int -> lo:int -> hi:int -> unit;
  mutable on_closed : epoch:int -> unit;
  mutable observers : (unit -> unit) list;
}

let ignore_open ~epoch:_ ~lo:_ ~hi:_ = ()

let ignore_closed ~epoch:_ = ()

let in_flight t ~epoch =
  match Hashtbl.find_opt t.in_flight epoch with Some n -> n | None -> 0

let notify_observers t = List.iter (fun f -> f ()) t.observers

let send_ack t ~epoch =
  Sim.Metrics.incr t.metrics "fe.revoke_acks";
  Net.Rpc.send t.rpc ~src:t.addr ~dst:t.em (Protocol.Revoke_ack { epoch })

(* Ack the revoke as soon as the revoked epoch has no in-flight txns. *)
let maybe_ack t =
  match t.state with
  | Revoked r when (not r.acked) && in_flight t ~epoch:r.epoch = 0 ->
      t.state <- Revoked { r with acked = true };
      send_ack t ~epoch:r.epoch
  | Revoked _ | Authorized _ | Waiting -> ()

let handle_grant t ~epoch ~lo ~hi ~next_duration =
  if epoch > t.granted then begin
    t.granted <- epoch;
    t.state <- Authorized { epoch; lo; hi; next_duration };
    if epoch > 1 then begin
      (* Grant of e doubles as "e - 1 closed". *)
      t.on_closed ~epoch:(epoch - 1);
      Sim.Metrics.incr t.metrics "fe.epochs_closed"
    end;
    t.on_open ~epoch ~lo ~hi;
    notify_observers t
  end

let handle_revoke t ~epoch =
  (match t.state with
  | Authorized a when a.epoch = epoch ->
      t.state <-
        Revoked { epoch; hi = a.hi; next_duration = a.next_duration;
                  acked = false }
  | Authorized _ | Revoked _ | Waiting -> ());
  maybe_ack t;
  notify_observers t

let create ~rpc ~addr ~em ~clock ~straggler_opt ~metrics () =
  let t =
    { rpc; addr; em; clock; straggler_opt; metrics;
      in_flight = Hashtbl.create 8; state = Waiting; granted = 0;
      on_open = ignore_open; on_closed = ignore_closed; observers = [] }
  in
  Net.Rpc.serve_oneway rpc addr (fun ~src:_ msg ->
      match msg with
      | Protocol.Grant { epoch; lo; hi; next_duration } ->
          handle_grant t ~epoch ~lo ~hi ~next_duration
      | Protocol.Revoke { epoch } -> handle_revoke t ~epoch
      | Protocol.Revoke_ack _ -> ());
  t

let set_hooks t ~on_open ~on_closed =
  t.on_open <- on_open;
  t.on_closed <- on_closed

let window t =
  match t.state with
  | Waiting -> None
  | Authorized { epoch; lo; hi; _ } ->
      (* A server may start a transaction only while its local clock is
         within the validity period (§II). *)
      let now = Clocksync.Node_clock.now t.clock in
      if now > hi then None else Some { epoch; lo; hi; authorized = true }
  | Revoked { epoch; hi; next_duration; _ } ->
      if not t.straggler_opt then None
      else
        (* §III-C: timestamps of unauthorized starts must not exceed the
           previous finish plus the next epoch's duration. *)
        Some
          { epoch = epoch + 1; lo = hi + 1; hi = hi + next_duration;
            authorized = false }

let txn_started t ~epoch =
  Hashtbl.replace t.in_flight epoch (in_flight t ~epoch + 1)

let txn_finished t ~epoch =
  let n = in_flight t ~epoch in
  if n <= 0 then invalid_arg "Participant.txn_finished: not in flight";
  if n = 1 then Hashtbl.remove t.in_flight epoch
  else Hashtbl.replace t.in_flight epoch (n - 1);
  maybe_ack t

let current_epoch t = t.granted

let on_state_change t f = t.observers <- f :: t.observers
