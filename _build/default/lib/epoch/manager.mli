(** The epoch manager (EM).

    Controls epoch changes by granting and revoking authorizations at all
    frontends.  One EM serves the whole cluster (it shares a host with a
    server in the paper's deployment; here it is a separate simulated
    process whose address the cluster assigns).

    Lifecycle per epoch [e]:
    + grant authorization [(e, \[lo, hi\])] to every FE;
    + at (EM-clock) time [hi], send [Revoke e];
    + collect [Revoke_ack e] from every FE — each FE acks once its
      in-flight epoch-[e] transactions drained;
    + immediately grant epoch [e + 1], whose [Grant] message doubles as
      the "epoch [e] closed" announcement.

    The gap between steps 2 and 4 is the {e epoch switch time}, tracked in
    metrics as [em.switch_us]. *)

type config = {
  duration_us : int;  (** validity-window length (the paper's 25 ms) *)
  lead_us : int;
      (** how far in the future the first window opens (covers grant
          propagation) *)
}

val default_config : config

type t

val create :
  rpc:Protocol.rpc ->
  addr:Net.Address.t ->
  fes:Net.Address.t list ->
  clock:Clocksync.Node_clock.t ->
  config:config ->
  metrics:Sim.Metrics.t ->
  unit -> t

val start : t -> unit
(** Grant the first epoch.  Runs forever (until the simulation stops). *)

val current_epoch : t -> int

val epochs_closed : t -> int
