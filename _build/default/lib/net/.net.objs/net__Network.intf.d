lib/net/network.mli: Address Latency Sim
