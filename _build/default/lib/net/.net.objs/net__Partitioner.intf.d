lib/net/partitioner.mli:
