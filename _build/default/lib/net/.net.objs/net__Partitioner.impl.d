lib/net/partitioner.ml: Char String
