lib/net/address.ml: Format Int Map Set
