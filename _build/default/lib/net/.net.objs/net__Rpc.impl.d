lib/net/rpc.ml: Address Hashtbl Network
