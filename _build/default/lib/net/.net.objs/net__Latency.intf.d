lib/net/latency.mli: Sim
