lib/net/latency.ml: Sim
