lib/net/network.ml: Address Hashtbl Latency Sim
