lib/net/rpc.mli: Address Latency Sim
