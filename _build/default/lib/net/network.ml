type 'msg t = {
  engine : Sim.Engine.t;
  rng : Sim.Rng.t;
  latency : Latency.t;
  fifo : bool;
  handlers : (Address.t, src:Address.t -> 'msg -> unit) Hashtbl.t;
  (* Per-(src,dst) link clock: earliest time the next FIFO message on the
     link may be delivered. *)
  link_clock : (int * int, int) Hashtbl.t;
  mutable sent : int;
  mutable dropped : int;
  mutable trace : (src:Address.t -> dst:Address.t -> 'msg -> unit) option;
}

let create engine rng ~latency ?(fifo = true) () =
  { engine; rng; latency; fifo;
    handlers = Hashtbl.create 64;
    link_clock = Hashtbl.create 256;
    sent = 0; dropped = 0; trace = None }

let engine t = t.engine

let register t addr handler = Hashtbl.replace t.handlers addr handler

let unregister t addr = Hashtbl.remove t.handlers addr

let set_trace t f = t.trace <- Some f

let send t ~src ~dst msg =
  t.sent <- t.sent + 1;
  (match t.trace with Some f -> f ~src ~dst msg | None -> ());
  let lat =
    if Address.equal src dst then Latency.local_delivery
    else Latency.sample t.latency t.rng
  in
  let now = Sim.Engine.now t.engine in
  let deliver_at =
    let earliest = now + lat in
    if t.fifo then begin
      let link = (Address.to_int src, Address.to_int dst) in
      let clock =
        match Hashtbl.find_opt t.link_clock link with
        | Some c -> c
        | None -> 0
      in
      let at = if earliest > clock then earliest else clock + 1 in
      Hashtbl.replace t.link_clock link at;
      at
    end
    else earliest
  in
  Sim.Engine.schedule t.engine ~at:deliver_at (fun () ->
      match Hashtbl.find_opt t.handlers dst with
      | Some handler -> handler ~src msg
      | None -> t.dropped <- t.dropped + 1)

let messages_sent t = t.sent

let messages_dropped t = t.dropped
