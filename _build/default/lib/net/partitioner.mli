(** Hash partitioning of string keys across a fixed set of partitions.

    Both systems under study hash-partition the keyspace (ALOHA-DB §III-D:
    "key-functor pairs in a hash-partitioned distributed table"). Workloads
    that need *directed* placement (e.g. TPC-C partition-by-warehouse)
    instead use {!by_prefix_int}, which routes on an integer embedded in the
    key by the workload's key codec. *)

type t

val hash : partitions:int -> t
(** FNV-1a hash of the whole key, modulo partition count. *)

val by_prefix_int : partitions:int -> t
(** Route on the decimal integer following the first ':' in the key (e.g.
    ["w:3:ytd"] goes to partition [3 mod partitions]).  Falls back to the
    FNV hash when the key has no such prefix. *)

val partitions : t -> int

val partition_of : t -> string -> int
(** Partition index in [0, partitions). *)

val fnv1a : string -> int
(** The raw (non-negative) FNV-1a hash, exposed for storage sharding. *)
