(** Simulated point-to-point message network.

    Delivery is asynchronous with latency drawn from a {!Latency.t} model.
    Ordering guarantee: none between distinct sends (like UDP/parallel TCP
    streams); protocols that need ordering must build it themselves — as the
    real systems do.  A per-link option enforces FIFO ordering when a
    protocol layer wants TCP-like semantics.

    Delivery to an unregistered address counts as a drop (recorded), which
    failure-injection tests exploit. *)

type 'msg t

val create :
  Sim.Engine.t -> Sim.Rng.t -> latency:Latency.t -> ?fifo:bool -> unit ->
  'msg t
(** [fifo] (default [true]) delivers messages on each (src, dst) link in
    send order, modelling a TCP connection per link. *)

val engine : _ t -> Sim.Engine.t

val register : 'msg t -> Address.t -> (src:Address.t -> 'msg -> unit) -> unit
(** Install the handler that receives messages addressed to the node.
    Re-registering replaces the handler. *)

val unregister : 'msg t -> Address.t -> unit
(** Remove the handler; subsequent messages to this address are dropped
    (models a crashed node). *)

val send : 'msg t -> src:Address.t -> dst:Address.t -> 'msg -> unit
(** Queue a message for delivery after a sampled latency.  Self-sends are
    delivered with loopback latency. *)

val messages_sent : _ t -> int
val messages_dropped : _ t -> int

val set_trace : 'msg t -> (src:Address.t -> dst:Address.t -> 'msg -> unit) -> unit
(** Observe every send (for tests and debugging). *)
