type scheme = Hash | By_prefix_int

type t = { scheme : scheme; partitions : int }

let check_partitions n =
  if n <= 0 then invalid_arg "Partitioner: partitions must be positive"

let hash ~partitions =
  check_partitions partitions;
  { scheme = Hash; partitions }

let by_prefix_int ~partitions =
  check_partitions partitions;
  { scheme = By_prefix_int; partitions }

let partitions t = t.partitions

let fnv1a s =
  (* 64-bit FNV-1a constants, truncated to OCaml's 63-bit native int; the
     final mask keeps the result non-negative. *)
  let offset_basis = 0x4bf29ce484222325 in
  let prime = 0x100000001b3 in
  let h = ref offset_basis in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * prime)
    s;
  !h land max_int

(* Parse the decimal run following the first ':'.  Returns [None] when the
   key has no such prefix (then we fall back to hashing). *)
let prefix_int key =
  match String.index_opt key ':' with
  | None -> None
  | Some i ->
      let n = String.length key in
      let rec scan j acc any =
        if j >= n then if any then Some acc else None
        else
          match key.[j] with
          | '0' .. '9' as c ->
              scan (j + 1) ((acc * 10) + (Char.code c - Char.code '0')) true
          | _ -> if any then Some acc else None
      in
      scan (i + 1) 0 false

let partition_of t key =
  match t.scheme with
  | Hash -> fnv1a key mod t.partitions
  | By_prefix_int -> (
      match prefix_int key with
      | Some v -> v mod t.partitions
      | None -> fnv1a key mod t.partitions)
