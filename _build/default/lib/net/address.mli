(** Node addresses in the simulated cluster.

    A node is identified by a small non-negative integer.  Server nodes,
    the epoch manager, and client nodes all share the address space. *)

type t = private int

val of_int : int -> t
(** Raises [Invalid_argument] on negative ids. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
