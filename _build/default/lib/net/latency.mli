(** One-way network latency models.

    ALOHA-DB targets a private data-centre network (§III-A): low base
    latency with modest jitter.  The models here let experiments dial in
    base latency, jitter, and anomalies (delay spikes for straggler and
    fault-injection tests). *)

type t

val constant : int -> t
(** Always the given number of microseconds. *)

val uniform : base:int -> jitter:int -> t
(** [base + U(0, jitter)] microseconds. *)

val exponential_tail : base:int -> mean_tail:float -> t
(** [base + Exp(mean_tail)]: a shifted exponential, a common fit for
    intra-DC RTT distributions. *)

val spiky : normal:t -> spike:t -> spike_probability:float -> t
(** With probability [spike_probability] draw from [spike], otherwise from
    [normal].  Used for fault-injection experiments. *)

val sample : t -> Sim.Rng.t -> int
(** A one-way latency in microseconds (>= 0). *)

val local_delivery : int
(** Latency used when a node sends a message to itself (loopback):
    essentially free but non-zero to preserve event ordering. *)
