type t =
  | Constant of int
  | Uniform of { base : int; jitter : int }
  | Exponential_tail of { base : int; mean_tail : float }
  | Spiky of { normal : t; spike : t; spike_probability : float }

let constant us =
  if us < 0 then invalid_arg "Latency.constant: negative";
  Constant us

let uniform ~base ~jitter =
  if base < 0 || jitter < 0 then invalid_arg "Latency.uniform: negative";
  Uniform { base; jitter }

let exponential_tail ~base ~mean_tail =
  if base < 0 || mean_tail < 0.0 then
    invalid_arg "Latency.exponential_tail: negative";
  Exponential_tail { base; mean_tail }

let spiky ~normal ~spike ~spike_probability =
  if spike_probability < 0.0 || spike_probability > 1.0 then
    invalid_arg "Latency.spiky: probability out of range";
  Spiky { normal; spike; spike_probability }

let rec sample t rng =
  match t with
  | Constant us -> us
  | Uniform { base; jitter } ->
      if jitter = 0 then base else base + Sim.Rng.int rng (jitter + 1)
  | Exponential_tail { base; mean_tail } ->
      base + int_of_float (Sim.Rng.exponential rng ~mean:mean_tail)
  | Spiky { normal; spike; spike_probability } ->
      if Sim.Rng.bernoulli rng spike_probability then sample spike rng
      else sample normal rng

let local_delivery = 1
