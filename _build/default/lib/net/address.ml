type t = int

let of_int i =
  if i < 0 then invalid_arg "Address.of_int: negative id";
  i

let to_int t = t
let equal = Int.equal
let compare = Int.compare
let hash t = t
let pp fmt t = Format.fprintf fmt "node-%d" t

module Map = Map.Make (Int)
module Set = Set.Make (Int)
