(** Cluster + workload construction for the paper's experiments.

    Each function builds a loaded, started cluster of [n] servers and
    returns it with a per-FE request generator, ready for
    {!Driver.run_aloha} / {!Driver.run_calvin}. *)

type aloha = {
  a_cluster : Alohadb.Cluster.t;
  a_gen : fe:int -> Alohadb.Txn.request;
}

type calvin = {
  c_cluster : Calvin.Cluster.t;
  c_gen : fe:int -> Calvin.Ctxn.t;
}

val aloha_tpcc :
  n:int -> warehouses_per_host:int -> kind:[ `NewOrder | `Payment ] ->
  ?epoch_us:int -> ?config:Alohadb.Config.t -> ?seed:int -> unit -> aloha

val calvin_tpcc :
  n:int -> warehouses_per_host:int -> kind:[ `NewOrder | `Payment ] ->
  ?epoch_us:int -> ?seed:int -> unit -> calvin

val aloha_stpcc :
  n:int -> districts_per_host:int -> ?epoch_us:int ->
  ?config:Alohadb.Config.t -> ?seed:int -> unit -> aloha

val calvin_stpcc :
  n:int -> districts_per_host:int -> ?epoch_us:int -> ?seed:int -> unit ->
  calvin

val aloha_ycsb :
  n:int -> ci:float -> ?keys_per_partition:int -> ?epoch_us:int ->
  ?config:Alohadb.Config.t -> ?seed:int -> unit -> aloha

val calvin_ycsb :
  n:int -> ci:float -> ?keys_per_partition:int -> ?epoch_us:int ->
  ?seed:int -> unit -> calvin
