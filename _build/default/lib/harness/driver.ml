type result = {
  committed : int;
  aborted_install : int;
  aborted_compute : int;
  throughput_tps : float;
  lat_mean_us : float;
  lat_p50_us : int;
  lat_p95_us : int;
  lat_p99_us : int;
  stages : (string * float) list;
}

let pp_result fmt r =
  Format.fprintf fmt
    "%.0f txn/s (n=%d, aborts=%d/%d), lat mean=%.2f ms p50=%.2f p95=%.2f p99=%.2f"
    r.throughput_tps r.committed r.aborted_install r.aborted_compute
    (r.lat_mean_us /. 1000.0)
    (float_of_int r.lat_p50_us /. 1000.0)
    (float_of_int r.lat_p95_us /. 1000.0)
    (float_of_int r.lat_p99_us /. 1000.0)

let hist_stats metrics name =
  match Sim.Metrics.latency metrics name with
  | None -> (0.0, 0, 0, 0)
  | Some h ->
      if Sim.Stats.Histogram.count h = 0 then (0.0, 0, 0, 0)
      else
        ( Sim.Stats.Histogram.mean h,
          Sim.Stats.Histogram.percentile h 50.0,
          Sim.Stats.Histogram.percentile h 95.0,
          Sim.Stats.Histogram.percentile h 99.0 )

let stage_mean metrics name =
  match Sim.Metrics.latency metrics name with
  | None -> 0.0
  | Some h -> Sim.Stats.Histogram.mean h

let extract ~metrics ~measure_us ~committed_key ~latency_key ~aborts ~stages =
  let committed = Sim.Metrics.get metrics committed_key in
  let aborted_install, aborted_compute = aborts in
  let mean, p50, p95, p99 = hist_stats metrics latency_key in
  { committed;
    aborted_install = Sim.Metrics.get metrics aborted_install;
    aborted_compute = Sim.Metrics.get metrics aborted_compute;
    throughput_tps = float_of_int committed *. 1e6 /. float_of_int measure_us;
    lat_mean_us = mean;
    lat_p50_us = p50;
    lat_p95_us = p95;
    lat_p99_us = p99;
    stages =
      List.map (fun (label, key) -> (label, stage_mean metrics key)) stages }

let run_window ~sim ~metrics ~warmup_us ~measure_us =
  Sim.Engine.run ~until:(Sim.Engine.now sim + warmup_us) sim;
  Sim.Metrics.reset metrics;
  Sim.Engine.run ~until:(Sim.Engine.now sim + measure_us) sim

let run_aloha ~cluster ~gen ~arrival ?(warmup_us = 150_000)
    ?(measure_us = 400_000) ?(seed = 7) () =
  let sim = Alohadb.Cluster.sim cluster in
  let metrics = Alohadb.Cluster.metrics cluster in
  let rng = Sim.Rng.create seed in
  Arrivals.install ~sim ~rng ~n_fes:(Alohadb.Cluster.n_servers cluster)
    ~arrival ~submit:(fun ~fe ~done_k ->
      Alohadb.Cluster.submit cluster ~fe (gen ~fe) (fun _ -> done_k ()));
  run_window ~sim ~metrics ~warmup_us ~measure_us;
  extract ~metrics ~measure_us ~committed_key:"aloha.committed"
    ~latency_key:"aloha.lat_total_us"
    ~aborts:("aloha.aborted_install", "aloha.aborted_compute")
    ~stages:
      [ ("functor installing", "aloha.lat_install_us");
        ("wait for processing", "aloha.lat_wait_us");
        ("processing", "aloha.lat_proc_us") ]

let run_calvin ~cluster ~gen ~arrival ?(warmup_us = 150_000)
    ?(measure_us = 400_000) ?(seed = 7) () =
  let sim = Calvin.Cluster.sim cluster in
  let metrics = Calvin.Cluster.metrics cluster in
  let rng = Sim.Rng.create seed in
  Arrivals.install ~sim ~rng ~n_fes:(Calvin.Cluster.n_servers cluster)
    ~arrival ~submit:(fun ~fe ~done_k ->
      Calvin.Cluster.submit cluster ~fe (gen ~fe) ~k:done_k);
  run_window ~sim ~metrics ~warmup_us ~measure_us;
  extract ~metrics ~measure_us ~committed_key:"calvin.committed"
    ~latency_key:"calvin.lat_total_us"
    ~aborts:("calvin.aborted_install", "calvin.aborted_compute")
    ~stages:
      [ ("sequencing", "calvin.stage_seq_us");
        ("locking and read", "calvin.stage_lockread_us");
        ("processing", "calvin.stage_proc_us") ]
