lib/harness/driver.ml: Alohadb Arrivals Calvin Format List Sim
