lib/harness/experiments.ml: Alohadb Arrivals Driver Epoch Functor_cc List Printf Setup Sim String Twopl Workload
