lib/harness/driver.mli: Alohadb Arrivals Calvin Format
