lib/harness/experiments.mli:
