lib/harness/setup.mli: Alohadb Calvin
