lib/harness/arrivals.ml: Float Sim
