lib/harness/setup.ml: Alohadb Calvin Epoch Functor_cc Workload
