lib/harness/arrivals.mli: Sim
