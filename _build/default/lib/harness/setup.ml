type aloha = {
  a_cluster : Alohadb.Cluster.t;
  a_gen : fe:int -> Alohadb.Txn.request;
}

type calvin = {
  c_cluster : Calvin.Cluster.t;
  c_gen : fe:int -> Calvin.Ctxn.t;
}

let aloha_options ~n ~epoch_us ~config =
  let base = Alohadb.Cluster.default_options in
  { base with
    Alohadb.Cluster.n_servers = n;
    partitioner = `Prefix;
    config =
      (match config with Some c -> c | None -> base.Alohadb.Cluster.config);
    epoch =
      (match epoch_us with
      | Some duration_us ->
          { base.Alohadb.Cluster.epoch with Epoch.Manager.duration_us }
      | None -> base.Alohadb.Cluster.epoch) }

let calvin_options ~n ~epoch_us =
  let base = Calvin.Cluster.default_options in
  let config =
    match epoch_us with
    | Some e -> { Calvin.Config.default with Calvin.Config.epoch_us = e }
    | None -> Calvin.Config.default
  in
  { base with Calvin.Cluster.n_servers = n; partitioner = `Prefix; config }

let aloha_tpcc ~n ~warehouses_per_host ~kind ?epoch_us ?config ?(seed = 17)
    () =
  let cfg = Workload.Tpcc.default_cfg ~n_servers:n ~warehouses_per_host in
  let registry = Functor_cc.Registry.with_builtins () in
  Workload.Tpcc.register_aloha registry;
  let c =
    Alohadb.Cluster.create ~registry (aloha_options ~n ~epoch_us ~config)
  in
  Workload.Tpcc.load_aloha cfg c;
  Alohadb.Cluster.start c;
  let gen = Workload.Tpcc.generator cfg ~n_servers:n ~seed in
  let a_gen ~fe =
    match kind with
    | `NewOrder -> Workload.Tpcc.gen_neworder_aloha gen ~fe
    | `Payment -> Workload.Tpcc.gen_payment_aloha gen ~fe
  in
  { a_cluster = c; a_gen }

let calvin_tpcc ~n ~warehouses_per_host ~kind ?epoch_us ?(seed = 17) () =
  let cfg = Workload.Tpcc.default_cfg ~n_servers:n ~warehouses_per_host in
  let registry = Calvin.Ctxn.with_builtins () in
  Workload.Tpcc.register_calvin registry;
  let c = Calvin.Cluster.create ~registry (calvin_options ~n ~epoch_us) in
  Workload.Tpcc.load_calvin cfg c;
  Calvin.Cluster.start c;
  let gen = Workload.Tpcc.generator cfg ~n_servers:n ~seed in
  let c_gen ~fe =
    match kind with
    | `NewOrder -> Workload.Tpcc.gen_neworder_calvin gen ~fe
    | `Payment -> Workload.Tpcc.gen_payment_calvin gen ~fe
  in
  { c_cluster = c; c_gen }

let aloha_stpcc ~n ~districts_per_host ?epoch_us ?config ?(seed = 17) () =
  let cfg = Workload.Scaled_tpcc.default_cfg ~n_servers:n ~districts_per_host in
  let registry = Functor_cc.Registry.with_builtins () in
  Workload.Scaled_tpcc.register_aloha registry;
  let c =
    Alohadb.Cluster.create ~registry (aloha_options ~n ~epoch_us ~config)
  in
  Workload.Scaled_tpcc.load_aloha cfg c;
  Alohadb.Cluster.start c;
  let gen = Workload.Scaled_tpcc.generator cfg ~seed in
  let a_gen ~fe:_ = Workload.Scaled_tpcc.gen_neworder_aloha gen in
  { a_cluster = c; a_gen }

let calvin_stpcc ~n ~districts_per_host ?epoch_us ?(seed = 17) () =
  let cfg = Workload.Scaled_tpcc.default_cfg ~n_servers:n ~districts_per_host in
  let registry = Calvin.Ctxn.with_builtins () in
  Workload.Scaled_tpcc.register_calvin registry;
  let c = Calvin.Cluster.create ~registry (calvin_options ~n ~epoch_us) in
  Workload.Scaled_tpcc.load_calvin cfg c;
  Calvin.Cluster.start c;
  let gen = Workload.Scaled_tpcc.generator cfg ~seed in
  let c_gen ~fe:_ = Workload.Scaled_tpcc.gen_neworder_calvin gen in
  { c_cluster = c; c_gen }

let aloha_ycsb ~n ~ci ?(keys_per_partition = 50_000) ?epoch_us ?config
    ?(seed = 17) () =
  let cfg = Workload.Ycsb.cfg_of_contention_index ~keys_per_partition ci in
  let c = Alohadb.Cluster.create (aloha_options ~n ~epoch_us ~config) in
  Workload.Ycsb.load_aloha cfg c;
  Alohadb.Cluster.start c;
  let gen = Workload.Ycsb.generator cfg ~n_partitions:n ~seed in
  { a_cluster = c; a_gen = (fun ~fe -> Workload.Ycsb.gen_aloha gen ~fe) }

let calvin_ycsb ~n ~ci ?(keys_per_partition = 50_000) ?epoch_us ?(seed = 17)
    () =
  let cfg = Workload.Ycsb.cfg_of_contention_index ~keys_per_partition ci in
  let c = Calvin.Cluster.create (calvin_options ~n ~epoch_us) in
  Workload.Ycsb.load_calvin cfg c;
  Calvin.Cluster.start c;
  let gen = Workload.Ycsb.generator cfg ~n_partitions:n ~seed in
  { c_cluster = c; c_gen = (fun ~fe -> Workload.Ycsb.gen_calvin gen ~fe) }
