(** Experiment driver: wire a workload generator to a cluster, run a
    warm-up window, reset the metrics, run a measurement window, and
    extract a {!result}.

    Throughput is committed transactions per measured second; latencies
    come from the cluster's histograms; the stage breakdown feeds
    Figure 10. *)

type result = {
  committed : int;
  aborted_install : int;
  aborted_compute : int;
  throughput_tps : float;
  lat_mean_us : float;
  lat_p50_us : int;
  lat_p95_us : int;
  lat_p99_us : int;
  stages : (string * float) list;
      (** (stage name, mean µs); ALOHA: install / wait / processing;
          Calvin: sequencing / lock+read / processing *)
}

val pp_result : Format.formatter -> result -> unit

val run_aloha :
  cluster:Alohadb.Cluster.t ->
  gen:(fe:int -> Alohadb.Txn.request) ->
  arrival:Arrivals.t ->
  ?warmup_us:int ->
  ?measure_us:int ->
  ?seed:int ->
  unit -> result
(** The cluster must already be created, loaded and started. *)

val run_calvin :
  cluster:Calvin.Cluster.t ->
  gen:(fe:int -> Calvin.Ctxn.t) ->
  arrival:Arrivals.t ->
  ?warmup_us:int ->
  ?measure_us:int ->
  ?seed:int ->
  unit -> result
