let enabled = ref false

let slots : (string, float ref * int ref) Hashtbl.t = Hashtbl.create 32

let enable () = enabled := true

let span name f =
  if not !enabled then f ()
  else begin
    let slot =
      match Hashtbl.find_opt slots name with
      | Some s -> s
      | None ->
          let s = (ref 0.0, ref 0) in
          Hashtbl.add slots name s;
          s
    in
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let total, calls = slot in
    total := !total +. (Unix.gettimeofday () -. t0);
    incr calls;
    r
  end

let report () =
  Hashtbl.fold (fun name (t, c) acc -> (name, !t, !c) :: acc) slots []
  |> List.sort (fun (_, a, _) (_, b, _) -> Float.compare b a)
