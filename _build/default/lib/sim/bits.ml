(* Branchless-ish MSB search over the 63 value bits of an OCaml int. *)

let count_leading_zeros v =
  if v < 0 then invalid_arg "Bits.count_leading_zeros: negative";
  if v = 0 then 63
  else begin
    let n = ref 0 in
    let x = ref v in
    if !x lsr 31 = 0 then begin n := !n + 32; x := !x lsl 32 end;
    if !x lsr 47 = 0 then begin n := !n + 16; x := !x lsl 16 end;
    if !x lsr 55 = 0 then begin n := !n + 8; x := !x lsl 8 end;
    if !x lsr 59 = 0 then begin n := !n + 4; x := !x lsl 4 end;
    if !x lsr 61 = 0 then begin n := !n + 2; x := !x lsl 2 end;
    if !x lsr 62 = 0 then incr n;
    !n
  end

let ceil_pow2 v =
  if v <= 0 then invalid_arg "Bits.ceil_pow2: non-positive";
  if v = 1 then 1
  else 1 lsl (63 - count_leading_zeros (v - 1))
