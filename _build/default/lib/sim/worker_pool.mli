(** Model of a node's CPU: a pool of [workers] identical cores serving a
    FIFO queue of jobs, each with an explicit service time.

    Everything a simulated server "computes" — RPC handling, functor
    evaluation, lock-manager work — is submitted here with a cost in
    simulated microseconds, so CPU contention emerges naturally: when all
    workers are busy, jobs queue, and measured latency grows.

    A pool with [workers = 1] models a serial bottleneck (e.g. Calvin's
    single-threaded lock manager). *)

type t

val create : Engine.t -> workers:int -> t
(** [create engine ~workers] with [workers >= 1]. *)

val submit : t -> cost:int -> (unit -> unit) -> unit
(** [submit t ~cost done_] enqueues a job taking [cost] (>= 0) simulated
    microseconds of one worker's time, then calls [done_] at completion. *)

val submit_priority : t -> cost:int -> (unit -> unit) -> unit
(** Like {!submit} but the job jumps ahead of the normal FIFO queue (used
    for latency-critical control messages, e.g. epoch switches). *)

val workers : t -> int

val queue_length : t -> int
(** Jobs waiting (excluding the ones in service). *)

val busy_workers : t -> int

val busy_time : t -> int
(** Cumulative busy worker-microseconds, for utilisation accounting. *)

val jobs_completed : t -> int
