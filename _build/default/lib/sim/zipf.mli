(** Bounded Zipf-distributed sampling.

    Used for skewed key-popularity workloads.  The sampler follows the
    rejection-inversion method popularised by YCSB's ScrambledZipfian
    (Gray et al., "Quickly generating billion-record synthetic databases"),
    which samples in O(1) without materialising the full CDF. *)

type t

val create : n:int -> theta:float -> t
(** [create ~n ~theta] samples ranks in [0, n) with exponent [theta]
    (0 < theta < 1 for the Gray et al. method; theta ~ 0.99 is the YCSB
    default).  [n] must be positive. *)

val sample : t -> Rng.t -> int
(** A rank in [0, n); rank 0 is the most popular. *)

val n : t -> int
