(** Binary min-heap specialised for discrete-event scheduling.

    Entries are ordered by [priority] first and, for equal priorities, by
    insertion order, so that events scheduled for the same instant fire in
    FIFO order.  This stability is what makes whole-cluster simulations
    deterministic. *)

type 'a t

val create : unit -> 'a t
(** [create ()] is an empty heap. *)

val length : 'a t -> int
(** Number of entries currently stored. *)

val is_empty : 'a t -> bool

val add : 'a t -> priority:int -> 'a -> unit
(** [add t ~priority v] inserts [v]. Amortised O(log n). *)

val pop : 'a t -> (int * 'a) option
(** [pop t] removes and returns the minimum entry as [(priority, value)],
    or [None] when the heap is empty. *)

val peek_priority : 'a t -> int option
(** Priority of the minimum entry without removing it. *)

val clear : 'a t -> unit
(** Remove all entries. *)
