type job = { cost : int; k : unit -> unit }

type t = {
  engine : Engine.t;
  workers : int;
  queue : job Queue.t;
  prio_queue : job Queue.t;
  mutable busy : int;
  mutable busy_time : int;
  mutable completed : int;
}

let create engine ~workers =
  if workers < 1 then invalid_arg "Worker_pool.create: workers must be >= 1";
  { engine; workers; queue = Queue.create (); prio_queue = Queue.create ();
    busy = 0; busy_time = 0; completed = 0 }

let rec start_job t job =
  t.busy <- t.busy + 1;
  Engine.after t.engine job.cost (fun () ->
      t.busy <- t.busy - 1;
      t.busy_time <- t.busy_time + job.cost;
      t.completed <- t.completed + 1;
      job.k ();
      dispatch t)

and dispatch t =
  if t.busy < t.workers then begin
    match Queue.take_opt t.prio_queue with
    | Some job -> start_job t job
    | None -> (
        match Queue.take_opt t.queue with
        | Some job -> start_job t job
        | None -> ())
  end

let enqueue t q ~cost k =
  if cost < 0 then invalid_arg "Worker_pool.submit: negative cost";
  Queue.add { cost; k } q;
  dispatch t

let submit t ~cost k = enqueue t t.queue ~cost k

let submit_priority t ~cost k = enqueue t t.prio_queue ~cost k

let workers t = t.workers

let queue_length t = Queue.length t.queue + Queue.length t.prio_queue

let busy_workers t = t.busy

let busy_time t = t.busy_time

let jobs_completed t = t.completed
