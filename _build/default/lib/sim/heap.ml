(* Array-based binary min-heap.  The comparison key is (priority, seq):
   [seq] is a monotonically increasing insertion counter that breaks ties,
   giving FIFO order for events scheduled at the same simulated instant. *)

type 'a entry = { prio : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

let entry_lt a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow t e =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let new_capacity = if capacity = 0 then 64 else capacity * 2 in
    let data = Array.make new_capacity e in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  if left < t.size then begin
    let right = left + 1 in
    let smallest =
      if right < t.size && entry_lt t.data.(right) t.data.(left) then right
      else left
    in
    if entry_lt t.data.(smallest) t.data.(i) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(smallest);
      t.data.(smallest) <- tmp;
      sift_down t smallest
    end
  end

let add t ~priority value =
  let e = { prio = priority; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  grow t e;
  t.data.(t.size) <- e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (top.prio, top.value)
  end

let peek_priority t = if t.size = 0 then None else Some t.data.(0).prio

let clear t =
  t.size <- 0;
  t.next_seq <- 0
