(** Streaming statistics for simulation measurements.

    {!Summary} tracks count/mean/min/max/variance in O(1) memory
    (Welford's algorithm).  {!Histogram} is a log-bucketed histogram (in
    the spirit of HDRHistogram) for non-negative integer samples such as
    microsecond latencies; percentile queries are approximate to within
    the bucket resolution (~6 % worst case, 16 sub-buckets per octave). *)

module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val min : t -> float
  val max : t -> float
  val variance : t -> float
  val stddev : t -> float
  val total : t -> float
  val merge : t -> t -> t
  val clear : t -> unit
end

module Histogram : sig
  type t

  val create : unit -> t
  val add : t -> int -> unit
  (** Record a non-negative sample. Negative samples raise
      [Invalid_argument]. *)

  val count : t -> int
  val mean : t -> float
  val min : t -> int
  val max : t -> int

  val percentile : t -> float -> int
  (** [percentile t p] with [p] in (0, 100]; e.g. [percentile t 99.0].
      Returns 0 for an empty histogram. *)

  val merge_into : dst:t -> src:t -> unit
  val clear : t -> unit
end
