(** Deterministic pseudo-random numbers (SplitMix64).

    Every stochastic component of the simulation draws from an explicit
    [Rng.t]; there is no global mutable randomness, so a run is a pure
    function of its seeds.  [split] derives an independent stream, which
    lets each simulated node own its own generator without coupling the
    streams. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** A new generator whose stream is independent of the parent's
    subsequent output. *)

val copy : t -> t

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val uniform_int : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range [lo, hi]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
