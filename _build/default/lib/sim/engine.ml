type time = int

type t = {
  agenda : (unit -> unit) Heap.t;
  mutable clock : time;
  mutable stopped : bool;
  mutable fired : int;
}

let create () = { agenda = Heap.create (); clock = 0; stopped = false; fired = 0 }

let now t = t.clock

let schedule t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%d is in the past (now=%d)" at
         t.clock);
  Heap.add t.agenda ~priority:at f

let after t d f =
  if d < 0 then invalid_arg "Engine.after: negative delay";
  schedule t ~at:(t.clock + d) f

let run ?until t =
  t.stopped <- false;
  let continue = ref true in
  while !continue && not t.stopped do
    match Heap.peek_priority t.agenda with
    | None -> continue := false
    | Some at ->
        let past_horizon =
          match until with None -> false | Some h -> at > h
        in
        if past_horizon then begin
          (* Leave the event queued; advance the clock to the horizon so
             that a subsequent [run] with a later horizon resumes cleanly. *)
          (match until with Some h -> if h > t.clock then t.clock <- h | None -> ());
          continue := false
        end
        else begin
          match Heap.pop t.agenda with
          | None -> continue := false
          | Some (at, f) ->
              t.clock <- at;
              t.fired <- t.fired + 1;
              f ()
        end
  done

let stop t = t.stopped <- true

let pending t = Heap.length t.agenda

let events_fired t = t.fired
