(** Discrete-event simulation engine.

    Time is an [int] count of simulated microseconds.  Events are thunks
    scheduled at absolute instants; the engine fires them in
    (time, insertion-order) order, which makes runs fully deterministic.

    The engine executes everything on the caller's (single) OS thread:
    "concurrency" in the simulated cluster is interleaving of events, and
    real CPU parallelism is modelled explicitly by {!Worker_pool}. *)

type time = int
(** Simulated microseconds since the start of the run. *)

type t

val create : unit -> t
(** A fresh engine with the clock at 0 and an empty agenda. *)

val now : t -> time
(** Current simulated time. *)

val schedule : t -> at:time -> (unit -> unit) -> unit
(** [schedule t ~at f] runs [f] when the clock reaches [at].  Scheduling in
    the past raises [Invalid_argument]. *)

val after : t -> time -> (unit -> unit) -> unit
(** [after t d f] is [schedule t ~at:(now t + d) f]. [d] must be >= 0. *)

val run : ?until:time -> t -> unit
(** Fire events until the agenda is empty, or until the clock would pass
    [until] (events at exactly [until] still fire). *)

val stop : t -> unit
(** Make the current [run] return after the in-flight event completes.
    Remaining events stay queued and a later [run] resumes them. *)

val pending : t -> int
(** Number of queued events. *)

val events_fired : t -> int
(** Total number of events executed since [create]. *)
