lib/sim/prof.mli:
