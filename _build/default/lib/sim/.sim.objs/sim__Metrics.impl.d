lib/sim/metrics.ml: Hashtbl List Stats Stdlib String
