lib/sim/worker_pool.mli: Engine
