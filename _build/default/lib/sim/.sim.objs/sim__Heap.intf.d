lib/sim/heap.mli:
