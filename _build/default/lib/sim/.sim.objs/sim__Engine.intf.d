lib/sim/engine.mli:
