lib/sim/bits.ml:
