lib/sim/rng.mli:
