lib/sim/metrics.mli: Stats
