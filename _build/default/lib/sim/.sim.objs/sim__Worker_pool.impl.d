lib/sim/worker_pool.ml: Engine Queue
