lib/sim/stats.mli:
