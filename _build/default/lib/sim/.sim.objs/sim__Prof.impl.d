lib/sim/prof.ml: Float Hashtbl List Unix
