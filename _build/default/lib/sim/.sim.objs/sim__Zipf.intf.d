lib/sim/zipf.mli: Rng
