lib/sim/stats.ml: Array Bits Float
