lib/sim/bits.mli:
