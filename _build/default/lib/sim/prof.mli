(** Crude wall-clock accumulation profiler for development diagnostics.
    Disabled (near-zero cost) unless [enable] is called. *)

val enable : unit -> unit
val span : string -> (unit -> 'a) -> 'a
val report : unit -> (string * float * int) list
(** (name, total seconds, calls), sorted by total descending. *)
