(** Small bit-twiddling helpers shared by the simulation kernel. *)

val count_leading_zeros : int -> int
(** Leading zeros in the 63-bit representation of a non-negative int.
    [count_leading_zeros 1 = 62]; [count_leading_zeros 0 = 63]. *)

val ceil_pow2 : int -> int
(** Smallest power of two >= the argument (argument must be positive). *)
