(* SplitMix64 (Steele, Lea, Flood 2014).  Small state, good statistical
   quality for simulation purposes, and trivially splittable. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = int64 t in
  { state = mix s }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Take the top bits (better distributed in SplitMix64 output) and reduce
     modulo the bound.  The modulo bias is negligible for the bounds used in
     this codebase (bound << 2^62). *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  (* 53 random bits mapped to [0,1). *)
  v /. 9007199254740992.0 *. bound

let bool t = Int64.compare (Int64.logand (int64 t) 1L) 0L <> 0

let bernoulli t p = float t 1.0 < p

let uniform_int t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.uniform_int: hi < lo";
  lo + int t (hi - lo + 1)

let exponential t ~mean =
  let u = float t 1.0 in
  (* Avoid log 0. *)
  let u = if u <= 0.0 then 1e-300 else u in
  -.mean *. log u

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
