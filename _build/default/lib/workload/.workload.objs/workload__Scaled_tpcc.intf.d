lib/workload/scaled_tpcc.mli: Alohadb Calvin Functor_cc
