lib/workload/tpcc.mli: Alohadb Calvin Functor_cc
