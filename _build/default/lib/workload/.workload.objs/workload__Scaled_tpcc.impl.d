lib/workload/scaled_tpcc.ml: Alohadb Calvin Functor_cc Hashtbl List Option Printf Sim
