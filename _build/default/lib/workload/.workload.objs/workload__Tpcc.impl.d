lib/workload/tpcc.ml: Alohadb Calvin Functor_cc Hashtbl List Option Printf Sim
