lib/workload/ycsb.mli: Alohadb Calvin Twopl
