lib/workload/ycsb.ml: Alohadb Calvin Float Functor_cc List Printf Sim String Twopl
