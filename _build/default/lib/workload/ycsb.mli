(** The YCSB-like microbenchmark from the Calvin evaluation (§V-A1).

    Each server holds one partition of keys split into K {e hot} keys and
    the remaining {e cold} keys; the contention index is CI = 1/K.  Every
    transaction reads 10 keys and increments each by 1, touching exactly
    one hot key on each participant partition; a distributed transaction
    spans two partitions (one of them the submitting server's).

    Partition sizing: the paper uses 1 M keys per partition; the default
    here is 100 k (configurable) — hot-key contention, which is what the
    experiment varies, is unaffected by the cold-key population, and the
    smaller default keeps simulation memory modest (see EXPERIMENTS.md).

    Keys are ["y:<partition>:<idx>"]; the [`Prefix] partitioner routes on
    the partition field. *)

type cfg = {
  keys_per_partition : int;
  hot_keys : int;  (** K; contention index = 1/K *)
  rw_keys : int;  (** keys read+updated per transaction (10) *)
  distributed : bool;  (** two-partition transactions (the default) *)
}

val cfg_of_contention_index : ?keys_per_partition:int -> float -> cfg
(** [cfg_of_contention_index ci] sets [hot_keys = 1 / ci] (e.g. CI 0.01 →
    100 hot keys). *)

val key : partition:int -> int -> string

val load_aloha : cfg -> Alohadb.Cluster.t -> unit
val load_calvin : cfg -> Calvin.Cluster.t -> unit

val load_calvin' : cfg -> Twopl.Cluster.t -> unit
(** Load the 2PL/2PC baseline (same single-version store shape). *)

type generator

val generator : cfg -> n_partitions:int -> seed:int -> generator

val gen_aloha : generator -> fe:int -> Alohadb.Txn.request
(** 10 ADD-1 functors: one hot + four cold keys on each of the two
    participant partitions. *)

val gen_calvin : generator -> fe:int -> Calvin.Ctxn.t
(** The same access pattern through Calvin's "incr_all" procedure. *)
