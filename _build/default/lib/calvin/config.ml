type t = {
  cores : int;
  epoch_us : int;
  cost_seq_us : int;
  cost_lock_us : int;
  cost_read_us : int;
  cost_exec_us : int;
  cost_write_us : int;
  cost_msg_us : int;
}

let default =
  { cores = 8;
    epoch_us = 20_000;
    cost_seq_us = 2;
    cost_lock_us = 2;
    cost_read_us = 1;
    cost_exec_us = 2;
    cost_write_us = 1;
    cost_msg_us = 1 }
