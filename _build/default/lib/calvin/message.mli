(** Calvin's wire messages.

    Replication is disabled (as in the paper's comparison), so sequencers
    ship each epoch's batch straight to the schedulers.  Every sequencer
    sends a batch message — possibly empty — to every server per epoch;
    the scheduler barrier on "one batch from each sequencer" is what makes
    the global order (epoch, sequencer, index) deterministic. *)

type uid = int
(** Packed (epoch, sequencer, index) — see {!uid_make}. *)

val uid_make : epoch:int -> seq_id:int -> idx:int -> uid
val uid_epoch : uid -> int
val uid_seq : uid -> int
val uid_idx : uid -> int

type routed = {
  uid : uid;
  origin : int;  (** server that accepted the client request *)
  submitted_at : int;  (** client submission time (for latency) *)
  txn : Ctxn.t;
}

type wire =
  | Batch of { epoch : int; seq_id : int; txns : routed list }
  | Reads of {
      uid : uid;
      from : int;  (** partition that produced these values *)
      values : (string * Functor_cc.Value.t option) list;
    }
  | Done of { uid : uid; partition : int }

type rpc = (wire, unit) Net.Rpc.t
(** All Calvin messages are one-way. *)
