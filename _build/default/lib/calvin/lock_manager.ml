type mode = Read | Write

type entry = { uid : int; mode : mode; mutable granted : bool }

type txn_state = {
  mutable needed : int;
  mutable held : int;
  mutable keys : string list;
  mutable notified : bool;
}

type t = {
  queues : (string, entry list ref) Hashtbl.t;
  txns : (int, txn_state) Hashtbl.t;
  on_ready : int -> unit;
}

let create ~on_ready =
  { queues = Hashtbl.create 1024; txns = Hashtbl.create 256; on_ready }

let queue_of t key =
  match Hashtbl.find_opt t.queues key with
  | Some q -> q
  | None ->
      let q = ref [] in
      Hashtbl.add t.queues key q;
      q

(* Grant the longest compatible prefix of the queue: either the single
   leading write, or every leading read up to the first write. *)
let promote t key =
  let q = queue_of t key in
  let newly = ref [] in
  (match !q with
  | [] -> ()
  | first :: rest ->
      if not first.granted then begin
        first.granted <- true;
        newly := [ first ]
      end;
      (match first.mode with
      | Write -> ()
      | Read ->
          let rec grant_reads = function
            | e :: tl when e.mode = Read ->
                if not e.granted then begin
                  e.granted <- true;
                  newly := e :: !newly
                end;
                grant_reads tl
            | _ :: _ | [] -> ()
          in
          grant_reads rest));
  List.iter
    (fun e ->
      match Hashtbl.find_opt t.txns e.uid with
      | None -> ()
      | Some st ->
          st.held <- st.held + 1;
          if st.held = st.needed && not st.notified then begin
            st.notified <- true;
            t.on_ready e.uid
          end)
    (List.rev !newly)

let coalesce keys =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (key, mode) ->
      match Hashtbl.find_opt tbl key with
      | Some Write -> ()
      | Some Read -> if mode = Write then Hashtbl.replace tbl key Write
      | None -> Hashtbl.add tbl key mode)
    keys;
  Hashtbl.fold (fun key mode acc -> (key, mode) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let request t ~uid ~keys =
  if Hashtbl.mem t.txns uid then
    invalid_arg "Lock_manager.request: duplicate uid";
  let keys = coalesce keys in
  let st =
    { needed = List.length keys; held = 0; keys = List.map fst keys;
      notified = false }
  in
  Hashtbl.add t.txns uid st;
  if st.needed = 0 then begin
    st.notified <- true;
    t.on_ready uid
  end
  else
    List.iter
      (fun (key, mode) ->
        let q = queue_of t key in
        q := !q @ [ { uid; mode; granted = false } ];
        promote t key)
      keys

let release t ~uid =
  match Hashtbl.find_opt t.txns uid with
  | None -> invalid_arg "Lock_manager.release: unknown uid"
  | Some st ->
      Hashtbl.remove t.txns uid;
      List.iter
        (fun key ->
          let q = queue_of t key in
          q := List.filter (fun e -> e.uid <> uid) !q;
          if !q = [] then Hashtbl.remove t.queues key else promote t key)
        st.keys

let holders t key =
  match Hashtbl.find_opt t.queues key with
  | None -> []
  | Some q -> List.filter_map (fun e -> if e.granted then Some e.uid else None) !q

let waiting t key =
  match Hashtbl.find_opt t.queues key with
  | None -> 0
  | Some q -> List.length !q
