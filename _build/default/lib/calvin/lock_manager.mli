(** Calvin's deterministic lock table.

    Lock requests arrive in the global transaction order (the scheduler
    guarantees this) and are queued per key; grants follow strict FIFO with
    the usual shared-read / exclusive-write compatibility.  Because every
    scheduler requests locks in the same order, the protocol is
    deadlock-free by construction.

    This module is the pure state machine; the {e single-threaded-ness} of
    Calvin's lock manager — the bottleneck the paper identifies — is
    modelled by the server, which funnels every [request]/[release] through
    a one-worker pool. *)

type mode =
  | Read
  | Write

type t

val create : on_ready:(int -> unit) -> t
(** [on_ready uid] fires when transaction [uid] holds every lock it
    requested.  It may fire from inside [request] (uncontended case) or
    from inside another transaction's [release]. *)

val request : t -> uid:int -> keys:(string * mode) list -> unit
(** Enqueue all lock requests for a transaction.  Duplicate keys are
    coalesced (write mode wins).  A transaction with an empty key list is
    ready immediately. *)

val release : t -> uid:int -> unit
(** Drop all locks of [uid] (granted or still queued) and promote
    waiters.  Unknown uids raise [Invalid_argument]. *)

val holders : t -> string -> int list
(** Uids currently granted on the key (test helper). *)

val waiting : t -> string -> int
(** Queue length (granted + waiting entries) for the key. *)
