(** Calvin's transaction model (Thomson et al., SIGMOD 2012).

    Like ALOHA-DB, Calvin requires one-shot transactions with read and
    write sets known up front.  A transaction is a stored-procedure name
    plus arguments; after the deterministic locking phase every
    participating partition evaluates the {e same} procedure on the
    {e same} full read-set values (redundant execution) and applies only
    the writes belonging to its own partition.

    Procedures are deterministic and — matching the open-source Calvin
    implementation the paper compares against — cannot abort. *)

type t = {
  proc : string;  (** registered procedure name *)
  read_set : string list;
  write_set : string list;
  args : Functor_cc.Value.t list;
}

val participants : partition_of:(string -> int) -> t -> int list
(** Sorted distinct partitions touched by the read and write sets. *)

type proc =
  txn:t ->
  reads:(string * Functor_cc.Value.t option) list ->
  (string * Functor_cc.Value.t) list
(** A stored procedure: the transaction (for its write set and arguments)
    and the full read-set values in, the full write map out. *)

type registry

val create_registry : unit -> registry
val register : registry -> string -> proc -> unit
val find : registry -> string -> proc option

val with_builtins : unit -> registry
(** Preloaded with ["incr_all"]: add [args.(0)] to every key in the write
    set (the YCSB microbenchmark's procedure). *)
