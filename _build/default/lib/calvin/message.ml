type uid = int

let seq_bits = 10
let idx_bits = 20

let uid_make ~epoch ~seq_id ~idx =
  if seq_id < 0 || seq_id >= 1 lsl seq_bits then invalid_arg "uid_make: seq";
  if idx < 0 || idx >= 1 lsl idx_bits then invalid_arg "uid_make: idx";
  (epoch lsl (seq_bits + idx_bits)) lor (seq_id lsl idx_bits) lor idx

let uid_epoch uid = uid lsr (seq_bits + idx_bits)
let uid_seq uid = (uid lsr idx_bits) land ((1 lsl seq_bits) - 1)
let uid_idx uid = uid land ((1 lsl idx_bits) - 1)

type routed = {
  uid : uid;
  origin : int;
  submitted_at : int;
  txn : Ctxn.t;
}

type wire =
  | Batch of { epoch : int; seq_id : int; txns : routed list }
  | Reads of {
      uid : uid;
      from : int;
      values : (string * Functor_cc.Value.t option) list;
    }
  | Done of { uid : uid; partition : int }

type rpc = (wire, unit) Net.Rpc.t
