(** Calvin server configuration and cost model.

    Mirrors the paper's experimental setup (§V-A2): the sequencer batches
    requests in 20 ms epochs, storage is in-memory, and replication/fault
    tolerance is disabled.  Of the server's cores, one is dedicated to the
    sequencer and one to the scheduler's single-threaded lock manager —
    the bottleneck the paper identifies — leaving the rest as executor
    workers. *)

type t = {
  cores : int;  (** total cores; executors get [cores - 2] *)
  epoch_us : int;  (** sequencer batch length (default 20 ms) *)
  cost_seq_us : int;  (** sequencer work per transaction *)
  cost_lock_us : int;  (** lock-manager work per key (acquire; release
                           costs the same) *)
  cost_read_us : int;  (** storage read per key *)
  cost_exec_us : int;  (** stored-procedure execution *)
  cost_write_us : int;  (** storage write per key *)
  cost_msg_us : int;  (** handling one network message *)
}

val default : t
