lib/calvin/ctxn.ml: Functor_cc Hashtbl Int List Printf
