lib/calvin/lock_manager.mli:
