lib/calvin/message.mli: Ctxn Functor_cc Net
