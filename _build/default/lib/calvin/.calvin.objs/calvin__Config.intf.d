lib/calvin/config.mli:
