lib/calvin/ctxn.mli: Functor_cc
