lib/calvin/lock_manager.ml: Hashtbl List String
