lib/calvin/server.ml: Config Ctxn Functor_cc Hashtbl List Lock_manager Message Net Sim
