lib/calvin/cluster.ml: Array Config Ctxn Message Net Server Sim
