lib/calvin/config.ml:
