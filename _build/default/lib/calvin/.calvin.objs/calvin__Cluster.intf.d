lib/calvin/cluster.mli: Config Ctxn Functor_cc Net Server Sim
