lib/calvin/server.mli: Config Ctxn Functor_cc Message Net Sim
