lib/calvin/message.ml: Ctxn Functor_cc Net
