module Value = Functor_cc.Value

type t = {
  proc : string;
  read_set : string list;
  write_set : string list;
  args : Value.t list;
}

let participants ~partition_of txn =
  List.map partition_of (txn.read_set @ txn.write_set)
  |> List.sort_uniq Int.compare

type proc =
  txn:t ->
  reads:(string * Value.t option) list ->
  (string * Value.t) list

type registry = (string, proc) Hashtbl.t

let create_registry () = Hashtbl.create 16

let register registry name proc =
  if Hashtbl.mem registry name then
    invalid_arg (Printf.sprintf "Ctxn.register: duplicate procedure %S" name);
  Hashtbl.add registry name proc

let find registry name = Hashtbl.find_opt registry name

(* YCSB-style read-modify-write: every write-set key is incremented by the
   first argument (keys absent from the store start at 0). *)
let incr_all ~txn ~reads =
  let delta =
    match txn.args with v :: _ -> Value.to_int v | [] -> 1
  in
  List.map
    (fun key ->
      match List.assoc_opt key reads with
      | Some (Some v) -> (key, Value.int (Value.to_int v + delta))
      | Some None | None -> (key, Value.int delta))
    txn.write_set

let with_builtins () =
  let r = create_registry () in
  register r "incr_all" incr_all;
  r
