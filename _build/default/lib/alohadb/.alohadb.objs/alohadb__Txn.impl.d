lib/alohadb/txn.ml: Clocksync Format Functor_cc List String
