lib/alohadb/message.mli: Functor_cc Net Txn
