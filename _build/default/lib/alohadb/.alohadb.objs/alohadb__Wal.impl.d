lib/alohadb/wal.ml: List Message Sim
