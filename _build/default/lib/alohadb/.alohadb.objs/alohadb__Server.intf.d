lib/alohadb/server.mli: Clocksync Config Epoch Functor_cc Message Net Sim Txn Wal
