lib/alohadb/txn.mli: Clocksync Format Functor_cc
