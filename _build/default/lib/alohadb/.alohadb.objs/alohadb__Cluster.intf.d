lib/alohadb/cluster.mli: Config Epoch Functor_cc Net Server Sim Txn
