lib/alohadb/server.ml: Array Clocksync Config Epoch Functor_cc Hashtbl Int List Message Mvstore Net Queue Recovery Sim String Txn Wal
