lib/alohadb/message.ml: Functor_cc Net Txn
