lib/alohadb/recovery.mli: Functor_cc Message Wal
