lib/alohadb/cluster.ml: Array Clocksync Config Epoch Functor_cc List Message Net Server Sim
