lib/alohadb/config.ml:
