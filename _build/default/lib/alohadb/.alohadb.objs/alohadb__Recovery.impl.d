lib/alohadb/recovery.ml: Functor_cc List Message Mvstore Option Wal
