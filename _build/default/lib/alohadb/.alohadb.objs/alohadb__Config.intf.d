lib/alohadb/config.mli:
