lib/alohadb/wal.mli: Message Sim
