type txn_ref = int

type req =
  | Lock_and_read of {
      uid : txn_ref;
      reads : string list;
      writes : string list;
    }
  | Prepare of { uid : txn_ref; writes : (string * Functor_cc.Value.t) list }
  | Commit of { uid : txn_ref }
  | Release of { uid : txn_ref }

type resp =
  | Locked of { values : (string * Functor_cc.Value.t option) list }
  | Lock_timeout
  | Prepared
  | Done

type rpc = (req, resp) Net.Rpc.t
