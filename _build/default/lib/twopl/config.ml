type t = {
  cores : int;
  lock_timeout_us : int;
  max_retries : int;
  retry_backoff_us : int;
  cost_lock_us : int;
  cost_read_us : int;
  cost_exec_us : int;
  cost_write_us : int;
  cost_msg_us : int;
}

let default =
  { cores = 8;
    lock_timeout_us = 5_000;
    max_retries = 10;
    retry_backoff_us = 2_000;
    cost_lock_us = 2;
    cost_read_us = 1;
    cost_exec_us = 2;
    cost_write_us = 1;
    cost_msg_us = 1 }
