(** Assembly of a 2PL/2PC deployment. *)

type options = {
  n_servers : int;
  config : Config.t;
  latency : Net.Latency.t;
  partitioner : [ `Hash | `Prefix ];
  seed : int;
}

val default_options : options

type t

val create : ?registry:Calvin.Ctxn.registry -> options -> t
val sim : t -> Sim.Engine.t
val metrics : t -> Sim.Metrics.t
val n_servers : t -> int
val server : t -> int -> Server.t
val partition_of : t -> string -> int
val load : t -> key:string -> Functor_cc.Value.t -> unit
val submit : ?k:(unit -> unit) -> t -> fe:int -> Calvin.Ctxn.t -> unit
val run_for : t -> int -> unit
