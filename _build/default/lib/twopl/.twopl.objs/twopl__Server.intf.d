lib/twopl/server.mli: Calvin Config Functor_cc Message Net Sim
