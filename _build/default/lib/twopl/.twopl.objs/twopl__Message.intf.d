lib/twopl/message.mli: Functor_cc Net
