lib/twopl/config.ml:
