lib/twopl/cluster.mli: Calvin Config Functor_cc Net Server Sim
