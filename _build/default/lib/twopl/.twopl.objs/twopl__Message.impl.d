lib/twopl/message.ml: Functor_cc Net
