lib/twopl/config.mli:
