lib/twopl/server.ml: Calvin Config Functor_cc Hashtbl List Message Net Sim
