lib/twopl/cluster.ml: Array Calvin Config Message Net Server Sim
