(** Configuration for the 2PL/2PC baseline. *)

type t = {
  cores : int;
  lock_timeout_us : int;
      (** waiting longer than this aborts the transaction (deadlock
          resolution by timeout) *)
  max_retries : int;  (** client-side restarts after lock timeouts *)
  retry_backoff_us : int;  (** base backoff, jittered uniformly *)
  cost_lock_us : int;  (** per-key lock-table work *)
  cost_read_us : int;
  cost_exec_us : int;
  cost_write_us : int;
  cost_msg_us : int;
}

val default : t
