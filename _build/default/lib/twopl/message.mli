(** Wire protocol for the conventional two-phase-locking / two-phase-commit
    baseline (the "transaction-level concurrency control" the paper's
    introduction and related work position ALOHA-DB against).

    Flow per transaction: the coordinator asks every participant to lock
    and read its local fragment; participants either grant (after queueing)
    or report a timeout; on success the coordinator executes the stored
    procedure and drives two-phase commit (prepare with the writes, then
    commit), or aborts and releases. *)

type txn_ref = int
(** Coordinator-local transaction id, unique cluster-wide by embedding the
    coordinator id in the low bits. *)

type req =
  | Lock_and_read of {
      uid : txn_ref;
      reads : string list;  (** local read-set keys *)
      writes : string list;  (** local write-set keys *)
    }
  | Prepare of { uid : txn_ref; writes : (string * Functor_cc.Value.t) list }
  | Commit of { uid : txn_ref }
  | Release of { uid : txn_ref }
      (** abort: drop locks (and any prepared writes) *)

type resp =
  | Locked of { values : (string * Functor_cc.Value.t option) list }
  | Lock_timeout
  | Prepared
  | Done

type rpc = (req, resp) Net.Rpc.t
