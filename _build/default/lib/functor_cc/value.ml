type t =
  | Unit
  | Int of int
  | Float of float
  | Str of string
  | Tup of t list

let unit = Unit
let int i = Int i
let float f = Float f
let str s = Str s
let tup l = Tup l

let type_name = function
  | Unit -> "unit"
  | Int _ -> "int"
  | Float _ -> "float"
  | Str _ -> "str"
  | Tup _ -> "tup"

let type_error expected v =
  invalid_arg
    (Printf.sprintf "Value: expected %s, got %s" expected (type_name v))

let to_int = function Int i -> i | v -> type_error "int" v

let to_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | v -> type_error "float" v

let to_str = function Str s -> s | v -> type_error "str" v

let to_tup = function Tup l -> l | v -> type_error "tup" v

let nth v i =
  match v with
  | Tup l -> (
      match List.nth_opt l i with
      | Some x -> x
      | None -> invalid_arg (Printf.sprintf "Value.nth: index %d" i))
  | v -> type_error "tup" v

let set_nth v i x =
  match v with
  | Tup l ->
      if i < 0 || i >= List.length l then
        invalid_arg (Printf.sprintf "Value.set_nth: index %d" i);
      Tup (List.mapi (fun j y -> if j = i then x else y) l)
  | v -> type_error "tup" v

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Tup x, Tup y -> List.length x = List.length y && List.for_all2 equal x y
  | (Unit | Int _ | Float _ | Str _ | Tup _), _ -> false

let rec compare a b =
  match (a, b) with
  | Unit, Unit -> 0
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Tup x, Tup y -> List.compare compare x y
  | Unit, _ -> -1
  | _, Unit -> 1
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Float _, _ -> -1
  | _, Float _ -> 1
  | Str _, _ -> -1
  | _, Str _ -> 1

let rec pp fmt = function
  | Unit -> Format.pp_print_string fmt "()"
  | Int i -> Format.pp_print_int fmt i
  | Float f -> Format.fprintf fmt "%g" f
  | Str s -> Format.fprintf fmt "%S" s
  | Tup l ->
      Format.fprintf fmt "(@[%a@])"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ")
           pp)
        l

let to_string v = Format.asprintf "%a" pp v

let rec size_bytes = function
  | Unit -> 1
  | Int _ -> 8
  | Float _ -> 8
  | Str s -> 4 + String.length s
  | Tup l -> List.fold_left (fun acc v -> acc + size_bytes v) 4 l
