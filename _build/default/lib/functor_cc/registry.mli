(** Handler registry for user-defined f-types (§IV-B).

    A handler is the stored procedure fragment that turns a functor into
    the final value of its key.  It receives the values of the functor's
    read set — each read at the latest version strictly below the functor's
    version — together with the client arguments, and returns the outcome.

    Handlers must be deterministic functions of their inputs: every
    partition that evaluates the same functor must reach the same
    decision, and the all-or-nothing abort guarantee (§IV-C) relies on
    abort-influencing keys being present in the read set of {e every}
    functor of the transaction. *)

type ctx = {
  key : string;  (** the key this functor writes *)
  version : int;  (** the transaction timestamp *)
  reads : (string * Value.t option) list;
      (** read-set values; [None] = key absent (or deleted) at that
          version *)
  args : Value.t list;
}

val read : ctx -> string -> Value.t option
(** Look up a read-set value; raises [Not_found] if the key was not in the
    declared read set (a handler bug worth failing loudly on). *)

val read_exn : ctx -> string -> Value.t
(** Like {!read} but also raises [Not_found] when the key is absent. *)

val arg : ctx -> int -> Value.t

type dep_write =
  | Dep_put of Value.t  (** deferred write of a dependent key *)
  | Dep_delete
  | Dep_skip  (** the condition failed; the dependent key is untouched *)

type outcome =
  | Commit of Value.t
  | Abort  (** logic error / constraint violation: whole txn aborts *)
  | Delete
  | Commit_det of Value.t * (string * dep_write) list
      (** determinate functor: own value plus the resolved deferred writes
          for the dependent keys declared at install time *)

type handler = ctx -> outcome

type t

val create : unit -> t

val register : t -> string -> handler -> unit
(** Raises [Invalid_argument] on duplicate names — silently replacing a
    stored procedure is a deployment error. *)

val find : t -> string -> handler option

val names : t -> string list
(** Registered handler names, sorted. *)

val with_builtins : unit -> t
(** A registry preloaded with the example handlers used in docs and tests:
    ["cadd"] (conditional add: abort when the result would go below the
    floor given as second argument). *)
