lib/functor_cc/optimistic.mli: Funct Registry Value
