lib/functor_cc/compute_engine.mli: Funct Mvstore Registry Sim Value
