lib/functor_cc/value.mli: Format
