lib/functor_cc/funct.mli: Format Ftype Value
