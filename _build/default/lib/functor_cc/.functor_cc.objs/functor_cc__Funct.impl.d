lib/functor_cc/funct.ml: Format Ftype List String Value
