lib/functor_cc/ftype.ml: Format Printf String
