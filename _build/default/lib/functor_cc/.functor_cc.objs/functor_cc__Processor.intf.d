lib/functor_cc/processor.mli: Compute_engine Sim
