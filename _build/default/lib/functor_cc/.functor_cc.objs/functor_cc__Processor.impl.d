lib/functor_cc/processor.ml: Compute_engine Hashtbl Int List Sim
