lib/functor_cc/value.ml: Float Format Int List Printf String
