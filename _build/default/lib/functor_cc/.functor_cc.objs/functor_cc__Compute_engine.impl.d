lib/functor_cc/compute_engine.ml: Array Ftype Funct List Mvstore Printf Registry Sim String Value
