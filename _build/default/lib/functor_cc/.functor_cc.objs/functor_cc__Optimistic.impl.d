lib/functor_cc/optimistic.ml: Ftype Funct List Registry Value
