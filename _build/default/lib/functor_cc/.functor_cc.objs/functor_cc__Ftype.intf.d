lib/functor_cc/ftype.mli: Format
