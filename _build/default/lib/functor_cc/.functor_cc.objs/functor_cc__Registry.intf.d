lib/functor_cc/registry.mli: Value
