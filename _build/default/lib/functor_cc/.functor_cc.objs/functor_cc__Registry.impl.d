lib/functor_cc/registry.ml: Hashtbl List Printf String Value
