(** The optimistic method for dependent transactions (§IV-E).

    A client that cannot declare its write set up front first reads its
    read set from a snapshot at timestamp [tsr], computes the intended
    writes, and then installs {e validating functors} at a later timestamp
    [tsw].  Each validating functor re-reads the read set (at [tsw - 1],
    as every functor does) and aborts the transaction if any value changed
    since the snapshot — Hyder-style backward validation, except that
    validation is decentralised and parallel because each functor needs
    only the latest previous versions of its own read set. *)

val handler_name : string
(** ["occ_validate"]. *)

val register : Registry.t -> unit
(** Make the validation handler available; idempotent registration is not
    attempted — call once per registry. *)

val encode_snapshot : (string * Value.t option) list -> Value.t
(** Encode the observed snapshot for transport inside an f-argument. *)

val make_functor :
  snapshot:(string * Value.t option) list ->
  new_value:Value.t ->
  txn_id:int -> coordinator:int -> Funct.t
(** A pending functor that commits [new_value] iff every key in
    [snapshot] still has the observed value at computing time. *)
