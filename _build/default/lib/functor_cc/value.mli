(** Database values.

    The store is schemaless: a value is an int, float, string, or tuple of
    values.  Workloads (TPC-C rows, YCSB counters) encode their records in
    this type.  All operations are pure. *)

type t =
  | Unit
  | Int of int
  | Float of float
  | Str of string
  | Tup of t list

val unit : t
val int : int -> t
val float : float -> t
val str : string -> t
val tup : t list -> t

val to_int : t -> int
(** Raises [Invalid_argument] when the value is not an [Int]. *)

val to_float : t -> float
(** Accepts [Int] (widened) and [Float]. *)

val to_str : t -> string
val to_tup : t -> t list

val nth : t -> int -> t
(** Field access on a [Tup]. *)

val set_nth : t -> int -> t -> t
(** Functional field update on a [Tup]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val size_bytes : t -> int
(** Approximate wire size, used by the cost model to scale message costs. *)
