type t = {
  clock : Node_clock.t;
  node : int;
  mutable last : Timestamp.t;
}

let create clock ~node =
  ignore (Timestamp.make ~time_us:0 ~node ~seq:0);
  (* validates the node id fits the field *)
  { clock; node; last = Timestamp.zero }

let node t = t.node

let seq_max = (1 lsl Timestamp.seq_bits) - 1

let next t ~lo ~hi =
  if lo > hi then invalid_arg "Ts_source.next: empty window";
  let reading = Node_clock.now t.clock in
  let time_us = if reading < lo then lo else if reading > hi then hi else reading in
  (* Candidate at (time_us, seq 0); bump past the last issued timestamp. *)
  let candidate = Timestamp.make ~time_us ~node:t.node ~seq:0 in
  let candidate =
    if Timestamp.( < ) t.last candidate then candidate
    else begin
      (* Same or earlier microsecond: continue the sequence, rolling over to
         the next microsecond when the 12-bit space is exhausted. *)
      let lt = Timestamp.time_us t.last in
      let ls = Timestamp.seq t.last in
      if ls < seq_max then Timestamp.make ~time_us:lt ~node:t.node ~seq:(ls + 1)
      else Timestamp.make ~time_us:(lt + 1) ~node:t.node ~seq:0
    end
  in
  if Timestamp.time_us candidate > hi then None
  else begin
    t.last <- candidate;
    Some candidate
  end

let last_issued t = t.last
