type t = int

let node_bits = 10
let seq_bits = 12

let node_mask = (1 lsl node_bits) - 1
let seq_mask = (1 lsl seq_bits) - 1
let shift = node_bits + seq_bits

let make ~time_us ~node ~seq =
  if time_us < 0 then invalid_arg "Timestamp.make: negative time";
  if node < 0 || node > node_mask then invalid_arg "Timestamp.make: node";
  if seq < 0 || seq > seq_mask then invalid_arg "Timestamp.make: seq";
  (time_us lsl shift) lor (node lsl seq_bits) lor seq

let zero = 0

let infinity = max_int

let of_int i =
  if i < 0 then invalid_arg "Timestamp.of_int: negative";
  i

let to_int t = t
let time_us t = t lsr shift
let node t = (t lsr seq_bits) land node_mask
let seq t = t land seq_mask

let with_time t ~time_us =
  make ~time_us ~node:(node t) ~seq:(seq t)

let window_lo ~time_us = make ~time_us ~node:0 ~seq:0

let window_hi ~time_us = make ~time_us ~node:node_mask ~seq:seq_mask

let compare = Int.compare
let equal = Int.equal
let ( < ) a b = Stdlib.( < ) a b
let ( <= ) a b = Stdlib.( <= ) a b
let min a b = Stdlib.min a b
let max a b = Stdlib.max a b

let pred t =
  if t <= 0 then invalid_arg "Timestamp.pred: underflow";
  t - 1

let pp fmt t =
  Format.fprintf fmt "%d.%03d@n%d" (time_us t) (seq t) (node t)
