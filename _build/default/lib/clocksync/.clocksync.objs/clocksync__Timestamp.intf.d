lib/clocksync/timestamp.mli: Format
