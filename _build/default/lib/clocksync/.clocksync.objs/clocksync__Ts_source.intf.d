lib/clocksync/ts_source.mli: Node_clock Timestamp
