lib/clocksync/node_clock.mli: Sim
