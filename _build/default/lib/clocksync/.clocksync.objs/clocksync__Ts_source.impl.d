lib/clocksync/ts_source.ml: Node_clock Timestamp
