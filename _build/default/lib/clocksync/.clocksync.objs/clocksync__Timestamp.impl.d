lib/clocksync/timestamp.ml: Format Int Stdlib
