lib/clocksync/node_clock.ml: Sim
