(** Per-frontend timestamp source.

    Issues strictly increasing, globally unique {!Timestamp.t}s derived
    from the node's local clock, clamped into a caller-supplied window —
    the epoch validity period for authorised transactions, or the
    straggler-optimisation bound for transactions started without
    authorization (§III-C). *)

type t

val create : Node_clock.t -> node:int -> t

val node : t -> int

val next : t -> lo:int -> hi:int -> Timestamp.t option
(** [next t ~lo ~hi] issues a timestamp whose time field lies within
    [lo, hi] (microseconds of local-clock time), strictly greater than any
    timestamp issued before.  [None] when the window is already exhausted
    (local clock beyond [hi] with the sequence space at [lo..hi] used up) —
    the caller must then wait for the next epoch. *)

val last_issued : t -> Timestamp.t
(** The most recent timestamp issued, or {!Timestamp.zero} initially. *)
