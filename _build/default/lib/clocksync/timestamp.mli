(** Globally unique transaction timestamps.

    ECC orders transactions by timestamps generated in a decentralised
    manner (§II): each frontend derives timestamps from its local clock,
    made globally unique by embedding the node id and a per-microsecond
    sequence number in the low bits.  Comparing timestamps therefore
    compares (local-clock microsecond, node, seq) lexicographically, and
    two distinct transactions never collide.

    The representation is a single non-negative [int], so timestamps double
    as version numbers in the multi-version store with cheap comparisons. *)

type t = private int

val node_bits : int
val seq_bits : int

val make : time_us:int -> node:int -> seq:int -> t
(** Raises [Invalid_argument] when a component exceeds its field width. *)

val zero : t
(** Smaller than every timestamp produced by [make] with [time_us > 0];
    used as the version of pre-loaded (initial) data. *)

val infinity : t
(** Greater than every realistic timestamp; used as an upper bound in
    reads that want the latest version. *)

val of_int : int -> t
(** Trust an integer already produced by [make] (used at decode sites). *)

val to_int : t -> int
val time_us : t -> int
val node : t -> int
val seq : t -> int

val with_time : t -> time_us:int -> t
(** Same node and seq, different time field. *)

val window_lo : time_us:int -> t
(** Smallest timestamp whose time field is >= [time_us]. *)

val window_hi : time_us:int -> t
(** Largest timestamp whose time field is <= [time_us]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val pred : t -> t
(** [pred ts] is the largest timestamp strictly below [ts] (integer
    predecessor) — used for "latest version not exceeding [v - 1]" reads in
    Algorithm 1. *)

val pp : Format.formatter -> t -> unit
