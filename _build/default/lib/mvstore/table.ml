type 'a t = { chains : (string, 'a Chain.t) Hashtbl.t }

type put_error = [ `Duplicate_version | `Version_out_of_window ]

let create ?(initial_capacity = 4096) () =
  { chains = Hashtbl.create initial_capacity }

let chain_of t key =
  match Hashtbl.find_opt t.chains key with
  | Some c -> c
  | None ->
      let c = Chain.create () in
      Hashtbl.add t.chains key c;
      c

let put_unchecked t ~key ~version payload =
  match Chain.insert (chain_of t key) ~version payload with
  | Ok () -> Ok ()
  | Error `Duplicate -> Error `Duplicate_version

let put t ~key ~version ~lo ~hi payload =
  if version < lo || version > hi then Error `Version_out_of_window
  else put_unchecked t ~key ~version payload

let chain t key = Hashtbl.find_opt t.chains key

let find_le t ~key ~version =
  match Hashtbl.find_opt t.chains key with
  | None -> None
  | Some c -> Chain.find_le c ~version

let update t ~key ~version payload =
  match Hashtbl.find_opt t.chains key with
  | None -> false
  | Some c -> Chain.update c ~version payload

let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t.chains []

let key_count t = Hashtbl.length t.chains

let record_count t =
  Hashtbl.fold (fun _ c acc -> acc + Chain.length c) t.chains 0
