lib/mvstore/table.ml: Chain Hashtbl
