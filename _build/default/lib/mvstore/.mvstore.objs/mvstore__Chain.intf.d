lib/mvstore/chain.mli:
