lib/mvstore/chain.ml: Array List
