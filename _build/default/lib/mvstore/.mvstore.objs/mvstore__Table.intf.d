lib/mvstore/table.mli: Chain
