(** One partition's key → version-chain table.

    A [Table.t] is the storage component of a backend (BE).  [put] enforces
    the §III-D contract: the version of a new record must lie inside the
    caller-supplied validity window (the current write epoch, or the
    straggler-optimisation window).  Visibility (in-epoch vs out-epoch) is
    enforced by the read path in the functor layer, which supplies the
    epoch-start bound. *)

type 'a t

type put_error =
  [ `Duplicate_version  (** the (key, version) pair already exists *)
  | `Version_out_of_window  (** version outside the allowed window *) ]

val create : ?initial_capacity:int -> unit -> 'a t

val put :
  'a t -> key:string -> version:int -> lo:int -> hi:int -> 'a ->
  (unit, put_error) result
(** Insert a new version for a key; [lo]/[hi] bound the acceptable version
    range (inclusive). *)

val put_unchecked : 'a t -> key:string -> version:int -> 'a ->
  (unit, [ `Duplicate_version ]) result
(** Insert without a window check — used for loading initial data at
    version zero and for deferred (dependent-key) writes, whose version was
    validated when the determinate functor was installed. *)

val chain : 'a t -> string -> 'a Chain.t option
(** The key's chain, if the key has ever been written. *)

val find_le : 'a t -> key:string -> version:int -> (int * 'a) option

val update : 'a t -> key:string -> version:int -> 'a -> bool

val keys : 'a t -> string list
(** All keys (unordered); test/debug helper. *)

val key_count : 'a t -> int

val record_count : 'a t -> int
(** Total versions across all keys. *)
