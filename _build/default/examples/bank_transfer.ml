(* The paper's Figure 5 walked through end to end: three consecutive
   transactions over two accounts, the third aborting on insufficient
   funds — no locks, no read-write conflicts, serializable.

   Run with:  dune exec examples/bank_transfer.exe *)

module Value = Functor_cc.Value
module Registry = Functor_cc.Registry
module Txn = Alohadb.Txn
module Cluster = Alohadb.Cluster

(* The guarded transfer of Figure 5 (T3): both functors read account A and
   reach the same abort decision, so the transaction is atomic. *)
let guarded_transfer (ctx : Registry.ctx) =
  let amount = Value.to_int (Registry.arg ctx 0) in
  let delta = Value.to_int (Registry.arg ctx 1) in
  let a_balance =
    match Registry.read ctx "acct:A" with
    | Some v -> Value.to_int v
    | None -> 0
  in
  if a_balance < amount then Registry.Abort
  else begin
    let own =
      match Registry.read ctx ctx.Registry.key with
      | Some v -> Value.to_int v
      | None -> 0
    in
    Registry.Commit (Value.int (own + delta))
  end

let transfer amount =
  Txn.read_write
    [ ("acct:A",
       Txn.Call
         { handler = "guarded_transfer"; read_set = [ "acct:A" ];
           args = [ Value.int amount; Value.int (-amount) ] });
      ("acct:B",
       Txn.Call
         { handler = "guarded_transfer"; read_set = [ "acct:A"; "acct:B" ];
           args = [ Value.int amount; Value.int amount ] }) ]

let await cluster ~fe request =
  let result = ref None in
  Cluster.submit cluster ~fe request (fun r -> result := Some r);
  let rec spin () =
    match !result with
    | Some r -> r
    | None ->
        Cluster.run_for cluster 5_000;
        spin ()
  in
  spin ()

let show cluster label =
  match await cluster ~fe:0 (Txn.Read_only { keys = [ "acct:A"; "acct:B" ] }) with
  | Txn.Values kvs ->
      let v k =
        match List.assoc k kvs with
        | Some v -> Value.to_string v
        | None -> "⊥"
      in
      Format.printf "%-28s A=%s B=%s@." label (v "acct:A") (v "acct:B")
  | r -> Format.printf "unexpected: %a@." Txn.pp_result r

let () =
  let registry = Registry.with_builtins () in
  Registry.register registry "guarded_transfer" guarded_transfer;
  let cluster =
    Cluster.create ~registry { Cluster.default_options with n_servers = 2 }
  in
  Cluster.start cluster;

  (* T1: multi-write $150 to A, $100 to B. *)
  ignore
    (await cluster ~fe:0
       (Txn.read_write
          [ ("acct:A", Txn.Put (Value.int 150));
            ("acct:B", Txn.Put (Value.int 100)) ]));
  show cluster "after T1 (deposit):";

  (* T2: transfer $100 from A to B, unconditionally (SUB/ADD functors). *)
  ignore
    (await cluster ~fe:1
       (Txn.read_write
          [ ("acct:A", Txn.Subtr 100); ("acct:B", Txn.Add 100) ]));
  show cluster "after T2 (transfer 100):";

  (* T3: transfer $100 from A to B only if A keeps a non-negative
     balance — A holds $50, so the functor computing phase aborts. *)
  (match await cluster ~fe:0 (transfer 100) with
  | Txn.Aborted { stage = `Compute; _ } ->
      Format.printf "T3 aborted in the computing phase (insufficient funds)@."
  | r -> Format.printf "unexpected: %a@." Txn.pp_result r);
  show cluster "after T3 (aborted):"
