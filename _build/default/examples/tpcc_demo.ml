(* TPC-C on ALOHA-DB and Calvin side by side: a small cluster, a burst of
   NewOrder transactions, throughput and the paper's headline ratio.

   Run with:  dune exec examples/tpcc_demo.exe *)

let () =
  let n = 4 in
  Format.printf "TPC-C NewOrder, %d servers, 1 warehouse per host@." n;
  Format.printf "(distributed transactions, 1%% invalid-item aborts)@.@.";

  let { Harness.Setup.a_cluster; a_gen } =
    Harness.Setup.aloha_tpcc ~n ~warehouses_per_host:1 ~kind:`NewOrder ()
  in
  let aloha =
    Harness.Driver.run_aloha ~cluster:a_cluster ~gen:a_gen
      ~arrival:(Harness.Arrivals.Closed { clients_per_fe = 1_000 })
      ~warmup_us:75_000 ~measure_us:100_000 ()
  in
  Format.printf "ALOHA-DB : %a@." Harness.Driver.pp_result aloha;
  List.iter
    (fun (stage, us) ->
      Format.printf "           %-22s %6.2f ms@." stage (us /. 1000.0))
    aloha.Harness.Driver.stages;

  let { Harness.Setup.c_cluster; c_gen } =
    Harness.Setup.calvin_tpcc ~n ~warehouses_per_host:1 ~kind:`NewOrder ()
  in
  let calvin =
    Harness.Driver.run_calvin ~cluster:c_cluster ~gen:c_gen
      ~arrival:(Harness.Arrivals.Closed { clients_per_fe = 300 })
      ~warmup_us:75_000 ~measure_us:100_000 ()
  in
  Format.printf "@.Calvin   : %a@." Harness.Driver.pp_result calvin;
  List.iter
    (fun (stage, us) ->
      Format.printf "           %-22s %6.2f ms@." stage (us /. 1000.0))
    calvin.Harness.Driver.stages;

  Format.printf "@.speedup  : %.1fx (paper reports 13-112x depending on scale)@."
    (aloha.Harness.Driver.throughput_tps /. calvin.Harness.Driver.throughput_tps);
  Format.printf "aborts   : ALOHA %d installed-phase aborts (the required 1%%), Calvin %d (cannot abort)@."
    aloha.Harness.Driver.aborted_install calvin.Harness.Driver.aborted_install
