(* Dependent transactions (§IV-E): an order counter assigns sequential
   ids during the functor computing phase, and the order rows — whose key
   names depend on the assigned id — are emitted as deferred writes of the
   determinate functor.  No two orders ever get the same id, with zero
   aborts, even under heavy contention on the counter.

   Run with:  dune exec examples/dependent_orders.exe *)

module Value = Functor_cc.Value
module Registry = Functor_cc.Registry
module Txn = Alohadb.Txn
module Cluster = Alohadb.Cluster

(* Determinate functor on the counter key: reads the counter, emits the
   order row keyed by the id it just assigned. *)
let place_order (ctx : Registry.ctx) =
  let customer = Value.to_str (Registry.arg ctx 0) in
  match Registry.read ctx ctx.Registry.key with
  | None -> Registry.Abort
  | Some counter ->
      let id = Value.to_int counter in
      Registry.Commit_det
        ( Value.int (id + 1),
          [ (Printf.sprintf "order:%d:row" id,
             Registry.Dep_put (Value.str customer)) ] )

let () =
  let registry = Registry.with_builtins () in
  Registry.register registry "place_order" place_order;
  let cluster =
    Cluster.create ~registry { Cluster.default_options with n_servers = 3 }
  in
  Cluster.load cluster ~key:"order:counter" (Value.int 1);
  Cluster.start cluster;

  (* 60 concurrent order placements from all three frontends, all hitting
     the same counter key. *)
  let committed = ref 0 in
  let sim = Cluster.sim cluster in
  for i = 0 to 59 do
    Sim.Engine.schedule sim ~at:(1_000 + (i * 200)) (fun () ->
        Cluster.submit cluster ~fe:(i mod 3)
          (Txn.read_write
             [ ("order:counter",
                Txn.Det
                  { handler = "place_order";
                    read_set = [ "order:counter" ];
                    args = [ Value.str (Printf.sprintf "customer-%d" i) ];
                    dependents = [] }) ])
          (function
            | Txn.Committed _ -> incr committed
            | r -> Format.printf "unexpected: %a@." Txn.pp_result r))
  done;
  Sim.Engine.run ~until:300_000 sim;
  Format.printf "committed: %d / 60 (no aborts despite a single hot key)@."
    !committed;

  (* Every id 1..60 was assigned exactly once. *)
  let read_row id =
    let result = ref None in
    Cluster.submit cluster ~fe:0
      (Txn.Read_at
         { keys = [ Printf.sprintf "order:%d:row" id ];
           version = Clocksync.Timestamp.to_int Clocksync.Timestamp.infinity })
      (fun r -> result := Some r);
    let rec spin () =
      match !result with
      | Some r -> r
      | None ->
          Cluster.run_for cluster 5_000;
          spin ()
    in
    spin ()
  in
  let assigned = ref 0 in
  for id = 1 to 60 do
    match read_row id with
    | Txn.Values [ (_, Some _) ] -> incr assigned
    | _ -> ()
  done;
  Format.printf "order ids assigned exactly once: %d / 60@." !assigned
