(* A miniature of the paper's Figure 9: YCSB-like microbenchmark
   throughput as the contention index rises.  ALOHA-DB stays flat — its
   key-level concurrency control never blocks on hot keys — while Calvin's
   single-threaded lock manager collapses.

   Run with:  dune exec examples/ycsb_contention.exe *)

let () =
  let n = 4 in
  Format.printf
    "YCSB read-modify-write, %d servers, 10 keys/txn, 2 partitions/txn@.@."
    n;
  Format.printf "%-12s %-14s %-14s@." "CI" "ALOHA (txn/s)" "Calvin (txn/s)";
  List.iter
    (fun ci ->
      let { Harness.Setup.a_cluster; a_gen } =
        Harness.Setup.aloha_ycsb ~n ~ci ~keys_per_partition:20_000 ()
      in
      let aloha =
        Harness.Driver.run_aloha ~cluster:a_cluster ~gen:a_gen
          ~arrival:(Harness.Arrivals.Closed { clients_per_fe = 1_200 })
          ~warmup_us:60_000 ~measure_us:80_000 ()
      in
      let { Harness.Setup.c_cluster; c_gen } =
        Harness.Setup.calvin_ycsb ~n ~ci ~keys_per_partition:20_000 ()
      in
      let calvin =
        Harness.Driver.run_calvin ~cluster:c_cluster ~gen:c_gen
          ~arrival:(Harness.Arrivals.Closed { clients_per_fe = 300 })
          ~warmup_us:60_000 ~measure_us:80_000 ()
      in
      Format.printf "%-12g %-14.0f %-14.0f@." ci
        aloha.Harness.Driver.throughput_tps
        calvin.Harness.Driver.throughput_tps)
    [ 0.0001; 0.001; 0.01; 0.1 ]
