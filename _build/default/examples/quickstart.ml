(* Quickstart: bring up a 2-server ALOHA-DB, write, transfer, read.

   Run with:  dune exec examples/quickstart.exe *)

module Value = Functor_cc.Value
module Txn = Alohadb.Txn
module Cluster = Alohadb.Cluster

(* Submit a request and pump the simulation until its result arrives. *)
let await cluster ~fe request =
  let result = ref None in
  Cluster.submit cluster ~fe request (fun r -> result := Some r);
  let rec spin () =
    match !result with
    | Some r -> r
    | None ->
        Cluster.run_for cluster 5_000;
        spin ()
  in
  spin ()

let () =
  (* A 2-server deployment with default epoch length (25 ms). *)
  let cluster =
    Cluster.create { Cluster.default_options with n_servers = 2 }
  in
  Cluster.start cluster;

  (* 1. A blind multi-write (write-only transaction, pure ECC). *)
  (match
     await cluster ~fe:0
       (Txn.read_write
          [ ("acct:alice", Txn.Put (Value.int 150));
            ("acct:bob", Txn.Put (Value.int 100)) ])
   with
  | Txn.Committed { ts } ->
      Format.printf "initial deposit committed at %a@."
        Clocksync.Timestamp.pp ts
  | r -> Format.printf "unexpected: %a@." Txn.pp_result r);

  (* 2. A read-write transaction: two numeric functors, no locks taken,
     computed asynchronously after the epoch closes. *)
  (match
     await cluster ~fe:1
       (Txn.read_write
          [ ("acct:alice", Txn.Subtr 50); ("acct:bob", Txn.Add 50) ])
   with
  | Txn.Committed _ -> Format.printf "transfer committed@."
  | r -> Format.printf "unexpected: %a@." Txn.pp_result r);

  (* 3. A latest-version read-only transaction: assigned a timestamp in
     the current epoch and served as a historical read one epoch later. *)
  (match
     await cluster ~fe:0 (Txn.Read_only { keys = [ "acct:alice"; "acct:bob" ] })
   with
  | Txn.Values kvs ->
      List.iter
        (fun (k, v) ->
          match v with
          | Some v -> Format.printf "%s = %a@." k Value.pp v
          | None -> Format.printf "%s = ⊥@." k)
        kvs
  | r -> Format.printf "unexpected: %a@." Txn.pp_result r)
