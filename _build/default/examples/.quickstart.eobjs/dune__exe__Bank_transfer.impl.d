examples/bank_transfer.ml: Alohadb Format Functor_cc List
