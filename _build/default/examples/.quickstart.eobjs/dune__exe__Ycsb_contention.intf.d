examples/ycsb_contention.mli:
