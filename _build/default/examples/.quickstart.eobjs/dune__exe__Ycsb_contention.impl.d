examples/ycsb_contention.ml: Format Harness List
