examples/dependent_orders.mli:
