examples/quickstart.mli:
