examples/quickstart.ml: Alohadb Clocksync Format Functor_cc List
