examples/dependent_orders.ml: Alohadb Clocksync Format Functor_cc Printf Sim
