examples/tpcc_demo.ml: Format Harness List
