(* Multi-version storage: chains and tables. *)

module Chain = Mvstore.Chain
module Table = Mvstore.Table

let test_chain_insert_find () =
  let c : string Chain.t = Chain.create () in
  List.iter
    (fun (v, s) ->
      match Chain.insert c ~version:v s with
      | Ok () -> ()
      | Error `Duplicate -> Alcotest.fail "unexpected duplicate")
    [ (10, "a"); (30, "c"); (20, "b") ];
  Alcotest.(check (list int)) "sorted" [ 10; 20; 30 ] (Chain.versions c);
  (match Chain.find_le c ~version:25 with
  | Some (20, "b") -> ()
  | Some (v, s) -> Alcotest.failf "got (%d,%s)" v s
  | None -> Alcotest.fail "missing");
  Alcotest.(check (option string)) "below first" None
    (Option.map snd (Chain.find_le c ~version:9));
  (match Chain.find_le c ~version:30 with
  | Some (30, "c") -> ()
  | _ -> Alcotest.fail "exact bound");
  (match Chain.find_le c ~version:1000 with
  | Some (30, "c") -> ()
  | _ -> Alcotest.fail "above all")

let test_chain_duplicate () =
  let c : int Chain.t = Chain.create () in
  (match Chain.insert c ~version:5 1 with Ok () -> () | Error _ -> assert false);
  (match Chain.insert c ~version:5 2 with
  | Error `Duplicate -> ()
  | Ok () -> Alcotest.fail "duplicate accepted");
  Alcotest.(check (option int)) "original kept" (Some 1)
    (Chain.find_exact c ~version:5)

let test_chain_update () =
  let c : int Chain.t = Chain.create () in
  ignore (Chain.insert c ~version:5 1);
  Alcotest.(check bool) "update hits" true (Chain.update c ~version:5 9);
  Alcotest.(check (option int)) "updated" (Some 9) (Chain.find_exact c ~version:5);
  Alcotest.(check bool) "update misses" false (Chain.update c ~version:6 0)

let test_chain_watermark_monotone () =
  let c : int Chain.t = Chain.create () in
  Alcotest.(check int) "initial" (-1) (Chain.watermark c);
  Chain.advance_watermark c 10;
  Chain.advance_watermark c 5;
  Alcotest.(check int) "monotone" 10 (Chain.watermark c)

let test_chain_iter_range () =
  let c : int Chain.t = Chain.create () in
  List.iter (fun v -> ignore (Chain.insert c ~version:v v)) [ 1; 3; 5; 7; 9 ];
  let got = ref [] in
  Chain.iter_range c ~lo:3 ~hi:7 (fun v _ -> got := v :: !got);
  Alcotest.(check (list int)) "inclusive range" [ 3; 5; 7 ] (List.rev !got);
  let got = ref [] in
  Chain.iter_range c ~lo:4 ~hi:4 (fun v _ -> got := v :: !got);
  Alcotest.(check (list int)) "empty range" [] !got

let test_chain_find_next_after () =
  let c : int Chain.t = Chain.create () in
  List.iter (fun v -> ignore (Chain.insert c ~version:v v)) [ 10; 20 ];
  (match Chain.find_next_after c ~version:10 with
  | Some (20, _) -> ()
  | _ -> Alcotest.fail "next after 10");
  (match Chain.find_next_after c ~version:5 with
  | Some (10, _) -> ()
  | _ -> Alcotest.fail "next after 5");
  Alcotest.(check bool) "nothing after last" true
    (Chain.find_next_after c ~version:20 = None)

let test_table_window () =
  let t : int Table.t = Table.create () in
  (match Table.put t ~key:"k" ~version:50 ~lo:10 ~hi:100 1 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "in-window put");
  (match Table.put t ~key:"k" ~version:5 ~lo:10 ~hi:100 2 with
  | Error `Version_out_of_window -> ()
  | _ -> Alcotest.fail "below window accepted");
  (match Table.put t ~key:"k" ~version:101 ~lo:10 ~hi:100 3 with
  | Error `Version_out_of_window -> ()
  | _ -> Alcotest.fail "above window accepted");
  (match Table.put t ~key:"k" ~version:50 ~lo:10 ~hi:100 4 with
  | Error `Duplicate_version -> ()
  | _ -> Alcotest.fail "duplicate accepted")

let test_table_counts () =
  let t : int Table.t = Table.create () in
  ignore (Table.put_unchecked t ~key:"a" ~version:1 1);
  ignore (Table.put_unchecked t ~key:"a" ~version:2 2);
  ignore (Table.put_unchecked t ~key:"b" ~version:1 3);
  Alcotest.(check int) "keys" 2 (Table.key_count t);
  Alcotest.(check int) "records" 3 (Table.record_count t);
  Alcotest.(check (option (pair int int))) "find_le" (Some (2, 2))
    (Table.find_le t ~key:"a" ~version:99)

(* qcheck: chain behaves like a reference sorted association list. *)
let prop_chain_matches_reference =
  let gen =
    QCheck2.Gen.(list_size (int_range 1 200) (int_range 0 300))
  in
  QCheck2.Test.make ~name:"chain = reference model" ~count:300 gen
    (fun versions ->
      let c : int Chain.t = Chain.create () in
      let reference = Hashtbl.create 64 in
      List.iter
        (fun v ->
          match Chain.insert c ~version:v v with
          | Ok () ->
              if Hashtbl.mem reference v then raise Exit;
              Hashtbl.add reference v v
          | Error `Duplicate ->
              if not (Hashtbl.mem reference v) then raise Exit)
        versions;
      (* versions sorted & deduplicated *)
      let expected =
        Hashtbl.fold (fun v _ acc -> v :: acc) reference []
        |> List.sort compare
      in
      if Chain.versions c <> expected then false
      else begin
        (* find_le agrees with the reference for probe points *)
        List.for_all
          (fun probe ->
            let want =
              List.filter (fun v -> v <= probe) expected
              |> List.fold_left (fun acc v -> max acc v) (-1)
            in
            match Chain.find_le c ~version:probe with
            | None -> want = -1
            | Some (v, _) -> v = want)
          [ 0; 50; 150; 299; 1000 ]
      end)

let suite =
  [ Alcotest.test_case "chain insert/find" `Quick test_chain_insert_find;
    Alcotest.test_case "chain duplicate" `Quick test_chain_duplicate;
    Alcotest.test_case "chain update" `Quick test_chain_update;
    Alcotest.test_case "chain watermark" `Quick test_chain_watermark_monotone;
    Alcotest.test_case "chain iter_range" `Quick test_chain_iter_range;
    Alcotest.test_case "chain find_next_after" `Quick
      test_chain_find_next_after;
    Alcotest.test_case "table window" `Quick test_table_window;
    Alcotest.test_case "table counts" `Quick test_table_counts;
    QCheck_alcotest.to_alcotest prop_chain_matches_reference ]
