(* Clocks and timestamps. *)

module Ts = Clocksync.Timestamp

let test_ts_pack_roundtrip () =
  let t = Ts.make ~time_us:123_456 ~node:17 ~seq:42 in
  Alcotest.(check int) "time" 123_456 (Ts.time_us t);
  Alcotest.(check int) "node" 17 (Ts.node t);
  Alcotest.(check int) "seq" 42 (Ts.seq t)

let test_ts_ordering () =
  let a = Ts.make ~time_us:100 ~node:5 ~seq:0 in
  let b = Ts.make ~time_us:100 ~node:5 ~seq:1 in
  let c = Ts.make ~time_us:100 ~node:6 ~seq:0 in
  let d = Ts.make ~time_us:101 ~node:0 ~seq:0 in
  Alcotest.(check bool) "seq orders" true Ts.(a < b);
  Alcotest.(check bool) "node orders above seq" true Ts.(b < c);
  Alcotest.(check bool) "time dominates" true Ts.(c < d);
  Alcotest.(check bool) "zero below all" true Ts.(Ts.zero < a);
  Alcotest.(check bool) "infinity above all" true Ts.(d < Ts.infinity)

let test_ts_windows () =
  let lo = Ts.window_lo ~time_us:500 in
  let hi = Ts.window_hi ~time_us:500 in
  Alcotest.(check int) "lo time" 500 (Ts.time_us lo);
  Alcotest.(check int) "hi time" 500 (Ts.time_us hi);
  let mid = Ts.make ~time_us:500 ~node:3 ~seq:7 in
  Alcotest.(check bool) "lo <= mid <= hi" true Ts.(lo <= mid && mid <= hi);
  let above = Ts.make ~time_us:501 ~node:0 ~seq:0 in
  Alcotest.(check bool) "hi < next microsecond" true Ts.(hi < above)

let test_ts_field_validation () =
  Alcotest.check_raises "node too big" (Invalid_argument "Timestamp.make: node")
    (fun () -> ignore (Ts.make ~time_us:0 ~node:(1 lsl Ts.node_bits) ~seq:0));
  Alcotest.check_raises "negative time"
    (Invalid_argument "Timestamp.make: negative time") (fun () ->
      ignore (Ts.make ~time_us:(-1) ~node:0 ~seq:0))

let test_clock_offset_and_drift () =
  let e = Sim.Engine.create () in
  let c = Clocksync.Node_clock.create e ~offset_us:500 ~drift_ppm:1000.0 () in
  Alcotest.(check int) "initial offset" 500 (Clocksync.Node_clock.now c);
  Sim.Engine.schedule e ~at:1_000_000 (fun () ->
      (* 1 s elapsed at +1000 ppm = +1 ms drift on top of the offset *)
      Alcotest.(check int) "offset + drift" 1_001_500
        (Clocksync.Node_clock.now c));
  Sim.Engine.run e

let test_clock_sync_clamps () =
  let e = Sim.Engine.create () in
  let c = Clocksync.Node_clock.create e ~offset_us:5_000 () in
  Clocksync.Node_clock.sync c ~error_bound_us:100;
  Alcotest.(check bool) "offset clamped" true
    (abs (Clocksync.Node_clock.offset c) <= 100)

let test_clock_monotone_through_sync () =
  let e = Sim.Engine.create () in
  let c = Clocksync.Node_clock.create e ~offset_us:5_000 () in
  let before = Clocksync.Node_clock.now c in
  (* Sync steps the raw clock backwards by ~5 ms; reading must not go
     back. *)
  Clocksync.Node_clock.sync c ~error_bound_us:0;
  let after = Clocksync.Node_clock.now c in
  Alcotest.(check bool) "monotone" true (after >= before)

let test_sync_daemon () =
  let e = Sim.Engine.create () in
  let c = Clocksync.Node_clock.create e ~offset_us:0 ~drift_ppm:10_000.0 () in
  Clocksync.Node_clock.start_sync_daemon c ~period_us:10_000 ~error_bound_us:50;
  Sim.Engine.schedule e ~at:1_000_000 (fun () ->
      (* Drift accumulates 100 µs per 10 ms period, but each sync clamps
         the error back to 50 µs. *)
      Alcotest.(check bool) "error bounded by sync daemon" true
        (abs (Clocksync.Node_clock.offset c) <= 200));
  (* The daemon reschedules forever; bound the run. *)
  Sim.Engine.run ~until:1_000_001 e

let test_ts_source_strictly_increasing () =
  let e = Sim.Engine.create () in
  let clk = Clocksync.Node_clock.perfect e in
  let src = Clocksync.Ts_source.create clk ~node:3 in
  let prev = ref Ts.zero in
  for _ = 1 to 10_000 do
    match Clocksync.Ts_source.next src ~lo:0 ~hi:1_000_000 with
    | Some ts ->
        Alcotest.(check bool) "strictly increasing" true Ts.(!prev < ts);
        prev := ts
    | None -> Alcotest.fail "window exhausted unexpectedly"
  done

let test_ts_source_clamps_to_window () =
  let e = Sim.Engine.create () in
  let clk = Clocksync.Node_clock.perfect e in
  let src = Clocksync.Ts_source.create clk ~node:3 in
  (* Clock is at 0; the window starts later — timestamps clamp up to lo. *)
  (match Clocksync.Ts_source.next src ~lo:5_000 ~hi:6_000 with
  | Some ts -> Alcotest.(check int) "clamped to lo" 5_000 (Ts.time_us ts)
  | None -> Alcotest.fail "should issue");
  Sim.Engine.schedule e ~at:9_000 (fun () ->
      (* Clock beyond hi: clamp down to hi, drawing on the seq space. *)
      match Clocksync.Ts_source.next src ~lo:5_000 ~hi:6_000 with
      | Some ts -> Alcotest.(check int) "clamped to hi" 6_000 (Ts.time_us ts)
      | None -> Alcotest.fail "seq space should remain");
  Sim.Engine.run e

let test_ts_source_window_exhaustion () =
  let e = Sim.Engine.create () in
  let clk = Clocksync.Node_clock.perfect e in
  let src = Clocksync.Ts_source.create clk ~node:3 in
  Sim.Engine.schedule e ~at:100 (fun () ->
      (* A one-microsecond window at a past instant: only the 4096-deep
         sequence space is available, then None. *)
      let issued = ref 0 in
      let rec drain () =
        match Clocksync.Ts_source.next src ~lo:10 ~hi:10 with
        | Some _ ->
            incr issued;
            drain ()
        | None -> ()
      in
      drain ();
      Alcotest.(check int) "seq space" (1 lsl Ts.seq_bits) !issued);
  Sim.Engine.run e

(* qcheck: every issued timestamp lies inside the requested window and is
   unique across two sources with different node ids. *)
let prop_ts_in_window_and_unique =
  QCheck2.Test.make ~name:"ts_source window + uniqueness" ~count:100
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 0 5_000))
    (fun (lo, width) ->
      let hi = lo + width in
      let e = Sim.Engine.create () in
      let clk = Clocksync.Node_clock.perfect e in
      let s1 = Clocksync.Ts_source.create clk ~node:1 in
      let s2 = Clocksync.Ts_source.create clk ~node:2 in
      let all = Hashtbl.create 64 in
      let ok = ref true in
      for _ = 1 to 50 do
        List.iter
          (fun src ->
            match Clocksync.Ts_source.next src ~lo ~hi with
            | Some ts ->
                let t = Ts.time_us ts in
                if t < lo || t > hi then ok := false;
                if Hashtbl.mem all (Ts.to_int ts) then ok := false;
                Hashtbl.add all (Ts.to_int ts) ()
            | None -> ())
          [ s1; s2 ]
      done;
      !ok)

let suite =
  [ Alcotest.test_case "ts pack roundtrip" `Quick test_ts_pack_roundtrip;
    Alcotest.test_case "ts ordering" `Quick test_ts_ordering;
    Alcotest.test_case "ts windows" `Quick test_ts_windows;
    Alcotest.test_case "ts field validation" `Quick test_ts_field_validation;
    Alcotest.test_case "clock offset+drift" `Quick test_clock_offset_and_drift;
    Alcotest.test_case "clock sync clamps" `Quick test_clock_sync_clamps;
    Alcotest.test_case "clock monotone" `Quick test_clock_monotone_through_sync;
    Alcotest.test_case "sync daemon" `Quick test_sync_daemon;
    Alcotest.test_case "ts_source increasing" `Quick
      test_ts_source_strictly_increasing;
    Alcotest.test_case "ts_source clamps" `Quick test_ts_source_clamps_to_window;
    Alcotest.test_case "ts_source exhaustion" `Quick
      test_ts_source_window_exhaustion;
    QCheck_alcotest.to_alcotest prop_ts_in_window_and_unique ]
