(* Calvin baseline: lock-manager unit tests plus whole-cluster runs. *)

module Value = Functor_cc.Value
module LM = Calvin.Lock_manager

(* ---- lock manager ---------------------------------------------------- *)

let test_lm_uncontended () =
  let ready = ref [] in
  let lm = LM.create ~on_ready:(fun uid -> ready := uid :: !ready) in
  LM.request lm ~uid:1 ~keys:[ ("a", LM.Write); ("b", LM.Read) ];
  Alcotest.(check (list int)) "granted immediately" [ 1 ] !ready

let test_lm_write_write_conflict () =
  let ready = ref [] in
  let lm = LM.create ~on_ready:(fun uid -> ready := uid :: !ready) in
  LM.request lm ~uid:1 ~keys:[ ("a", LM.Write) ];
  LM.request lm ~uid:2 ~keys:[ ("a", LM.Write) ];
  Alcotest.(check (list int)) "only first granted" [ 1 ] !ready;
  LM.release lm ~uid:1;
  Alcotest.(check (list int)) "second granted on release" [ 2; 1 ] !ready

let test_lm_shared_reads () =
  let ready = ref [] in
  let lm = LM.create ~on_ready:(fun uid -> ready := uid :: !ready) in
  LM.request lm ~uid:1 ~keys:[ ("a", LM.Read) ];
  LM.request lm ~uid:2 ~keys:[ ("a", LM.Read) ];
  LM.request lm ~uid:3 ~keys:[ ("a", LM.Write) ];
  Alcotest.(check (list int)) "reads share" [ 2; 1 ] !ready;
  LM.release lm ~uid:1;
  Alcotest.(check (list int)) "write still blocked" [ 2; 1 ] !ready;
  LM.release lm ~uid:2;
  Alcotest.(check (list int)) "write granted last" [ 3; 2; 1 ] !ready

let test_lm_fifo_no_starvation () =
  let ready = ref [] in
  let lm = LM.create ~on_ready:(fun uid -> ready := uid :: !ready) in
  LM.request lm ~uid:1 ~keys:[ ("a", LM.Read) ];
  LM.request lm ~uid:2 ~keys:[ ("a", LM.Write) ];
  (* A later read must NOT jump the queued write (deterministic order). *)
  LM.request lm ~uid:3 ~keys:[ ("a", LM.Read) ];
  Alcotest.(check (list int)) "read 3 waits behind write" [ 1 ] !ready;
  LM.release lm ~uid:1;
  Alcotest.(check (list int)) "write next" [ 2; 1 ] !ready;
  LM.release lm ~uid:2;
  Alcotest.(check (list int)) "read 3 last" [ 3; 2; 1 ] !ready

let test_lm_duplicate_keys_coalesce () =
  let ready = ref [] in
  let lm = LM.create ~on_ready:(fun uid -> ready := uid :: !ready) in
  LM.request lm ~uid:1 ~keys:[ ("a", LM.Read); ("a", LM.Write) ];
  Alcotest.(check (list int)) "granted once" [ 1 ] !ready;
  Alcotest.(check (list int)) "single holder" [ 1 ] (LM.holders lm "a");
  LM.release lm ~uid:1;
  Alcotest.(check int) "queue empty" 0 (LM.waiting lm "a")

(* ---- cluster ---------------------------------------------------------- *)

let mk_cluster ?(n = 2) () =
  let options = { Calvin.Cluster.default_options with n_servers = n } in
  let c = Calvin.Cluster.create options in
  Calvin.Cluster.start c;
  c

let incr_txn keys =
  { Calvin.Ctxn.proc = "incr_all"; read_set = keys; write_set = keys;
    args = [ Value.int 1 ] }

let test_calvin_single_partition () =
  let c = mk_cluster () in
  Calvin.Cluster.load c ~key:"k0" (Value.int 10);
  let fe = Calvin.Cluster.partition_of c "k0" in
  Calvin.Cluster.submit c ~fe (incr_txn [ "k0" ]);
  Calvin.Cluster.run_for c 100_000;
  let v = Calvin.Server.read_local (Calvin.Cluster.server c fe) "k0" in
  Alcotest.(check int) "incremented" 11
    (Value.to_int (Option.get v));
  Alcotest.(check int) "committed" 1
    (Sim.Metrics.get (Calvin.Cluster.metrics c) "calvin.committed")

let test_calvin_distributed () =
  let c = mk_cluster () in
  (* Find two keys on different partitions. *)
  let k0 = "alpha" in
  let p0 = Calvin.Cluster.partition_of c k0 in
  let rec find_other i =
    let k = Printf.sprintf "key%d" i in
    if Calvin.Cluster.partition_of c k <> p0 then k else find_other (i + 1)
  in
  let k1 = find_other 0 in
  let p1 = Calvin.Cluster.partition_of c k1 in
  Alcotest.(check bool) "keys on distinct partitions" true (p0 <> p1);
  Calvin.Cluster.load c ~key:k0 (Value.int 0);
  Calvin.Cluster.load c ~key:k1 (Value.int 100);
  Calvin.Cluster.submit c ~fe:0 (incr_txn [ k0; k1 ]);
  Calvin.Cluster.run_for c 200_000;
  let read p k = Calvin.Server.read_local (Calvin.Cluster.server c p) k in
  Alcotest.(check int) "k0" 1 (Value.to_int (Option.get (read p0 k0)));
  Alcotest.(check int) "k1" 101 (Value.to_int (Option.get (read p1 k1)));
  Alcotest.(check int) "committed" 1
    (Sim.Metrics.get (Calvin.Cluster.metrics c) "calvin.committed")

(* Determinism: conflicting increments from different origins must apply
   exactly once each, in some serial order — the final count tells. *)
let test_calvin_conflicting_increments () =
  let c = mk_cluster () in
  Calvin.Cluster.load c ~key:"hot" (Value.int 0);
  let p = Calvin.Cluster.partition_of c "hot" in
  for fe = 0 to 1 do
    for _ = 1 to 25 do
      Calvin.Cluster.submit c ~fe (incr_txn [ "hot" ])
    done
  done;
  Calvin.Cluster.run_for c 1_000_000;
  let v = Calvin.Server.read_local (Calvin.Cluster.server c p) "hot" in
  Alcotest.(check int) "all increments applied" 50
    (Value.to_int (Option.get v));
  Alcotest.(check int) "all committed" 50
    (Sim.Metrics.get (Calvin.Cluster.metrics c) "calvin.committed")

(* Replaying the same submissions yields an identical final state. *)
let test_calvin_deterministic_replay () =
  let run () =
    let c = mk_cluster () in
    List.iter
      (fun k -> Calvin.Cluster.load c ~key:k (Value.int 0))
      [ "a"; "b"; "c"; "d" ];
    Calvin.Cluster.submit c ~fe:0 (incr_txn [ "a"; "b" ]);
    Calvin.Cluster.submit c ~fe:1 (incr_txn [ "b"; "c" ]);
    Calvin.Cluster.submit c ~fe:0 (incr_txn [ "c"; "d" ]);
    Calvin.Cluster.run_for c 500_000;
    List.map
      (fun k ->
        let p = Calvin.Cluster.partition_of c k in
        Value.to_int
          (Option.get (Calvin.Server.read_local (Calvin.Cluster.server c p) k)))
      [ "a"; "b"; "c"; "d" ]
  in
  Alcotest.(check (list int)) "identical states" (run ()) (run ())

let suite =
  [ Alcotest.test_case "lm uncontended" `Quick test_lm_uncontended;
    Alcotest.test_case "lm write-write conflict" `Quick
      test_lm_write_write_conflict;
    Alcotest.test_case "lm shared reads" `Quick test_lm_shared_reads;
    Alcotest.test_case "lm fifo no starvation" `Quick
      test_lm_fifo_no_starvation;
    Alcotest.test_case "lm duplicate keys coalesce" `Quick
      test_lm_duplicate_keys_coalesce;
    Alcotest.test_case "single-partition txn" `Quick
      test_calvin_single_partition;
    Alcotest.test_case "distributed txn" `Quick test_calvin_distributed;
    Alcotest.test_case "conflicting increments" `Quick
      test_calvin_conflicting_increments;
    Alcotest.test_case "deterministic replay" `Quick
      test_calvin_deterministic_replay ]
