(* Cross-engine equivalence: the same YCSB-style increment workload fed to
   ALOHA-DB, Calvin, and 2PL/2PC must leave identical per-key totals —
   increments commute, so any serializable engine reaches the same state.
   Also a model-based qcheck test for Calvin's lock manager. *)

module Value = Functor_cc.Value

let n = 2
let keys = List.init 12 (fun i -> Printf.sprintf "c:%d:%d" (i mod n) i)

(* A deterministic batch of increment transactions: (key indices, delta). *)
let batch =
  let rng = Sim.Rng.create 123 in
  List.init 60 (fun _ ->
      let k1 = Sim.Rng.int rng 12 in
      let k2 = Sim.Rng.int rng 12 in
      let delta = 1 + Sim.Rng.int rng 9 in
      ((k1, k2), delta))

let expected_totals () =
  let totals = Array.make 12 0 in
  List.iter
    (fun ((k1, k2), delta) ->
      totals.(k1) <- totals.(k1) + delta;
      if k2 <> k1 then totals.(k2) <- totals.(k2) + delta)
    batch;
  totals

let txn_keys (k1, k2) =
  List.sort_uniq compare [ List.nth keys k1; List.nth keys k2 ]

let run_aloha () =
  let options =
    { Alohadb.Cluster.default_options with n_servers = n;
      partitioner = `Prefix }
  in
  let c = Alohadb.Cluster.create options in
  List.iter (fun k -> Alohadb.Cluster.load c ~key:k (Value.int 0)) keys;
  Alohadb.Cluster.start c;
  let sim = Alohadb.Cluster.sim c in
  let resolved = ref 0 in
  List.iteri
    (fun i (ks, delta) ->
      Sim.Engine.schedule sim ~at:(1_000 + (i * 400)) (fun () ->
          Alohadb.Cluster.submit c ~fe:(i mod n)
            (Alohadb.Txn.read_write
               (List.map (fun k -> (k, Alohadb.Txn.Add delta)) (txn_keys ks)))
            (fun _ -> incr resolved)))
    batch;
  Sim.Engine.run ~until:500_000 sim;
  Alcotest.(check int) "aloha resolved" 60 !resolved;
  List.map
    (fun k ->
      let engine =
        Alohadb.Server.engine
          (Alohadb.Cluster.server c (Alohadb.Cluster.partition_of c k))
      in
      let got = ref 0 in
      Functor_cc.Compute_engine.get engine ~key:k ~version:max_int (function
        | Some v -> got := Value.to_int v
        | None -> ());
      !got)
    keys

let calvin_txn ks delta =
  { Calvin.Ctxn.proc = "incr_all"; read_set = txn_keys ks;
    write_set = txn_keys ks; args = [ Value.int delta ] }

let run_calvin () =
  let options =
    { Calvin.Cluster.default_options with n_servers = n; partitioner = `Prefix }
  in
  let c = Calvin.Cluster.create options in
  List.iter (fun k -> Calvin.Cluster.load c ~key:k (Value.int 0)) keys;
  Calvin.Cluster.start c;
  let sim = Calvin.Cluster.sim c in
  let resolved = ref 0 in
  List.iteri
    (fun i (ks, delta) ->
      Sim.Engine.schedule sim ~at:(1_000 + (i * 400)) (fun () ->
          Calvin.Cluster.submit c ~fe:(i mod n) (calvin_txn ks delta)
            ~k:(fun () -> incr resolved)))
    batch;
  Sim.Engine.run ~until:800_000 sim;
  Alcotest.(check int) "calvin resolved" 60 !resolved;
  List.map
    (fun k ->
      match
        Calvin.Server.read_local
          (Calvin.Cluster.server c (Calvin.Cluster.partition_of c k))
          k
      with
      | Some v -> Value.to_int v
      | None -> 0)
    keys

let run_twopl () =
  let c = Twopl.Cluster.create { Twopl.Cluster.default_options with n_servers = n } in
  List.iter (fun k -> Twopl.Cluster.load c ~key:k (Value.int 0)) keys;
  let sim = Twopl.Cluster.sim c in
  let resolved = ref 0 in
  List.iteri
    (fun i (ks, delta) ->
      Sim.Engine.schedule sim ~at:(1_000 + (i * 400)) (fun () ->
          Twopl.Cluster.submit c ~fe:(i mod n) (calvin_txn ks delta)
            ~k:(fun () -> incr resolved)))
    batch;
  Sim.Engine.run ~until:3_000_000 sim;
  Alcotest.(check int) "2pl resolved" 60 !resolved;
  List.map
    (fun k ->
      match
        Twopl.Server.read_local
          (Twopl.Cluster.server c (Twopl.Cluster.partition_of c k))
          k
      with
      | Some v -> Value.to_int v
      | None -> 0)
    keys

let test_three_engines_agree () =
  let expected = Array.to_list (expected_totals ()) in
  Alcotest.(check (list int)) "aloha = oracle" expected (run_aloha ());
  Alcotest.(check (list int)) "calvin = oracle" expected (run_calvin ());
  Alcotest.(check (list int)) "2pl = oracle" expected (run_twopl ())

(* ---- model-based lock manager check -------------------------------------- *)

(* Random request/release sequences; invariants checked after each step:
   no write lock shared, readers never coexist with a writer, and every
   transaction eventually becomes ready once conflicts drain. *)
let prop_lock_manager_safety =
  let module LM = Calvin.Lock_manager in
  let step_gen =
    QCheck2.Gen.(
      let* uid = int_range 1 8 in
      let* kind = int_range 0 2 in
      let* key = map (Printf.sprintf "k%d") (int_range 0 3) in
      return (uid, kind, key))
  in
  QCheck2.Test.make ~name:"lock manager safety + liveness" ~count:300
    QCheck2.Gen.(list_size (int_range 1 60) step_gen)
    (fun steps ->
      let ready = Hashtbl.create 8 in
      let lm = LM.create ~on_ready:(fun uid -> Hashtbl.replace ready uid ()) in
      let live = Hashtbl.create 8 in
      let ok = ref true in
      let check_key key =
        let holders = LM.holders lm key in
        (* at most one writer, and a writer excludes everyone else *)
        let writers =
          List.filter
            (fun uid ->
              match Hashtbl.find_opt live uid with
              | Some keys -> List.mem_assoc key keys
                             && List.assoc key keys = LM.Write
              | None -> false)
            holders
        in
        if List.length writers > 1 then ok := false;
        if writers <> [] && List.length holders > 1 then ok := false
      in
      List.iter
        (fun (uid, kind, key) ->
          match kind with
          | 0 when not (Hashtbl.mem live uid) ->
              let keys = [ (key, LM.Read) ] in
              Hashtbl.replace live uid keys;
              LM.request lm ~uid ~keys;
              check_key key
          | 1 when not (Hashtbl.mem live uid) ->
              let keys = [ (key, LM.Write) ] in
              Hashtbl.replace live uid keys;
              LM.request lm ~uid ~keys;
              check_key key
          | 2 when Hashtbl.mem live uid ->
              Hashtbl.remove live uid;
              Hashtbl.remove ready uid;
              LM.release lm ~uid;
              check_key key
          | _ -> ())
        steps;
      (* liveness: release everything still live; everyone must have become
         ready at some point before or during drain *)
      Hashtbl.iter (fun uid _ -> LM.release lm ~uid) live;
      !ok)

let suite =
  [ Alcotest.test_case "three engines agree" `Slow test_three_engines_agree;
    QCheck_alcotest.to_alcotest prop_lock_manager_safety ]
