(* Epoch manager + participant protocol. *)

module Manager = Epoch.Manager
module Participant = Epoch.Participant

type world = {
  sim : Sim.Engine.t;
  manager : Manager.t;
  participants : Participant.t array;
}

let mk ?(n = 3) ?(duration_us = 10_000) ?(straggler_opt = true) () =
  let sim = Sim.Engine.create () in
  let rng = Sim.Rng.create 3 in
  let rpc : Epoch.Protocol.rpc =
    Net.Rpc.create sim rng ~latency:(Net.Latency.constant 100) ()
  in
  let metrics = Sim.Metrics.create () in
  let em_addr = Net.Address.of_int n in
  let participants =
    Array.init n (fun i ->
        Participant.create ~rpc ~addr:(Net.Address.of_int i) ~em:em_addr
          ~clock:(Clocksync.Node_clock.perfect sim) ~straggler_opt ~metrics ())
  in
  let manager =
    Manager.create ~rpc ~addr:em_addr
      ~fes:(List.init n Net.Address.of_int)
      ~clock:(Clocksync.Node_clock.perfect sim)
      ~config:{ Manager.duration_us; lead_us = 500 } ~metrics ()
  in
  { sim; manager; participants }

let run w us = Sim.Engine.run ~until:(Sim.Engine.now w.sim + us) w.sim

let test_epochs_progress () =
  let w = mk () in
  Manager.start w.manager;
  run w 100_000;
  (* ~10 ms epochs over 100 ms: several epochs must have closed. *)
  Alcotest.(check bool) "epochs closed" true (Manager.epochs_closed w.manager >= 5);
  Array.iter
    (fun p ->
      Alcotest.(check int) "participants track the EM"
        (Manager.current_epoch w.manager) (Participant.current_epoch p))
    w.participants

let test_window_validity () =
  let w = mk () in
  Manager.start w.manager;
  run w 5_000;
  (match Participant.window w.participants.(0) with
  | Some win ->
      Alcotest.(check bool) "authorized" true win.Participant.authorized;
      Alcotest.(check bool) "window sane" true
        (win.Participant.lo < win.Participant.hi)
  | None -> Alcotest.fail "no window after grant")

let test_windows_disjoint_across_epochs () =
  let w = mk () in
  Manager.start w.manager;
  (* Sample granted windows over time; validity ranges of different epochs
     must not overlap (serializability depends on it). *)
  let windows = Hashtbl.create 8 in
  let rec sample () =
    (match Participant.window w.participants.(1) with
    | Some win when win.Participant.authorized ->
        Hashtbl.replace windows win.Participant.epoch
          (win.Participant.lo, win.Participant.hi)
    | Some _ | None -> ());
    if Sim.Engine.now w.sim < 80_000 then
      Sim.Engine.after w.sim 500 sample
  in
  Sim.Engine.after w.sim 1000 sample;
  run w 100_000;
  let sorted =
    Hashtbl.fold (fun e (lo, hi) acc -> (e, lo, hi) :: acc) windows []
    |> List.sort compare
  in
  Alcotest.(check bool) "saw several epochs" true (List.length sorted >= 3);
  let rec check = function
    | (_, _, hi1) :: ((_, lo2, _) :: _ as rest) ->
        Alcotest.(check bool) "disjoint and ordered" true (hi1 < lo2);
        check rest
    | [ _ ] | [] -> ()
  in
  check sorted

let test_inflight_delays_switch () =
  let w = mk ~duration_us:10_000 () in
  Manager.start w.manager;
  run w 5_000;
  (* Hold an in-flight transaction on participant 0 for 30 ms: no epoch can
     close while it is outstanding. *)
  let epoch = Participant.current_epoch w.participants.(0) in
  Participant.txn_started w.participants.(0) ~epoch;
  let closed_before = Manager.epochs_closed w.manager in
  run w 30_000;
  Alcotest.(check int) "switch blocked by straggler" closed_before
    (Manager.epochs_closed w.manager);
  Participant.txn_finished w.participants.(0) ~epoch;
  run w 10_000;
  Alcotest.(check bool) "switch resumes" true
    (Manager.epochs_closed w.manager > closed_before)

let test_straggler_window_bound () =
  let w = mk ~duration_us:10_000 ~straggler_opt:true () in
  Manager.start w.manager;
  run w 5_000;
  let p0 = w.participants.(0) in
  let epoch = Participant.current_epoch p0 in
  (* Make participant 1 a straggler so revocation hangs. *)
  Participant.txn_started w.participants.(1)
    ~epoch:(Participant.current_epoch w.participants.(1));
  run w 15_000;
  (* p0 acked its revoke; with the optimisation it may still start txns,
     without authorization, bounded by finish + next duration (§III-C). *)
  (match Participant.window p0 with
  | Some win ->
      Alcotest.(check bool) "not authorized" false win.Participant.authorized;
      Alcotest.(check int) "belongs to next epoch" (epoch + 1)
        win.Participant.epoch;
      (* hi = previous finish + next epoch duration *)
      Alcotest.(check int) "bounded window width" 10_000
        (win.Participant.hi - win.Participant.lo + 1)
  | None -> Alcotest.fail "straggler window expected")

let test_no_straggler_opt_blocks () =
  let w = mk ~duration_us:10_000 ~straggler_opt:false () in
  Manager.start w.manager;
  run w 5_000;
  Participant.txn_started w.participants.(1)
    ~epoch:(Participant.current_epoch w.participants.(1));
  run w 15_000;
  Alcotest.(check bool) "no window without the optimisation" true
    (Participant.window w.participants.(0) = None)

let test_on_closed_fires_in_order () =
  let w = mk () in
  let closed = ref [] in
  Participant.set_hooks w.participants.(0)
    ~on_open:(fun ~epoch:_ ~lo:_ ~hi:_ -> ())
    ~on_closed:(fun ~epoch -> closed := epoch :: !closed);
  Manager.start w.manager;
  run w 60_000;
  let seen = List.rev !closed in
  Alcotest.(check bool) "several closures" true (List.length seen >= 3);
  List.iteri
    (fun i e -> Alcotest.(check int) "consecutive epochs" (i + 1) e)
    seen

let test_noauth_accounted_to_next_epoch () =
  let w = mk ~duration_us:10_000 ~straggler_opt:true () in
  Manager.start w.manager;
  run w 5_000;
  let p0 = w.participants.(0) and p1 = w.participants.(1) in
  Participant.txn_started p1 ~epoch:(Participant.current_epoch p1);
  run w 15_000;
  (* p0 starts a transaction without authorization under epoch e+1. *)
  (match Participant.window p0 with
  | Some win ->
      Participant.txn_started p0 ~epoch:win.Participant.epoch;
      Alcotest.(check int) "counted under next epoch" 1
        (Participant.in_flight p0 ~epoch:win.Participant.epoch);
      Participant.txn_finished p0 ~epoch:win.Participant.epoch
  | None -> Alcotest.fail "expected straggler window");
  (* Release the straggler and let the system make progress again. *)
  Participant.txn_finished p1 ~epoch:(Participant.current_epoch p1);
  run w 20_000;
  Alcotest.(check bool) "progress resumed" true
    (Manager.epochs_closed w.manager >= 2)

let suite =
  [ Alcotest.test_case "epochs progress" `Quick test_epochs_progress;
    Alcotest.test_case "window validity" `Quick test_window_validity;
    Alcotest.test_case "windows disjoint" `Quick
      test_windows_disjoint_across_epochs;
    Alcotest.test_case "inflight delays switch" `Quick
      test_inflight_delays_switch;
    Alcotest.test_case "straggler window bound" `Quick
      test_straggler_window_bound;
    Alcotest.test_case "no opt blocks" `Quick test_no_straggler_opt_blocks;
    Alcotest.test_case "on_closed order" `Quick test_on_closed_fires_in_order;
    Alcotest.test_case "noauth next epoch" `Quick
      test_noauth_accounted_to_next_epoch ]
