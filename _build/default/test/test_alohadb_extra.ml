(* Additional whole-system ALOHA-DB tests: clock skew, same-epoch
   visibility, held requests, the optimistic client flow, and cluster-size
   extremes. *)

module Value = Functor_cc.Value
module Txn = Alohadb.Txn
module Cluster = Alohadb.Cluster

let await c fe req =
  let result = ref None in
  Cluster.submit c ~fe req (fun r -> result := Some r);
  let deadline = Sim.Engine.now (Cluster.sim c) + 1_000_000 in
  let rec spin () =
    if Option.is_none !result && Sim.Engine.now (Cluster.sim c) < deadline
    then begin
      Cluster.run_for c 5_000;
      spin ()
    end
  in
  spin ();
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "request did not complete"

let commit_exn = function
  | Txn.Committed { ts } -> ts
  | r -> Alcotest.failf "expected commit, got %a" Txn.pp_result r

(* Under heavy clock skew the system still serializes: interleaved
   transfers conserve the total balance exactly. *)
let test_clock_skew_conservation () =
  let options =
    { Cluster.default_options with n_servers = 3; clock_skew_us = 3_000 }
  in
  let c = Cluster.create options in
  for i = 0 to 5 do
    Cluster.load c ~key:(Printf.sprintf "skew:%d" i) (Value.int 100)
  done;
  Cluster.start c;
  let sim = Cluster.sim c in
  let rng = Sim.Rng.create 41 in
  let outstanding = ref 0 in
  for i = 0 to 59 do
    incr outstanding;
    let src = Sim.Rng.int rng 6 and dst = Sim.Rng.int rng 6 in
    if src <> dst then
      Sim.Engine.schedule sim ~at:(500 + (i * 700)) (fun () ->
          Cluster.submit c ~fe:(i mod 3)
            (Txn.read_write
               [ (Printf.sprintf "skew:%d" src, Txn.Subtr 7);
                 (Printf.sprintf "skew:%d" dst, Txn.Add 7) ])
            (fun _ -> decr outstanding))
    else decr outstanding
  done;
  Sim.Engine.run ~until:500_000 sim;
  Alcotest.(check int) "all resolved" 0 !outstanding;
  match
    await c 0
      (Txn.Read_only { keys = List.init 6 (Printf.sprintf "skew:%d") })
  with
  | Txn.Values kvs ->
      let total =
        List.fold_left
          (fun acc (_, v) -> acc + Value.to_int (Option.get v))
          0 kvs
      in
      Alcotest.(check int) "balance conserved under skew" 600 total
  | r -> Alcotest.failf "unexpected %a" Txn.pp_result r

(* A latest-version read submitted right after a write in the same epoch
   is serialized after it (its timestamp is higher) and observes it. *)
let test_same_epoch_read_sees_write () =
  let c = Cluster.create { Cluster.default_options with n_servers = 2 } in
  Cluster.load c ~key:"v" (Value.int 1);
  Cluster.start c;
  let sim = Cluster.sim c in
  (* Let the first epoch open. *)
  Sim.Engine.run ~until:2_000 sim;
  let write_done = ref false and read_result = ref None in
  Cluster.submit c ~fe:0
    (Txn.read_write ~ack:Txn.Ack_on_install [ ("v", Txn.Put (Value.int 2)) ])
    (fun _ -> write_done := true);
  (* Same instant, same epoch: the read's timestamp is assigned after the
     write's on the same FE clock. *)
  Cluster.submit c ~fe:0 (Txn.Read_only { keys = [ "v" ] }) (fun r ->
      read_result := Some r);
  Sim.Engine.run ~until:200_000 sim;
  Alcotest.(check bool) "write acknowledged" true !write_done;
  (match !read_result with
  | Some (Txn.Values [ ("v", Some v) ]) ->
      Alcotest.(check int) "read serialized after same-epoch write" 2
        (Value.to_int v)
  | Some r -> Alcotest.failf "unexpected %a" Txn.pp_result r
  | None -> Alcotest.fail "read never completed")

(* Requests submitted before the first grant are held, then drain. *)
let test_requests_held_until_first_epoch () =
  let c = Cluster.create { Cluster.default_options with n_servers = 2 } in
  Cluster.load c ~key:"h" (Value.int 0);
  let result = ref None in
  (* Submit BEFORE Cluster.start: no authorization exists yet. *)
  Cluster.submit c ~fe:0
    (Txn.read_write [ ("h", Txn.Add 1) ])
    (fun r -> result := Some r);
  Alcotest.(check int) "held" 1
    (Alohadb.Server.held_requests (Cluster.server c 0));
  Cluster.start c;
  Cluster.run_for c 120_000;
  (match !result with
  | Some (Txn.Committed _) -> ()
  | Some r -> Alcotest.failf "unexpected %a" Txn.pp_result r
  | None -> Alcotest.fail "held request never drained");
  Alcotest.(check int) "queue empty" 0
    (Alohadb.Server.held_requests (Cluster.server c 0))

(* The §IV-E optimistic client flow end-to-end: two clients race a
   conditional decrement on one key; exactly one validates, the other
   aborts and retries. *)
let test_optimistic_flow () =
  let registry = Functor_cc.Registry.with_builtins () in
  Functor_cc.Optimistic.register registry;
  let c =
    Cluster.create ~registry { Cluster.default_options with n_servers = 2 }
  in
  Cluster.load c ~key:"occ" (Value.int 10);
  Cluster.start c;
  let sim = Cluster.sim c in
  let committed = ref 0 and aborted = ref 0 in
  let attempt fe =
    (* read snapshot *)
    Cluster.submit c ~fe (Txn.Read_only { keys = [ "occ" ] }) (function
      | Txn.Values [ (_, Some v) ] ->
          let snapshot = [ ("occ", Some v) ] in
          Cluster.submit c ~fe
            (Txn.read_write
               [ ("occ",
                  Txn.Call
                    { handler = Functor_cc.Optimistic.handler_name;
                      read_set = [ "occ" ];
                      args =
                        [ Functor_cc.Optimistic.encode_snapshot snapshot;
                          Value.int (Value.to_int v - 1) ] }) ])
            (function
              | Txn.Committed _ -> incr committed
              | Txn.Aborted _ -> incr aborted
              | Txn.Values _ -> ())
      | _ -> Alcotest.fail "snapshot read failed")
  in
  (* Both clients snapshot in the same epoch and then write concurrently:
     both validating functors compare against the same snapshot value, and
     the one serialized second sees the first's write and aborts. *)
  Sim.Engine.schedule sim ~at:2_000 (fun () -> attempt 0);
  Sim.Engine.schedule sim ~at:2_100 (fun () -> attempt 1);
  Sim.Engine.run ~until:400_000 sim;
  Alcotest.(check int) "exactly one commits" 1 !committed;
  Alcotest.(check int) "exactly one aborts" 1 !aborted;
  (match await c 0 (Txn.Read_only { keys = [ "occ" ] }) with
  | Txn.Values [ (_, Some v) ] ->
      Alcotest.(check int) "one decrement applied" 9 (Value.to_int v)
  | r -> Alcotest.failf "unexpected %a" Txn.pp_result r)

let test_single_server_cluster () =
  let c = Cluster.create { Cluster.default_options with n_servers = 1 } in
  Cluster.start c;
  ignore (commit_exn (await c 0 (Txn.read_write [ ("x", Txn.Put (Value.int 3)) ])));
  match await c 0 (Txn.Read_only { keys = [ "x" ] }) with
  | Txn.Values [ (_, Some v) ] -> Alcotest.(check int) "value" 3 (Value.to_int v)
  | r -> Alcotest.failf "unexpected %a" Txn.pp_result r

let test_twenty_server_cluster () =
  let options =
    { Cluster.default_options with n_servers = 20; partitioner = `Prefix }
  in
  let c = Cluster.create options in
  for i = 0 to 19 do
    Cluster.load c ~key:(Printf.sprintf "w:%d:k" i) (Value.int 0)
  done;
  Cluster.start c;
  let sim = Cluster.sim c in
  let done_count = ref 0 in
  for i = 0 to 19 do
    Sim.Engine.schedule sim ~at:(1_000 + (i * 100)) (fun () ->
        Cluster.submit c ~fe:i
          (Txn.read_write
             [ (Printf.sprintf "w:%d:k" i, Txn.Add 1);
               (Printf.sprintf "w:%d:k" ((i + 7) mod 20), Txn.Add 1) ])
          (function
            | Txn.Committed _ -> incr done_count
            | r -> Alcotest.failf "unexpected %a" Txn.pp_result r))
  done;
  Sim.Engine.run ~until:300_000 sim;
  Alcotest.(check int) "all committed on 20 servers" 20 !done_count

(* Stress: 2000 conflicting increments across epochs — exact total. *)
let test_increment_storm () =
  let c = Cluster.create { Cluster.default_options with n_servers = 4 } in
  Cluster.load c ~key:"storm" (Value.int 0);
  Cluster.start c;
  let sim = Cluster.sim c in
  let resolved = ref 0 in
  for i = 0 to 1_999 do
    Sim.Engine.schedule sim ~at:(500 + (i * 40)) (fun () ->
        Cluster.submit c ~fe:(i mod 4)
          (Txn.read_write [ ("storm", Txn.Add 1) ])
          (fun _ -> incr resolved))
  done;
  Sim.Engine.run ~until:500_000 sim;
  Alcotest.(check int) "all resolved" 2_000 !resolved;
  match await c 0 (Txn.Read_only { keys = [ "storm" ] }) with
  | Txn.Values [ (_, Some v) ] ->
      Alcotest.(check int) "exact count" 2_000 (Value.to_int v)
  | r -> Alcotest.failf "unexpected %a" Txn.pp_result r

let suite =
  [ Alcotest.test_case "clock skew conservation" `Quick
      test_clock_skew_conservation;
    Alcotest.test_case "same-epoch read sees write" `Quick
      test_same_epoch_read_sees_write;
    Alcotest.test_case "held until first epoch" `Quick
      test_requests_held_until_first_epoch;
    Alcotest.test_case "optimistic client flow" `Quick test_optimistic_flow;
    Alcotest.test_case "single server" `Quick test_single_server_cluster;
    Alcotest.test_case "twenty servers" `Quick test_twenty_server_cluster;
    Alcotest.test_case "increment storm" `Quick test_increment_storm ]
