(* Whole-cluster tests of ALOHA-DB: the Figure-5 bank-transfer scenario,
   read-only delays, in-epoch aborts, and dependent transactions. *)

module Value = Functor_cc.Value
module Txn = Alohadb.Txn
module Cluster = Alohadb.Cluster

let mk_cluster ?(n = 2) ?(registry = Functor_cc.Registry.with_builtins ())
    () =
  let options = { Cluster.default_options with n_servers = n } in
  let c = Cluster.create ~registry options in
  Cluster.start c;
  c

(* Drive the cluster until a submitted request resolves, failing the test
   if it never does. *)
let await c =
  let submit_and_wait fe req =
    let result = ref None in
    Cluster.submit c ~fe req (fun r -> result := Some r);
    (* Generous horizon: several epochs. *)
    let deadline = Sim.Engine.now (Cluster.sim c) + 500_000 in
    let rec spin () =
      if Option.is_none !result && Sim.Engine.now (Cluster.sim c) < deadline
      then begin
        Cluster.run_for c 5_000;
        spin ()
      end
    in
    spin ();
    match !result with
    | Some r -> r
    | None -> Alcotest.fail "request did not complete"
  in
  submit_and_wait

let commit_exn = function
  | Txn.Committed { ts } -> ts
  | r -> Alcotest.failf "expected commit, got %a" Txn.pp_result r

let values_exn = function
  | Txn.Values kvs -> kvs
  | r -> Alcotest.failf "expected values, got %a" Txn.pp_result r

let int_of kvs key =
  match List.assoc key kvs with
  | Some v -> Value.to_int v
  | None -> Alcotest.failf "key %s absent" key

(* T1 of Figure 5: a blind multi-write. *)
let test_blind_write () =
  let c = mk_cluster () in
  let go = await c in
  let r =
    go 0
      (Txn.read_write
         [ ("acct:A", Txn.Put (Value.int 150));
           ("acct:B", Txn.Put (Value.int 100)) ])
  in
  ignore (commit_exn r);
  let kvs = values_exn (go 0 (Txn.Read_only { keys = [ "acct:A"; "acct:B" ] })) in
  Alcotest.(check int) "A" 150 (int_of kvs "acct:A");
  Alcotest.(check int) "B" 100 (int_of kvs "acct:B")

(* T2 of Figure 5: an unconditional transfer via ADD/SUBTR functors. *)
let test_transfer () =
  let c = mk_cluster () in
  let go = await c in
  ignore
    (commit_exn
       (go 0
          (Txn.read_write
             [ ("acct:A", Txn.Put (Value.int 150));
               ("acct:B", Txn.Put (Value.int 100)) ])));
  ignore
    (commit_exn
       (go 1
          (Txn.read_write
             [ ("acct:A", Txn.Subtr 100); ("acct:B", Txn.Add 100) ])));
  let kvs = values_exn (go 0 (Txn.Read_only { keys = [ "acct:A"; "acct:B" ] })) in
  Alcotest.(check int) "A" 50 (int_of kvs "acct:A");
  Alcotest.(check int) "B" 200 (int_of kvs "acct:B")

(* T3 of Figure 5: a conditional transfer that aborts on insufficient
   funds.  Both functors read A and must reach the same abort decision. *)
let transfer_handler (ctx : Functor_cc.Registry.ctx) =
  let a = Functor_cc.Registry.read ctx "acct:A" in
  let amount = Value.to_int (Functor_cc.Registry.arg ctx 0) in
  match a with
  | None -> Functor_cc.Registry.Abort
  | Some a_v ->
      let balance = Value.to_int a_v in
      if balance < amount then Functor_cc.Registry.Abort
      else begin
        let own =
          match Functor_cc.Registry.read ctx ctx.Functor_cc.Registry.key with
          | Some v -> Value.to_int v
          | None -> 0
        in
        let delta =
          Value.to_int (Functor_cc.Registry.arg ctx 1)
        in
        Functor_cc.Registry.Commit (Value.int (own + delta))
      end

let registry_with_transfer () =
  let r = Functor_cc.Registry.with_builtins () in
  Functor_cc.Registry.register r "guarded_transfer" transfer_handler;
  r

let conditional_transfer amount =
  Txn.read_write
    [ ("acct:A",
       Txn.Call
         { handler = "guarded_transfer";
           read_set = [ "acct:A" ];
           args = [ Value.int amount; Value.int (-amount) ] });
      ("acct:B",
       Txn.Call
         { handler = "guarded_transfer";
           read_set = [ "acct:A"; "acct:B" ];
           args = [ Value.int amount; Value.int amount ] }) ]

let test_conditional_transfer_abort () =
  let c = mk_cluster ~registry:(registry_with_transfer ()) () in
  let go = await c in
  ignore
    (commit_exn
       (go 0
          (Txn.read_write
             [ ("acct:A", Txn.Put (Value.int 150));
               ("acct:B", Txn.Put (Value.int 100)) ])));
  (* First transfer succeeds (A = 150 >= 100)... *)
  ignore (commit_exn (go 1 (conditional_transfer 100)));
  (* ...second aborts (A = 50 < 100), exactly as in Figure 5. *)
  (match go 0 (conditional_transfer 100) with
  | Txn.Aborted { stage = `Compute; _ } -> ()
  | r -> Alcotest.failf "expected compute abort, got %a" Txn.pp_result r);
  let kvs = values_exn (go 1 (Txn.Read_only { keys = [ "acct:A"; "acct:B" ] })) in
  Alcotest.(check int) "A" 50 (int_of kvs "acct:A");
  Alcotest.(check int) "B" 200 (int_of kvs "acct:B")

(* In-epoch abort: a precondition key that does not exist triggers the
   coordinator's second-round rollback, and no write becomes visible. *)
let test_install_abort_rolls_back () =
  let c = mk_cluster () in
  let go = await c in
  ignore
    (commit_exn
       (go 0 (Txn.read_write [ ("acct:A", Txn.Put (Value.int 150)) ])));
  (match
     go 0
       (Txn.read_write
          ~precondition_keys:[ "missing:item" ]
          [ ("acct:A", Txn.Put (Value.int 999));
            ("missing:item", Txn.Put (Value.int 1)) ])
   with
  | Txn.Aborted { stage = `Install; _ } -> ()
  | r -> Alcotest.failf "expected install abort, got %a" Txn.pp_result r);
  let kvs = values_exn (go 0 (Txn.Read_only { keys = [ "acct:A" ] })) in
  Alcotest.(check int) "A unchanged" 150 (int_of kvs "acct:A")

(* §IV-E key dependency: write "dep:B" only if "det:A" exceeds a
   threshold; the determinate functor decides. *)
let det_handler (ctx : Functor_cc.Registry.ctx) =
  let a =
    match Functor_cc.Registry.read ctx "det:A" with
    | Some v -> Value.to_int v
    | None -> 0
  in
  let threshold = Value.to_int (Functor_cc.Registry.arg ctx 0) in
  if a >= threshold then
    Functor_cc.Registry.Commit_det
      ( Value.int (a - threshold),
        [ ("dep:B", Functor_cc.Registry.Dep_put (Value.int threshold)) ] )
  else Functor_cc.Registry.Commit_det (Value.int a, [ ("dep:B", Functor_cc.Registry.Dep_skip) ])

let registry_with_det () =
  let r = Functor_cc.Registry.with_builtins () in
  Functor_cc.Registry.register r "det_conditional" det_handler;
  r

let det_txn threshold =
  Txn.read_write
    [ ("det:A",
       Txn.Det
         { handler = "det_conditional";
           read_set = [ "det:A" ];
           args = [ Value.int threshold ];
           dependents = [ "dep:B" ] }) ]

let test_dependent_write_taken () =
  let c = mk_cluster ~registry:(registry_with_det ()) () in
  let go = await c in
  ignore
    (commit_exn
       (go 0 (Txn.read_write [ ("det:A", Txn.Put (Value.int 100)) ])));
  ignore (commit_exn (go 0 (det_txn 60)));
  let kvs =
    values_exn (go 1 (Txn.Read_only { keys = [ "det:A"; "dep:B" ] }))
  in
  Alcotest.(check int) "A" 40 (int_of kvs "det:A");
  Alcotest.(check int) "B" 60 (int_of kvs "dep:B")

let test_dependent_write_skipped () =
  let c = mk_cluster ~registry:(registry_with_det ()) () in
  let go = await c in
  ignore
    (commit_exn
       (go 0
          (Txn.read_write
             [ ("det:A", Txn.Put (Value.int 100));
               ("dep:B", Txn.Put (Value.int 7)) ])));
  ignore (commit_exn (go 0 (det_txn 500)));
  let kvs =
    values_exn (go 1 (Txn.Read_only { keys = [ "det:A"; "dep:B" ] }))
  in
  Alcotest.(check int) "A unchanged" 100 (int_of kvs "det:A");
  Alcotest.(check int) "B keeps old value" 7 (int_of kvs "dep:B")

(* Historical reads return the state as of the requested version. *)
let test_historical_read () =
  let c = mk_cluster () in
  let go = await c in
  let ts1 =
    commit_exn (go 0 (Txn.read_write [ ("k", Txn.Put (Value.int 1)) ]))
  in
  ignore (commit_exn (go 0 (Txn.read_write [ ("k", Txn.Put (Value.int 2)) ])));
  let kvs =
    values_exn
      (go 1
         (Txn.Read_at
            { keys = [ "k" ]; version = Clocksync.Timestamp.to_int ts1 }))
  in
  Alcotest.(check int) "old version" 1 (int_of kvs "k")

let test_read_absent_key () =
  let c = mk_cluster () in
  let go = await c in
  let kvs = values_exn (go 0 (Txn.Read_only { keys = [ "nope" ] })) in
  (match List.assoc "nope" kvs with
  | None -> ()
  | Some v -> Alcotest.failf "expected absent, got %a" Value.pp v)

let test_delete () =
  let c = mk_cluster () in
  let go = await c in
  ignore (commit_exn (go 0 (Txn.read_write [ ("k", Txn.Put (Value.int 5)) ])));
  ignore (commit_exn (go 0 (Txn.read_write [ ("k", Txn.Delete) ])));
  let kvs = values_exn (go 0 (Txn.Read_only { keys = [ "k" ] })) in
  (match List.assoc "k" kvs with
  | None -> ()
  | Some v -> Alcotest.failf "expected tombstone, got %a" Value.pp v)

let test_ack_on_install () =
  let c = mk_cluster () in
  let go = await c in
  let r =
    go 0
      (Txn.read_write ~ack:Txn.Ack_on_install
         [ ("k", Txn.Put (Value.int 5)) ])
  in
  ignore (commit_exn r)

let suite =
  [ Alcotest.test_case "blind multi-write (Fig 5 T1)" `Quick test_blind_write;
    Alcotest.test_case "add/subtr transfer (Fig 5 T2)" `Quick test_transfer;
    Alcotest.test_case "conditional transfer aborts (Fig 5 T3)" `Quick
      test_conditional_transfer_abort;
    Alcotest.test_case "install abort rolls back" `Quick
      test_install_abort_rolls_back;
    Alcotest.test_case "dependent write taken" `Quick
      test_dependent_write_taken;
    Alcotest.test_case "dependent write skipped" `Quick
      test_dependent_write_skipped;
    Alcotest.test_case "historical read" `Quick test_historical_read;
    Alcotest.test_case "read absent key" `Quick test_read_absent_key;
    Alcotest.test_case "delete tombstone" `Quick test_delete;
    Alcotest.test_case "ack on install" `Quick test_ack_on_install ]
