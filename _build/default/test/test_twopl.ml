(* The conventional 2PL/2PC baseline. *)

module Value = Functor_cc.Value
module Cluster = Twopl.Cluster

let mk ?(n = 2) () =
  Cluster.create { Cluster.default_options with n_servers = n }

let incr_txn keys =
  { Calvin.Ctxn.proc = "incr_all"; read_set = keys; write_set = keys;
    args = [ Value.int 1 ] }

let key p i = Printf.sprintf "t:%d:%d" p i

let read c k =
  Twopl.Server.read_local (Cluster.server c (Cluster.partition_of c k)) k

let test_single_partition () =
  let c = mk () in
  Cluster.load c ~key:(key 0 0) (Value.int 10);
  let done_ = ref false in
  Cluster.submit c ~fe:0 (incr_txn [ key 0 0 ]) ~k:(fun () -> done_ := true);
  Cluster.run_for c 100_000;
  Alcotest.(check bool) "completed" true !done_;
  Alcotest.(check int) "incremented" 11
    (Value.to_int (Option.get (read c (key 0 0))));
  Alcotest.(check int) "committed metric" 1
    (Sim.Metrics.get (Cluster.metrics c) "twopl.committed")

let test_distributed_txn () =
  let c = mk () in
  Cluster.load c ~key:(key 0 0) (Value.int 0);
  Cluster.load c ~key:(key 1 0) (Value.int 100);
  Cluster.submit c ~fe:0 (incr_txn [ key 0 0; key 1 0 ]);
  Cluster.run_for c 200_000;
  Alcotest.(check int) "k0" 1 (Value.to_int (Option.get (read c (key 0 0))));
  Alcotest.(check int) "k1" 101 (Value.to_int (Option.get (read c (key 1 0))))

(* Conflicting increments serialize through the locks: exact final count. *)
let test_conflicting_increments () =
  let c = mk () in
  Cluster.load c ~key:(key 0 7) (Value.int 0);
  let sim = Cluster.sim c in
  let completed = ref 0 in
  for i = 0 to 39 do
    Sim.Engine.schedule sim ~at:(500 + (i * 300)) (fun () ->
        Cluster.submit c ~fe:(i mod 2) (incr_txn [ key 0 7 ])
          ~k:(fun () -> incr completed))
  done;
  Sim.Engine.run ~until:2_000_000 sim;
  Alcotest.(check int) "all completed" 40 !completed;
  Alcotest.(check int) "exact count (atomicity under conflicts)" 40
    (Value.to_int (Option.get (read c (key 0 7))))

(* Opposite-order lock acquisition across partitions: deadlocks resolve by
   timeout + retry, and both transactions eventually apply. *)
let test_deadlock_resolution () =
  let c = mk () in
  Cluster.load c ~key:(key 0 1) (Value.int 0);
  Cluster.load c ~key:(key 1 1) (Value.int 0);
  let sim = Cluster.sim c in
  let completed = ref 0 in
  (* Both transactions write both keys; their Lock_and_read requests race
     on two partitions in opposite arrival orders, which can deadlock. *)
  for i = 0 to 19 do
    Sim.Engine.schedule sim ~at:(500 + (i * 50)) (fun () ->
        Cluster.submit c ~fe:(i mod 2)
          (incr_txn [ key 0 1; key 1 1 ])
          ~k:(fun () -> incr completed))
  done;
  Sim.Engine.run ~until:5_000_000 sim;
  Alcotest.(check int) "all eventually complete" 20 !completed;
  Alcotest.(check int) "both keys exact" 20
    (Value.to_int (Option.get (read c (key 0 1))));
  Alcotest.(check int) "both keys exact (2)" 20
    (Value.to_int (Option.get (read c (key 1 1))))

let test_contention_hurts_throughput () =
  (* Sanity for the extension experiment: under a single hot key, 2PL
     commits far less than it would uncontended, and records lock
     timeouts/restarts. *)
  let c = mk ~n:4 () in
  for p = 0 to 3 do
    for i = 0 to 99 do
      Cluster.load c ~key:(key p i) (Value.int 0)
    done
  done;
  let sim = Cluster.sim c in
  let rng = Sim.Rng.create 5 in
  for i = 0 to 799 do
    Sim.Engine.schedule sim ~at:(500 + (i * 120)) (fun () ->
        (* all transactions touch hot key (0,0) plus a random cold key *)
        let cold = key (1 + Sim.Rng.int rng 3) (Sim.Rng.int rng 100) in
        Cluster.submit c ~fe:(i mod 4) (incr_txn [ key 0 0; cold ]))
  done;
  Sim.Engine.run ~until:3_000_000 sim;
  let m = Cluster.metrics c in
  Alcotest.(check bool) "some commits" true
    (Sim.Metrics.get m "twopl.committed" > 100);
  Alcotest.(check bool) "contention visible as timeouts" true
    (Sim.Metrics.get m "twopl.lock_timeouts" > 0)

let suite =
  [ Alcotest.test_case "single partition" `Quick test_single_partition;
    Alcotest.test_case "distributed txn" `Quick test_distributed_txn;
    Alcotest.test_case "conflicting increments" `Quick
      test_conflicting_increments;
    Alcotest.test_case "deadlock resolution" `Quick test_deadlock_resolution;
    Alcotest.test_case "contention behaviour" `Quick
      test_contention_hurts_throughput ]
