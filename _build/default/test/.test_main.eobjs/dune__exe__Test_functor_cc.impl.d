test/test_functor_cc.ml: Alcotest Functor_cc List Option QCheck2 QCheck_alcotest Sim
