test/test_alohadb.ml: Alcotest Alohadb Clocksync Functor_cc List Option Sim
