test/test_cross_engine.ml: Alcotest Alohadb Array Calvin Functor_cc Hashtbl List Printf QCheck2 QCheck_alcotest Sim Twopl
