test/test_serializability.ml: Alcotest Alohadb Clocksync Format Functor_cc Hashtbl List Option Printf QCheck2 QCheck_alcotest Sim
