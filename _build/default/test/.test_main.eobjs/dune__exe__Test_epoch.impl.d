test/test_epoch.ml: Alcotest Array Clocksync Epoch Hashtbl List Net Sim
