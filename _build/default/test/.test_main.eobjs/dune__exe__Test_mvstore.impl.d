test/test_mvstore.ml: Alcotest Hashtbl List Mvstore Option QCheck2 QCheck_alcotest
