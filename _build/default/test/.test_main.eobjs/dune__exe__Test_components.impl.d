test/test_components.ml: Alcotest Alohadb Functor_cc List Sim
