test/test_workload.ml: Alcotest Alohadb Calvin Functor_cc List Mvstore Sim String Workload
