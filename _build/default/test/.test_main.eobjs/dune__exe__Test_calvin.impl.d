test/test_calvin.ml: Alcotest Calvin Functor_cc List Option Printf Sim
