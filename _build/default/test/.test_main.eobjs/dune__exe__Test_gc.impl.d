test/test_gc.ml: Alcotest Functor_cc List Mvstore Sim
