test/test_clocksync.ml: Alcotest Clocksync Hashtbl List QCheck2 QCheck_alcotest Sim
