test/test_twopl.ml: Alcotest Calvin Functor_cc Option Printf Sim Twopl
