test/test_alohadb_extra.ml: Alcotest Alohadb Functor_cc List Option Printf Sim
