test/test_durability.ml: Alcotest Alohadb Functor_cc List Printf Sim String
