test/test_net.ml: Alcotest Array List Net Printf QCheck2 QCheck_alcotest Sim String
