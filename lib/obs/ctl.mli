(** The per-run observability handle: one lifecycle {!Trace}, one
    {!Gauges} sampler, and the fault-correlation clock, bundled so a
    single value can be threaded through [Kernel.Params] into every layer
    of a cluster.

    Fault correlation: the cluster wires the network's fault hook to
    {!note_fault}; every subsequent lifecycle event within
    [corr_window_us] of the last injected fault carries [tag = 1], so a
    latency spike in the trace can be attributed to the chaos edict that
    caused it. *)

type t

val create :
  ?trace_capacity:int ->
  ?sample:int ->
  ?gauge_interval_us:int ->
  ?ledger:Ledger.t ->
  ?corr_window_us:int ->
  unit ->
  t
(** [sample] keeps 1-in-N transactions (default 1); [corr_window_us]
    (default 2000) is how long after an injected fault events stay
    tagged.  [ledger] (default absent) attaches an epoch-granularity
    {!Ledger} — when absent the ledger emit sites cost one option
    test. *)

val trace : t -> Trace.t
val gauges : t -> Gauges.t

val ledger : t -> Ledger.t option
(** The attached epoch ledger, if any — engines cache this at creation. *)

val emit :
  t -> txn:int -> stage:Trace.stage -> node:int -> ts:int -> ?arg:int ->
  unit -> unit
(** Sampled emit: drops unsampled transactions and stamps the
    fault-correlation tag. *)

val note_fault : t -> now:int -> node:int -> kind:[ `Drop | `Delay ] -> unit
(** Record an injected network fault: emits a [Fault_drop]/[Fault_delay]
    marker event and opens the correlation window. *)

val fault_drops : t -> int
val fault_delays : t -> int

val arm : t -> sim:Sim.Engine.t -> for_us:int -> unit
(** Start the gauge sampler for the next [for_us] of simulated time. *)

val measure_reset : t -> unit
(** Discard warm-up data (trace events, gauge points, fault counters) at
    the start of the measured window; wiring stays. *)
