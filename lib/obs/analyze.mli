(** Derived analytics over a {!Ledger} timeline: parse TIMELINE.jsonl
    back into records, reconstruct failover incidents (crash → detect →
    promote → first post-failover commit, with per-phase latencies), flag
    anomalies, and run the [doctor] invariant checks.

    The parser is a hand-rolled minimal JSON reader (repo convention: no
    json dependency); it accepts exactly the value grammar the ledger
    emits plus ordinary whitespace. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> t
  (** Raises [Failure] on malformed input or trailing garbage. *)

  val member : string -> t -> t option
  val to_int : ?default:int -> t option -> int
  val to_bool : ?default:bool -> t option -> bool
  val to_str : ?default:string -> t option -> string
end

type epoch_row = {
  epoch : int;
  node : int;
  open_us : int;
  close_us : int;
  stretch_millis : int;  (** (close-open)/cfg in thousandths; -1 unknown *)
  assigned : int;
  fast_commits : int;
  fast_merges : int;
  watermark : int;
  watermark_lag_us : int;
  degraded : bool;  (** any replication group at a single-copy floor *)
}

type event = { kind : string; ev_node : int; t_us : int; partition : int }

(** One meta-line-delimited run of a TIMELINE.jsonl (files are
    append-only, so a file may hold several). *)
type segment = {
  cfg_epoch_us : int;
  nodes : int;
  replicas : int;
  rows : epoch_row list;  (** in file order *)
  events : event list;  (** in file order *)
}

val parse_lines : string list -> segment list
(** Raises [Failure] naming the offending line on malformed input.
    Records before any meta line start an implicit segment. *)

val load : string -> segment list
(** Read and parse a TIMELINE.jsonl file. *)

type incident = {
  i_partition : int;
  crashed_node : int;  (** -1 when no crash event matched the promote *)
  promoted_node : int;
  crash_us : int;  (** -1 unknown *)
  detect_us : int;  (** -1 unknown *)
  promote_us : int;
  first_commit_us : int;  (** -1 = unresolved *)
}

val resolved : incident -> bool

val incidents : segment -> incident list
(** One incident per [promote] event, phases matched from the
    surrounding crash/detect/first_commit events. *)

val incident_json : incident -> string

type anomaly = { a_kind : string; a_detail : string }

val anomalies : segment -> anomaly list
(** Epoch stretch > 2x the configured duration, watermark-lag spikes
    (> 4x the configured duration, in windows that received work — an
    idle tail legitimately ages the newest final value), and degraded
    single-copy floors. *)

val check : segment -> string list
(** The doctor invariants; each violation is one human-readable line.
    Checked: rows/events carry sane fields, closed epochs are contiguous
    per node, watermarks are monotone per node (a crash of that node
    between two closes excuses a reset), every crash in a replicated
    segment leads to a restart or a promotion, and every incident with
    traffic still arriving after its promotion resolves with a first
    post-failover commit. *)
