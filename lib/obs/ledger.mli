(** Epoch-granularity telemetry ledger: one structured record per epoch
    per node, plus a global event stream (crash / detect / promote /
    first-post-failover-commit) and, under [--runtime real], per-stratum
    worker-occupancy spans.

    The ledger is a passive accumulator — the engine calls the [note_*]
    setters from its existing hook sites — and rows render to JSONL
    ({!to_lines}) for the append-only TIMELINE.jsonl written through
    [Harness.Report].  Like the trace ring it is single-writer: only the
    domain driving the simulation calls [note_*] (worker domains never
    touch it; the planner samples pool counters from the orchestrator).

    A ledger is wired in via [Obs.Ctl.create ?ledger]; when absent every
    emit site reduces to one option test, so the default is
    behaviour-identical (pinned by a differential test). *)

type t

(** Per-replication-group slice of one epoch row: WAL-ship lag samples,
    close-gate wait, and the ack floor / liveness flags at close. *)
type group_row = {
  g_partition : int;
  mutable g_ship_lags : int list;  (** µs, newest first *)
  mutable g_gate_wait_us : int;  (** -1 until the close gate fires *)
  mutable g_ack_floor : int;  (** durable-everywhere seq at close; -1 *)
  mutable g_live_followers : int;  (** -1 until sampled at close *)
  mutable g_degraded : bool;  (** single-copy floor (no live follower) *)
}

type plan_row = {
  pl_nodes : int;
  pl_edges : int;
  pl_strata : int;
  pl_critical_path : int;
}

type row = {
  r_epoch : int;
  r_node : int;
  mutable r_open_us : int;  (** sim time the window opened; -1 unseen *)
  mutable r_close_us : int;  (** sim time the epoch closed; -1 open *)
  mutable r_wall_open_us : int;  (** host wall clock, µs; -1 unseen *)
  mutable r_wall_close_us : int;
  mutable r_assigned : int;  (** txns timestamped in this window here *)
  mutable r_fast_commits : int;
  mutable r_fast_merges : int;
  mutable r_watermark : int;  (** value watermark at close; -1 = BE down *)
  mutable r_watermark_lag_us : int;
  mutable r_groups : group_row list;  (** groups this node leads *)
  mutable r_plan : plan_row option;
  mutable r_pool : (int * int * int) array option;
      (** cumulative (completed, stolen, queue) per pool worker at close *)
}

type event_kind = Crash | Restart | Detect | Promote | First_commit

type event = {
  e_kind : event_kind;
  e_node : int;
  e_t_us : int;
  e_partition : int;  (** -1 when not partition-scoped *)
}

(** One real-runtime stratum evaluated on the worker pool: wall-clock
    bounds plus the per-worker (completed, stolen, queue) counter deltas
    across the batch — the raw material for the per-worker Perfetto
    tracks in {!Export}. *)
type stratum = {
  s_node : int;
  s_t0_us : int;  (** host wall clock, µs *)
  s_t1_us : int;
  s_size : int;  (** plan nodes in the stratum *)
  s_workers : (int * int * int) array;
      (** per worker: completed delta, stolen delta, queue length after *)
}

val create :
  ?cfg_epoch_us:int -> ?nodes:int -> ?replicas:int -> unit -> t
(** [cfg_epoch_us] is the configured epoch duration the stretch ratio is
    measured against; the cluster overrides all three via {!set_meta}. *)

val set_meta : t -> cfg_epoch_us:int -> nodes:int -> replicas:int -> unit
val cfg_epoch_us : t -> int

val wall_us : unit -> int
(** Host wall clock in µs (the ledger's wall-time source). *)

(* Epoch-row setters. *)

val note_open : t -> node:int -> epoch:int -> t_us:int -> unit
val note_assigned : t -> node:int -> epoch:int -> unit
val note_fast_commit : t -> node:int -> epoch:int -> unit
val note_fast_merges : t -> node:int -> epoch:int -> count:int -> unit

val note_ship_lag :
  t -> node:int -> epoch:int -> partition:int -> lag_us:int -> unit

val note_gate_wait :
  t -> node:int -> epoch:int -> partition:int -> wait_us:int -> unit

val note_group :
  t ->
  node:int ->
  epoch:int ->
  partition:int ->
  ack_floor:int ->
  live_followers:int ->
  degraded:bool ->
  unit

val note_plan :
  t ->
  node:int ->
  epoch:int ->
  nodes:int ->
  edges:int ->
  strata:int ->
  critical_path:int ->
  unit

val note_pool :
  t -> node:int -> epoch:int -> workers:(int * int * int) array -> unit

val note_close :
  t ->
  node:int ->
  epoch:int ->
  t_us:int ->
  watermark:int ->
  watermark_lag_us:int ->
  unit

(* Event stream. *)

val note_event :
  t -> kind:event_kind -> node:int -> t_us:int -> ?partition:int -> unit ->
  unit
(** A [Promote] event also opens a first-commit watch on its partition:
    the next {!note_commit} touching it closes the watch with a
    [First_commit] event. *)

val awaiting_first_commit : t -> bool
(** True while a promotion awaits its first post-failover commit — the
    hot-path guard around {!note_commit}. *)

val note_commit : t -> node:int -> t_us:int -> partitions:int list -> unit

(* Real-runtime strata. *)

val note_stratum :
  t ->
  node:int ->
  t0_us:int ->
  t1_us:int ->
  size:int ->
  workers:(int * int * int) array ->
  unit

(* Reads. *)

val rows : t -> row list
(** Sorted by (epoch, node). *)

val events : t -> event list
(** In emission order. *)

val strata : t -> stratum list
(** In emission order. *)

val kind_name : event_kind -> string

val clear : t -> unit
(** Forget accumulated rows/events (warm-up discard); meta stays. *)

val to_lines : t -> string list
(** Render to JSONL: one meta line, then epoch rows sorted by
    (epoch, node), events, and strata.  Ship-lag lists collapse to
    p50/p99 here.  The lines append to TIMELINE.jsonl via
    [Harness.Report.write_timeline]; a meta line starts a new segment, so
    appended runs stay separable. *)
