(* Hand-rolled JSON: the repo takes no json dependency (same convention
   as Harness.Report). *)

let jescape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jfloat v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.6g" v

type emitter = { buf : Buffer.t; mutable first : bool }

let start_events buf =
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  { buf; first = true }

let add_event e json =
  if e.first then e.first <- false else Buffer.add_char e.buf ',';
  Buffer.add_string e.buf "\n  ";
  Buffer.add_string e.buf json

let finish_events e =
  Buffer.add_string e.buf "\n]}\n";
  Buffer.contents e.buf

let tid_of ~shards txn = if txn < 0 then 0 else txn mod shards

let chrome_trace ?(engine = "aloha") ?(shards = 64) ?ledger ~trace ~gauges ()
    =
  let e = start_events (Buffer.create 65536) in
  (* Process metadata: one pid per node seen in the trace. *)
  let nodes = Hashtbl.create 16 in
  Trace.iter trace ~f:(fun ev ->
      if not (Hashtbl.mem nodes ev.Trace.node) then
        Hashtbl.replace nodes ev.Trace.node ());
  Hashtbl.fold (fun n () acc -> n :: acc) nodes []
  |> List.sort compare
  |> List.iter (fun n ->
         add_event e
           (Printf.sprintf
              "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":%d,\
               \"tid\":0,\"args\":{\"name\":\"%s node %d\"}}"
              n (jescape engine) n));
  (* Instant events, one per recorded lifecycle stage. *)
  Trace.iter trace ~f:(fun ev ->
      let open Trace in
      let args = Buffer.create 48 in
      Buffer.add_string args (Printf.sprintf "{\"txn\":%d" ev.txn);
      if ev.arg >= 0 then
        Buffer.add_string args (Printf.sprintf ",\"epoch\":%d" ev.arg);
      if ev.tag <> 0 then Buffer.add_string args ",\"fault\":1";
      Buffer.add_char args '}';
      add_event e
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%d,\"pid\":%d,\"tid\":%d,\
            \"s\":\"t\",\"args\":%s}"
           (stage_name ev.stage) ev.ts ev.node
           (tid_of ~shards ev.txn)
           (Buffer.contents args)));
  (* One "X" span per sampled transaction: first stage to last stage. *)
  let spans = Hashtbl.create 256 in
  Trace.iter trace ~f:(fun ev ->
      let open Trace in
      if ev.txn >= 0 then
        match Hashtbl.find_opt spans ev.txn with
        | None -> Hashtbl.replace spans ev.txn (ev.ts, ev.ts, ev.node, ev.tag)
        | Some (lo, hi, node, tag) ->
            Hashtbl.replace spans ev.txn
              (min lo ev.ts, max hi ev.ts, node, tag lor ev.tag));
  Hashtbl.fold (fun txn span acc -> (txn, span) :: acc) spans []
  |> List.sort compare
  |> List.iter (fun (txn, (lo, hi, node, tag)) ->
         if hi > lo then
           add_event e
             (Printf.sprintf
                "{\"name\":\"txn %d\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\
                 \"pid\":%d,\"tid\":%d,\"args\":{\"txn\":%d%s}}"
                txn lo (hi - lo) node
                (tid_of ~shards txn) txn
                (if tag <> 0 then ",\"fault\":1" else "")));
  (* Per-worker runtime tracks: each [--runtime real] stratum recorded in
     the epoch ledger becomes one B/E span per worker that did work in
     it, on tid lanes above the transaction shards (tid = shards + worker
     index, so lanes never collide).  Stolen tasks leave an instant
     marker at span end.  Stratum bounds are host wall-clock, rebased to
     the first stratum so the lanes start near the sim origin. *)
  (match ledger with
  | None -> ()
  | Some l ->
      let strata = Ledger.strata l in
      let base =
        List.fold_left
          (fun acc s -> min acc s.Ledger.s_t0_us)
          max_int strata
      in
      let lanes = Hashtbl.create 16 in
      List.iter
        (fun s ->
          Array.iteri
            (fun w _ ->
              if not (Hashtbl.mem lanes (s.Ledger.s_node, w)) then
                Hashtbl.replace lanes (s.Ledger.s_node, w) ())
            s.Ledger.s_workers)
        strata;
      Hashtbl.fold (fun k () acc -> k :: acc) lanes []
      |> List.sort compare
      |> List.iter (fun (node, w) ->
             add_event e
               (Printf.sprintf
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\
                   \"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"worker %d\"}}"
                  node (shards + w) w));
      List.iter
        (fun s ->
          let open Ledger in
          let t0 = s.s_t0_us - base in
          let t1 = max t0 (s.s_t1_us - base) in
          Array.iteri
            (fun w (completed, stolen, queue) ->
              if completed > 0 || stolen > 0 then begin
                let tid = shards + w in
                add_event e
                  (Printf.sprintf
                     "{\"name\":\"stratum %d\",\"ph\":\"B\",\"ts\":%d,\
                      \"pid\":%d,\"tid\":%d,\"args\":{\"size\":%d,\
                      \"completed\":%d,\"stolen\":%d,\"queue\":%d}}"
                     s.s_size t0 s.s_node tid s.s_size completed stolen
                     queue);
                add_event e
                  (Printf.sprintf
                     "{\"name\":\"stratum %d\",\"ph\":\"E\",\"ts\":%d,\
                      \"pid\":%d,\"tid\":%d}"
                     s.s_size t1 s.s_node tid);
                if stolen > 0 then
                  add_event e
                    (Printf.sprintf
                       "{\"name\":\"steal\",\"ph\":\"i\",\"ts\":%d,\
                        \"pid\":%d,\"tid\":%d,\"s\":\"t\",\
                        \"args\":{\"stolen\":%d}}"
                       t1 s.s_node tid stolen)
              end)
            s.s_workers)
        strata);
  (* Gauge series become counter tracks on pid 0. *)
  (match gauges with
  | None -> ()
  | Some g ->
      List.iter
        (fun (name, pts) ->
          List.iter
            (fun (ts, v) ->
              add_event e
                (Printf.sprintf
                   "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%d,\"pid\":0,\
                    \"args\":{\"value\":%s}}"
                   (jescape name) ts (jfloat v)))
            pts)
        (Gauges.series g));
  finish_events e

let write_chrome_trace ~path ?engine ?shards ?ledger ~trace ~gauges () =
  let doc = chrome_trace ?engine ?shards ?ledger ~trace ~gauges () in
  let oc = open_out path in
  output_string oc doc;
  close_out oc

type rollup_row = {
  epoch : int;
  assigned : int;
  functor_writes : int;
  batch_acks : int;
  close_ts : int;
}

let epoch_rollup trace =
  let tbl = Hashtbl.create 32 in
  let row epoch =
    match Hashtbl.find_opt tbl epoch with
    | Some r -> r
    | None ->
        let r =
          ref { epoch; assigned = 0; functor_writes = 0; batch_acks = 0;
                close_ts = -1 }
        in
        Hashtbl.replace tbl epoch r;
        r
  in
  Trace.iter trace ~f:(fun ev ->
      let open Trace in
      if ev.arg >= 0 then
        match ev.stage with
        | Epoch_assign ->
            let r = row ev.arg in
            r := { !r with assigned = !r.assigned + 1 }
        | Functor_write ->
            let r = row ev.arg in
            r := { !r with functor_writes = !r.functor_writes + 1 }
        | Batch_ack ->
            let r = row ev.arg in
            r := { !r with batch_acks = !r.batch_acks + 1 }
        | Epoch_close ->
            let r = row ev.arg in
            r := { !r with close_ts = ev.ts }
        | _ -> ());
  Hashtbl.fold (fun _ r acc -> !r :: acc) tbl []
  |> List.sort (fun a b -> compare a.epoch b.epoch)

let pp_rollup fmt rows =
  Format.fprintf fmt "%8s %10s %10s %10s %12s@."
    "epoch" "assigned" "functors" "acks" "close_us";
  List.iter
    (fun r ->
      Format.fprintf fmt "%8d %10d %10d %10d %12s@."
        r.epoch r.assigned r.functor_writes r.batch_acks
        (if r.close_ts < 0 then "-" else string_of_int r.close_ts))
    rows
