type series = {
  mutable ts : int array;
  mutable vs : float array;
  mutable n : int;
}

type t = {
  interval : int;
  mutable metrics : Sim.Metrics.t option;
  mutable probes : (unit -> unit) list;  (* reverse registration order *)
  tbl : (string, series) Hashtbl.t;
}

let create ?(interval_us = 5_000) () =
  if interval_us <= 0 then invalid_arg "Gauges.create: interval_us";
  { interval = interval_us; metrics = None; probes = []; tbl = Hashtbl.create 16 }

let interval_us t = t.interval

let bind_metrics t m = t.metrics <- Some m

let add_probe t f = t.probes <- f :: t.probes

let series_of t name =
  match Hashtbl.find_opt t.tbl name with
  | Some s -> s
  | None ->
      let s = { ts = Array.make 64 0; vs = Array.make 64 0.0; n = 0 } in
      Hashtbl.add t.tbl name s;
      s

let push s ~now v =
  if s.n = Array.length s.ts then begin
    let cap = s.n * 2 in
    let ts = Array.make cap 0 and vs = Array.make cap 0.0 in
    Array.blit s.ts 0 ts 0 s.n;
    Array.blit s.vs 0 vs 0 s.n;
    s.ts <- ts;
    s.vs <- vs
  end;
  s.ts.(s.n) <- now;
  s.vs.(s.n) <- v;
  s.n <- s.n + 1

let sample t ~now =
  List.iter (fun f -> f ()) (List.rev t.probes);
  match t.metrics with
  | None -> ()
  | Some m ->
      List.iter
        (fun (name, v) -> push (series_of t name) ~now v)
        (Sim.Metrics.gauges m)

let arm t ~sim ~for_us =
  let horizon = Sim.Engine.now sim + for_us in
  let rec tick () =
    sample t ~now:(Sim.Engine.now sim);
    if Sim.Engine.now sim + t.interval <= horizon then
      Sim.Engine.after sim t.interval tick
  in
  Sim.Engine.after sim t.interval tick

let series t =
  Hashtbl.fold
    (fun name s acc ->
      let pts = List.init s.n (fun i -> (s.ts.(i), s.vs.(i))) in
      (name, pts) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let clear t = Hashtbl.iter (fun _ s -> s.n <- 0) t.tbl
