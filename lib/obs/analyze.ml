module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  (* Recursive-descent over a cursor; only what the ledger emits (plus
     whitespace) is accepted. *)
  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = failwith (Printf.sprintf "json: %s at %d" msg !pos) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected %c" c)
    in
    let literal lit v =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then begin
        pos := !pos + l;
        v
      end
      else fail ("expected " ^ lit)
    in
    let string_lit () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
              incr pos;
              (if !pos >= n then fail "bad escape"
               else
                 match s.[!pos] with
                 | '"' -> Buffer.add_char b '"'
                 | '\\' -> Buffer.add_char b '\\'
                 | '/' -> Buffer.add_char b '/'
                 | 'n' -> Buffer.add_char b '\n'
                 | 't' -> Buffer.add_char b '\t'
                 | 'r' -> Buffer.add_char b '\r'
                 | 'b' -> Buffer.add_char b '\b'
                 | 'f' -> Buffer.add_char b '\012'
                 | 'u' ->
                     if !pos + 4 >= n then fail "bad \\u escape";
                     let code =
                       int_of_string ("0x" ^ String.sub s (!pos + 1) 4)
                     in
                     (* The ledger only escapes control chars; anything in
                        the BMP renders as UTF-8. *)
                     if code < 0x80 then Buffer.add_char b (Char.chr code)
                     else if code < 0x800 then begin
                       Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                       Buffer.add_char b
                         (Char.chr (0x80 lor (code land 0x3F)))
                     end
                     else begin
                       Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                       Buffer.add_char b
                         (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                       Buffer.add_char b
                         (Char.chr (0x80 lor (code land 0x3F)))
                     end;
                     pos := !pos + 4
                 | _ -> fail "bad escape");
              incr pos;
              go ()
          | c ->
              Buffer.add_char b c;
              incr pos;
              go ()
      in
      go ();
      Buffer.contents b
    in
    let number () =
      let start = !pos in
      if peek () = Some '-' then incr pos;
      while
        !pos < n
        &&
        match s.[!pos] with
        | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
        | _ -> false
      do
        incr pos
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else begin
            let fields = ref [] in
            let rec field () =
              skip_ws ();
              let k = string_lit () in
              skip_ws ();
              expect ':';
              let v = value () in
              fields := (k, v) :: !fields;
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  field ()
              | Some '}' -> incr pos
              | _ -> fail "expected , or }"
            in
            field ();
            Obj (List.rev !fields)
          end
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            Arr []
          end
          else begin
            let items = ref [] in
            let rec item () =
              let v = value () in
              items := v :: !items;
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  item ()
              | Some ']' -> incr pos
              | _ -> fail "expected , or ]"
            in
            item ();
            Arr (List.rev !items)
          end
      | Some '"' -> Str (string_lit ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (number ())
      | None -> fail "unexpected end of input"
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member name = function
    | Obj fields -> List.assoc_opt name fields
    | _ -> None

  let to_int ?(default = -1) = function
    | Some (Num f) -> int_of_float f
    | _ -> default

  let to_bool ?(default = false) = function
    | Some (Bool b) -> b
    | _ -> default

  let to_str ?(default = "") = function
    | Some (Str s) -> s
    | _ -> default
end

type epoch_row = {
  epoch : int;
  node : int;
  open_us : int;
  close_us : int;
  stretch_millis : int;
  assigned : int;
  fast_commits : int;
  fast_merges : int;
  watermark : int;
  watermark_lag_us : int;
  degraded : bool;
}

type event = { kind : string; ev_node : int; t_us : int; partition : int }

type segment = {
  cfg_epoch_us : int;
  nodes : int;
  replicas : int;
  rows : epoch_row list;
  events : event list;
}

let empty_segment =
  { cfg_epoch_us = 0; nodes = 0; replicas = 1; rows = []; events = [] }

let field name j = Json.member name j

let row_of_json j =
  { epoch = Json.to_int (field "epoch" j);
    node = Json.to_int (field "node" j);
    open_us = Json.to_int (field "open_us" j);
    close_us = Json.to_int (field "close_us" j);
    stretch_millis = Json.to_int (field "stretch_millis" j);
    assigned = Json.to_int ~default:0 (field "assigned" j);
    fast_commits = Json.to_int ~default:0 (field "fast_commits" j);
    fast_merges = Json.to_int ~default:0 (field "fast_merges" j);
    watermark = Json.to_int (field "watermark" j);
    watermark_lag_us = Json.to_int ~default:0 (field "watermark_lag_us" j);
    degraded =
      (match field "groups" j with
      | Some (Json.Arr gs) ->
          List.exists (fun g -> Json.to_bool (field "degraded" g)) gs
      | _ -> false) }

let event_of_json j =
  { kind = Json.to_str (field "kind" j);
    ev_node = Json.to_int (field "node" j);
    t_us = Json.to_int (field "t_us" j);
    partition = Json.to_int (field "partition" j) }

let parse_lines lines =
  (* Accumulate in reverse, flip per segment at the end. *)
  let segs = ref [] in
  let cur = ref None in
  let flush () =
    match !cur with
    | None -> ()
    | Some s ->
        segs := { s with rows = List.rev s.rows; events = List.rev s.events }
                :: !segs;
        cur := None
  in
  let current () =
    match !cur with
    | Some s -> s
    | None ->
        cur := Some empty_segment;
        empty_segment
  in
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if line <> "" then begin
        let j =
          try Json.parse line
          with Failure msg ->
            failwith (Printf.sprintf "line %d: %s" (i + 1) msg)
        in
        match Json.to_str (field "type" j) with
        | "meta" ->
            flush ();
            cur :=
              Some
                { empty_segment with
                  cfg_epoch_us = Json.to_int ~default:0 (field "cfg_epoch_us" j);
                  nodes = Json.to_int ~default:0 (field "nodes" j);
                  replicas = Json.to_int ~default:1 (field "replicas" j) }
        | "epoch" ->
            let s = current () in
            cur := Some { s with rows = row_of_json j :: s.rows }
        | "event" ->
            let s = current () in
            cur := Some { s with events = event_of_json j :: s.events }
        | "stratum" -> ignore (current ())
        | other ->
            failwith
              (Printf.sprintf "line %d: unknown record type %S" (i + 1)
                 other)
      end)
    lines;
  flush ();
  List.rev !segs

let load path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  parse_lines (List.rev !lines)

(* ---- incidents ---------------------------------------------------------- *)

type incident = {
  i_partition : int;
  crashed_node : int;
  promoted_node : int;
  crash_us : int;
  detect_us : int;
  promote_us : int;
  first_commit_us : int;
}

let resolved i = i.first_commit_us >= 0

(* One incident per promote: the crash is the latest crash at or before
   the promotion whose node is still down then (no restart in between);
   detect is the latest detect verdict for that node in the window; the
   first commit is the earliest first_commit event on the partition at or
   after the promotion. *)
let incidents seg =
  let evs = seg.events in
  List.filter_map
    (fun ev ->
      if ev.kind <> "promote" then None
      else begin
        let crash =
          List.fold_left
            (fun best e ->
              if
                e.kind = "crash" && e.t_us <= ev.t_us
                && (not
                      (List.exists
                         (fun r ->
                           r.kind = "restart" && r.ev_node = e.ev_node
                           && r.t_us > e.t_us && r.t_us <= ev.t_us)
                         evs))
                &&
                match best with None -> true | Some b -> e.t_us >= b.t_us
              then Some e
              else best)
            None evs
        in
        let detect =
          match crash with
          | None -> None
          | Some c ->
              List.fold_left
                (fun best e ->
                  if
                    e.kind = "detect" && e.ev_node = c.ev_node
                    && e.t_us >= c.t_us && e.t_us <= ev.t_us
                    &&
                    match best with
                    | None -> true
                    | Some b -> e.t_us >= b.t_us
                  then Some e
                  else best)
                None evs
        in
        let first_commit =
          List.fold_left
            (fun best e ->
              if
                e.kind = "first_commit" && e.partition = ev.partition
                && e.t_us >= ev.t_us
                &&
                match best with None -> true | Some b -> e.t_us < b.t_us
              then Some e
              else best)
            None evs
        in
        Some
          { i_partition = ev.partition;
            crashed_node =
              (match crash with Some c -> c.ev_node | None -> -1);
            promoted_node = ev.ev_node;
            crash_us = (match crash with Some c -> c.t_us | None -> -1);
            detect_us = (match detect with Some d -> d.t_us | None -> -1);
            promote_us = ev.t_us;
            first_commit_us =
              (match first_commit with Some f -> f.t_us | None -> -1) }
      end)
    evs

let incident_json i =
  Printf.sprintf
    "{\"partition\":%d,\"crashed_node\":%d,\"promoted_node\":%d,\
     \"crash_us\":%d,\"detect_us\":%d,\"promote_us\":%d,\
     \"first_commit_us\":%d,\"detect_latency_us\":%d,\
     \"promote_latency_us\":%d,\"recover_latency_us\":%d,\"resolved\":%b}"
    i.i_partition i.crashed_node i.promoted_node i.crash_us i.detect_us
    i.promote_us i.first_commit_us
    (if i.crash_us >= 0 && i.detect_us >= 0 then i.detect_us - i.crash_us
     else -1)
    (if i.detect_us >= 0 then i.promote_us - i.detect_us else -1)
    (if resolved i then i.first_commit_us - i.promote_us else -1)
    (resolved i)

(* ---- anomalies ---------------------------------------------------------- *)

type anomaly = { a_kind : string; a_detail : string }

let anomalies seg =
  let acc = ref [] in
  let add kind detail = acc := { a_kind = kind; a_detail = detail } :: !acc in
  List.iter
    (fun r ->
      if r.stretch_millis > 2_000 then
        add "epoch_stretch"
          (Printf.sprintf "node %d epoch %d ran %d.%03dx the configured duration"
             r.node r.epoch (r.stretch_millis / 1000)
             (r.stretch_millis mod 1000));
      (* Only windows that received work can meaningfully lag: once the
         workload drains, the newest final value just ages. *)
      if
        r.assigned > 0 && seg.cfg_epoch_us > 0
        && r.watermark_lag_us > 4 * seg.cfg_epoch_us
      then
        add "watermark_lag"
          (Printf.sprintf "node %d epoch %d watermark lag %dus (> 4 epochs)"
             r.node r.epoch r.watermark_lag_us);
      if r.degraded then
        add "single_copy"
          (Printf.sprintf
             "node %d epoch %d closed on a degraded single-copy floor"
             r.node r.epoch))
    seg.rows;
  List.rev !acc

(* ---- doctor invariants -------------------------------------------------- *)

let check seg =
  let bad = ref [] in
  let viol fmt = Printf.ksprintf (fun m -> bad := m :: !bad) fmt in
  let by_node = Hashtbl.create 8 in
  List.iter
    (fun r ->
      if r.epoch < 0 then viol "epoch row with negative epoch (%d)" r.epoch;
      if r.node < 0 then viol "epoch row with negative node (%d)" r.node;
      if r.assigned < 0 || r.fast_commits < 0 || r.fast_merges < 0 then
        viol "node %d epoch %d: negative counter" r.node r.epoch;
      if r.fast_commits > r.assigned then
        viol "node %d epoch %d: fast commits (%d) exceed assigned (%d)"
          r.node r.epoch r.fast_commits r.assigned;
      if r.close_us >= 0 && r.open_us >= 0 && r.close_us < r.open_us then
        viol "node %d epoch %d closed (%dus) before it opened (%dus)"
          r.node r.epoch r.close_us r.open_us;
      if r.close_us >= 0 then
        Hashtbl.replace by_node r.node
          (r
          :: (match Hashtbl.find_opt by_node r.node with
             | Some l -> l
             | None -> [])))
    seg.rows;
  List.iter
    (fun ev ->
      (match ev.kind with
      | "crash" | "restart" | "detect" | "promote" | "first_commit" -> ()
      | k -> viol "unknown event kind %S" k);
      if ev.t_us < 0 then viol "event %s with negative time" ev.kind)
    seg.events;
  (* A crash of [node] in (t0, t1] excuses a watermark reset: the engine
     restarts empty and recovery rebuilds it. *)
  let crashed_between node t0 t1 =
    List.exists
      (fun e ->
        e.kind = "crash" && e.ev_node = node && e.t_us > t0 && e.t_us <= t1)
      seg.events
  in
  Hashtbl.iter
    (fun node rows ->
      let rows =
        List.sort (fun a b -> Int.compare a.epoch b.epoch) rows
      in
      let rec walk = function
        | a :: (b :: _ as rest) ->
            if b.epoch <> a.epoch + 1 then
              viol "node %d: closed epochs not contiguous (%d then %d)" node
                a.epoch b.epoch;
            if
              a.watermark >= 0 && b.watermark >= 0
              && b.watermark < a.watermark
              && not (crashed_between node a.close_us b.close_us)
            then
              viol
                "node %d: watermark regressed %d -> %d across epochs %d-%d \
                 with no crash"
                node a.watermark b.watermark a.epoch b.epoch;
            walk rest
        | [ _ ] | [] -> ()
      in
      walk rows)
    by_node;
  if seg.replicas > 1 then
    List.iter
      (fun e ->
        if e.kind = "crash" then begin
          let handled =
            List.exists
              (fun e' ->
                e'.t_us >= e.t_us
                && ((e'.kind = "restart" && e'.ev_node = e.ev_node)
                   || e'.kind = "promote"))
              seg.events
          in
          if not handled then
            viol
              "node %d crashed at %dus with no subsequent promotion or \
               restart (k=%d)"
              e.ev_node e.t_us seg.replicas
        end)
      seg.events;
  (* An unresolved incident is only a violation when transactions were
     still arriving after the promotion (a window that opened at or after
     it got work assigned); a failover after the workload drained has
     nothing to commit. *)
  let traffic_after t =
    List.exists
      (fun r -> r.assigned > 0 && r.open_us >= t)
      seg.rows
  in
  List.iter
    (fun i ->
      if (not (resolved i)) && traffic_after i.promote_us then
        viol
          "incident on partition %d (promoted to node %d at %dus) never \
           saw a post-failover commit"
          i.i_partition i.promoted_node i.promote_us)
    (incidents seg);
  List.rev !bad
