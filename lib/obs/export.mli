(** Exporters for recorded observability data.

    The Chrome trace_events format is the JSON array consumed by
    [chrome://tracing] and Perfetto ([ui.perfetto.dev]): each lifecycle
    event becomes an instant ("i") event, each sampled transaction a
    complete ("X") span from its first to its last stage, each gauge
    series a counter ("C") track, with one process per simulated node and
    one thread per transaction shard. *)

val chrome_trace :
  ?engine:string -> ?shards:int -> ?ledger:Ledger.t -> trace:Trace.t ->
  gauges:Gauges.t option -> unit -> string
(** Render a full Chrome trace_events JSON document.  [shards] (default
    64) is the number of tid lanes transactions are folded onto.
    [ledger] adds per-worker runtime tracks above the shard lanes
    (tid = shards + worker): one B/E span per worker per recorded
    [--runtime real] stratum, with steal instants at span end. *)

val write_chrome_trace :
  path:string -> ?engine:string -> ?shards:int -> ?ledger:Ledger.t ->
  trace:Trace.t -> gauges:Gauges.t option -> unit -> unit

type rollup_row = {
  epoch : int;
  assigned : int;        (** txns assigned to this epoch *)
  functor_writes : int;  (** functor install events observed *)
  batch_acks : int;
  close_ts : int;        (** sim time the epoch closed, -1 if unseen *)
}

val epoch_rollup : Trace.t -> rollup_row list
(** Aggregate per-epoch counts from the ring buffer, sorted by epoch.
    Only epochs that appear in at least one event are listed. *)

val pp_rollup : Format.formatter -> rollup_row list -> unit
(** Render the rollup as an aligned text table. *)
