type group_row = {
  g_partition : int;
  mutable g_ship_lags : int list;
  mutable g_gate_wait_us : int;
  mutable g_ack_floor : int;
  mutable g_live_followers : int;
  mutable g_degraded : bool;
}

type plan_row = {
  pl_nodes : int;
  pl_edges : int;
  pl_strata : int;
  pl_critical_path : int;
}

type row = {
  r_epoch : int;
  r_node : int;
  mutable r_open_us : int;
  mutable r_close_us : int;
  mutable r_wall_open_us : int;
  mutable r_wall_close_us : int;
  mutable r_assigned : int;
  mutable r_fast_commits : int;
  mutable r_fast_merges : int;
  mutable r_watermark : int;
  mutable r_watermark_lag_us : int;
  mutable r_groups : group_row list;
  mutable r_plan : plan_row option;
  mutable r_pool : (int * int * int) array option;
}

type event_kind = Crash | Restart | Detect | Promote | First_commit

type event = {
  e_kind : event_kind;
  e_node : int;
  e_t_us : int;
  e_partition : int;
}

type stratum = {
  s_node : int;
  s_t0_us : int;
  s_t1_us : int;
  s_size : int;
  s_workers : (int * int * int) array;
}

type t = {
  mutable cfg_epoch_us : int;
  mutable nodes : int;
  mutable replicas : int;
  tbl : (int * int, row) Hashtbl.t;  (* (epoch, node) -> row *)
  mutable evs : event list;  (* newest first *)
  mutable strat : stratum list;  (* newest first *)
  watch : (int, unit) Hashtbl.t;  (* partitions awaiting first commit *)
}

let create ?(cfg_epoch_us = 0) ?(nodes = 0) ?(replicas = 1) () =
  { cfg_epoch_us; nodes; replicas;
    tbl = Hashtbl.create 256;
    evs = [];
    strat = [];
    watch = Hashtbl.create 4 }

let set_meta t ~cfg_epoch_us ~nodes ~replicas =
  t.cfg_epoch_us <- cfg_epoch_us;
  t.nodes <- nodes;
  t.replicas <- replicas

let cfg_epoch_us t = t.cfg_epoch_us

let wall_us () = int_of_float (Unix.gettimeofday () *. 1e6)

let row t ~node ~epoch =
  let key = (epoch, node) in
  match Hashtbl.find_opt t.tbl key with
  | Some r -> r
  | None ->
      let r =
        { r_epoch = epoch; r_node = node; r_open_us = -1; r_close_us = -1;
          r_wall_open_us = -1; r_wall_close_us = -1; r_assigned = 0;
          r_fast_commits = 0; r_fast_merges = 0; r_watermark = -1;
          r_watermark_lag_us = 0; r_groups = []; r_plan = None;
          r_pool = None }
      in
      Hashtbl.replace t.tbl key r;
      r

let group r ~partition =
  match
    List.find_opt (fun g -> g.g_partition = partition) r.r_groups
  with
  | Some g -> g
  | None ->
      let g =
        { g_partition = partition; g_ship_lags = []; g_gate_wait_us = -1;
          g_ack_floor = -1; g_live_followers = -1; g_degraded = false }
      in
      r.r_groups <- g :: r.r_groups;
      g

let note_open t ~node ~epoch ~t_us =
  let r = row t ~node ~epoch in
  r.r_open_us <- t_us;
  r.r_wall_open_us <- wall_us ()

let note_assigned t ~node ~epoch =
  let r = row t ~node ~epoch in
  r.r_assigned <- r.r_assigned + 1

let note_fast_commit t ~node ~epoch =
  let r = row t ~node ~epoch in
  r.r_fast_commits <- r.r_fast_commits + 1

let note_fast_merges t ~node ~epoch ~count =
  if count > 0 then begin
    let r = row t ~node ~epoch in
    r.r_fast_merges <- r.r_fast_merges + count
  end

let note_ship_lag t ~node ~epoch ~partition ~lag_us =
  let g = group (row t ~node ~epoch) ~partition in
  g.g_ship_lags <- lag_us :: g.g_ship_lags

let note_gate_wait t ~node ~epoch ~partition ~wait_us =
  let g = group (row t ~node ~epoch) ~partition in
  g.g_gate_wait_us <- wait_us

let note_group t ~node ~epoch ~partition ~ack_floor ~live_followers
    ~degraded =
  let g = group (row t ~node ~epoch) ~partition in
  g.g_ack_floor <- ack_floor;
  g.g_live_followers <- live_followers;
  g.g_degraded <- degraded

let note_plan t ~node ~epoch ~nodes ~edges ~strata ~critical_path =
  let r = row t ~node ~epoch in
  r.r_plan <-
    Some
      { pl_nodes = nodes; pl_edges = edges; pl_strata = strata;
        pl_critical_path = critical_path }

let note_pool t ~node ~epoch ~workers =
  let r = row t ~node ~epoch in
  r.r_pool <- Some workers

let note_close t ~node ~epoch ~t_us ~watermark ~watermark_lag_us =
  let r = row t ~node ~epoch in
  r.r_close_us <- t_us;
  r.r_wall_close_us <- wall_us ();
  r.r_watermark <- watermark;
  r.r_watermark_lag_us <- watermark_lag_us

let note_event t ~kind ~node ~t_us ?(partition = -1) () =
  t.evs <-
    { e_kind = kind; e_node = node; e_t_us = t_us; e_partition = partition }
    :: t.evs;
  if kind = Promote && partition >= 0 then
    Hashtbl.replace t.watch partition ()

let awaiting_first_commit t = Hashtbl.length t.watch > 0

let note_commit t ~node ~t_us ~partitions =
  if Hashtbl.length t.watch > 0 then
    List.iter
      (fun p ->
        if Hashtbl.mem t.watch p then begin
          Hashtbl.remove t.watch p;
          note_event t ~kind:First_commit ~node ~t_us ~partition:p ()
        end)
      partitions

let note_stratum t ~node ~t0_us ~t1_us ~size ~workers =
  t.strat <-
    { s_node = node; s_t0_us = t0_us; s_t1_us = t1_us; s_size = size;
      s_workers = workers }
    :: t.strat

let rows t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.tbl []
  |> List.sort (fun a b ->
         match Int.compare a.r_epoch b.r_epoch with
         | 0 -> Int.compare a.r_node b.r_node
         | c -> c)

let events t = List.rev t.evs
let strata t = List.rev t.strat

let kind_name = function
  | Crash -> "crash"
  | Restart -> "restart"
  | Detect -> "detect"
  | Promote -> "promote"
  | First_commit -> "first_commit"

let clear t =
  Hashtbl.reset t.tbl;
  t.evs <- [];
  t.strat <- [];
  Hashtbl.reset t.watch

(* ---- JSONL rendering ---------------------------------------------------- *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then -1
  else sorted.(min (n - 1) (p * n / 100))

let group_json g =
  let sorted = Array.of_list g.g_ship_lags in
  Array.sort Int.compare sorted;
  Printf.sprintf
    "{\"group\":%d,\"ships\":%d,\"ship_p50_us\":%d,\"ship_p99_us\":%d,\
     \"gate_wait_us\":%d,\"ack_floor\":%d,\"live_followers\":%d,\
     \"degraded\":%b}"
    g.g_partition (Array.length sorted)
    (percentile sorted 50) (percentile sorted 99)
    g.g_gate_wait_us g.g_ack_floor g.g_live_followers g.g_degraded

let row_json t r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"type\":\"epoch\",\"epoch\":%d,\"node\":%d,\"open_us\":%d,\
        \"close_us\":%d,\"wall_open_us\":%d,\"wall_close_us\":%d"
       r.r_epoch r.r_node r.r_open_us r.r_close_us r.r_wall_open_us
       r.r_wall_close_us);
  (* Stretch vs the configured duration, in thousandths (ints keep the
     renderer locale-proof); -1 when either bound is missing. *)
  let stretch =
    if r.r_open_us >= 0 && r.r_close_us >= 0 && t.cfg_epoch_us > 0 then
      (r.r_close_us - r.r_open_us) * 1000 / t.cfg_epoch_us
    else -1
  in
  Buffer.add_string b
    (Printf.sprintf
       ",\"stretch_millis\":%d,\"assigned\":%d,\"fast_commits\":%d,\
        \"fast_merges\":%d,\"watermark\":%d,\"watermark_lag_us\":%d"
       stretch r.r_assigned r.r_fast_commits r.r_fast_merges r.r_watermark
       r.r_watermark_lag_us);
  (match r.r_plan with
  | None -> ()
  | Some p ->
      Buffer.add_string b
        (Printf.sprintf
           ",\"plan\":{\"nodes\":%d,\"edges\":%d,\"strata\":%d,\
            \"critical_path\":%d}"
           p.pl_nodes p.pl_edges p.pl_strata p.pl_critical_path));
  (match r.r_pool with
  | None -> ()
  | Some ws ->
      Buffer.add_string b ",\"pool\":[";
      Array.iteri
        (fun i (c, s, q) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf
               "{\"worker\":%d,\"completed\":%d,\"stolen\":%d,\"queue\":%d}"
               i c s q))
        ws;
      Buffer.add_char b ']');
  if r.r_groups <> [] then begin
    Buffer.add_string b ",\"groups\":[";
    List.iteri
      (fun i g ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (group_json g))
      (List.sort
         (fun a b -> Int.compare a.g_partition b.g_partition)
         r.r_groups)
    ;
    Buffer.add_char b ']'
  end;
  Buffer.add_char b '}';
  Buffer.contents b

let event_json ev =
  Printf.sprintf
    "{\"type\":\"event\",\"kind\":\"%s\",\"node\":%d,\"t_us\":%d,\
     \"partition\":%d}"
    (kind_name ev.e_kind) ev.e_node ev.e_t_us ev.e_partition

let stratum_json s =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"type\":\"stratum\",\"node\":%d,\"t0_us\":%d,\"t1_us\":%d,\
        \"size\":%d,\"workers\":["
       s.s_node s.s_t0_us s.s_t1_us s.s_size);
  Array.iteri
    (fun i (c, st, q) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"worker\":%d,\"completed\":%d,\"stolen\":%d,\"queue\":%d}" i c
           st q))
    s.s_workers;
  Buffer.add_string b "]}";
  Buffer.contents b

let to_lines t =
  let meta =
    Printf.sprintf
      "{\"type\":\"meta\",\"cfg_epoch_us\":%d,\"nodes\":%d,\"replicas\":%d}"
      t.cfg_epoch_us t.nodes t.replicas
  in
  (meta :: List.map (row_json t) (rows t))
  @ List.map event_json (events t)
  @ List.map stratum_json (strata t)
