(** Fixed-interval time-series gauges.

    A [Gauges.t] is a periodic sampler driven off {!Sim.Engine}: every
    [interval_us] of simulated time it runs the registered probes (which
    compute instantaneous values and publish them through the
    {!Sim.Metrics} gauge primitive) and then snapshots every gauge of the
    bound metrics into an append-only series of [(sim_time, value)]
    points.

    Sampling is bounded: {!arm} schedules ticks only up to a horizon, so a
    simulation driven without an [~until] horizon cannot be kept alive
    forever by the sampler.  Probes must be read-only with respect to the
    simulation (they run inside engine events; mutating anything but
    metrics would break the tracing-is-behaviour-neutral contract). *)

type t

val create : ?interval_us:int -> unit -> t
(** [interval_us] defaults to 5000 (one sample per 5 simulated ms). *)

val interval_us : t -> int

val bind_metrics : t -> Sim.Metrics.t -> unit
(** Snapshot every gauge of this metrics registry at each tick.  Bound
    once per run by the cluster that owns the metrics. *)

val add_probe : t -> (unit -> unit) -> unit
(** Register a probe run at each tick before the snapshot; probes publish
    values with [Sim.Metrics.set_gauge]. *)

val sample : t -> now:int -> unit
(** Take one sample immediately (probes + snapshot). *)

val arm : t -> sim:Sim.Engine.t -> for_us:int -> unit
(** Schedule periodic sampling from now until [now + for_us]. *)

val series : t -> (string * (int * float) list) list
(** Every recorded series, sorted by name; points oldest first. *)

val clear : t -> unit
(** Drop recorded points (probes and bindings are kept).  Used to discard
    the warm-up window. *)
