type t = {
  trace : Trace.t;
  gauges : Gauges.t;
  ledger : Ledger.t option;
  corr_window_us : int;
  mutable last_fault_us : int;
  mutable fault_drops : int;
  mutable fault_delays : int;
}

let create ?trace_capacity ?sample ?gauge_interval_us ?ledger
    ?(corr_window_us = 2_000) () =
  { trace = Trace.create ?capacity:trace_capacity ?sample ();
    gauges = Gauges.create ?interval_us:gauge_interval_us ();
    ledger;
    corr_window_us;
    last_fault_us = min_int;
    fault_drops = 0;
    fault_delays = 0 }

let trace t = t.trace
let gauges t = t.gauges
let ledger t = t.ledger

let fault_tag t ~now =
  (* [min_int] marks "no fault seen"; subtracting it from [now] would
     wrap around, so test it explicitly. *)
  if t.last_fault_us <> min_int && now - t.last_fault_us <= t.corr_window_us
  then 1
  else 0

let emit t ~txn ~stage ~node ~ts ?(arg = -1) () =
  if Trace.would_sample t.trace ~txn then
    Trace.emit t.trace ~txn ~stage ~node ~ts ~arg ~tag:(fault_tag t ~now:ts)

let note_fault t ~now ~node ~kind =
  t.last_fault_us <- now;
  let stage =
    match kind with
    | `Drop ->
        t.fault_drops <- t.fault_drops + 1;
        Trace.Fault_drop
    | `Delay ->
        t.fault_delays <- t.fault_delays + 1;
        Trace.Fault_delay
  in
  if Trace.enabled t.trace then
    Trace.emit t.trace ~txn:(-1) ~stage ~node ~ts:now ~arg:(-1) ~tag:1

let fault_drops t = t.fault_drops
let fault_delays t = t.fault_delays

let arm t ~sim ~for_us = Gauges.arm t.gauges ~sim ~for_us

let measure_reset t =
  Trace.clear t.trace;
  Gauges.clear t.gauges;
  (match t.ledger with Some l -> Ledger.clear l | None -> ());
  t.last_fault_us <- min_int;
  t.fault_drops <- 0;
  t.fault_delays <- 0
