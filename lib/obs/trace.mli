(** Transaction lifecycle tracing: a fixed ring buffer of int-encoded
    events, cheap enough to leave compiled into every engine hot path.

    An event is (txn id, stage, node, sim-time, arg, fault-tag), stored in
    parallel [int array]s — no closures, no per-event allocation.  Tracing
    is toggled by wiring an {!Obs.Ctl.t} into [Kernel.Params]; when absent
    the emit sites reduce to one [match] on [None].

    Sampling is per transaction and deterministic: a txn is traced iff
    [txn mod sample = 0] (sample = 1 traces everything), so every stage of
    a sampled transaction is kept and unsampled transactions cost one
    modulo.  Events not tied to a transaction (epoch closes, fault
    markers) pass [txn = -1] and are always kept while tracing is on. *)

type stage =
  (* ALOHA lifecycle (§III / Algorithm 1) *)
  | Submit  (** client request reached the frontend *)
  | Epoch_assign  (** timestamp acquired inside an epoch window *)
  | Functor_write  (** write-only phase done (all installs acked) *)
  | Batch_ack  (** a backend reported its functor batch final *)
  | Epoch_close  (** an epoch closed at this node ([arg] = epoch) *)
  | Compute_start  (** processor dispatched the functor for evaluation *)
  | Compute_done  (** a pending functor reached its final value *)
  | Read_served  (** a read (RO txn or on-demand Get) was answered *)
  (* Calvin sequencing / scheduling *)
  | Sequenced  (** txn shipped in a sequencer batch ([arg] = epoch) *)
  | Scheduled  (** scheduler admitted the txn to the lock manager *)
  | Locks_acquired  (** all local locks granted *)
  | Exec_start
  | Exec_done
  (* 2PL *)
  | Lock_timeout  (** participant-side wound by timeout *)
  | Prepared  (** 2PC phase 1 complete at the coordinator *)
  (* shared terminal / control stages *)
  | Committed
  | Aborted
  | Restarted  (** 2PL backoff-and-retry *)
  (* network fault markers (emitted via {!Ctl.note_fault}) *)
  | Fault_drop
  | Fault_delay
  (* planned compute mode (per-epoch dependency-graph planner) *)
  | Plan_build  (** a plan was built at epoch close ([arg] = node count) *)
  | Plan_evaluate
      (** the last node of a plan finalised ([arg] = elapsed µs since the
          plan was dispatched) *)
  | Stratum_dispatch
      (** real runtime: a planner stratum left for the worker-domain pool
          ([arg] = batch size) *)
  (* replication *)
  | Wal_ship
      (** a primary shipped freshly durable WAL entries to its followers
          ([arg] = entry count) *)
  | Promote
      (** a follower was promoted to primary ([arg] = partition) *)
  (* algebraic fast path *)
  | Fastpath_commit
      (** an all-commutative transaction committed coordination-free at
          install-ack time, without waiting for epoch close or functor
          computation ([arg] = commit latency in µs) *)

val stage_name : stage -> string
(** Stable lower-snake-case name, e.g. ["epoch_assign"] — the [name] field
    of exported Chrome trace events. *)

val stage_of_int : int -> stage
val stage_to_int : stage -> int

type t

val create : ?capacity:int -> ?sample:int -> unit -> t
(** [capacity] (default 65536) events are kept; older ones are
    overwritten.  [sample] (default 1) keeps 1-in-N transactions. *)

val sample_rate : t -> int
val capacity : t -> int

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val would_sample : t -> txn:int -> bool
(** The hot-path gate: true when tracing is on and the txn is sampled. *)

val emit :
  t -> txn:int -> stage:stage -> node:int -> ts:int -> arg:int -> tag:int ->
  unit
(** Unconditionally record one event (callers gate with
    {!would_sample}).  [arg] carries the epoch where known, else [-1];
    [tag] is 1 when the event is fault-correlated. *)

type event = {
  txn : int;
  stage : stage;
  node : int;
  ts : int;
  arg : int;
  tag : int;
}

val length : t -> int
(** Events currently held (≤ capacity). *)

val total : t -> int
(** Events ever emitted (≥ length; the difference wrapped). *)

val dropped : t -> int
(** Events lost to ring wrap-around. *)

val iter : t -> f:(event -> unit) -> unit
(** Oldest-to-newest emission order (timestamps are almost sorted; the
    [Submit] stage is emitted retroactively and may precede its
    neighbours — exporters that need sorted output sort). *)

val events : t -> event list

val clear : t -> unit
(** Forget everything (used to discard the warm-up window). *)
