type stage =
  | Submit
  | Epoch_assign
  | Functor_write
  | Batch_ack
  | Epoch_close
  | Compute_start
  | Compute_done
  | Read_served
  | Sequenced
  | Scheduled
  | Locks_acquired
  | Exec_start
  | Exec_done
  | Lock_timeout
  | Prepared
  | Committed
  | Aborted
  | Restarted
  | Fault_drop
  | Fault_delay
  | Plan_build
  | Plan_evaluate
  | Stratum_dispatch
  | Wal_ship
  | Promote
  | Fastpath_commit

let stage_name = function
  | Submit -> "submit"
  | Epoch_assign -> "epoch_assign"
  | Functor_write -> "functor_write"
  | Batch_ack -> "batch_ack"
  | Epoch_close -> "epoch_close"
  | Compute_start -> "compute_start"
  | Compute_done -> "compute_done"
  | Read_served -> "read_served"
  | Sequenced -> "sequenced"
  | Scheduled -> "scheduled"
  | Locks_acquired -> "locks_acquired"
  | Exec_start -> "exec_start"
  | Exec_done -> "exec_done"
  | Lock_timeout -> "lock_timeout"
  | Prepared -> "prepared"
  | Committed -> "committed"
  | Aborted -> "aborted"
  | Restarted -> "restarted"
  | Fault_drop -> "fault_drop"
  | Fault_delay -> "fault_delay"
  | Plan_build -> "plan_build"
  | Plan_evaluate -> "plan_evaluate"
  | Stratum_dispatch -> "stratum_dispatch"
  | Wal_ship -> "wal_ship"
  | Promote -> "promote"
  | Fastpath_commit -> "fastpath_commit"

let stage_to_int = function
  | Submit -> 0
  | Epoch_assign -> 1
  | Functor_write -> 2
  | Batch_ack -> 3
  | Epoch_close -> 4
  | Compute_start -> 5
  | Compute_done -> 6
  | Read_served -> 7
  | Sequenced -> 8
  | Scheduled -> 9
  | Locks_acquired -> 10
  | Exec_start -> 11
  | Exec_done -> 12
  | Lock_timeout -> 13
  | Prepared -> 14
  | Committed -> 15
  | Aborted -> 16
  | Restarted -> 17
  | Fault_drop -> 18
  | Fault_delay -> 19
  | Plan_build -> 20
  | Plan_evaluate -> 21
  | Stratum_dispatch -> 22
  | Wal_ship -> 23
  | Promote -> 24
  | Fastpath_commit -> 25

let stage_of_int = function
  | 0 -> Submit
  | 1 -> Epoch_assign
  | 2 -> Functor_write
  | 3 -> Batch_ack
  | 4 -> Epoch_close
  | 5 -> Compute_start
  | 6 -> Compute_done
  | 7 -> Read_served
  | 8 -> Sequenced
  | 9 -> Scheduled
  | 10 -> Locks_acquired
  | 11 -> Exec_start
  | 12 -> Exec_done
  | 13 -> Lock_timeout
  | 14 -> Prepared
  | 15 -> Committed
  | 16 -> Aborted
  | 17 -> Restarted
  | 18 -> Fault_drop
  | 19 -> Fault_delay
  | 20 -> Plan_build
  | 21 -> Plan_evaluate
  | 22 -> Stratum_dispatch
  | 23 -> Wal_ship
  | 24 -> Promote
  | 25 -> Fastpath_commit
  | n -> invalid_arg (Printf.sprintf "Trace.stage_of_int: %d" n)

(* Struct-of-arrays ring buffer: one slot is six ints across parallel
   arrays, written with plain stores.  [next] is the next write slot,
   [total] counts every emit so wrap-around is accounted for.

   Domain discipline (--runtime real): plain stores mean the ring is
   single-writer by contract.  Every emit site runs on the orchestrating
   domain — the real runtime's workers never trace; stratum activity is
   recorded by the orchestrator via [Stratum_dispatch] (batch sizes) and
   the [runtime.pool.*] peak gauges — so no per-event synchronization is
   needed, keeping the tracing-off fast path a single option test. *)
type t = {
  cap : int;
  sample : int;
  mutable on : bool;
  txn_a : int array;
  stage_a : int array;
  node_a : int array;
  ts_a : int array;
  arg_a : int array;
  tag_a : int array;
  mutable next : int;
  mutable total : int;
}

let create ?(capacity = 65536) ?(sample = 1) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity";
  if sample <= 0 then invalid_arg "Trace.create: sample";
  { cap = capacity;
    sample;
    on = true;
    txn_a = Array.make capacity 0;
    stage_a = Array.make capacity 0;
    node_a = Array.make capacity 0;
    ts_a = Array.make capacity 0;
    arg_a = Array.make capacity 0;
    tag_a = Array.make capacity 0;
    next = 0;
    total = 0 }

let sample_rate t = t.sample
let capacity t = t.cap
let enabled t = t.on
let set_enabled t b = t.on <- b

let would_sample t ~txn =
  t.on && (txn < 0 || t.sample <= 1 || txn mod t.sample = 0)

let emit t ~txn ~stage ~node ~ts ~arg ~tag =
  let i = t.next in
  t.txn_a.(i) <- txn;
  t.stage_a.(i) <- stage_to_int stage;
  t.node_a.(i) <- node;
  t.ts_a.(i) <- ts;
  t.arg_a.(i) <- arg;
  t.tag_a.(i) <- tag;
  let next = i + 1 in
  t.next <- (if next = t.cap then 0 else next);
  t.total <- t.total + 1

type event = {
  txn : int;
  stage : stage;
  node : int;
  ts : int;
  arg : int;
  tag : int;
}

let length t = if t.total < t.cap then t.total else t.cap
let total t = t.total
let dropped t = if t.total > t.cap then t.total - t.cap else 0

let event_at t i =
  { txn = t.txn_a.(i);
    stage = stage_of_int t.stage_a.(i);
    node = t.node_a.(i);
    ts = t.ts_a.(i);
    arg = t.arg_a.(i);
    tag = t.tag_a.(i) }

let iter t ~f =
  let n = length t in
  (* Oldest slot: [next] once wrapped, 0 before. *)
  let start = if t.total > t.cap then t.next else 0 in
  for k = 0 to n - 1 do
    let i = start + k in
    let i = if i >= t.cap then i - t.cap else i in
    f (event_at t i)
  done

let events t =
  let acc = ref [] in
  iter t ~f:(fun e -> acc := e :: !acc);
  List.rev !acc

let clear t =
  t.next <- 0;
  t.total <- 0
