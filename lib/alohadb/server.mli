(** An ALOHA-DB server: one process acting as both frontend (transaction
    coordinator) and backend (partition storage + functor processors), as
    in the paper's deployment (§III-A).

    The frontend side accepts client requests, assigns timestamps inside
    the epoch validity window (or the straggler window, §III-C), transforms
    read-write transactions into per-partition batches of functors,
    drives the write-only phase (with the second-round abort on
    precondition failure), delays latest-version read-only transactions to
    the next epoch, and tracks functor-computing completion for
    latency accounting and [Ack_on_computed] replies.

    The backend side owns one partition: it installs functors (buffering
    processor metadata until the epoch closes), serves reads, evaluates
    functors through {!Functor_cc.Compute_engine}, and routes pushes and
    deferred writes.  All CPU work is charged to the server's worker
    pool. *)

type t

val create :
  sim:Sim.Engine.t ->
  data:Message.rpc ->
  control:Epoch.Protocol.rpc ->
  addr:Net.Address.t ->
  node_id:int ->
  em:Net.Address.t ->
  clock:Clocksync.Node_clock.t ->
  partition_of:(Mvstore.Key.t -> int) ->
  addr_of_partition:(int -> Net.Address.t) ->
  my_partition:int ->
  registry:Functor_cc.Registry.t ->
  config:Config.t ->
  metrics:Sim.Metrics.t ->
  ?obs:Obs.Ctl.t ->
  ?real_pool:Runtime.Pool.t ->
  unit -> t
(** Wires up all handlers; the server is passive until the EM grants the
    first epoch.  [obs] turns on lifecycle tracing for every transaction
    this server coordinates or stores.  [real_pool] (shared cluster-wide)
    makes the planned compute mode evaluate its strata on worker domains
    — the [--runtime real] backend. *)

val submit : t -> Txn.request -> (Txn.result -> unit) -> unit
(** Client entry point (clients talk to their frontend directly, as the
    benchmark harness of the paper does).  The callback fires according to
    the request's acknowledgement mode. *)

val load_initial : t -> key:string -> Functor_cc.Value.t -> unit
(** Preload a row into this server's partition at version 0.  Only valid
    for keys this partition owns. *)

val engine : t -> Functor_cc.Compute_engine.t
(** The partition's compute engine (tests reach into storage through
    it). *)

val pool : t -> Sim.Worker_pool.t

val participant : t -> Epoch.Participant.t

val addr : t -> Net.Address.t

val clock : t -> Clocksync.Node_clock.t
(** The server's local clock (fault injection skews it). *)

val held_requests : t -> int
(** Client requests waiting for a usable timestamp window. *)

val wal : t -> Wal.t option
(** The partition's write-ahead log when [config.durability] is on. *)

val compute_queue_depth : t -> int
(** Functor items awaiting dispatch or CPU (buffered in the processor
    plus queued at the worker pool) — gauge probe. *)

val inflight_functors : t -> int
(** Installed functors not yet final on this partition — gauge probe. *)

val value_watermark_lag_us : t -> int
(** Age of the newest final version on this partition (0 before any
    functor finalises) — gauge probe. *)

val wal_pending_bytes : t -> int
(** Nominal unflushed WAL bytes (0 when durability is off) — gauge
    probe. *)

val replication_lag : t -> int
(** Total entries shipped-but-unacked across the replication groups this
    server leads (0 when replication is off) — gauge probe. *)

val checkpoint_now : t -> unit
(** Snapshot the partition's final state into the WAL and truncate the
    log below it.  Raises [Invalid_argument] when durability is off, or
    when replication is attached (a checkpoint renumbers the log, but WAL
    positions are the replication ship sequence).  Intended to be called
    when the partition is quiescent (no pending functors), e.g. between
    epochs. *)

val crash_be : t -> unit
(** Crash the backend role of this server: the unflushed WAL tail and all
    volatile backend state (installed-but-unlogged functors, batch
    tracking, the compute engine) are lost, and storage/compute requests
    are dropped (counted under ["aloha.be_dropped"]) until {!restart_be}.
    The frontend role and the epoch participant stay up — coordinator
    failover is out of scope (see {!Recovery}) — so transactions this
    server coordinates keep retrying their installs and hold their epoch
    open, which is exactly the barrier that preserves atomicity across
    the crash.  Raises [Invalid_argument] if already down. *)

val restart_be : t -> unit
(** Restart a crashed backend through {!Recovery.rebuild}: reload the
    checkpoint, replay the durable log, re-buffer still-pending functors
    at their logged epochs, and release every epoch that closed before or
    during the outage.  Requires [config.durability] for state to
    survive; without a WAL the backend restarts empty.  Raises
    [Invalid_argument] if not down. *)

val be_down : t -> bool

val leads : t -> partition:int -> bool
(** Whether this server currently serves [partition] as its (primary)
    storage.  Without replication: exactly its home partition.  With
    replication: the home partition until a failover takes it away, plus
    any partition adopted by promotion. *)

(** {2 Replication (cluster-internal wiring)}

    All of the following are called by {!Cluster} when
    [config.replicas > 1]; a server never attached behaves byte-for-byte
    as before. *)

val attach_repl :
  t ->
  plane:Message.rpc ->
  route:Net.Route.t ->
  members_of:(int -> Net.Address.t list) ->
  follows:int list ->
  unit
(** Join the replication fabric: become the primary of the home
    partition's group (shipping durable WAL entries to the other members
    over [plane]) and a follower of every partition in [follows].  With
    [config.repl_sync], installs/aborts ack only after the covering log
    prefix is durable on all live followers, and epoch close gates on the
    epoch being durable group-wide.  Requires [config.durability];
    raises [Invalid_argument] otherwise or if already attached. *)

val adopt_partition :
  t -> partition:int -> down:Net.Address.t list -> unit
(** Promotion: succeed the crashed primary of [partition] (the failure
    monitor's verdict; the route must already point here so the new term
    is visible).  Replays the shipped WAL into the local engine,
    re-buffers still-pending functors, rebuilds batch tracking so
    recomputation re-notifies coordinators, and starts shipping to the
    remaining followers.  [down] lists members currently believed
    crashed (excluded from the gating floor).  No-op if already primary;
    raises [Invalid_argument] if not a follower of [partition]. *)

val note_member_down : t -> partition:int -> member:Net.Address.t -> unit
(** Failure-monitor verdict: exclude [member] from the gating floor of
    [partition]'s group, if this server leads it. *)

val note_member_rejoin : t -> partition:int -> member:Net.Address.t -> unit
(** [member] restarted (with an empty follower log): re-admit it and
    immediately re-ship the whole log so it catches up. *)

val set_lifecycle_hooks :
  t -> on_crash:(unit -> unit) -> on_restart:(unit -> unit) -> unit
(** Observe this server's own backend crash/restart transitions — the
    cluster's failure monitor drives promotion and floor bookkeeping
    from these. *)
