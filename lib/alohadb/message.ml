type fspec = {
  ftype : Functor_cc.Ftype.t;
  farg : Functor_cc.Funct.farg;
}

type install = {
  txn_id : int;
  epoch : int;
  ts : int;
  lo : int;
  hi : int;
  writes : (Mvstore.Key.t * fspec) list;
  preconditions : Mvstore.Key.t list;
  fast : bool;
}

type req =
  | Install of install
  | Abort_txn of { ts : int; keys : Mvstore.Key.t list }
  | Get_req of { key : Mvstore.Key.t; version : int }

type resp =
  | Install_ack of { ok : bool }
  | Abort_ack
  | Get_resp of Functor_cc.Value.t option

type oneway =
  | Push of {
      key : Mvstore.Key.t;
      version : int;
      src_key : Mvstore.Key.t;
      value : Functor_cc.Value.t option;
    }
  | Dep_write of {
      key : Mvstore.Key.t;
      version : int;
      final : Functor_cc.Funct.final;
    }
  | Batch_done of {
      txn_id : int;
      partition : int;
      functors : int;
      max_retrieved_at : int;
      aborted : bool;
    }
  | Batch_done_ack of { txn_id : int; partition : int }
  | Plan_sub of {
      key : Mvstore.Key.t;
      version : int;
      dst_key : Mvstore.Key.t;
      dst_version : int;
    }
  | Plan_push of {
      key : Mvstore.Key.t;
      version : int;
      src_key : Mvstore.Key.t;
      value : Functor_cc.Value.t option;
    }
  | Wal_ship of { partition : int; term : int; seq : int; entry : ship_entry }
  | Ship_ack of { partition : int; term : int; seq : int }

and ship_entry =
  | Ship_install of {
      key : Mvstore.Key.t;
      version : int;
      spec : fspec;
      txn_id : int;
      coordinator : int;
      epoch : int;
      fast : bool;
    }
  | Ship_abort of { key : Mvstore.Key.t; version : int }
  | Ship_epoch_closed of int

type wire =
  | Req of req
  | One of oneway

type rpc = (wire, resp) Net.Rpc.t

let functor_of_fspec spec ~txn_id ~coordinator =
  match spec.ftype with
  | Functor_cc.Ftype.Value -> (
      match spec.farg.Functor_cc.Funct.args with
      | [ v ] -> Functor_cc.Funct.mk_value v
      | _ -> invalid_arg "functor_of_fspec: VALUE expects one argument")
  | Functor_cc.Ftype.Deleted ->
      Functor_cc.Funct.mk_final Functor_cc.Funct.Deleted_v
  | Functor_cc.Ftype.Aborted ->
      Functor_cc.Funct.mk_final Functor_cc.Funct.Aborted_v
  | Functor_cc.Ftype.Add | Functor_cc.Ftype.Subtr | Functor_cc.Ftype.Max
  | Functor_cc.Ftype.Min | Functor_cc.Ftype.User _
  | Functor_cc.Ftype.Dep_marker _ ->
      Functor_cc.Funct.mk_pending ~ftype:spec.ftype ~farg:spec.farg ~txn_id
        ~coordinator

let fspec_value v =
  { ftype = Functor_cc.Ftype.Value;
    farg = Functor_cc.Funct.farg_args [ v ] }

let fspec_delete =
  { ftype = Functor_cc.Ftype.Deleted; farg = Functor_cc.Funct.farg_empty }

let fspec_of_op ~key:_ ~recipients ?(pushed_reads = []) op =
  let with_recipients farg =
    { farg with Functor_cc.Funct.recipients; pushed_reads }
  in
  match op with
  | Txn.Put v -> fspec_value v
  | Txn.Delete -> fspec_delete
  | Txn.Add n ->
      { ftype = Functor_cc.Ftype.Add;
        farg =
          with_recipients
            (Functor_cc.Funct.farg_args [ Functor_cc.Value.int n ]) }
  | Txn.Subtr n ->
      { ftype = Functor_cc.Ftype.Subtr;
        farg =
          with_recipients
            (Functor_cc.Funct.farg_args [ Functor_cc.Value.int n ]) }
  | Txn.Max n ->
      { ftype = Functor_cc.Ftype.Max;
        farg =
          with_recipients
            (Functor_cc.Funct.farg_args [ Functor_cc.Value.int n ]) }
  | Txn.Min n ->
      { ftype = Functor_cc.Ftype.Min;
        farg =
          with_recipients
            (Functor_cc.Funct.farg_args [ Functor_cc.Value.int n ]) }
  | Txn.Call { handler; read_set; args } ->
      { ftype = Functor_cc.Ftype.User handler;
        farg =
          { Functor_cc.Funct.read_set = List.map Mvstore.Key.intern read_set;
            args; recipients; dependents = []; pushed_reads } }
  | Txn.Det { handler; read_set; args; dependents } ->
      { ftype = Functor_cc.Ftype.User handler;
        farg =
          { Functor_cc.Funct.read_set = List.map Mvstore.Key.intern read_set;
            args; recipients;
            dependents = List.map Mvstore.Key.intern dependents;
            pushed_reads } }

let fspec_dep_marker ~det_key =
  { ftype = Functor_cc.Ftype.Dep_marker det_key;
    farg = Functor_cc.Funct.farg_empty }
