(** Replication-group bookkeeping for one partition, as seen by its
    current primary.

    Pure state machine (no network, no WAL, no simulator): the primary's
    WAL entry sequence is the replicated log; followers send cumulative
    durable acks; the gating floor is the minimum ack over live
    followers (or the local log length when none is live — degraded
    single-copy mode).  Epoch barriers are positions in the sequence:
    an epoch is durable once the floor covers its barrier.  Being pure
    makes the ack-gating rule directly model-checkable — the
    replication property test drives this module against a reference. *)

type t

val create :
  partition:int -> term:int -> primary:int -> members:int list -> len:int -> t
(** [members] includes the primary; [len] is the initial log length
    (non-zero when a promoted follower adopts its replayed WAL). *)

val partition : t -> int
val term : t -> int
val len : t -> int

val append : t -> int
(** Record one appended log entry; returns its 1-based sequence. *)

val ack : t -> member:int -> seq:int -> unit
(** Cumulative follower ack: entries [1..seq] durable at [member].
    Monotone (stale acks ignored); acks from the primary itself are
    ignored; raises if [seq] exceeds the log length (a follower can
    never be ahead of its primary). *)

val member_down : t -> id:int -> unit
(** Exclude a follower from the floor (failure detector verdict).  May
    fire pending gates: the floor over live followers can only rise. *)

val member_rejoin : t -> id:int -> unit
(** Re-admit a follower with an empty log (ack reset to 0); the caller
    re-ships from sequence 1. *)

val close_epoch : t -> epoch:int -> unit
(** Register the epoch's barrier at the current log position. *)

val when_seq_acked : t -> seq:int -> (unit -> unit) -> unit
(** Run the callback once the floor reaches [seq] (immediately if it
    already has).  Gates install/abort acks in sync mode. *)

val when_epoch_durable : t -> epoch:int -> (unit -> unit) -> unit
(** Run the callback once the epoch's barrier is covered by the floor.
    Gates epoch close (watermark advance) in sync mode. *)

val durable_epoch : t -> int
val replica_lag : t -> int
(** Entries appended but not yet acked by every live follower. *)

val live_followers : t -> int list
val lagging_followers : t -> seq:int -> (int * int) list
(** Live followers whose cumulative ack is below [seq], with their acks
    (the primary's retransmission worklist). *)

val drop_waiters : t -> int
(** Crash: discard pending gates (their replies die with the process);
    returns how many were dropped. *)

val reset_acks : t -> unit
(** Crash: follower acks are bookkeeping in volatile memory; after a
    restart the primary assumes nothing and re-ships (followers re-ack
    duplicates cheaply). *)

val crash : t -> durable_len:int -> unit
(** Primary crash while retaining the primary role (no live successor):
    truncate the log to the durable WAL prefix, drop barriers beyond it,
    reset acks and discard pending gates.  [durable_epoch] survives. *)

val acked : t -> member:int -> int
val is_live : t -> member:int -> bool
