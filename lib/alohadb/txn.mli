(** The client-facing transaction model (§IV-A).

    Transactions are one-shot: the read set, write set and arguments are
    known when the transaction is submitted (Calvin has the same
    restriction).  A read-write transaction is a list of per-key write
    operations; each operation is transformed by the frontend into one
    functor.  Dependent transactions use {!Det} operations (the §IV-E
    key-dependency method) or are executed optimistically by the client
    with {!Functor_cc.Optimistic}.

    Read-only transactions at the latest version are delayed to the next
    epoch and served as historical reads (§III-B); reads at an explicit
    historical timestamp execute immediately. *)

type op =
  | Put of Functor_cc.Value.t  (** blind write (f-type VALUE) *)
  | Delete  (** tombstone (f-type DELETED) *)
  | Add of int  (** numeric increment (f-type ADD) *)
  | Subtr of int
  | Max of int
  | Min of int
  | Call of {
      handler : string;  (** registered user f-type *)
      read_set : string list;
      args : Functor_cc.Value.t list;
    }
  | Det of {
      handler : string;
      read_set : string list;
      args : Functor_cc.Value.t list;
      dependents : string list;
          (** dependent keys this determinate functor may write *)
    }

type ack_mode =
  | Ack_on_install  (** acknowledge when the write-only phase commits *)
  | Ack_on_computed  (** acknowledge when every functor reached a final
                         value — the latency the paper reports *)

type request =
  | Read_write of {
      writes : (string * op) list;
      precondition_keys : string list;
          (** keys that must exist on their partition for the write-only
              phase to succeed (drives TPC-C's 1 % NewOrder aborts) *)
      ack : ack_mode;
    }
  | Read_only of { keys : string list }  (** latest version *)
  | Read_at of { keys : string list; version : int }  (** historical *)

type result =
  | Committed of { ts : Clocksync.Timestamp.t }
  | Aborted of {
      ts : Clocksync.Timestamp.t option;
      stage : [ `Install | `Compute ];
    }
  | Values of (string * Functor_cc.Value.t option) list

val read_write :
  ?precondition_keys:string list -> ?ack:ack_mode ->
  (string * op) list -> request
(** Convenience constructor; [ack] defaults to [Ack_on_computed]. *)

val write_keys : request -> string list
(** Keys written by the request, including declared dependents (empty for
    reads). *)

val op_commutative : op -> bool
(** True for the arithmetic built-ins ([Add]/[Subtr]/[Max]/[Min]): their
    functors read only their own key and fold commutatively, so any
    install order converges to the same value. *)

val all_commutative :
  writes:(string * op) list -> precondition_keys:string list -> bool
(** The fast-path classifier: a non-empty write set of commutative
    built-ins with no precondition keys.  Such a transaction needs no
    epoch-close ordering — it can commit as soon as every partition has
    installed its functors. *)

val recipients_for : (string * op) list -> string -> string list
(** §IV-B recipient-set computation: the keys among [writes] whose functor
    read set contains the given key. *)

val pp_result : Format.formatter -> result -> unit
