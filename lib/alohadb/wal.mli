(** Write-ahead log for one backend partition (§III-A fault tolerance).

    ALOHA-DB inherits ALOHA-KV's durability story: every installed functor
    (not its computed value!) is logged, because functor evaluation is
    deterministic — replaying the installs and recomputing reproduces the
    exact post-crash state, including deferred dependent-key writes.
    Checkpoints bound replay work: a checkpoint captures every key's
    latest final value at a version below which the log can be discarded.

    The log models a durable device: appends buffer in memory and reach
    stable storage after [flush_latency_us] (group commit); only flushed
    entries survive a crash. *)

type entry =
  | Log_install of {
      key : Mvstore.Key.t;
      version : int;
      spec : Message.fspec;
      txn_id : int;
      coordinator : int;
      epoch : int;
      fast : bool;
          (** installed by the coordination-free fast path: replay and
              reintegration route the entry to the lazy-merge buffer
              instead of an epoch batch *)
    }
  | Log_abort of { key : Mvstore.Key.t; version : int }
      (** second-round rollback of an installed write *)
  | Log_epoch_closed of int

type t

val create : Sim.Engine.t -> ?flush_latency_us:int -> unit -> t
(** [flush_latency_us] defaults to 500 (one SSD-class fsync). *)

val append : t -> entry -> unit
(** Buffer an entry; it becomes durable at the next flush completion. *)

val after_durable : t -> (unit -> unit) -> unit
(** Run the callback once everything appended so far is flushed (at once
    if nothing is pending).  Used to defer install acks until their log
    entries are durable ({!Config.t.ack_after_flush}).  Callbacks pending
    at a crash are discarded by {!lose_unflushed}. *)

val lose_unflushed : t -> int
(** Crash the device: the buffered (unflushed) tail is lost, pending
    {!after_durable} callbacks are dropped.  Returns how many entries were
    lost.  The durable prefix and checkpoint are what recovery sees. *)

val durable : t -> entry list
(** Entries that survived as of now, oldest first (what a post-crash
    recovery would read). *)

val all : t -> entry list
(** Every entry, durable prefix then unflushed tail, oldest first — what
    a live process (no crash) can read back.  Replica promotion replays
    this: the promoted follower did not crash, so its buffered tail is
    still valid. *)

val set_on_flush : t -> (unit -> unit) -> unit
(** Install the flush hook, fired after each flush completion once the
    newly durable entries are visible through {!durable} (and before
    {!after_durable} waiters run).  The replication primary ships its
    freshly durable suffix from here, so a follower can never ack an
    entry the primary itself might lose in a crash. *)

val durable_range : t -> from:int -> upto:int -> (int * entry) list
(** Durable entries with 1-based sequence positions in (from, upto],
    oldest first — the retransmission window a primary re-ships to a
    lagging follower. *)

val durable_count : t -> int
val pending_count : t -> int
(** Buffered entries not yet flushed (lost on crash). *)

val pending_bytes : t -> int
(** Nominal size of the unflushed tail (gauge for the observability
    layer; sizes are modelled, not serialized). *)

val checkpoint :
  t -> snapshot:(Mvstore.Key.t * int * Message.fspec) list ->
  retain_above:int -> unit
(** Atomically replace the log prefix with a checkpoint: [snapshot] holds
    every key's latest final record (as a VALUE/DELETED/ABORTED fspec)
    with its version; log entries whose version is <= [retain_above] are
    discarded (their effects are captured by the snapshot), later ones are
    kept for replay.  Checkpoint installation is treated as atomic, as in
    shadow-paging schemes, and makes the retained entries durable. *)

val snapshot : t -> (Mvstore.Key.t * int * Message.fspec) list
(** The latest checkpoint (empty if none was taken). *)

val ship_of_entry : entry -> Message.ship_entry
val entry_of_ship : Message.ship_entry -> entry
(** Wire conversions for WAL shipping (Message cannot depend on Wal). *)
