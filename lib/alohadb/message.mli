(** Data-plane wire messages between frontends and backends. *)

type fspec = {
  ftype : Functor_cc.Ftype.t;
  farg : Functor_cc.Funct.farg;
}
(** Serialised description of one functor to install.  Final f-types carry
    their payload in [farg.args]. *)

type install = {
  txn_id : int;
  epoch : int;
  ts : int;  (** the transaction timestamp = version, as an int *)
  lo : int;  (** validity window (local-clock µs) the version must be in *)
  hi : int;
  writes : (Mvstore.Key.t * fspec) list;
  preconditions : Mvstore.Key.t list;
      (** keys that must already exist on this partition *)
  fast : bool;
      (** coordination-free fast path: the writes are all-commutative
          built-ins with no preconditions, so the backend installs them
          as lazily-merged pending deltas (no epoch batch, no
          [Batch_done]) and the frontend commits on install acks alone *)
}

type req =
  | Install of install
  | Abort_txn of { ts : int; keys : Mvstore.Key.t list }
      (** second-round rollback of the write-only phase *)
  | Get_req of { key : Mvstore.Key.t; version : int }

type resp =
  | Install_ack of { ok : bool }
  | Abort_ack
  | Get_resp of Functor_cc.Value.t option

type oneway =
  | Push of {
      key : Mvstore.Key.t;
      version : int;
      src_key : Mvstore.Key.t;
      value : Functor_cc.Value.t option;
    }
  | Dep_write of {
      key : Mvstore.Key.t;
      version : int;
      final : Functor_cc.Funct.final;
    }
  | Batch_done of {
      txn_id : int;
      partition : int;
          (** which partition's batch finished: after a failover one
              server can hold batches of several partitions for the same
              transaction, so [txn_id] alone no longer names a batch *)
      functors : int;  (** how many of the txn's functors this BE held *)
      max_retrieved_at : int;  (** latest processor pick-up time, for the
                                   Figure-10 stage breakdown *)
      aborted : bool;  (** some functor of the txn finalised as ABORTED *)
    }
  | Batch_done_ack of { txn_id : int; partition : int }
      (** coordinator's receipt for a [Batch_done]; stops the backend's
          resend loop (the notification is one-way, so under a lossy
          network it is repeated until acknowledged) *)
  | Plan_sub of {
      key : Mvstore.Key.t;
      version : int;
      dst_key : Mvstore.Key.t;
      dst_version : int;
    }
      (** planned compute mode: the sender's plan has a functor at
          ([dst_key], [dst_version]) reading [key]@[version]; evaluate the
          producer and push the value back (a {!Plan_push}).  Lossy
          networks may drop either leg — the consumer's gather still
          races its own remote read, so the subscription is an
          optimisation, never a liveness requirement *)
  | Plan_push of {
      key : Mvstore.Key.t;
      version : int;
      src_key : Mvstore.Key.t;
      value : Functor_cc.Value.t option;
    }
      (** reply to a {!Plan_sub}: lands in the same per-record push buffer
          as the §IV-B recipient-set [Push] *)
  | Wal_ship of { partition : int; term : int; seq : int; entry : ship_entry }
      (** replication: the primary of [partition] ships the [seq]-th
          entry (1-based) of its durable WAL under routing generation
          [term].  A follower seeing a higher term discards its copy of
          the partition's log and rebuilds from seq 1; lower terms are
          stale primaries and are ignored *)
  | Ship_ack of { partition : int; term : int; seq : int }
      (** follower's cumulative receipt: every shipped entry up to and
          including [seq] is durable in its local WAL *)

and ship_entry =
  | Ship_install of {
      key : Mvstore.Key.t;
      version : int;
      spec : fspec;
      txn_id : int;
      coordinator : int;
      epoch : int;
      fast : bool;
    }
  | Ship_abort of { key : Mvstore.Key.t; version : int }
  | Ship_epoch_closed of int
      (** wire form of a WAL record ([Wal.entry] mirrors this; Wal
          depends on Message, so the conversions live there) *)

type wire =
  | Req of req
  | One of oneway

type rpc = (wire, resp) Net.Rpc.t

val functor_of_fspec :
  fspec -> txn_id:int -> coordinator:int -> Functor_cc.Funct.t
(** Materialise the runtime record a BE stores for this spec. *)

val fspec_value : Functor_cc.Value.t -> fspec
val fspec_delete : fspec
val fspec_of_op :
  key:Mvstore.Key.t -> recipients:Mvstore.Key.t list ->
  ?pushed_reads:Mvstore.Key.t list -> Txn.op -> fspec
(** Transform one transaction write into its functor spec (§IV-B
    "Transforming a transaction to functors").  [Call]/[Det] read sets
    and dependents arrive as client-facing strings and are interned
    here, at the wire boundary. *)

val fspec_dep_marker : det_key:Mvstore.Key.t -> fspec
