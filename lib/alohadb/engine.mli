(** ALOHA-DB behind the {!Kernel.Intf.ENGINE} signature.

    The cluster type is transparent ([= Cluster.t]) so experiments that
    need ALOHA-specific construction (custom {!Config.t}, clock skew,
    epoch participant hooks) can build the cluster natively and still run
    it through the generic [Kernel.Run] loop.

    Transactions execute from their [functor_form] facet: [Det] ops keep
    the §IV-E dynamic dependent-write scheme. *)

include Kernel.Intf.ENGINE with type cluster = Cluster.t

val options_of : ?seed:int -> Kernel.Params.t -> Cluster.options
(** The options {!create} uses: prefix partitioning, default config, and
    the epoch duration from the params (when given).  When
    [params.faults] is set the config is hardened (WAL durability,
    install retries, flush-gated acks) so the protocol stays live and
    atomic under loss and crashes. *)

val set_trace :
  cluster -> (src:Net.Address.t -> dst:Net.Address.t -> unit) -> unit

val drop_stats : cluster -> Net.Network.drop_stats
