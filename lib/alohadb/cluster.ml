type options = {
  n_servers : int;
  config : Config.t;
  epoch : Epoch.Manager.config;
  latency : Net.Latency.t;
  partitioner : [ `Hash | `Prefix ];
  seed : int;
  clock_skew_us : int;
  faults : Net.Faults.t option;
  obs : Obs.Ctl.t option;
}

let default_options =
  { n_servers = 8;
    config = Config.default;
    epoch = Epoch.Manager.default_config;
    latency = Net.Latency.uniform ~base:80 ~jitter:40;
    partitioner = `Hash;
    seed = 42;
    clock_skew_us = 100;
    faults = None;
    obs = None }

type t = {
  sim : Sim.Engine.t;
  servers : Server.t array;
  em : Epoch.Manager.t;
  metrics : Sim.Metrics.t;
  registry : Functor_cc.Registry.t;
  partition_of : Mvstore.Key.t -> int;
  data : Message.rpc;
  control : Epoch.Protocol.rpc;
  real_pool : Runtime.Pool.t option;
      (* one shared worker-domain pool across the cluster's BEs: the
         simulation is single-threaded, so at most one server evaluates
         strata at any moment and per-server pools would just multiply
         idle domains *)
  replicas : int;  (* effective k = min(config.replicas, n) *)
  route : Net.Route.t option;  (* Some iff replicas > 1 *)
  repl_plane : Message.rpc option;  (* WAL-shipping plane, iff replicas > 1 *)
}

(* Replication group of partition [p]: nodes [p .. p+k-1 mod n], so every
   node is the primary of its home partition and a follower of the k-1
   partitions preceding it — the load of followership spreads evenly. *)
let group_layout ~n ~k partition =
  List.init k (fun j -> Net.Address.of_int ((partition + j) mod n))

(* The failure monitor: reacts to backend crash/restart transitions with
   a detection delay (modelling a failure detector's timeout), re-checks
   liveness at verdict time (a backend that already restarted needs no
   failover — guards against spurious promotion), then drives promotion
   and group-membership bookkeeping.  It is deliberately a cluster-level
   oracle rather than a gossip protocol: the paper's contribution is the
   epoch/functor machinery, and the chaos battery needs a deterministic
   detector, not a probabilistic one. *)
let install_monitor ~sim ~servers ~route ~detect_us ?ledger () =
  let n = Array.length servers in
  let addr i = Net.Address.of_int i in
  let live a = not (Server.be_down servers.(Net.Address.to_int a)) in
  let partitions_with_member i =
    List.filter
      (fun p -> Net.Route.is_member route ~partition:p (addr i))
      (List.init n Fun.id)
  in
  let handle_down i =
    if Server.be_down servers.(i) then begin
      (* The verdict instant — detect_us after the crash — is when the
         monitor DETECTS the failure; the ledger's incident analytics
         measure detect latency against the crash event. *)
      (match ledger with
      | Some l ->
          Obs.Ledger.note_event l ~kind:Obs.Ledger.Detect ~node:i
            ~t_us:(Sim.Engine.now sim) ()
      | None -> ());
      List.iter
        (fun p ->
          let primary = Net.Route.resolve route ~partition:p in
          if Net.Address.equal primary (addr i) then begin
            match
              Net.Route.find_successor route ~partition:p ~live
                ~avoid:(addr i)
            with
            | None ->
                (* the whole group is down: the partition is unavailable
                   until one of its replicas restarts *)
                ()
            | Some succ ->
                ignore (Net.Route.promote route ~partition:p ~to_:succ);
                let down =
                  List.filter
                    (fun a ->
                      (not (Net.Address.equal a succ)) && not (live a))
                    (Net.Route.members route ~partition:p)
                in
                Server.adopt_partition
                  servers.(Net.Address.to_int succ)
                  ~partition:p ~down
          end
          else if live primary then
            Server.note_member_down
              servers.(Net.Address.to_int primary)
              ~partition:p ~member:(addr i))
        (partitions_with_member i)
    end
  in
  let handle_up i =
    if not (Server.be_down servers.(i)) then
      List.iter
        (fun p ->
          let primary = Net.Route.resolve route ~partition:p in
          if Net.Address.equal primary (addr i) then
            (* A restarted primary kept its pre-crash liveness view of the
               group, which staled while it was down; re-sync it so the
               gating floor neither waits on a dead follower nor excludes
               a live one (a live-but-excluded follower could lag and
               then win a later promotion with missing entries). *)
            List.iter
              (fun m ->
                if not (Net.Address.equal m (addr i)) then
                  if live m then
                    Server.note_member_rejoin servers.(i) ~partition:p
                      ~member:m
                  else
                    Server.note_member_down servers.(i) ~partition:p
                      ~member:m)
              (Net.Route.members route ~partition:p)
          else if live primary then
            Server.note_member_rejoin
              servers.(Net.Address.to_int primary)
              ~partition:p ~member:(addr i))
        (partitions_with_member i)
  in
  Array.iteri
    (fun i srv ->
      Server.set_lifecycle_hooks srv
        ~on_crash:(fun () ->
          Sim.Engine.after sim detect_us (fun () -> handle_down i))
        ~on_restart:(fun () ->
          Sim.Engine.after sim detect_us (fun () -> handle_up i)))
    servers

let create ?registry options =
  if options.n_servers <= 0 then invalid_arg "Cluster.create: n_servers";
  let registry =
    match registry with
    | Some r -> r
    | None -> Functor_cc.Registry.with_builtins ()
  in
  let sim = Sim.Engine.create () in
  let rng = Sim.Rng.create options.seed in
  let metrics = Sim.Metrics.create () in
  (* Both planes share one physical network, so one fault oracle covers
     them (a partition window cuts epoch control traffic too). *)
  let data : Message.rpc =
    Net.Rpc.create sim (Sim.Rng.split rng) ~latency:options.latency
      ?faults:options.faults ()
  in
  let control : Epoch.Protocol.rpc =
    Net.Rpc.create sim (Sim.Rng.split rng) ~latency:options.latency
      ?faults:options.faults ()
  in
  let n = options.n_servers in
  (* Effective replication degree: clamp to the cluster size; k = 1 is
     unreplicated (today's behaviour, byte-for-byte — nothing below is
     even allocated).  Replication is WAL shipping, so it forces
     durability on. *)
  let k = min (max 1 options.config.Config.replicas) n in
  let config =
    if k > 1 && not options.config.Config.durability then
      { options.config with Config.durability = true }
    else options.config
  in
  let route =
    if k > 1 then begin
      let route = Net.Route.create ~partitions:n in
      for p = 0 to n - 1 do
        Net.Route.register route ~partition:p (group_layout ~n ~k p)
      done;
      Some route
    end
    else None
  in
  let part =
    match options.partitioner with
    | `Hash -> Net.Partitioner.hash ~partitions:n
    | `Prefix -> Net.Partitioner.by_prefix_int ~partitions:n
  in
  (* Partition routing is memoized per interned key: the hash (or prefix
     parse) of a key's name runs once per cluster, after which routing is
     a stamp compare on the key record.  The stamp keeps slots from
     different clusters (sharing the process-wide intern table) apart. *)
  let stamp = Mvstore.Key.new_stamp () in
  let partition_of key =
    Mvstore.Key.memo_int key ~stamp ~f:(Net.Partitioner.partition_of part)
  in
  let addr_of_partition =
    match route with
    | None -> Net.Address.of_int
    | Some route ->
        (* crash-aware: resolves to the partition's current primary, so
           frontend retries chase a promoted replica *)
        fun p -> Net.Route.resolve route ~partition:p
  in
  let em_addr = Net.Address.of_int n in
  let server_clock () =
    let skew = options.clock_skew_us in
    let offset_us =
      if skew = 0 then 0 else Sim.Rng.uniform_int rng ~lo:(-skew) ~hi:skew
    in
    Clocksync.Node_clock.create sim ~offset_us ()
  in
  let real_pool =
    match config.Config.runtime_mode with
    | Config.Sim -> None
    | Config.Real ->
        Some (Runtime.Pool.create ~domains:(max 1 config.Config.domains))
  in
  let servers =
    Array.init n (fun i ->
        Server.create ~sim ~data ~control ~addr:(Net.Address.of_int i)
          ~node_id:i ~em:em_addr ~clock:(server_clock ()) ~partition_of
          ~addr_of_partition ~my_partition:i ~registry
          ~config ~metrics ?obs:options.obs ?real_pool ())
  in
  let em =
    Epoch.Manager.create ~rpc:control ~addr:em_addr
      ~fes:(List.init n Net.Address.of_int)
      ~clock:(Clocksync.Node_clock.perfect sim)
      ~config:options.epoch ~metrics ()
  in
  (* Replication fabric.  The ship plane is a SEPARATE rpc instance (own
     latency stream) created after every other RNG consumer, so a
     replicas = 1 cluster draws exactly the same random sequence as
     before this feature existed, and a replicated cluster's data-plane
     stream is untouched by ship traffic. *)
  let repl_plane =
    match route with
    | None -> None
    | Some route ->
        let plane : Message.rpc =
          Net.Rpc.create sim (Sim.Rng.split rng) ~latency:options.latency
            ?faults:options.faults ()
        in
        let members_of p = group_layout ~n ~k p in
        Array.iteri
          (fun i srv ->
            let follows =
              List.filter
                (fun p ->
                  p <> i
                  && Net.Route.is_member route ~partition:p
                       (Net.Address.of_int i))
                (List.init n Fun.id)
            in
            Server.attach_repl srv ~plane ~route ~members_of ~follows)
          servers;
        install_monitor ~sim ~servers ~route
          ~detect_us:config.Config.repl_detect_us
          ?ledger:
            (match options.obs with
            | Some ctl -> Obs.Ctl.ledger ctl
            | None -> None)
          ();
        Some plane
  in
  let t =
    { sim; servers; em; metrics; registry; partition_of; data; control;
      real_pool; replicas = k; route; repl_plane }
  in
  (match options.obs with
  | None -> ()
  | Some ctl ->
      (* Stamp the ledger's meta line: the stretch ratio and watermark-lag
         anomaly thresholds are measured against the configured epoch
         duration, and the doctor's failover invariants only apply when
         replicas > 1. *)
      (match Obs.Ctl.ledger ctl with
      | Some l ->
          Obs.Ledger.set_meta l
            ~cfg_epoch_us:options.epoch.Epoch.Manager.duration_us ~nodes:n
            ~replicas:k
      | None -> ());
      (* Fault correlation: every chaos verdict on either plane opens the
         tagging window and leaves a marker event. *)
      let hook ~now ~dst ~kind =
        Obs.Ctl.note_fault ctl ~now ~node:(Net.Address.to_int dst) ~kind
      in
      Net.Rpc.set_fault_hook data hook;
      Net.Rpc.set_fault_hook control hook;
      (match repl_plane with
      | Some plane -> Net.Rpc.set_fault_hook plane hook
      | None -> ());
      (* Gauge probes: cluster-wide sums published before each snapshot,
         plus the cumulative network drop counter (the sampler records its
         level; consumers diff consecutive points for deltas). *)
      let g = Obs.Ctl.gauges ctl in
      Obs.Gauges.bind_metrics g metrics;
      Obs.Gauges.add_probe g (fun () ->
          let depth = ref 0
          and inflight = ref 0
          and lag = ref 0
          and wal_b = ref 0
          and repl_lag = ref 0 in
          Array.iter
            (fun s ->
              depth := !depth + Server.compute_queue_depth s;
              inflight := !inflight + Server.inflight_functors s;
              let l = Server.value_watermark_lag_us s in
              if l > !lag then lag := l;
              wal_b := !wal_b + Server.wal_pending_bytes s;
              repl_lag := !repl_lag + Server.replication_lag s)
            servers;
          Sim.Metrics.set_gauge metrics "gauge.compute_queue_depth"
            (float_of_int !depth);
          Sim.Metrics.set_gauge metrics "gauge.inflight_functors"
            (float_of_int !inflight);
          Sim.Metrics.set_gauge metrics "gauge.watermark_lag_us"
            (float_of_int !lag);
          Sim.Metrics.set_gauge metrics "gauge.wal_pending_bytes"
            (float_of_int !wal_b);
          if k > 1 then
            Sim.Metrics.set_gauge metrics "gauge.repl_lag"
              (float_of_int !repl_lag);
          let d = Net.Rpc.drop_stats data
          and c = Net.Rpc.drop_stats control in
          Sim.Metrics.set_gauge metrics "gauge.net_drops"
            (float_of_int
               (d.Net.Network.injected + d.partitioned + d.crashed
              + d.unregistered + c.Net.Network.injected + c.partitioned
              + c.crashed + c.unregistered));
          match real_pool with
          | None -> ()
          | Some p ->
              (* Strata evaluate synchronously inside the epoch-close
                 event, so an instantaneous sample would always read the
                 pool at rest; the high-water marks are what show
                 real-runtime occupancy next to the pipeline stages. *)
              Sim.Metrics.set_gauge metrics "runtime.pool.queue_depth"
                (float_of_int (Runtime.Pool.queue_peak p));
              Sim.Metrics.set_gauge metrics "runtime.pool.busy_workers"
                (float_of_int (Runtime.Pool.busy_peak p))));
  t

let start t = Epoch.Manager.start t.em

let shutdown t =
  match t.real_pool with
  | None -> ()
  | Some p -> Runtime.Pool.shutdown p

let real_pool t = t.real_pool

let set_trace t f =
  Net.Rpc.set_trace t.data f;
  Net.Rpc.set_trace t.control f;
  match t.repl_plane with
  | Some plane -> Net.Rpc.set_trace plane f
  | None -> ()

let drop_stats t =
  let d = Net.Rpc.drop_stats t.data and c = Net.Rpc.drop_stats t.control in
  let r =
    match t.repl_plane with
    | Some plane -> Net.Rpc.drop_stats plane
    | None ->
        { Net.Network.injected = 0; partitioned = 0; crashed = 0;
          unregistered = 0 }
  in
  { Net.Network.injected =
      d.Net.Network.injected + c.Net.Network.injected
      + r.Net.Network.injected;
    partitioned = d.partitioned + c.partitioned + r.partitioned;
    crashed = d.crashed + c.crashed + r.crashed;
    unregistered = d.unregistered + c.unregistered + r.unregistered }

let sim t = t.sim
let metrics t = t.metrics
let n_servers t = Array.length t.servers
let server t i = t.servers.(i)
let registry t = t.registry
let partition_of t key = t.partition_of (Mvstore.Key.intern key)
let replicas t = t.replicas

let primary_server t ~partition =
  match t.route with
  | None -> t.servers.(partition)
  | Some route ->
      t.servers.(Net.Address.to_int (Net.Route.resolve route ~partition))

let group_members t ~partition =
  match t.route with
  | None -> [ partition ]
  | Some route ->
      List.map Net.Address.to_int (Net.Route.members route ~partition)

let load t ~key value =
  Server.load_initial
    t.servers.(t.partition_of (Mvstore.Key.intern key))
    ~key value

let submit t ~fe req k = Server.submit t.servers.(fe) req k

let run_for t us =
  Sim.Engine.run ~until:(Sim.Engine.now t.sim + us) t.sim

let run_until_quiescent t ?(max_us = 10_000_000) () =
  Sim.Engine.run ~until:(Sim.Engine.now t.sim + max_us) t.sim
