type options = {
  n_servers : int;
  config : Config.t;
  epoch : Epoch.Manager.config;
  latency : Net.Latency.t;
  partitioner : [ `Hash | `Prefix ];
  seed : int;
  clock_skew_us : int;
  faults : Net.Faults.t option;
  obs : Obs.Ctl.t option;
}

let default_options =
  { n_servers = 8;
    config = Config.default;
    epoch = Epoch.Manager.default_config;
    latency = Net.Latency.uniform ~base:80 ~jitter:40;
    partitioner = `Hash;
    seed = 42;
    clock_skew_us = 100;
    faults = None;
    obs = None }

type t = {
  sim : Sim.Engine.t;
  servers : Server.t array;
  em : Epoch.Manager.t;
  metrics : Sim.Metrics.t;
  registry : Functor_cc.Registry.t;
  partition_of : Mvstore.Key.t -> int;
  data : Message.rpc;
  control : Epoch.Protocol.rpc;
  real_pool : Runtime.Pool.t option;
      (* one shared worker-domain pool across the cluster's BEs: the
         simulation is single-threaded, so at most one server evaluates
         strata at any moment and per-server pools would just multiply
         idle domains *)
}

let create ?registry options =
  if options.n_servers <= 0 then invalid_arg "Cluster.create: n_servers";
  let registry =
    match registry with
    | Some r -> r
    | None -> Functor_cc.Registry.with_builtins ()
  in
  let sim = Sim.Engine.create () in
  let rng = Sim.Rng.create options.seed in
  let metrics = Sim.Metrics.create () in
  (* Both planes share one physical network, so one fault oracle covers
     them (a partition window cuts epoch control traffic too). *)
  let data : Message.rpc =
    Net.Rpc.create sim (Sim.Rng.split rng) ~latency:options.latency
      ?faults:options.faults ()
  in
  let control : Epoch.Protocol.rpc =
    Net.Rpc.create sim (Sim.Rng.split rng) ~latency:options.latency
      ?faults:options.faults ()
  in
  let n = options.n_servers in
  let part =
    match options.partitioner with
    | `Hash -> Net.Partitioner.hash ~partitions:n
    | `Prefix -> Net.Partitioner.by_prefix_int ~partitions:n
  in
  (* Partition routing is memoized per interned key: the hash (or prefix
     parse) of a key's name runs once per cluster, after which routing is
     a stamp compare on the key record.  The stamp keeps slots from
     different clusters (sharing the process-wide intern table) apart. *)
  let stamp = Mvstore.Key.new_stamp () in
  let partition_of key =
    Mvstore.Key.memo_int key ~stamp ~f:(Net.Partitioner.partition_of part)
  in
  let addr_of_partition i = Net.Address.of_int i in
  let em_addr = Net.Address.of_int n in
  let server_clock () =
    let skew = options.clock_skew_us in
    let offset_us =
      if skew = 0 then 0 else Sim.Rng.uniform_int rng ~lo:(-skew) ~hi:skew
    in
    Clocksync.Node_clock.create sim ~offset_us ()
  in
  let real_pool =
    match options.config.Config.runtime_mode with
    | Config.Sim -> None
    | Config.Real ->
        Some (Runtime.Pool.create ~domains:(max 1 options.config.Config.domains))
  in
  let servers =
    Array.init n (fun i ->
        Server.create ~sim ~data ~control ~addr:(Net.Address.of_int i)
          ~node_id:i ~em:em_addr ~clock:(server_clock ()) ~partition_of
          ~addr_of_partition ~my_partition:i ~registry
          ~config:options.config ~metrics ?obs:options.obs ?real_pool ())
  in
  let em =
    Epoch.Manager.create ~rpc:control ~addr:em_addr
      ~fes:(List.init n Net.Address.of_int)
      ~clock:(Clocksync.Node_clock.perfect sim)
      ~config:options.epoch ~metrics ()
  in
  let t =
    { sim; servers; em; metrics; registry; partition_of; data; control;
      real_pool }
  in
  (match options.obs with
  | None -> ()
  | Some ctl ->
      (* Fault correlation: every chaos verdict on either plane opens the
         tagging window and leaves a marker event. *)
      let hook ~now ~dst ~kind =
        Obs.Ctl.note_fault ctl ~now ~node:(Net.Address.to_int dst) ~kind
      in
      Net.Rpc.set_fault_hook data hook;
      Net.Rpc.set_fault_hook control hook;
      (* Gauge probes: cluster-wide sums published before each snapshot,
         plus the cumulative network drop counter (the sampler records its
         level; consumers diff consecutive points for deltas). *)
      let g = Obs.Ctl.gauges ctl in
      Obs.Gauges.bind_metrics g metrics;
      Obs.Gauges.add_probe g (fun () ->
          let depth = ref 0
          and inflight = ref 0
          and lag = ref 0
          and wal_b = ref 0 in
          Array.iter
            (fun s ->
              depth := !depth + Server.compute_queue_depth s;
              inflight := !inflight + Server.inflight_functors s;
              let l = Server.value_watermark_lag_us s in
              if l > !lag then lag := l;
              wal_b := !wal_b + Server.wal_pending_bytes s)
            servers;
          Sim.Metrics.set_gauge metrics "gauge.compute_queue_depth"
            (float_of_int !depth);
          Sim.Metrics.set_gauge metrics "gauge.inflight_functors"
            (float_of_int !inflight);
          Sim.Metrics.set_gauge metrics "gauge.watermark_lag_us"
            (float_of_int !lag);
          Sim.Metrics.set_gauge metrics "gauge.wal_pending_bytes"
            (float_of_int !wal_b);
          let d = Net.Rpc.drop_stats data
          and c = Net.Rpc.drop_stats control in
          Sim.Metrics.set_gauge metrics "gauge.net_drops"
            (float_of_int
               (d.Net.Network.injected + d.partitioned + d.crashed
              + d.unregistered + c.Net.Network.injected + c.partitioned
              + c.crashed + c.unregistered));
          match real_pool with
          | None -> ()
          | Some p ->
              (* Strata evaluate synchronously inside the epoch-close
                 event, so an instantaneous sample would always read the
                 pool at rest; the high-water marks are what show
                 real-runtime occupancy next to the pipeline stages. *)
              Sim.Metrics.set_gauge metrics "runtime.pool.queue_depth"
                (float_of_int (Runtime.Pool.queue_peak p));
              Sim.Metrics.set_gauge metrics "runtime.pool.busy_workers"
                (float_of_int (Runtime.Pool.busy_peak p))));
  t

let start t = Epoch.Manager.start t.em

let shutdown t =
  match t.real_pool with
  | None -> ()
  | Some p -> Runtime.Pool.shutdown p

let real_pool t = t.real_pool

let set_trace t f =
  Net.Rpc.set_trace t.data f;
  Net.Rpc.set_trace t.control f

let drop_stats t =
  let d = Net.Rpc.drop_stats t.data and c = Net.Rpc.drop_stats t.control in
  { Net.Network.injected = d.Net.Network.injected + c.Net.Network.injected;
    partitioned = d.partitioned + c.partitioned;
    crashed = d.crashed + c.crashed;
    unregistered = d.unregistered + c.unregistered }

let sim t = t.sim
let metrics t = t.metrics
let n_servers t = Array.length t.servers
let server t i = t.servers.(i)
let registry t = t.registry
let partition_of t key = t.partition_of (Mvstore.Key.intern key)

let load t ~key value =
  Server.load_initial
    t.servers.(t.partition_of (Mvstore.Key.intern key))
    ~key value

let submit t ~fe req k = Server.submit t.servers.(fe) req k

let run_for t us =
  Sim.Engine.run ~until:(Sim.Engine.now t.sim + us) t.sim

let run_until_quiescent t ?(max_us = 10_000_000) () =
  Sim.Engine.run ~until:(Sim.Engine.now t.sim + max_us) t.sim
