module Ts = Clocksync.Timestamp
module Value = Functor_cc.Value
module Funct = Functor_cc.Funct
module Key = Mvstore.Key

(* Frontend-side per-transaction completion tracking.  Install targets
   and Batch_done sources are tracked by PARTITION, not address: after a
   failover the promoted replica answers from a different address, and
   one server may hold batches of several partitions for the same
   transaction. *)
type track = {
  ts : Ts.t;
  epoch : int;
  issued_at : int;
  ack : Txn.ack_mode;
  reply : Txn.result -> unit;
  expected_dones : int;  (* one Batch_done per participant partition *)
  mutable awaiting_installs : int;
  mutable install_failed : bool;
  mutable acked_ok : int list;  (* partitions whose install ack was ok *)
  mutable install_done_at : int;
  mutable done_srcs : int list;
      (* partitions whose Batch_done arrived — a set, so duplicated
         messages cannot double-count *)
  mutable any_aborted : bool;
  mutable max_retrieved : int;
}

(* Backend-side per-transaction batch tracking: how many locally installed
   functors still await a final value. *)
type batch = {
  coordinator : Net.Address.t;
  mutable remaining : int;
  mutable batch_max_retrieved : int;
  mutable batch_aborted : bool;
}

(* ---- replication state -------------------------------------------------- *)

(* Cluster-level replication context, shared by all servers: the ship
   plane (a separate RPC instance so replication traffic cannot perturb
   the data plane's latency stream), the crash-aware routing table, and
   the static group layout. *)
type repl_ctx = {
  plane : Message.rpc;
  route : Net.Route.t;
  members_of : int -> Net.Address.t list;
}

(* Primary-side state for one partition this server currently leads. *)
type prim = {
  p_partition : int;
  p_wal : Wal.t;
  group : Repl.t;
  followers : Net.Address.t list;
  mutable shipped : int;  (* highest WAL seq shipped at least once *)
  mutable retry_armed : bool;
  mutable ship_log : (int * int * int * int) list;
      (* (member, seq, ship-time, epoch) of in-flight ships, newest
         first — ledger-only bookkeeping (empty unless a ledger is
         attached), matched against cumulative acks for WAL-ship lag *)
}

(* Follower-side state for one partition this server replicates but does
   not lead.  Shipped entries are logged to a local WAL (acks mean
   durable-here) and applied to the engine only at promotion. *)
type flw = {
  f_partition : int;
  mutable f_term : int;
  mutable f_wal : Wal.t;
  mutable f_applied : int;  (* contiguous prefix logged locally *)
  f_buf : (int, Message.ship_entry) Hashtbl.t;  (* out-of-order arrivals *)
  mutable f_ack_pending : bool;
}

type t = {
  sim : Sim.Engine.t;
  data : Message.rpc;
  address : Net.Address.t;
  node_id : int;
  clock : Clocksync.Node_clock.t;
  partition_of : Key.t -> int;
  addr_of_partition : int -> Net.Address.t;
  my_partition : int;
  config : Config.t;
  metrics : Sim.Metrics.t;
  obs : Obs.Ctl.t option;
  ledger : Obs.Ledger.t option;
      (* cached from [obs] at creation: the epoch-ledger emit sites cost
         one option test when no ledger is attached *)
  (* Hot-path metric handles, resolved once at creation (see DESIGN.md,
     "Hot paths and how to measure them"). *)
  m_noauth_starts : int ref;
  m_held : int ref;
  m_submitted_rw : int ref;
  m_submitted_ro : int ref;
  m_installed : int ref;
  m_committed : int ref;
  m_aborted_compute : int ref;
  m_aborted_install : int ref;
  m_functors_installed : int ref;
  m_precondition_failures : int ref;
  m_ro_completed : int ref;
  m_fastpath_commits : int ref;
  h_lat_total : Sim.Stats.Histogram.t;
  h_lat_install : Sim.Stats.Histogram.t;
  h_lat_wait : Sim.Stats.Histogram.t;
  h_lat_proc : Sim.Stats.Histogram.t;
  h_lat_ro : Sim.Stats.Histogram.t;
  h_lat_fastpath : Sim.Stats.Histogram.t;
  m_be_dropped : int ref;
  pool : Sim.Worker_pool.t;
  real_pool : Runtime.Pool.t option;
      (* worker-domain pool for --runtime real (shared cluster-wide);
         None under the default sim runtime *)
  ts_source : Clocksync.Ts_source.t;
  part : Epoch.Participant.t;
  registry : Functor_cc.Registry.t;
  mutable engine : Functor_cc.Compute_engine.t;
  mutable processor : Functor_cc.Processor.t;
  mutable planner : Functor_cc.Planner.t;
  tracks : (int, track) Hashtbl.t;
  batches : (int * int, batch) Hashtbl.t;
      (* (txn_id, partition) -> batch: a server that adopted a partition
         can hold two batches of the same transaction *)
  install_verdicts : (int * int, bool) Hashtbl.t;
      (* (txn_id, partition) -> install ack verdict, so retransmitted
         installs are answered idempotently (volatile: wiped by a crash) *)
  pending_dones : (int * int, unit) Hashtbl.t;
      (* (txn_id, partition) pairs whose Batch_done awaits the
         coordinator's ack; drives the resend loop (volatile: wiped by a
         crash — recovery rebuilds the batch, and recomputation sends a
         fresh notification) *)
  fp_pending : (int, (Key.t * int) list) Hashtbl.t;
      (* epoch -> fast-path installs (newest first) awaiting their lazy
         merge.  The functors are already on their chains — reads fold
         them on demand through the engine's at-most-once discipline —
         and epoch close folds the remainder so the value watermark keeps
         advancing.  Volatile: a crash wipes it, and reintegration
         rebuilds it from the WAL's [fast] entries *)
  held : (unit -> unit) Queue.t;
  wal : Wal.t option;
  mutable be_down : bool;
      (* backend role crashed: storage/compute requests are dropped until
         {!restart_be}; the frontend role and epoch participant stay up *)
  mutable last_closed_epoch : int;
  mutable delayed_reads : (int * (unit -> unit)) list;
      (* (epoch, run) — latest-version reads waiting for their epoch to
         close (§III-B) *)
  (* replication (all dormant — and behaviour-neutral — until
     {!attach_repl}, which the cluster calls only when replicas > 1) *)
  mutable repl : repl_ctx option;
  prims : (int, prim) Hashtbl.t;  (* partition -> primary-side state *)
  flws : (int, flw) Hashtbl.t;  (* partition -> follower-side state *)
  mutable repl_gated : bool;
      (* sync mode: the epoch-close gate is installed, so close markers
         are logged by the gate, not by on_closed *)
  mutable pending_closes : (int * bool ref * (unit -> unit)) list;
      (* closes deferred by the replication gate: (epoch, delivered,
         deliver).  A crash force-delivers them — the EM's grant made the
         close a cluster-global fact the FE side must honour. *)
  mutable on_crash : unit -> unit;
  mutable on_restart : unit -> unit;
      (* lifecycle hooks for the cluster's failure monitor *)
}

let addr t = t.address
let pool t = t.pool
let engine t = t.engine
let participant t = t.part
let clock t = t.clock
let held_requests t = Queue.length t.held
let be_down t = t.be_down

let now t = Sim.Engine.now t.sim

(* Lifecycle trace emit: one option test when tracing is off.  [ts]
   defaults to the current simulated time; Submit passes the original
   submission time explicitly (the transaction's id does not exist until
   its timestamp is acquired, so the event is emitted retroactively). *)
let emit t ~txn ~stage ?(ts = -1) ?arg () =
  match t.obs with
  | None -> ()
  | Some ctl ->
      let ts = if ts < 0 then now t else ts in
      Obs.Ctl.emit ctl ~txn ~stage ~node:t.node_id ~ts ?arg ()

(* Epoch-ledger emit: one option test when no ledger is attached. *)
let lnote t f = match t.ledger with None -> () | Some l -> f l

(* Data-plane call with periodic retransmission (config.install_retry_us).
   The first reply wins; the BE side answers duplicated requests
   idempotently.  With retries enabled, a lost request or reply turns into
   latency instead of a wedged transaction — which is what keeps the epoch
   in_flight barrier (and hence atomic commitment) live under message
   loss.  The destination is re-resolved from the partition on every
   attempt: after a failover the retries must chase the promoted
   replica, not the crashed primary's address. *)
let call_with_retry t ~partition req k =
  let period = t.config.Config.install_retry_us in
  if period <= 0 then
    Net.Rpc.call t.data ~src:t.address
      ~dst:(t.addr_of_partition partition)
      req k
  else begin
    let answered = ref false in
    let once resp =
      if not !answered then begin
        answered := true;
        k resp
      end
    in
    let rec attempt () =
      Net.Rpc.call t.data ~src:t.address
        ~dst:(t.addr_of_partition partition)
        req once;
      Sim.Engine.after t.sim period (fun () ->
          if not !answered then attempt ())
    in
    attempt ()
  end

(* ---- partition ownership ----------------------------------------------- *)

(* Which partitions this server currently serves as (primary) storage.
   Unreplicated: exactly its home partition, forever.  Replicated: the
   partitions in [prims] — the home partition until a failover takes it
   away, plus any partition adopted by promotion. *)
let leads t ~partition =
  match t.repl with
  | None -> partition = t.my_partition
  | Some _ -> Hashtbl.mem t.prims partition

let owns t key = leads t ~partition:(t.partition_of key)

let current_prim t partition = Hashtbl.find_opt t.prims partition

let wal_for t ~partition =
  match current_prim t partition with
  | Some prim -> Some prim.p_wal
  | None -> t.wal

(* Append to the partition's log; on a replicated primary also advance
   the group's replicated-log length, which is kept equal to the WAL
   entry count (checkpoints are disabled under replication so positions
   never shift). *)
let log_entry t ~partition entry =
  match current_prim t partition with
  | Some prim ->
      Wal.append prim.p_wal entry;
      ignore (Repl.append prim.group)
  | None -> (
      match t.wal with
      | Some wal -> Wal.append wal entry
      | None -> ())

(* ---- WAL shipping (primary side) ---------------------------------------- *)

let ship_entry_to t prim ~dst ~seq entry =
  match t.repl with
  | None -> ()
  | Some ctx ->
      emit t ~txn:(-1) ~stage:Obs.Trace.Wal_ship ~arg:seq ();
      lnote t (fun _ ->
          prim.ship_log <-
            ( Net.Address.to_int dst, seq, now t,
              Epoch.Participant.current_epoch t.part )
            :: prim.ship_log);
      Net.Rpc.send ctx.plane ~src:t.address ~dst
        (Message.One
           (Message.Wal_ship
              { partition = prim.p_partition;
                term = Repl.term prim.group;
                seq;
                entry = Wal.ship_of_entry entry }))

(* Ship the freshly durable suffix to every follower.  Called from the
   WAL flush hook, so a follower can never ack an entry the primary
   itself might still lose in a crash. *)
let ship_fresh t prim =
  let upto = Wal.durable_count prim.p_wal in
  if upto > prim.shipped then begin
    let range = Wal.durable_range prim.p_wal ~from:prim.shipped ~upto in
    List.iter
      (fun dst ->
        List.iter (fun (seq, e) -> ship_entry_to t prim ~dst ~seq e) range)
      prim.followers;
    prim.shipped <- upto
  end

let reship_member t prim ~member =
  let upto = Wal.durable_count prim.p_wal in
  let from = Repl.acked prim.group ~member:(Net.Address.to_int member) in
  List.iter
    (fun (seq, e) -> ship_entry_to t prim ~dst:member ~seq e)
    (Wal.durable_range prim.p_wal ~from ~upto)

(* Periodic retransmission to lagging followers (repl_retry_us), running
   while any live follower is behind.  Stale timers are disarmed by the
   identity check: a demotion or re-adoption replaces the prim record. *)
let rec arm_retry t prim =
  let period = t.config.Config.repl_retry_us in
  if period > 0 && not prim.retry_armed then begin
    prim.retry_armed <- true;
    Sim.Engine.after t.sim period (fun () ->
        prim.retry_armed <- false;
        match current_prim t prim.p_partition with
        | Some pr when pr == prim && not t.be_down ->
            let upto = Wal.durable_count prim.p_wal in
            let lagging = Repl.lagging_followers prim.group ~seq:upto in
            List.iter
              (fun (id, _) ->
                reship_member t prim ~member:(Net.Address.of_int id))
              lagging;
            if lagging <> [] || Repl.replica_lag prim.group > 0 then
              arm_retry t prim
        | Some _ | None -> ())
  end

let install_ship_hook t prim =
  Wal.set_on_flush prim.p_wal (fun () ->
      match current_prim t prim.p_partition with
      | Some pr when pr == prim && not t.be_down ->
          ship_fresh t pr;
          if Repl.replica_lag pr.group > 0 then arm_retry t pr
      | Some _ | None -> ())

(* ---- frontend: timestamp acquisition and held requests --------------- *)

let acquire t =
  match Epoch.Participant.window t.part with
  | None -> None
  | Some w -> (
      match Clocksync.Ts_source.next t.ts_source ~lo:w.lo ~hi:w.hi with
      | None -> None
      | Some ts ->
          if not w.Epoch.Participant.authorized then incr t.m_noauth_starts;
          Some (w, ts))

let hold t thunk =
  incr t.m_held;
  Queue.add thunk t.held

let drain_held t =
  let n = Queue.length t.held in
  for _ = 1 to n do
    match Queue.take_opt t.held with Some thunk -> thunk () | None -> ()
  done

(* ---- reads ------------------------------------------------------------ *)

(* Execute a historical multi-key read at [version]: keys of a partition
   this server leads go through the local engine (charged to this
   server's pool), others through Get_req RPCs (charged at the owning
   BE). *)
let run_read t keys version reply =
  let n = List.length keys in
  if n = 0 then reply (Txn.Values [])
  else begin
    let results = Array.make n ("", None) in
    let remaining = ref n in
    let deliver i key v =
      results.(i) <- (Key.name key, v);
      decr remaining;
      if !remaining = 0 then reply (Txn.Values (Array.to_list results))
    in
    List.iteri
      (fun i key ->
        let key = Key.intern key in
        if owns t key && not t.be_down then
          Sim.Worker_pool.submit t.pool ~cost:t.config.cost_get_us (fun () ->
              Functor_cc.Compute_engine.get t.engine ~key ~version
                (fun v -> deliver i key v))
        else
          (* Remote partition — or our own backend while it is down, in
             which case the self-addressed request is dropped and retried
             until the restart answers it. *)
          call_with_retry t ~partition:(t.partition_of key)
            (Message.Req (Message.Get_req { key; version }))
            (function
              | Message.Get_resp v -> deliver i key v
              | Message.Install_ack _ | Message.Abort_ack ->
                  invalid_arg "run_read: protocol mismatch"))
      keys
  end

(* ---- frontend: read-write transactions ------------------------------- *)

(* Group the transaction's functors by owning partition.  Determinate
   operations additionally place a Dep_marker on each dependent key's
   partition (our realisation of §IV-E deferred writes). *)
let groups_of_writes t writes =
  let tbl : (int, (Key.t * Message.fspec) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let push partition entry =
    match Hashtbl.find_opt tbl partition with
    | Some r -> r := entry :: !r
    | None -> Hashtbl.add tbl partition (ref [ entry ])
  in
  (* Intern every written key once; everything below works on dense ids. *)
  let kwrites = List.map (fun (k, op) -> (Key.intern k, op)) writes in
  (* Recipient sets only arise when some functor reads a key other than
     its own; skip the quadratic scan for the common all-numeric case. *)
  let cross_reads =
    List.exists
      (fun (key, op) ->
        match op with
        | Txn.Call { read_set; _ } | Txn.Det { read_set; _ } ->
            List.exists (fun rk -> not (String.equal rk (Key.name key)))
              read_set
        | Txn.Put _ | Txn.Delete | Txn.Add _ | Txn.Subtr _ | Txn.Max _
        | Txn.Min _ ->
            false)
      kwrites
  in
  let written_keys = List.map fst kwrites in
  List.iter
    (fun (key, op) ->
      let key_partition = t.partition_of key in
      let recipients =
        if t.config.push_opt && cross_reads then
          (* Only keep recipients living on other partitions:
             same-partition reads are local anyway, so pushing would only
             add overhead. *)
          List.filter
            (fun r -> t.partition_of r <> key_partition)
            (List.map Key.intern (Txn.recipients_for writes (Key.name key)))
        else []
      in
      (* Inverse of the recipient set: read-set keys of THIS functor that a
         sibling functor (on another partition) writes and will push. *)
      let pushed_reads =
        if not (t.config.push_opt && cross_reads) then []
        else
          let reads =
            match op with
            | Txn.Call { read_set; _ } | Txn.Det { read_set; _ } -> read_set
            | Txn.Put _ | Txn.Delete | Txn.Add _ | Txn.Subtr _ | Txn.Max _
            | Txn.Min _ ->
                []
          in
          List.filter_map
            (fun rk ->
              let rk = Key.intern rk in
              if
                (not (Key.equal rk key))
                && t.partition_of rk <> key_partition
                && List.exists (Key.equal rk) written_keys
              then Some rk
              else None)
            reads
      in
      push key_partition
        (key, Message.fspec_of_op ~key ~recipients ~pushed_reads op);
      match op with
      | Txn.Det { dependents; _ } ->
          List.iter
            (fun dk ->
              let dk = Key.intern dk in
              push (t.partition_of dk)
                (dk, Message.fspec_dep_marker ~det_key:key))
            dependents
      | Txn.Put _ | Txn.Delete | Txn.Add _ | Txn.Subtr _ | Txn.Max _
      | Txn.Min _ | Txn.Call _ ->
          ())
    kwrites;
  Hashtbl.fold (fun partition entries acc -> (partition, List.rev !entries) :: acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let record_commit_metrics t track completed_at =
  let install = track.install_done_at - track.issued_at in
  let wait =
    if track.max_retrieved > track.install_done_at then
      track.max_retrieved - track.install_done_at
    else 0
  in
  let proc_start =
    if track.max_retrieved > track.install_done_at then track.max_retrieved
    else track.install_done_at
  in
  let proc = if completed_at > proc_start then completed_at - proc_start else 0 in
  Sim.Stats.Histogram.add t.h_lat_total (completed_at - track.issued_at);
  Sim.Stats.Histogram.add t.h_lat_install install;
  Sim.Stats.Histogram.add t.h_lat_wait wait;
  Sim.Stats.Histogram.add t.h_lat_proc proc

let maybe_complete t track =
  if
    track.awaiting_installs = 0
    && (not track.install_failed)
    && List.length track.done_srcs = track.expected_dones
  then begin
    Hashtbl.remove t.tracks (Ts.to_int track.ts);
    let completed_at = now t in
    record_commit_metrics t track completed_at;
    emit t ~txn:(Ts.to_int track.ts)
      ~stage:
        (if track.any_aborted then Obs.Trace.Aborted else Obs.Trace.Committed)
      ~arg:track.epoch ();
    lnote t (fun l ->
        if (not track.any_aborted) && Obs.Ledger.awaiting_first_commit l then
          Obs.Ledger.note_commit l ~node:t.node_id ~t_us:completed_at
            ~partitions:track.acked_ok);
    if track.any_aborted then begin
      incr t.m_aborted_compute;
      match track.ack with
      | Txn.Ack_on_computed ->
          track.reply (Txn.Aborted { ts = Some track.ts; stage = `Compute })
      | Txn.Ack_on_install ->
          (* Already acknowledged after the write-only phase; the client
             learns the outcome by reading any functor (§IV-A). *)
          ()
    end
    else begin
      incr t.m_committed;
      match track.ack with
      | Txn.Ack_on_computed -> track.reply (Txn.Committed { ts = track.ts })
      | Txn.Ack_on_install -> ()
    end
  end

let finish_write_phase t track =
  Epoch.Participant.txn_finished t.part ~epoch:track.epoch;
  track.install_done_at <- now t;
  incr t.m_installed;
  emit t ~txn:(Ts.to_int track.ts) ~stage:Obs.Trace.Functor_write
    ~arg:track.epoch ();
  (match track.ack with
  | Txn.Ack_on_install -> track.reply (Txn.Committed { ts = track.ts })
  | Txn.Ack_on_computed -> ());
  maybe_complete t track

(* Second round: roll back the write-only phase on every partition that
   acknowledged it (§IV-C "arbitrary abort", in-epoch case). *)
let abort_write_phase t track keys_by_partition =
  incr t.m_aborted_install;
  let targets = track.acked_ok in
  let expected = List.length targets in
  emit t ~txn:(Ts.to_int track.ts) ~stage:Obs.Trace.Aborted ~arg:track.epoch
    ();
  if expected = 0 then begin
    Hashtbl.remove t.tracks (Ts.to_int track.ts);
    Epoch.Participant.txn_finished t.part ~epoch:track.epoch;
    track.reply (Txn.Aborted { ts = Some track.ts; stage = `Install })
  end
  else begin
    let remaining = ref expected in
    List.iter
      (fun partition ->
        let keys =
          match List.assoc_opt partition keys_by_partition with
          | Some keys -> keys
          | None -> []
        in
        call_with_retry t ~partition
          (Message.Req (Message.Abort_txn { ts = Ts.to_int track.ts; keys }))
          (fun _resp ->
            decr remaining;
            if !remaining = 0 then begin
              Hashtbl.remove t.tracks (Ts.to_int track.ts);
              Epoch.Participant.txn_finished t.part ~epoch:track.epoch;
              track.reply (Txn.Aborted { ts = Some track.ts; stage = `Install })
            end))
      targets
  end

(* Coordination-free fast path (ROADMAP item 3).  The write set is all
   commutative built-ins (ADD/SUBTR/MAX/MIN) with no precondition keys, so
   any interleaving of such transactions on a chain converges to the same
   final values — the transaction needs no epoch-close ordering and
   commits as soon as every partition has installed (and, under
   [ack_after_flush]/[repl_sync], made durable/replicated) its functors.
   No track entry, no [Batch_done] round: the backends hold the functors
   as lazily-merged pending deltas. *)
let start_fast t ~groups ~ack:_ reply w ts ~issued_at =
  let epoch = w.Epoch.Participant.epoch in
  let txn = Ts.to_int ts in
  let remaining = ref (List.length groups) in
  Sim.Worker_pool.submit t.pool ~cost:t.config.cost_coord_us (fun () ->
      List.iter
        (fun (partition, entries) ->
          let install =
            { Message.txn_id = txn; epoch; ts = txn;
              lo = w.Epoch.Participant.lo;
              hi = w.Epoch.Participant.hi;
              writes = entries; preconditions = []; fast = true }
          in
          call_with_retry t ~partition
            (Message.Req (Message.Install install))
            (function
              | Message.Install_ack { ok = _ } ->
                  (* With no preconditions a fast install cannot be
                     rejected; any [false] verdict is a stale duplicate
                     answer and the installed functor is authoritative. *)
                  decr remaining;
                  if !remaining = 0 then begin
                    Epoch.Participant.txn_finished t.part ~epoch;
                    incr t.m_installed;
                    incr t.m_committed;
                    incr t.m_fastpath_commits;
                    let latency = now t - issued_at in
                    Sim.Stats.Histogram.add t.h_lat_total latency;
                    Sim.Stats.Histogram.add t.h_lat_fastpath latency;
                    emit t ~txn ~stage:Obs.Trace.Fastpath_commit ~arg:latency
                      ();
                    lnote t (fun l ->
                        Obs.Ledger.note_fast_commit l ~node:t.node_id ~epoch;
                        if Obs.Ledger.awaiting_first_commit l then
                          Obs.Ledger.note_commit l ~node:t.node_id
                            ~t_us:(now t)
                            ~partitions:(List.map fst groups));
                    reply (Txn.Committed { ts })
                  end
              | Message.Get_resp _ | Message.Abort_ack ->
                  invalid_arg "install: protocol mismatch"))
        groups)

let rec submit t req reply =
  match req with
  | Txn.Read_write { writes; precondition_keys; ack } ->
      submit_rw t (writes, precondition_keys, ack) reply
  | Txn.Read_only { keys } -> submit_ro t keys reply
  | Txn.Read_at { keys; version } -> run_read t keys version reply

and submit_rw t rw reply =
  incr t.m_submitted_rw;
  let submitted_at = now t in
  match acquire t with
  | None ->
      hold t (fun () ->
          (* Re-enter without double-counting the submission. *)
          retry_rw t rw reply ~submitted_at)
  | Some (w, ts) -> start_rw t rw reply w ts ~submitted_at

and retry_rw t rw reply ~submitted_at =
  match acquire t with
  | None -> hold t (fun () -> retry_rw t rw reply ~submitted_at)
  | Some (w, ts) -> start_rw t rw reply w ts ~submitted_at

and start_rw t (writes, precondition_keys, ack) reply w ts ~submitted_at =
  let issued_at = now t in
  emit t ~txn:(Ts.to_int ts) ~stage:Obs.Trace.Submit ~ts:submitted_at ();
  emit t ~txn:(Ts.to_int ts) ~stage:Obs.Trace.Epoch_assign
    ~arg:w.Epoch.Participant.epoch ();
  lnote t (fun l ->
      Obs.Ledger.note_assigned l ~node:t.node_id
        ~epoch:w.Epoch.Participant.epoch);
  Epoch.Participant.txn_started t.part ~epoch:w.Epoch.Participant.epoch;
  let groups = groups_of_writes t writes in
  if
    t.config.Config.fastpath
    && Txn.all_commutative ~writes ~precondition_keys
  then start_fast t ~groups ~ack reply w ts ~issued_at
  else begin
  let preconditions = List.map Key.intern precondition_keys in
  let precond_of partition =
    List.filter (fun k -> t.partition_of k = partition) preconditions
  in
  let track =
    { ts; epoch = w.Epoch.Participant.epoch; issued_at; ack; reply;
      expected_dones = List.length groups;
      awaiting_installs = List.length groups; install_failed = false;
      acked_ok = []; install_done_at = issued_at; done_srcs = [];
      any_aborted = false; max_retrieved = issued_at }
  in
  Hashtbl.replace t.tracks (Ts.to_int ts) track;
  let keys_by_partition =
    List.map (fun (p, entries) -> (p, List.map fst entries)) groups
  in
  (* Coordination (transform + fan-out) costs FE CPU. *)
  Sim.Worker_pool.submit t.pool ~cost:t.config.cost_coord_us (fun () ->
      List.iter
        (fun (partition, entries) ->
          let install =
            { Message.txn_id = Ts.to_int ts;
              epoch = w.Epoch.Participant.epoch;
              ts = Ts.to_int ts;
              lo = w.Epoch.Participant.lo;
              hi = w.Epoch.Participant.hi;
              writes = entries;
              preconditions = precond_of partition;
              fast = false }
          in
          call_with_retry t ~partition
            (Message.Req (Message.Install install))
            (function
              | Message.Install_ack { ok } ->
                  track.awaiting_installs <- track.awaiting_installs - 1;
                  if ok then track.acked_ok <- partition :: track.acked_ok
                  else track.install_failed <- true;
                  if track.awaiting_installs = 0 then
                    if track.install_failed then
                      abort_write_phase t track keys_by_partition
                    else finish_write_phase t track
              | Message.Get_resp _ | Message.Abort_ack ->
                  invalid_arg "install: protocol mismatch"))
        groups)
  end

and submit_ro t keys reply =
  incr t.m_submitted_ro;
  match acquire t with
  | None -> hold t (fun () -> submit_ro_held t keys reply)
  | Some (w, ts) -> delay_ro t keys reply w ts

and submit_ro_held t keys reply =
  match acquire t with
  | None -> hold t (fun () -> submit_ro_held t keys reply)
  | Some (w, ts) -> delay_ro t keys reply w ts

and delay_ro t keys reply w ts =
  (* §III-B: a latest-version read gets a timestamp in the current epoch
     and is served as a historical read once that epoch closes. *)
  let issued_at = now t in
  emit t ~txn:(Ts.to_int ts) ~stage:Obs.Trace.Submit ();
  emit t ~txn:(Ts.to_int ts) ~stage:Obs.Trace.Epoch_assign
    ~arg:w.Epoch.Participant.epoch ();
  lnote t (fun l ->
      Obs.Ledger.note_assigned l ~node:t.node_id
        ~epoch:w.Epoch.Participant.epoch);
  let run () =
    run_read t keys (Ts.to_int ts) (fun result ->
        Sim.Stats.Histogram.add t.h_lat_ro (now t - issued_at);
        incr t.m_ro_completed;
        emit t ~txn:(Ts.to_int ts) ~stage:Obs.Trace.Read_served
          ~arg:w.Epoch.Participant.epoch ();
        reply result)
  in
  t.delayed_reads <- (w.Epoch.Participant.epoch, run) :: t.delayed_reads

(* ---- backend ----------------------------------------------------------- *)

let send_batch_done t (b : batch) ~txn_id ~partition ~functors =
  let send () =
    Net.Rpc.send t.data ~src:t.address ~dst:b.coordinator
      (Message.One
         (Message.Batch_done
            { txn_id; partition; functors;
              max_retrieved_at = b.batch_max_retrieved;
              aborted = b.batch_aborted }))
  in
  send ();
  (* The notification is one-way, so a lossy network can eat it and wedge
     the coordinator; with retries configured it is repeated until the
     coordinator's Batch_done_ack clears it (the coordinator dedupes by
     partition). *)
  let period = t.config.Config.install_retry_us in
  if period > 0 then begin
    Hashtbl.replace t.pending_dones (txn_id, partition) ();
    let rec again () =
      if (not t.be_down) && Hashtbl.mem t.pending_dones (txn_id, partition)
      then begin
        send ();
        Sim.Engine.after t.sim period again
      end
    in
    Sim.Engine.after t.sim period again
  end

(* Acknowledge an install (or abort): with [ack_after_flush] a positive
   ack waits until the WAL entries it covers are durable; with
   [repl_sync] it additionally waits until every live follower of the
   partition's group has acked the covering log prefix — so a committed
   transaction survives the loss of any single replica.  The replication
   sequence is captured NOW (right after this request's appends), not
   when the flush fires, so unrelated later traffic cannot inflate the
   gate. *)
let ack_install t ~partition ~ok reply =
  let finish () = reply (Message.Install_ack { ok }) in
  let after_repl =
    match current_prim t partition with
    | Some prim when ok && t.config.Config.repl_sync ->
        let seq = Repl.len prim.group in
        fun () -> Repl.when_seq_acked prim.group ~seq finish
    | Some _ | None -> finish
  in
  match wal_for t ~partition with
  | Some wal
    when ok && (t.config.ack_after_flush || t.config.Config.repl_sync) ->
      Wal.after_durable wal after_repl
  | Some _ | None -> after_repl ()

let ack_abort t ~partition reply =
  let finish () = reply Message.Abort_ack in
  let after_repl =
    match current_prim t partition with
    | Some prim when t.config.Config.repl_sync ->
        let seq = Repl.len prim.group in
        fun () -> Repl.when_seq_acked prim.group ~seq finish
    | Some _ | None -> finish
  in
  match wal_for t ~partition with
  | Some wal when t.config.ack_after_flush || t.config.Config.repl_sync ->
      Wal.after_durable wal after_repl
  | Some _ | None -> after_repl ()

(* Park a fast-path install for its epoch's lazy merge. *)
let buffer_fast t ~epoch ~key ~version =
  let prev =
    match Hashtbl.find_opt t.fp_pending epoch with Some l -> l | None -> []
  in
  Hashtbl.replace t.fp_pending epoch ((key, version) :: prev)

(* Fold the fast-path deltas of every epoch at or below [upto_epoch] into
   their chains (epoch order, install order within an epoch).  Each merge
   is at-most-once in the engine, so deltas an on-demand read already
   folded are skipped. *)
let merge_fast_deltas t ~upto_epoch =
  let ready =
    Hashtbl.fold
      (fun epoch items acc ->
        if epoch <= upto_epoch then (epoch, items) :: acc else acc)
      t.fp_pending []
  in
  List.iter
    (fun (epoch, items) ->
      Hashtbl.remove t.fp_pending epoch;
      lnote t (fun l ->
          Obs.Ledger.note_fast_merges l ~node:t.node_id ~epoch
            ~count:(List.length items));
      List.iter
        (fun (key, version) ->
          Functor_cc.Compute_engine.merge_delta t.engine ~key ~version)
        (List.rev items))
    (List.sort (fun (a, _) (b, _) -> Int.compare a b) ready)

let do_install t ~src (inst : Message.install) reply =
  (* Every write of an install lives on one partition (the FE grouped
     them); a server that no longer leads it (demoted while the FE's
     routing was stale) must drop the request so the retry re-resolves. *)
  let partition = t.partition_of (fst (List.hd inst.writes)) in
  if t.be_down || not (leads t ~partition) then incr t.m_be_dropped
  else
    match Hashtbl.find_opt t.install_verdicts (inst.txn_id, partition) with
    | Some ok ->
        (* Retransmission of an install we already answered (the ack was
           lost): repeat the verdict, without re-applying anything. *)
        ack_install t ~partition ~ok reply
    | None ->
        let present key =
          match
            Mvstore.Table.find_le
              (Functor_cc.Compute_engine.table t.engine)
              ~key ~version:inst.ts
          with
          | Some _ -> true
          | None -> false
        in
        if not (List.for_all present inst.preconditions) then begin
          incr t.m_precondition_failures;
          Hashtbl.replace t.install_verdicts (inst.txn_id, partition) false;
          ack_install t ~partition ~ok:false reply
        end
        else begin
          let lo = Ts.to_int (Ts.window_lo ~time_us:inst.lo) in
          let hi = Ts.to_int (Ts.window_hi ~time_us:inst.hi) in
          let b =
            { coordinator = src; remaining = 0;
              batch_max_retrieved = now t; batch_aborted = false }
          in
          let installed = now t in
          List.iter
            (fun (key, spec) ->
              let record =
                Message.functor_of_fspec spec ~txn_id:inst.txn_id
                  ~coordinator:(Net.Address.to_int src)
              in
              match
                Functor_cc.Compute_engine.install t.engine ~key
                  ~version:inst.ts ~lo ~hi record
              with
              | Ok () -> (
                  incr t.m_functors_installed;
                  log_entry t ~partition
                    (Wal.Log_install
                       { key; version = inst.ts; spec;
                         txn_id = inst.txn_id;
                         coordinator = Net.Address.to_int src;
                         epoch = inst.epoch; fast = inst.fast });
                  match record.Funct.state with
                  | Funct.Pending p ->
                      p.Funct.installed_at_us <- installed;
                      if inst.fast then
                        (* Pre-committed at the coordinator: no epoch
                           batch, no Batch_done — the delta merges lazily
                           at the next read or epoch close. *)
                        buffer_fast t ~epoch:inst.epoch ~key
                          ~version:inst.ts
                      else begin
                        b.remaining <- b.remaining + 1;
                        Functor_cc.Processor.buffer t.processor
                          ~epoch:inst.epoch ~key ~version:inst.ts
                      end
                  | Funct.Final _ -> ())
              | Error (`Duplicate_version | `Version_out_of_window) ->
                  (* The version already exists: a WAL-recovered copy of
                     this very install, retransmitted because the crash ate
                     the ack (the verdict cache is volatile).  The
                     recovered record is authoritative — it was re-buffered
                     by the restart — so there is nothing to apply. *)
                  ())
            inst.writes;
          if not inst.fast then
            if b.remaining = 0 then
              send_batch_done t b ~txn_id:inst.txn_id ~partition
                ~functors:(List.length inst.writes)
            else Hashtbl.replace t.batches (inst.txn_id, partition) b;
          Hashtbl.replace t.install_verdicts (inst.txn_id, partition) true;
          ack_install t ~partition ~ok:true reply
        end

let do_abort t ~ts ~keys reply =
  match keys with
  | [] -> reply Message.Abort_ack
  | first :: _ ->
      let partition = t.partition_of first in
      if t.be_down || not (leads t ~partition) then incr t.m_be_dropped
      else begin
        List.iter
          (fun key ->
            log_entry t ~partition (Wal.Log_abort { key; version = ts });
            Functor_cc.Compute_engine.abort_version t.engine ~key ~version:ts)
          keys;
        ack_abort t ~partition reply
      end

let on_batch_done t ~txn_id ~partition ~max_retrieved_at ~aborted =
  match Hashtbl.find_opt t.tracks txn_id with
  | None -> ()  (* transaction already aborted in the write phase *)
  | Some track ->
      if not (List.mem partition track.done_srcs) then begin
        track.done_srcs <- partition :: track.done_srcs;
        emit t ~txn:txn_id ~stage:Obs.Trace.Batch_ack ~arg:track.epoch ();
        if aborted then track.any_aborted <- true;
        if max_retrieved_at > track.max_retrieved then
          track.max_retrieved <- max_retrieved_at;
        maybe_complete t track
      end

let on_functor_final t ~key ~pending ~final =
  let partition = t.partition_of key in
  match Hashtbl.find_opt t.batches (pending.Funct.txn_id, partition) with
  | None -> ()
  | Some { remaining; _ } when remaining <= 0 ->
      (* A recovered pending functor (not tracked by any live batch)
         finalised against a later batch for the same txn; don't let it
         drive [remaining] negative. *)
      ()
  | Some b ->
      b.remaining <- b.remaining - 1;
      if pending.Funct.retrieved_at_us > b.batch_max_retrieved then
        b.batch_max_retrieved <- pending.Funct.retrieved_at_us;
      (match (final, pending.Funct.ftype) with
      | Funct.Aborted_v, Functor_cc.Ftype.Dep_marker _ ->
          (* A skipped dependent write is not a transaction abort: the
             determinate functor committed and simply chose not to write
             this key.  A genuine abort is reported by the determinate
             functor's own (non-marker) record. *)
          ()
      | Funct.Aborted_v, _ -> b.batch_aborted <- true
      | (Funct.Committed _ | Funct.Deleted_v), _ -> ());
      if b.remaining = 0 then begin
        Hashtbl.remove t.batches (pending.Funct.txn_id, partition);
        send_batch_done t b ~txn_id:pending.Funct.txn_id ~partition
          ~functors:0
      end

(* ---- engine (re)spawn -------------------------------------------------- *)

(* (Re)create the partition's compute engine and processor — at
   construction and again after a backend crash.  The outward-acting
   callbacks are guarded by a liveness check: continuations of the dead
   incarnation's in-flight computations may still fire after a crash, and
   must not leak pushes, dependent writes, or batch completions from
   volatile state that the crash destroyed. *)
let spawn_engine t =
  let me = ref t.engine in
  let live () = t.engine == !me in
  let strat_t0 = ref 0 in
  let callbacks =
    { Functor_cc.Compute_engine.is_local = (fun key -> owns t key);
      remote_get =
        (fun ~key ~version k ->
          if live () then
            call_with_retry t ~partition:(t.partition_of key)
              (Message.Req (Message.Get_req { key; version }))
              (function
                | Message.Get_resp v -> k v
                | Message.Install_ack _ | Message.Abort_ack ->
                    invalid_arg "remote_get: protocol mismatch"));
      send_push =
        (fun ~dst_key ~version ~src_key value ->
          if live () then begin
            let partition = t.partition_of dst_key in
            if leads t ~partition then
              Functor_cc.Compute_engine.deliver_push t.engine ~key:dst_key
                ~version ~src_key value
            else
              Net.Rpc.send t.data ~src:t.address
                ~dst:(t.addr_of_partition partition)
                (Message.One
                   (Message.Push { key = dst_key; version; src_key; value }))
          end);
      send_dep_write =
        (fun ~key ~version final ->
          if live () then begin
            let partition = t.partition_of key in
            if leads t ~partition then
              Functor_cc.Compute_engine.deliver_dep_write t.engine ~key
                ~version ~final
            else
              Net.Rpc.send t.data ~src:t.address
                ~dst:(t.addr_of_partition partition)
                (Message.One (Message.Dep_write { key; version; final }))
          end);
      notify_final =
        (fun ~key ~version:_ ~pending ~final ->
          if live () then begin
            emit t ~txn:pending.Funct.txn_id ~stage:Obs.Trace.Compute_done ();
            on_functor_final t ~key ~pending ~final
          end);
      exec =
        (fun ~cost k ->
          if live () then Sim.Worker_pool.submit t.pool ~cost k);
      now = (fun () -> Sim.Engine.now t.sim) }
  in
  let engine =
    Functor_cc.Compute_engine.create ~registry:t.registry ~callbacks
      ~compute_cost_us:t.config.Config.cost_compute_us ~metrics:t.metrics ()
  in
  me := engine;
  t.engine <- engine;
  (* The dispatch observer looks the functor's transaction id up in the
     table; the probe is only paid on traced runs. *)
  let on_dispatch =
    match t.obs with
    | None -> None
    | Some _ ->
        Some
          (fun ~key ~version ->
            match
              Mvstore.Table.find_le
                (Functor_cc.Compute_engine.table engine)
                ~key ~version
            with
            | Some (v, record) when v = version -> (
                match record.Funct.state with
                | Funct.Pending p ->
                    emit t ~txn:p.Funct.txn_id ~stage:Obs.Trace.Compute_start
                      ()
                | Funct.Final _ -> ())
            | Some _ | None -> ())
  in
  t.processor <-
    Functor_cc.Processor.create ~engine ~pool:t.pool
      ~dispatch_cost_us:t.config.Config.cost_dispatch_us ~metrics:t.metrics
      ?on_dispatch ();
  t.planner <-
    Functor_cc.Planner.create ~engine ~pool:t.pool ?real:t.real_pool
      ~dispatch_cost_us:t.config.Config.cost_dispatch_us ~metrics:t.metrics
      ~is_local:(fun key -> owns t key)
      ~send_plan_sub:(fun ~key ~version ~dst_key ~dst_version ->
        if live () then
          Net.Rpc.send t.data ~src:t.address
            ~dst:(t.addr_of_partition (t.partition_of key))
            (Message.One
               (Message.Plan_sub { key; version; dst_key; dst_version })))
      ~now:(fun () -> Sim.Engine.now t.sim)
      ?on_dispatch
      ~on_stratum:(fun ~size ->
        (* The strata of one plan run back-to-back on the orchestrating
           domain, so a single ref carries the wall-clock start from
           dispatch to the matching [on_stratum_done]. *)
        strat_t0 := Obs.Ledger.wall_us ();
        if live () then
          emit t ~txn:(-1) ~stage:Obs.Trace.Stratum_dispatch ~arg:size ())
      ?on_stratum_done:
        (match t.ledger with
        | None -> None
        | Some l ->
            Some
              (fun ~size ~workers ->
                if live () then
                  Obs.Ledger.note_stratum l ~node:t.node_id ~t0_us:!strat_t0
                    ~t1_us:(Obs.Ledger.wall_us ()) ~size ~workers))
      ~on_evaluated:(fun ~elapsed_us ->
        if live () then
          emit t ~txn:(-1) ~stage:Obs.Trace.Plan_evaluate ~arg:elapsed_us ())
      ()

(* Epoch-close (and restart) release of buffered functor metadata, routed
   by the configured compute mode.  All three modes submit the same
   dispatch-job sequence to the pool — one job per buffered item, install
   order, [cost_dispatch_us] each — so the simulated timeline does not
   depend on the mode; only the per-job evaluation strategy does. *)
let release_closed t ~upto_epoch =
  (match t.config.Config.compute_mode with
  | Config.Pool -> Functor_cc.Processor.release t.processor ~upto_epoch
  | Config.Ondemand ->
      Functor_cc.Processor.release_ondemand t.processor ~upto_epoch
  | Config.Planned ->
      let items = Functor_cc.Processor.drain t.processor ~upto_epoch in
      let stats = Functor_cc.Planner.run t.planner ~items in
      if stats.Functor_cc.Planner.nodes > 0 then begin
        emit t ~txn:(-1) ~stage:Obs.Trace.Plan_build
          ~arg:stats.Functor_cc.Planner.nodes ();
        lnote t (fun l ->
            Obs.Ledger.note_plan l ~node:t.node_id ~epoch:upto_epoch
              ~nodes:stats.Functor_cc.Planner.nodes
              ~edges:stats.Functor_cc.Planner.edges
              ~strata:stats.Functor_cc.Planner.strata
              ~critical_path:stats.Functor_cc.Planner.critical_path)
      end);
  (* Fast-path deltas never enter the processor (or a plan): fold the
     closed epochs' remainder directly.  Already-final records (folded by
     an on-demand read) are skipped by the engine. *)
  merge_fast_deltas t ~upto_epoch

(* Rebuild backend batch tracking from a replayed log, so the
   recomputation re-drives the coordinators' Batch_done notifications
   (the pre-crash batch table was volatile).  Shared by restart recovery
   and replica promotion. *)
let reintegrate t ~partition ~entries =
  let table = Functor_cc.Compute_engine.table t.engine in
  let batch_of txn_id ~coordinator =
    match Hashtbl.find_opt t.batches (txn_id, partition) with
    | Some b -> b
    | None ->
        let b =
          { coordinator = Net.Address.of_int coordinator;
            remaining = 0;
            batch_max_retrieved = now t;
            batch_aborted = false }
        in
        Hashtbl.replace t.batches (txn_id, partition) b;
        b
  in
  let finals = Hashtbl.create 16 in
  List.iter
    (function
      | Wal.Log_install { key; version; epoch; txn_id; coordinator; fast; _ }
        -> (
          match Mvstore.Table.find_le table ~key ~version with
          | Some (v, record) when v = version -> (
              match record.Funct.state with
              | Funct.Pending _ when fast ->
                  (* Fast-path installs have no batch and send no
                     Batch_done — the coordinator committed at install
                     time; just re-park the delta for its lazy merge. *)
                  buffer_fast t ~epoch ~key ~version
              | Funct.Pending _ ->
                  Functor_cc.Processor.buffer t.processor ~epoch ~key
                    ~version;
                  (* Rebuild the batch so the recomputation's finals
                     re-drive the coordinator's Batch_done. *)
                  let b = batch_of txn_id ~coordinator in
                  b.remaining <- b.remaining + 1
              | Funct.Final _ ->
                  if not fast then
                    Hashtbl.replace finals txn_id coordinator)
          | Some _ | None -> ())
      | Wal.Log_abort _ | Wal.Log_epoch_closed _ -> ())
    entries;
  (* Transactions recovered entirely final (immediate-final specs like
     VALUE): nothing will recompute, so repeat their Batch_done now —
     the ack for the pre-crash one may never have arrived, and the
     coordinator dedupes by partition either way.  Skipped when any
     functor of the txn is still pending here: its completion sends
     the (single) authoritative notification. *)
  Hashtbl.iter
    (fun txn_id coordinator ->
      if not (Hashtbl.mem t.batches (txn_id, partition)) then
        send_batch_done t
          { coordinator = Net.Address.of_int coordinator;
            remaining = 0;
            batch_max_retrieved = now t;
            batch_aborted = false }
          ~txn_id ~partition ~functors:0)
    finals

(* ---- replication: epoch-close gating and pending closes ---------------- *)

(* Log the epoch-close marker on every partition this server leads.  On
   a replicated primary the marker doubles as the epoch's replication
   barrier. *)
let log_close_markers t ~epoch =
  match t.repl with
  | None -> (
      match t.wal with
      | Some wal -> Wal.append wal (Wal.Log_epoch_closed epoch)
      | None -> ())
  | Some _ ->
      Hashtbl.iter
        (fun _ prim ->
          Wal.append prim.p_wal (Wal.Log_epoch_closed epoch);
          ignore (Repl.append prim.group);
          Repl.close_epoch prim.group ~epoch)
        t.prims

(* Crash: closes deferred by the replication gate are force-delivered —
   the EM's grant made them a cluster-global fact, and the Repl waiters
   that would have delivered them died with the process (Repl.crash).
   on_closed then runs under be_down and skips the backend-side work,
   exactly like the unreplicated crash path. *)
let fire_pending_closes t =
  let pending =
    List.sort
      (fun (a, _, _) (b, _, _) -> Int.compare a b)
      (List.filter (fun (_, d, _) -> not !d) t.pending_closes)
  in
  t.pending_closes <- [];
  List.iter (fun (_, _, deliver) -> deliver ()) pending

(* ---- construction ------------------------------------------------------ *)

let create ~sim ~data ~control ~addr ~node_id ~em ~clock ~partition_of
    ~addr_of_partition ~my_partition ~registry ~config ~metrics ?obs
    ?real_pool () =
  let pool = Sim.Worker_pool.create sim ~workers:config.Config.cores in
  let part =
    Epoch.Participant.create ~rpc:control ~addr ~em ~clock
      ~straggler_opt:config.Config.straggler_opt ~metrics ()
  in
  let ts_source = Clocksync.Ts_source.create clock ~node:node_id in
  (* Bootstrap: the engine's callbacks close over [t], and [t] holds the
     engine; break the cycle with a throwaway engine that is replaced
     before the simulation starts. *)
  let bootstrap_callbacks =
    { Functor_cc.Compute_engine.is_local = (fun _ -> true);
      remote_get = (fun ~key:_ ~version:_ k -> k None);
      send_push = (fun ~dst_key:_ ~version:_ ~src_key:_ _ -> ());
      send_dep_write = (fun ~key:_ ~version:_ _ -> ());
      notify_final = (fun ~key:_ ~version:_ ~pending:_ ~final:_ -> ());
      exec = (fun ~cost:_ k -> k ());
      now = (fun () -> 0) }
  in
  let bootstrap_engine =
    Functor_cc.Compute_engine.create ~registry
      ~callbacks:bootstrap_callbacks ~compute_cost_us:0 ~metrics ()
  in
  let c = Sim.Metrics.counter metrics in
  let h = Sim.Metrics.histogram metrics in
  let t =
    { sim; data; address = addr; node_id; clock; partition_of;
      addr_of_partition; my_partition; config; metrics; obs;
      ledger = (match obs with Some o -> Obs.Ctl.ledger o | None -> None);
      m_noauth_starts = c "aloha.noauth_starts";
      m_held = c "aloha.held";
      m_submitted_rw = c "aloha.submitted_rw";
      m_submitted_ro = c "aloha.submitted_ro";
      m_installed = c "aloha.installed";
      m_committed = c "aloha.committed";
      m_aborted_compute = c "aloha.aborted_compute";
      m_aborted_install = c "aloha.aborted_install";
      m_functors_installed = c "aloha.functors_installed";
      m_precondition_failures = c "aloha.precondition_failures";
      m_ro_completed = c "aloha.ro_completed";
      m_fastpath_commits = c "aloha.fastpath_commits";
      h_lat_total = h "aloha.lat_total_us";
      h_lat_install = h "aloha.lat_install_us";
      h_lat_wait = h "aloha.lat_wait_us";
      h_lat_proc = h "aloha.lat_proc_us";
      h_lat_ro = h "aloha.lat_ro_us";
      h_lat_fastpath = h "aloha.lat_fastpath_us";
      m_be_dropped = c "aloha.be_dropped";
      pool; real_pool; ts_source; part; registry;
      engine = bootstrap_engine;
      processor =
        Functor_cc.Processor.create ~engine:bootstrap_engine ~pool
          ~dispatch_cost_us:0 ~metrics ();
      planner =
        Functor_cc.Planner.create ~engine:bootstrap_engine ~pool
          ~dispatch_cost_us:0 ~metrics ();
      tracks = Hashtbl.create 1024;
      batches = Hashtbl.create 1024;
      install_verdicts = Hashtbl.create 1024;
      pending_dones = Hashtbl.create 64;
      fp_pending = Hashtbl.create 64;
      held = Queue.create ();
      wal =
        (if config.Config.durability then
           Some (Wal.create sim ~flush_latency_us:config.Config.wal_flush_us ())
         else None);
      be_down = false;
      last_closed_epoch = 0;
      delayed_reads = [];
      repl = None;
      prims = Hashtbl.create 4;
      flws = Hashtbl.create 4;
      repl_gated = false;
      pending_closes = [];
      on_crash = ignore;
      on_restart = ignore }
  in
  spawn_engine t;
  Epoch.Participant.set_hooks part
    ~on_open:(fun ~epoch ~lo:_ ~hi:_ ->
      lnote t (fun l ->
          Obs.Ledger.note_open l ~node:t.node_id ~epoch ~t_us:(now t));
      drain_held t)
    ~on_closed:(fun ~epoch ->
      emit t ~txn:(-1) ~stage:Obs.Trace.Epoch_close ~arg:epoch ();
      if epoch > t.last_closed_epoch then t.last_closed_epoch <- epoch;
      (* The backend part of epoch close (log the close, release the
         processor) is skipped while the backend is down; the restart
         releases everything up to [last_closed_epoch] instead.  Under
         the replication gate the close markers were already logged by
         the gate itself (at grant time, before the barrier). *)
      if not t.be_down then begin
        if not t.repl_gated then log_close_markers t ~epoch;
        release_closed t ~upto_epoch:epoch
      end;
      lnote t (fun l ->
          let tnow = now t in
          let wm, lag =
            if t.be_down then (-1, 0)
            else
              let v = Recovery.max_final_version t.engine in
              let lag =
                if v <= 0 then 0
                else max 0 (tnow - Ts.time_us (Ts.of_int v))
              in
              (v, lag)
          in
          Obs.Ledger.note_close l ~node:t.node_id ~epoch ~t_us:tnow
            ~watermark:wm ~watermark_lag_us:lag;
          Hashtbl.iter
            (fun partition prim ->
              let live = List.length (Repl.live_followers prim.group) in
              Obs.Ledger.note_group l ~node:t.node_id ~epoch ~partition
                ~ack_floor:(Repl.len prim.group - Repl.replica_lag prim.group)
                ~live_followers:live ~degraded:(live = 0))
            t.prims;
          match t.real_pool with
          | Some p ->
              Obs.Ledger.note_pool l ~node:t.node_id ~epoch
                ~workers:(Runtime.Pool.worker_stats p)
          | None -> ());
      let ready, waiting =
        List.partition (fun (e, _) -> e <= epoch) t.delayed_reads
      in
      t.delayed_reads <- waiting;
      (* Fire in submission order. *)
      List.iter (fun (_, run) -> run ()) (List.rev ready));
  Epoch.Participant.on_state_change part (fun () -> drain_held t);
  (* Data-plane request handler: all BE work is charged to the pool. *)
  Net.Rpc.serve data addr (fun ~src wire ~reply ->
      match wire with
      | Message.Req (Message.Install inst) ->
          let cost =
            config.Config.cost_install_base_us
            + (List.length inst.writes * config.Config.cost_install_us)
          in
          Sim.Worker_pool.submit pool ~cost (fun () ->
              do_install t ~src inst reply)
      | Message.Req (Message.Abort_txn { ts; keys }) ->
          Sim.Worker_pool.submit pool ~cost:config.Config.cost_msg_us
            (fun () -> do_abort t ~ts ~keys reply)
      | Message.Req (Message.Get_req { key; version }) ->
          Sim.Worker_pool.submit pool ~cost:config.Config.cost_get_us
            (fun () ->
              if t.be_down || not (owns t key) then incr t.m_be_dropped
              else
                Functor_cc.Compute_engine.get t.engine ~key ~version
                  (fun v ->
                    emit t ~txn:version ~stage:Obs.Trace.Read_served ();
                    reply (Message.Get_resp v)))
      | Message.One _ -> ());
  Net.Rpc.serve_oneway data addr (fun ~src wire ->
      match wire with
      | Message.One (Message.Push { key; version; src_key; value }) ->
          Sim.Worker_pool.submit pool ~cost:config.Config.cost_msg_us
            (fun () ->
              if t.be_down || not (owns t key) then incr t.m_be_dropped
              else
                Functor_cc.Compute_engine.deliver_push t.engine ~key ~version
                  ~src_key value)
      | Message.One (Message.Dep_write { key; version; final }) ->
          Sim.Worker_pool.submit pool ~cost:config.Config.cost_msg_us
            (fun () ->
              if t.be_down || not (owns t key) then incr t.m_be_dropped
              else
                Functor_cc.Compute_engine.deliver_dep_write t.engine ~key
                  ~version ~final)
      | Message.One (Message.Batch_done { txn_id; partition; functors = _;
                                          max_retrieved_at; aborted }) ->
          (* Frontend-role message: processed even while the backend role
             is down.  Always acked — including duplicates of an already
             completed transaction — so the sender's resend loop stops. *)
          on_batch_done t ~txn_id ~partition ~max_retrieved_at ~aborted;
          Net.Rpc.send t.data ~src:t.address ~dst:src
            (Message.One (Message.Batch_done_ack { txn_id; partition }))
      | Message.One (Message.Batch_done_ack { txn_id; partition }) ->
          Hashtbl.remove t.pending_dones (txn_id, partition)
      | Message.One (Message.Plan_sub { key; version; dst_key; dst_version })
        ->
          (* A remote plan wants this key's value pushed to one of its
             nodes: evaluate (on demand, through the engine's at-most-once
             discipline) and push the value back.  Charged like a Get. *)
          Sim.Worker_pool.submit pool ~cost:config.Config.cost_get_us
            (fun () ->
              if t.be_down || not (owns t key) then incr t.m_be_dropped
              else
                Functor_cc.Compute_engine.get t.engine ~key ~version
                  (fun value ->
                    Net.Rpc.send t.data ~src:t.address ~dst:src
                      (Message.One
                         (Message.Plan_push
                            { key = dst_key; version = dst_version;
                              src_key = key; value }))))
      | Message.One (Message.Plan_push { key; version; src_key; value }) ->
          Sim.Worker_pool.submit pool ~cost:config.Config.cost_msg_us
            (fun () ->
              if t.be_down || not (owns t key) then incr t.m_be_dropped
              else
                Functor_cc.Compute_engine.deliver_push t.engine ~key ~version
                  ~src_key value)
      | Message.One (Message.Wal_ship _)
      | Message.One (Message.Ship_ack _) ->
          (* replication traffic travels on its own plane *)
          ()
      | Message.Req _ -> ());
  t

let load_initial t ~key value =
  let key = Key.intern key in
  if not (owns t key) then
    invalid_arg "Server.load_initial: key not owned by this partition";
  Functor_cc.Compute_engine.load_initial t.engine ~key value

let wal t = t.wal

(* ---- gauge probes (observability) -------------------------------------- *)

let compute_queue_depth t =
  Functor_cc.Processor.buffered t.processor
  + Sim.Worker_pool.queue_length t.pool

let inflight_functors t = Functor_cc.Compute_engine.pending_count t.engine

(* How far the newest final value lags behind now: the age (µs) of the
   youngest version every key of this partition is final up to.  0 before
   any functor finalises. *)
let value_watermark_lag_us t =
  let v = Recovery.max_final_version t.engine in
  if v <= 0 then 0
  else
    let lag = now t - Ts.time_us (Ts.of_int v) in
    if lag > 0 then lag else 0

let wal_pending_bytes t =
  match t.wal with Some wal -> Wal.pending_bytes wal | None -> 0

let replication_lag t =
  Hashtbl.fold (fun _ prim acc -> acc + Repl.replica_lag prim.group) t.prims 0

(* Take a checkpoint now.  Meaningful when no functor is pending (e.g.
   quiesced between epochs): everything below the snapshot becomes
   recoverable without replay. *)
let checkpoint_now t =
  match t.repl with
  | Some _ ->
      (* A checkpoint renumbers the log, but WAL positions are the
         replication ship sequence. *)
      invalid_arg "Server.checkpoint_now: unsupported under replication"
  | None -> (
      match t.wal with
      | None -> invalid_arg "Server.checkpoint_now: durability disabled"
      | Some wal ->
          let snapshot = Recovery.snapshot_of_engine t.engine in
          let retain_above = Recovery.max_final_version t.engine in
          Wal.checkpoint wal ~snapshot ~retain_above)

(* ---- replication: ship plane handlers ----------------------------------- *)

(* Follower acks are cumulative and sent only once the received prefix is
   durable in the follower's own WAL — so an acked entry survives the
   follower's crash too, which is what makes the primary's gating floor
   mean "on stable storage at every live replica". *)
let schedule_ack t f ~dst =
  match t.repl with
  | None -> ()
  | Some ctx ->
      if not f.f_ack_pending then begin
        f.f_ack_pending <- true;
        let wal = f.f_wal in
        Wal.after_durable wal (fun () ->
            (* a term wipe replaced the log: this ack belongs to the dead
               one and must not be attributed to the new primary's *)
            if f.f_wal == wal then begin
              f.f_ack_pending <- false;
              if not t.be_down then
                Net.Rpc.send ctx.plane ~src:t.address ~dst
                  (Message.One
                     (Message.Ship_ack
                        { partition = f.f_partition; term = f.f_term;
                          seq = Wal.durable_count wal }))
            end)
      end

let on_wal_ship t ~src ~partition ~term ~seq ~entry =
  if not t.be_down then
    match Hashtbl.find_opt t.flws partition with
    | None -> ()  (* not (or no longer) a follower of this partition *)
    | Some f ->
        if term >= f.f_term then begin
          if term > f.f_term then begin
            (* A new primary took over.  Our log may contain entries the
               new primary never acked and has replaced; there is no
               truncation protocol — discard and rebuild from seq 1. *)
            f.f_term <- term;
            f.f_wal <-
              Wal.create t.sim
                ~flush_latency_us:t.config.Config.wal_flush_us ();
            f.f_applied <- 0;
            Hashtbl.reset f.f_buf;
            f.f_ack_pending <- false
          end;
          if seq > f.f_applied && not (Hashtbl.mem f.f_buf seq) then begin
            Hashtbl.replace f.f_buf seq entry;
            (* log the contiguous prefix; later entries wait in the buffer
               for the gap to fill (ship messages can reorder) *)
            let rec drain () =
              match Hashtbl.find_opt f.f_buf (f.f_applied + 1) with
              | Some e ->
                  Hashtbl.remove f.f_buf (f.f_applied + 1);
                  Wal.append f.f_wal (Wal.entry_of_ship e);
                  f.f_applied <- f.f_applied + 1;
                  drain ()
              | None -> ()
            in
            drain ()
          end;
          (* Re-acking a duplicate is deliberate: after the primary loses
             its ack bookkeeping (crash) it re-ships, and the cumulative
             ack re-establishes the floor. *)
          schedule_ack t f ~dst:src
        end

let on_ship_ack t ~src ~partition ~term ~seq =
  if not t.be_down then
    match current_prim t partition with
    | Some prim when Repl.term prim.group = term ->
        Repl.ack prim.group ~member:(Net.Address.to_int src) ~seq;
        lnote t (fun l ->
            (* The ack is cumulative: every outstanding ship to this
               member at or below [seq] is confirmed now. *)
            let m = Net.Address.to_int src in
            let acked, still =
              List.partition
                (fun (member, s, _, _) -> member = m && s <= seq)
                prim.ship_log
            in
            prim.ship_log <- still;
            List.iter
              (fun (_, _, sent, epoch) ->
                Obs.Ledger.note_ship_lag l ~node:t.node_id ~epoch
                  ~partition ~lag_us:(now t - sent))
              acked)
    | Some _ | None -> ()  (* stale term: ack for a deposed primary's log *)

(* ---- replication: wiring ------------------------------------------------ *)

let set_lifecycle_hooks t ~on_crash ~on_restart =
  t.on_crash <- on_crash;
  t.on_restart <- on_restart

let attach_repl t ~plane ~route ~members_of ~follows =
  if t.repl <> None then invalid_arg "Server.attach_repl: already attached";
  let ctx = { plane; route; members_of } in
  t.repl <- Some ctx;
  let self = Net.Address.to_int t.address in
  (* Primary of the home partition. *)
  (match t.wal with
  | None -> invalid_arg "Server.attach_repl: durability required"
  | Some wal ->
      let members = members_of t.my_partition in
      let group =
        Repl.create ~partition:t.my_partition
          ~term:(Net.Route.term route ~partition:t.my_partition)
          ~primary:self
          ~members:(List.map Net.Address.to_int members)
          ~len:0
      in
      let prim =
        { p_partition = t.my_partition; p_wal = wal; group;
          followers =
            List.filter
              (fun a -> not (Net.Address.equal a t.address))
              members;
          shipped = 0; retry_armed = false; ship_log = [] }
      in
      Hashtbl.replace t.prims t.my_partition prim;
      install_ship_hook t prim);
  (* Follower of every other partition whose group includes us. *)
  List.iter
    (fun partition ->
      Hashtbl.replace t.flws partition
        { f_partition = partition;
          f_term = Net.Route.term route ~partition;
          f_wal =
            Wal.create t.sim ~flush_latency_us:t.config.Config.wal_flush_us
              ();
          f_applied = 0;
          f_buf = Hashtbl.create 16;
          f_ack_pending = false })
    follows;
  (* Ship-plane handlers run off the worker pool: replication bookkeeping
     is modelled as free, so the data-plane timeline is not perturbed. *)
  Net.Rpc.serve_oneway plane t.address (fun ~src wire ->
      match wire with
      | Message.One (Message.Wal_ship { partition; term; seq; entry }) ->
          on_wal_ship t ~src ~partition ~term ~seq ~entry
      | Message.One (Message.Ship_ack { partition; term; seq }) ->
          on_ship_ack t ~src ~partition ~term ~seq
      | Message.One _ | Message.Req _ -> ());
  if t.config.Config.repl_sync then begin
    t.repl_gated <- true;
    (* Sync mode: an epoch may close (advancing the value watermark past
       its blind writes) only once its close marker — and with it every
       entry of the epoch — is durable on all live replicas of every
       partition this server leads.  The close markers are logged HERE,
       at grant time, so the barrier they define exists before the gate
       waits on it; on_open for the next epoch is never delayed. *)
    Epoch.Participant.set_close_gate t.part (fun ~epoch fire ->
        if t.be_down || Hashtbl.length t.prims = 0 then fire ()
        else begin
          let prims = Hashtbl.fold (fun _ p acc -> p :: acc) t.prims [] in
          List.iter
            (fun prim ->
              Wal.append prim.p_wal (Wal.Log_epoch_closed epoch);
              ignore (Repl.append prim.group);
              Repl.close_epoch prim.group ~epoch)
            prims;
          let entered = now t in
          let delivered = ref false in
          let deliver () =
            if not !delivered then begin
              delivered := true;
              lnote t (fun l ->
                  let wait_us = now t - entered in
                  List.iter
                    (fun prim ->
                      Obs.Ledger.note_gate_wait l ~node:t.node_id ~epoch
                        ~partition:prim.p_partition ~wait_us)
                    prims);
              fire ()
            end
          in
          t.pending_closes <-
            (epoch, delivered, deliver)
            :: List.filter (fun (_, d, _) -> not !d) t.pending_closes;
          let remaining = ref (List.length prims) in
          List.iter
            (fun prim ->
              Repl.when_epoch_durable prim.group ~epoch (fun () ->
                  decr remaining;
                  if !remaining <= 0 then deliver ()))
            prims
        end)
  end

(* Failure-monitor verdicts, delivered by the cluster: exclude a crashed
   follower from (or re-admit a restarted one to) the gating floor of a
   group this server leads. *)
let note_member_down t ~partition ~member =
  match current_prim t partition with
  | Some prim -> Repl.member_down prim.group ~id:(Net.Address.to_int member)
  | None -> ()

let note_member_rejoin t ~partition ~member =
  match current_prim t partition with
  | Some prim ->
      Repl.member_rejoin prim.group ~id:(Net.Address.to_int member);
      (* Re-ship immediately — the rejoiner acks from zero — and keep the
         retry loop armed until it has caught up. *)
      if not t.be_down then reship_member t prim ~member;
      arm_retry t prim
  | None -> ()

(* ---- backend crash / restart ------------------------------------------- *)

let crash_be t =
  if t.be_down then invalid_arg "Server.crash_be: backend already down";
  t.be_down <- true;
  Sim.Metrics.incr t.metrics "aloha.be_crashes";
  (* The unflushed WAL tail is gone; so is all volatile state: batches,
     the install-verdict cache, and the engine (a fresh empty one replaces
     it immediately, which also cuts off — via the spawn liveness guard —
     any continuation of the dead incarnation still in flight). *)
  (match t.repl with
  | None -> (
      match t.wal with
      | Some wal -> ignore (Wal.lose_unflushed wal)
      | None -> ())
  | Some _ ->
      Hashtbl.iter
        (fun _ prim ->
          ignore (Wal.lose_unflushed prim.p_wal);
          (* Truncate the replicated log to the durable prefix and drop
             the gates whose replies died with the process. *)
          Repl.crash prim.group
            ~durable_len:(Wal.durable_count prim.p_wal))
        t.prims;
      Hashtbl.iter
        (fun _ f ->
          ignore (Wal.lose_unflushed f.f_wal);
          Hashtbl.reset f.f_buf;
          f.f_applied <- Wal.durable_count f.f_wal;
          f.f_ack_pending <- false)
        t.flws;
      fire_pending_closes t);
  Hashtbl.reset t.batches;
  Hashtbl.reset t.install_verdicts;
  Hashtbl.reset t.pending_dones;
  Hashtbl.reset t.fp_pending;
  spawn_engine t;
  lnote t (fun l ->
      Obs.Ledger.note_event l ~kind:Obs.Ledger.Crash ~node:t.node_id
        ~t_us:(now t) ());
  t.on_crash ()

(* Re-join a partition this server lost while down: the routing table
   says someone else leads it now.  Become a follower with an empty log;
   the new primary's shipments (a higher term) rebuild it from seq 1. *)
let demote t ~partition =
  Hashtbl.remove t.prims partition;
  Sim.Metrics.incr t.metrics "aloha.demotions";
  Hashtbl.replace t.flws partition
    { f_partition = partition;
      f_term = 0;
      f_wal =
        Wal.create t.sim ~flush_latency_us:t.config.Config.wal_flush_us ();
      f_applied = 0;
      f_buf = Hashtbl.create 16;
      f_ack_pending = false }

let restart_be t =
  if not t.be_down then invalid_arg "Server.restart_be: backend is up";
  Sim.Metrics.incr t.metrics "aloha.be_restarts";
  (match t.repl with
  | None -> (
      match t.wal with
      | Some wal ->
          ignore (Recovery.rebuild ~engine:t.engine ~wal);
          (* Replayed installs that are still pending re-enter the
             processor at their logged epoch; epochs that closed while we
             were down (or before the crash) are then released for
             recomputation — the epoch-close work the crash made us miss.
             Later epochs stay buffered until their own close. *)
          reintegrate t ~partition:t.my_partition ~entries:(Wal.durable wal);
          release_closed t ~upto_epoch:t.last_closed_epoch
      | None -> ())
  | Some ctx ->
      (* Partitions promoted away while we were down: rejoin as
         followers.  The rest we still lead — recover them from our own
         durable logs, exactly like the unreplicated path. *)
      let led = Hashtbl.fold (fun p _ acc -> p :: acc) t.prims [] in
      List.iter
        (fun p ->
          if
            not
              (Net.Address.equal
                 (Net.Route.resolve ctx.route ~partition:p)
                 t.address)
          then demote t ~partition:p)
        led;
      Hashtbl.iter
        (fun p prim ->
          ignore
            (Recovery.replay ~engine:t.engine
               ~snapshot:(Wal.snapshot prim.p_wal)
               ~entries:(Wal.durable prim.p_wal));
          reintegrate t ~partition:p ~entries:(Wal.durable prim.p_wal))
        t.prims;
      if Hashtbl.length t.prims > 0 then
        release_closed t ~upto_epoch:t.last_closed_epoch);
  t.be_down <- false;
  (match t.repl with
  | None -> ()
  | Some _ ->
      (* Follower acks are volatile on both sides: re-ship everything and
         let the cumulative acks re-establish the floor. *)
      Hashtbl.iter
        (fun _ prim ->
          prim.shipped <- 0;
          ship_fresh t prim;
          arm_retry t prim)
        t.prims;
      t.on_restart ());
  lnote t (fun l ->
      Obs.Ledger.note_event l ~kind:Obs.Ledger.Restart ~node:t.node_id
        ~t_us:(now t) ())

(* Promotion: the failure monitor decided this server succeeds the
   crashed primary of [partition].  The shipped log IS the partition
   (state = checkpoint-free replay of it): re-install every entry into
   the local engine, re-buffer still-pending functors at their logged
   epochs, rebuild batch tracking so recomputation re-notifies the
   coordinators, and start shipping to the remaining followers under the
   new term.  The caller must already have updated the route (so [term]
   reads the post-promotion value and frontends re-resolve here). *)
let adopt_partition t ~partition ~down =
  match t.repl with
  | None -> invalid_arg "Server.adopt_partition: replication not attached"
  | Some ctx ->
      if not (Hashtbl.mem t.prims partition) then begin
        let f =
          match Hashtbl.find_opt t.flws partition with
          | Some f -> f
          | None -> invalid_arg "Server.adopt_partition: not a follower"
        in
        Hashtbl.remove t.flws partition;
        Sim.Metrics.incr t.metrics "aloha.promotions";
        emit t ~txn:(-1) ~stage:Obs.Trace.Promote ~arg:partition ();
        lnote t (fun l ->
            Obs.Ledger.note_event l ~kind:Obs.Ledger.Promote ~node:t.node_id
              ~t_us:(now t) ~partition ());
        (* The follower did not crash, so its buffered WAL tail is still
           valid — replay all of it, not just the durable prefix. *)
        let entries = Wal.all f.f_wal in
        ignore (Recovery.replay ~engine:t.engine ~snapshot:[] ~entries);
        reintegrate t ~partition ~entries;
        let members = ctx.members_of partition in
        let group =
          Repl.create ~partition
            ~term:(Net.Route.term ctx.route ~partition)
            ~primary:(Net.Address.to_int t.address)
            ~members:(List.map Net.Address.to_int members)
            ~len:(List.length entries)
        in
        List.iter
          (fun a -> Repl.member_down group ~id:(Net.Address.to_int a))
          down;
        (* Epochs closed so far are durable by adoption (this replica has
           them); future closes barrier at the log positions they reach. *)
        Repl.close_epoch group ~epoch:t.last_closed_epoch;
        let prim =
          { p_partition = partition; p_wal = f.f_wal; group;
            followers =
              List.filter
                (fun a -> not (Net.Address.equal a t.address))
                members;
            shipped = 0; retry_armed = false; ship_log = [] }
        in
        Hashtbl.replace t.prims partition prim;
        install_ship_hook t prim;
        (* Pendings recovered from epochs that already closed are released
           for recomputation right away. *)
        release_closed t ~upto_epoch:t.last_closed_epoch;
        ship_fresh t prim;
        arm_retry t prim
      end
