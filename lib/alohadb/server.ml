module Ts = Clocksync.Timestamp
module Value = Functor_cc.Value
module Funct = Functor_cc.Funct
module Key = Mvstore.Key

(* Frontend-side per-transaction completion tracking. *)
type track = {
  ts : Ts.t;
  epoch : int;
  issued_at : int;
  ack : Txn.ack_mode;
  reply : Txn.result -> unit;
  expected_dones : int;  (* one Batch_done per participant BE *)
  mutable awaiting_installs : int;
  mutable install_failed : bool;
  mutable acked_ok : Net.Address.t list;
  mutable install_done_at : int;
  mutable dones : int;
  mutable any_aborted : bool;
  mutable max_retrieved : int;
}

(* Backend-side per-transaction batch tracking: how many locally installed
   functors still await a final value. *)
type batch = {
  coordinator : Net.Address.t;
  mutable remaining : int;
  mutable batch_max_retrieved : int;
  mutable batch_aborted : bool;
}

type t = {
  sim : Sim.Engine.t;
  data : Message.rpc;
  address : Net.Address.t;
  node_id : int;
  clock : Clocksync.Node_clock.t;
  partition_of : Key.t -> int;
  addr_of_partition : int -> Net.Address.t;
  my_partition : int;
  config : Config.t;
  metrics : Sim.Metrics.t;
  (* Hot-path metric handles, resolved once at creation (see DESIGN.md,
     "Hot paths and how to measure them"). *)
  m_noauth_starts : int ref;
  m_held : int ref;
  m_submitted_rw : int ref;
  m_submitted_ro : int ref;
  m_installed : int ref;
  m_committed : int ref;
  m_aborted_compute : int ref;
  m_aborted_install : int ref;
  m_functors_installed : int ref;
  m_precondition_failures : int ref;
  m_ro_completed : int ref;
  h_lat_total : Sim.Stats.Histogram.t;
  h_lat_install : Sim.Stats.Histogram.t;
  h_lat_wait : Sim.Stats.Histogram.t;
  h_lat_proc : Sim.Stats.Histogram.t;
  h_lat_ro : Sim.Stats.Histogram.t;
  pool : Sim.Worker_pool.t;
  ts_source : Clocksync.Ts_source.t;
  part : Epoch.Participant.t;
  mutable engine : Functor_cc.Compute_engine.t;
  mutable processor : Functor_cc.Processor.t;
  tracks : (int, track) Hashtbl.t;
  batches : (int, batch) Hashtbl.t;
  held : (unit -> unit) Queue.t;
  wal : Wal.t option;
  mutable delayed_reads : (int * (unit -> unit)) list;
      (* (epoch, run) — latest-version reads waiting for their epoch to
         close (§III-B) *)
}

let addr t = t.address
let pool t = t.pool
let engine t = t.engine
let participant t = t.part
let held_requests t = Queue.length t.held

let now t = Sim.Engine.now t.sim

(* ---- frontend: timestamp acquisition and held requests --------------- *)

let acquire t =
  match Epoch.Participant.window t.part with
  | None -> None
  | Some w -> (
      match Clocksync.Ts_source.next t.ts_source ~lo:w.lo ~hi:w.hi with
      | None -> None
      | Some ts ->
          if not w.Epoch.Participant.authorized then incr t.m_noauth_starts;
          Some (w, ts))

let hold t thunk =
  incr t.m_held;
  Queue.add thunk t.held

let drain_held t =
  let n = Queue.length t.held in
  for _ = 1 to n do
    match Queue.take_opt t.held with Some thunk -> thunk () | None -> ()
  done

(* ---- reads ------------------------------------------------------------ *)

(* Execute a historical multi-key read at [version]: local keys go through
   the local engine (charged to this server's pool), remote keys through
   Get_req RPCs (charged at the owning BE). *)
let run_read t keys version reply =
  let n = List.length keys in
  if n = 0 then reply (Txn.Values [])
  else begin
    let results = Array.make n ("", None) in
    let remaining = ref n in
    let deliver i key v =
      results.(i) <- (Key.name key, v);
      decr remaining;
      if !remaining = 0 then reply (Txn.Values (Array.to_list results))
    in
    List.iteri
      (fun i key ->
        let key = Key.intern key in
        if t.partition_of key = t.my_partition then
          Sim.Worker_pool.submit t.pool ~cost:t.config.cost_get_us (fun () ->
              Functor_cc.Compute_engine.get t.engine ~key ~version
                (fun v -> deliver i key v))
        else
          Net.Rpc.call t.data ~src:t.address
            ~dst:(t.addr_of_partition (t.partition_of key))
            (Message.Req (Message.Get_req { key; version }))
            (function
              | Message.Get_resp v -> deliver i key v
              | Message.Install_ack _ | Message.Abort_ack ->
                  invalid_arg "run_read: protocol mismatch"))
      keys
  end

(* ---- frontend: read-write transactions ------------------------------- *)

(* Group the transaction's functors by owning partition.  Determinate
   operations additionally place a Dep_marker on each dependent key's
   partition (our realisation of §IV-E deferred writes). *)
let groups_of_writes t writes =
  let tbl : (int, (Key.t * Message.fspec) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let push partition entry =
    match Hashtbl.find_opt tbl partition with
    | Some r -> r := entry :: !r
    | None -> Hashtbl.add tbl partition (ref [ entry ])
  in
  (* Intern every written key once; everything below works on dense ids. *)
  let kwrites = List.map (fun (k, op) -> (Key.intern k, op)) writes in
  (* Recipient sets only arise when some functor reads a key other than
     its own; skip the quadratic scan for the common all-numeric case. *)
  let cross_reads =
    List.exists
      (fun (key, op) ->
        match op with
        | Txn.Call { read_set; _ } | Txn.Det { read_set; _ } ->
            List.exists (fun rk -> not (String.equal rk (Key.name key)))
              read_set
        | Txn.Put _ | Txn.Delete | Txn.Add _ | Txn.Subtr _ | Txn.Max _
        | Txn.Min _ ->
            false)
      kwrites
  in
  let written_keys = List.map fst kwrites in
  List.iter
    (fun (key, op) ->
      let key_partition = t.partition_of key in
      let recipients =
        if t.config.push_opt && cross_reads then
          (* Only keep recipients living on other partitions:
             same-partition reads are local anyway, so pushing would only
             add overhead. *)
          List.filter
            (fun r -> t.partition_of r <> key_partition)
            (List.map Key.intern (Txn.recipients_for writes (Key.name key)))
        else []
      in
      (* Inverse of the recipient set: read-set keys of THIS functor that a
         sibling functor (on another partition) writes and will push. *)
      let pushed_reads =
        if not (t.config.push_opt && cross_reads) then []
        else
          let reads =
            match op with
            | Txn.Call { read_set; _ } | Txn.Det { read_set; _ } -> read_set
            | Txn.Put _ | Txn.Delete | Txn.Add _ | Txn.Subtr _ | Txn.Max _
            | Txn.Min _ ->
                []
          in
          List.filter_map
            (fun rk ->
              let rk = Key.intern rk in
              if
                (not (Key.equal rk key))
                && t.partition_of rk <> key_partition
                && List.exists (Key.equal rk) written_keys
              then Some rk
              else None)
            reads
      in
      push key_partition
        (key, Message.fspec_of_op ~key ~recipients ~pushed_reads op);
      match op with
      | Txn.Det { dependents; _ } ->
          List.iter
            (fun dk ->
              let dk = Key.intern dk in
              push (t.partition_of dk)
                (dk, Message.fspec_dep_marker ~det_key:key))
            dependents
      | Txn.Put _ | Txn.Delete | Txn.Add _ | Txn.Subtr _ | Txn.Max _
      | Txn.Min _ | Txn.Call _ ->
          ())
    kwrites;
  Hashtbl.fold (fun partition entries acc -> (partition, List.rev !entries) :: acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let record_commit_metrics t track completed_at =
  let install = track.install_done_at - track.issued_at in
  let wait =
    if track.max_retrieved > track.install_done_at then
      track.max_retrieved - track.install_done_at
    else 0
  in
  let proc_start =
    if track.max_retrieved > track.install_done_at then track.max_retrieved
    else track.install_done_at
  in
  let proc = if completed_at > proc_start then completed_at - proc_start else 0 in
  Sim.Stats.Histogram.add t.h_lat_total (completed_at - track.issued_at);
  Sim.Stats.Histogram.add t.h_lat_install install;
  Sim.Stats.Histogram.add t.h_lat_wait wait;
  Sim.Stats.Histogram.add t.h_lat_proc proc

let maybe_complete t track =
  if
    track.awaiting_installs = 0
    && (not track.install_failed)
    && track.dones = track.expected_dones
  then begin
    Hashtbl.remove t.tracks (Ts.to_int track.ts);
    let completed_at = now t in
    record_commit_metrics t track completed_at;
    if track.any_aborted then begin
      incr t.m_aborted_compute;
      match track.ack with
      | Txn.Ack_on_computed ->
          track.reply (Txn.Aborted { ts = Some track.ts; stage = `Compute })
      | Txn.Ack_on_install ->
          (* Already acknowledged after the write-only phase; the client
             learns the outcome by reading any functor (§IV-A). *)
          ()
    end
    else begin
      incr t.m_committed;
      match track.ack with
      | Txn.Ack_on_computed -> track.reply (Txn.Committed { ts = track.ts })
      | Txn.Ack_on_install -> ()
    end
  end

let finish_write_phase t track =
  Epoch.Participant.txn_finished t.part ~epoch:track.epoch;
  track.install_done_at <- now t;
  incr t.m_installed;
  (match track.ack with
  | Txn.Ack_on_install -> track.reply (Txn.Committed { ts = track.ts })
  | Txn.Ack_on_computed -> ());
  maybe_complete t track

(* Second round: roll back the write-only phase on every partition that
   acknowledged it (§IV-C "arbitrary abort", in-epoch case). *)
let abort_write_phase t track keys_by_dst =
  incr t.m_aborted_install;
  let targets = track.acked_ok in
  let expected = List.length targets in
  if expected = 0 then begin
    Hashtbl.remove t.tracks (Ts.to_int track.ts);
    Epoch.Participant.txn_finished t.part ~epoch:track.epoch;
    track.reply (Txn.Aborted { ts = Some track.ts; stage = `Install })
  end
  else begin
    let remaining = ref expected in
    List.iter
      (fun dst ->
        let keys =
          match
            List.find_opt (fun (a, _) -> Net.Address.equal a dst) keys_by_dst
          with
          | Some (_, keys) -> keys
          | None -> []
        in
        Net.Rpc.call t.data ~src:t.address ~dst
          (Message.Req (Message.Abort_txn { ts = Ts.to_int track.ts; keys }))
          (fun _resp ->
            decr remaining;
            if !remaining = 0 then begin
              Hashtbl.remove t.tracks (Ts.to_int track.ts);
              Epoch.Participant.txn_finished t.part ~epoch:track.epoch;
              track.reply (Txn.Aborted { ts = Some track.ts; stage = `Install })
            end))
      targets
  end

let rec submit t req reply =
  match req with
  | Txn.Read_write { writes; precondition_keys; ack } ->
      submit_rw t (writes, precondition_keys, ack) reply
  | Txn.Read_only { keys } -> submit_ro t keys reply
  | Txn.Read_at { keys; version } -> run_read t keys version reply

and submit_rw t rw reply =
  incr t.m_submitted_rw;
  match acquire t with
  | None ->
      hold t (fun () ->
          (* Re-enter without double-counting the submission. *)
          retry_rw t rw reply)
  | Some (w, ts) -> start_rw t rw reply w ts

and retry_rw t rw reply =
  match acquire t with
  | None -> hold t (fun () -> retry_rw t rw reply)
  | Some (w, ts) -> start_rw t rw reply w ts

and start_rw t (writes, precondition_keys, ack) reply w ts =
  let issued_at = now t in
  Epoch.Participant.txn_started t.part ~epoch:w.Epoch.Participant.epoch;
  let groups = groups_of_writes t writes in
  let preconditions = List.map Key.intern precondition_keys in
  let precond_of partition =
    List.filter (fun k -> t.partition_of k = partition) preconditions
  in
  let track =
    { ts; epoch = w.Epoch.Participant.epoch; issued_at; ack; reply;
      expected_dones = List.length groups;
      awaiting_installs = List.length groups; install_failed = false;
      acked_ok = []; install_done_at = issued_at; dones = 0;
      any_aborted = false; max_retrieved = issued_at }
  in
  Hashtbl.replace t.tracks (Ts.to_int ts) track;
  let keys_by_dst =
    List.map
      (fun (p, entries) -> (t.addr_of_partition p, List.map fst entries))
      groups
  in
  (* Coordination (transform + fan-out) costs FE CPU. *)
  Sim.Worker_pool.submit t.pool ~cost:t.config.cost_coord_us (fun () ->
      List.iter
        (fun (partition, entries) ->
          let dst = t.addr_of_partition partition in
          let install =
            { Message.txn_id = Ts.to_int ts;
              epoch = w.Epoch.Participant.epoch;
              ts = Ts.to_int ts;
              lo = w.Epoch.Participant.lo;
              hi = w.Epoch.Participant.hi;
              writes = entries;
              preconditions = precond_of partition }
          in
          Net.Rpc.call t.data ~src:t.address ~dst
            (Message.Req (Message.Install install))
            (function
              | Message.Install_ack { ok } ->
                  track.awaiting_installs <- track.awaiting_installs - 1;
                  if ok then track.acked_ok <- dst :: track.acked_ok
                  else track.install_failed <- true;
                  if track.awaiting_installs = 0 then
                    if track.install_failed then
                      abort_write_phase t track keys_by_dst
                    else finish_write_phase t track
              | Message.Get_resp _ | Message.Abort_ack ->
                  invalid_arg "install: protocol mismatch"))
        groups)

and submit_ro t keys reply =
  incr t.m_submitted_ro;
  match acquire t with
  | None -> hold t (fun () -> submit_ro_held t keys reply)
  | Some (w, ts) -> delay_ro t keys reply w ts

and submit_ro_held t keys reply =
  match acquire t with
  | None -> hold t (fun () -> submit_ro_held t keys reply)
  | Some (w, ts) -> delay_ro t keys reply w ts

and delay_ro t keys reply w ts =
  (* §III-B: a latest-version read gets a timestamp in the current epoch
     and is served as a historical read once that epoch closes. *)
  let issued_at = now t in
  let run () =
    run_read t keys (Ts.to_int ts) (fun result ->
        Sim.Stats.Histogram.add t.h_lat_ro (now t - issued_at);
        incr t.m_ro_completed;
        reply result)
  in
  t.delayed_reads <- (w.Epoch.Participant.epoch, run) :: t.delayed_reads

(* ---- backend ----------------------------------------------------------- *)

let send_batch_done t (b : batch) ~txn_id ~functors =
  Net.Rpc.send t.data ~src:t.address ~dst:b.coordinator
    (Message.One
       (Message.Batch_done
          { txn_id; functors;
            max_retrieved_at = b.batch_max_retrieved;
            aborted = b.batch_aborted }))

let do_install t ~src (inst : Message.install) reply =
  let present key =
    match
      Mvstore.Table.find_le
        (Functor_cc.Compute_engine.table t.engine)
        ~key ~version:inst.ts
    with
    | Some _ -> true
    | None -> false
  in
  if not (List.for_all present inst.preconditions) then begin
    incr t.m_precondition_failures;
    reply (Message.Install_ack { ok = false })
  end
  else begin
    let lo = Ts.to_int (Ts.window_lo ~time_us:inst.lo) in
    let hi = Ts.to_int (Ts.window_hi ~time_us:inst.hi) in
    let b =
      { coordinator = src; remaining = 0;
        batch_max_retrieved = now t; batch_aborted = false }
    in
    let installed = now t in
    List.iter
      (fun (key, spec) ->
        let record =
          Message.functor_of_fspec spec ~txn_id:inst.txn_id
            ~coordinator:(Net.Address.to_int src)
        in
        match
          Functor_cc.Compute_engine.install t.engine ~key ~version:inst.ts
            ~lo ~hi record
        with
        | Ok () -> (
            incr t.m_functors_installed;
            (match t.wal with
            | Some wal ->
                Wal.append wal
                  (Wal.Log_install
                     { key; version = inst.ts; spec; txn_id = inst.txn_id;
                       coordinator = Net.Address.to_int src;
                       epoch = inst.epoch })
            | None -> ());
            match record.Funct.state with
            | Funct.Pending p ->
                p.Funct.installed_at_us <- installed;
                b.remaining <- b.remaining + 1;
                Functor_cc.Processor.buffer t.processor ~epoch:inst.epoch
                  ~key ~version:inst.ts
            | Funct.Final _ -> ())
        | Error (`Duplicate_version | `Version_out_of_window) ->
            (* The FE guarantees unique in-window timestamps; reaching this
               branch is a protocol bug, not a workload condition. *)
            assert false)
      inst.writes;
    if b.remaining = 0 then
      send_batch_done t b ~txn_id:inst.txn_id
        ~functors:(List.length inst.writes)
    else Hashtbl.replace t.batches inst.txn_id b;
    reply (Message.Install_ack { ok = true })
  end

let do_abort t ~ts ~keys reply =
  List.iter
    (fun key ->
      (match t.wal with
      | Some wal -> Wal.append wal (Wal.Log_abort { key; version = ts })
      | None -> ());
      Functor_cc.Compute_engine.abort_version t.engine ~key ~version:ts)
    keys;
  reply Message.Abort_ack

let on_batch_done t ~txn_id ~max_retrieved_at ~aborted =
  match Hashtbl.find_opt t.tracks txn_id with
  | None -> ()  (* transaction already aborted in the write phase *)
  | Some track ->
      track.dones <- track.dones + 1;
      if aborted then track.any_aborted <- true;
      if max_retrieved_at > track.max_retrieved then
        track.max_retrieved <- max_retrieved_at;
      maybe_complete t track

let on_functor_final t ~pending ~final =
  match Hashtbl.find_opt t.batches pending.Funct.txn_id with
  | None -> ()
  | Some b ->
      b.remaining <- b.remaining - 1;
      if pending.Funct.retrieved_at_us > b.batch_max_retrieved then
        b.batch_max_retrieved <- pending.Funct.retrieved_at_us;
      (match (final, pending.Funct.ftype) with
      | Funct.Aborted_v, Functor_cc.Ftype.Dep_marker _ ->
          (* A skipped dependent write is not a transaction abort: the
             determinate functor committed and simply chose not to write
             this key.  A genuine abort is reported by the determinate
             functor's own (non-marker) record. *)
          ()
      | Funct.Aborted_v, _ -> b.batch_aborted <- true
      | (Funct.Committed _ | Funct.Deleted_v), _ -> ());
      if b.remaining = 0 then begin
        Hashtbl.remove t.batches pending.Funct.txn_id;
        send_batch_done t b ~txn_id:pending.Funct.txn_id ~functors:0
      end

(* ---- construction ------------------------------------------------------ *)

let create ~sim ~data ~control ~addr ~node_id ~em ~clock ~partition_of
    ~addr_of_partition ~my_partition ~registry ~config ~metrics () =
  let pool = Sim.Worker_pool.create sim ~workers:config.Config.cores in
  let part =
    Epoch.Participant.create ~rpc:control ~addr ~em ~clock
      ~straggler_opt:config.Config.straggler_opt ~metrics ()
  in
  let ts_source = Clocksync.Ts_source.create clock ~node:node_id in
  (* Bootstrap: the engine's callbacks close over [t], and [t] holds the
     engine; break the cycle with a throwaway engine that is replaced
     before the simulation starts. *)
  let bootstrap_callbacks =
    { Functor_cc.Compute_engine.is_local = (fun _ -> true);
      remote_get = (fun ~key:_ ~version:_ k -> k None);
      send_push = (fun ~dst_key:_ ~version:_ ~src_key:_ _ -> ());
      send_dep_write = (fun ~key:_ ~version:_ _ -> ());
      notify_final = (fun ~key:_ ~version:_ ~pending:_ ~final:_ -> ());
      exec = (fun ~cost:_ k -> k ());
      now = (fun () -> 0) }
  in
  let bootstrap_engine =
    Functor_cc.Compute_engine.create ~registry
      ~callbacks:bootstrap_callbacks ~compute_cost_us:0 ~metrics ()
  in
  let c = Sim.Metrics.counter metrics in
  let h = Sim.Metrics.histogram metrics in
  let t =
    { sim; data; address = addr; node_id; clock; partition_of;
      addr_of_partition; my_partition; config; metrics;
      m_noauth_starts = c "aloha.noauth_starts";
      m_held = c "aloha.held";
      m_submitted_rw = c "aloha.submitted_rw";
      m_submitted_ro = c "aloha.submitted_ro";
      m_installed = c "aloha.installed";
      m_committed = c "aloha.committed";
      m_aborted_compute = c "aloha.aborted_compute";
      m_aborted_install = c "aloha.aborted_install";
      m_functors_installed = c "aloha.functors_installed";
      m_precondition_failures = c "aloha.precondition_failures";
      m_ro_completed = c "aloha.ro_completed";
      h_lat_total = h "aloha.lat_total_us";
      h_lat_install = h "aloha.lat_install_us";
      h_lat_wait = h "aloha.lat_wait_us";
      h_lat_proc = h "aloha.lat_proc_us";
      h_lat_ro = h "aloha.lat_ro_us";
      pool; ts_source; part;
      engine = bootstrap_engine;
      processor =
        Functor_cc.Processor.create ~engine:bootstrap_engine ~pool
          ~dispatch_cost_us:0 ~metrics ();
      tracks = Hashtbl.create 1024;
      batches = Hashtbl.create 1024;
      held = Queue.create ();
      wal =
        (if config.Config.durability then
           Some (Wal.create sim ~flush_latency_us:config.Config.wal_flush_us ())
         else None);
      delayed_reads = [] }
  in
  let callbacks =
    { Functor_cc.Compute_engine.is_local =
        (fun key -> partition_of key = my_partition);
      remote_get =
        (fun ~key ~version k ->
          Net.Rpc.call data ~src:addr
            ~dst:(addr_of_partition (partition_of key))
            (Message.Req (Message.Get_req { key; version }))
            (function
              | Message.Get_resp v -> k v
              | Message.Install_ack _ | Message.Abort_ack ->
                  invalid_arg "remote_get: protocol mismatch"));
      send_push =
        (fun ~dst_key ~version ~src_key value ->
          let partition = partition_of dst_key in
          if partition = my_partition then
            Functor_cc.Compute_engine.deliver_push t.engine ~key:dst_key
              ~version ~src_key value
          else
            Net.Rpc.send data ~src:addr ~dst:(addr_of_partition partition)
              (Message.One
                 (Message.Push { key = dst_key; version; src_key; value })));
      send_dep_write =
        (fun ~key ~version final ->
          let partition = partition_of key in
          if partition = my_partition then
            Functor_cc.Compute_engine.deliver_dep_write t.engine ~key
              ~version ~final
          else
            Net.Rpc.send data ~src:addr ~dst:(addr_of_partition partition)
              (Message.One (Message.Dep_write { key; version; final })));
      notify_final =
        (fun ~key:_ ~version:_ ~pending ~final ->
          on_functor_final t ~pending ~final);
      exec =
        (fun ~cost k -> Sim.Worker_pool.submit pool ~cost k);
      now = (fun () -> Sim.Engine.now sim) }
  in
  let engine =
    Functor_cc.Compute_engine.create ~registry ~callbacks
      ~compute_cost_us:config.Config.cost_compute_us ~metrics ()
  in
  t.engine <- engine;
  let processor =
    Functor_cc.Processor.create ~engine ~pool
      ~dispatch_cost_us:config.Config.cost_dispatch_us ~metrics ()
  in
  t.processor <- processor;
  Epoch.Participant.set_hooks part
    ~on_open:(fun ~epoch:_ ~lo:_ ~hi:_ -> drain_held t)
    ~on_closed:(fun ~epoch ->
      (match t.wal with
      | Some wal -> Wal.append wal (Wal.Log_epoch_closed epoch)
      | None -> ());
      Functor_cc.Processor.release processor ~upto_epoch:epoch;
      let ready, waiting =
        List.partition (fun (e, _) -> e <= epoch) t.delayed_reads
      in
      t.delayed_reads <- waiting;
      (* Fire in submission order. *)
      List.iter (fun (_, run) -> run ()) (List.rev ready));
  Epoch.Participant.on_state_change part (fun () -> drain_held t);
  (* Data-plane request handler: all BE work is charged to the pool. *)
  Net.Rpc.serve data addr (fun ~src wire ~reply ->
      match wire with
      | Message.Req (Message.Install inst) ->
          let cost =
            config.Config.cost_install_base_us
            + (List.length inst.writes * config.Config.cost_install_us)
          in
          Sim.Worker_pool.submit pool ~cost (fun () ->
              do_install t ~src inst reply)
      | Message.Req (Message.Abort_txn { ts; keys }) ->
          Sim.Worker_pool.submit pool ~cost:config.Config.cost_msg_us
            (fun () -> do_abort t ~ts ~keys reply)
      | Message.Req (Message.Get_req { key; version }) ->
          Sim.Worker_pool.submit pool ~cost:config.Config.cost_get_us
            (fun () ->
              Functor_cc.Compute_engine.get t.engine ~key ~version (fun v ->
                  reply (Message.Get_resp v)))
      | Message.One _ -> ());
  Net.Rpc.serve_oneway data addr (fun ~src:_ wire ->
      match wire with
      | Message.One (Message.Push { key; version; src_key; value }) ->
          Sim.Worker_pool.submit pool ~cost:config.Config.cost_msg_us
            (fun () ->
              Functor_cc.Compute_engine.deliver_push t.engine ~key ~version
                ~src_key value)
      | Message.One (Message.Dep_write { key; version; final }) ->
          Sim.Worker_pool.submit pool ~cost:config.Config.cost_msg_us
            (fun () ->
              Functor_cc.Compute_engine.deliver_dep_write t.engine ~key
                ~version ~final)
      | Message.One (Message.Batch_done { txn_id; functors = _;
                                          max_retrieved_at; aborted }) ->
          on_batch_done t ~txn_id ~max_retrieved_at ~aborted
      | Message.Req _ -> ());
  t

let load_initial t ~key value =
  let key = Key.intern key in
  if t.partition_of key <> t.my_partition then
    invalid_arg "Server.load_initial: key not owned by this partition";
  Functor_cc.Compute_engine.load_initial t.engine ~key value

let wal t = t.wal

(* Take a checkpoint now.  Meaningful when no functor is pending (e.g.
   quiesced between epochs): everything below the snapshot becomes
   recoverable without replay. *)
let checkpoint_now t =
  match t.wal with
  | None -> invalid_arg "Server.checkpoint_now: durability disabled"
  | Some wal ->
      let snapshot = Recovery.snapshot_of_engine t.engine in
      let retain_above = Recovery.max_final_version t.engine in
      Wal.checkpoint wal ~snapshot ~retain_above
