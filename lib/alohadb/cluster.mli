(** Assembly of a complete simulated ALOHA-DB deployment: [n] combined
    FE/BE servers, one epoch manager, a data-plane and a control-plane
    network, and hash (or prefix-directed) partitioning of the keyspace.

    Addresses: servers occupy node ids [0 .. n-1]; the EM is node [n]
    (sharing a host with a server in the paper — here a separate address
    on the same simulated network, which is equivalent for the protocol). *)

type options = {
  n_servers : int;
  config : Config.t;
  epoch : Epoch.Manager.config;
  latency : Net.Latency.t;
  partitioner : [ `Hash | `Prefix ];
      (** [`Prefix] routes keys like ["w:3:..."] to partition [3 mod n] —
          what the TPC-C partition-by-warehouse layout needs *)
  seed : int;
  clock_skew_us : int;
      (** per-server clock offsets are drawn uniformly from
          [-skew, +skew] *)
  faults : Net.Faults.t option;
      (** fault-injection oracle shared by the data and control planes
          (one physical network); [None] = fault-free *)
  obs : Obs.Ctl.t option;
      (** observability handle: wires lifecycle tracing into every
          server, registers cluster-wide gauge probes (compute-queue
          depth, in-flight functors, watermark lag, WAL pending bytes,
          network drops) and connects the network fault hook for
          chaos-correlation tags; [None] = untraced *)
}

val default_options : options

type t

val create :
  ?registry:Functor_cc.Registry.t -> options -> t
(** Build the deployment.  [registry] defaults to
    [Functor_cc.Registry.with_builtins ()] and is shared by all servers
    (stored procedures are deployed cluster-wide). *)

val start : t -> unit
(** Start the epoch manager (grants the first epoch). *)

val shutdown : t -> unit
(** Join the real runtime's worker-domain pool (no-op under the sim
    runtime, and on repeated calls).  The simulated state stays
    readable; only parallel stratum evaluation becomes unavailable. *)

val real_pool : t -> Runtime.Pool.t option
(** The shared worker-domain pool, when [config.runtime_mode = Real]. *)

val set_trace : t -> (src:Net.Address.t -> dst:Net.Address.t -> unit) -> unit
(** Observe every send on both planes (chaos trace hashing). *)

val drop_stats : t -> Net.Network.drop_stats
(** Drop counters summed over the data and control planes. *)

val sim : t -> Sim.Engine.t
val metrics : t -> Sim.Metrics.t
val n_servers : t -> int
val server : t -> int -> Server.t
val registry : t -> Functor_cc.Registry.t
val partition_of : t -> string -> int

val replicas : t -> int
(** Effective replication degree: [min (max 1 config.replicas) n].  With
    [k > 1] each partition's WAL is shipped to the k-1 following nodes
    (group of partition [p] = nodes [p .. p+k-1 mod n]), a failure
    monitor promotes a live follower when a primary's backend crashes
    (detection delay [config.repl_detect_us]), and frontends re-route to
    the promoted replica.  Replication forces durability on. *)

val primary_server : t -> partition:int -> Server.t
(** The server currently serving [partition]'s storage — its home server
    until a failover, the promoted replica after one.  Committed state
    must be read through this (chaos probes and oracles do). *)

val group_members : t -> partition:int -> int list
(** Node ids of [partition]'s replication group (just [partition] itself
    when unreplicated).  A probe of this partition is unreliable while
    {e any} member is crashed: its primary may be a promoted replica
    still replaying, or about to become one. *)

val load : t -> key:string -> Functor_cc.Value.t -> unit
(** Preload a row on its owning partition (version 0). *)

val submit :
  t -> fe:int -> Txn.request -> (Txn.result -> unit) -> unit
(** Submit a client request to the given frontend. *)

val run_for : t -> int -> unit
(** Advance the simulation by the given number of microseconds. *)

val run_until_quiescent : t -> ?max_us:int -> unit -> unit
(** Run until no events remain or the horizon passes (epoch managers never
    quiesce, so the horizon is the practical stop). *)
