(* Replication-group bookkeeping for one partition, as seen by its
   current primary.

   Pure state machine — no network, no WAL, no simulator — so the
   ack-gating rule can be model-checked directly (test_replication's
   property test drives exactly this module).

   The primary's WAL entry sequence (1-based) is the replicated log.
   Followers send cumulative acks ("everything up to seq s is durable
   here"); the gating floor is the minimum ack over *live* followers.
   An epoch barrier is a position in that sequence: when the floor
   reaches it, the epoch is durable on every live replica and the
   watermark may advance past it.  With zero live followers the floor
   degenerates to the local log length — the group keeps serving with
   the single-copy guarantee, which is all that is left to offer. *)

type member = {
  id : int;
  mutable acked : int;   (* cumulative: entries [1..acked] durable there *)
  mutable live : bool;
}

type t = {
  partition : int;
  term : int;
  primary : int;
  members : member array;  (* every replica, primary included *)
  mutable len : int;  (* entries appended to the primary's log *)
  mutable barriers : (int * int) list;  (* (epoch, seq), newest first *)
  mutable durable_epoch : int;
  mutable seq_waiters : (int * (unit -> unit)) list;  (* newest first *)
  mutable epoch_waiters : (int * (unit -> unit)) list;  (* newest first *)
}

let create ~partition ~term ~primary ~members ~len =
  if not (List.mem primary members) then
    invalid_arg "Repl.create: primary not in members";
  { partition; term; primary;
    members =
      Array.of_list
        (List.map (fun id -> { id; acked = 0; live = true }) members);
    len; barriers = []; durable_epoch = 0; seq_waiters = [];
    epoch_waiters = [] }

let partition t = t.partition
let term t = t.term
let len t = t.len

let follower t m = m.id <> t.primary

let find_member t id =
  match Array.find_opt (fun m -> m.id = id) t.members with
  | Some m -> m
  | None -> invalid_arg "Repl: not a group member"

(* The gating floor: min cumulative ack over live followers, or the
   whole log when no follower is live (degraded single-copy mode). *)
let floor_ t =
  let fl = ref max_int in
  Array.iter
    (fun m -> if follower t m && m.live then fl := min !fl m.acked)
    t.members;
  if !fl = max_int then t.len else !fl

let durable_epoch t = t.durable_epoch
let replica_lag t = max 0 (t.len - floor_ t)

let live_followers t =
  Array.to_list t.members
  |> List.filter_map (fun m ->
         if follower t m && m.live then Some m.id else None)

let lagging_followers t ~seq =
  Array.to_list t.members
  |> List.filter_map (fun m ->
         if follower t m && m.live && m.acked < seq then Some (m.id, m.acked)
         else None)

(* Fire every waiter the current floor satisfies.  Waiters may append or
   ack reentrantly, so take-then-fire and loop until a fixed point. *)
let rec fire_ready t =
  let fl = floor_ t in
  (* advance the durable epoch to the highest barrier the floor covers *)
  List.iter
    (fun (epoch, seq) ->
      if seq <= fl && epoch > t.durable_epoch then t.durable_epoch <- epoch)
    t.barriers;
  let ready_seq, rest_seq =
    List.partition (fun (seq, _) -> seq <= fl) t.seq_waiters
  in
  let ready_epoch, rest_epoch =
    List.partition (fun (e, _) -> e <= t.durable_epoch) t.epoch_waiters
  in
  t.seq_waiters <- rest_seq;
  t.epoch_waiters <- rest_epoch;
  if ready_seq <> [] || ready_epoch <> [] then begin
    (* registration order = reverse of the newest-first lists; within a
       batch, sequence gates (install acks) before epoch gates (closes) *)
    List.iter (fun (_, k) -> k ()) (List.rev ready_seq);
    List.iter (fun (_, k) -> k ()) (List.rev ready_epoch);
    fire_ready t
  end

let append t =
  t.len <- t.len + 1;
  (* with zero live followers the floor moves with the log *)
  if live_followers t = [] then fire_ready t;
  t.len

let ack t ~member ~seq =
  let m = find_member t member in
  if follower t m && seq > m.acked then begin
    (* a follower log is always a prefix of the primary's durable log;
       an ack beyond our own length is a protocol violation *)
    if seq > t.len then invalid_arg "Repl.ack: beyond log length";
    m.acked <- seq;
    fire_ready t
  end

let member_down t ~id =
  let m = find_member t id in
  if m.live then begin
    m.live <- false;
    (* the floor ignores dead followers from now on: it can only rise *)
    fire_ready t
  end

let member_rejoin t ~id =
  let m = find_member t id in
  (* back with an empty (or about-to-be-wiped) log: the primary re-ships
     from seq 1 and the floor for *new* gates drops to 0.  Gates already
     fired stay fired — their epochs are durable on the surviving
     replicas; the rejoiner catches up from the re-ship. *)
  m.acked <- 0;
  m.live <- true

let close_epoch t ~epoch =
  t.barriers <- (epoch, t.len) :: t.barriers;
  fire_ready t

let when_seq_acked t ~seq k =
  if floor_ t >= seq then k ()
  else t.seq_waiters <- (seq, k) :: t.seq_waiters

let when_epoch_durable t ~epoch k =
  if t.durable_epoch >= epoch then k ()
  else t.epoch_waiters <- (epoch, k) :: t.epoch_waiters

let drop_waiters t =
  let n = List.length t.seq_waiters + List.length t.epoch_waiters in
  t.seq_waiters <- [];
  t.epoch_waiters <- [];
  n

let reset_acks t =
  Array.iter (fun m -> if follower t m then m.acked <- 0) t.members

let crash t ~durable_len =
  (* The primary's buffered WAL tail died with the process: truncate the
     replicated log to the durable prefix, drop barriers registered into
     the lost tail (their epochs never closed — the grant that would have
     closed them is re-delivered after recovery), forget follower acks
     (re-established by re-shipping) and discard pending gates (their
     replies died with the process).  [durable_epoch] survives: epochs
     already durable on the group stay durable. *)
  if durable_len > t.len then invalid_arg "Repl.crash: durable beyond log";
  t.len <- durable_len;
  t.barriers <- List.filter (fun (_, seq) -> seq <= durable_len) t.barriers;
  reset_acks t;
  t.seq_waiters <- [];
  t.epoch_waiters <- []

let acked t ~member = (find_member t member).acked
let is_live t ~member = (find_member t member).live
