type op =
  | Put of Functor_cc.Value.t
  | Delete
  | Add of int
  | Subtr of int
  | Max of int
  | Min of int
  | Call of {
      handler : string;
      read_set : string list;
      args : Functor_cc.Value.t list;
    }
  | Det of {
      handler : string;
      read_set : string list;
      args : Functor_cc.Value.t list;
      dependents : string list;
    }

type ack_mode = Ack_on_install | Ack_on_computed

type request =
  | Read_write of {
      writes : (string * op) list;
      precondition_keys : string list;
      ack : ack_mode;
    }
  | Read_only of { keys : string list }
  | Read_at of { keys : string list; version : int }

type result =
  | Committed of { ts : Clocksync.Timestamp.t }
  | Aborted of {
      ts : Clocksync.Timestamp.t option;
      stage : [ `Install | `Compute ];
    }
  | Values of (string * Functor_cc.Value.t option) list

let read_write ?(precondition_keys = []) ?(ack = Ack_on_computed) writes =
  Read_write { writes; precondition_keys; ack }

let op_read_set key = function
  | Put _ | Delete -> []
  | Add _ | Subtr _ | Max _ | Min _ -> [ key ]
  | Call { read_set; _ } | Det { read_set; _ } -> read_set

let op_commutative = function
  | Add _ | Subtr _ | Max _ | Min _ -> true
  | Put _ | Delete | Call _ | Det _ -> false

let all_commutative ~writes ~precondition_keys =
  precondition_keys = []
  && writes <> []
  && List.for_all (fun (_, op) -> op_commutative op) writes

let write_keys = function
  | Read_only _ | Read_at _ -> []
  | Read_write { writes; _ } ->
      List.concat_map
        (fun (key, op) ->
          match op with
          | Det { dependents; _ } -> key :: dependents
          | Put _ | Delete | Add _ | Subtr _ | Max _ | Min _ | Call _ ->
              [ key ])
        writes

let recipients_for writes key =
  List.filter_map
    (fun (wkey, op) ->
      if (not (String.equal wkey key))
         && List.exists (String.equal key) (op_read_set wkey op)
      then Some wkey
      else None)
    writes

let pp_result fmt = function
  | Committed { ts } ->
      Format.fprintf fmt "Committed(ts=%a)" Clocksync.Timestamp.pp ts
  | Aborted { stage; _ } ->
      Format.fprintf fmt "Aborted(%s)"
        (match stage with `Install -> "install" | `Compute -> "compute")
  | Values kvs ->
      Format.fprintf fmt "Values(@[%a@])"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ")
           (fun fmt (k, v) ->
             match v with
             | None -> Format.fprintf fmt "%s=⊥" k
             | Some v -> Format.fprintf fmt "%s=%a" k Functor_cc.Value.pp v))
        kvs
