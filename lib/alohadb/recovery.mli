(** Crash recovery for one backend partition.

    Because functors are deterministic and read only historical versions,
    recovery is checkpoint-load plus log replay: re-install every logged
    functor and let the engine recompute.  Recomputation reproduces the
    exact pre-crash values — including deferred dependent-key writes —
    reading remote partitions' immutable history where needed, which is
    the property §III-A borrows from ALOHA-KV's fault-tolerance design.

    Scope note (see DESIGN.md): this recovers a single crashed partition
    into a fresh engine while the rest of the cluster stays up.  Full
    primary-backup failover (leases, client retry) is out of scope; the
    paper's evaluation also runs with fault tolerance disabled. *)

val snapshot_of_engine :
  Functor_cc.Compute_engine.t -> (Mvstore.Key.t * int * Message.fspec) list
(** Capture every key's latest committed/deleted final record, for
    {!Wal.checkpoint}.  Keys whose versions are all aborted are skipped;
    versions above each key's latest final (still-pending functors) are
    {e not} captured — their log entries must be retained. *)

val max_final_version : Functor_cc.Compute_engine.t -> int
(** The highest version captured by {!snapshot_of_engine} — the
    [retain_above] bound for a checkpoint taken when no functor is
    pending. *)

val replay :
  engine:Functor_cc.Compute_engine.t ->
  snapshot:(Mvstore.Key.t * int * Message.fspec) list ->
  entries:Wal.entry list ->
  int
(** Load a checkpoint snapshot and replay a log-entry sequence into a
    fresh engine — the shared core of {!rebuild} (a restarted backend's
    own WAL) and replica promotion (the shipped copy of the crashed
    primary's WAL, with an empty snapshot: checkpoints are disabled
    under replication).  Returns the number of records restored. *)

val rebuild :
  engine:Functor_cc.Compute_engine.t -> wal:Wal.t -> int
(** Load the checkpoint and replay the durable log into a fresh engine:
    installs are re-installed as pending functors (replay re-computes
    them), aborts re-applied.  Returns the number of records restored.
    The caller then drives recomputation (processor or on-demand). *)

val recompute :
  Functor_cc.Compute_engine.t -> unit
(** Force computation of every replayed pending functor (ascending
    versions per key), as the post-recovery processor sweep would. *)
