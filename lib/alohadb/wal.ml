type entry =
  | Log_install of {
      key : Mvstore.Key.t;
      version : int;
      spec : Message.fspec;
      txn_id : int;
      coordinator : int;
      epoch : int;
      fast : bool;
          (* installed by the coordination-free fast path: on replay the
             entry re-enters the lazy-merge buffer, not an epoch batch *)
    }
  | Log_abort of { key : Mvstore.Key.t; version : int }
  | Log_epoch_closed of int

type t = {
  sim : Sim.Engine.t;
  flush_latency_us : int;
  mutable buffered : entry list;  (* newest first *)
  mutable flushed : entry list;  (* newest first *)
  mutable flush_scheduled : bool;
  mutable ckpt : (Mvstore.Key.t * int * Message.fspec) list;
  mutable waiters : (unit -> unit) list;  (* newest first *)
  mutable generation : int;  (* bumped by lose_unflushed (crash) *)
  mutable on_flush : (unit -> unit) option;
      (* replication ship hook: fired after each flush completion, once
         the newly durable entries are visible through [durable] *)
}

let create sim ?(flush_latency_us = 500) () =
  { sim; flush_latency_us; buffered = []; flushed = [];
    flush_scheduled = false; ckpt = []; waiters = []; generation = 0;
    on_flush = None }

let set_on_flush t f = t.on_flush <- Some f

let run_waiters t =
  let ws = t.waiters in
  t.waiters <- [];
  List.iter (fun k -> k ()) (List.rev ws)

let rec schedule_flush t =
  if not t.flush_scheduled then begin
    t.flush_scheduled <- true;
    let gen = t.generation in
    Sim.Engine.after t.sim t.flush_latency_us (fun () ->
        (* A crash between schedule and completion voids this flush: the
           buffered tail it would have covered is gone. *)
        if gen = t.generation then begin
          t.flush_scheduled <- false;
          (* Everything buffered when the flush started — and anything
             added while it ran — reaches the device in order. *)
          t.flushed <- t.buffered @ t.flushed;
          t.buffered <- [];
          (match t.on_flush with Some f -> f () | None -> ());
          run_waiters t;
          if t.buffered <> [] then schedule_flush t
        end)
  end

let append t entry =
  t.buffered <- entry :: t.buffered;
  schedule_flush t

let after_durable t k =
  if t.buffered = [] && not t.flush_scheduled then k ()
  else begin
    t.waiters <- k :: t.waiters;
    schedule_flush t
  end

let lose_unflushed t =
  t.generation <- t.generation + 1;
  t.flush_scheduled <- false;
  let lost = List.length t.buffered in
  t.buffered <- [];
  (* Waiters were acks for entries that never reached the device; the
     crash loses them along with the entries. *)
  t.waiters <- [];
  lost

let durable t = List.rev t.flushed

let all t = List.rev_append t.flushed (List.rev t.buffered)
let durable_count t = List.length t.flushed

let pending_count t = List.length t.buffered

(* Nominal on-device entry sizes: a functor install carries the spec
   (key, args, txn identity); aborts and epoch markers are headers. *)
let entry_bytes = function
  | Log_install _ -> 64
  | Log_abort _ -> 24
  | Log_epoch_closed _ -> 16

let pending_bytes t =
  List.fold_left (fun acc e -> acc + entry_bytes e) 0 t.buffered

let entry_version = function
  | Log_install { version; _ } | Log_abort { version; _ } -> Some version
  | Log_epoch_closed _ -> None

let checkpoint t ~snapshot ~retain_above =
  t.ckpt <- snapshot;
  (* Entries covered by the snapshot are dropped; later ones (functors of
     epochs still open or not yet computed) are retained and made durable
     together with the checkpoint, which installs atomically. *)
  let keep entry =
    match entry_version entry with
    | Some v -> v > retain_above
    | None -> false
  in
  t.flushed <- List.filter keep (t.buffered @ t.flushed);
  t.buffered <- [];
  (* The checkpoint made everything (snapshot + retained tail) durable. *)
  run_waiters t

let snapshot t = t.ckpt

(* Durable entries with 1-based positions in (from, upto], oldest first:
   the retransmission window a replication primary re-ships. *)
let durable_range t ~from ~upto =
  let rec take i acc = function
    | [] -> List.rev acc
    | e :: rest ->
        if i > upto then List.rev acc
        else take (i + 1) (if i > from then (i, e) :: acc else acc) rest
  in
  take 1 [] (durable t)

(* Wire conversions: Message can't see [entry] (Wal depends on Message),
   so the replication plane ships the mirrored [Message.ship_entry]. *)
let ship_of_entry = function
  | Log_install { key; version; spec; txn_id; coordinator; epoch; fast } ->
      Message.Ship_install
        { key; version; spec; txn_id; coordinator; epoch; fast }
  | Log_abort { key; version } -> Message.Ship_abort { key; version }
  | Log_epoch_closed e -> Message.Ship_epoch_closed e

let entry_of_ship = function
  | Message.Ship_install
      { key; version; spec; txn_id; coordinator; epoch; fast } ->
      Log_install { key; version; spec; txn_id; coordinator; epoch; fast }
  | Message.Ship_abort { key; version } -> Log_abort { key; version }
  | Message.Ship_epoch_closed e -> Log_epoch_closed e
