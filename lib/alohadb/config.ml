type compute_mode = Ondemand | Pool | Planned

let compute_mode_of_string = function
  | "ondemand" -> Some Ondemand
  | "pool" -> Some Pool
  | "planned" -> Some Planned
  | _ -> None

let compute_mode_to_string = function
  | Ondemand -> "ondemand"
  | Pool -> "pool"
  | Planned -> "planned"

type t = {
  cores : int;
  compute_mode : compute_mode;
  straggler_opt : bool;
  push_opt : bool;
  durability : bool;
  wal_flush_us : int;
  install_retry_us : int;
  ack_after_flush : bool;
  cost_coord_us : int;
  cost_install_base_us : int;
  cost_install_us : int;
  cost_get_us : int;
  cost_compute_us : int;
  cost_dispatch_us : int;
  cost_msg_us : int;
}

let default =
  { cores = 8;
    compute_mode = Pool;
    straggler_opt = true;
    push_opt = true;
    durability = false;
    wal_flush_us = 500;
    install_retry_us = 0;
    ack_after_flush = false;
    cost_coord_us = 6;
    cost_install_base_us = 3;
    cost_install_us = 1;
    cost_get_us = 1;
    cost_compute_us = 2;
    cost_dispatch_us = 1;
    cost_msg_us = 1 }
