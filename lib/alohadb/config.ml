type compute_mode = Ondemand | Pool | Planned

let compute_mode_of_string = function
  | "ondemand" -> Some Ondemand
  | "pool" -> Some Pool
  | "planned" -> Some Planned
  | _ -> None

let compute_mode_to_string = function
  | Ondemand -> "ondemand"
  | Pool -> "pool"
  | Planned -> "planned"

(* Execution backend: Sim keeps every event on the simulation domain;
   Real additionally evaluates planned functor strata on a shared pool
   of OCaml 5 worker domains (only the Planned compute mode has the
   dependency strata that make parallelism safe — under Ondemand/Pool
   the Real runtime degenerates to Sim). *)
type runtime_mode = Sim | Real

let runtime_mode_of_string = function
  | "sim" -> Some Sim
  | "real" -> Some Real
  | _ -> None

let runtime_mode_to_string = function Sim -> "sim" | Real -> "real"

type t = {
  cores : int;
  compute_mode : compute_mode;
  runtime_mode : runtime_mode;
  domains : int;
      (* worker domains in the real runtime's shared pool (>= 1) *)
  straggler_opt : bool;
  push_opt : bool;
  durability : bool;
  wal_flush_us : int;
  install_retry_us : int;
  ack_after_flush : bool;
  replicas : int;
  repl_detect_us : int;
  repl_retry_us : int;
  repl_sync : bool;
  fastpath : bool;
  cost_coord_us : int;
  cost_install_base_us : int;
  cost_install_us : int;
  cost_get_us : int;
  cost_compute_us : int;
  cost_dispatch_us : int;
  cost_msg_us : int;
}

let default =
  { cores = 8;
    compute_mode = Pool;
    runtime_mode = Sim;
    domains = 4;
    straggler_opt = true;
    push_opt = true;
    durability = false;
    wal_flush_us = 500;
    install_retry_us = 0;
    ack_after_flush = false;
    replicas = 1;
    repl_detect_us = 3_000;
    repl_retry_us = 0;
    repl_sync = false;
    fastpath = false;
    cost_coord_us = 6;
    cost_install_base_us = 3;
    cost_install_us = 1;
    cost_get_us = 1;
    cost_compute_us = 2;
    cost_dispatch_us = 1;
    cost_msg_us = 1 }
