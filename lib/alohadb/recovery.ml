module Funct = Functor_cc.Funct

let final_to_fspec = function
  | Funct.Committed v -> Some (Message.fspec_value v)
  | Funct.Deleted_v -> Some Message.fspec_delete
  | Funct.Aborted_v -> None

let snapshot_of_engine engine =
  let table = Functor_cc.Compute_engine.table engine in
  Mvstore.Table.fold_chains table ~init:[] ~f:(fun key chain acc ->
      (* Latest committed/deleted final; skip aborted versions the same
         way reads do. *)
      let best =
        Mvstore.Chain.fold chain ~init:None ~f:(fun acc version record ->
            match record.Funct.state with
            | Funct.Final f -> (
                match final_to_fspec f with
                | Some spec -> Some (version, spec)
                | None -> acc)
            | Funct.Pending _ -> acc)
      in
      match best with
      | Some (version, spec) -> (key, version, spec) :: acc
      | None -> acc)

let max_final_version engine =
  List.fold_left
    (fun acc (_, version, _) -> max acc version)
    0
    (snapshot_of_engine engine)

let replay ~engine ~snapshot ~entries =
  let restored = ref 0 in
  (* 1. checkpoint snapshot *)
  List.iter
    (fun (key, version, spec) ->
      let record = Message.functor_of_fspec spec ~txn_id:0 ~coordinator:0 in
      match
        Functor_cc.Compute_engine.install engine ~key ~version ~lo:0
          ~hi:max_int record
      with
      | Ok () -> incr restored
      | Error _ -> ())
    snapshot;
  (* 2. log replay, oldest first (install order) *)
  List.iter
    (fun entry ->
      match entry with
      | Wal.Log_install
          { key; version; spec; txn_id; coordinator; epoch = _; fast = _ }
        -> (
          (* Recipient-set pushes are not re-sent after a crash: replayed
             functors must fall back to explicit (remote) reads. *)
          let spec =
            { spec with
              Message.farg =
                { spec.Message.farg with Functor_cc.Funct.pushed_reads = [] }
            }
          in
          let record = Message.functor_of_fspec spec ~txn_id ~coordinator in
          match
            Functor_cc.Compute_engine.install engine ~key ~version ~lo:0
              ~hi:max_int record
          with
          | Ok () -> incr restored
          | Error `Duplicate_version | Error `Version_out_of_window -> ())
      | Wal.Log_abort { key; version } ->
          Functor_cc.Compute_engine.abort_version engine ~key ~version
      | Wal.Log_epoch_closed _ -> ())
    entries;
  !restored

let rebuild ~engine ~wal =
  replay ~engine ~snapshot:(Wal.snapshot wal) ~entries:(Wal.durable wal)

let recompute engine =
  let table = Functor_cc.Compute_engine.table engine in
  Mvstore.Table.iter table ~f:(fun key chain ->
      match Mvstore.Chain.latest_version chain with
      | Some version ->
          Functor_cc.Compute_engine.compute_key engine ~key ~version
      | None -> ())
