(** Server configuration and CPU cost model.

    All costs are in simulated microseconds of one worker's time.  The
    defaults are calibrated so that an 8-core server sustains on the order
    of 10^5 NewOrder transactions per second — the paper's ballpark on
    m4.4xlarge instances — but every experiment can override them; they
    are inputs of the model, not hidden constants. *)

type compute_mode =
  | Ondemand
      (** demand-driven: epoch close issues one [Compute_engine.get] per
          buffered functor, so evaluation happens lazily along read
          chains *)
  | Pool
      (** processor pool (Algorithm 1's dispatcher): one [compute_key]
          rescan job per buffered item *)
  | Planned
      (** per-epoch dependency-graph planner: at epoch close a plan maps
          the epoch's functors to prepared node handles, stratifies the
          read→write edge graph and evaluates nodes directly, pushing
          read-set values instead of round-tripping *)

val compute_mode_of_string : string -> compute_mode option
val compute_mode_to_string : compute_mode -> string

type runtime_mode =
  | Sim
      (** everything on the simulation domain (the default): compute
          costs are charged in simulated time only *)
  | Real
      (** additionally evaluate planned functor strata on a shared pool
          of OCaml 5 worker domains, for wall-clock throughput.  Only
          the [Planned] compute mode has the dependency strata that make
          parallelism safe; under [Ondemand]/[Pool] this degenerates to
          [Sim] *)

val runtime_mode_of_string : string -> runtime_mode option
val runtime_mode_to_string : runtime_mode -> string

type t = {
  cores : int;  (** worker pool width (the paper's 8-core VMs) *)
  compute_mode : compute_mode;
      (** how the BE evaluates an epoch's functors after epoch close *)
  runtime_mode : runtime_mode;  (** execution backend (sim | real) *)
  domains : int;
      (** worker domains in the real runtime's shared pool (>= 1) *)
  straggler_opt : bool;  (** §III-C unauthorized starts *)
  push_opt : bool;  (** §IV-B recipient-set pushes *)
  durability : bool;
      (** write-ahead logging + checkpoint support (§III-A); disabled by
          default, matching the paper's evaluation setup *)
  wal_flush_us : int;  (** modelled group-commit flush latency *)
  install_retry_us : int;
      (** FE data-plane RPC retransmission period; 0 (the default)
          disables retries — appropriate on a fault-free network.  Chaos
          runs enable it so lost installs/aborts/reads cannot wedge a
          transaction (duplicates are idempotent at the BE). *)
  ack_after_flush : bool;
      (** defer install/abort acks until the WAL entries they cover are
          flushed, so a crash can only lose writes the FE never saw
          acknowledged (and will therefore retry).  Requires
          [durability] *)
  replicas : int;
      (** copies of each partition, including the primary; 1 (the
          default) disables replication entirely and preserves the
          single-copy behaviour bit for bit.  k > 1 forces [durability]
          on (WAL shipping is the replication transport) and clamps to
          the cluster size *)
  repl_detect_us : int;
      (** failure-detector delay: how long after a crash/restart the
          cluster monitor waits before promoting a replica or
          re-joining a member *)
  repl_retry_us : int;
      (** primary's re-ship period for WAL entries a follower has not
          acked; 0 disables retransmission (fault-free networks) *)
  repl_sync : bool;
      (** gate install/abort acks and epoch close on every live
          follower having acked the covering WAL prefix, so committed
          transactions survive the loss of any single replica.  Off by
          default: on a fault-free network asynchronous shipping is
          behaviour-neutral and costs nothing *)
  fastpath : bool;
      (** coordination-free commit lane for all-commutative transactions
          (empty precondition set, every write an ADD/SUBTR/MAX/MIN):
          the frontend acknowledges as soon as every partition has
          durably installed the functors, without waiting for epoch
          close or functor computation, and the backends fold the
          pending deltas into their chains lazily.  Off by default; when
          off, behaviour is bit-for-bit identical to previous releases *)
  cost_coord_us : int;
      (** FE: transform a transaction into functors and fan out installs *)
  cost_install_base_us : int;  (** BE: fixed cost per install message *)
  cost_install_us : int;  (** BE: marginal cost per functor installed *)
  cost_get_us : int;  (** BE: one storage read *)
  cost_compute_us : int;  (** BE: one handler execution *)
  cost_dispatch_us : int;  (** processor: dequeue one metadata item *)
  cost_msg_us : int;  (** generic one-way message handling *)
}

val default : t
