let name = "aloha"

type cluster = Cluster.t

let options_of ?seed (params : Kernel.Params.t) =
  let base = Cluster.default_options in
  { base with
    Cluster.n_servers = params.n_servers;
    partitioner = `Prefix;
    seed = (match seed with Some s -> s | None -> base.Cluster.seed);
    epoch =
      (match params.epoch_us with
      | Some duration_us -> { base.Cluster.epoch with Epoch.Manager.duration_us }
      | None -> base.Cluster.epoch);
    faults = params.faults;
    obs = params.obs;
    config =
      (let cfg =
         match params.faults with
         | None -> base.Cluster.config
         | Some _ ->
             (* Under fault injection the protocol's liveness relies on
                durable logging, frontend install/abort retries and
                flush-gated acks; a lossy network with none of these would
                wedge the epoch pipeline. *)
             { base.Cluster.config with
               Config.durability = true;
               install_retry_us = 10_000;
               ack_after_flush = true }
       in
       let cfg =
         match params.compute with
         | None -> cfg
         | Some s -> (
             match Config.compute_mode_of_string s with
             | Some compute_mode -> { cfg with Config.compute_mode }
             | None ->
                 invalid_arg
                   (Printf.sprintf
                      "Alohadb.Engine: unknown compute mode %S \
                       (expected ondemand|pool|planned)"
                      s))
       in
       let cfg =
         match params.runtime with
         | None -> cfg
         | Some s -> (
             match Config.runtime_mode_of_string s with
             | Some runtime_mode -> { cfg with Config.runtime_mode }
             | None ->
                 invalid_arg
                   (Printf.sprintf
                      "Alohadb.Engine: unknown runtime %S (expected sim|real)"
                      s))
       in
       let cfg =
         match params.domains with
         | None -> cfg
         | Some d ->
             if d < 1 then
               invalid_arg "Alohadb.Engine: --domains must be >= 1"
             else { cfg with Config.domains = d }
       in
       let cfg =
         match params.fastpath with
         | None | Some false -> cfg
         | Some true -> { cfg with Config.fastpath = true }
       in
       match params.replicas with
       | None -> cfg
       | Some k ->
           if k < 1 then
             invalid_arg "Alohadb.Engine: --replicas must be >= 1"
           else if k = 1 then cfg
           else
             (* Replicated and faulted: gate install/abort acks and epoch
                close on group durability (otherwise a crashed primary
                takes acked-but-unreplicated commits with it), and keep a
                retransmission loop running so a rejoined follower always
                catches up.  Fault-free replicated runs stay async — the
                ship traffic is passive and the timeline is identical to
                an unreplicated run. *)
             let cfg = { cfg with Config.replicas = k } in
             (match params.faults with
             | None -> cfg
             | Some _ ->
                 { cfg with
                   Config.repl_sync = true;
                   repl_retry_us = 10_000 })) }

let create ?seed params =
  Cluster.create
    ~registry:(Functor_cc.Registry.with_builtins ())
    (options_of ?seed params)

let set_trace = Cluster.set_trace
let drop_stats = Cluster.drop_stats
let register c name h = Functor_cc.Registry.register (Cluster.registry c) name h
let load c key v = Cluster.load c ~key v
let start = Cluster.start

(* Quiesce: under --runtime real this joins the worker-domain pool (the
   simulated state stays readable); a no-op otherwise.  Idempotent. *)
let stop = Cluster.shutdown
let sim = Cluster.sim
let metrics = Cluster.metrics
let n_servers = Cluster.n_servers

let lower_op : Kernel.Txn.op -> Txn.op = function
  | Kernel.Txn.Put v -> Txn.Put v
  | Kernel.Txn.Delete -> Txn.Delete
  | Kernel.Txn.Add d -> Txn.Add d
  | Kernel.Txn.Subtr d -> Txn.Subtr d
  | Kernel.Txn.Max d -> Txn.Max d
  | Kernel.Txn.Min d -> Txn.Min d
  | Kernel.Txn.Call { handler; read_set; args } ->
      Txn.Call { handler; read_set; args }
  | Kernel.Txn.Det { handler; read_set; args; dependents } ->
      Txn.Det { handler; read_set; args; dependents }

let submit c ~fe txn ~k =
  let d = Kernel.Txn.functor_form txn in
  let writes = List.map (fun (key, op) -> (key, lower_op op)) d.writes in
  Cluster.submit c ~fe
    (Txn.read_write ~precondition_keys:d.precondition_keys writes)
    (fun result ->
      k
        (match result with
        | Txn.Committed _ | Txn.Values _ -> Kernel.Txn.Ok
        | Txn.Aborted { stage; _ } -> Kernel.Txn.Aborted stage))

let read_committed c key =
  (* Through the routing table: after a failover the partition's state
     lives on the promoted replica, not the home server. *)
  let srv = Cluster.primary_server c ~partition:(Cluster.partition_of c key) in
  let result = ref None in
  Functor_cc.Compute_engine.get (Server.engine srv)
    ~key:(Mvstore.Key.intern key) ~version:max_int (fun v -> result := v);
  !result

let committed_key = "aloha.committed"
let latency_key = "aloha.lat_total_us"

let abort_keys =
  [ ("install", "aloha.aborted_install"); ("compute", "aloha.aborted_compute") ]

let counter_keys =
  (* Planner accounting: all-zero outside the planned compute mode. *)
  [ ("plans", "plan.plans");
    ("plan nodes", "plan.nodes");
    ("plan edges", "plan.edges");
    ("plan subs sent", "plan.subs_sent");
    (* Algebraic fast path: all-zero unless --fastpath on. *)
    ("fastpath commits", "aloha.fastpath_commits");
    ("fastpath merges", "fcc.fastpath_merges") ]

let stage_keys =
  [ ("functor installing", "aloha.lat_install_us");
    ("wait for processing", "aloha.lat_wait_us");
    ("processing", "aloha.lat_proc_us");
    (* Planner stages: no samples outside the planned mode, so
       Result.extract drops them from pool/ondemand breakdowns.  The
       unitless plan.strata / plan.critical_path series stay out of the
       latency breakdown and are read straight from the metrics. *)
    ("plan build", "plan.build_us");
    ("plan evaluate", "plan.evaluate_us");
    (* Coordination-free commit latency: no samples unless --fastpath on. *)
    ("fastpath commit", "aloha.lat_fastpath_us") ]
