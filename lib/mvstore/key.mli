(** Interned keys.

    Every distinct key name maps to one shared record carrying a dense int
    id; equality and hashing are by id, so hot paths never re-hash the key
    string.  [intern] is the only constructor.  The intern table is
    process-wide and append-only: repeated runs in one process reuse ids
    for recurring names. *)

type t

val intern : string -> t
(** Get-or-create the record for a key name. *)

val id : t -> int
(** Dense id, assigned in intern order starting at 0. *)

val name : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val interned_count : unit -> int

val new_stamp : unit -> int
(** Fresh generation stamp for {!memo_int} users (e.g. a cluster caching
    each key's partition).  Stamps are process-unique. *)

val memo_int : t -> stamp:int -> f:(string -> int) -> int
(** [memo_int k ~stamp ~f] returns the cached value when the key's memo
    slot carries [stamp], otherwise computes [f (name k)], caches it under
    [stamp] and returns it.  The slot holds one generation at a time. *)

val pp : Format.formatter -> t -> unit
