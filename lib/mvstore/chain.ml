type 'a entry = { version : int; mutable payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable watermark : int;
  (* Index of the entry holding [watermark], or -1 when unknown.  A cache,
     not an invariant: validated against [data] before every use and
     rebuilt with a rank search on mismatch.  Sequential compute probes
     the chain at exactly the watermark (previous value of the next
     functor, base of the watermark walk), so this turns the two hottest
     rank searches into array hits. *)
  mutable wm_idx : int;
}

let create () = { data = [||]; size = 0; watermark = -1; wm_idx = -1 }

let wm_idx_valid t =
  t.wm_idx >= 0 && t.wm_idx < t.size
  && t.data.(t.wm_idx).version = t.watermark

let length t = t.size

(* Index of the last entry with version <= v, or -1.  The two O(1) guards
   cover the dominant access patterns: reads at or above the latest
   version, and probes below the chain's base. *)
let rank_le t v =
  if t.size = 0 || t.data.(0).version > v then -1
  else if t.data.(t.size - 1).version <= v then t.size - 1
  else if v = t.watermark && wm_idx_valid t then t.wm_idx
  else begin
    let lo = ref 0 and hi = ref (t.size - 1) and ans = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if t.data.(mid).version <= v then begin
        ans := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    !ans
  end

let grow t e =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let new_capacity = if capacity = 0 then 4 else capacity * 2 in
    let data = Array.make new_capacity e in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let insert t ~version payload =
  if t.size = 0 || t.data.(t.size - 1).version < version then begin
    (* Append: versions arrive mostly in order, so this is the common
       case — no rank search, no shift. *)
    let e = { version; payload } in
    grow t e;
    t.data.(t.size) <- e;
    t.size <- t.size + 1;
    Ok ()
  end
  else begin
    let pos = rank_le t version in
    if pos >= 0 && t.data.(pos).version = version then Error `Duplicate
    else begin
      let e = { version; payload } in
      grow t e;
      (* Shift the suffix right by one to make room at pos+1. *)
      let insert_at = pos + 1 in
      if insert_at < t.size then
        Array.blit t.data insert_at t.data (insert_at + 1) (t.size - insert_at);
      t.data.(insert_at) <- e;
      t.size <- t.size + 1;
      if insert_at <= t.wm_idx then t.wm_idx <- t.wm_idx + 1;
      Ok ()
    end
  end

let find_le t ~version =
  let pos = rank_le t version in
  if pos < 0 then None
  else begin
    let e = t.data.(pos) in
    Some (e.version, e.payload)
  end

let find_exact t ~version =
  let pos = rank_le t version in
  if pos >= 0 && t.data.(pos).version = version then Some t.data.(pos).payload
  else None

let find_next_after t ~version =
  let pos = rank_le t version in
  let next = pos + 1 in
  if next < t.size then begin
    let e = t.data.(next) in
    Some (e.version, e.payload)
  end
  else None

let update t ~version payload =
  let pos = rank_le t version in
  if pos >= 0 && t.data.(pos).version = version then begin
    t.data.(pos).payload <- payload;
    true
  end
  else false

let watermark t = t.watermark

let advance_watermark t v =
  if v > t.watermark then begin
    t.watermark <- v;
    t.wm_idx <- -1
  end

let advance_watermark_while t ~f =
  let i = ref ((if wm_idx_valid t then t.wm_idx else rank_le t t.watermark) + 1)
  in
  let stop = ref false in
  while (not !stop) && !i < t.size do
    let e = t.data.(!i) in
    if f e.payload then begin
      t.watermark <- e.version;
      t.wm_idx <- !i;
      incr i
    end
    else stop := true
  done

let iter_range t ~lo ~hi f =
  let start = rank_le t (lo - 1) + 1 in
  let rec go i =
    if i < t.size && t.data.(i).version <= hi then begin
      f t.data.(i).version t.data.(i).payload;
      go (i + 1)
    end
  in
  go start

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i).version t.data.(i).payload
  done;
  !acc

let truncate_below t ~version =
  (* Keep everything from the latest record <= version onwards. *)
  let base = rank_le t version in
  let drop = if base <= 0 then 0 else base in
  if drop = 0 then 0
  else begin
    Array.blit t.data drop t.data 0 (t.size - drop);
    t.size <- t.size - drop;
    t.wm_idx <- (if t.wm_idx >= drop then t.wm_idx - drop else -1);
    drop
  end

let versions t = fold t ~init:[] ~f:(fun acc v _ -> v :: acc) |> List.rev

let latest_version t =
  if t.size = 0 then None else Some t.data.(t.size - 1).version
