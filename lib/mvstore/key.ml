(* Interned keys: one record per distinct key name for the whole process.
   Chains, functor read sets and network routing all address keys through
   [t], so the hot paths compare and hash dense ints instead of re-hashing
   sprintf-built strings.  The intern table only grows; sequential
   experiment runs reuse the records (and their ids) for recurring key
   names, which is exactly the behaviour a per-run table would give for a
   single run, without threading an interner through every constructor.

   Domain safety (--runtime real): the table is process-global mutable
   state, so [intern] takes a mutex.  The whole lookup is inside the
   critical section — not just the miss path — because a concurrent
   [Hashtbl.add] can resize the table out from under a lock-free
   [find_opt].  The lock is uncontended in practice (the real runtime's
   worker domains never intern: read sets are staged and dependent keys
   interned on the orchestrating domain), so the cost is a single
   uncontended lock/unlock — a few tens of nanoseconds on the install
   path, which the interning regression test hammers from 4 domains to
   keep honest. *)

type t = {
  id : int;
  name : string;
  mutable memo_stamp : int;
  mutable memo : int;
      (* One generation-stamped memo slot per key.  Holders of a stamp
         (e.g. a cluster's partitioner) can cache an int per key — the
         partition id — without a side table.  Not synchronized: memoize
         from the orchestrating domain only (see [memo_int]). *)
}

let table : (string, t) Hashtbl.t = Hashtbl.create 65_536
let next_id = ref 0
let lock = Mutex.create ()

let intern name =
  Mutex.lock lock;
  let k =
    match Hashtbl.find_opt table name with
    | Some k -> k
    | None ->
        let k = { id = !next_id; name; memo_stamp = -1; memo = 0 } in
        incr next_id;
        Hashtbl.add table name k;
        k
  in
  Mutex.unlock lock;
  k

let id k = k.id
let name k = k.name
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash k = k.id
let interned_count () = !next_id

let next_stamp = ref 0

let new_stamp () =
  incr next_stamp;
  !next_stamp

(* Single-domain by design (cluster assembly and message routing run on
   the orchestrating domain).  The write order still matters for crash
   robustness of that assumption: publish the memo value before the
   stamp, so a racing same-stamp reader can never observe the new stamp
   with the old value. *)
let memo_int k ~stamp ~f =
  if k.memo_stamp = stamp then k.memo
  else begin
    let v = f k.name in
    k.memo <- v;
    k.memo_stamp <- stamp;
    v
  end

let pp ppf k = Format.fprintf ppf "%s#%d" k.name k.id
