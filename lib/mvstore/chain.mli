(** Ordered multi-version chain for one key (§III-D, Figure 4).

    Versions are kept sorted ascending; because ECC assigns versions equal
    to transaction timestamps and epochs close before computing begins,
    inserts arrive in nearly sorted order and appending is the common case.
    The paper implements the chain as a linked list of arrays; we use a
    single growable array with binary-search insertion, which has the same
    asymptotics under nearly sorted inserts and simpler invariants.

    Each chain carries the key's {e value watermark}: the version below
    (or equal to) which every record holds an immutable final value.
    Payload mutation (functor → final value) is the caller's business —
    the chain stores a mutable payload cell per version. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val insert : 'a t -> version:int -> 'a -> (unit, [ `Duplicate ]) result
(** Insert a new version.  O(1) amortised when [version] is the largest
    so far; O(n) worst case. *)

val find_le : 'a t -> version:int -> (int * 'a) option
(** Latest (version, payload) with version <= the bound — the paper's
    [Get] lookup. *)

val find_exact : 'a t -> version:int -> 'a option

val find_next_after : 'a t -> version:int -> (int * 'a) option
(** Earliest version strictly greater than the bound (used by readers that
    skip ABORTED versions downwards do not need this; processors scanning
    upwards do). *)

val update : 'a t -> version:int -> 'a -> bool
(** Replace the payload at an existing version; [false] if absent. *)

val watermark : 'a t -> int
(** Highest version v such that all records with version <= v are final.
    Initially -1 (nothing final). *)

val advance_watermark : 'a t -> int -> unit
(** Monotone: lower targets are ignored (the paper's CAS loop, lines 7–9
    of Algorithm 1, collapses to this in a single-threaded engine). *)

val advance_watermark_while : 'a t -> f:('a -> bool) -> unit
(** Advance the watermark over the contiguous run of records directly
    above it for which [f payload] holds: one rank search plus a linear
    walk, the hot-path form of repeated [find_next_after] +
    [advance_watermark]. *)

val iter_range : 'a t -> lo:int -> hi:int -> (int -> 'a -> unit) -> unit
(** Apply to every record with lo <= version <= hi, ascending. *)

val fold : 'a t -> init:'acc -> f:('acc -> int -> 'a -> 'acc) -> 'acc
(** Fold over all records, ascending. *)

val truncate_below : 'a t -> version:int -> int
(** Garbage-collect history: drop records with version < the bound,
    except the latest one at or below it (which remains the base value
    for historical reads at the horizon).  Returns the number of records
    reclaimed.  The watermark is unchanged; callers must only truncate
    below it (immutable finals). *)

val versions : 'a t -> int list
(** All version numbers, ascending (test helper). *)

val latest_version : 'a t -> int option
