(** One partition's key → version-chain table.

    A [Table.t] is the storage component of a backend (BE).  [put] enforces
    the §III-D contract: the version of a new record must lie inside the
    caller-supplied validity window (the current write epoch, or the
    straggler-optimisation window).  Visibility (in-epoch vs out-epoch) is
    enforced by the read path in the functor layer, which supplies the
    epoch-start bound.

    Keys are interned ({!Key.t}); the table hashes their dense int ids, so
    a lookup costs an int probe rather than a string hash. *)

type 'a t

type put_error =
  [ `Duplicate_version  (** the (key, version) pair already exists *)
  | `Version_out_of_window  (** version outside the allowed window *) ]

val create : ?initial_capacity:int -> unit -> 'a t

val put :
  'a t -> key:Key.t -> version:int -> lo:int -> hi:int -> 'a ->
  (unit, put_error) result
(** Insert a new version for a key; [lo]/[hi] bound the acceptable version
    range (inclusive). *)

val put_unchecked : 'a t -> key:Key.t -> version:int -> 'a ->
  (unit, [ `Duplicate_version ]) result
(** Insert without a window check — used for loading initial data at
    version zero and for deferred (dependent-key) writes, whose version was
    validated when the determinate functor was installed. *)

val chain : 'a t -> Key.t -> 'a Chain.t option
(** The key's chain, if the key has ever been written. *)

val chain_of : 'a t -> Key.t -> 'a Chain.t
(** The key's chain, created empty on first use.  Callers that touch a
    chain repeatedly should fetch the handle once and keep it. *)

val find_le : 'a t -> key:Key.t -> version:int -> (int * 'a) option

val update : 'a t -> key:Key.t -> version:int -> 'a -> bool

val iter : 'a t -> f:(Key.t -> 'a Chain.t -> unit) -> unit
(** Visit every (key, chain) pair without materialising a key list. *)

val fold_chains : 'a t -> init:'b -> f:(Key.t -> 'a Chain.t -> 'b -> 'b) -> 'b

val keys : 'a t -> Key.t list
(** All keys (unordered); test/debug helper — allocates, prefer {!iter}. *)

val key_count : 'a t -> int

val record_count : 'a t -> int
(** Total versions across all keys. *)
