module H = Hashtbl.Make (struct
  type t = Key.t

  let equal = Key.equal
  let hash = Key.id
end)

type 'a t = { chains : 'a Chain.t H.t }

type put_error = [ `Duplicate_version | `Version_out_of_window ]

(* Small default: Hashtbl resizes itself, and a big initial bucket array
   is pure allocation cost for short-lived engines (recovery replicas,
   tests, benchmarks).  Bulk loaders that know their key count can pass
   [initial_capacity]. *)
let create ?(initial_capacity = 64) () =
  { chains = H.create initial_capacity }

let chain_of t key =
  match H.find_opt t.chains key with
  | Some c -> c
  | None ->
      let c = Chain.create () in
      H.add t.chains key c;
      c

let put_unchecked t ~key ~version payload =
  match Chain.insert (chain_of t key) ~version payload with
  | Ok () -> Ok ()
  | Error `Duplicate -> Error `Duplicate_version

let put t ~key ~version ~lo ~hi payload =
  if version < lo || version > hi then Error `Version_out_of_window
  else put_unchecked t ~key ~version payload

let chain t key = H.find_opt t.chains key

let find_le t ~key ~version =
  match H.find_opt t.chains key with
  | None -> None
  | Some c -> Chain.find_le c ~version

let update t ~key ~version payload =
  match H.find_opt t.chains key with
  | None -> false
  | Some c -> Chain.update c ~version payload

let iter t ~f = H.iter f t.chains

let fold_chains t ~init ~f = H.fold f t.chains init

let keys t = H.fold (fun k _ acc -> k :: acc) t.chains []

let key_count t = H.length t.chains

let record_count t = H.fold (fun _ c acc -> acc + Chain.length c) t.chains 0
