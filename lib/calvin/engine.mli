(** Calvin behind the {!Kernel.Intf.ENGINE} signature.

    Transactions execute from their [static_form] facet: the write list
    is encoded as a {!Functor_cc.Value.t} and shipped through one generic
    stored procedure (["kernel_apply"]) that interprets it with
    {!Kernel.Apply} against a functor registry — replacing the
    hand-written per-workload Calvin procedures.  Workload handlers
    registered through [register] land in that functor registry and are
    evaluated inside the procedure. *)

include Kernel.Intf.ENGINE

val options_of : ?seed:int -> Kernel.Params.t -> Cluster.options

val set_trace :
  cluster -> (src:Net.Address.t -> dst:Net.Address.t -> unit) -> unit
(** Observe every send on the cluster's RPC plane (chaos tracing). *)

val drop_stats : cluster -> Net.Network.drop_stats

val apply_proc : Functor_cc.Registry.t -> Ctxn.proc
(** The generic interpreter procedure, exposed for reuse by other
    [Ctxn]-based engines (2PL). *)

val lower : version:int -> Kernel.Txn.t -> Ctxn.t
(** Lower a neutral transaction to a ["kernel_apply"] invocation whose
    read/write sets come from the static facet. *)
