module Value = Functor_cc.Value

type inflight = {
  routed : Message.routed;
  participants : int list;
  mutable remote_pending : int;
  mutable local_reads_done : bool;
  mutable gathered : (string * Value.t option) list;
  mutable exec_started : bool;
  mutable sched_start : int;
}

type done_track = {
  submitted_at : int;
  mutable awaiting : int;
  on_complete : (unit -> unit) option;
}

type t = {
  sim : Sim.Engine.t;
  rpc : Message.rpc;
  address : Net.Address.t;
  node_id : int;
  n_servers : int;
  partition_of : string -> int;
  addr_of_partition : int -> Net.Address.t;
  registry : Ctxn.registry;
  config : Config.t;
  metrics : Sim.Metrics.t;
  obs : Obs.Ctl.t option;
  (* Hot-path metric handles, resolved once at creation. *)
  m_submitted : int ref;
  m_committed : int ref;
  m_missing_proc : int ref;
  h_stage_seq : Sim.Stats.Histogram.t;
  h_stage_lockread : Sim.Stats.Histogram.t;
  h_stage_proc : Sim.Stats.Histogram.t;
  h_lat_total : Sim.Stats.Histogram.t;
  store : (string, Value.t) Hashtbl.t;
  lm_pool : Sim.Worker_pool.t;  (* the single-threaded lock manager *)
  exec_pool : Sim.Worker_pool.t;
  mutable lm : Lock_manager.t;
  (* sequencer *)
  mutable seq_buffer : (int * Ctxn.t * (unit -> unit) option) list;
      (* (submitted_at, txn, completion), reverse order *)
  mutable seq_epoch : int;
  (* scheduler *)
  batches : (int, (int, Message.routed list) Hashtbl.t) Hashtbl.t;
      (* epoch -> seq_id -> txns *)
  mutable next_epoch : int;  (* next epoch to admit, in order *)
  inflight : (int, inflight) Hashtbl.t;
  pending_reads :
    (int, (string * Value.t option) list list ref) Hashtbl.t;
      (* reads that arrived before the batch *)
  dones : (int, done_track) Hashtbl.t;  (* origin-side completion *)
}

let read_local t key = Hashtbl.find_opt t.store key

(* Lifecycle trace emit: one option test when tracing is off. *)
let emit t ~txn ~stage ?(ts = -1) ?arg () =
  match t.obs with
  | None -> ()
  | Some ctl ->
      let ts = if ts < 0 then Sim.Engine.now t.sim else ts in
      Obs.Ctl.emit ctl ~txn ~stage ~node:t.node_id ~ts ?arg ()

let load_initial t ~key value =
  if t.partition_of key <> t.node_id then
    invalid_arg "Calvin.Server.load_initial: key not owned";
  Hashtbl.replace t.store key value

let lock_queue_depth t = Sim.Worker_pool.queue_length t.lm_pool
let inflight_count t = Hashtbl.length t.inflight

let local_keys t keys = List.filter (fun k -> t.partition_of k = t.node_id) keys

(* ---- executor ---------------------------------------------------------- *)

let send_done t (fl : inflight) =
  Net.Rpc.send t.rpc ~src:t.address
    ~dst:(t.addr_of_partition fl.routed.Message.origin)
    (Message.Done { uid = fl.routed.Message.uid; partition = t.node_id })

(* Locks released (through the lock-manager thread) after execution. *)
let release_locks t (fl : inflight) =
  let txn = fl.routed.Message.txn in
  let nlocal =
    List.length (local_keys t (txn.Ctxn.read_set @ txn.Ctxn.write_set))
  in
  let cost = max t.config.Config.cost_lock_us (nlocal * t.config.Config.cost_lock_us) in
  Sim.Worker_pool.submit t.lm_pool ~cost (fun () ->
      Lock_manager.release t.lm ~uid:fl.routed.Message.uid;
      send_done t fl)

let maybe_execute t (fl : inflight) =
  if
    fl.local_reads_done && fl.remote_pending = 0 && not fl.exec_started
  then begin
    fl.exec_started <- true;
    let exec_start = Sim.Engine.now t.sim in
    emit t ~txn:fl.routed.Message.uid ~stage:Obs.Trace.Exec_start ();
    Sim.Stats.Histogram.add t.h_stage_lockread (exec_start - fl.sched_start);
    let txn = fl.routed.Message.txn in
    let local_writes_estimate =
      List.length (local_keys t txn.Ctxn.write_set)
    in
    let cost =
      t.config.Config.cost_exec_us
      + (local_writes_estimate * t.config.Config.cost_write_us)
    in
    Sim.Worker_pool.submit t.exec_pool ~cost (fun () ->
        (match Ctxn.find t.registry txn.Ctxn.proc with
        | None -> incr t.m_missing_proc
        | Some proc ->
            let writes = proc ~txn ~reads:fl.gathered in
            List.iter
              (fun (key, v) ->
                if t.partition_of key = t.node_id then
                  Hashtbl.replace t.store key v)
              writes);
        Sim.Stats.Histogram.add t.h_stage_proc
          (Sim.Engine.now t.sim - exec_start);
        emit t ~txn:fl.routed.Message.uid ~stage:Obs.Trace.Exec_done ();
        Hashtbl.remove t.inflight fl.routed.Message.uid;
        release_locks t fl)
  end

(* All local locks held: read the local fragment of the read set and
   broadcast it to the other participants (redundant execution needs the
   full read set everywhere). *)
let on_locks_ready t uid =
  match Hashtbl.find_opt t.inflight uid with
  | None -> ()
  | Some fl ->
      emit t ~txn:uid ~stage:Obs.Trace.Locks_acquired ();
      let txn = fl.routed.Message.txn in
      let locals = local_keys t txn.Ctxn.read_set in
      let cost =
        max t.config.Config.cost_read_us
          (List.length locals * t.config.Config.cost_read_us)
      in
      Sim.Worker_pool.submit t.exec_pool ~cost (fun () ->
          let values =
            List.map (fun key -> (key, Hashtbl.find_opt t.store key)) locals
          in
          fl.gathered <- values @ fl.gathered;
          fl.local_reads_done <- true;
          List.iter
            (fun p ->
              if p <> t.node_id then
                Net.Rpc.send t.rpc ~src:t.address
                  ~dst:(t.addr_of_partition p)
                  (Message.Reads { uid; from = t.node_id; values }))
            fl.participants;
          maybe_execute t fl)

(* ---- scheduler --------------------------------------------------------- *)

let admit_txn t (routed : Message.routed) =
  let txn = routed.Message.txn in
  let participants = Ctxn.participants ~partition_of:t.partition_of txn in
  let fl =
    { routed; participants;
      remote_pending = List.length participants - 1;
      local_reads_done = false; gathered = []; exec_started = false;
      sched_start = 0 }
  in
  Hashtbl.replace t.inflight routed.Message.uid fl;
  (* Merge reads that raced ahead of the batch. *)
  (match Hashtbl.find_opt t.pending_reads routed.Message.uid with
  | Some buffered ->
      Hashtbl.remove t.pending_reads routed.Message.uid;
      List.iter
        (fun values ->
          fl.gathered <- values @ fl.gathered;
          fl.remote_pending <- fl.remote_pending - 1)
        !buffered
  | None -> ());
  let lock_keys =
    List.map (fun k -> (k, Lock_manager.Read))
      (local_keys t txn.Ctxn.read_set)
    @ List.map (fun k -> (k, Lock_manager.Write))
        (local_keys t txn.Ctxn.write_set)
  in
  let cost =
    max t.config.Config.cost_lock_us
      (List.length lock_keys * t.config.Config.cost_lock_us)
  in
  Sim.Worker_pool.submit t.lm_pool ~cost (fun () ->
      fl.sched_start <- Sim.Engine.now t.sim;
      emit t ~txn:routed.Message.uid ~stage:Obs.Trace.Scheduled ();
      Sim.Stats.Histogram.add t.h_stage_seq
        (fl.sched_start - routed.Message.submitted_at);
      Lock_manager.request t.lm ~uid:routed.Message.uid ~keys:lock_keys)

let rec try_admit_epochs t =
  match Hashtbl.find_opt t.batches t.next_epoch with
  | Some per_seq when Hashtbl.length per_seq = t.n_servers ->
      let epoch = t.next_epoch in
      t.next_epoch <- epoch + 1;
      Hashtbl.remove t.batches epoch;
      (* Deterministic global order: sequencer id, then batch index. *)
      for seq_id = 0 to t.n_servers - 1 do
        match Hashtbl.find_opt per_seq seq_id with
        | Some txns -> List.iter (admit_txn t) txns
        | None -> ()
      done;
      try_admit_epochs t
  | Some _ | None -> ()

let on_batch t ~epoch ~seq_id txns =
  let per_seq =
    match Hashtbl.find_opt t.batches epoch with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 8 in
        Hashtbl.add t.batches epoch h;
        h
  in
  Hashtbl.replace per_seq seq_id txns;
  try_admit_epochs t

(* ---- sequencer --------------------------------------------------------- *)

let submit ?k t txn =
  incr t.m_submitted;
  t.seq_buffer <- (Sim.Engine.now t.sim, txn, k) :: t.seq_buffer

let ship_epoch t =
  let epoch = t.seq_epoch in
  t.seq_epoch <- epoch + 1;
  let txns = List.rev t.seq_buffer in
  t.seq_buffer <- [];
  let routed =
    List.mapi
      (fun idx (submitted_at, txn, _k) ->
        { Message.uid = Message.uid_make ~epoch ~seq_id:t.node_id ~idx;
          origin = t.node_id; submitted_at; txn })
      txns
  in
  List.iter
    (fun (r : Message.routed) ->
      emit t ~txn:r.Message.uid ~stage:Obs.Trace.Submit
        ~ts:r.Message.submitted_at ();
      emit t ~txn:r.Message.uid ~stage:Obs.Trace.Sequenced ~arg:epoch ())
    routed;
  (* Participant sets are computed once per transaction and reused for
     completion tracking and per-destination routing (previously they were
     recomputed for every destination server). *)
  let routed_parts =
    List.map
      (fun (r : Message.routed) ->
        (r, Ctxn.participants ~partition_of:t.partition_of r.Message.txn))
      routed
  in
  (* Register origin-side completion tracking. *)
  List.iter2
    (fun ((r : Message.routed), participants) (_, _, k) ->
      Hashtbl.replace t.dones r.Message.uid
        { submitted_at = r.Message.submitted_at;
          awaiting = List.length participants;
          on_complete = k })
    routed_parts txns;
  (* One batch message to every server (empty ones keep the barrier). *)
  for dst = 0 to t.n_servers - 1 do
    let for_dst =
      List.filter_map
        (fun ((r : Message.routed), participants) ->
          if List.exists (fun p -> p = dst) participants then Some r else None)
        routed_parts
    in
    Net.Rpc.send t.rpc ~src:t.address ~dst:(t.addr_of_partition dst)
      (Message.Batch { epoch; seq_id = t.node_id; txns = for_dst })
  done;
  (* Sequencing work is charged per shipped transaction. *)
  if routed <> [] then
    Sim.Worker_pool.submit t.exec_pool
      ~cost:(List.length routed * t.config.Config.cost_seq_us)
      (fun () -> ())

let on_done t ~uid =
  match Hashtbl.find_opt t.dones uid with
  | None -> ()
  | Some d ->
      d.awaiting <- d.awaiting - 1;
      if d.awaiting = 0 then begin
        Hashtbl.remove t.dones uid;
        incr t.m_committed;
        emit t ~txn:uid ~stage:Obs.Trace.Committed ();
        Sim.Stats.Histogram.add t.h_lat_total
          (Sim.Engine.now t.sim - d.submitted_at);
        match d.on_complete with Some k -> k () | None -> ()
      end

(* ---- wiring ------------------------------------------------------------ *)

let on_reads t ~uid ~values =
  match Hashtbl.find_opt t.inflight uid with
  | Some fl ->
      fl.gathered <- values @ fl.gathered;
      fl.remote_pending <- fl.remote_pending - 1;
      maybe_execute t fl
  | None ->
      let buffered =
        match Hashtbl.find_opt t.pending_reads uid with
        | Some r -> r
        | None ->
            let r = ref [] in
            Hashtbl.add t.pending_reads uid r;
            r
      in
      buffered := values :: !buffered

let create ~sim ~rpc ~addr ~node_id ~n_servers ~partition_of
    ~addr_of_partition ~registry ~config ~metrics ?obs () =
  let executors = max 1 (config.Config.cores - 2) in
  let c = Sim.Metrics.counter metrics in
  let h = Sim.Metrics.histogram metrics in
  let t =
    { sim; rpc; address = addr; node_id; n_servers; partition_of;
      addr_of_partition; registry; config; metrics; obs;
      m_submitted = c "calvin.submitted";
      m_committed = c "calvin.committed";
      m_missing_proc = c "calvin.missing_proc";
      h_stage_seq = h "calvin.stage_seq_us";
      h_stage_lockread = h "calvin.stage_lockread_us";
      h_stage_proc = h "calvin.stage_proc_us";
      h_lat_total = h "calvin.lat_total_us";
      store = Hashtbl.create 65536;
      lm_pool = Sim.Worker_pool.create sim ~workers:1;
      exec_pool = Sim.Worker_pool.create sim ~workers:executors;
      lm = Lock_manager.create ~on_ready:(fun _ -> ());  (* rewired below *)
      seq_buffer = []; seq_epoch = 0;
      batches = Hashtbl.create 16; next_epoch = 0;
      inflight = Hashtbl.create 4096;
      pending_reads = Hashtbl.create 256;
      dones = Hashtbl.create 4096 }
  in
  t.lm <- Lock_manager.create ~on_ready:(fun uid -> on_locks_ready t uid);
  Net.Rpc.serve_oneway rpc addr (fun ~src:_ wire ->
      match wire with
      | Message.Batch { epoch; seq_id; txns } ->
          Sim.Worker_pool.submit t.exec_pool ~cost:config.Config.cost_msg_us
            (fun () -> on_batch t ~epoch ~seq_id txns)
      | Message.Reads { uid; from = _; values } ->
          Sim.Worker_pool.submit t.exec_pool ~cost:config.Config.cost_msg_us
            (fun () -> on_reads t ~uid ~values)
      | Message.Done { uid; partition = _ } -> on_done t ~uid);
  t

let start t =
  let rec tick () =
    ship_epoch t;
    Sim.Engine.after t.sim t.config.Config.epoch_us tick
  in
  Sim.Engine.after t.sim t.config.Config.epoch_us tick
