(** Assembly of a simulated Calvin deployment: [n] servers, each hosting a
    sequencer, a scheduler with its single-threaded lock manager, executor
    workers and one partition; no replication (fault tolerance disabled,
    as in the paper's comparison). *)

type options = {
  n_servers : int;
  config : Config.t;
  latency : Net.Latency.t;
  partitioner : [ `Hash | `Prefix ];
  seed : int;
  faults : Net.Faults.t option;
      (** fault oracle for the shared RPC plane; Calvin's sequencer
          barrier tolerates no loss, so pair it with
          [Net.Faults.Reliable] transport.  [None] = fault-free. *)
  obs : Obs.Ctl.t option;
      (** observability handle: lifecycle tracing on every server plus
          lock-queue / in-flight gauges; [None] = untraced *)
}

val default_options : options

type t

val create : ?registry:Ctxn.registry -> options -> t
(** [registry] defaults to [Ctxn.with_builtins ()]. *)

val start : t -> unit
(** Start every sequencer's epoch timer. *)

val set_trace : t -> (src:Net.Address.t -> dst:Net.Address.t -> unit) -> unit
(** Observe every send (chaos trace hashing). *)

val drop_stats : t -> Net.Network.drop_stats

val sim : t -> Sim.Engine.t
val metrics : t -> Sim.Metrics.t
val n_servers : t -> int
val server : t -> int -> Server.t
val partition_of : t -> string -> int

val load : t -> key:string -> Functor_cc.Value.t -> unit

val submit : ?k:(unit -> unit) -> t -> fe:int -> Ctxn.t -> unit

val run_for : t -> int -> unit
