module Value = Functor_cc.Value

let name = "calvin"

type cluster = {
  c : Cluster.t;
  funreg : Functor_cc.Registry.t;
  seq : int ref;  (* per-cluster version for handler contexts *)
}

let apply_proc funreg : Ctxn.proc =
 fun ~txn ~reads ->
  let ops = Kernel.Txn.decode_writes (List.nth txn.Ctxn.args 0) in
  let version = Value.to_int (List.nth txn.Ctxn.args 1) in
  match Kernel.Apply.writes ~registry:funreg ~version ~reads ops with
  | Some writes -> writes
  | None ->
      (* Deterministic stored procedures cannot abort (the open-source
         Calvin restriction the paper compares against); an aborting
         handler degrades to writing nothing. *)
      []

let lower ~version txn =
  let d = Kernel.Txn.static_form txn in
  { Ctxn.proc = "kernel_apply";
    read_set = Kernel.Txn.read_set d;
    write_set = Kernel.Txn.write_keys d;
    args = [ Kernel.Txn.encode_writes d.Kernel.Txn.writes; Value.int version ] }

let options_of ?seed (params : Kernel.Params.t) =
  let base = Cluster.default_options in
  { base with
    Cluster.n_servers = params.n_servers;
    partitioner = `Prefix;
    seed = (match seed with Some s -> s | None -> base.Cluster.seed);
    faults = params.faults;
    obs = params.obs;
    config =
      (match params.epoch_us with
      | Some epoch_us -> { Config.default with Config.epoch_us }
      | None -> Config.default) }

let create ?seed params =
  let funreg = Functor_cc.Registry.with_builtins () in
  let creg = Ctxn.with_builtins () in
  Ctxn.register creg "kernel_apply" (apply_proc funreg);
  { c = Cluster.create ~registry:creg (options_of ?seed params);
    funreg;
    seq = ref 0 }

let set_trace cl f = Cluster.set_trace cl.c f
let drop_stats cl = Cluster.drop_stats cl.c
let register cl name h = Functor_cc.Registry.register cl.funreg name h
let load cl key v = Cluster.load cl.c ~key v
let start cl = Cluster.start cl.c
let stop (_ : cluster) = ()
let sim cl = Cluster.sim cl.c
let metrics cl = Cluster.metrics cl.c
let n_servers cl = Cluster.n_servers cl.c

let submit cl ~fe txn ~k =
  incr cl.seq;
  Cluster.submit cl.c ~fe
    (lower ~version:!(cl.seq) txn)
    ~k:(fun () -> k Kernel.Txn.Ok)

let read_committed cl key =
  Server.read_local (Cluster.server cl.c (Cluster.partition_of cl.c key)) key

let committed_key = "calvin.committed"
let latency_key = "calvin.lat_total_us"

(* Calvin procs cannot abort, so there is no abort counter to report —
   an empty list is the truthful answer (the old driver read
   never-incremented "calvin.aborted_*" counters). *)
let abort_keys = []
let counter_keys = [ ("missing proc", "calvin.missing_proc") ]

let stage_keys =
  [ ("sequencing", "calvin.stage_seq_us");
    ("locking and read", "calvin.stage_lockread_us");
    ("processing", "calvin.stage_proc_us") ]
