(** One Calvin server: sequencer + scheduler + executors over a
    single-version in-memory partition.

    Pipeline per transaction (Thomson et al. 2012, as summarised in the
    paper's §V-D):

    + the {e sequencer} on the origin server buffers client requests and
      ships them once per epoch to every participant's scheduler (one
      batch message per server per epoch — the scheduler barrier);
    + the {e scheduler} admits epochs in order and funnels lock
      acquisition for every transaction, in the global deterministic
      order, through a single-threaded lock manager;
    + once all local locks are granted, an {e executor} worker reads the
      local part of the read set, broadcasts it to the other participants,
      waits for their reads, redundantly executes the stored procedure,
      applies the local writes, and releases the locks (again through the
      lock-manager thread).

    Transactions never abort (deterministic execution); the origin counts
    a transaction complete when every participant reports Done. *)

type t

val create :
  sim:Sim.Engine.t ->
  rpc:Message.rpc ->
  addr:Net.Address.t ->
  node_id:int ->
  n_servers:int ->
  partition_of:(string -> int) ->
  addr_of_partition:(int -> Net.Address.t) ->
  registry:Ctxn.registry ->
  config:Config.t ->
  metrics:Sim.Metrics.t ->
  ?obs:Obs.Ctl.t ->
  unit -> t
(** [obs] turns on lifecycle tracing (submit / sequenced / scheduled /
    locks / exec / committed) for transactions this server touches. *)

val start : t -> unit
(** Start the sequencer's epoch timer. *)

val submit : ?k:(unit -> unit) -> t -> Ctxn.t -> unit
(** Accept a client transaction at this server's sequencer; [k] fires when
    every participant has reported completion (closed-loop drivers). *)

val load_initial : t -> key:string -> Functor_cc.Value.t -> unit

val read_local : t -> string -> Functor_cc.Value.t option
(** Direct storage peek (tests and oracle checks only). *)

val lock_queue_depth : t -> int
(** Jobs waiting on the lock-manager thread (saturation diagnostics). *)

val inflight_count : t -> int
(** Admitted transactions not yet executed locally — gauge probe. *)
