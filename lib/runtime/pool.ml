(** Fixed pool of OCaml 5 worker domains for the real-parallelism runtime.

    The design is the classic per-worker-queue + work-stealing shape:

    - [create ~domains] spawns [domains] worker domains, each owning one
      mutex-guarded FIFO.  Producers (the main/orchestrating domain — the
      queues are MPSC-safe but ALOHA only ever submits from the domain
      driving the simulation) push round-robin with {!submit}, or to a
      chosen queue with {!submit_to} (used by tests to manufacture skew).
    - A worker first drains its own queue, then scans the other queues
      and steals from the first non-empty one ([Mutex.try_lock] so a
      busy victim is skipped rather than waited on).  Only when every
      queue looks empty does it sleep on the shared idle bell.
    - {!run_batch} is the stratum barrier: it slices the task array into
      contiguous chunks (a few per worker, so stealing can still even
      out skew without paying one queue round-trip per task), submits
      them, and blocks until the pool's in-flight count returns to zero.
    - {!shutdown} drains everything already submitted, then joins the
      domains; it is idempotent, and {!submit} after shutdown raises.

    Memory-model note: every task result handed between domains crosses
    at least one [Mutex] acquire/release or [Atomic] edge (queue mutex on
    the way in, the in-flight atomic + completion mutex on the way out),
    so plain mutable writes made by a task happen-before any read the
    orchestrator — or a task of a later batch — performs after the
    barrier.  Callers rely on this: stratum [k] freely reads record
    fields written by stratum [k-1] without per-field atomics. *)

type worker = {
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  (* per-worker occupancy counters: written only by the owning worker
     domain, read (racily, gauge-style) by the orchestrator *)
  w_completed : int Atomic.t;
  w_stolen : int Atomic.t;
}

type t = {
  workers : worker array;
  mutable handles : unit Domain.t array;
  stop : bool Atomic.t;
  (* tasks submitted and not yet finished; the barrier watches this *)
  in_flight : int Atomic.t;
  completed : int Atomic.t;
  stolen : int Atomic.t;
  tasks_raised : int Atomic.t;
  busy : int Atomic.t;
  busy_peak : int Atomic.t;
  queue_peak : int Atomic.t;
  (* idle bell: workers sleep here; any submit (or shutdown) rings it *)
  bell : Mutex.t;
  bell_cv : Condition.t;
  work_sig : int Atomic.t;
  (* completion: run_batch/drain sleep here; the last finisher rings it *)
  done_lock : Mutex.t;
  done_cv : Condition.t;
  rr : int Atomic.t;
  mutable shut : bool;
}

let n_workers t = Array.length t.workers
let completed t = Atomic.get t.completed
let stolen t = Atomic.get t.stolen
let tasks_raised t = Atomic.get t.tasks_raised
let busy_workers t = Atomic.get t.busy
let busy_peak t = Atomic.get t.busy_peak
let queue_peak t = Atomic.get t.queue_peak

(* Approximate (racy reads are fine for a gauge): submitted minus running. *)
let queue_depth t = max 0 (Atomic.get t.in_flight - Atomic.get t.busy)

(* Per-worker (tasks completed, tasks stolen, queue length) snapshot.  The
   counters are cumulative; the orchestrator diffs consecutive snapshots
   around a stratum barrier for per-stratum occupancy.  The queue length
   is a racy plain read — a gauge, like {!queue_depth}. *)
let worker_stats t =
  Array.map
    (fun w ->
      (Atomic.get w.w_completed, Atomic.get w.w_stolen, Queue.length w.queue))
    t.workers

let rec bump_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then bump_max cell v

let pop_own w =
  Mutex.lock w.lock;
  let task = if Queue.is_empty w.queue then None else Some (Queue.pop w.queue) in
  Mutex.unlock w.lock;
  task

(* Steal one task from the first victim whose lock we can grab non-empty.
   [self] is scanned last (it is rechecked anyway before sleeping). *)
let steal t ~self =
  let n = Array.length t.workers in
  let found = ref None in
  let i = ref 1 in
  while !found = None && !i <= n do
    let w = t.workers.((self + !i) mod n) in
    if Mutex.try_lock w.lock then begin
      if not (Queue.is_empty w.queue) then found := Some (Queue.pop w.queue);
      Mutex.unlock w.lock
    end;
    incr i
  done;
  !found

let run_task t ~self task =
  let b = Atomic.fetch_and_add t.busy 1 + 1 in
  bump_max t.busy_peak b;
  (try task ()
   with _ -> Atomic.incr t.tasks_raised);
  Atomic.decr t.busy;
  Atomic.incr t.completed;
  Atomic.incr t.workers.(self).w_completed;
  (* Last finisher rings the completion bell for the barrier.  The lock
     round-trip makes the decrement visible to a sleeping waiter. *)
  if Atomic.fetch_and_add t.in_flight (-1) = 1 then begin
    Mutex.lock t.done_lock;
    Condition.broadcast t.done_cv;
    Mutex.unlock t.done_lock
  end

let worker_loop t self =
  let w = t.workers.(self) in
  let running = ref true in
  while !running do
    (* Read the signal BEFORE scanning: a submit that lands mid-scan
       bumps [work_sig], the recheck below sees the mismatch, and we
       rescan instead of sleeping through the wakeup. *)
    let seen = Atomic.get t.work_sig in
    match pop_own w with
    | Some task -> run_task t ~self task
    | None -> (
        match steal t ~self with
        | Some task ->
            Atomic.incr t.stolen;
            Atomic.incr w.w_stolen;
            run_task t ~self task
        | None ->
            (* Nothing anywhere.  Exit on stop (queues are drained first
               by construction: stop is only checked after a full failed
               scan), else sleep until a submit bumps [work_sig]. *)
            if Atomic.get t.stop then running := false
            else begin
              Mutex.lock t.bell;
              while
                Atomic.get t.work_sig = seen && not (Atomic.get t.stop)
              do
                Condition.wait t.bell_cv t.bell
              done;
              Mutex.unlock t.bell
            end)
  done

let create ~domains =
  if domains < 1 then invalid_arg "Runtime.Pool.create: domains < 1";
  let t =
    { workers =
        Array.init domains (fun _ ->
            { queue = Queue.create (); lock = Mutex.create ();
              w_completed = Atomic.make 0; w_stolen = Atomic.make 0 });
      handles = [||];
      stop = Atomic.make false;
      in_flight = Atomic.make 0;
      completed = Atomic.make 0;
      stolen = Atomic.make 0;
      tasks_raised = Atomic.make 0;
      busy = Atomic.make 0;
      busy_peak = Atomic.make 0;
      queue_peak = Atomic.make 0;
      bell = Mutex.create ();
      bell_cv = Condition.create ();
      work_sig = Atomic.make 0;
      done_lock = Mutex.create ();
      done_cv = Condition.create ();
      rr = Atomic.make 0;
      shut = false }
  in
  t.handles <-
    Array.init domains (fun i -> Domain.spawn (fun () -> worker_loop t i));
  t

let ring t =
  Mutex.lock t.bell;
  Atomic.incr t.work_sig;
  Condition.broadcast t.bell_cv;
  Mutex.unlock t.bell

let submit_to t ~worker task =
  if t.shut then invalid_arg "Runtime.Pool: submit after shutdown";
  let w = t.workers.(worker mod Array.length t.workers) in
  Atomic.incr t.in_flight;
  Mutex.lock w.lock;
  Queue.push task w.queue;
  let len = Queue.length w.queue in
  Mutex.unlock w.lock;
  bump_max t.queue_peak len;
  ring t

let submit t task =
  let i = Atomic.fetch_and_add t.rr 1 in
  submit_to t ~worker:(i mod Array.length t.workers) task

(* Barrier: wait until every submitted task (from any producer) finished. *)
let drain t =
  Mutex.lock t.done_lock;
  while Atomic.get t.in_flight > 0 do
    Condition.wait t.done_cv t.done_lock
  done;
  Mutex.unlock t.done_lock

let run_batch t tasks =
  let n = Array.length tasks in
  if n > 0 then begin
    let nw = Array.length t.workers in
    (* A few chunks per worker: big enough to amortize the queue mutex,
       small enough that stealing can rebalance a skewed stratum. *)
    let chunks = min n (max 1 (nw * 4)) in
    let base = n / chunks and rem = n mod chunks in
    let off = ref 0 in
    for c = 0 to chunks - 1 do
      let len = base + if c < rem then 1 else 0 in
      let lo = !off in
      off := lo + len;
      if len > 0 then
        submit_to t ~worker:c (fun () ->
            for i = lo to lo + len - 1 do
              tasks.(i) ()
            done)
    done;
    drain t
  end

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    (* Let pending work finish: workers only exit once a full scan finds
       every queue empty, so nothing submitted before shutdown is lost. *)
    Atomic.set t.stop true;
    ring t;
    Array.iter Domain.join t.handles;
    t.handles <- [||]
  end
