(** Named counters and latency recorders for a simulation run.

    A [Metrics.t] is plumbed through a cluster so that every component can
    record events under stable names; the harness reads them out at the end
    of the measurement window.  Counter and recorder names are created on
    first use. *)

type t

val create : unit -> t

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val get : t -> string -> int
(** 0 when the counter was never touched. *)

val counter : t -> string -> int ref
(** Static handle to a named counter: resolve once at component creation,
    then bump with [incr r] — no string hash on the hot path.  The ref is
    zeroed (not replaced) by {!reset}, so handles stay valid across
    warm-up resets. *)

val record_latency : t -> string -> int -> unit
(** Record a microsecond sample under a named histogram. *)

val histogram : t -> string -> Stats.Histogram.t
(** Static handle to a named histogram, same contract as {!counter}:
    cleared in place by {!reset}, never replaced. *)

val latency : t -> string -> Stats.Histogram.t option

val record_value : t -> string -> float -> unit
(** Record a float sample under a named summary. *)

val value : t -> string -> Stats.Summary.t option

val set_gauge : t -> string -> float -> unit
(** Publish the current value of a named gauge (last write wins; a gauge
    is an instantaneous level, not an accumulator). *)

val gauge : t -> string -> float ref
(** Static handle to a named gauge, same contract as {!counter}: zeroed
    in place by {!reset}, never replaced. *)

val gauge_value : t -> string -> float
(** 0.0 when the gauge was never set. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val gauges : t -> (string * float) list
(** All gauges with their latest values, sorted by name. *)

val reset : t -> unit
(** Zero every counter / histogram / summary / gauge (names are kept).
    Used to discard the warm-up window. *)
