module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity;
      total = 0.0 }

  let add t x =
    t.count <- t.count + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = t.mean
  let min t = t.min
  let max t = t.max
  let total t = t.total

  let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)

  let stddev t = sqrt (variance t)

  let merge a b =
    (* Chan et al. parallel merge of Welford accumulators. *)
    if a.count = 0 then
      { count = b.count; mean = b.mean; m2 = b.m2; min = b.min; max = b.max;
        total = b.total }
    else if b.count = 0 then
      { count = a.count; mean = a.mean; m2 = a.m2; min = a.min; max = a.max;
        total = a.total }
    else begin
      let n = a.count + b.count in
      let delta = b.mean -. a.mean in
      let mean =
        a.mean +. (delta *. float_of_int b.count /. float_of_int n)
      in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta
            *. float_of_int a.count *. float_of_int b.count
            /. float_of_int n)
      in
      { count = n; mean; m2;
        min = Float.min a.min b.min;
        max = Float.max a.max b.max;
        total = a.total +. b.total }
    end

  let clear t =
    t.count <- 0;
    t.mean <- 0.0;
    t.m2 <- 0.0;
    t.min <- infinity;
    t.max <- neg_infinity;
    t.total <- 0.0
end

module Histogram = struct
  (* Log-bucketed histogram: samples are classified by (octave, 4-bit
     mantissa), i.e. 16 sub-buckets per power of two.  Values < 16 get
     exact buckets.  This caps relative error at ~1/16 per bucket, which is
     plenty for latency percentiles. *)

  let sub_bits = 4
  let sub = 1 lsl sub_bits (* 16 *)
  let octaves = 48
  let nbuckets = octaves * sub

  type t = {
    counts : int array;
    mutable count : int;
    mutable total : float;
    mutable min : int;
    mutable max : int;
  }

  let create () =
    { counts = Array.make nbuckets 0; count = 0; total = 0.0;
      min = max_int; max = 0 }

  let bucket_of_value v =
    if v < sub then v
    else begin
      let msb = 62 - Bits.count_leading_zeros v in
      let shift = msb - sub_bits in
      let mantissa = (v lsr shift) land (sub - 1) in
      let idx = ((msb - sub_bits + 1) * sub) + mantissa in
      if idx >= nbuckets then nbuckets - 1 else idx
    end

  (* Representative (lower bound) value for a bucket, used when answering
     percentile queries. *)
  let value_of_bucket i =
    if i < sub then i
    else begin
      let octave = (i / sub) + sub_bits - 1 in
      let mantissa = i land (sub - 1) in
      (1 lsl octave) lor (mantissa lsl (octave - sub_bits))
    end

  let add t v =
    if v < 0 then invalid_arg "Histogram.add: negative sample";
    let b = bucket_of_value v in
    t.counts.(b) <- t.counts.(b) + 1;
    t.count <- t.count + 1;
    t.total <- t.total +. float_of_int v;
    if v < t.min then t.min <- v;
    if v > t.max then t.max <- v

  let count t = t.count

  let mean t = if t.count = 0 then 0.0 else t.total /. float_of_int t.count

  let min t = if t.count = 0 then 0 else t.min

  let max t = t.max

  let percentile t p =
    if p <= 0.0 || p > 100.0 then invalid_arg "Histogram.percentile";
    if t.count = 0 then 0
    else begin
      let target =
        let raw = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
        if raw < 1 then 1 else raw
      in
      (* The topmost sample is known exactly; answering p=100 (or any
         query whose rank reaches the last sample) from the bucket lower
         bound would under-report the max. *)
      if target >= t.count then t.max
      else begin
        let rec scan i seen =
          if i >= nbuckets then t.max
          else begin
            let seen = seen + t.counts.(i) in
            if seen >= target then
              (* Clamp to the recorded extremes for exactness at the
                 tails. *)
              let v = value_of_bucket i in
              if v < t.min then t.min else if v > t.max then t.max else v
            else scan (i + 1) seen
          end
        in
        scan 0 0
      end
    end

  let merge_into ~dst ~src =
    Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
    dst.count <- dst.count + src.count;
    dst.total <- dst.total +. src.total;
    if src.count > 0 then begin
      if src.min < dst.min then dst.min <- src.min;
      if src.max > dst.max then dst.max <- src.max
    end

  let clear t =
    Array.fill t.counts 0 nbuckets 0;
    t.count <- 0;
    t.total <- 0.0;
    t.min <- max_int;
    t.max <- 0
end
