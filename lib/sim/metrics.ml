(* Domain discipline (--runtime real): none of this is synchronized —
   counters are plain [int ref]s behind string-keyed hashtables, and
   both sides (table resize on first touch, unguarded increments) would
   race under concurrent domains.  Rather than pay atomics on every
   simulated event, the real runtime keeps ALL metric mutation on the
   orchestrating domain: worker domains carry their per-item tallies in
   the stratum's task slots ([Compute_engine.par_task]) and the
   orchestrator merges them into these counters after each stratum
   barrier ([par_commit]) — the domain-local-shards-merged-at-epoch-close
   variant with the shard inlined into the work item.  Resolve handles
   ([counter]/[histogram]/[gauge]) and call every recording function
   from the simulation's domain only. *)
type t = {
  counters : (string, int ref) Hashtbl.t;
  histograms : (string, Stats.Histogram.t) Hashtbl.t;
  summaries : (string, Stats.Summary.t) Hashtbl.t;
  gauge_tbl : (string, float ref) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 64;
    histograms = Hashtbl.create 16;
    summaries = Hashtbl.create 16;
    gauge_tbl = Hashtbl.create 16 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let incr t name = Stdlib.incr (counter t name)

let add t name n =
  let r = counter t name in
  r := !r + n

let get t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
      let h = Stats.Histogram.create () in
      Hashtbl.add t.histograms name h;
      h

let record_latency t name v = Stats.Histogram.add (histogram t name) v

let latency t name = Hashtbl.find_opt t.histograms name

let summary t name =
  match Hashtbl.find_opt t.summaries name with
  | Some s -> s
  | None ->
      let s = Stats.Summary.create () in
      Hashtbl.add t.summaries name s;
      s

let record_value t name v = Stats.Summary.add (summary t name) v

let value t name = Hashtbl.find_opt t.summaries name

let gauge t name =
  match Hashtbl.find_opt t.gauge_tbl name with
  | Some r -> r
  | None ->
      let r = ref 0.0 in
      Hashtbl.add t.gauge_tbl name r;
      r

let set_gauge t name v = gauge t name := v

let gauge_value t name =
  match Hashtbl.find_opt t.gauge_tbl name with Some r -> !r | None -> 0.0

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let gauges t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.gauge_tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  Hashtbl.iter (fun _ r -> r := 0) t.counters;
  Hashtbl.iter (fun _ h -> Stats.Histogram.clear h) t.histograms;
  Hashtbl.iter (fun _ s -> Stats.Summary.clear s) t.summaries;
  Hashtbl.iter (fun _ r -> r := 0.0) t.gauge_tbl
