module Value = Functor_cc.Value
module Registry = Functor_cc.Registry
module Txn = Kernel.Txn

type cfg = {
  districts : int;
  items : int;
  customers : int;
  ol_min : int;
  ol_max : int;
  invalid_item_fraction : float;
}

let default_cfg ~n_servers ~districts_per_host =
  { districts = n_servers * districts_per_host;
    items = 1_000;
    customers = 120;
    ol_min = 5;
    ol_max = 15;
    invalid_item_fraction = 0.01 }

let dnoid_key d = Printf.sprintf "d:%d:noid" d
let cust_key ~d c = Printf.sprintf "d:%d:cust:%d" d c
let item_key i = Printf.sprintf "i:%d:item" i
let stock_key i = Printf.sprintf "i:%d:stock" i
let order_key ~d ~o = Printf.sprintf "d:%d:order:%d" d o
let neworder_key ~d ~o = Printf.sprintf "d:%d:no:%d" d o
let orderline_key ~d ~o ~n = Printf.sprintf "d:%d:ol:%d:%d" d o n

type line = { item : int; qty : int }

let encode_line l = Value.tup [ Value.int l.item; Value.int l.qty ]

let decode_line v =
  { item = Value.to_int (Value.nth v 0); qty = Value.to_int (Value.nth v 1) }

let encode_lines lines = Value.tup (List.map encode_line lines)
let decode_lines v = List.map decode_line (Value.to_tup v)

(* Determinate functor on the district counter.  Unlike plain TPC-C the
   item price reads are remote (items live on their own partitions), so
   functor computing performs cross-partition historical reads. *)
let neworder_handler (ctx : Registry.ctx) =
  let d = Value.to_int (Registry.arg ctx 0) in
  let c = Value.to_int (Registry.arg ctx 1) in
  let lines = decode_lines (Registry.arg ctx 2) in
  match Registry.read ctx ctx.Registry.key with
  | None -> Registry.Abort
  | Some noid ->
      let o = Value.to_int noid in
      let ol_writes =
        List.mapi
          (fun n l ->
            let price =
              match Registry.read ctx (item_key l.item) with
              | Some row -> Value.to_int (Value.nth row 0)
              | None -> 0
            in
            ( orderline_key ~d ~o ~n,
              Registry.Dep_put
                (Value.tup
                   [ Value.int l.item; Value.int l.qty;
                     Value.int (l.qty * price) ]) ))
          lines
      in
      Registry.Commit_det
        ( Value.int (o + 1),
          (order_key ~d ~o,
           Registry.Dep_put
             (Value.tup [ Value.int c; Value.int (List.length lines) ]))
          :: (neworder_key ~d ~o, Registry.Dep_put (Value.int 1))
          :: ol_writes )

let stock_handler (ctx : Registry.ctx) =
  let qty = Value.to_int (Registry.arg ctx 0) in
  match Registry.read ctx ctx.Registry.key with
  | None -> Registry.Abort
  | Some row ->
      let q = Value.to_int (Value.nth row 0) in
      let ytd = Value.to_int (Value.nth row 1) in
      let cnt = Value.to_int (Value.nth row 2) in
      let q' = if q - qty >= 10 then q - qty else q - qty + 91 in
      Registry.Commit
        (Value.tup [ Value.int q'; Value.int (ytd + qty); Value.int (cnt + 1) ])

(* OrderLine row for the static form (pre-assigned order id). *)
let orderline_handler (ctx : Registry.ctx) =
  let item = Value.to_int (Registry.arg ctx 0) in
  let qty = Value.to_int (Registry.arg ctx 1) in
  let price =
    match Registry.read ctx (item_key item) with
    | Some row -> Value.to_int (Value.nth row 0)
    | None -> 0
  in
  Registry.Commit
    (Value.tup [ Value.int item; Value.int qty; Value.int (qty * price) ])

let register ~register:reg =
  reg "stpcc_neworder" neworder_handler;
  reg "stpcc_stock" stock_handler;
  reg "stpcc_orderline" orderline_handler

let load cfg ~put =
  for d = 0 to cfg.districts - 1 do
    put (dnoid_key d) (Value.int 1);
    for c = 0 to cfg.customers - 1 do
      put (cust_key ~d c) (Value.tup [ Value.int 0; Value.int 0 ])
    done
  done;
  for i = 0 to cfg.items - 1 do
    put (item_key i)
      (Value.tup [ Value.int (100 + ((i * 37) mod 9900)); Value.str "item" ]);
    put (stock_key i) (Value.tup [ Value.int 91; Value.int 0; Value.int 0 ])
  done

type generator = {
  cfg : cfg;
  rng : Sim.Rng.t;
  static_noid : (int, int ref) Hashtbl.t;
}

let generator cfg ~seed =
  { cfg; rng = Sim.Rng.create seed; static_noid = Hashtbl.create 256 }

let draw g =
  let cfg = g.cfg in
  let d = Sim.Rng.int g.rng cfg.districts in
  let c = Sim.Rng.int g.rng cfg.customers in
  let n_lines = Sim.Rng.uniform_int g.rng ~lo:cfg.ol_min ~hi:cfg.ol_max in
  let invalid = Sim.Rng.bernoulli g.rng cfg.invalid_item_fraction in
  let invalid_line = if invalid then Sim.Rng.int g.rng n_lines else -1 in
  (* Distinct items per order: one functor per key per transaction. *)
  let seen = Hashtbl.create 16 in
  let fresh_item () =
    let rec draw () =
      let i = Sim.Rng.int g.rng cfg.items in
      if Hashtbl.mem seen i then draw ()
      else begin
        Hashtbl.add seen i ();
        i
      end
    in
    draw ()
  in
  let lines =
    List.init n_lines (fun n ->
        let item =
          if n = invalid_line then cfg.items + 1 + Sim.Rng.int g.rng 1000
          else fresh_item ()
        in
        { item; qty = 1 + Sim.Rng.int g.rng 10 })
  in
  (d, c, lines, invalid)

let next_oid g ~d =
  let r =
    match Hashtbl.find_opt g.static_noid d with
    | Some r -> r
    | None ->
        let r = ref 1 in
        Hashtbl.add g.static_noid d r;
        r
  in
  let o = !r in
  incr r;
  o

let neworder_functor_desc (d, c, lines, _invalid) =
  let det =
    ( dnoid_key d,
      Txn.Det
        { handler = "stpcc_neworder";
          read_set = dnoid_key d :: List.map (fun l -> item_key l.item) lines;
          args = [ Value.int d; Value.int c; encode_lines lines ];
          dependents = [] } )
  in
  let stocks =
    List.map
      (fun l ->
        ( stock_key l.item,
          Txn.Call
            { handler = "stpcc_stock";
              read_set = [ stock_key l.item ];
              args = [ Value.int l.qty ] } ))
      lines
  in
  Txn.desc
    ~precondition_keys:(List.map (fun l -> stock_key l.item) lines)
    (det :: stocks)

let neworder_static_desc ~o (d, c, lines, _invalid) =
  let stocks =
    List.map
      (fun l ->
        ( stock_key l.item,
          Txn.Call
            { handler = "stpcc_stock";
              read_set = [ stock_key l.item ];
              args = [ Value.int l.qty ] } ))
      lines
  in
  let orderlines =
    List.mapi
      (fun n l ->
        ( orderline_key ~d ~o ~n,
          Txn.Call
            { handler = "stpcc_orderline";
              read_set = [ item_key l.item ];
              args = [ Value.int l.item; Value.int l.qty ] } ))
      lines
  in
  Txn.desc
    ((dnoid_key d, Txn.Add 1)
     :: (order_key ~d ~o,
         Txn.Put (Value.tup [ Value.int c; Value.int (List.length lines) ]))
     :: (neworder_key ~d ~o, Txn.Put (Value.int 1))
     :: (stocks @ orderlines))

let gen_neworder g =
  let a = draw g in
  Txn.dual
    ~functor_form:(neworder_functor_desc a)
    ~static_form:
      (lazy
        (let rec valid ((_, _, _, invalid) as a) =
           if invalid then valid (draw g) else a
         in
         let ((d, _, _, _) as a) = valid a in
         let o = next_oid g ~d in
         neworder_static_desc ~o a))

module Neworder = struct
  let name = "stpcc-neworder"

  type nonrec cfg = cfg

  let register cfg ~register:reg =
    ignore (cfg : cfg);
    register ~register:reg

  let load cfg ~n_servers:_ ~put = load cfg ~put

  let generator cfg ~n_servers:_ ~seed =
    let g = generator cfg ~seed in
    fun ~fe:_ -> gen_neworder g
end
