module Value = Functor_cc.Value
module Txn = Kernel.Txn

type cfg = {
  keys_per_partition : int;
  hot_keys : int;
  rw_keys : int;
  distributed : bool;
}

let cfg_of_contention_index ?(keys_per_partition = 100_000) ci =
  if ci <= 0.0 || ci > 1.0 then invalid_arg "Ycsb: contention index";
  let hot = int_of_float (Float.round (1.0 /. ci)) in
  let hot = if hot < 1 then 1 else hot in
  { keys_per_partition; hot_keys = hot; rw_keys = 10; distributed = true }

let key ~partition idx = Printf.sprintf "y:%d:%d" partition idx

(* Process-wide cache of key names, one array per partition.  Names depend
   only on (partition, idx), so the load phase and every generator — across
   figures run in the same process — share a single materialisation instead
   of sprintf-ing on every draw.  Rebuilt when the partition size changes. *)
let name_cache : (int, string array) Hashtbl.t = Hashtbl.create 16
let name_cache_size = ref 0

let names ~partition ~size =
  if !name_cache_size <> size then begin
    Hashtbl.reset name_cache;
    name_cache_size := size
  end;
  match Hashtbl.find_opt name_cache partition with
  | Some a -> a
  | None ->
      let a = Array.init size (fun i -> key ~partition i) in
      Hashtbl.add name_cache partition a;
      a

let register ~register:_ = ()

let load cfg ~n_servers ~put =
  for p = 0 to n_servers - 1 do
    let a = names ~partition:p ~size:cfg.keys_per_partition in
    for i = 0 to cfg.keys_per_partition - 1 do
      put a.(i) (Value.int 0)
    done
  done

type generator = {
  cfg : cfg;
  n_partitions : int;
  rng : Sim.Rng.t;
  part_names : string array array;  (* partition -> idx -> key name *)
}

let generator cfg ~n_partitions ~seed =
  if cfg.hot_keys > cfg.keys_per_partition then
    invalid_arg "Ycsb.generator: more hot keys than keys";
  { cfg; n_partitions; rng = Sim.Rng.create seed;
    part_names =
      Array.init n_partitions (fun p ->
          names ~partition:p ~size:cfg.keys_per_partition) }

(* One hot key plus (rw_keys/participants - 1) cold keys per partition;
   exactly one hot key per participant, as in Calvin's microbenchmark. *)
let draw_keys g ~fe =
  let cfg = g.cfg in
  let parts =
    if cfg.distributed && g.n_partitions > 1 then begin
      let other =
        let p = Sim.Rng.int g.rng (g.n_partitions - 1) in
        if p >= fe then p + 1 else p
      in
      [ fe; other ]
    end
    else [ fe ]
  in
  let per_part = List.length parts in
  let keys_per = g.cfg.rw_keys / per_part in
  List.concat_map
    (fun p ->
      let pn = g.part_names.(p) in
      let hot = pn.(Sim.Rng.int g.rng cfg.hot_keys) in
      let cold_range = cfg.keys_per_partition - cfg.hot_keys in
      let cold =
        List.init (keys_per - 1) (fun _ ->
            (* When every key is hot (CI at its minimum for this partition
               size) cold draws fall back to the whole keyspace. *)
            if cold_range <= 0 then
              pn.(Sim.Rng.int g.rng cfg.keys_per_partition)
            else pn.(cfg.hot_keys + Sim.Rng.int g.rng cold_range))
      in
      hot :: cold)
    parts
  |> List.sort_uniq String.compare

let gen g ~fe =
  let keys = draw_keys g ~fe in
  (* 10 ADD-1 ops — already static, so one description serves every
     engine. *)
  Txn.make (List.map (fun k -> (k, Txn.Add 1)) keys)

module Workload = struct
  let name = "ycsb"

  type nonrec cfg = cfg

  let register cfg ~register:reg =
    ignore (cfg : cfg);
    register ~register:reg

  let load cfg ~n_servers ~put = load cfg ~n_servers ~put

  let generator cfg ~n_servers ~seed =
    let g = generator cfg ~n_partitions:n_servers ~seed in
    fun ~fe -> gen g ~fe
end
