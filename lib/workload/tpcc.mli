(** TPC-C (NewOrder + Payment), partitioned by warehouse (§V-A1).

    Like the paper's evaluation we implement the two transactions that
    dominate the TPC-C mix and drive distributed read-write behaviour.
    Data is partitioned by warehouse: every key starts with ["w:<w>:"] and
    the cluster's [`Prefix] partitioner routes warehouse [w] to server
    [w mod n].  The item catalog is replicated per warehouse (it is
    read-only), as real TPC-C deployments and Calvin both do.

    Scale knobs are configurable because the simulation does not need the
    full 100 k-item catalog to reproduce the paper's contention behaviour
    (items are accessed uniformly); defaults are chosen to keep memory
    modest and are recorded in EXPERIMENTS.md.

    The implementation is engine-agnostic: generators produce two-facet
    {!Kernel.Txn.t} values.

    Functor facet (ALOHA):
    - the district's next-order-id key holds a {e determinate functor}
      ("tpcc_neworder") that assigns the order id during functor
      computing and emits the Order / NewOrder / OrderLine rows as
      deferred writes — exactly the §IV-E/§V-A2 scheme;
    - each stock update is an independent user functor ("tpcc_stock");
    - Payment increments [w_ytd]/[d_ytd] with ADD functors and updates the
      customer row with "tpcc_payment_cust";
    - 1 % of NewOrders reference a non-existent item; the unmet
      precondition on the supply warehouse's partition triggers the
      coordinator's second-round abort.

    Static facet (Calvin, 2PL): order ids are {e pre-assigned} by the
    generator and invalid items are redrawn (deterministic engines cannot
    abort, §V-A2); order / order-line rows become explicit ops
    ("tpcc_orderline" computes the line amount from the item price), so
    the write set is fully known before execution. *)

type cfg = {
  warehouses : int;  (** total; home warehouse of FE [i] is ≡ i (mod n) *)
  districts : int;  (** per warehouse (TPC-C: 10) *)
  customers : int;  (** per district (TPC-C: 3000; default smaller) *)
  items : int;  (** catalog size (TPC-C: 100 000; default smaller) *)
  ol_min : int;  (** min order lines (5) *)
  ol_max : int;  (** max order lines (15) *)
  invalid_item_fraction : float;  (** NewOrders that must abort (0.01) *)
  force_distributed : bool;
      (** every transaction touches a second warehouse on a different
          server, as in the Calvin papers' setup *)
}

val default_cfg : n_servers:int -> warehouses_per_host:int -> cfg

(* -- keys (exposed for tests and invariant checks) -- *)

val wytd_key : int -> string
val dtax_key : w:int -> d:int -> string
val dytd_key : w:int -> d:int -> string
val dnoid_key : w:int -> d:int -> string
val cust_key : w:int -> d:int -> int -> string
val item_key : w:int -> int -> string
val stock_key : w:int -> int -> string
val order_key : w:int -> d:int -> o:int -> string
val neworder_key : w:int -> d:int -> o:int -> string
val orderline_key : w:int -> d:int -> o:int -> n:int -> string

val register : register:(string -> Functor_cc.Registry.handler -> unit) -> unit
(** Register "tpcc_neworder", "tpcc_stock", "tpcc_payment_cust" and
    "tpcc_orderline" through an engine's registration hook. *)

val load : cfg -> put:(string -> Functor_cc.Value.t -> unit) -> unit

type generator

val generator : cfg -> n_servers:int -> seed:int -> generator

val gen_neworder : generator -> fe:int -> Kernel.Txn.t
val gen_payment : generator -> fe:int -> Kernel.Txn.t

(** The two transactions as {!Kernel.Intf.WORKLOAD} instances. *)

module Neworder : Kernel.Intf.WORKLOAD with type cfg = cfg
module Payment : Kernel.Intf.WORKLOAD with type cfg = cfg
