(** Scaled TPC-C (Rococo's variant, §V-A1): the database is one giant
    warehouse partitioned {e within} the warehouse, by item and by
    district.  Stress-tests distributed transactions: a NewOrder touches
    the district's partition plus the partition of every item it orders,
    so fan-out grows with the cluster instead of staying at two.

    The [w_ytd] field is removed by this partitioning, so Payment is not
    implemented (§V-A1), matching the paper.

    Keys: district data is ["d:<d>:..."] (district [d] lives on server
    [d mod n]); item/stock data is ["i:<i>:..."] (item [i] on server
    [i mod n]); order rows live with their district.  Contention is set by
    districts-per-host: each FE's NewOrders pick among the districts of
    the whole cluster uniformly.

    Engine-agnostic like {!Tpcc}: the functor facet uses the determinate
    "stpcc_neworder" functor; the static facet pre-assigns order ids and
    redraws invalid items. *)

type cfg = {
  districts : int;  (** total districts across the cluster *)
  items : int;
  customers : int;  (** per district *)
  ol_min : int;
  ol_max : int;
  invalid_item_fraction : float;
}

val default_cfg : n_servers:int -> districts_per_host:int -> cfg

val dnoid_key : int -> string
val item_key : int -> string
val stock_key : int -> string
val order_key : d:int -> o:int -> string
val neworder_key : d:int -> o:int -> string
val orderline_key : d:int -> o:int -> n:int -> string

val register : register:(string -> Functor_cc.Registry.handler -> unit) -> unit
(** Registers "stpcc_neworder", "stpcc_stock" and "stpcc_orderline". *)

val load : cfg -> put:(string -> Functor_cc.Value.t -> unit) -> unit

type generator

val generator : cfg -> seed:int -> generator

val gen_neworder : generator -> Kernel.Txn.t
(** Scaled TPC-C transactions are not tied to a home server; any FE may
    coordinate any district's order. *)

module Neworder : Kernel.Intf.WORKLOAD with type cfg = cfg
