(** The YCSB-like microbenchmark from the Calvin evaluation (§V-A1).

    Each server holds one partition of keys split into K {e hot} keys and
    the remaining {e cold} keys; the contention index is CI = 1/K.  Every
    transaction reads 10 keys and increments each by 1, touching exactly
    one hot key on each participant partition; a distributed transaction
    spans two partitions (one of them the submitting server's).

    Partition sizing: the paper uses 1 M keys per partition; the default
    here is 100 k (configurable) — hot-key contention, which is what the
    experiment varies, is unaffected by the cold-key population, and the
    smaller default keeps simulation memory modest (see EXPERIMENTS.md).

    Keys are ["y:<partition>:<idx>"]; the [`Prefix] partitioner routes on
    the partition field.

    Increments are commutative ADD ops, so one static description serves
    every engine: ALOHA runs them as ADD functors, Calvin/2PL through the
    generic "kernel_apply" procedure. *)

type cfg = {
  keys_per_partition : int;
  hot_keys : int;  (** K; contention index = 1/K *)
  rw_keys : int;  (** keys read+updated per transaction (10) *)
  distributed : bool;  (** two-partition transactions (the default) *)
}

val cfg_of_contention_index : ?keys_per_partition:int -> float -> cfg
(** [cfg_of_contention_index ci] sets [hot_keys = 1 / ci] (e.g. CI 0.01 →
    100 hot keys). *)

val key : partition:int -> int -> string

val register : register:(string -> Functor_cc.Registry.handler -> unit) -> unit
(** No workload-specific handlers: increments use the ADD built-in. *)

val load : cfg -> n_servers:int -> put:(string -> Functor_cc.Value.t -> unit) -> unit

type generator

val generator : cfg -> n_partitions:int -> seed:int -> generator

val gen : generator -> fe:int -> Kernel.Txn.t
(** 10 ADD-1 ops: one hot + four cold keys on each of the two participant
    partitions. *)

module Workload : Kernel.Intf.WORKLOAD with type cfg = cfg
