module Value = Functor_cc.Value
module Registry = Functor_cc.Registry
module Txn = Kernel.Txn

type cfg = {
  warehouses : int;
  districts : int;
  customers : int;
  items : int;
  ol_min : int;
  ol_max : int;
  invalid_item_fraction : float;
  force_distributed : bool;
}

let default_cfg ~n_servers ~warehouses_per_host =
  { warehouses = n_servers * warehouses_per_host;
    districts = 10;
    customers = 120;
    items = 1_000;
    ol_min = 5;
    ol_max = 15;
    invalid_item_fraction = 0.01;
    force_distributed = true }

(* ---- keys -------------------------------------------------------------- *)

let wytd_key w = Printf.sprintf "w:%d:wytd" w
let dtax_key ~w ~d = Printf.sprintf "w:%d:dtax:%d" w d
let dytd_key ~w ~d = Printf.sprintf "w:%d:dytd:%d" w d
let dnoid_key ~w ~d = Printf.sprintf "w:%d:dnoid:%d" w d
let cust_key ~w ~d c = Printf.sprintf "w:%d:cust:%d:%d" w d c
let item_key ~w i = Printf.sprintf "w:%d:item:%d" w i
let stock_key ~w i = Printf.sprintf "w:%d:stock:%d" w i
let order_key ~w ~d ~o = Printf.sprintf "w:%d:order:%d:%d" w d o
let neworder_key ~w ~d ~o = Printf.sprintf "w:%d:no:%d:%d" w d o

let orderline_key ~w ~d ~o ~n = Printf.sprintf "w:%d:ol:%d:%d:%d" w d o n

let hist_key ~w ~d ~c uid = Printf.sprintf "w:%d:hist:%d:%d:%d" w d c uid

(* ---- row encodings ------------------------------------------------------ *)

let item_row ~price = Value.tup [ Value.int price; Value.str "item" ]
let item_price row = Value.to_int (Value.nth row 0)

let stock_row ~qty ~ytd ~order_cnt ~remote_cnt =
  Value.tup
    [ Value.int qty; Value.int ytd; Value.int order_cnt;
      Value.int remote_cnt ]

let cust_row ~balance ~ytd_payment ~payment_cnt =
  Value.tup [ Value.int balance; Value.int ytd_payment; Value.int payment_cnt ]

(* ---- transaction arguments --------------------------------------------- *)

type line = { item : int; supply_w : int; qty : int }

let encode_line l =
  Value.tup [ Value.int l.item; Value.int l.supply_w; Value.int l.qty ]

let decode_line v =
  { item = Value.to_int (Value.nth v 0);
    supply_w = Value.to_int (Value.nth v 1);
    qty = Value.to_int (Value.nth v 2) }

let encode_lines lines = Value.tup (List.map encode_line lines)
let decode_lines v = List.map decode_line (Value.to_tup v)

(* ---- handlers ------------------------------------------------------------ *)

(* Determinate functor on the district's next-order-id key: assigns the
   order id, bumps the counter, and emits the Order / NewOrder / OrderLine
   rows as dynamically named deferred writes (§IV-E). *)
let neworder_handler (ctx : Registry.ctx) =
  let w = Value.to_int (Registry.arg ctx 0) in
  let d = Value.to_int (Registry.arg ctx 1) in
  let c = Value.to_int (Registry.arg ctx 2) in
  let lines = decode_lines (Registry.arg ctx 3) in
  match Registry.read ctx ctx.Registry.key with
  | None -> Registry.Abort
  | Some noid ->
      let o = Value.to_int noid in
      let ol_writes =
        List.mapi
          (fun n l ->
            let price =
              match Registry.read ctx (item_key ~w l.item) with
              | Some row -> item_price row
              | None -> 0
            in
            ( orderline_key ~w ~d ~o ~n,
              Registry.Dep_put
                (Value.tup
                   [ Value.int l.item; Value.int l.supply_w;
                     Value.int l.qty; Value.int (l.qty * price) ]) ))
          lines
      in
      let writes =
        (order_key ~w ~d ~o,
         Registry.Dep_put
           (Value.tup [ Value.int c; Value.int (List.length lines) ]))
        :: (neworder_key ~w ~d ~o, Registry.Dep_put (Value.int 1))
        :: ol_writes
      in
      Registry.Commit_det (Value.int (o + 1), writes)

(* Stock update for one order line: TPC-C quantity rule plus counters. *)
let stock_handler (ctx : Registry.ctx) =
  let qty = Value.to_int (Registry.arg ctx 0) in
  let remote = Value.to_int (Registry.arg ctx 1) in
  match Registry.read ctx ctx.Registry.key with
  | None -> Registry.Abort
  | Some row ->
      let q = Value.to_int (Value.nth row 0) in
      let ytd = Value.to_int (Value.nth row 1) in
      let order_cnt = Value.to_int (Value.nth row 2) in
      let remote_cnt = Value.to_int (Value.nth row 3) in
      let q' = if q - qty >= 10 then q - qty else q - qty + 91 in
      Registry.Commit
        (stock_row ~qty:q' ~ytd:(ytd + qty) ~order_cnt:(order_cnt + 1)
           ~remote_cnt:(remote_cnt + remote))

let payment_cust_handler (ctx : Registry.ctx) =
  let h = Value.to_int (Registry.arg ctx 0) in
  match Registry.read ctx ctx.Registry.key with
  | None -> Registry.Abort
  | Some row ->
      let balance = Value.to_int (Value.nth row 0) in
      let ytd = Value.to_int (Value.nth row 1) in
      let cnt = Value.to_int (Value.nth row 2) in
      Registry.Commit
        (cust_row ~balance:(balance - h) ~ytd_payment:(ytd + h)
           ~payment_cnt:(cnt + 1))

(* One OrderLine row for the static (pre-assigned order id) form: reads
   the item row for the price, as the determinate functor does under
   ALOHA. *)
let orderline_handler (ctx : Registry.ctx) =
  let item = Value.to_int (Registry.arg ctx 0) in
  let supply_w = Value.to_int (Registry.arg ctx 1) in
  let qty = Value.to_int (Registry.arg ctx 2) in
  let home_w = Value.to_int (Registry.arg ctx 3) in
  let price =
    match Registry.read ctx (item_key ~w:home_w item) with
    | Some row -> item_price row
    | None -> 0
  in
  Registry.Commit
    (Value.tup
       [ Value.int item; Value.int supply_w; Value.int qty;
         Value.int (qty * price) ])

let register ~register:reg =
  reg "tpcc_neworder" neworder_handler;
  reg "tpcc_stock" stock_handler;
  reg "tpcc_payment_cust" payment_cust_handler;
  reg "tpcc_orderline" orderline_handler

(* ---- loading ------------------------------------------------------------ *)

let load cfg ~put =
  for w = 0 to cfg.warehouses - 1 do
    put (wytd_key w) (Value.int 0);
    for d = 0 to cfg.districts - 1 do
      put (dtax_key ~w ~d) (Value.float 0.05);
      put (dytd_key ~w ~d) (Value.int 0);
      put (dnoid_key ~w ~d) (Value.int 1);
      for c = 0 to cfg.customers - 1 do
        put (cust_key ~w ~d c)
          (cust_row ~balance:0 ~ytd_payment:0 ~payment_cnt:0)
      done
    done;
    for i = 0 to cfg.items - 1 do
      put (item_key ~w i) (item_row ~price:(100 + ((i * 37) mod 9900)));
      put (stock_key ~w i) (stock_row ~qty:91 ~ytd:0 ~order_cnt:0 ~remote_cnt:0)
    done
  done

(* ---- generator ---------------------------------------------------------- *)

type generator = {
  cfg : cfg;
  n_servers : int;
  rng : Sim.Rng.t;
  static_noid : (int * int, int ref) Hashtbl.t;
      (* static engines pre-assign order ids (they cannot abort, §V-A2) *)
  mutable uid : int;
}

let generator cfg ~n_servers ~seed =
  if cfg.warehouses < n_servers then
    invalid_arg "Tpcc.generator: need at least one warehouse per host";
  { cfg; n_servers; rng = Sim.Rng.create seed;
    static_noid = Hashtbl.create 256; uid = 0 }

let per_host g = g.cfg.warehouses / g.n_servers

let home_warehouse g ~fe = fe + (g.n_servers * Sim.Rng.int g.rng (per_host g))

(* A warehouse hosted on a different server than [fe] (§V-A1: distributed
   transactions always access a second warehouse on another server). *)
let remote_warehouse g ~fe =
  if g.n_servers = 1 then home_warehouse g ~fe
  else begin
    let other =
      let h = Sim.Rng.int g.rng (g.n_servers - 1) in
      if h >= fe then h + 1 else h
    in
    other + (g.n_servers * Sim.Rng.int g.rng (per_host g))
  end

type neworder_args = {
  no_w : int;
  no_d : int;
  no_c : int;
  lines : line list;
  invalid : bool;
}

let draw_neworder g ~fe =
  let cfg = g.cfg in
  let w = home_warehouse g ~fe in
  let d = Sim.Rng.int g.rng cfg.districts in
  let c = Sim.Rng.int g.rng cfg.customers in
  let n_lines = Sim.Rng.uniform_int g.rng ~lo:cfg.ol_min ~hi:cfg.ol_max in
  let invalid = Sim.Rng.bernoulli g.rng cfg.invalid_item_fraction in
  let remote_line =
    if cfg.force_distributed then Sim.Rng.int g.rng n_lines else -1
  in
  let invalid_line = if invalid then Sim.Rng.int g.rng n_lines else -1 in
  (* Items are distinct within an order: each order line yields one stock
     functor, and one key carries exactly one functor per transaction. *)
  let seen = Hashtbl.create 16 in
  let fresh_item () =
    let rec draw () =
      let i = Sim.Rng.int g.rng cfg.items in
      if Hashtbl.mem seen i then draw ()
      else begin
        Hashtbl.add seen i ();
        i
      end
    in
    draw ()
  in
  let lines =
    List.init n_lines (fun n ->
        let item =
          if n = invalid_line then cfg.items + 1 + Sim.Rng.int g.rng 1000
          else fresh_item ()
        in
        let supply_w =
          if n = remote_line then remote_warehouse g ~fe else w
        in
        { item; supply_w; qty = 1 + Sim.Rng.int g.rng 10 })
  in
  { no_w = w; no_d = d; no_c = c; lines; invalid }

let next_oid g ~w ~d =
  let key = (w, d) in
  let r =
    match Hashtbl.find_opt g.static_noid key with
    | Some r -> r
    | None ->
        let r = ref 1 in
        Hashtbl.add g.static_noid key r;
        r
  in
  let o = !r in
  incr r;
  o

(* The functor facet: the district counter carries the determinate
   "tpcc_neworder" functor; each stock update is an independent user
   functor; the unmet stock precondition of an invalid item drives the
   coordinator's second-round abort. *)
let neworder_functor_desc { no_w = w; no_d = d; no_c = c; lines; _ } =
  let det =
    ( dnoid_key ~w ~d,
      Txn.Det
        { handler = "tpcc_neworder";
          read_set =
            dnoid_key ~w ~d :: List.map (fun l -> item_key ~w l.item) lines;
          args = [ Value.int w; Value.int d; Value.int c; encode_lines lines ];
          dependents = [] } )
  in
  let stocks =
    List.map
      (fun l ->
        ( stock_key ~w:l.supply_w l.item,
          Txn.Call
            { handler = "tpcc_stock";
              read_set = [ stock_key ~w:l.supply_w l.item ];
              args =
                [ Value.int l.qty;
                  Value.int (if l.supply_w = w then 0 else 1) ] } ))
      lines
  in
  Txn.desc
    ~precondition_keys:
      (List.map (fun l -> stock_key ~w:l.supply_w l.item) lines)
    (det :: stocks)

(* The static facet: the order id is pre-assigned from the generator's
   counter and every row is an explicit op, so the write set is fully
   known up front (what deterministic engines require, §V-A2). *)
let neworder_static_desc ~o { no_w = w; no_d = d; no_c = c; lines; _ } =
  let stocks =
    List.map
      (fun l ->
        ( stock_key ~w:l.supply_w l.item,
          Txn.Call
            { handler = "tpcc_stock";
              read_set = [ stock_key ~w:l.supply_w l.item ];
              args =
                [ Value.int l.qty;
                  Value.int (if l.supply_w = w then 0 else 1) ] } ))
      lines
  in
  let orderlines =
    List.mapi
      (fun n l ->
        ( orderline_key ~w ~d ~o ~n,
          Txn.Call
            { handler = "tpcc_orderline";
              read_set = [ item_key ~w l.item ];
              args =
                [ Value.int l.item; Value.int l.supply_w; Value.int l.qty;
                  Value.int w ] } ))
      lines
  in
  Txn.desc
    ((dnoid_key ~w ~d, Txn.Add 1)
     :: (order_key ~w ~d ~o,
         Txn.Put (Value.tup [ Value.int c; Value.int (List.length lines) ]))
     :: (neworder_key ~w ~d ~o, Txn.Put (Value.int 1))
     :: (stocks @ orderlines))

let gen_neworder g ~fe =
  let a = draw_neworder g ~fe in
  Txn.dual
    ~functor_form:(neworder_functor_desc a)
    ~static_form:
      (lazy
        ((* Static engines cannot abort, so their facet never references an
            invalid item: redraw until valid, exactly as the old
            Calvin-only generator did. *)
         let rec valid a = if a.invalid then valid (draw_neworder g ~fe) else a in
         let a = valid a in
         let o = next_oid g ~w:a.no_w ~d:a.no_d in
         neworder_static_desc ~o a))

let gen_payment g ~fe =
  let cfg = g.cfg in
  let w = home_warehouse g ~fe in
  let d = Sim.Rng.int g.rng cfg.districts in
  (* The paper's setup makes every transaction distributed: the customer
     lives in a warehouse on a different server. *)
  let cw = if cfg.force_distributed then remote_warehouse g ~fe else w in
  let cd = Sim.Rng.int g.rng cfg.districts in
  let c = Sim.Rng.int g.rng cfg.customers in
  let h = 1 + Sim.Rng.int g.rng 5000 in
  g.uid <- g.uid + 1;
  (* Payment's write set is already static: one description serves both
     facets. *)
  Txn.make
    [ (wytd_key w, Txn.Add h);
      (dytd_key ~w ~d, Txn.Add h);
      (cust_key ~w:cw ~d:cd c,
       Txn.Call
         { handler = "tpcc_payment_cust";
           read_set = [ cust_key ~w:cw ~d:cd c ];
           args = [ Value.int h ] });
      (hist_key ~w ~d ~c g.uid, Txn.Put (Value.int h)) ]

(* ---- WORKLOAD instances -------------------------------------------------- *)

module Neworder = struct
  let name = "tpcc-neworder"

  type nonrec cfg = cfg

  let register cfg ~register:reg =
    ignore (cfg : cfg);
    register ~register:reg

  let load cfg ~n_servers:_ ~put = load cfg ~put

  let generator cfg ~n_servers ~seed =
    let g = generator cfg ~n_servers ~seed in
    fun ~fe -> gen_neworder g ~fe
end

module Payment = struct
  let name = "tpcc-payment"

  type nonrec cfg = cfg

  let register cfg ~register:reg =
    ignore (cfg : cfg);
    register ~register:reg

  let load cfg ~n_servers:_ ~put = load cfg ~put

  let generator cfg ~n_servers ~seed =
    let g = generator cfg ~n_servers ~seed in
    fun ~fe -> gen_payment g ~fe
end
