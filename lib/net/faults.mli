(** Deterministic link-level fault injection for {!Network}.

    A [Faults.t] is a seeded decision oracle shared by one or more
    networks: every send consults {!decide}, which rolls the fault RNG in
    simulation order, so a whole run is reproducible from the fault seed
    (the chaos subsystem's determinism contract — see DESIGN.md, "Fault
    model").

    Faults are expressed as {e edicts}: time-windowed probabilistic rules
    (drop / delay / duplicate / reorder) matched per link, plus partition
    windows that separate an address group from the rest of the world and
    a crashed-address set.  Windows are evaluated lazily against the
    caller-supplied [now]; nothing is scheduled, so a [Faults.t] can be
    built before the simulation engine exists.

    Two transport models interpret the same edicts:

    - [Lossy] (UDP-like): drops and partition cut-offs lose the message;
      duplicates and reorderings are delivered as such.  For protocols
      hardened against loss (ALOHA-DB with retries enabled).
    - [Reliable] (TCP-like): a "drop" manifests as a retransmission delay,
      a partition buffers traffic until the window closes, duplicates and
      reorderings are suppressed (the transport dedups and orders).  For
      protocols that assume reliable FIFO links (Calvin, 2PL). *)

type t

type transport = Lossy | Reliable

type kind = Drop | Delay | Duplicate | Reorder

type edict = {
  kind : kind;
  p : float;  (** per-message probability the edict fires *)
  extra_max_us : int;
      (** delay bound for [Delay]; displacement bound for [Reorder];
          ignored by [Drop]/[Duplicate] *)
  src : Address.t option;  (** [None] matches any source *)
  dst : Address.t option;  (** [None] matches any destination *)
  from_us : int;
  until_us : int;  (** window is [[from_us, until_us)] *)
}

val edict :
  ?src:Address.t -> ?dst:Address.t -> ?extra_max_us:int ->
  kind -> p:float -> from_us:int -> until_us:int -> edict

val create : ?transport:transport -> seed:int -> unit -> t
(** [transport] defaults to [Lossy]. *)

val transport : t -> transport

val install : t -> edict list -> unit
(** Append edicts (evaluated in installation order). *)

val partition : t -> group:Address.t list -> from_us:int -> until_us:int -> unit
(** Separate [group] from all other addresses (both directions) during the
    window.  Traffic within [group], and within the complement, is
    unaffected. *)

val mark_crashed : t -> Address.t -> unit
(** Messages to or from the address are dropped (counted as crash-window
    drops) until {!clear_crashed}.  Used when a whole host is down; a
    process-level crash that keeps the host reachable is modelled by the
    server instead. *)

val clear_crashed : t -> Address.t -> unit

val is_crashed : t -> Address.t -> bool

val clear : t -> unit
(** Remove all edicts, partitions, and crash marks. *)

type verdict =
  | Deliver of { extra_delay_us : int; copies : int; reorder : bool }
      (** deliver [copies] (>= 1) copies after an extra delay; [reorder]
          asks the network to bypass per-link FIFO for this message *)
  | Drop_injected  (** lost to a probabilistic link fault *)
  | Drop_partitioned  (** cut off by an active partition window *)
  | Drop_crashed  (** endpoint marked crashed *)

val decide : t -> now:int -> src:Address.t -> dst:Address.t -> verdict
(** Roll the fault oracle for one message.  Consumes randomness only for
    edicts whose window and link filter match, keeping the decision
    sequence reproducible from the seed. *)
