type ('req, 'resp) wire =
  | Request of { call_id : int; payload : 'req }
  | Response of { call_id : int; payload : 'resp }
  | Oneway of 'req

type ('req, 'resp) t = {
  net : ('req, 'resp) wire Network.t;
  pending : (int, 'resp -> unit) Hashtbl.t;
  request_handlers :
    (Address.t, src:Address.t -> 'req -> reply:('resp -> unit) -> unit)
      Hashtbl.t;
  oneway_handlers : (Address.t, src:Address.t -> 'req -> unit) Hashtbl.t;
  mutable next_call_id : int;
}

let dispatch t addr ~src (msg : _ wire) =
  match msg with
  | Request { call_id; payload } -> (
      match Hashtbl.find_opt t.request_handlers addr with
      | None -> ()
      | Some handler ->
          let replied = ref false in
          let reply resp =
            if !replied then failwith "Rpc: reply called twice";
            replied := true;
            Network.send t.net ~src:addr ~dst:src
              (Response { call_id; payload = resp })
          in
          handler ~src payload ~reply)
  | Response { call_id; payload } -> (
      match Hashtbl.find_opt t.pending call_id with
      | None -> ()
      | Some k ->
          Hashtbl.remove t.pending call_id;
          k payload)
  | Oneway payload -> (
      match Hashtbl.find_opt t.oneway_handlers addr with
      | None -> ()
      | Some handler -> handler ~src payload)

let create engine rng ~latency ?faults () =
  let t =
    { net = Network.create engine rng ~latency ?faults ();
      pending = Hashtbl.create 256;
      request_handlers = Hashtbl.create 64;
      oneway_handlers = Hashtbl.create 64;
      next_call_id = 0 }
  in
  t

let engine t = Network.engine t.net

let ensure_registered t addr =
  Network.register t.net addr (fun ~src msg -> dispatch t addr ~src msg)

let serve t addr handler =
  Hashtbl.replace t.request_handlers addr handler;
  ensure_registered t addr

let serve_oneway t addr handler =
  Hashtbl.replace t.oneway_handlers addr handler;
  ensure_registered t addr

let call t ~src ~dst payload k =
  (* The caller must itself be registered so the response can route back. *)
  ensure_registered t src;
  let call_id = t.next_call_id in
  t.next_call_id <- t.next_call_id + 1;
  Hashtbl.replace t.pending call_id k;
  Network.send t.net ~src ~dst (Request { call_id; payload })

let send t ~src ~dst payload =
  Network.send t.net ~src ~dst (Oneway payload)

let crash t addr =
  Network.unregister t.net addr;
  Hashtbl.remove t.request_handlers addr;
  Hashtbl.remove t.oneway_handlers addr

let messages_sent t = Network.messages_sent t.net

let messages_dropped t = Network.messages_dropped t.net

let drop_stats t = Network.drop_stats t.net

let set_trace t f =
  Network.set_trace t.net (fun ~src ~dst _msg -> f ~src ~dst)

let set_fault_hook t f = Network.set_fault_hook t.net f

let outstanding_calls t = Hashtbl.length t.pending
