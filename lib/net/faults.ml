type transport = Lossy | Reliable

type kind = Drop | Delay | Duplicate | Reorder

type edict = {
  kind : kind;
  p : float;
  extra_max_us : int;
  src : Address.t option;
  dst : Address.t option;
  from_us : int;
  until_us : int;
}

type part = { members : Address.Set.t; p_from : int; p_until : int }

type t = {
  rng : Sim.Rng.t;
  transport : transport;
  mutable edicts : edict list;  (* evaluation order *)
  mutable partitions : part list;
  mutable crashed : Address.Set.t;
}

(* Retransmission timeout model for the Reliable transport: a lost segment
   or a partitioned link shows up as this much extra one-way delay per
   "loss".  Sampled so that repeated losses in a window don't synchronise. *)
let rto_base_us = 2_000
let rto_jitter_us = 3_000

let edict ?src ?dst ?(extra_max_us = 0) kind ~p ~from_us ~until_us =
  if p < 0.0 || p > 1.0 then invalid_arg "Faults.edict: p";
  if until_us < from_us then invalid_arg "Faults.edict: window";
  { kind; p; extra_max_us; src; dst; from_us; until_us }

let create ?(transport = Lossy) ~seed () =
  { rng = Sim.Rng.create seed; transport; edicts = []; partitions = [];
    crashed = Address.Set.empty }

let transport t = t.transport

let install t edicts = t.edicts <- t.edicts @ edicts

let partition t ~group ~from_us ~until_us =
  if until_us < from_us then invalid_arg "Faults.partition: window";
  t.partitions <-
    t.partitions
    @ [ { members = Address.Set.of_list group;
          p_from = from_us; p_until = until_us } ]

let mark_crashed t addr = t.crashed <- Address.Set.add addr t.crashed

let clear_crashed t addr = t.crashed <- Address.Set.remove addr t.crashed

let is_crashed t addr = Address.Set.mem addr t.crashed

let clear t =
  t.edicts <- [];
  t.partitions <- [];
  t.crashed <- Address.Set.empty

type verdict =
  | Deliver of { extra_delay_us : int; copies : int; reorder : bool }
  | Drop_injected
  | Drop_partitioned
  | Drop_crashed

let matches e ~now ~src ~dst =
  now >= e.from_us && now < e.until_us
  && (match e.src with None -> true | Some a -> Address.equal a src)
  && (match e.dst with None -> true | Some a -> Address.equal a dst)

(* The first partition window that separates src from dst; returns its
   heal time so the Reliable transport can buffer until then. *)
let partitioned t ~now ~src ~dst =
  List.find_opt
    (fun p ->
      now >= p.p_from && now < p.p_until
      && Address.Set.mem src p.members <> Address.Set.mem dst p.members)
    t.partitions

let rto t = rto_base_us + Sim.Rng.int t.rng rto_jitter_us

let decide t ~now ~src ~dst =
  if Address.Set.mem src t.crashed || Address.Set.mem dst t.crashed then
    Drop_crashed
  else
    match partitioned t ~now ~src ~dst with
    | Some p -> (
        match t.transport with
        | Lossy -> Drop_partitioned
        | Reliable ->
            (* Buffered by the transport: delivered once the partition
               heals, plus a retransmission backoff. *)
            Deliver
              { extra_delay_us = p.p_until - now + rto t;
                copies = 1; reorder = false })
    | None ->
        let extra = ref 0 in
        let copies = ref 1 in
        let reorder = ref false in
        let dropped = ref false in
        List.iter
          (fun e ->
            if (not !dropped) && matches e ~now ~src ~dst
               && Sim.Rng.bernoulli t.rng e.p
            then
              match (e.kind, t.transport) with
              | Drop, Lossy -> dropped := true
              | Drop, Reliable ->
                  (* retransmitted: loss becomes latency *)
                  extra := !extra + rto t
              | Delay, _ ->
                  extra :=
                    !extra
                    + (if e.extra_max_us <= 0 then 0
                       else Sim.Rng.int t.rng (e.extra_max_us + 1))
              | Duplicate, Lossy -> copies := !copies + 1
              | Reorder, Lossy ->
                  reorder := true;
                  extra :=
                    !extra
                    + (if e.extra_max_us <= 0 then 0
                       else Sim.Rng.int t.rng (e.extra_max_us + 1))
              | Duplicate, Reliable | Reorder, Reliable ->
                  (* TCP dedups and orders; nothing observable. *)
                  ())
          t.edicts;
        if !dropped then Drop_injected
        else
          Deliver
            { extra_delay_us = !extra; copies = !copies; reorder = !reorder }
