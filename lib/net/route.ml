(* Crash-aware partition routing.

   With replication each partition is served by a replication group: an
   ordered list of member addresses registered once at cluster setup
   (index 0 is the initial primary).  [resolve] names the member every
   frontend should currently address for that partition; failover moves
   it by calling [promote], which also bumps the partition's term — a
   generation counter that lets replicas discard stale WAL shipments
   from a deposed primary.

   The table itself is a plain control-plane structure: it models the
   routing state a membership service would hold, so reads and updates
   are deliberately not subject to simulated network faults. *)

type group = {
  members : Address.t array;  (* registration order; [0] = initial primary *)
  mutable primary : Address.t;
  mutable term : int;
}

type t = { groups : group option array }

let create ~partitions =
  if partitions < 1 then invalid_arg "Route.create: partitions < 1";
  { groups = Array.make partitions None }

let group t ~partition =
  match t.groups.(partition) with
  | Some g -> g
  | None -> invalid_arg "Route: partition has no registered group"

let register t ~partition members =
  if members = [] then invalid_arg "Route.register: empty group";
  if t.groups.(partition) <> None then
    invalid_arg "Route.register: group already registered";
  t.groups.(partition) <-
    Some { members = Array.of_list members; primary = List.hd members; term = 1 }

let registered t ~partition = t.groups.(partition) <> None
let resolve t ~partition = (group t ~partition).primary
let term t ~partition = (group t ~partition).term
let members t ~partition = Array.to_list (group t ~partition).members

let is_primary t ~partition addr =
  Address.equal (resolve t ~partition) addr

let is_member t ~partition addr =
  Array.exists (Address.equal addr) (group t ~partition).members

(* First live member in registration order that is not [avoid]; the
   deterministic successor rule every run agrees on. *)
let find_successor t ~partition ~live ~avoid =
  let g = group t ~partition in
  let n = Array.length g.members in
  let rec scan i =
    if i >= n then None
    else
      let m = g.members.(i) in
      if (not (Address.equal m avoid)) && live m then Some m else scan (i + 1)
  in
  scan 0

let promote t ~partition ~to_ =
  let g = group t ~partition in
  if not (Array.exists (Address.equal to_) g.members) then
    invalid_arg "Route.promote: target is not a group member";
  g.primary <- to_;
  g.term <- g.term + 1;
  g.term
