(* Crash-aware partition routing for replication groups.

   Each partition has an ordered member list (index 0 = initial
   primary), a current primary, and a term — a generation counter
   bumped on every promotion so replicas can reject WAL shipments from
   deposed primaries.  This is control-plane state (what a membership
   service would hold): reads and updates are not subject to simulated
   network faults. *)

type t

val create : partitions:int -> t

(* Register the replication group once; first member is the primary.
   Raises on empty lists or double registration. *)
val register : t -> partition:int -> Address.t list -> unit

val registered : t -> partition:int -> bool

(* Current primary for the partition (raises if unregistered). *)
val resolve : t -> partition:int -> Address.t

val term : t -> partition:int -> int
val members : t -> partition:int -> Address.t list
val is_primary : t -> partition:int -> Address.t -> bool
val is_member : t -> partition:int -> Address.t -> bool

(* First member in registration order that is [live] and not [avoid]. *)
val find_successor :
  t -> partition:int -> live:(Address.t -> bool) -> avoid:Address.t ->
  Address.t option

(* Make [to_] the primary and bump the term; returns the new term.
   Raises if [to_] is not a member. *)
val promote : t -> partition:int -> to_:Address.t -> int
