(* FIFO links keep a per-link record (keyed by a single packed int, so a
   send costs one int-hash probe and no tuple allocation) holding the link
   clock and a pending-delivery queue.  Instead of one engine event and one
   closure per message, each link arms at most one outstanding dispatcher
   event; the dispatcher delivers every queued message whose time has
   come, so same-instant bursts on a link coalesce into a single heap
   entry (ALOHA-KV-style request batching).  FIFO order is the queue
   order; delivery times are non-decreasing per link.

   An optional {!Faults.t} oracle is consulted on every send: it can drop
   the message (injected loss, partition cut-off, crashed endpoint — each
   counted under its own key), add delay, duplicate, or ask for the
   message to bypass the link's FIFO queue (reordering). *)

type 'msg link = {
  l_src : Address.t;
  l_dst : Address.t;
  mutable clock : int;
      (* Latest delivery time handed out on this link; later sends never
         deliver before it, which is the FIFO guarantee. *)
  pending : (int * 'msg) Queue.t;
  mutable armed : bool;  (* a dispatcher event is in the agenda *)
}

type drop_stats = {
  injected : int;  (* probabilistic link faults *)
  partitioned : int;  (* partition windows *)
  crashed : int;  (* endpoint marked crashed at send or delivery *)
  unregistered : int;  (* no handler at delivery time *)
}

type 'msg t = {
  engine : Sim.Engine.t;
  rng : Sim.Rng.t;
  latency : Latency.t;
  fifo : bool;
  faults : Faults.t option;
  handlers : (Address.t, src:Address.t -> 'msg -> unit) Hashtbl.t;
  links : (int, 'msg link) Hashtbl.t;
  mutable sent : int;
  mutable d_injected : int;
  mutable d_partitioned : int;
  mutable d_crashed : int;
  mutable d_unregistered : int;
  mutable trace : (src:Address.t -> dst:Address.t -> 'msg -> unit) option;
  mutable fault_hook :
    (now:int -> dst:Address.t -> kind:[ `Drop | `Delay ] -> unit) option;
}

let create engine rng ~latency ?(fifo = true) ?faults () =
  { engine; rng; latency; fifo; faults;
    handlers = Hashtbl.create 64;
    links = Hashtbl.create 256;
    sent = 0;
    d_injected = 0; d_partitioned = 0; d_crashed = 0; d_unregistered = 0;
    trace = None; fault_hook = None }

let engine t = t.engine

let register t addr handler = Hashtbl.replace t.handlers addr handler

let unregister t addr = Hashtbl.remove t.handlers addr

let set_trace t f = t.trace <- Some f

let set_fault_hook t f = t.fault_hook <- Some f

let note_fault t ~dst ~kind =
  match t.fault_hook with
  | None -> ()
  | Some f -> f ~now:(Sim.Engine.now t.engine) ~dst ~kind

let link_of t ~src ~dst =
  let id = (Address.to_int src lsl 16) lor Address.to_int dst in
  match Hashtbl.find_opt t.links id with
  | Some l -> l
  | None ->
      let l =
        { l_src = src; l_dst = dst; clock = 0;
          pending = Queue.create (); armed = false }
      in
      Hashtbl.add t.links id l;
      l

(* A message reaching a dead address: during a crash window this is a
   crash drop (the host is down), otherwise an unregistered-address drop
   (nobody ever served, or the process was stopped). *)
let count_undeliverable t dst =
  let crashed =
    match t.faults with Some f -> Faults.is_crashed f dst | None -> false
  in
  if crashed then t.d_crashed <- t.d_crashed + 1
  else t.d_unregistered <- t.d_unregistered + 1

(* Deliver every queued message that is due, then re-arm for the next
   one (if any).  The handler is resolved once per dispatch: handlers
   only change from other engine events, never mid-dispatch. *)
let rec dispatch t l =
  let now = Sim.Engine.now t.engine in
  let handler = Hashtbl.find_opt t.handlers l.l_dst in
  let rec drain () =
    match Queue.peek_opt l.pending with
    | Some (at, msg) when at <= now ->
        ignore (Queue.pop l.pending);
        (match handler with
        | Some h -> h ~src:l.l_src msg
        | None -> count_undeliverable t l.l_dst);
        drain ()
    | Some _ | None -> ()
  in
  drain ();
  arm t l

and arm t l =
  match Queue.peek_opt l.pending with
  | None -> l.armed <- false
  | Some (at, _) ->
      l.armed <- true;
      Sim.Engine.schedule t.engine ~at (fun () -> dispatch t l)

(* Direct (non-FIFO) delivery: used for the fifo=false mode and for
   fault-reordered messages that must overtake their link queue. *)
let deliver_direct t ~src ~dst ~at msg =
  Sim.Engine.schedule t.engine ~at (fun () ->
      match Hashtbl.find_opt t.handlers dst with
      | Some handler -> handler ~src msg
      | None -> count_undeliverable t dst)

let enqueue_fifo t ~src ~dst ~earliest msg =
  let l = link_of t ~src ~dst in
  let at = if earliest > l.clock then earliest else l.clock in
  l.clock <- at;
  Queue.push (at, msg) l.pending;
  if not l.armed then arm t l

let deliver t ~src ~dst ~earliest ~reorder msg =
  if t.fifo && not reorder then enqueue_fifo t ~src ~dst ~earliest msg
  else deliver_direct t ~src ~dst ~at:earliest msg

let send t ~src ~dst msg =
  t.sent <- t.sent + 1;
  (match t.trace with Some f -> f ~src ~dst msg | None -> ());
  let lat =
    if Address.equal src dst then Latency.local_delivery
    else Latency.sample t.latency t.rng
  in
  let now = Sim.Engine.now t.engine in
  match t.faults with
  | None -> deliver t ~src ~dst ~earliest:(now + lat) ~reorder:false msg
  | Some f -> (
      match Faults.decide f ~now ~src ~dst with
      | Faults.Drop_injected ->
          t.d_injected <- t.d_injected + 1;
          note_fault t ~dst ~kind:`Drop
      | Faults.Drop_partitioned ->
          t.d_partitioned <- t.d_partitioned + 1;
          note_fault t ~dst ~kind:`Drop
      | Faults.Drop_crashed ->
          t.d_crashed <- t.d_crashed + 1;
          note_fault t ~dst ~kind:`Drop
      | Faults.Deliver { extra_delay_us; copies; reorder } ->
          if extra_delay_us > 0 || copies > 1 || reorder then
            note_fault t ~dst ~kind:`Delay;
          let earliest = now + lat + extra_delay_us in
          for _ = 1 to copies do
            deliver t ~src ~dst ~earliest ~reorder msg
          done)

let messages_sent t = t.sent

let drop_stats t =
  { injected = t.d_injected;
    partitioned = t.d_partitioned;
    crashed = t.d_crashed;
    unregistered = t.d_unregistered }

let messages_dropped t =
  t.d_injected + t.d_partitioned + t.d_crashed + t.d_unregistered
