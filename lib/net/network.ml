(* FIFO links keep a per-link record (keyed by a single packed int, so a
   send costs one int-hash probe and no tuple allocation) holding the link
   clock and a pending-delivery queue.  Instead of one engine event and one
   closure per message, each link arms at most one outstanding dispatcher
   event; the dispatcher delivers every queued message whose time has
   come, so same-instant bursts on a link coalesce into a single heap
   entry (ALOHA-KV-style request batching).  FIFO order is the queue
   order; delivery times are non-decreasing per link. *)

type 'msg link = {
  l_src : Address.t;
  l_dst : Address.t;
  mutable clock : int;
      (* Latest delivery time handed out on this link; later sends never
         deliver before it, which is the FIFO guarantee. *)
  pending : (int * 'msg) Queue.t;
  mutable armed : bool;  (* a dispatcher event is in the agenda *)
}

type 'msg t = {
  engine : Sim.Engine.t;
  rng : Sim.Rng.t;
  latency : Latency.t;
  fifo : bool;
  handlers : (Address.t, src:Address.t -> 'msg -> unit) Hashtbl.t;
  links : (int, 'msg link) Hashtbl.t;
  mutable sent : int;
  mutable dropped : int;
  mutable trace : (src:Address.t -> dst:Address.t -> 'msg -> unit) option;
}

let create engine rng ~latency ?(fifo = true) () =
  { engine; rng; latency; fifo;
    handlers = Hashtbl.create 64;
    links = Hashtbl.create 256;
    sent = 0; dropped = 0; trace = None }

let engine t = t.engine

let register t addr handler = Hashtbl.replace t.handlers addr handler

let unregister t addr = Hashtbl.remove t.handlers addr

let set_trace t f = t.trace <- Some f

let link_of t ~src ~dst =
  let id = (Address.to_int src lsl 16) lor Address.to_int dst in
  match Hashtbl.find_opt t.links id with
  | Some l -> l
  | None ->
      let l =
        { l_src = src; l_dst = dst; clock = 0;
          pending = Queue.create (); armed = false }
      in
      Hashtbl.add t.links id l;
      l

(* Deliver every queued message that is due, then re-arm for the next
   one (if any).  The handler is resolved once per dispatch: handlers
   only change from other engine events, never mid-dispatch. *)
let rec dispatch t l =
  let now = Sim.Engine.now t.engine in
  let handler = Hashtbl.find_opt t.handlers l.l_dst in
  let rec drain () =
    match Queue.peek_opt l.pending with
    | Some (at, msg) when at <= now ->
        ignore (Queue.pop l.pending);
        (match handler with
        | Some h -> h ~src:l.l_src msg
        | None -> t.dropped <- t.dropped + 1);
        drain ()
    | Some _ | None -> ()
  in
  drain ();
  arm t l

and arm t l =
  match Queue.peek_opt l.pending with
  | None -> l.armed <- false
  | Some (at, _) ->
      l.armed <- true;
      Sim.Engine.schedule t.engine ~at (fun () -> dispatch t l)

let send t ~src ~dst msg =
  t.sent <- t.sent + 1;
  (match t.trace with Some f -> f ~src ~dst msg | None -> ());
  let lat =
    if Address.equal src dst then Latency.local_delivery
    else Latency.sample t.latency t.rng
  in
  let earliest = Sim.Engine.now t.engine + lat in
  if t.fifo then begin
    let l = link_of t ~src ~dst in
    let at = if earliest > l.clock then earliest else l.clock in
    l.clock <- at;
    Queue.push (at, msg) l.pending;
    if not l.armed then arm t l
  end
  else
    Sim.Engine.schedule t.engine ~at:earliest (fun () ->
        match Hashtbl.find_opt t.handlers dst with
        | Some handler -> handler ~src msg
        | None -> t.dropped <- t.dropped + 1)

let messages_sent t = t.sent
let messages_dropped t = t.dropped
