(** Simulated point-to-point message network.

    Delivery is asynchronous with latency drawn from a {!Latency.t} model.
    Ordering guarantee: none between distinct sends (like UDP/parallel TCP
    streams); protocols that need ordering must build it themselves — as the
    real systems do.  A per-link option enforces FIFO ordering when a
    protocol layer wants TCP-like semantics.

    Delivery to an unregistered address counts as a drop (recorded), which
    failure-injection tests exploit.  An optional {!Faults.t} oracle adds
    deterministic, seeded fault injection: drops, delays, duplicates,
    reorderings, partitions, and crash windows (see {!Faults}). *)

type 'msg t

type drop_stats = {
  injected : int;  (** lost to probabilistic link faults *)
  partitioned : int;  (** cut off by partition windows *)
  crashed : int;  (** endpoint inside a crash window *)
  unregistered : int;  (** no handler at the destination *)
}

val create :
  Sim.Engine.t -> Sim.Rng.t -> latency:Latency.t -> ?fifo:bool ->
  ?faults:Faults.t -> unit -> 'msg t
(** [fifo] (default [true]) delivers messages on each (src, dst) link in
    send order, modelling a TCP connection per link.  [faults], when given,
    is consulted on every send. *)

val engine : _ t -> Sim.Engine.t

val register : 'msg t -> Address.t -> (src:Address.t -> 'msg -> unit) -> unit
(** Install the handler that receives messages addressed to the node.
    Re-registering replaces the handler. *)

val unregister : 'msg t -> Address.t -> unit
(** Remove the handler; subsequent messages to this address are dropped
    (models a crashed node). *)

val send : 'msg t -> src:Address.t -> dst:Address.t -> 'msg -> unit
(** Queue a message for delivery after a sampled latency.  Self-sends are
    delivered with loopback latency. *)

val messages_sent : _ t -> int

val messages_dropped : _ t -> int
(** Total drops, all causes (= the sum of the {!drop_stats} fields). *)

val drop_stats : _ t -> drop_stats
(** Drops broken out by cause, so chaos invariants can assert precisely. *)

val set_trace : 'msg t -> (src:Address.t -> dst:Address.t -> 'msg -> unit) -> unit
(** Observe every send (for tests, debugging, and chaos trace hashing).
    The hook fires at send time, before the fault oracle — so a trace
    covers attempted sends and is independent of delivery outcome. *)

val set_fault_hook :
  'msg t ->
  (now:int -> dst:Address.t -> kind:[ `Drop | `Delay ] -> unit) -> unit
(** Observe every fault verdict that perturbs a message: [`Drop] for any
    dropped send, [`Delay] for a delivery with added delay, duplication or
    reordering.  Used by the observability layer to correlate lifecycle
    spans with injected chaos. *)
