(** Request/response RPC over the simulated {!Network}.

    Mirrors the role fbthrift plays in the paper's implementation: typed
    request and response payloads, correlation of replies with outstanding
    calls, and support for asynchronous (deferred) replies so that a server
    can answer after further internal processing or remote reads.

    One-way messages are also provided — epoch-switch notifications and
    value pushes do not need replies. *)

type ('req, 'resp) t

val create :
  Sim.Engine.t -> Sim.Rng.t -> latency:Latency.t -> ?faults:Faults.t ->
  unit -> ('req, 'resp) t
(** [faults], when given, injects deterministic link faults into the
    underlying network (see {!Faults}). *)

val engine : _ t -> Sim.Engine.t

val serve :
  ('req, 'resp) t -> Address.t ->
  (src:Address.t -> 'req -> reply:('resp -> unit) -> unit) -> unit
(** Install the request handler for a node.  [reply] may be called at any
    later simulated time, exactly once; calling it twice raises
    [Failure]. *)

val serve_oneway :
  ('req, 'resp) t -> Address.t -> (src:Address.t -> 'req -> unit) -> unit
(** Install the handler for one-way messages addressed to the node. *)

val call :
  ('req, 'resp) t -> src:Address.t -> dst:Address.t -> 'req ->
  ('resp -> unit) -> unit
(** Send a request; the callback fires when the reply arrives back at
    [src]. *)

val send : ('req, 'resp) t -> src:Address.t -> dst:Address.t -> 'req -> unit
(** Fire-and-forget one-way message. *)

val crash : _ t -> Address.t -> unit
(** Drop all future messages to the node (handlers removed). Outstanding
    replies from the node are lost. *)

val messages_sent : _ t -> int

val messages_dropped : _ t -> int

val drop_stats : _ t -> Network.drop_stats

val set_trace : _ t -> (src:Address.t -> dst:Address.t -> unit) -> unit
(** Observe every send on the underlying network (payloads elided — the
    chaos trace hash covers timing and endpoints only). *)

val set_fault_hook :
  _ t -> (now:int -> dst:Address.t -> kind:[ `Drop | `Delay ] -> unit) -> unit
(** Observe fault verdicts on the underlying network (see
    {!Network.set_fault_hook}). *)

val outstanding_calls : _ t -> int
(** Calls whose replies have not yet been delivered (for quiescence
    checks in tests). *)
