type t = {
  engine : Sim.Engine.t;
  mutable offset_us : int;
  drift_ppm : float;
  created_at : int;
  mutable last_reading : int;
}

let create engine ?(offset_us = 0) ?(drift_ppm = 0.0) () =
  { engine; offset_us; drift_ppm;
    created_at = Sim.Engine.now engine;
    last_reading = 0 }

let perfect engine = create engine ()

let true_now t = Sim.Engine.now t.engine

let raw_now t =
  let true_t = true_now t in
  let elapsed = true_t - t.created_at in
  let drift = int_of_float (float_of_int elapsed *. t.drift_ppm /. 1e6) in
  true_t + t.offset_us + drift

let now t =
  let r = raw_now t in
  (* Monotonicity: a sync step never makes the clock go backwards. *)
  let r = if r < t.last_reading then t.last_reading else r in
  t.last_reading <- r;
  r

let offset t = raw_now t - true_now t

let skew_by t ~us = t.offset_us <- t.offset_us + us

let sync t ~error_bound_us =
  if error_bound_us < 0 then invalid_arg "Node_clock.sync: negative bound";
  let err = offset t in
  if err > error_bound_us then t.offset_us <- t.offset_us - (err - error_bound_us)
  else if err < -error_bound_us then
    t.offset_us <- t.offset_us + (-error_bound_us - err)

let start_sync_daemon t ~period_us ~error_bound_us =
  if period_us <= 0 then invalid_arg "Node_clock.start_sync_daemon: period";
  let rec tick () =
    sync t ~error_bound_us;
    Sim.Engine.after t.engine period_us tick
  in
  Sim.Engine.after t.engine period_us tick
