(** A server's local clock: true (simulated) time plus a bounded offset and
    a slow drift, periodically re-disciplined as NTP would.

    ECC needs no tight synchronisation for correctness — only that each FE
    issue timestamps within the validity window the epoch manager granted —
    but skew affects performance by forcing conservative windows.  This
    model lets tests inject skew and verify both properties. *)

type t

val create :
  Sim.Engine.t -> ?offset_us:int -> ?drift_ppm:float -> unit -> t
(** [offset_us] (default 0) is the initial clock error; [drift_ppm]
    (default 0.0) is the frequency error in parts-per-million. *)

val perfect : Sim.Engine.t -> t
(** A clock that reads exactly the simulated time. *)

val now : t -> int
(** The local clock reading in microseconds.  Monotone non-decreasing even
    when a sync step would jump it backwards (steps are slewed, as real
    NTP does for small corrections). *)

val true_now : t -> int
(** The underlying simulated time (for assertions in tests). *)

val offset : t -> int
(** Current clock error, [now - true_now]. *)

val skew_by : t -> us:int -> unit
(** Shift the clock offset by [us] (positive = run fast, negative = lag).
    Fault injection uses this to turn a node into a straggler mid-run; a
    later {!sync} (or the sync daemon) re-disciplines it.  A negative skew
    does not violate {!now}'s monotonicity — readings plateau instead. *)

val sync : t -> error_bound_us:int -> unit
(** An NTP exchange completed: clamp the offset into
    [-error_bound_us, +error_bound_us]. *)

val start_sync_daemon : t -> period_us:int -> error_bound_us:int -> unit
(** Re-run {!sync} every [period_us] forever. *)
