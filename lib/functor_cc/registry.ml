type ctx = {
  key : string;
  version : int;
  reads : (string * Value.t option) list;
  args : Value.t list;
}

let read ctx key =
  match List.assoc_opt key ctx.reads with
  | Some v -> v
  | None -> raise Not_found

let read_exn ctx key =
  match read ctx key with Some v -> v | None -> raise Not_found

let arg ctx i =
  match List.nth_opt ctx.args i with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Registry.arg: index %d" i)

type dep_write =
  | Dep_put of Value.t
  | Dep_delete
  | Dep_skip

type outcome =
  | Commit of Value.t
  | Abort
  | Delete
  | Commit_det of Value.t * (string * dep_write) list

type handler = ctx -> outcome

(* Domain safety (--runtime real): registration happens at deployment
   time, before the cluster starts — the table is read-only once worker
   domains exist, so [find] stays lock-free (concurrent [Hashtbl]
   readers are safe when nobody writes).  The mutex makes the
   registration phase itself safe should two setup paths race, and keeps
   the duplicate check atomic with the insert. *)
type t = { handlers : (string, handler) Hashtbl.t; lock : Mutex.t }

let create () = { handlers = Hashtbl.create 32; lock = Mutex.create () }

let register t name handler =
  Mutex.lock t.lock;
  if Hashtbl.mem t.handlers name then begin
    Mutex.unlock t.lock;
    invalid_arg (Printf.sprintf "Registry.register: duplicate handler %S" name)
  end;
  Hashtbl.add t.handlers name handler;
  Mutex.unlock t.lock

let find t name = Hashtbl.find_opt t.handlers name

let names t =
  Mutex.lock t.lock;
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) t.handlers [] in
  Mutex.unlock t.lock;
  List.sort String.compare names

(* "cadd": add arg0 to own key's value, abort when result < arg1 (floor).
   The canonical conditional-transfer handler from Figure 5 (T3). *)
let cadd ctx =
  let current =
    match read ctx ctx.key with Some v -> Value.to_int v | None -> 0
  in
  let delta = Value.to_int (arg ctx 0) in
  let floor = Value.to_int (arg ctx 1) in
  let result = current + delta in
  if result < floor then Abort else Commit (Value.int result)

let with_builtins () =
  let t = create () in
  register t "cadd" cadd;
  t
