module Key = Mvstore.Key

type callbacks = {
  is_local : Key.t -> bool;
  remote_get : key:Key.t -> version:int -> (Value.t option -> unit) -> unit;
  send_push :
    dst_key:Key.t -> version:int -> src_key:Key.t -> Value.t option -> unit;
  send_dep_write : key:Key.t -> version:int -> Funct.final -> unit;
  notify_final :
    key:Key.t -> version:int -> pending:Funct.pending ->
    final:Funct.final -> unit;
  exec : cost:int -> (unit -> unit) -> unit;
  now : unit -> int;
}

type t = {
  table : Funct.t Mvstore.Table.t;
  registry : Registry.t;
  cb : callbacks;
  compute_cost_us : int;
  (* Counter handles, resolved once here instead of a string-keyed
     hashtable lookup per event on the compute path. *)
  m_on_demand_waits : int ref;
  m_push_hits : int ref;
  m_remote_reads : int ref;
  m_pushes_sent : int ref;
  m_dep_marker_triggers : int ref;
  m_missing_handler : int ref;
  m_computed : int ref;
  m_aborts_computed : int ref;
  m_dep_writes_resolved : int ref;
  m_dep_write_duplicate : int ref;
  m_dep_write_direct : int ref;
  m_fastpath_merges : int ref;
  m_push_late : int ref;
  m_push_orphan : int ref;
  m_aborted_in_epoch : int ref;
}

let create ~registry ~callbacks ~compute_cost_us ~metrics () =
  let c = Sim.Metrics.counter metrics in
  { table = Mvstore.Table.create (); registry; cb = callbacks;
    compute_cost_us;
    m_on_demand_waits = c "fcc.on_demand_waits";
    m_push_hits = c "fcc.push_hits";
    m_remote_reads = c "fcc.remote_reads";
    m_pushes_sent = c "fcc.pushes_sent";
    m_dep_marker_triggers = c "fcc.dep_marker_triggers";
    m_missing_handler = c "fcc.missing_handler";
    m_computed = c "fcc.computed";
    m_aborts_computed = c "fcc.aborts_computed";
    m_dep_writes_resolved = c "fcc.dep_writes_resolved";
    m_dep_write_duplicate = c "fcc.dep_write_duplicate";
    m_dep_write_direct = c "fcc.dep_write_direct";
    m_fastpath_merges = c "fcc.fastpath_merges";
    m_push_late = c "fcc.push_late";
    m_push_orphan = c "fcc.push_orphan";
    m_aborted_in_epoch = c "fcc.aborted_in_epoch" }

let table t = t.table

let load_initial t ~key value =
  match
    Mvstore.Table.put_unchecked t.table ~key ~version:0 (Funct.mk_value value)
  with
  | Ok () -> ()
  | Error _ ->
      invalid_arg
        (Printf.sprintf "load_initial: duplicate key %S" (Key.name key))

let install t ~key ~version ~lo ~hi record =
  Mvstore.Table.put t.table ~key ~version ~lo ~hi record

let watermark t ~key =
  match Mvstore.Table.chain t.table key with
  | None -> -1
  | Some c -> Mvstore.Chain.watermark c

(* After a record turns final, push the key's watermark forward over the
   (now contiguous) prefix of final records.  This is the single-threaded
   counterpart of the CAS loop in Algorithm 1 lines 7–9.  One rank search
   then a linear walk, instead of a binary search per advanced version. *)
let refresh_watermark chain =
  Mvstore.Chain.advance_watermark_while chain ~f:Funct.is_final

(* Two kinds of dependent keys (§IV-E): declared ones, which carry a
   Dep_marker that must be resolved even when the write is skipped or
   the transaction aborts; and dynamically named ones (e.g. TPC-C
   order rows keyed by the order id assigned here), which have no
   marker and are simply inserted.  Handlers name dependent keys as
   strings; they are interned here, once per outcome.  Shared by the
   sequential [apply_outcome] and the real-runtime [par_commit] — both
   call it on the orchestrating domain ([Key.intern] takes a lock, but
   worker domains never get here). *)
let dep_writes_for (p : Funct.pending) outcome =
  let explicit =
    match outcome with
    | Registry.Commit_det (_, writes) -> writes
    | Registry.Commit _ | Registry.Abort | Registry.Delete -> []
  in
  let declared = p.farg.Funct.dependents in
  let of_dep_write = function
    | Registry.Dep_put v -> Funct.Committed v
    | Registry.Dep_delete -> Funct.Deleted_v
    | Registry.Dep_skip -> Funct.Aborted_v
  in
  let resolved_declared =
    List.map
      (fun dk ->
        match List.assoc_opt (Key.name dk) explicit with
        | Some w -> (dk, of_dep_write w)
        | None ->
            (* On txn abort (or when unspecified) the marker must
               reflect "no write": Aborted_v makes reads skip it. *)
            (dk, Funct.Aborted_v))
      declared
  in
  let dynamic =
    List.filter_map
      (fun (dk, w) ->
        if List.exists (fun d -> String.equal (Key.name d) dk) declared then
          None
        else Some (Key.intern dk, of_dep_write w))
      explicit
  in
  resolved_declared @ dynamic

let final_of_outcome = function
  | Registry.Commit v | Registry.Commit_det (v, _) -> Funct.Committed v
  | Registry.Abort -> Funct.Aborted_v
  | Registry.Delete -> Funct.Deleted_v

(* ---- Algorithm 1: Get ---------------------------------------------- *)

(* The chain handle is threaded through the whole per-key recursion
   (get → compute → finalize → refresh_watermark), so after the entry
   lookup the hot path never touches the table again. *)

let rec get t ~key ~version k =
  match Mvstore.Table.chain t.table key with
  | None -> k None
  | Some chain -> get_in t ~chain ~key ~version k

and get_in t ~chain ~key ~version k =
  match Mvstore.Chain.find_le chain ~version with
  | None -> k None
  | Some (ver, record) -> get_record t ~chain ~key ~ver record k

and get_record t ~chain ~key ~ver record k =
  match record.Funct.state with
  | Funct.Final (Funct.Committed v) -> k (Some v)
  | Funct.Final Funct.Deleted_v -> k None
  | Funct.Final Funct.Aborted_v ->
      (* Line 22–23: skip the aborted version downwards. *)
      if ver = 0 then k None else get_in t ~chain ~key ~version:(ver - 1) k
  | Funct.Pending p ->
      incr t.m_on_demand_waits;
      Funct.add_waiter p (fun final ->
          match final with
          | Funct.Committed v -> k (Some v)
          | Funct.Deleted_v -> k None
          | Funct.Aborted_v ->
              if ver = 0 then k None
              else get_in t ~chain ~key ~version:(ver - 1) k);
      ensure_computing t ~chain ~key ~ver record p

(* ---- read-set gathering --------------------------------------------- *)

(* Collect the values of [keys], each at the latest version strictly below
   [ver].  Local keys recurse through [get]; remote keys race a proactive
   push (if one is destined for this functor) against an explicit remote
   read, whichever lands first. *)
and gather t ~p ~ver keys k =
  match keys with
  | [] -> k []
  | first :: _ ->
      let n = List.length keys in
      let results = Array.make n (first, None) in
      let remaining = ref n in
      let deliver i rk got v =
        if not !got then begin
          got := true;
          results.(i) <- (rk, v);
          decr remaining;
          if !remaining = 0 then k (Array.to_list results)
        end
      in
      (* Membership set built once per evaluation, not one list scan per
         remote key. *)
      let pushed_set =
        match p.Funct.farg.Funct.pushed_reads with
        | [] -> None
        | prs ->
            let h = Hashtbl.create 8 in
            List.iter (fun pk -> Hashtbl.replace h (Key.id pk) ()) prs;
            Some h
      in
      let expects_push rk =
        match pushed_set with
        | None -> false
        | Some h -> Hashtbl.mem h (Key.id rk)
      in
      List.iteri
        (fun i rk ->
          let got = ref false in
          match Funct.pushed_value p rk with
          | Some v ->
              incr t.m_push_hits;
              deliver i rk got v
          | None ->
              if t.cb.is_local rk then
                get t ~key:rk ~version:(ver - 1) (fun v -> deliver i rk got v)
              else if expects_push rk then begin
                (* §IV-B: a sibling functor will push this value; wait for
                   it instead of issuing a remote read.  If the whole
                   transaction is rolled back before the push, this
                   record is finalised as ABORTED and the waiter becomes
                   moot. *)
                Funct.on_push p ~key:rk (fun v ->
                    incr t.m_push_hits;
                    deliver i rk got v)
              end
              else begin
                (* Race: push vs remote read. *)
                Funct.on_push p ~key:rk (fun v ->
                    incr t.m_push_hits;
                    deliver i rk got v);
                incr t.m_remote_reads;
                t.cb.remote_get ~key:rk ~version:(ver - 1) (fun v ->
                    deliver i rk got v)
              end)
        keys

(* ---- computation ----------------------------------------------------- *)

and ensure_computing t ~chain ~key ~ver record (p : Funct.pending) =
  match p.status with
  | Funct.Computing -> ()
  | Funct.Installed ->
      p.status <- Funct.Computing;
      if p.retrieved_at_us < 0 then p.retrieved_at_us <- t.cb.now ();
      begin_compute t ~chain ~key ~ver record p

and begin_compute t ~chain ~key ~ver record p =
  (* Recipient-set pushes (§IV-B) happen as part of this functor's
     computing phase: ship this key's previous value to the functors of
     every recipient key, before running our own handler. *)
  let send_recipient_pushes prev_opt =
    match p.farg.Funct.recipients with
    | [] -> ()
    | recipients ->
        let push prev =
          List.iter
            (fun dst_key ->
              incr t.m_pushes_sent;
              t.cb.send_push ~dst_key ~version:ver ~src_key:key prev)
            recipients
        in
        (match prev_opt with
        | Some prev -> push prev
        | None -> get_in t ~chain ~key ~version:(ver - 1) (fun v -> push v))
  in
  match p.ftype with
  | Ftype.Value | Ftype.Aborted | Ftype.Deleted ->
      (* mk_pending rejects these; a record can only reach here through
         memory corruption. *)
      assert false
  | Ftype.Dep_marker det_key ->
      (* §IV-E: resolution arrives via deliver_dep_write once the
         determinate functor computes; we only need to make sure that
         computation is triggered. *)
      incr t.m_dep_marker_triggers;
      if t.cb.is_local det_key then compute_key t ~key:det_key ~version:ver
      else
        (* A Get at exactly the marker's version forces the remote BE to
           compute the determinate functor; the reply itself is unused. *)
        t.cb.remote_get ~key:det_key ~version:ver (fun _ -> ())
  | Ftype.Add | Ftype.Subtr | Ftype.Max | Ftype.Min ->
      get_in t ~chain ~key ~version:(ver - 1) (fun prev ->
          send_recipient_pushes (Some prev);
          t.cb.exec ~cost:t.compute_cost_us (fun () ->
              let outcome = eval_builtin p.ftype prev p.farg.Funct.args in
              apply_outcome t ~chain ~key ~ver record p outcome))
  | Ftype.User name -> (
      match Registry.find t.registry name with
      | None ->
          incr t.m_missing_handler;
          apply_outcome t ~chain ~key ~ver record p Registry.Abort
      | Some handler ->
          send_recipient_pushes None;
          gather t ~p ~ver p.farg.Funct.read_set (fun reads ->
              t.cb.exec ~cost:t.compute_cost_us (fun () ->
                  let ctx =
                    { Registry.key = Key.name key; version = ver;
                      reads =
                        List.map (fun (rk, v) -> (Key.name rk, v)) reads;
                      args = p.farg.Funct.args }
                  in
                  let outcome =
                    try handler ctx
                    with Not_found | Invalid_argument _ ->
                      (* A handler bug is a logic error: abort the txn
                         rather than wedging the engine. *)
                      Registry.Abort
                  in
                  apply_outcome t ~chain ~key ~ver record p outcome)))

and eval_builtin ftype prev args =
  let arg0 =
    match args with
    | a :: _ -> Value.to_int a
    | [] -> invalid_arg "numeric functor: missing argument"
  in
  (* Built-ins are total: an absent (or deleted) key counts as 0.  A
     built-in cannot abort, because it reads only its own key and so could
     never coordinate an all-or-nothing decision with the transaction's
     other functors (§IV-C); conditional semantics belong in user
     handlers whose read sets include the abort-influencing keys. *)
  let p = match prev with None -> 0 | Some prev_v -> Value.to_int prev_v in
  let result =
    match ftype with
    | Ftype.Add -> p + arg0
    | Ftype.Subtr -> p - arg0
    | Ftype.Max -> if arg0 > p then arg0 else p
    | Ftype.Min -> if arg0 < p then arg0 else p
    | Ftype.Value | Ftype.Aborted | Ftype.Deleted | Ftype.User _
    | Ftype.Dep_marker _ ->
        assert false
  in
  Registry.Commit (Value.int result)

and apply_outcome t ~chain ~key ~ver record p outcome =
  let final = final_of_outcome outcome in
  let deps = dep_writes_for p outcome in
  List.iter
    (fun (dk, dfinal) -> t.cb.send_dep_write ~key:dk ~version:ver dfinal)
    deps;
  finalize t ~chain ~key ~ver record p final

and finalize t ~chain ~key ~ver record p final =
  record.Funct.state <- Funct.Final final;
  (match final with
  | Funct.Aborted_v -> incr t.m_aborts_computed
  | Funct.Committed _ | Funct.Deleted_v -> ());
  incr t.m_computed;
  refresh_watermark chain;
  t.cb.notify_final ~key ~version:ver ~pending:p ~final;
  let waiters = p.waiters in
  p.waiters <- [];
  List.iter (fun w -> w final) waiters

(* ---- Algorithm 1: Compute ------------------------------------------- *)

and compute_key t ~key ~version =
  match Mvstore.Table.chain t.table key with
  | None -> ()
  | Some chain ->
      let lo = Mvstore.Chain.watermark chain + 1 in
      let pending = ref [] in
      Mvstore.Chain.iter_range chain ~lo ~hi:version (fun ver record ->
          match record.Funct.state with
          | Funct.Final _ -> ()
          | Funct.Pending p -> pending := (ver, record, p) :: !pending);
      List.iter
        (fun (ver, record, p) -> ensure_computing t ~chain ~key ~ver record p)
        (List.rev !pending)

(* ---- planner support: prepared node handles -------------------------- *)

(* A prepared node binds a still-pending record to its chain once, at plan
   construction, so plan evaluation can call [ensure_computing] directly —
   no table probe, no watermark rescan (the O(chain) walk of
   [compute_key]) per evaluation. *)
type prepared = {
  p_key : Key.t;
  p_version : int;
  p_chain : Funct.t Mvstore.Chain.t;
  p_record : Funct.t;
  p_pending : Funct.pending;
}

let prepare_in ~chain ~key ~version =
  match Mvstore.Chain.find_exact chain ~version with
  | None -> None
  | Some record -> (
      match record.Funct.state with
      | Funct.Final _ -> None
      | Funct.Pending p ->
          Some
            { p_key = key; p_version = version; p_chain = chain;
              p_record = record; p_pending = p })

let prepare t ~key ~version =
  match Mvstore.Table.chain t.table key with
  | None -> None
  | Some chain -> prepare_in ~chain ~key ~version

let compute_prepared t pr =
  (* The record may have turned final since the plan was built (an
     on-demand read raced us, or a dependent write resolved it);
     [ensure_computing] re-checks status, so this stays at-most-once. *)
  match pr.p_record.Funct.state with
  | Funct.Final _ -> ()
  | Funct.Pending p ->
      ensure_computing t ~chain:pr.p_chain ~key:pr.p_key ~ver:pr.p_version
        pr.p_record p

let prepared_key pr = pr.p_key
let prepared_version pr = pr.p_version
let prepared_pending pr = pr.p_pending

let merge_delta t ~key ~version =
  (* Fold a fast-path pending delta into its chain.  [prepare] returns
     [None] when the record is absent or already final (an on-demand read
     or an earlier merge got there first) — at-most-once either way. *)
  match prepare t ~key ~version with
  | None -> ()
  | Some pr ->
      incr t.m_fastpath_merges;
      compute_prepared t pr

(* ---- real-runtime parallel evaluation (--runtime real) ---------------- *)

(* A planner stratum contains at most one functor per key (intra-key
   edges chain same-key versions into distinct strata), and every
   in-plan read dependency resolves in an earlier stratum.  So inside a
   stratum each worker domain touches only its own item's chain: resolve
   the previous own-key value over final records, evaluate, flip the
   record final, advance the watermark.  Everything cross-cutting —
   recipient pushes, dependent writes, waiter continuations, metric
   counters, key interning — is stashed in the task slot and applied by
   the orchestrating domain after the stratum barrier ([par_commit]),
   which also keeps `Sim.Metrics` and the obs tracer single-domain.

   The three phases split by domain:
   - [par_stage]   main domain, workers idle: eligibility + read staging
   - [par_eval]    worker domain: chain-local work only
   - [par_commit]  main domain, after the barrier: deferred effects

   Anything not provably safe (Dep_marker chasing, remote or
   still-pending reads, a missing handler) stays [Par_fallback]: the
   planner's unchanged simulated dispatch path evaluates it with the
   full machinery, and [compute_prepared]'s state re-check keeps the
   whole arrangement at-most-once. *)

type par_task = {
  pt_node : prepared;
  pt_handler : Registry.handler option; (* Some ⇔ user functor *)
  pt_reads : (Key.t * Value.t option) list; (* staged on the main domain *)
  pt_push_hits : int;
  mutable pt_out : par_out;
}

and par_out =
  | Par_fallback
  | Par_done of {
      outcome : Registry.outcome;
      prev : Value.t option; (* own key below [version], for pushes *)
      final : Funct.final;
    }

(* Value of [chain] at the highest version <= [version] reachable through
   final records only — [get]'s skip-aborted walk, minus the ability to
   wait.  [None] means a pending record blocks the walk. *)
let rec final_value_le chain ~version =
  match Mvstore.Chain.find_le chain ~version with
  | None -> Some None
  | Some (ver, record) -> (
      match record.Funct.state with
      | Funct.Final (Funct.Committed v) -> Some (Some v)
      | Funct.Final Funct.Deleted_v -> Some None
      | Funct.Final Funct.Aborted_v ->
          if ver = 0 then Some None
          else final_value_le chain ~version:(ver - 1)
      | Funct.Pending _ -> None)

let par_stage t pr =
  match pr.p_record.Funct.state with
  | Funct.Final _ -> None (* raced to final; the dispatch job no-ops *)
  | Funct.Pending p -> (
      let stage ?handler ?(reads = []) ?(push_hits = 0) () =
        (* Mirror [ensure_computing]'s entry bookkeeping so a fallback
           reset (or a raced on-demand read) observes a consistent
           record; workers never touch [status]. *)
        p.Funct.status <- Funct.Computing;
        if p.Funct.retrieved_at_us < 0 then
          p.Funct.retrieved_at_us <- t.cb.now ();
        Some
          { pt_node = pr; pt_handler = handler; pt_reads = reads;
            pt_push_hits = push_hits; pt_out = Par_fallback }
      in
      match p.Funct.status with
      | Funct.Computing -> None
      | Funct.Installed -> (
          match p.Funct.ftype with
          | Ftype.Value | Ftype.Aborted | Ftype.Deleted -> assert false
          | Ftype.Dep_marker _ ->
              (* Marker resolution may chase remote determinate functors;
                 leave it to the sequential machinery. *)
              None
          | Ftype.Add | Ftype.Subtr | Ftype.Max | Ftype.Min -> stage ()
          | Ftype.User name -> (
              match Registry.find t.registry name with
              | None -> None (* fallback counts m_missing_handler *)
              | Some handler -> (
                  (* Resolve the read set here, on the orchestrating
                     domain: push-buffer hits and cross-chain walks both
                     touch state other workers may own. *)
                  let push_hits = ref 0 in
                  let rec resolve acc = function
                    | [] -> Some (List.rev acc)
                    | rk :: rest -> (
                        match Funct.pushed_value p rk with
                        | Some v ->
                            incr push_hits;
                            resolve ((rk, v) :: acc) rest
                        | None ->
                            if not (t.cb.is_local rk) then None
                            else (
                              match Mvstore.Table.chain t.table rk with
                              | None -> resolve ((rk, None) :: acc) rest
                              | Some rchain -> (
                                  match
                                    final_value_le rchain
                                      ~version:(pr.p_version - 1)
                                  with
                                  | None -> None (* pending: must wait *)
                                  | Some v -> resolve ((rk, v) :: acc) rest)))
                  in
                  match resolve [] p.Funct.farg.Funct.read_set with
                  | None -> None
                  | Some reads ->
                      stage ~handler ~reads ~push_hits:!push_hits ()))))

let par_eval _t task =
  let pr = task.pt_node in
  let p = pr.p_pending in
  (* Own-chain walk: the only mutable state this domain touches.  If the
     walk (or the handler) fails, [pt_out] stays [Par_fallback] and the
     record is still Pending — the sequential path takes over. *)
  match final_value_le pr.p_chain ~version:(pr.p_version - 1) with
  | None -> ()
  | Some prev ->
      let outcome =
        match (p.Funct.ftype, task.pt_handler) with
        | (Ftype.Add | Ftype.Subtr | Ftype.Max | Ftype.Min), _ ->
            eval_builtin p.Funct.ftype prev p.Funct.farg.Funct.args
        | Ftype.User _, Some handler -> (
            let ctx =
              { Registry.key = Key.name pr.p_key; version = pr.p_version;
                reads =
                  List.map (fun (rk, v) -> (Key.name rk, v)) task.pt_reads;
                args = p.Funct.farg.Funct.args }
            in
            try handler ctx
            with Not_found | Invalid_argument _ -> Registry.Abort)
        | _ -> assert false
      in
      let final = final_of_outcome outcome in
      pr.p_record.Funct.state <- Funct.Final final;
      refresh_watermark pr.p_chain;
      task.pt_out <- Par_done { outcome; prev; final }

let par_commit t task =
  let pr = task.pt_node in
  let p = pr.p_pending in
  let key = pr.p_key and ver = pr.p_version in
  match task.pt_out with
  | Par_fallback ->
      (* Undo the staging claim; the simulated dispatch job re-runs
         [ensure_computing] with the full waiting machinery. *)
      p.Funct.status <- Funct.Installed;
      false
  | Par_done { outcome; prev; final } ->
      if task.pt_push_hits > 0 then
        t.m_push_hits := !(t.m_push_hits) + task.pt_push_hits;
      (match p.Funct.farg.Funct.recipients with
      | [] -> ()
      | recipients ->
          List.iter
            (fun dst_key ->
              incr t.m_pushes_sent;
              t.cb.send_push ~dst_key ~version:ver ~src_key:key prev)
            recipients);
      List.iter
        (fun (dk, dfinal) -> t.cb.send_dep_write ~key:dk ~version:ver dfinal)
        (dep_writes_for p outcome);
      (* [finalize] minus the state flip and watermark advance, which the
         worker already did on the record's own chain. *)
      (match final with
      | Funct.Aborted_v -> incr t.m_aborts_computed
      | Funct.Committed _ | Funct.Deleted_v -> ());
      incr t.m_computed;
      t.cb.notify_final ~key ~version:ver ~pending:p ~final;
      let waiters = p.Funct.waiters in
      p.Funct.waiters <- [];
      List.iter (fun w -> w final) waiters;
      true

(* ---- deliveries from the network ------------------------------------ *)

let deliver_push t ~key ~version ~src_key value =
  let orphan () = incr t.m_push_orphan in
  match Mvstore.Table.chain t.table key with
  | None -> orphan ()
  | Some chain -> (
      match Mvstore.Chain.find_le chain ~version with
      | Some (ver, record) when ver = version -> (
          match record.Funct.state with
          | Funct.Pending p -> Funct.add_push p ~key:src_key value
          | Funct.Final _ -> incr t.m_push_late)
      | Some _ | None -> orphan ())

let deliver_dep_write t ~key ~version ~final =
  let chain = Mvstore.Table.chain_of t.table key in
  match Mvstore.Chain.find_le chain ~version with
  | Some (ver, record) when ver = version -> (
      match record.Funct.state with
      | Funct.Pending p ->
          incr t.m_dep_writes_resolved;
          finalize t ~chain ~key ~ver record p final
      | Funct.Final _ -> incr t.m_dep_write_duplicate)
  | Some _ | None ->
      (* No marker installed: store the deferred write directly (covers
         workloads that skip markers for keys never read before the
         determinate functor's watermark advances). *)
      incr t.m_dep_write_direct;
      (match Mvstore.Chain.insert chain ~version (Funct.mk_final final) with
      | Ok () -> ()
      | Error `Duplicate -> ());
      refresh_watermark chain

let abort_version t ~key ~version =
  match Mvstore.Table.chain t.table key with
  | None -> ()
  | Some chain -> (
      match Mvstore.Chain.find_le chain ~version with
      | Some (ver, record) when ver = version -> (
          match record.Funct.state with
          | Funct.Pending p ->
              incr t.m_aborted_in_epoch;
              finalize t ~chain ~key ~ver record p Funct.Aborted_v
          | Funct.Final _ ->
              (* Blind VALUE/DELETE writes are installed already-final; the
                 second-round rollback must erase them too.  Safe because
                 in-epoch versions are invisible to reads until the epoch
                 closes (§III-D). *)
              incr t.m_aborted_in_epoch;
              record.Funct.state <- Funct.Final Funct.Aborted_v)
      | Some _ | None -> ())

let gc t ~before =
  Mvstore.Table.fold_chains t.table ~init:0 ~f:(fun _key chain acc ->
      let horizon = min before (Mvstore.Chain.watermark chain) in
      if horizon <= 0 then acc
      else acc + Mvstore.Chain.truncate_below chain ~version:horizon)

let pending_count t =
  Mvstore.Table.fold_chains t.table ~init:0 ~f:(fun _key chain acc ->
      Mvstore.Chain.fold chain ~init:acc ~f:(fun acc _ record ->
          if Funct.is_final record then acc else acc + 1))
