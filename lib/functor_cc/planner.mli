(** Per-epoch dependency-graph planner for the functor-computing phase
    (the [planned] compute mode).

    At epoch close the planner takes the epoch's buffered (key, version)
    items, binds each still-pending record to a {!Compute_engine.prepared}
    handle, and builds a dependency graph over the plan:

    - {e intra-key edges}: a functor depends on the plan's next-lower
      version of its own key (built-ins implicitly read their own key at
      version - 1; for user functors the edge is conservative — their
      records can finalise out of version order, but the key's watermark
      publishes in version order, so the edge keeps strata an upper
      bound on the evaluation waves);
    - {e read→write edges}: a user functor reading key [k] at version
      [v - 1] depends on the plan node writing [k] at the largest version
      <= [v - 1], when that producer is local and in the plan.

    Reads are always of strictly lower versions, so edges strictly
    increase version and the graph is a DAG.  The planner stratifies it
    (Kahn levels) purely for statistics — strata count and critical-path
    length — and then dispatches one worker-pool job per node {e in the
    original install order}, each evaluating its node directly through
    {!Compute_engine.compute_prepared}: no table probe and no
    watermark-to-version chain rescan per evaluation, which is where the
    planned mode's constant-factor win over the [pool] processor comes
    from.

    For read-set keys owned by another partition (and not already covered
    by a §IV-B pushed read), the planner emits a {e plan subscription}
    through [send_plan_sub]: the owner evaluates the producing functor and
    pushes the value back, landing in the same per-record push buffer the
    §IV-B optimisation uses.  The consumer's gather still races its own
    remote read against the push, so a lost subscription or push costs a
    round trip but can never wedge the plan.

    On-demand reads may beat the planner to any node; the engine's
    at-most-once discipline ([Installed] → [Computing]) makes the race
    benign in either direction. *)

type t

type stats = {
  nodes : int;  (** prepared (still-pending) functors in the plan *)
  edges : int;  (** dependency edges (intra-key + read→write) *)
  strata : int;  (** Kahn levels: independent waves of evaluation *)
  critical_path : int;
      (** edges on the longest dependency chain ([strata - 1] for a
          non-empty plan) *)
  subs_sent : int;  (** cross-partition plan subscriptions issued *)
}

val create :
  engine:Compute_engine.t ->
  pool:Sim.Worker_pool.t ->
  ?real:Runtime.Pool.t ->
  dispatch_cost_us:int ->
  metrics:Sim.Metrics.t ->
  ?is_local:(Mvstore.Key.t -> bool) ->
  ?send_plan_sub:
    (key:Mvstore.Key.t -> version:int -> dst_key:Mvstore.Key.t ->
     dst_version:int -> unit) ->
  ?now:(unit -> int) ->
  ?on_dispatch:(key:Mvstore.Key.t -> version:int -> unit) ->
  ?on_stratum:(size:int -> unit) ->
  ?on_stratum_done:(size:int -> workers:(int * int * int) array -> unit) ->
  ?on_evaluated:(elapsed_us:int -> unit) ->
  unit -> t
(** [is_local] defaults to treating every key as local (single-partition
    and unit-test setups); [send_plan_sub] defaults to a no-op, in which
    case remote read-set values arrive through gather's ordinary
    push/remote-read race.  [now] (simulated time) feeds the
    plan-evaluation histogram; [on_dispatch] observes each node leaving
    the plan for the pool (lifecycle tracing); [on_evaluated] fires once
    when the last node of a plan finalises.

    [real] switches on the [--runtime real] backend: each Kahn stratum
    is evaluated eagerly as one batch on the worker-domain pool
    (barriering between strata) before the simulated dispatch runs;
    evaluated records then no-op through {!Compute_engine.compute_prepared},
    so the simulated timeline is unchanged.  [on_stratum] observes each
    batch leaving for the domain pool (lifecycle tracing);
    [on_stratum_done] fires after the stratum barrier with the per-worker
    (completed, stolen, queue) deltas across the batch — the occupancy
    feed for the epoch ledger's per-worker profiling tracks. *)

val run : t -> items:Processor.item list -> stats
(** Build and dispatch one plan over [items] (an epoch's drained buffer,
    in install order).  Already-final items are skipped.  Records
    [plan.*] metrics; returns the plan's statistics. *)

val plans : t -> int
(** Number of non-empty plans built since creation. *)
