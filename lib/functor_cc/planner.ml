module Key = Mvstore.Key

type t = {
  engine : Compute_engine.t;
  pool : Sim.Worker_pool.t;
  real : Runtime.Pool.t option;
  dispatch_cost_us : int;
  is_local : Key.t -> bool;
  send_plan_sub :
    key:Key.t -> version:int -> dst_key:Key.t -> dst_version:int -> unit;
  now : unit -> int;
  on_dispatch : (key:Key.t -> version:int -> unit) option;
  on_stratum : (size:int -> unit) option;
  on_stratum_done : (size:int -> workers:(int * int * int) array -> unit) option;
  on_evaluated : (elapsed_us:int -> unit) option;
  m_plans : int ref;
  m_nodes : int ref;
  m_edges : int ref;
  m_subs_sent : int ref;
  m_real_strata : int ref;
  m_real_evaluated : int ref;
  m_real_fallback : int ref;
  metrics : Sim.Metrics.t;
  mutable plans : int;
}

type stats = {
  nodes : int;
  edges : int;
  strata : int;
  critical_path : int;
  subs_sent : int;
}

let create ~engine ~pool ?real ~dispatch_cost_us ~metrics
    ?(is_local = fun _ -> true)
    ?(send_plan_sub = fun ~key:_ ~version:_ ~dst_key:_ ~dst_version:_ -> ())
    ?(now = fun () -> 0) ?on_dispatch ?on_stratum ?on_stratum_done
    ?on_evaluated () =
  let c = Sim.Metrics.counter metrics in
  { engine; pool; real; dispatch_cost_us; is_local; send_plan_sub; now;
    on_dispatch; on_stratum; on_stratum_done; on_evaluated;
    m_plans = c "plan.plans";
    m_nodes = c "plan.nodes";
    m_edges = c "plan.edges";
    m_subs_sent = c "plan.subs_sent";
    m_real_strata = c "plan.real_strata";
    m_real_evaluated = c "plan.real_evaluated";
    m_real_fallback = c "plan.real_fallback";
    metrics; plans = 0 }

let plans t = t.plans

(* Kahn levels over the adjacency/indegree arrays.  Edges strictly
   increase version, so the graph is a DAG and the peeling consumes every
   node; the level count is the length (in nodes) of the longest chain.
   Returns the per-level node-index membership (each level sorted in plan
   order) — the simulated runtime only reads the count, the real runtime
   dispatches each level as one batch. *)
let stratify ~n ~succs ~indeg =
  let indeg = Array.copy indeg in
  let frontier = ref [] in
  for i = n - 1 downto 0 do
    if indeg.(i) = 0 then frontier := i :: !frontier
  done;
  let levels = ref [] in
  let consumed = ref 0 in
  while !frontier <> [] do
    let level = List.sort compare !frontier in
    levels := Array.of_list level :: !levels;
    let next = ref [] in
    List.iter
      (fun i ->
        incr consumed;
        List.iter
          (fun j ->
            indeg.(j) <- indeg.(j) - 1;
            if indeg.(j) = 0 then next := j :: !next)
          succs.(i))
      level;
    frontier := !next
  done;
  assert (!consumed = n);
  Array.of_list (List.rev !levels)

let run t ~items =
  let build_t0 = Sys.time () in
  let sim_t0 = t.now () in
  let items_a = Array.of_list items in
  let n_items = Array.length items_a in
  (* 1. Prepare: bind each still-pending item to its chain + record.
     Already-final items (blind VALUE/DELETE writes, raced computations)
     carry no node but still get a dispatch job below, so the job
     sequence seen by the simulator matches the pool processor's.
     Commutative-heavy epochs put dozens of versions of the same hot key
     in one plan, so the table is probed once per distinct key and the
     chain handle reused across its items. *)
  let table = Compute_engine.table t.engine in
  let chains : (int, Funct.t Mvstore.Chain.t option) Hashtbl.t =
    Hashtbl.create 64
  in
  let chain_for key =
    let kid = Key.id key in
    match Hashtbl.find_opt chains kid with
    | Some c -> c
    | None ->
        let c = Mvstore.Table.chain table key in
        Hashtbl.add chains kid c;
        c
  in
  let entries =
    Array.map
      (fun ({ Processor.key; version } as item) ->
        match chain_for key with
        | None -> (item, None)
        | Some chain ->
            (item, Compute_engine.prepare_in ~chain ~key ~version))
      items_a
  in
  let n = Array.fold_left (fun acc (_, o) -> if o = None then acc else acc + 1) 0 entries in
  let nodes =
    let a = ref [||] and i = ref 0 in
    Array.iter
      (fun (_, o) ->
        match o with
        | None -> ()
        | Some node ->
            if !i = 0 then a := Array.make n node;
            !a.(!i) <- node;
            incr i)
      entries;
    !a
  in
  (* 2. Writer buckets: key id -> version-ascending (version, node index)
     array.  Nodes are appended in plan order; installs arrive mostly in
     version order, so buckets are usually born sorted and the sort is
     skipped. *)
  let buckets : (int, (int * int) list ref * bool ref) Hashtbl.t =
    Hashtbl.create 64
  in
  Array.iteri
    (fun i node ->
      let kid = Key.id (Compute_engine.prepared_key node) in
      let ver = Compute_engine.prepared_version node in
      match Hashtbl.find_opt buckets kid with
      | Some (r, sorted) ->
          (match !r with
          | (prev, _) :: _ -> if ver < prev then sorted := false
          | [] -> ());
          r := (ver, i) :: !r
      | None -> Hashtbl.add buckets kid (ref [ (ver, i) ], ref true))
    nodes;
  let frozen : (int, (int * int) array) Hashtbl.t =
    Hashtbl.create (Hashtbl.length buckets)
  in
  Hashtbl.iter
    (fun kid (r, sorted) ->
      let a = Array.of_list !r in
      let len = Array.length a in
      if !sorted then
        (* reverse the prepend order in place: ascending versions *)
        for i = 0 to (len / 2) - 1 do
          let tmp = a.(i) in
          a.(i) <- a.(len - 1 - i);
          a.(len - 1 - i) <- tmp
        done
      else
        Array.sort
          (fun (v1, _) (v2, _) ->
            if (v1 : int) < v2 then -1 else if v1 > v2 then 1 else 0)
          a;
      Hashtbl.add frozen kid a)
    buckets;
  (* Largest plan version <= bound for a key, if any. *)
  let producer_le kid ~bound =
    match Hashtbl.find_opt frozen kid with
    | None -> None
    | Some a ->
        let lo = ref 0 and hi = ref (Array.length a - 1) and ans = ref (-1) in
        while !lo <= !hi do
          let mid = (!lo + !hi) / 2 in
          if fst a.(mid) <= bound then begin
            ans := mid;
            lo := mid + 1
          end
          else hi := mid - 1
        done;
        if !ans < 0 then None else Some a.(!ans)
  in
  let succs = Array.make n [] in
  let indeg = Array.make n 0 in
  let edges = ref 0 in
  let subs = ref 0 in
  let add_edge src dst =
    succs.(src) <- dst :: succs.(src);
    indeg.(dst) <- indeg.(dst) + 1;
    incr edges
  in
  (* 3a. Intra-key edges: each functor depends on the plan's next-lower
     version of its own key — exactly the previous element of its
     version-ascending bucket, so no lookup is needed.  Built-ins really
     do read own-key at version - 1; for user functors the edge is
     conservative (the watermark publishes in version order even though
     their records may finalise out of it). *)
  Hashtbl.iter
    (fun _kid a ->
      for k = 1 to Array.length a - 1 do
        add_edge (snd a.(k - 1)) (snd a.(k))
      done)
    frozen;
  (* 3b. Read→write edges for explicit read sets. *)
  Array.iteri
    (fun i node ->
      let p = Compute_engine.prepared_pending node in
      match p.Funct.farg.Funct.read_set with
      | [] -> ()
      | read_set ->
          let key = Compute_engine.prepared_key node in
          let ver = Compute_engine.prepared_version node in
          let pushed = p.Funct.farg.Funct.pushed_reads in
          List.iter
            (fun rk ->
              if t.is_local rk then (
                match producer_le (Key.id rk) ~bound:(ver - 1) with
                | Some (_, j) -> add_edge j i
                | None -> ())
              else if not (List.exists (Key.equal rk) pushed) then begin
                (* Cross-partition read: subscribe to the owner's value at
                   the bound version; the reply rides the §IV-B push
                   path. *)
                incr subs;
                t.send_plan_sub ~key:rk ~version:(ver - 1) ~dst_key:key
                  ~dst_version:ver
              end)
            read_set)
    nodes;
  let strata_levels = if n = 0 then [||] else stratify ~n ~succs ~indeg in
  let strata = Array.length strata_levels in
  let critical_path = if strata = 0 then 0 else strata - 1 in
  let build_us =
    int_of_float (Float.max 0. ((Sys.time () -. build_t0) *. 1e6))
  in
  let stats =
    { nodes = n; edges = !edges; strata; critical_path; subs_sent = !subs }
  in
  if n > 0 then begin
    t.plans <- t.plans + 1;
    incr t.m_plans;
    t.m_nodes := !(t.m_nodes) + n;
    t.m_edges := !(t.m_edges) + !edges;
    t.m_subs_sent := !(t.m_subs_sent) + !subs;
    Sim.Metrics.record_latency t.metrics "plan.build_us" build_us;
    Sim.Metrics.record_latency t.metrics "plan.strata" strata;
    Sim.Metrics.record_latency t.metrics "plan.critical_path" critical_path;
    (* Completion tracking: one waiter per node, host-side only, so the
       evaluation histogram costs the simulation nothing. *)
    let remaining = ref n in
    Array.iter
      (fun node ->
        Funct.add_waiter (Compute_engine.prepared_pending node) (fun _ ->
            decr remaining;
            if !remaining = 0 then begin
              let elapsed_us = t.now () - sim_t0 in
              Sim.Metrics.record_latency t.metrics "plan.evaluate_us"
                elapsed_us;
              match t.on_evaluated with
              | Some f -> f ~elapsed_us
              | None -> ()
            end))
      nodes
  end;
  (* 3r. Real runtime: evaluate the plan eagerly, stratum by stratum, on
     the worker-domain pool.  Each level's items have pairwise-distinct
     keys and only read values finalised by earlier levels, so the
     workers' chain-local writes cannot conflict; [run_batch] is the
     stratum barrier and [par_commit] applies every cross-cutting effect
     back on this domain.  The simulated dispatch below still runs —
     evaluated records no-op through [compute_prepared] (keeping the
     simulated timeline identical to `--runtime sim`), while items the
     stager rejected are computed there with the full machinery. *)
  (match t.real with
  | Some rpool when n > 0 ->
      Array.iter
        (fun level ->
          (match t.on_stratum with
          | Some f -> f ~size:(Array.length level)
          | None -> ());
          incr t.m_real_strata;
          let tasks =
            Array.to_list level
            |> List.filter_map (fun i ->
                   Compute_engine.par_stage t.engine nodes.(i))
            |> Array.of_list
          in
          let before =
            match t.on_stratum_done with
            | Some _ -> Runtime.Pool.worker_stats rpool
            | None -> [||]
          in
          Runtime.Pool.run_batch rpool
            (Array.map
               (fun task () -> Compute_engine.par_eval t.engine task)
               tasks);
          (match t.on_stratum_done with
          | Some f ->
              let after = Runtime.Pool.worker_stats rpool in
              f ~size:(Array.length level)
                ~workers:
                  (Array.mapi
                     (fun i (c1, s1, q1) ->
                       let c0, s0, _ = before.(i) in
                       (c1 - c0, s1 - s0, q1))
                     after)
          | None -> ());
          Array.iter
            (fun task ->
              if Compute_engine.par_commit t.engine task then
                incr t.m_real_evaluated
              else incr t.m_real_fallback)
            tasks)
        strata_levels
  | Some _ | None -> ());
  (* 3. Dispatch one job per *item* in install order — identical job
     sequence (count, order, cost) to the pool processor, so the
     simulated timeline is mode-invariant; only the per-job host work
     differs.  Items without a node were already final and dispatch as
     no-ops, exactly like the pool's empty rescan. *)
  if n_items > 0 then
    Array.iter
      (fun ({ Processor.key; version }, node) ->
        (match t.on_dispatch with
        | Some f -> f ~key ~version
        | None -> ());
        Sim.Worker_pool.submit t.pool ~cost:t.dispatch_cost_us (fun () ->
            match node with
            | Some node -> Compute_engine.compute_prepared t.engine node
            | None -> ()))
      entries;
  stats
