type t =
  | Value
  | Aborted
  | Deleted
  | Add
  | Subtr
  | Max
  | Min
  | User of string
  | Dep_marker of Mvstore.Key.t

let is_final = function
  | Value | Aborted | Deleted -> true
  | Add | Subtr | Max | Min | User _ | Dep_marker _ -> false

let reads_own_key = function
  | Add | Subtr | Max | Min -> true
  | Value | Aborted | Deleted | User _ | Dep_marker _ -> false

let commutative = function
  | Add | Subtr | Max | Min -> true
  | Value | Aborted | Deleted | User _ | Dep_marker _ -> false

let equal a b =
  match (a, b) with
  | Value, Value
  | Aborted, Aborted
  | Deleted, Deleted
  | Add, Add
  | Subtr, Subtr
  | Max, Max
  | Min, Min -> true
  | User x, User y -> String.equal x y
  | Dep_marker x, Dep_marker y -> Mvstore.Key.equal x y
  | ( (Value | Aborted | Deleted | Add | Subtr | Max | Min | User _
      | Dep_marker _),
      _ ) -> false

let to_string = function
  | Value -> "VALUE"
  | Aborted -> "ABORTED"
  | Deleted -> "DELETED"
  | Add -> "ADD"
  | Subtr -> "SUBTR"
  | Max -> "MAX"
  | Min -> "MIN"
  | User name -> Printf.sprintf "USER(%s)" name
  | Dep_marker key -> Printf.sprintf "DEP_MARKER(%s)" (Mvstore.Key.name key)

let pp fmt t = Format.pp_print_string fmt (to_string t)

let table_i =
  [ ("VALUE", "the literal value of the key");
    ("ABORTED", "none");
    ("DELETED", "none");
    ("ADD/SUBTR", "numerical (e.g., increment value by 1)");
    ("MAX/MIN", "numerical (e.g., update the value if it is smaller)");
    ("user-defined", "read set and arguments") ]
