(** Functor records: what one version of a key stores (§III-D Figure 4),
    plus the runtime state the compute engine attaches to it.

    A freshly installed record is either already {e final} (f-type VALUE /
    ABORTED / DELETED) or {e pending}.  A pending record transitions to
    final exactly once; interested parties (on-demand readers, remote Get
    requests, the coordinator's completion tracking) register waiters that
    fire at that transition. *)

type final =
  | Committed of Value.t
  | Aborted_v  (** reads skip to the next lower version *)
  | Deleted_v  (** reads observe deletion (⊥) *)

type farg = {
  read_set : Mvstore.Key.t list;
      (** keys the handler reads (at version - 1); empty for built-ins,
          which implicitly read their own key *)
  args : Value.t list;  (** client-supplied arguments *)
  recipients : Mvstore.Key.t list;
      (** §IV-B recipient set: keys of same-transaction functors whose read
          set includes this key; computing this functor proactively pushes
          this key's previous value to them *)
  dependents : Mvstore.Key.t list;
      (** §IV-E dependent keys this (determinate) functor may write *)
  pushed_reads : Mvstore.Key.t list;
      (** read-set keys that a same-transaction functor will push here
          proactively (§IV-B): the engine waits for the push instead of
          issuing a remote read *)
}

val farg_empty : farg
val farg_args : Value.t list -> farg

type status =
  | Installed  (** waiting in storage, computation not yet triggered *)
  | Computing  (** reads in flight; waiters accumulate *)

type pending = {
  ftype : Ftype.t;
  farg : farg;
  txn_id : int;
  coordinator : int;  (** FE node id to notify on completion *)
  mutable status : status;
  mutable waiters : (final -> unit) list;
  mutable pushed : (Mvstore.Key.t * Value.t option) list;
      (** proactively pushed reads received so far (assoc by key) *)
  mutable push_waiters : (Mvstore.Key.t * (Value.t option -> unit)) list;
      (** continuations waiting for a specific key's push *)
  mutable installed_at_us : int;
      (** when the record was installed at the BE (-1 = unset); drives the
          Figure-10 stage breakdown *)
  mutable retrieved_at_us : int;
      (** when a processor (or an on-demand read) picked the functor up *)
}

type state =
  | Final of final
  | Pending of pending

type t = { mutable state : state }

val mk_final : final -> t
val mk_value : Value.t -> t

val mk_pending :
  ftype:Ftype.t -> farg:farg -> txn_id:int -> coordinator:int -> t
(** Raises [Invalid_argument] if [ftype] is final (use {!mk_final}). *)

val is_final : t -> bool

val add_waiter : pending -> (final -> unit) -> unit

val add_push : pending -> key:Mvstore.Key.t -> Value.t option -> unit
(** Record a proactively pushed read; duplicate pushes for a key keep the
    first value (they are idempotent by construction). *)

val pushed_value : pending -> Mvstore.Key.t -> Value.t option option
(** [Some v] when a push for the key has arrived ([v] itself is the pushed
    optional value). *)

val on_push : pending -> key:Mvstore.Key.t -> (Value.t option -> unit) -> unit
(** Register a continuation fired when a push for [key] arrives.  Callers
    racing a push against a remote read must guard against double
    delivery themselves. *)

val pp_final : Format.formatter -> final -> unit
val pp : Format.formatter -> t -> unit
