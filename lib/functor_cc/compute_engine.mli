(** The functor computing engine — Algorithm 1 of the paper, adapted to an
    asynchronous (continuation-passing) execution model.

    One engine instance lives in each backend (BE) and owns that
    partition's {!Mvstore.Table}.  The engine implements:

    - [get] — Algorithm 1's [Get]: latest version not exceeding the bound;
      triggers on-demand computation of pending functors, skips ABORTED
      versions downwards, returns [None] for DELETED keys;
    - [compute_key] — Algorithm 1's [Compute]: evaluate all pending
      functors of a key from the watermark up to a version, ascending,
      advancing the value watermark as finals accumulate;
    - the §IV-B recipient-set optimisation (proactive value pushes);
    - the §IV-E dependent-key mechanism (determinate functors whose
      deferred writes resolve [Dep_marker] placeholders);
    - in-epoch aborts (the coordinator's second-round rollback).

    Cross-partition effects (remote reads, pushes, deferred writes,
    completion notifications) are delegated to callbacks supplied by the
    surrounding server, which routes them over the simulated network.
    Because every read is of a strictly lower version and version-0 initial
    data is final, the recursion always terminates.

    Keys are interned ({!Mvstore.Key.t}).  Internally the chain handle is
    threaded through the whole per-key computation, so a Get that
    triggers computation performs exactly one table probe; finalisation
    and watermark refresh perform none. *)

type t

type callbacks = {
  is_local : Mvstore.Key.t -> bool;
      (** does this partition own the key? *)
  remote_get :
    key:Mvstore.Key.t -> version:int -> (Value.t option -> unit) -> unit;
      (** read a non-local key (latest version <= [version]) *)
  send_push :
    dst_key:Mvstore.Key.t -> version:int -> src_key:Mvstore.Key.t ->
    Value.t option -> unit;
      (** deliver a recipient-set push to the partition owning [dst_key] *)
  send_dep_write :
    key:Mvstore.Key.t -> version:int -> Funct.final -> unit;
      (** deliver a deferred (dependent-key) write to the key's partition *)
  notify_final :
    key:Mvstore.Key.t -> version:int -> pending:Funct.pending ->
    final:Funct.final -> unit;
      (** a pending functor reached its final state (drives coordinator
          completion tracking and stage metrics) *)
  exec : cost:int -> (unit -> unit) -> unit;
      (** charge [cost] µs of CPU, then continue — wired to the server's
          worker pool *)
  now : unit -> int;
      (** current simulated time, for stage-timing bookkeeping *)
}

val create :
  registry:Registry.t ->
  callbacks:callbacks ->
  compute_cost_us:int ->
  metrics:Sim.Metrics.t ->
  unit -> t

val table : t -> Funct.t Mvstore.Table.t

val load_initial : t -> key:Mvstore.Key.t -> Value.t -> unit
(** Install initial data at version 0 (final, below every timestamp). *)

val install :
  t -> key:Mvstore.Key.t -> version:int -> lo:int -> hi:int -> Funct.t ->
  (unit, Mvstore.Table.put_error) result
(** The write-only-phase [Put]: version must lie in [lo, hi]. *)

val get :
  t -> key:Mvstore.Key.t -> version:int -> (Value.t option -> unit) -> unit

val compute_key : t -> key:Mvstore.Key.t -> version:int -> unit

(** {2 Planner support}

    A {!prepared} handle binds a still-pending record to its chain once,
    at plan-construction time, so the planner can evaluate it later with
    zero table probes and no watermark rescan.  Handles are only valid
    for the engine instance that produced them. *)

type prepared

val prepare : t -> key:Mvstore.Key.t -> version:int -> prepared option
(** [None] when the (key, version) record is absent or already final. *)

val prepare_in :
  chain:Funct.t Mvstore.Chain.t -> key:Mvstore.Key.t -> version:int ->
  prepared option
(** Like {!prepare} with the key's chain already in hand — bulk callers
    (the planner) probe the table once per distinct key, not once per
    item.  [chain] must be [key]'s chain in the owning engine's table. *)

val compute_prepared : t -> prepared -> unit
(** Evaluate a prepared node via [ensure_computing].  Idempotent: if the
    record turned final (or started computing) since the plan was built,
    this is a no-op — at-most-once is preserved either way. *)

val prepared_key : prepared -> Mvstore.Key.t
val prepared_version : prepared -> int
val prepared_pending : prepared -> Funct.pending

val merge_delta : t -> key:Mvstore.Key.t -> version:int -> unit
(** Fold a coordination-free fast-path delta (a commutative built-in
    installed outside any epoch batch) into its chain: evaluate the
    pending record at (key, version) now, pulling earlier own-key
    versions on demand.  Idempotent and at-most-once — a no-op when the
    record is absent, already final, or already computing (an on-demand
    read may have folded it first).  Counted as [fcc.fastpath_merges]. *)

(** {2 Real-runtime parallel evaluation}

    The [--runtime real] backend evaluates one planner stratum at a time
    on a pool of worker domains.  A stratum holds at most one functor per
    key and only reads values finalised by earlier strata, so the worker
    side ({!par_eval}) touches nothing but its own item's chain; every
    cross-cutting effect (pushes, dependent writes, waiters, metrics,
    interning) is staged in the task and applied by {!par_commit} on the
    orchestrating domain after the stratum barrier.  Items the stager
    rejects — or whose evaluation could not complete chain-locally — fall
    back to the unchanged sequential dispatch path. *)

type par_task

val par_stage : t -> prepared -> par_task option
(** Main domain, workers idle.  [None] when the item must take the
    sequential path (already final/computing, Dep_marker, missing
    handler, remote or still-pending reads).  A returned task has
    claimed the record ([Installed] → [Computing]). *)

val par_eval : t -> par_task -> unit
(** Worker domain.  Chain-local only: resolve own-key prev over final
    records, evaluate, flip the record final, advance the watermark.  On
    any failure the task reverts to fallback and the record stays
    pending. *)

val par_commit : t -> par_task -> bool
(** Main domain, after the stratum barrier.  Applies the deferred
    effects in stratum order and returns [true]; or, for a fallback
    task, releases the claim ([Computing] → [Installed]) so the
    sequential dispatch re-evaluates it, and returns [false]. *)

val deliver_push :
  t -> key:Mvstore.Key.t -> version:int -> src_key:Mvstore.Key.t ->
  Value.t option -> unit

val deliver_dep_write :
  t -> key:Mvstore.Key.t -> version:int -> final:Funct.final -> unit

val abort_version : t -> key:Mvstore.Key.t -> version:int -> unit
(** Coordinator-initiated in-epoch abort of the functor at (key, version).
    A no-op when the version is absent or already final. *)

val watermark : t -> key:Mvstore.Key.t -> int
(** The key's value watermark (-1 when the key is unknown). *)

val gc : t -> before:int -> int
(** Reclaim historical versions: for every key, drop records older than
    [min before watermark], keeping the newest final at or below the
    horizon as the base value for reads at or above it.  Reads strictly
    below the horizon may observe the key as absent — GC shortens the
    historical-read window.  Returns records reclaimed.  Safe at any
    time: only immutable (sub-watermark) history is touched. *)

val pending_count : t -> int
(** Number of records still pending across the partition (test helper;
    O(table size)). *)
