(** The backend's asynchronous functor processor (§IV-D).

    While an epoch is open, installs only buffer (key, version) metadata,
    tagged with the installing transaction's epoch.  When an epoch closes
    ({!release}), the metadata buffered for it moves to the live queue and
    each item is dispatched to the server's worker pool, which evaluates
    the key's uncomputed functors in ascending version order through
    {!Compute_engine.compute_key}.  On-demand reads may beat the processor
    to a functor; the engine's at-most-once discipline makes that race
    benign. *)

type t

type item = { key : Mvstore.Key.t; version : int }

val create :
  engine:Compute_engine.t ->
  pool:Sim.Worker_pool.t ->
  dispatch_cost_us:int ->
  metrics:Sim.Metrics.t ->
  ?on_dispatch:(key:Mvstore.Key.t -> version:int -> unit) ->
  unit -> t
(** [on_dispatch] observes each item as it leaves the buffer for the
    worker pool (lifecycle tracing); absent on untraced runs. *)

val buffer : t -> epoch:int -> key:Mvstore.Key.t -> version:int -> unit
(** Record metadata for a functor installed in the given (open) epoch. *)

val release : t -> upto_epoch:int -> unit
(** Epochs <= [upto_epoch] closed: enqueue their buffered items for
    asynchronous processing. *)

val release_ondemand : t -> upto_epoch:int -> unit
(** Like {!release}, but each dispatch job issues a [Get] at the item's
    own version instead of a watermark-to-version rescan: evaluation is
    demand-driven down the read chain (the [ondemand] compute mode). *)

val drain : t -> upto_epoch:int -> item list
(** Remove and return the buffered items of epochs <= [upto_epoch], in
    release order (epochs ascending, items in install order within an
    epoch) without dispatching them — the planner's entry point. *)

val buffered : t -> int
(** Items awaiting release (test helper). *)

val dispatched : t -> int
(** Total items handed to the pool since creation. *)
