type item = { key : Mvstore.Key.t; version : int }

type t = {
  engine : Compute_engine.t;
  pool : Sim.Worker_pool.t;
  dispatch_cost_us : int;
  m_dispatched : int ref;
  buffers : (int, item list ref) Hashtbl.t;  (* epoch -> reverse order *)
  mutable dispatched : int;
  on_dispatch : (key:Mvstore.Key.t -> version:int -> unit) option;
}

let create ~engine ~pool ~dispatch_cost_us ~metrics ?on_dispatch () =
  { engine; pool; dispatch_cost_us;
    m_dispatched = Sim.Metrics.counter metrics "proc.dispatched";
    buffers = Hashtbl.create 8; dispatched = 0; on_dispatch }

let buffer t ~epoch ~key ~version =
  let items =
    match Hashtbl.find_opt t.buffers epoch with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add t.buffers epoch r;
        r
  in
  items := { key; version } :: !items

let dispatch t { key; version } =
  t.dispatched <- t.dispatched + 1;
  incr t.m_dispatched;
  (match t.on_dispatch with
  | Some f -> f ~key ~version
  | None -> ());
  Sim.Worker_pool.submit t.pool ~cost:t.dispatch_cost_us (fun () ->
      Compute_engine.compute_key t.engine ~key ~version)

let release t ~upto_epoch =
  let ready =
    Hashtbl.fold
      (fun epoch items acc ->
        if epoch <= upto_epoch then (epoch, items) :: acc else acc)
      t.buffers []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.iter
    (fun (epoch, items) ->
      Hashtbl.remove t.buffers epoch;
      List.iter (dispatch t) (List.rev !items))
    ready

let buffered t =
  Hashtbl.fold (fun _ items acc -> acc + List.length !items) t.buffers 0

let dispatched t = t.dispatched
