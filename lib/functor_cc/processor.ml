type item = { key : Mvstore.Key.t; version : int }

type t = {
  engine : Compute_engine.t;
  pool : Sim.Worker_pool.t;
  dispatch_cost_us : int;
  m_dispatched : int ref;
  buffers : (int, item list ref) Hashtbl.t;  (* epoch -> reverse order *)
  mutable dispatched : int;
  on_dispatch : (key:Mvstore.Key.t -> version:int -> unit) option;
}

let create ~engine ~pool ~dispatch_cost_us ~metrics ?on_dispatch () =
  { engine; pool; dispatch_cost_us;
    m_dispatched = Sim.Metrics.counter metrics "proc.dispatched";
    buffers = Hashtbl.create 8; dispatched = 0; on_dispatch }

let buffer t ~epoch ~key ~version =
  let items =
    match Hashtbl.find_opt t.buffers epoch with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add t.buffers epoch r;
        r
  in
  items := { key; version } :: !items

let dispatch_with t job { key; version } =
  t.dispatched <- t.dispatched + 1;
  incr t.m_dispatched;
  (match t.on_dispatch with
  | Some f -> f ~key ~version
  | None -> ());
  Sim.Worker_pool.submit t.pool ~cost:t.dispatch_cost_us (fun () ->
      job ~key ~version)

let dispatch t item =
  dispatch_with t
    (fun ~key ~version -> Compute_engine.compute_key t.engine ~key ~version)
    item

(* Demand-driven variant: the dispatch job issues a Get at the item's own
   version, so evaluation unfolds lazily down the read chain instead of
   scanning the whole key from the watermark.  The value itself is
   discarded — only the computation side effect matters. *)
let dispatch_ondemand t item =
  dispatch_with t
    (fun ~key ~version ->
      Compute_engine.get t.engine ~key ~version (fun _ -> ()))
    item

let ready_epochs t ~upto_epoch =
  Hashtbl.fold
    (fun epoch items acc ->
      if epoch <= upto_epoch then (epoch, items) :: acc else acc)
    t.buffers []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let release_with t ~upto_epoch dispatch_one =
  List.iter
    (fun (epoch, items) ->
      Hashtbl.remove t.buffers epoch;
      List.iter dispatch_one (List.rev !items))
    (ready_epochs t ~upto_epoch)

let release t ~upto_epoch = release_with t ~upto_epoch (dispatch t)
let release_ondemand t ~upto_epoch =
  release_with t ~upto_epoch (dispatch_ondemand t)

let drain t ~upto_epoch =
  List.concat_map
    (fun (epoch, items) ->
      Hashtbl.remove t.buffers epoch;
      List.rev !items)
    (ready_epochs t ~upto_epoch)

let buffered t =
  Hashtbl.fold (fun _ items acc -> acc + List.length !items) t.buffers 0

let dispatched t = t.dispatched
