(** Functor types (Table I).

    A functor is an (f-type, f-argument) pair stored as one version of a
    key.  [Value], [Aborted] and [Deleted] are {e final} — no computation
    needed.  The numeric built-ins read only their own key's previous
    version.  [User] names a handler in the {!Registry}.  [Dep_marker] is
    this implementation's realisation of §IV-E dependent keys: a
    placeholder that resolves when the determinate functor's deferred
    write (or skip) arrives. *)

type t =
  | Value  (** f-argument is the literal value *)
  | Aborted  (** this version was aborted *)
  | Deleted  (** tombstone *)
  | Add  (** numeric increment of own key *)
  | Subtr  (** numeric decrement of own key *)
  | Max  (** keep the larger of old value and argument *)
  | Min  (** keep the smaller of old value and argument *)
  | User of string  (** named handler with explicit read set *)
  | Dep_marker of Mvstore.Key.t
      (** dependent-key placeholder; payload is the determinate key *)

val is_final : t -> bool
(** True for [Value], [Aborted], [Deleted] — the f-types excluded from
    computation by lines 5 and 18–20 of Algorithm 1. *)

val reads_own_key : t -> bool
(** True for the numeric built-ins, whose read set "comprises only the key
    to which the functor was written" (§IV-B). *)

val commutative : t -> bool
(** True for the numeric built-ins [Add]/[Subtr]/[Max]/[Min].  Each is an
    associative, commutative fold over its own key's history, so any
    interleaving of such functors on a chain converges to the same final
    value — the algebraic property the coordination-free fast path relies
    on. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val table_i : (string * string) list
(** The rows of the paper's Table I: (f-type, f-argument representation),
    printed by the [table1] bench target. *)
