type final =
  | Committed of Value.t
  | Aborted_v
  | Deleted_v

type farg = {
  read_set : Mvstore.Key.t list;
  args : Value.t list;
  recipients : Mvstore.Key.t list;
  dependents : Mvstore.Key.t list;
  pushed_reads : Mvstore.Key.t list;
}

let farg_empty =
  { read_set = []; args = []; recipients = []; dependents = [];
    pushed_reads = [] }

let farg_args args = { farg_empty with args }

type status = Installed | Computing

type pending = {
  ftype : Ftype.t;
  farg : farg;
  txn_id : int;
  coordinator : int;
  mutable status : status;
  mutable waiters : (final -> unit) list;
  mutable pushed : (Mvstore.Key.t * Value.t option) list;
  mutable push_waiters : (Mvstore.Key.t * (Value.t option -> unit)) list;
  mutable installed_at_us : int;
  mutable retrieved_at_us : int;
}

type state =
  | Final of final
  | Pending of pending

type t = { mutable state : state }

let mk_final f = { state = Final f }

let mk_value v = mk_final (Committed v)

let mk_pending ~ftype ~farg ~txn_id ~coordinator =
  if Ftype.is_final ftype then
    invalid_arg "Funct.mk_pending: final f-type; use mk_final";
  { state =
      Pending
        { ftype; farg; txn_id; coordinator; status = Installed; waiters = [];
          pushed = []; push_waiters = []; installed_at_us = -1;
          retrieved_at_us = -1 } }

let is_final t = match t.state with Final _ -> true | Pending _ -> false

let add_waiter p w = p.waiters <- w :: p.waiters

let rec assoc_key k = function
  | [] -> None
  | (k', v) :: tl -> if Mvstore.Key.equal k k' then Some v else assoc_key k tl

let add_push p ~key v =
  if assoc_key key p.pushed = None then begin
    p.pushed <- (key, v) :: p.pushed;
    let ready, waiting =
      List.partition (fun (k, _) -> Mvstore.Key.equal k key) p.push_waiters
    in
    p.push_waiters <- waiting;
    List.iter (fun (_, w) -> w v) ready
  end

let pushed_value p key = assoc_key key p.pushed

let on_push p ~key w = p.push_waiters <- (key, w) :: p.push_waiters

let pp_final fmt = function
  | Committed v -> Format.fprintf fmt "VALUE %a" Value.pp v
  | Aborted_v -> Format.pp_print_string fmt "ABORTED"
  | Deleted_v -> Format.pp_print_string fmt "DELETED"

let pp fmt t =
  match t.state with
  | Final f -> pp_final fmt f
  | Pending p ->
      Format.fprintf fmt "%a[%s]" Ftype.pp p.ftype
        (match p.status with Installed -> "installed" | Computing -> "computing")
