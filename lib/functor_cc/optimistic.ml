let handler_name = "occ_validate"

(* A snapshot entry is (key, observed) where observed is [Tup []] for
   "absent" and [Tup [v]] for "present with value v" — Value.t has no
   option constructor. *)
let encode_entry (key, observed) =
  let payload =
    match observed with
    | None -> Value.tup []
    | Some v -> Value.tup [ v ]
  in
  Value.tup [ Value.str key; payload ]

let decode_entry v =
  let key = Value.to_str (Value.nth v 0) in
  let observed =
    match Value.to_tup (Value.nth v 1) with
    | [] -> None
    | [ x ] -> Some x
    | _ -> invalid_arg "occ_validate: malformed snapshot entry"
  in
  (key, observed)

let encode_snapshot entries = Value.tup (List.map encode_entry entries)

let decode_snapshot v = List.map decode_entry (Value.to_tup v)

let validate (ctx : Registry.ctx) =
  let snapshot = decode_snapshot (Registry.arg ctx 0) in
  let new_value = Registry.arg ctx 1 in
  let unchanged (key, observed) =
    let current = Registry.read ctx key in
    match (observed, current) with
    | None, None -> true
    | Some a, Some b -> Value.equal a b
    | None, Some _ | Some _, None -> false
  in
  if List.for_all unchanged snapshot then Registry.Commit new_value
  else Registry.Abort

let register registry = Registry.register registry handler_name validate

let make_functor ~snapshot ~new_value ~txn_id ~coordinator =
  let farg =
    { Funct.read_set = List.map (fun (k, _) -> Mvstore.Key.intern k) snapshot;
      args = [ encode_snapshot snapshot; new_value ];
      recipients = [];
      dependents = [];
      pushed_reads = [] }
  in
  Funct.mk_pending ~ftype:(Ftype.User handler_name) ~farg ~txn_id ~coordinator
