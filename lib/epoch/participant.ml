type window = { epoch : int; lo : int; hi : int; authorized : bool }

type auth_state =
  | Waiting  (** no grant yet (startup) *)
  | Authorized of { epoch : int; lo : int; hi : int; next_duration : int }
  | Revoked of { epoch : int; hi : int; next_duration : int; acked : bool }
      (** authorization for [epoch] revoked; straggler-rule starts may use
          timestamps in (hi, hi + next_duration] *)

type t = {
  rpc : Protocol.rpc;
  addr : Net.Address.t;
  em : Net.Address.t;
  clock : Clocksync.Node_clock.t;
  straggler_opt : bool;
  metrics : Sim.Metrics.t;
  in_flight : (int, int) Hashtbl.t;  (* epoch -> count *)
  orphans : (int, unit) Hashtbl.t;
      (* revoked epochs whose Grant never arrived; acked when drained *)
  mutable state : auth_state;
  mutable granted : int;  (* latest epoch granted *)
  mutable max_acked_revoke : int;  (* highest epoch whose revoke we acked *)
  mutable on_open : epoch:int -> lo:int -> hi:int -> unit;
  mutable on_closed : epoch:int -> unit;
  mutable close_gate : (epoch:int -> (unit -> unit) -> unit) option;
      (* wraps the delivery of on_closed: replication defers the close
         (watermark advance) until the epoch is durable on every live
         replica, while on_open proceeds immediately *)
  mutable observers : (unit -> unit) list;
}

let ignore_open ~epoch:_ ~lo:_ ~hi:_ = ()

let ignore_closed ~epoch:_ = ()

let in_flight t ~epoch =
  match Hashtbl.find_opt t.in_flight epoch with Some n -> n | None -> 0

let notify_observers t = List.iter (fun f -> f ()) t.observers

let send_ack t ~epoch =
  if epoch > t.max_acked_revoke then t.max_acked_revoke <- epoch;
  Sim.Metrics.incr t.metrics "fe.revoke_acks";
  Net.Rpc.send t.rpc ~src:t.addr ~dst:t.em (Protocol.Revoke_ack { epoch })

(* Ack the revoke as soon as the revoked epoch has no in-flight txns; the
   same rule applies to orphan revokes (epochs whose grant we missed). *)
let maybe_ack t =
  (match t.state with
  | Revoked r when (not r.acked) && in_flight t ~epoch:r.epoch = 0 ->
      t.state <- Revoked { r with acked = true };
      send_ack t ~epoch:r.epoch
  | Revoked _ | Authorized _ | Waiting -> ());
  if Hashtbl.length t.orphans > 0 then begin
    let ready =
      Hashtbl.fold
        (fun e () acc -> if in_flight t ~epoch:e = 0 then e :: acc else acc)
        t.orphans []
    in
    List.iter
      (fun e ->
        Hashtbl.remove t.orphans e;
        send_ack t ~epoch:e)
      (List.sort compare ready)
  end

let handle_grant t ~epoch ~lo ~hi ~next_duration =
  (* A grant for an epoch whose revoke we already acked is a reordered
     straggler message: the EM has moved on believing we have nothing in
     flight there, so accepting it would let us issue timestamps into a
     closed epoch.  Ignore it. *)
  if epoch > t.granted && epoch > t.max_acked_revoke then begin
    t.granted <- epoch;
    t.state <- Authorized { epoch; lo; hi; next_duration };
    if epoch > 1 then begin
      (* Grant of e doubles as "e - 1 closed". *)
      let closed = epoch - 1 in
      let fire () =
        t.on_closed ~epoch:closed;
        Sim.Metrics.incr t.metrics "fe.epochs_closed"
      in
      (match t.close_gate with
      | None -> fire ()
      | Some gate -> gate ~epoch:closed fire)
    end;
    t.on_open ~epoch ~lo ~hi;
    notify_observers t
  end

let handle_revoke t ~epoch =
  (match t.state with
  | Authorized a when a.epoch = epoch ->
      t.state <-
        Revoked { epoch; hi = a.hi; next_duration = a.next_duration;
                  acked = false }
  | Revoked r when r.epoch = epoch ->
      (* Duplicate (EM re-broadcast): if we already acked, our ack was
         probably lost — resend it.  Otherwise the pending maybe_ack path
         still covers it. *)
      if r.acked then send_ack t ~epoch
  | Waiting | Authorized _ | Revoked _ ->
      if epoch < t.granted || epoch <= t.max_acked_revoke then
        (* Stale revoke for an epoch we have left behind; the EM can only
           be re-broadcasting because our ack was lost. *)
        send_ack t ~epoch
      else
        (* Orphan revoke: the Grant for [epoch] never arrived (lost or
           still in flight).  Record it and ack once nothing is in flight
           for that epoch, so a lost Grant cannot wedge the switch; the
           grant itself, if it turns up later, is ignored. *)
        Hashtbl.replace t.orphans epoch ());
  maybe_ack t;
  notify_observers t

let create ~rpc ~addr ~em ~clock ~straggler_opt ~metrics () =
  let t =
    { rpc; addr; em; clock; straggler_opt; metrics;
      in_flight = Hashtbl.create 8; orphans = Hashtbl.create 4;
      state = Waiting; granted = 0; max_acked_revoke = 0;
      on_open = ignore_open; on_closed = ignore_closed; close_gate = None;
      observers = [] }
  in
  Net.Rpc.serve_oneway rpc addr (fun ~src:_ msg ->
      match msg with
      | Protocol.Grant { epoch; lo; hi; next_duration } ->
          handle_grant t ~epoch ~lo ~hi ~next_duration
      | Protocol.Revoke { epoch } -> handle_revoke t ~epoch
      | Protocol.Revoke_ack _ -> ());
  t

let set_hooks t ~on_open ~on_closed =
  t.on_open <- on_open;
  t.on_closed <- on_closed

let set_close_gate t gate = t.close_gate <- Some gate

let window t =
  match t.state with
  | Waiting -> None
  | Authorized { epoch; lo; hi; _ } ->
      (* A server may start a transaction only while its local clock is
         within the validity period (§II). *)
      let now = Clocksync.Node_clock.now t.clock in
      if now > hi then None else Some { epoch; lo; hi; authorized = true }
  | Revoked { epoch; hi; next_duration; _ } ->
      (* Straggler starts land in epoch + 1; once we have acked a revoke
         for that epoch (orphan path) the EM believes it drained, so no
         new starts may enter it. *)
      if (not t.straggler_opt) || epoch + 1 <= t.max_acked_revoke then None
      else
        (* §III-C: timestamps of unauthorized starts must not exceed the
           previous finish plus the next epoch's duration. *)
        Some
          { epoch = epoch + 1; lo = hi + 1; hi = hi + next_duration;
            authorized = false }

let txn_started t ~epoch =
  Hashtbl.replace t.in_flight epoch (in_flight t ~epoch + 1)

let txn_finished t ~epoch =
  let n = in_flight t ~epoch in
  if n <= 0 then invalid_arg "Participant.txn_finished: not in flight";
  if n = 1 then Hashtbl.remove t.in_flight epoch
  else Hashtbl.replace t.in_flight epoch (n - 1);
  maybe_ack t

let current_epoch t = t.granted

let on_state_change t f = t.observers <- f :: t.observers
