(** Frontend-side epoch state.

    Tracks the authorization the EM granted, counts in-flight transactions
    per epoch so revocations can be acknowledged exactly when the epoch
    has drained, and implements the §III-C straggler optimisation: after a
    revocation is acknowledged locally, new transactions may start
    {e without} authorization, provided their timestamps do not exceed
    [previous finish + next epoch's duration].  Such transactions are
    accounted against the {e next} epoch (they become visible together
    with it).

    The [on_closed] hook fires when the grant for epoch [e + 1] arrives —
    i.e. when epoch [e] is globally closed — and is where the server
    releases buffered functor metadata and delayed latest-version reads. *)

type window = {
  epoch : int;  (** the epoch this transaction will belong to *)
  lo : int;  (** lowest admissible timestamp time-field *)
  hi : int;  (** highest admissible timestamp time-field *)
  authorized : bool;  (** false = started under the straggler rule *)
}

type t

val create :
  rpc:Protocol.rpc ->
  addr:Net.Address.t ->
  em:Net.Address.t ->
  clock:Clocksync.Node_clock.t ->
  straggler_opt:bool ->
  metrics:Sim.Metrics.t ->
  unit -> t
(** Registers the FE's control-plane handler immediately. *)

val set_hooks :
  t ->
  on_open:(epoch:int -> lo:int -> hi:int -> unit) ->
  on_closed:(epoch:int -> unit) ->
  unit

val set_close_gate : t -> (epoch:int -> (unit -> unit) -> unit) -> unit
(** Interpose on the delivery of [on_closed]: the gate receives the
    closed epoch and a thunk that performs the close, and may delay the
    thunk (replication holds the close — and with it the watermark
    advance — until the epoch is durable on every live replica).
    [on_open] for the next epoch is never delayed: new transactions may
    start while the previous epoch replicates. *)

val window : t -> window option
(** Where a transaction starting right now would live: [Some w] when
    starting is currently allowed (with or without authorization), [None]
    when the FE must hold the transaction (no grant yet, or authorization
    expired/revoked and the straggler optimisation is off). *)

val txn_started : t -> epoch:int -> unit

val txn_finished : t -> epoch:int -> unit
(** Decrement the epoch's in-flight count; sends the pending
    [Revoke_ack] when this was the last one. *)

val in_flight : t -> epoch:int -> int

val current_epoch : t -> int
(** Latest epoch granted (0 before the first grant). *)

val on_state_change : t -> (unit -> unit) -> unit
(** Register a callback invoked after every grant/revoke transition —
    the server uses it to retry held transactions. *)
