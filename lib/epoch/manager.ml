type config = { duration_us : int; lead_us : int }

let default_config = { duration_us = 25_000; lead_us = 500 }

(* Interval between Revoke re-broadcasts while a switch is pending; well
   above the fault-free switch time so retries only fire under faults. *)
let revoke_retry_us = 5_000

type phase =
  | Idle
  | Open of { epoch : int; hi : int }
  | Switching of {
      epoch : int;
      hi : int;
      mutable awaiting : Net.Address.Set.t;
      revoke_sent_at : int;
    }

type t = {
  rpc : Protocol.rpc;
  addr : Net.Address.t;
  fes : Net.Address.t list;
  clock : Clocksync.Node_clock.t;
  config : config;
  metrics : Sim.Metrics.t;
  sim : Sim.Engine.t;
  mutable phase : phase;
  mutable epochs_closed : int;
}

let create ~rpc ~addr ~fes ~clock ~config ~metrics () =
  if config.duration_us <= 0 then invalid_arg "Manager: duration_us";
  { rpc; addr; fes; clock; config; metrics; sim = Net.Rpc.engine rpc;
    phase = Idle; epochs_closed = 0 }

let current_epoch t =
  match t.phase with
  | Idle -> 0
  | Open { epoch; _ } | Switching { epoch; _ } -> epoch

let epochs_closed t = t.epochs_closed

let broadcast t msg =
  List.iter (fun fe -> Net.Rpc.send t.rpc ~src:t.addr ~dst:fe msg) t.fes

let rec open_epoch t ~epoch ~lo =
  let hi = lo + t.config.duration_us in
  t.phase <- Open { epoch; hi };
  Sim.Metrics.incr t.metrics "em.grants";
  broadcast t
    (Protocol.Grant { epoch; lo; hi; next_duration = t.config.duration_us });
  (* Schedule the revoke for the window's end, by the EM's own clock.  The
     EM clock may drift from true time; [delay] converts the local target
     into a simulated-time delay. *)
  let local_now = Clocksync.Node_clock.now t.clock in
  let delay = if hi > local_now then hi - local_now else 0 in
  Sim.Engine.after t.sim delay (fun () -> begin_switch t ~epoch ~hi)

and begin_switch t ~epoch ~hi =
  (match t.phase with
  | Open o when o.epoch = epoch ->
      t.phase <-
        Switching
          { epoch; hi;
            awaiting = Net.Address.Set.of_list t.fes;
            revoke_sent_at = Sim.Engine.now t.sim }
  | Open _ | Switching _ | Idle -> invalid_arg "Manager: bad switch state");
  Sim.Metrics.incr t.metrics "em.revokes";
  broadcast t (Protocol.Revoke { epoch });
  schedule_revoke_retry t ~epoch

(* A lost Revoke (or lost Revoke_ack) must not wedge the epoch switch
   forever: while Switching, re-send the revoke to the FEs that have not
   acked yet.  Participants treat duplicates idempotently and re-ack. *)
and schedule_revoke_retry t ~epoch =
  Sim.Engine.after t.sim revoke_retry_us (fun () ->
      match t.phase with
      | Switching s when s.epoch = epoch ->
          Sim.Metrics.incr t.metrics "em.revoke_retries";
          Net.Address.Set.iter
            (fun fe ->
              Net.Rpc.send t.rpc ~src:t.addr ~dst:fe
                (Protocol.Revoke { epoch }))
            s.awaiting;
          schedule_revoke_retry t ~epoch
      | Switching _ | Open _ | Idle -> ())

and handle_ack t ~src ~epoch =
  match t.phase with
  | Switching s when s.epoch = epoch ->
      s.awaiting <- Net.Address.Set.remove src s.awaiting;
      if Net.Address.Set.is_empty s.awaiting then begin
        let now = Sim.Engine.now t.sim in
        Sim.Metrics.record_latency t.metrics "em.switch_us"
          (now - s.revoke_sent_at);
        t.epochs_closed <- t.epochs_closed + 1;
        Sim.Metrics.incr t.metrics "em.epochs_closed";
        (* Next validity window: starts just above the previous finish, or
           at the local now when the switch overran the window. *)
        let local_now = Clocksync.Node_clock.now t.clock in
        let lo = if local_now > s.hi + 1 then local_now else s.hi + 1 in
        open_epoch t ~epoch:(epoch + 1) ~lo
      end
  | Switching _ | Open _ | Idle ->
      Sim.Metrics.incr t.metrics "em.stale_acks"

let start t =
  Net.Rpc.serve_oneway t.rpc t.addr (fun ~src msg ->
      match msg with
      | Protocol.Revoke_ack { epoch } -> handle_ack t ~src ~epoch
      | Protocol.Grant _ | Protocol.Revoke _ -> ());
  let lo = Clocksync.Node_clock.now t.clock + t.config.lead_us in
  open_epoch t ~epoch:1 ~lo
