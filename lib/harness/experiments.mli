(** Regeneration of every table and figure in the paper's evaluation
    (§V), plus the ablations called out in DESIGN.md.

    Each [figN] function runs the experiment at the given {!scale} and
    prints paper-style rows to stdout; EXPERIMENTS.md records the
    paper-vs-measured comparison.  All runs are deterministic. *)

type scale = {
  label : string;
  warmup_us : int;
  measure_us : int;
  aloha_clients : int;  (** closed-loop clients per FE at saturation *)
  calvin_clients : int;
  fig6_fractions : float list;  (** offered load as fraction of peak *)
  fig7_xs : int list;  (** warehouses / districts per host *)
  fig8_servers : int list;
  fig9_cis : float list;
  fig11_epochs_ms : int list;
}

val quick : scale
(** Small point set, short windows — minutes, for development and CI. *)

val full : scale
(** The paper's point set (slightly thinned where the curve is flat). *)

val table1 : unit -> unit
(** Print Table I: supported f-types and f-argument representations. *)

val fig6 : scale -> unit
(** Throughput vs latency, TPC-C & Scaled TPC-C NewOrder, 8 servers,
    1W/10W/1D/10D. *)

val fig7 : scale -> unit
(** Throughput vs warehouses/districts per host (NewOrder & Payment). *)

val fig8 : scale -> unit
(** Scale-out: NewOrder throughput for 1..20 servers. *)

val fig9 : scale -> unit
(** Microbenchmark throughput vs contention index, all three engines
    (ALOHA, Calvin, and the conventional 2PL/2PC baseline). *)

val fig10 : scale -> unit
(** Latency breakdown by stage under low and high contention. *)

val fig11 : scale -> unit
(** Latency vs epoch duration (medium contention, light load). *)

val ablation_straggler : scale -> unit
(** §III-C: throughput with the no-authorization start optimisation on
    vs off, under injected network delay spikes. *)

val ablation_push : scale -> unit
(** §IV-B: recipient-set pushes on vs off on a cross-partition transfer
    workload (remote-read count and latency). *)

val ablation_dependent : scale -> unit
(** §IV-E: determinate functors vs the optimistic method on a contended
    conditional-withdrawal workload (abort rate and throughput). *)

val ext_conventional : scale -> unit
(** Extension beyond the paper's measured baselines: the YCSB contention
    sweep of Fig. 9 with a conventional distributed 2PL/2PC system added —
    the "transaction-level concurrency control" the introduction argues
    against.  2PL collapses earliest (lock timeouts + restarts + the 2PC
    contention footprint), Calvin degrades, ALOHA-DB stays flat. *)

val all : scale -> unit
(** Every figure, table and ablation in order. *)
