include Kernel.Arrivals
