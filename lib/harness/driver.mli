(** Experiment driver: run a {!Setup.built} deployment through the
    generic kernel client loop (warm-up window, metrics reset,
    measurement window) and extract an engine-agnostic result.

    Per-engine abort classes and auxiliary counters are reported through
    each engine's declared metric keys — 2PL give-ups surface here
    instead of being silently zero under hardcoded ["aloha.*"] names. *)

type result = Kernel.Result.t = {
  committed : int;
  aborts : (string * int) list;
  counters : (string * int) list;
  throughput_tps : float;
  lat_mean_us : float;
  lat_p50_us : int;
  lat_p95_us : int;
  lat_p99_us : int;
  lat_p999_us : int;
  stages : (string * float) list;
  stage_stats : (string * Kernel.Result.stage_stat) list;
}

val pp_result : Format.formatter -> result -> unit

val run :
  Setup.built ->
  arrival:Arrivals.t ->
  ?obs:Obs.Ctl.t ->
  ?warmup_us:int ->
  ?measure_us:int ->
  ?seed:int ->
  unit ->
  result
(** The deployment is already created, loaded and started by
    {!Setup.build}. *)

val run_engine :
  (module Kernel.Intf.ENGINE with type cluster = 'c) ->
  cluster:'c ->
  gen:(fe:int -> Kernel.Txn.t) ->
  arrival:Arrivals.t ->
  ?on_reply:(fe:int -> Kernel.Txn.reply -> unit) ->
  ?obs:Obs.Ctl.t ->
  ?warmup_us:int ->
  ?measure_us:int ->
  ?seed:int ->
  unit ->
  result
(** Escape hatch for experiments that construct a cluster natively
    (custom engine config, fault injection) — [Alohadb.Engine]'s cluster
    type is transparent precisely so those can still use the generic
    loop.  Same as {!Kernel.Run.run}. *)
