(** Cluster + workload assembly through the kernel signatures.

    One generic {!build} replaces the old per-engine constructors: it
    creates the engine's cluster, registers the workload's handlers,
    loads the initial data, starts the cluster, and pairs it with the
    workload's request generator.  The result is a {!built} existential
    ready for {!Driver.run}.  [compute] selects an engine-specific
    compute-phase mode (ALOHA: "ondemand" / "pool" / "planned");
    [runtime] selects the execution backend ("sim" / "real") and
    [domains] the real runtime's worker-domain count. *)

type built =
  | Built :
      (module Kernel.Intf.ENGINE with type cluster = 'c)
      * 'c
      * (fe:int -> Kernel.Txn.t)
      -> built

val engines : (string * Kernel.Intf.packed) list
(** All registered engines: aloha, calvin, twopl. *)

val engine_of_name : string -> Kernel.Intf.packed option

val engine_name : Kernel.Intf.packed -> string

val build :
  Kernel.Intf.packed ->
  (module Kernel.Intf.WORKLOAD with type cfg = 'k) ->
  'k ->
  n:int ->
  ?epoch_us:int ->
  ?obs:Obs.Ctl.t ->
  ?compute:string ->
  ?runtime:string ->
  ?domains:int ->
  ?replicas:int ->
  ?fastpath:bool ->
  ?seed:int ->
  unit ->
  built
(** [build engine workload cfg ~n] — create, register, load, start.
    [seed] (default 17) seeds the workload generator.  [obs] threads an
    observability handle into the engine's cluster (pass the same handle
    to {!Driver.run}). *)

(* -- convenience wrappers over the bundled workloads -- *)

val tpcc :
  engine:Kernel.Intf.packed ->
  n:int ->
  warehouses_per_host:int ->
  kind:[ `NewOrder | `Payment ] ->
  ?epoch_us:int ->
  ?obs:Obs.Ctl.t ->
  ?compute:string ->
  ?runtime:string ->
  ?domains:int ->
  ?replicas:int ->
  ?fastpath:bool ->
  ?seed:int ->
  unit ->
  built

val stpcc :
  engine:Kernel.Intf.packed ->
  n:int ->
  districts_per_host:int ->
  ?epoch_us:int ->
  ?obs:Obs.Ctl.t ->
  ?compute:string ->
  ?runtime:string ->
  ?domains:int ->
  ?replicas:int ->
  ?fastpath:bool ->
  ?seed:int ->
  unit ->
  built

val ycsb :
  engine:Kernel.Intf.packed ->
  n:int ->
  ci:float ->
  ?keys_per_partition:int ->
  ?epoch_us:int ->
  ?obs:Obs.Ctl.t ->
  ?compute:string ->
  ?runtime:string ->
  ?domains:int ->
  ?replicas:int ->
  ?fastpath:bool ->
  ?seed:int ->
  unit ->
  built
