(* Machine-readable benchmark reporting.

   The console output of Experiments is meant for eyeballs; CI and the
   regression gate want JSON.  Figures record structured points (tps /
   latency) through the row helpers in Experiments, every console row is
   also captured verbatim for figures without a structured shape, and the
   micro suite records ns/op estimates.  bench/main.exe decides whether a
   run is recording (--json) and where the files go. *)

type macro_point = {
  fig : string;
  series : string;
  point : string;
  tps : float option;
  lat_mean_ms : float option;
  lat_p99_ms : float option;
}

(* One wall-clock measurement of the real runtime's compute phase:
   [txns] functor evaluations finished in [wall_s] seconds on [domains]
   worker domains.  Unlike macro points these are host-machine times, so
   the file also records the host's core count — a 1-core host can only
   show speedup on latency-bound series. *)
type real_point = {
  r_series : string;
  r_workload : string;
  r_domains : int;
  r_wall_s : float;
  r_txns : int;
}

let enabled = ref false
let macro_points : macro_point list ref = ref []
let raw_rows : (string * string list) list ref = ref []
let fig_times : (string * float) list ref = ref []
let micro_results : (string * float) list ref = ref []
let real_points : real_point list ref = ref []

let enable () = enabled := true
let recording () = !enabled

let record_point ~fig ~series ~point ?tps ?lat_mean_ms ?lat_p99_ms () =
  if !enabled then
    macro_points :=
      { fig; series; point; tps; lat_mean_ms; lat_p99_ms } :: !macro_points

let record_row ~fig ~cols = if !enabled then raw_rows := (fig, cols) :: !raw_rows

let record_fig_time ~fig ~seconds =
  if !enabled then fig_times := (fig, seconds) :: !fig_times

let record_micro ~name ~ns_per_op =
  if !enabled then micro_results := (name, ns_per_op) :: !micro_results

let record_real ~series ~workload ~domains ~wall_s ~txns =
  if !enabled then
    real_points :=
      { r_series = series; r_workload = workload; r_domains = domains;
        r_wall_s = wall_s; r_txns = txns }
      :: !real_points

let real_recorded () = !real_points <> []

(* ---- JSON emission (hand-rolled; no json dependency) -------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = Printf.sprintf "\"%s\"" (escape s)

let jfloat f =
  if Float.is_finite f then Printf.sprintf "%.3f" f else "null"

let jfloat_opt = function None -> "null" | Some f -> jfloat f

let point_json p =
  Printf.sprintf
    "{\"fig\":%s,\"series\":%s,\"point\":%s,\"tps\":%s,\"lat_mean_ms\":%s,\"lat_p99_ms\":%s}"
    (jstr p.fig) (jstr p.series) (jstr p.point) (jfloat_opt p.tps)
    (jfloat_opt p.lat_mean_ms) (jfloat_opt p.lat_p99_ms)

let row_json (fig, cols) =
  Printf.sprintf "{\"fig\":%s,\"cols\":[%s]}" (jstr fig)
    (String.concat "," (List.map jstr cols))

let time_json (fig, seconds) =
  Printf.sprintf "{\"fig\":%s,\"wall_s\":%s}" (jstr fig) (jfloat seconds)

let micro_json (name, ns) =
  Printf.sprintf "{\"name\":%s,\"ns_per_op\":%s}" (jstr name) (jfloat ns)

let write path body =
  let oc = open_out path in
  output_string oc body;
  output_char oc '\n';
  close_out oc

(* TIMELINE.jsonl is genuinely append-only: each run contributes one
   segment (meta line + rows), and Obs.Analyze splits segments back apart
   at the meta lines. *)
let write_timeline path lines =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    lines;
  close_out oc

let write_micro path =
  write path
    (Printf.sprintf "{\"suite\":\"micro\",\"results\":[%s]}"
       (String.concat "," (List.rev_map micro_json !micro_results)))

let write_macro ~scale path =
  write path
    (Printf.sprintf
       "{\"suite\":\"macro\",\"scale\":%s,\"points\":[%s],\"rows\":[%s],\"timings\":[%s]}"
       (jstr scale)
       (String.concat "," (List.rev_map point_json !macro_points))
       (String.concat "," (List.rev_map row_json !raw_rows))
       (String.concat "," (List.rev_map time_json !fig_times)))

(* Groups points by series (preserving first-seen order), derives txn/s
   and the speedup relative to the same series' 1-domain point.  The
   1-domain baseline is part of the series contract: record one per
   series or speedup_vs_1 comes out null. *)
let write_real ~host_cores path =
  let points = List.rev !real_points in
  let series_names =
    List.fold_left
      (fun acc p -> if List.mem p.r_series acc then acc else p.r_series :: acc)
      [] points
    |> List.rev
  in
  let series_json name =
    let pts = List.filter (fun p -> p.r_series = name) points in
    let workload =
      match pts with [] -> "" | p :: _ -> p.r_workload
    in
    let base =
      List.find_opt (fun p -> p.r_domains = 1) pts
      |> Option.map (fun p -> p.r_wall_s)
    in
    let point_json p =
      let txn_s =
        if p.r_wall_s > 0.0 then float_of_int p.r_txns /. p.r_wall_s else 0.0
      in
      let speedup =
        match base with
        | Some b when p.r_wall_s > 0.0 -> Some (b /. p.r_wall_s)
        | _ -> None
      in
      Printf.sprintf
        "{\"domains\":%d,\"wall_s\":%s,\"txns\":%d,\"txn_s\":%s,\"speedup_vs_1\":%s}"
        p.r_domains (jfloat p.r_wall_s) p.r_txns (jfloat txn_s)
        (jfloat_opt speedup)
    in
    Printf.sprintf "{\"name\":%s,\"workload\":%s,\"points\":[%s]}" (jstr name)
      (jstr workload)
      (String.concat "," (List.map point_json pts))
  in
  write path
    (Printf.sprintf
       "{\"suite\":\"real\",\"host_cores\":%d,\"series\":[%s]}" host_cores
       (String.concat "," (List.map series_json series_names)))

(* ---- availability under chaos (BENCH_availability.json) ------------------ *)

(* One committed-work-over-time series per replication degree, all from
   the same fault schedule: the availability figure.  With k = 1 the
   committed curve plateaus while the crashed backend's partitions are
   dark and [completed < submitted] if the crash outlives the horizon;
   with k > 1 failover keeps the curve climbing.  Points come from the
   chaos driver's probe loop, but the type is kept plain so the harness
   does not depend on the chaos library. *)

type avail_series = {
  av_replicas : int;
  av_engine : string;
  av_seed : int;
  av_submitted : int;
  av_completed : int;
  av_points : (int * int) list;
}

let write_availability ~path ~schedule ~series =
  let point_json (t_us, committed) =
    Printf.sprintf "{\"t_us\":%d,\"committed\":%d}" t_us committed
  in
  let series_json s =
    Printf.sprintf
      "{\"replicas\":%d,\"engine\":%s,\"seed\":%d,\"submitted\":%d,\"completed\":%d,\"points\":[%s]}"
      s.av_replicas (jstr s.av_engine) s.av_seed s.av_submitted s.av_completed
      (String.concat "," (List.map point_json s.av_points))
  in
  write path
    (Printf.sprintf
       "{\"suite\":\"availability\",\"schedule\":%s,\"series\":[%s]}"
       (jstr schedule)
       (String.concat "," (List.map series_json series)))

(* ---- fast-path latency collapse (BENCH_fastpath.json) -------------------- *)

(* The same counter-heavy workload run twice — coordination-free commit
   lane on and off — so the regression gate can check the headline claim
   directly: the on-series p50 must sit below the off-series p50 (which
   carries the full epoch-close + compute wait).  Plain ints/floats so
   the harness does not grow a dependency for this. *)

type fastpath_series = {
  fp_mode : string;  (* "on" | "off" *)
  fp_committed : int;
  fp_tps : float;
  fp_p50_us : int;
  fp_p99_us : int;
  fp_fast_commits : int;  (* aloha.fastpath_commits in this run *)
}

let write_fastpath ~path ~workload ~series =
  let series_json s =
    Printf.sprintf
      "{\"mode\":%s,\"committed\":%d,\"tps\":%s,\"p50_us\":%d,\"p99_us\":%d,\"fastpath_commits\":%d}"
      (jstr s.fp_mode) s.fp_committed (jfloat s.fp_tps) s.fp_p50_us
      s.fp_p99_us s.fp_fast_commits
  in
  write path
    (Printf.sprintf "{\"suite\":\"fastpath\",\"workload\":%s,\"series\":[%s]}"
       (jstr workload)
       (String.concat "," (List.map series_json series)))

(* ---- run telemetry (TELEMETRY.json) -------------------------------------- *)

(* One run's observability summary: headline result numbers, per-stage
   latency percentiles, final gauge values with sample counts, trace-ring
   occupancy, and fault-correlation counters.  Small and flat on purpose —
   the Chrome trace carries the event-level detail; this file is for the
   regression dashboard and quick CI diffing. *)

let jint = string_of_int

let stage_stat_json (name, (st : Kernel.Result.stage_stat)) =
  Printf.sprintf
    "{\"stage\":%s,\"mean_us\":%s,\"p50_us\":%s,\"p95_us\":%s,\"p99_us\":%s,\"p999_us\":%s}"
    (jstr name) (jfloat st.Kernel.Result.mean_us) (jint st.p50_us)
    (jint st.p95_us) (jint st.p99_us) (jint st.p999_us)

let gauge_series_json (g : Obs.Gauges.t) =
  let series = Obs.Gauges.series g in
  let one (name, samples) =
    let n = List.length samples in
    let last =
      match List.rev samples with [] -> 0.0 | (_, v) :: _ -> v
    in
    let hi =
      List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 samples
    in
    Printf.sprintf "{\"name\":%s,\"samples\":%s,\"last\":%s,\"max\":%s}"
      (jstr name) (jint n) (jfloat last) (jfloat hi)
  in
  String.concat "," (List.map one series)

let write_telemetry ~path ~engine ~workload ~(result : Kernel.Result.t)
    ?(drops : Net.Network.drop_stats option) ?(ctl : Obs.Ctl.t option) () =
  let trace_json =
    match ctl with
    | None -> "null"
    | Some ctl ->
        let tr = Obs.Ctl.trace ctl in
        Printf.sprintf
          "{\"sample_rate\":%s,\"capacity\":%s,\"events\":%s,\"total\":%s,\"dropped\":%s,\"fault_drops\":%s,\"fault_delays\":%s}"
          (jint (Obs.Trace.sample_rate tr))
          (jint (Obs.Trace.capacity tr))
          (jint (Obs.Trace.length tr))
          (jint (Obs.Trace.total tr))
          (jint (Obs.Trace.dropped tr))
          (jint (Obs.Ctl.fault_drops ctl))
          (jint (Obs.Ctl.fault_delays ctl))
  in
  let gauges_json =
    match ctl with
    | None -> ""
    | Some ctl -> gauge_series_json (Obs.Ctl.gauges ctl)
  in
  let drops_json =
    match drops with
    | None -> "null"
    | Some d ->
        Printf.sprintf
          "{\"injected\":%s,\"partitioned\":%s,\"crashed\":%s,\"unregistered\":%s}"
          (jint d.Net.Network.injected) (jint d.partitioned) (jint d.crashed)
          (jint d.unregistered)
  in
  write path
    (Printf.sprintf
       "{\"suite\":\"telemetry\",\"engine\":%s,\"workload\":%s,\"tps\":%s,\"committed\":%s,\"aborted\":%s,\"lat_mean_us\":%s,\"lat_p50_us\":%s,\"lat_p95_us\":%s,\"lat_p99_us\":%s,\"lat_p999_us\":%s,\"stages\":[%s],\"gauges\":[%s],\"trace\":%s,\"net_drops\":%s}"
       (jstr engine) (jstr workload)
       (jfloat result.Kernel.Result.throughput_tps)
       (jint result.committed)
       (jint (Kernel.Result.abort_count result))
       (jfloat result.lat_mean_us) (jint result.lat_p50_us)
       (jint result.lat_p95_us) (jint result.lat_p99_us)
       (jint result.lat_p999_us)
       (String.concat "," (List.map stage_stat_json result.stage_stats))
       gauges_json trace_json drops_json)
