type built =
  | Built :
      (module Kernel.Intf.ENGINE with type cluster = 'c)
      * 'c
      * (fe:int -> Kernel.Txn.t)
      -> built

let engines : (string * Kernel.Intf.packed) list =
  [ ("aloha", Kernel.Intf.Pack (module Alohadb.Engine));
    ("calvin", Kernel.Intf.Pack (module Calvin.Engine));
    ("twopl", Kernel.Intf.Pack (module Twopl.Engine)) ]

let engine_of_name name = List.assoc_opt name engines

let engine_name (Kernel.Intf.Pack (module E)) = E.name

let build (type k) (Kernel.Intf.Pack (module E))
    (module W : Kernel.Intf.WORKLOAD with type cfg = k) (cfg : k) ~n
    ?epoch_us ?obs ?compute ?runtime ?domains ?replicas ?fastpath
    ?(seed = 17) () =
  let params =
    Kernel.Params.make ?epoch_us ?obs ?compute ?runtime ?domains ?replicas
      ?fastpath ~n_servers:n ()
  in
  let c = E.create params in
  W.register cfg ~register:(E.register c);
  W.load cfg ~n_servers:n ~put:(E.load c);
  E.start c;
  let gen = W.generator cfg ~n_servers:n ~seed in
  Built ((module E), c, gen)

let tpcc ~engine ~n ~warehouses_per_host ~kind ?epoch_us ?obs ?compute
    ?runtime ?domains ?replicas ?fastpath ?seed () =
  let cfg = Workload.Tpcc.default_cfg ~n_servers:n ~warehouses_per_host in
  match kind with
  | `NewOrder ->
      build engine (module Workload.Tpcc.Neworder) cfg ~n ?epoch_us ?obs
        ?compute ?runtime ?domains ?replicas ?fastpath ?seed ()
  | `Payment ->
      build engine (module Workload.Tpcc.Payment) cfg ~n ?epoch_us ?obs
        ?compute ?runtime ?domains ?replicas ?fastpath ?seed ()

let stpcc ~engine ~n ~districts_per_host ?epoch_us ?obs ?compute ?runtime
    ?domains ?replicas ?fastpath ?seed () =
  let cfg = Workload.Scaled_tpcc.default_cfg ~n_servers:n ~districts_per_host in
  build engine (module Workload.Scaled_tpcc.Neworder) cfg ~n ?epoch_us ?obs
    ?compute ?runtime ?domains ?replicas ?fastpath ?seed ()

let ycsb ~engine ~n ~ci ?(keys_per_partition = 50_000) ?epoch_us ?obs
    ?compute ?runtime ?domains ?replicas ?fastpath ?seed () =
  let cfg = Workload.Ycsb.cfg_of_contention_index ~keys_per_partition ci in
  build engine (module Workload.Ycsb.Workload) cfg ~n ?epoch_us ?obs ?compute
    ?runtime ?domains ?replicas ?fastpath ?seed ()
