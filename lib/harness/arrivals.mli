(** Client load generation — re-export of {!Kernel.Arrivals} so existing
    harness callers keep their constructor paths. *)

type t = Kernel.Arrivals.t =
  | Open_poisson of { rate_per_fe : float }  (** transactions/s per FE *)
  | Open_burst of { rate_per_fe : float; period_us : int }
  | Closed of { clients_per_fe : int }
  | Scripted of { arrivals : (int * int) list }
      (** [(at_us, fe)] deterministic submission events *)

val install :
  sim:Sim.Engine.t ->
  rng:Sim.Rng.t ->
  n_fes:int ->
  arrival:t ->
  submit:(fe:int -> done_k:(unit -> unit) -> unit) ->
  unit
(** See {!Kernel.Arrivals.install}. *)
