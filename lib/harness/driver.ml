type result = Kernel.Result.t = {
  committed : int;
  aborts : (string * int) list;
  counters : (string * int) list;
  throughput_tps : float;
  lat_mean_us : float;
  lat_p50_us : int;
  lat_p95_us : int;
  lat_p99_us : int;
  lat_p999_us : int;
  stages : (string * float) list;
  stage_stats : (string * Kernel.Result.stage_stat) list;
}

let pp_result = Kernel.Result.pp

let run (Setup.Built ((module E), cluster, gen)) ~arrival ?obs ?warmup_us
    ?measure_us ?seed () =
  Kernel.Run.run (module E) ~cluster ~gen ~arrival ?obs ?warmup_us
    ?measure_us ?seed ()

let run_engine = Kernel.Run.run
