module Value = Functor_cc.Value

type scale = {
  label : string;
  warmup_us : int;
  measure_us : int;
  aloha_clients : int;
  calvin_clients : int;
  fig6_fractions : float list;
  fig7_xs : int list;
  fig8_servers : int list;
  fig9_cis : float list;
  fig11_epochs_ms : int list;
}

let quick =
  { label = "quick";
    warmup_us = 60_000;
    measure_us = 60_000;
    aloha_clients = 1_500;
    calvin_clients = 300;
    fig6_fractions = [ 0.25; 0.75 ];
    fig7_xs = [ 1; 10 ];
    fig8_servers = [ 2; 8 ];
    fig9_cis = [ 1e-4; 0.01; 0.1 ];
    fig11_epochs_ms = [ 20; 100; 200 ] }

let full =
  { label = "full";
    warmup_us = 75_000;
    measure_us = 100_000;
    aloha_clients = 4_000;
    calvin_clients = 600;
    fig6_fractions = [ 0.25; 0.5; 0.75; 0.9 ];
    fig7_xs = [ 1; 2; 3; 5; 7; 10 ];
    fig8_servers = [ 1; 2; 5; 10; 15; 20 ];
    fig9_cis = [ 1e-4; 3e-4; 1e-3; 1.7e-3; 3e-3; 0.01; 0.03; 0.1 ];
    fig11_epochs_ms = [ 20; 50; 100; 150; 200 ] }

(* ALOHA sustains far more closed-loop clients per FE than the
   lock-based engines before queueing dominates. *)
let clients_for scale engine =
  if Setup.engine_name engine = "aloha" then scale.aloha_clients
  else scale.calvin_clients

let aloha = Kernel.Intf.Pack (module Alohadb.Engine)
let calvin = Kernel.Intf.Pack (module Calvin.Engine)
let twopl = Kernel.Intf.Pack (module Twopl.Engine)

let row fig cols =
  Report.record_row ~fig ~cols;
  Printf.printf "[%s] %s\n%!" fig (String.concat "  " cols)

let fmt_tps tps = Printf.sprintf "tps=%-9.0f" tps

let fmt_lat r =
  Printf.sprintf "lat_ms=%-7.2f p99_ms=%-7.2f"
    (r.Driver.lat_mean_us /. 1000.0)
    (float_of_int r.Driver.lat_p99_us /. 1000.0)

(* Structured row helpers: print the human-readable line and record the
   same point for BENCH_macro.json. *)

let lat_mean_ms r = r.Driver.lat_mean_us /. 1000.0
let lat_p99_ms r = float_of_int r.Driver.lat_p99_us /. 1000.0

let row_tps_lat fig ~series ~point ?(extra = []) r =
  Report.record_point ~fig ~series ~point ~tps:r.Driver.throughput_tps
    ~lat_mean_ms:(lat_mean_ms r) ~lat_p99_ms:(lat_p99_ms r) ();
  row fig ([ series; point; fmt_tps r.Driver.throughput_tps; fmt_lat r ] @ extra)

let row_tps fig ~series ~point ?(extra = []) r =
  Report.record_point ~fig ~series ~point ~tps:r.Driver.throughput_tps ();
  row fig ([ series; point; fmt_tps r.Driver.throughput_tps ] @ extra)

let row_lat fig ~series ~point r =
  Report.record_point ~fig ~series ~point ~lat_mean_ms:(lat_mean_ms r)
    ~lat_p99_ms:(lat_p99_ms r) ();
  row fig [ series; point; fmt_lat r ]

(* ---- Table I ----------------------------------------------------------- *)

let table1 () =
  row "table1" [ "f-type"; "|"; "f-argument" ];
  List.iter
    (fun (ftype, farg) -> row "table1" [ Printf.sprintf "%-14s" ftype; "|"; farg ])
    Functor_cc.Ftype.table_i;
  row "table1"
    [ "engines behind Kernel.Run:";
      String.concat ", " (List.map fst Setup.engines) ];
  row "table1"
    [ "registered user handlers in the bundled workloads:";
      "cadd, occ_validate, tpcc_neworder, tpcc_stock, tpcc_payment_cust,";
      "tpcc_orderline, stpcc_neworder, stpcc_stock, stpcc_orderline";
      "(static engines run them through the generic kernel_apply proc)" ]

(* ---- workload points ---------------------------------------------------- *)

type workload =
  | TPCC of { per_host : int; kind : [ `NewOrder | `Payment ] }
  | STPCC of { per_host : int }
  | YCSB of { ci : float }

let run_point ?epoch_us ?compute ~engine ~n ~workload ~arrival scale =
  let built =
    match workload with
    | TPCC { per_host; kind } ->
        Setup.tpcc ~engine ~n ~warehouses_per_host:per_host ~kind ?epoch_us
          ?compute ()
    | STPCC { per_host } ->
        Setup.stpcc ~engine ~n ~districts_per_host:per_host ?epoch_us
          ?compute ()
    | YCSB { ci } -> Setup.ycsb ~engine ~n ~ci ?epoch_us ?compute ()
  in
  Driver.run built ~arrival ~warmup_us:scale.warmup_us
    ~measure_us:scale.measure_us ()

let peak ?compute ~engine ~n ~workload scale =
  run_point ?compute ~engine ~n ~workload
    ~arrival:(Arrivals.Closed { clients_per_fe = clients_for scale engine })
    scale

(* ---- Figure 6: throughput vs latency ------------------------------------ *)

let fig6 scale =
  let n = 8 in
  let configs =
    [ ("Aloha-1W", aloha, TPCC { per_host = 1; kind = `NewOrder });
      ("Aloha-10W", aloha, TPCC { per_host = 10; kind = `NewOrder });
      ("Aloha-1D", aloha, STPCC { per_host = 1 });
      ("Aloha-10D", aloha, STPCC { per_host = 10 });
      ("Calvin-1W", calvin, TPCC { per_host = 1; kind = `NewOrder });
      ("Calvin-10W", calvin, TPCC { per_host = 10; kind = `NewOrder });
      ("Calvin-1D", calvin, STPCC { per_host = 1 });
      ("Calvin-10D", calvin, STPCC { per_host = 10 }) ]
  in
  row "fig6" [ "series"; "point"; "throughput"; "latency" ];
  List.iter
    (fun (name, engine, workload) ->
      let peak_r = peak ~engine ~n ~workload scale in
      row_tps_lat "fig6" ~series:name ~point:"peak(closed)" peak_r;
      List.iter
        (fun f ->
          let rate = peak_r.Driver.throughput_tps *. f /. float_of_int n in
          if rate >= 1.0 then begin
            let arrival = Arrivals.Open_poisson { rate_per_fe = rate } in
            let r = run_point ~engine ~n ~workload ~arrival scale in
            row_tps_lat "fig6" ~series:name
              ~point:(Printf.sprintf "open(%.2fx)" f)
              r
          end)
        scale.fig6_fractions)
    configs

(* ---- Figure 7: throughput vs warehouses/districts per host ------------- *)

let fig7 scale =
  let n = 8 in
  row "fig7" [ "series"; "per-host"; "throughput" ];
  let series =
    [ ("Aloha-STPCC-NewOrder", aloha, fun x -> STPCC { per_host = x });
      ("Aloha-TPCC-NewOrder", aloha,
       fun x -> TPCC { per_host = x; kind = `NewOrder });
      ("Aloha-TPCC-Payment", aloha,
       fun x -> TPCC { per_host = x; kind = `Payment });
      ("Calvin-STPCC-NewOrder", calvin, fun x -> STPCC { per_host = x });
      ("Calvin-TPCC-NewOrder", calvin,
       fun x -> TPCC { per_host = x; kind = `NewOrder });
      ("Calvin-TPCC-Payment", calvin,
       fun x -> TPCC { per_host = x; kind = `Payment }) ]
  in
  List.iter
    (fun (name, engine, mk) ->
      List.iter
        (fun x ->
          let r = peak ~engine ~n ~workload:(mk x) scale in
          row_tps "fig7" ~series:name ~point:(Printf.sprintf "x=%-2d" x) r)
        scale.fig7_xs)
    series

(* ---- Figure 8: scale-out ------------------------------------------------- *)

let fig8 scale =
  row "fig8" [ "series"; "servers"; "throughput" ];
  let configs =
    [ ("Aloha-1D", aloha, STPCC { per_host = 1 });
      ("Aloha-10D", aloha, STPCC { per_host = 10 });
      ("Aloha-1W", aloha, TPCC { per_host = 1; kind = `NewOrder });
      ("Aloha-10W", aloha, TPCC { per_host = 10; kind = `NewOrder });
      ("Calvin-1D", calvin, STPCC { per_host = 1 });
      ("Calvin-10D", calvin, STPCC { per_host = 10 });
      ("Calvin-1W", calvin, TPCC { per_host = 1; kind = `NewOrder });
      ("Calvin-10W", calvin, TPCC { per_host = 10; kind = `NewOrder }) ]
  in
  List.iter
    (fun (name, engine, workload) ->
      List.iter
        (fun n ->
          (* TPC-C distributed transactions need a second server. *)
          let r = peak ~engine ~n ~workload scale in
          row_tps "fig8" ~series:name ~point:(Printf.sprintf "n=%-2d" n) r)
        scale.fig8_servers)
    configs

(* ---- Figure 9: contention ----------------------------------------------- *)

let fig9 scale =
  let n = 8 in
  row "fig9" [ "system"; "ci"; "throughput" ];
  (* All three engines, including the conventional 2PL/2PC baseline the
     introduction argues against.  ALOHA runs once per compute mode: the
     three modes dispatch identical job sequences to the simulated pool,
     so their throughput must agree exactly — any divergence is a bug in
     the planner (checked by the cross-mode equivalence test). *)
  List.iter
    (fun (name, engine, compute) ->
      (match compute with
      | Some mode ->
          Printf.printf "[fig9] %s: compute mode = %s\n%!" name mode
      | None -> ());
      List.iter
        (fun ci ->
          let r = peak ?compute ~engine ~n ~workload:(YCSB { ci }) scale in
          row_tps "fig9"
            ~series:(Printf.sprintf "%-6s" name)
            ~point:(Printf.sprintf "ci=%-7g" ci)
            r)
        scale.fig9_cis)
    [ ("ALOHA(pool)", aloha, Some "pool");
      ("ALOHA(ondemand)", aloha, Some "ondemand");
      ("ALOHA(planned)", aloha, Some "planned");
      ("Calvin", calvin, None); ("2PL", twopl, None) ]

(* ---- Figure 10: latency breakdown --------------------------------------- *)

let print_stages fig name r =
  let total = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 r.Driver.stages in
  let total = if total <= 0.0 then 1.0 else total in
  List.iter
    (fun (stage, (st : Kernel.Result.stage_stat)) ->
      row fig
        [ name; Printf.sprintf "%-20s" stage;
          Printf.sprintf "%5.1f%%"
            (100.0 *. st.Kernel.Result.mean_us /. total);
          Printf.sprintf "(%.2f ms)" (st.mean_us /. 1000.0);
          Printf.sprintf "p99 %.2f ms" (float_of_int st.p99_us /. 1000.0);
          Printf.sprintf "p999 %.2f ms" (float_of_int st.p999_us /. 1000.0) ])
    r.Driver.stage_stats

let fig10 scale =
  let n = 8 in
  row "fig10" [ "system/ci"; "stage"; "share"; "mean"; "p99"; "p999" ];
  List.iter
    (fun ci ->
      (* Light load: ~5 % of a saturated server. *)
      let r =
        run_point ~engine:aloha ~n ~workload:(YCSB { ci })
          ~arrival:(Arrivals.Open_poisson { rate_per_fe = 5_000.0 })
          scale
      in
      print_stages "fig10" (Printf.sprintf "ALOHA ci=%g" ci) r)
    [ 1e-4; 0.1 ];
  (* Same breakdown under the planner: identical end-to-end stages plus
     the plan build/evaluate rows (zero in the other modes). *)
  (let ci = 0.1 in
   Printf.printf "[fig10] ALOHA(planned): compute mode = planned\n%!";
   let r =
     run_point ~engine:aloha ~n ~workload:(YCSB { ci }) ~compute:"planned"
       ~arrival:(Arrivals.Open_poisson { rate_per_fe = 5_000.0 })
       scale
   in
   print_stages "fig10" (Printf.sprintf "ALOHA(planned) ci=%g" ci) r);
  List.iter
    (fun ci ->
      let rate = if ci >= 0.1 then 150.0 else 500.0 in
      let r =
        run_point ~engine:calvin ~n ~workload:(YCSB { ci })
          ~arrival:(Arrivals.Open_poisson { rate_per_fe = rate })
          scale
      in
      print_stages "fig10" (Printf.sprintf "Calvin ci=%g" ci) r)
    [ 1e-4; 0.1 ]

(* ---- Figure 11: latency vs epoch duration -------------------------------- *)

let fig11 scale =
  let n = 8 in
  row "fig11" [ "system"; "epoch_ms"; "latency" ];
  List.iter
    (fun ms ->
      let epoch_us = ms * 1000 in
      let scale' =
        (* Windows must span several epochs even for 200 ms epochs. *)
        { scale with
          warmup_us = max scale.warmup_us (3 * epoch_us);
          measure_us = max scale.measure_us (4 * epoch_us) }
      in
      let r =
        run_point ~engine:aloha ~n ~epoch_us ~workload:(YCSB { ci = 1e-3 })
          ~arrival:(Arrivals.Open_poisson { rate_per_fe = 2_000.0 })
          scale'
      in
      row_lat "fig11" ~series:"ALOHA" ~point:(Printf.sprintf "%-3d" ms) r)
    scale.fig11_epochs_ms;
  List.iter
    (fun ms ->
      let epoch_us = ms * 1000 in
      let scale' =
        { scale with
          warmup_us = max scale.warmup_us (3 * epoch_us);
          measure_us = max scale.measure_us (4 * epoch_us) }
      in
      (* The open-source Calvin generates most transactions at the start
         of each epoch (§V-C2), reproduced by burst arrivals. *)
      let r =
        run_point ~engine:calvin ~n ~epoch_us ~workload:(YCSB { ci = 1e-3 })
          ~arrival:
            (Arrivals.Open_burst { rate_per_fe = 500.0; period_us = epoch_us })
          scale'
      in
      row_lat "fig11" ~series:"Calvin" ~point:(Printf.sprintf "%-3d" ms) r)
    scale.fig11_epochs_ms

(* ---- Ablation: straggler optimisation (§III-C) --------------------------- *)

(* The ablations construct ALOHA clusters natively (custom config, fault
   injection) — Alohadb.Engine's transparent cluster type lets them still
   run through the generic kernel loop. *)

let ablation_straggler scale =
  row "ablation-straggler"
    [ "straggler_opt"; "throughput"; "latency"; "noauth_starts" ];
  List.iter
    (fun opt ->
      let config = { Alohadb.Config.default with straggler_opt = opt } in
      let options =
        { Alohadb.Cluster.default_options with n_servers = 8;
          partitioner = `Prefix; config }
      in
      let c = Alohadb.Cluster.create options in
      let cfg =
        Workload.Ycsb.cfg_of_contention_index ~keys_per_partition:50_000 1e-3
      in
      Workload.Ycsb.load cfg ~n_servers:8
        ~put:(fun key v -> Alohadb.Cluster.load c ~key v);
      Alohadb.Cluster.start c;
      (* Straggler injection (§III-C Figure 3): server 0 holds one
         in-flight transaction 12 ms past each authorization's end, so
         every epoch switch stalls.  With the optimisation the other FEs
         keep starting transactions without authorization; without it the
         whole cluster idles through the stall. *)
      let sim = Alohadb.Cluster.sim c in
      let straggler = Alohadb.Server.participant (Alohadb.Cluster.server c 0) in
      let last_held = ref 0 in
      Epoch.Participant.on_state_change straggler (fun () ->
          match Epoch.Participant.window straggler with
          | Some w
            when w.Epoch.Participant.authorized
                 && w.Epoch.Participant.epoch > !last_held ->
              let epoch = w.Epoch.Participant.epoch in
              last_held := epoch;
              Epoch.Participant.txn_started straggler ~epoch;
              let hold =
                (w.Epoch.Participant.hi - w.Epoch.Participant.lo) + 12_000
              in
              Sim.Engine.after sim hold (fun () ->
                  Epoch.Participant.txn_finished straggler ~epoch)
          | Some _ | None -> ());
      let gen = Workload.Ycsb.generator cfg ~n_partitions:8 ~seed:17 in
      (* Open-loop load at ~80 % of capacity.  Without the optimisation,
         every arrival during a stall is held and must be absorbed inside
         the authorized window — an effective overload that builds an
         unbounded backlog; with unauthorized starts the load spreads over
         the whole cycle and the system keeps up.  Windows span ~10 switch
         cycles so the close-burst quantisation averages out. *)
      let r =
        Driver.run_engine
          (module Alohadb.Engine)
          ~cluster:c
          ~gen:(fun ~fe -> Workload.Ycsb.gen gen ~fe)
          ~arrival:(Arrivals.Open_poisson { rate_per_fe = 110_000.0 })
          ~warmup_us:150_000 ~measure_us:370_000 ()
      in
      ignore scale;
      let m = Alohadb.Cluster.metrics c in
      row "ablation-straggler"
        [ (if opt then "on " else "off"); fmt_tps r.Driver.throughput_tps;
          fmt_lat r;
          Printf.sprintf "noauth_starts=%d"
            (Sim.Metrics.get m "aloha.noauth_starts") ])
    [ true; false ]

(* ---- Ablation: recipient-set pushes (§IV-B) ------------------------------ *)

(* Cross-partition transfer: the destination account's functor reads the
   source account, so computing the source functor can proactively push
   its value to the destination's partition. *)
let transfer_handler (ctx : Functor_cc.Registry.ctx) =
  let delta = Value.to_int (Functor_cc.Registry.arg ctx 0) in
  let own =
    match Functor_cc.Registry.read ctx ctx.Functor_cc.Registry.key with
    | Some v -> Value.to_int v
    | None -> 0
  in
  Functor_cc.Registry.Commit (Value.int (own + delta))

let ablation_push scale =
  row "ablation-push" [ "push_opt"; "throughput"; "latency"; "remote_reads"; "push_hits" ];
  List.iter
    (fun opt ->
      let config = { Alohadb.Config.default with push_opt = opt } in
      let registry = Functor_cc.Registry.with_builtins () in
      Functor_cc.Registry.register registry "xfer" transfer_handler;
      let options =
        { Alohadb.Cluster.default_options with n_servers = 8;
          partitioner = `Prefix; config }
      in
      let c = Alohadb.Cluster.create ~registry options in
      let accounts_per_part = 2_000 in
      let key p i = Printf.sprintf "a:%d:%d" p i in
      for p = 0 to 7 do
        for i = 0 to accounts_per_part - 1 do
          Alohadb.Cluster.load c ~key:(key p i) (Value.int 1_000)
        done
      done;
      Alohadb.Cluster.start c;
      let rng = Sim.Rng.create 23 in
      let gen ~fe =
        let p2 =
          let p = Sim.Rng.int rng 7 in
          if p >= fe then p + 1 else p
        in
        let src = key fe (Sim.Rng.int rng accounts_per_part) in
        let dst = key p2 (Sim.Rng.int rng accounts_per_part) in
        Kernel.Txn.make
          [ (src,
             Kernel.Txn.Call
               { handler = "xfer"; read_set = [ src ];
                 args = [ Value.int (-10) ] });
            (dst,
             Kernel.Txn.Call
               { handler = "xfer"; read_set = [ src; dst ];
                 args = [ Value.int 10 ] }) ]
      in
      let r =
        Driver.run_engine
          (module Alohadb.Engine)
          ~cluster:c ~gen
          ~arrival:(Arrivals.Closed { clients_per_fe = scale.aloha_clients })
          ~warmup_us:scale.warmup_us ~measure_us:scale.measure_us ()
      in
      let m = Alohadb.Cluster.metrics c in
      row "ablation-push"
        [ (if opt then "on " else "off"); fmt_tps r.Driver.throughput_tps;
          fmt_lat r;
          Printf.sprintf "remote_reads=%d" (Sim.Metrics.get m "fcc.remote_reads");
          Printf.sprintf "push_hits=%d" (Sim.Metrics.get m "fcc.push_hits") ])
    [ true; false ]

(* ---- Ablation: determinate vs optimistic dependent txns (§IV-E) ---------- *)

let withdraw_handler (ctx : Functor_cc.Registry.ctx) =
  let amount = Value.to_int (Functor_cc.Registry.arg ctx 0) in
  let receipt = Value.to_str (Functor_cc.Registry.arg ctx 1) in
  match Functor_cc.Registry.read ctx ctx.Functor_cc.Registry.key with
  | None -> Functor_cc.Registry.Abort
  | Some v ->
      let balance = Value.to_int v in
      if balance >= amount then
        Functor_cc.Registry.Commit_det
          ( Value.int (balance - amount),
            [ (receipt, Functor_cc.Registry.Dep_put (Value.int amount)) ] )
      else
        Functor_cc.Registry.Commit_det
          (Value.int balance, [ (receipt, Functor_cc.Registry.Dep_skip) ])

let ablation_dependent scale =
  row "ablation-dependent" [ "method"; "throughput"; "aborted"; "latency" ];
  let hot_accounts = 16 in
  let n = 8 in
  let akey i = Printf.sprintf "b:%d:acct" i in
  let mk_cluster () =
    let registry = Functor_cc.Registry.with_builtins () in
    Functor_cc.Registry.register registry "withdraw" withdraw_handler;
    Functor_cc.Optimistic.register registry;
    let options =
      { Alohadb.Cluster.default_options with n_servers = n;
        partitioner = `Prefix }
    in
    let c = Alohadb.Cluster.create ~registry options in
    for i = 0 to hot_accounts - 1 do
      Alohadb.Cluster.load c ~key:(akey i) (Value.int 1_000_000_000)
    done;
    Alohadb.Cluster.start c;
    c
  in
  (* Determinate method: a Det functor on the account names the receipt
     key as a declared dependent. *)
  let det () =
    let c = mk_cluster () in
    let rng = Sim.Rng.create 29 in
    let uid = ref 0 in
    let gen ~fe:_ =
      incr uid;
      let acct = akey (Sim.Rng.int rng hot_accounts) in
      let receipt = Printf.sprintf "r:%d:%d" (Sim.Rng.int rng n) !uid in
      Kernel.Txn.make
        [ (acct,
           Kernel.Txn.Det
             { handler = "withdraw"; read_set = [ acct ];
               args = [ Value.int 1; Value.str receipt ];
               dependents = [ receipt ] }) ]
    in
    let r =
      Driver.run_engine
        (module Alohadb.Engine)
        ~cluster:c ~gen
        ~arrival:(Arrivals.Closed { clients_per_fe = scale.aloha_clients / 2 })
        ~warmup_us:scale.warmup_us ~measure_us:scale.measure_us ()
    in
    row "ablation-dependent"
      [ "determinate"; fmt_tps r.Driver.throughput_tps;
        Printf.sprintf "aborted=%d" (Kernel.Result.abort r "compute");
        fmt_lat r ]
  in
  (* Optimistic method: read the balance from a snapshot, then install a
     validating functor that aborts if the balance changed (Hyder-style
     backward validation).  Needs a two-step client (read then write), so
     it drives Cluster.submit directly instead of the kernel loop. *)
  let opt () =
    let c = mk_cluster () in
    let uid = ref 0 in
    let sim = Alohadb.Cluster.sim c in
    let committed = ref 0 and aborted = ref 0 in
    let outstanding = ref 0 in
    let rng2 = Sim.Rng.create 31 in
    let rec client fe =
      incr outstanding;
      let acct = akey (Sim.Rng.int rng2 hot_accounts) in
      (* Step 1: snapshot read. *)
      Alohadb.Cluster.submit c ~fe (Alohadb.Txn.Read_only { keys = [ acct ] })
        (function
          | Alohadb.Txn.Values [ (_, Some v) ] ->
              let balance = Value.to_int v in
              if balance < 1 then decr outstanding
              else begin
                (* Step 2: validating write of the decremented balance. *)
                let snapshot = [ (acct, Some (Value.int balance)) ] in
                incr uid;
                Alohadb.Cluster.submit c ~fe
                  (Alohadb.Txn.read_write
                     [ (acct,
                        Alohadb.Txn.Call
                          { handler = Functor_cc.Optimistic.handler_name;
                            read_set = [ acct ];
                            args =
                              [ Functor_cc.Optimistic.encode_snapshot snapshot;
                                Value.int (balance - 1) ] }) ])
                  (fun result ->
                    (match result with
                    | Alohadb.Txn.Committed _ -> incr committed
                    | Alohadb.Txn.Aborted _ -> incr aborted
                    | Alohadb.Txn.Values _ -> ());
                    decr outstanding;
                    client fe)
              end
          | _ -> decr outstanding)
    in
    for fe = 0 to n - 1 do
      for _ = 1 to 64 do
        client fe
      done
    done;
    Sim.Engine.run ~until:(Sim.Engine.now sim + scale.warmup_us) sim;
    committed := 0;
    aborted := 0;
    Sim.Engine.run ~until:(Sim.Engine.now sim + scale.measure_us) sim;
    let tps =
      float_of_int !committed *. 1e6 /. float_of_int scale.measure_us
    in
    row "ablation-dependent"
      [ "optimistic "; fmt_tps tps;
        Printf.sprintf "aborted=%d (%.0f%%)" !aborted
          (100.0 *. float_of_int !aborted
           /. float_of_int (max 1 (!aborted + !committed)));
        "lat_ms=n/a" ]
  in
  det ();
  opt ()

(* ---- Extension: conventional 2PL/2PC on the Fig. 9 sweep ---------------- *)

let ext_conventional scale =
  let n = 8 in
  row "ext-conventional" [ "system"; "ci"; "throughput"; "diagnostics" ];
  List.iter
    (fun ci ->
      List.iter
        (fun (name, engine) ->
          let r = peak ~engine ~n ~workload:(YCSB { ci }) scale in
          let diagnostics =
            match r.Driver.counters with
            | [] -> ""
            | counters ->
                String.concat " "
                  (List.map
                     (fun (label, v) -> Printf.sprintf "%s=%d" label v)
                     (counters
                      @ List.filter (fun (_, v) -> v > 0) r.Driver.aborts))
          in
          row_tps "ext-conventional"
            ~series:(Printf.sprintf "%-6s" name)
            ~point:(Printf.sprintf "ci=%-7g" ci)
            ~extra:[ diagnostics ] r)
        [ ("ALOHA", aloha); ("Calvin", calvin); ("2PL", twopl) ])
    scale.fig9_cis

let all scale =
  Printf.printf "== scale profile: %s ==\n%!" scale.label;
  table1 ();
  fig6 scale;
  fig7 scale;
  fig8 scale;
  fig9 scale;
  fig10 scale;
  fig11 scale;
  ablation_straggler scale;
  ablation_push scale;
  ablation_dependent scale;
  ext_conventional scale
