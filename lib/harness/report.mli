(* Machine-readable benchmark reporting: collects figure points, raw
   console rows, per-figure wall-clock timings and micro ns/op estimates,
   and emits them as JSON (BENCH_macro.json / BENCH_micro.json).

   Recording is off by default; bench/main.exe turns it on with --json.
   When off, every record_* call is a no-op, so the harness can call them
   unconditionally. *)

val enable : unit -> unit
val recording : unit -> bool

val record_point :
  fig:string ->
  series:string ->
  point:string ->
  ?tps:float ->
  ?lat_mean_ms:float ->
  ?lat_p99_ms:float ->
  unit ->
  unit

val record_row : fig:string -> cols:string list -> unit
val record_fig_time : fig:string -> seconds:float -> unit
val record_micro : name:string -> ns_per_op:float -> unit

val record_real :
  series:string ->
  workload:string ->
  domains:int ->
  wall_s:float ->
  txns:int ->
  unit
(** One wall-clock point for the real runtime's compute phase: [txns]
    functor evaluations in [wall_s] host seconds on [domains] domains.
    Record a [domains:1] point per series — it is the speedup baseline. *)

val real_recorded : unit -> bool

val write_micro : string -> unit
val write_macro : scale:string -> string -> unit

val write_timeline : string -> string list -> unit
(** Append JSONL lines (one epoch-ledger segment, from
    [Obs.Ledger.to_lines]) to a TIMELINE.jsonl file, creating it if
    absent.  Append-only on purpose: successive runs accumulate segments
    that [Obs.Analyze] separates at the meta lines.  Unconditional. *)

val write_real : host_cores:int -> string -> unit
(** Write BENCH_real.json: per-series wall-clock points with derived
    txn/s and speedup over the same series' 1-domain run, plus the host
    core count (wall-clock numbers are machine-dependent, unlike the
    simulated macro suite). *)

type avail_series = {
  av_replicas : int;
  av_engine : string;
  av_seed : int;
  av_submitted : int;  (** scripted transactions in the workload *)
  av_completed : int;  (** transactions that replied by the horizon *)
  av_points : (int * int) list;
      (** [(t_us, committed)] samples from the chaos driver's probe loop *)
}

val write_availability :
  path:string -> schedule:string -> series:avail_series list -> unit
(** Write BENCH_availability.json: committed-work-over-time under one
    fault schedule, one series per replication degree — the
    availability-under-chaos figure.  Unconditional (does not consult
    {!recording}); kept free of chaos-library types on purpose. *)

type fastpath_series = {
  fp_mode : string;  (** ["on"] or ["off"] *)
  fp_committed : int;
  fp_tps : float;
  fp_p50_us : int;
  fp_p99_us : int;
  fp_fast_commits : int;
      (** transactions that took the coordination-free lane in this run
          ([aloha.fastpath_commits]); 0 in the off series *)
}

val write_fastpath :
  path:string -> workload:string -> series:fastpath_series list -> unit
(** Write BENCH_fastpath.json: one counter-heavy workload measured with
    the algebraic fast path on and off — the latency-collapse figure.
    Unconditional (does not consult {!recording}). *)

val write_telemetry :
  path:string ->
  engine:string ->
  workload:string ->
  result:Kernel.Result.t ->
  ?drops:Net.Network.drop_stats ->
  ?ctl:Obs.Ctl.t ->
  unit ->
  unit
(** Write one run's observability summary (TELEMETRY.json): headline
    result numbers including p999, per-stage latency percentiles, gauge
    series summaries, trace-ring occupancy / sampling stats, and fault
    counters.  Unlike the record_* API this is unconditional — it does not
    consult {!recording}. *)
