(** One server of the 2PL/2PC baseline: a single-version partition guarded
    by a strict two-phase-locking table, plus a coordinator side that
    drives lock-acquire / execute / two-phase-commit for client
    transactions and restarts them (bounded, with jittered backoff) after
    lock timeouts.

    This is the paper's "transaction-level concurrency control" strawman:
    a transaction can commit its keys only after {e every} conflict at
    {e every} participant is resolved, and the 2PC rounds enlarge the
    contention footprint — which is why it collapses under contention
    while ALOHA-DB does not. *)

type t

val create :
  sim:Sim.Engine.t ->
  rpc:Message.rpc ->
  addr:Net.Address.t ->
  node_id:int ->
  partition_of:(string -> int) ->
  addr_of_partition:(int -> Net.Address.t) ->
  registry:Calvin.Ctxn.registry ->
  config:Config.t ->
  metrics:Sim.Metrics.t ->
  ?obs:Obs.Ctl.t ->
  seed:int ->
  unit -> t
(** Transactions reuse Calvin's one-shot stored-procedure model.  [obs]
    turns on lifecycle tracing (submit / locks / prepared / committed /
    restarted / timeouts). *)

val submit : ?k:(unit -> unit) -> t -> Calvin.Ctxn.t -> unit
(** Run a transaction to completion (retrying on lock timeouts); [k]
    fires when it finally commits or is given up after [max_retries]. *)

val load_initial : t -> key:string -> Functor_cc.Value.t -> unit

val read_local : t -> string -> Functor_cc.Value.t option

val lock_waits : t -> int
(** Lock requests still waiting (or timing out) locally — gauge probe. *)

val prepared_count : t -> int
(** Staged-but-uncommitted 2PC participants — gauge probe. *)
