(** Assembly of a 2PL/2PC deployment. *)

type options = {
  n_servers : int;
  config : Config.t;
  latency : Net.Latency.t;
  partitioner : [ `Hash | `Prefix ];
  seed : int;
  faults : Net.Faults.t option;
      (** fault oracle for the RPC plane; 2PC cannot survive message
          loss, so pair it with [Net.Faults.Reliable] transport.
          [None] = fault-free. *)
  obs : Obs.Ctl.t option;
      (** observability handle: lifecycle tracing on every server plus
          lock-wait / prepared gauges; [None] = untraced *)
}

val default_options : options

type t

val create : ?registry:Calvin.Ctxn.registry -> options -> t

val set_trace : t -> (src:Net.Address.t -> dst:Net.Address.t -> unit) -> unit
(** Observe every send (chaos trace hashing). *)

val drop_stats : t -> Net.Network.drop_stats
val sim : t -> Sim.Engine.t
val metrics : t -> Sim.Metrics.t
val n_servers : t -> int
val server : t -> int -> Server.t
val partition_of : t -> string -> int
val load : t -> key:string -> Functor_cc.Value.t -> unit
val submit : ?k:(unit -> unit) -> t -> fe:int -> Calvin.Ctxn.t -> unit
val run_for : t -> int -> unit
