let name = "twopl"

type cluster = {
  c : Cluster.t;
  funreg : Functor_cc.Registry.t;
  seq : int ref;
}

let options_of ?seed (params : Kernel.Params.t) =
  (* 2PL has no epochs; params.epoch_us is ignored. *)
  let base = Cluster.default_options in
  { base with
    Cluster.n_servers = params.n_servers;
    partitioner = `Prefix;
    seed = (match seed with Some s -> s | None -> base.Cluster.seed);
    faults = params.faults;
    obs = params.obs }

let create ?seed params =
  let funreg = Functor_cc.Registry.with_builtins () in
  let creg = Calvin.Ctxn.with_builtins () in
  Calvin.Ctxn.register creg "kernel_apply" (Calvin.Engine.apply_proc funreg);
  { c = Cluster.create ~registry:creg (options_of ?seed params);
    funreg;
    seq = ref 0 }

let set_trace cl f = Cluster.set_trace cl.c f
let drop_stats cl = Cluster.drop_stats cl.c
let register cl name h = Functor_cc.Registry.register cl.funreg name h
let load cl key v = Cluster.load cl.c ~key v
let start (_ : cluster) = ()
let stop (_ : cluster) = ()
let sim cl = Cluster.sim cl.c
let metrics cl = Cluster.metrics cl.c
let n_servers cl = Cluster.n_servers cl.c

let submit cl ~fe txn ~k =
  incr cl.seq;
  (* The 2PL coordinator's callback fires on commit and on give-up alike;
     give-ups are reported through the abort metric keys. *)
  Cluster.submit cl.c ~fe
    (Calvin.Engine.lower ~version:!(cl.seq) txn)
    ~k:(fun () -> k Kernel.Txn.Ok)

let read_committed cl key =
  Server.read_local (Cluster.server cl.c (Cluster.partition_of cl.c key)) key

let committed_key = "twopl.committed"
let latency_key = "twopl.lat_total_us"
let abort_keys = [ ("gave up", "twopl.given_up") ]

let counter_keys =
  [ ("lock timeouts", "twopl.lock_timeouts"); ("restarts", "twopl.restarts") ]

let stage_keys = []
