(** 2PL/2PC behind the {!Kernel.Intf.ENGINE} signature.

    Shares Calvin's transaction lowering: the static facet is shipped
    through the generic ["kernel_apply"] stored procedure
    ({!Calvin.Engine.apply_proc}).  Lock-wait give-ups surface through
    [abort_keys] (["twopl.given_up"]); restarts and lock timeouts through
    [counter_keys]. *)

include Kernel.Intf.ENGINE

val options_of : ?seed:int -> Kernel.Params.t -> Cluster.options

val set_trace :
  cluster -> (src:Net.Address.t -> dst:Net.Address.t -> unit) -> unit
(** Observe every send on the cluster's RPC plane (chaos tracing). *)

val drop_stats : cluster -> Net.Network.drop_stats
