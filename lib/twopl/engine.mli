(** 2PL/2PC behind the {!Kernel.Intf.ENGINE} signature.

    Shares Calvin's transaction lowering: the static facet is shipped
    through the generic ["kernel_apply"] stored procedure
    ({!Calvin.Engine.apply_proc}).  Lock-wait give-ups surface through
    [abort_keys] (["twopl.given_up"]); restarts and lock timeouts through
    [counter_keys]. *)

include Kernel.Intf.ENGINE

val options_of : ?seed:int -> Kernel.Params.t -> Cluster.options
