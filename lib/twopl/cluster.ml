type options = {
  n_servers : int;
  config : Config.t;
  latency : Net.Latency.t;
  partitioner : [ `Hash | `Prefix ];
  seed : int;
  faults : Net.Faults.t option;
  obs : Obs.Ctl.t option;
}

let default_options =
  { n_servers = 8;
    config = Config.default;
    latency = Net.Latency.uniform ~base:80 ~jitter:40;
    partitioner = `Prefix;
    seed = 42;
    faults = None;
    obs = None }

type t = {
  sim : Sim.Engine.t;
  servers : Server.t array;
  metrics : Sim.Metrics.t;
  partition_of : string -> int;
  rpc : Message.rpc;
}

let create ?registry options =
  if options.n_servers <= 0 then invalid_arg "Twopl.Cluster: n_servers";
  let registry =
    match registry with Some r -> r | None -> Calvin.Ctxn.with_builtins ()
  in
  let sim = Sim.Engine.create () in
  let rng = Sim.Rng.create options.seed in
  let metrics = Sim.Metrics.create () in
  let rpc : Message.rpc =
    Net.Rpc.create sim (Sim.Rng.split rng) ~latency:options.latency
      ?faults:options.faults ()
  in
  let n = options.n_servers in
  let part =
    match options.partitioner with
    | `Hash -> Net.Partitioner.hash ~partitions:n
    | `Prefix -> Net.Partitioner.by_prefix_int ~partitions:n
  in
  let partition_of key = Net.Partitioner.partition_of part key in
  let servers =
    Array.init n (fun i ->
        Server.create ~sim ~rpc ~addr:(Net.Address.of_int i) ~node_id:i
          ~partition_of ~addr_of_partition:Net.Address.of_int ~registry
          ~config:options.config ~metrics ?obs:options.obs
          ~seed:options.seed ())
  in
  (match options.obs with
  | None -> ()
  | Some ctl ->
      Net.Rpc.set_fault_hook rpc (fun ~now ~dst ~kind ->
          Obs.Ctl.note_fault ctl ~now ~node:(Net.Address.to_int dst) ~kind);
      let g = Obs.Ctl.gauges ctl in
      Obs.Gauges.bind_metrics g metrics;
      Obs.Gauges.add_probe g (fun () ->
          let waits = ref 0 and prepared = ref 0 in
          Array.iter
            (fun s ->
              waits := !waits + Server.lock_waits s;
              prepared := !prepared + Server.prepared_count s)
            servers;
          Sim.Metrics.set_gauge metrics "gauge.lock_waits"
            (float_of_int !waits);
          Sim.Metrics.set_gauge metrics "gauge.prepared_txns"
            (float_of_int !prepared);
          let d = Net.Rpc.drop_stats rpc in
          Sim.Metrics.set_gauge metrics "gauge.net_drops"
            (float_of_int
               (d.Net.Network.injected + d.partitioned + d.crashed
              + d.unregistered))));
  { sim; servers; metrics; partition_of; rpc }

let set_trace t f = Net.Rpc.set_trace t.rpc f
let drop_stats t = Net.Rpc.drop_stats t.rpc
let sim t = t.sim
let metrics t = t.metrics
let n_servers t = Array.length t.servers
let server t i = t.servers.(i)
let partition_of t key = t.partition_of key

let load t ~key value =
  Server.load_initial t.servers.(t.partition_of key) ~key value

let submit ?k t ~fe txn = Server.submit ?k t.servers.(fe) txn

let run_for t us = Sim.Engine.run ~until:(Sim.Engine.now t.sim + us) t.sim
