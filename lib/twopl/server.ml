module Value = Functor_cc.Value
module LM = Calvin.Lock_manager

(* Participant-side state for a lock request that may still time out. *)
type lock_wait = {
  reply : Message.resp -> unit;
  reads : string list;
  mutable settled : bool;
}

type t = {
  sim : Sim.Engine.t;
  rpc : Message.rpc;
  address : Net.Address.t;
  node_id : int;
  partition_of : string -> int;
  addr_of_partition : int -> Net.Address.t;
  registry : Calvin.Ctxn.registry;
  config : Config.t;
  metrics : Sim.Metrics.t;
  obs : Obs.Ctl.t option;
  (* Hot-path metric handles, resolved once at creation. *)
  m_submitted : int ref;
  m_committed : int ref;
  m_restarts : int ref;
  m_given_up : int ref;
  m_lock_timeouts : int ref;
  m_missing_proc : int ref;
  h_lat_total : Sim.Stats.Histogram.t;
  rng : Sim.Rng.t;
  store : (string, Value.t) Hashtbl.t;
  pool : Sim.Worker_pool.t;
  mutable lm : LM.t;
  waits : (int, lock_wait) Hashtbl.t;
  prepared : (int, (string * Value.t) list) Hashtbl.t;
  mutable next_txn : int;
}

let read_local t key = Hashtbl.find_opt t.store key

(* Lifecycle trace emit: one option test when tracing is off. *)
let emit t ~txn ~stage ?arg () =
  match t.obs with
  | None -> ()
  | Some ctl ->
      Obs.Ctl.emit ctl ~txn ~stage ~node:t.node_id ~ts:(Sim.Engine.now t.sim)
        ?arg ()

let load_initial t ~key value =
  if t.partition_of key <> t.node_id then
    invalid_arg "Twopl.Server.load_initial: key not owned";
  Hashtbl.replace t.store key value

let lock_waits t = Hashtbl.length t.waits
let prepared_count t = Hashtbl.length t.prepared

(* ---- participant side -------------------------------------------------- *)

let on_locks_granted t uid =
  match Hashtbl.find_opt t.waits uid with
  | None -> ()
  | Some w ->
      if not w.settled then begin
        w.settled <- true;
        Hashtbl.remove t.waits uid;
        let cost =
          max t.config.Config.cost_read_us
            (List.length w.reads * t.config.Config.cost_read_us)
        in
        Sim.Worker_pool.submit t.pool ~cost (fun () ->
            let values =
              List.map (fun key -> (key, Hashtbl.find_opt t.store key)) w.reads
            in
            w.reply (Message.Locked { values }))
      end

let do_lock_and_read t ~uid ~reads ~writes reply =
  let keys =
    List.map (fun k -> (k, LM.Read)) reads
    @ List.map (fun k -> (k, LM.Write)) writes
  in
  let w = { reply; reads; settled = false } in
  Hashtbl.replace t.waits uid w;
  let cost =
    max t.config.Config.cost_lock_us
      (List.length keys * t.config.Config.cost_lock_us)
  in
  Sim.Worker_pool.submit t.pool ~cost (fun () ->
      LM.request t.lm ~uid ~keys;
      (* Deadlock resolution by timeout: if the locks are not all granted
         in time, give up and release whatever queued. *)
      if not w.settled then
        Sim.Engine.after t.sim t.config.Config.lock_timeout_us (fun () ->
            if not w.settled then begin
              w.settled <- true;
              Hashtbl.remove t.waits uid;
              LM.release t.lm ~uid;
              incr t.m_lock_timeouts;
              emit t ~txn:uid ~stage:Obs.Trace.Lock_timeout ();
              w.reply Message.Lock_timeout
            end))

let do_prepare t ~uid ~writes reply =
  (* No durable log here (fault tolerance off, as for the other systems):
     prepare just stages the writes. *)
  Hashtbl.replace t.prepared uid writes;
  reply Message.Prepared

let do_commit t ~uid reply =
  (match Hashtbl.find_opt t.prepared uid with
  | Some writes ->
      Hashtbl.remove t.prepared uid;
      List.iter (fun (key, v) -> Hashtbl.replace t.store key v) writes
  | None -> ());
  (* Strict 2PL: locks are held through commit. *)
  (try LM.release t.lm ~uid with Invalid_argument _ -> ());
  reply Message.Done

let do_release t ~uid reply =
  Hashtbl.remove t.prepared uid;
  (match Hashtbl.find_opt t.waits uid with
  | Some w ->
      w.settled <- true;
      Hashtbl.remove t.waits uid
  | None -> ());
  (try LM.release t.lm ~uid with Invalid_argument _ -> ());
  reply Message.Done

(* ---- coordinator side --------------------------------------------------- *)

let group_keys t keys =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun k ->
      let p = t.partition_of k in
      match Hashtbl.find_opt tbl p with
      | Some r -> r := k :: !r
      | None -> Hashtbl.add tbl p (ref [ k ]))
    keys;
  tbl

let participants_of t (txn : Calvin.Ctxn.t) =
  Calvin.Ctxn.participants ~partition_of:t.partition_of txn

let rec attempt t txn ~tries ~submitted_at k =
  let uid = t.next_txn in
  t.next_txn <- t.next_txn + 1024;  (* keep the node id in the low bits *)
  emit t ~txn:uid ~stage:Obs.Trace.Submit ~arg:tries ();
  let parts = participants_of t txn in
  let reads_by = group_keys t txn.Calvin.Ctxn.read_set in
  let writes_by = group_keys t txn.Calvin.Ctxn.write_set in
  let keys_of tbl p =
    match Hashtbl.find_opt tbl p with Some r -> !r | None -> []
  in
  let awaiting = ref (List.length parts) in
  let failed = ref false in
  let granted = ref [] in
  let values = ref [] in
  let finish_abort () =
    (* Release everything we managed to lock, then retry or give up. *)
    let to_release = !granted in
    let pending = ref (List.length to_release) in
    let continue () =
      if tries < t.config.Config.max_retries then begin
        incr t.m_restarts;
        emit t ~txn:uid ~stage:Obs.Trace.Restarted ~arg:tries ();
        let backoff =
          t.config.Config.retry_backoff_us
          + Sim.Rng.int t.rng (t.config.Config.retry_backoff_us * (tries + 1))
        in
        Sim.Engine.after t.sim backoff (fun () ->
            attempt t txn ~tries:(tries + 1) ~submitted_at k)
      end
      else begin
        incr t.m_given_up;
        emit t ~txn:uid ~stage:Obs.Trace.Aborted ~arg:tries ();
        k ()
      end
    in
    if to_release = [] then continue ()
    else
      List.iter
        (fun p ->
          Net.Rpc.call t.rpc ~src:t.address ~dst:(t.addr_of_partition p)
            (Message.Release { uid })
            (fun _ ->
              decr pending;
              if !pending = 0 then continue ()))
        to_release
  in
  let proceed_commit () =
    (* Execute the procedure, then two-phase commit. *)
    Sim.Worker_pool.submit t.pool ~cost:t.config.Config.cost_exec_us
      (fun () ->
        match Calvin.Ctxn.find t.registry txn.Calvin.Ctxn.proc with
        | None ->
            incr t.m_missing_proc;
            finish_abort ()
        | Some proc ->
            let writes = proc ~txn ~reads:!values in
            let writes_for p =
              List.filter (fun (key, _) -> t.partition_of key = p) writes
            in
            let prepared = ref (List.length parts) in
            List.iter
              (fun p ->
                Net.Rpc.call t.rpc ~src:t.address ~dst:(t.addr_of_partition p)
                  (Message.Prepare { uid; writes = writes_for p })
                  (fun _ ->
                    decr prepared;
                    if !prepared = 0 then begin
                      emit t ~txn:uid ~stage:Obs.Trace.Prepared ();
                      (* Phase 2. *)
                      let committed = ref (List.length parts) in
                      List.iter
                        (fun p ->
                          Net.Rpc.call t.rpc ~src:t.address
                            ~dst:(t.addr_of_partition p)
                            (Message.Commit { uid })
                            (fun _ ->
                              decr committed;
                              if !committed = 0 then begin
                                incr t.m_committed;
                                emit t ~txn:uid ~stage:Obs.Trace.Committed ();
                                Sim.Stats.Histogram.add t.h_lat_total
                                  (Sim.Engine.now t.sim - submitted_at);
                                k ()
                              end))
                        parts
                    end))
              parts)
  in
  List.iter
    (fun p ->
      Net.Rpc.call t.rpc ~src:t.address ~dst:(t.addr_of_partition p)
        (Message.Lock_and_read
           { uid; reads = keys_of reads_by p; writes = keys_of writes_by p })
        (fun resp ->
          decr awaiting;
          (match resp with
          | Message.Locked { values = vs } ->
              granted := p :: !granted;
              values := vs @ !values
          | Message.Lock_timeout -> failed := true
          | Message.Prepared | Message.Done -> failed := true);
          if !awaiting = 0 then
            if !failed then finish_abort ()
            else begin
              emit t ~txn:uid ~stage:Obs.Trace.Locks_acquired ();
              proceed_commit ()
            end))
    parts

let submit ?(k = fun () -> ()) t txn =
  incr t.m_submitted;
  attempt t txn ~tries:0 ~submitted_at:(Sim.Engine.now t.sim) k

(* ---- construction -------------------------------------------------------- *)

let create ~sim ~rpc ~addr ~node_id ~partition_of ~addr_of_partition
    ~registry ~config ~metrics ?obs ~seed () =
  let c = Sim.Metrics.counter metrics in
  let t =
    { sim; rpc; address = addr; node_id; partition_of; addr_of_partition;
      registry; config; metrics; obs;
      m_submitted = c "twopl.submitted";
      m_committed = c "twopl.committed";
      m_restarts = c "twopl.restarts";
      m_given_up = c "twopl.given_up";
      m_lock_timeouts = c "twopl.lock_timeouts";
      m_missing_proc = c "twopl.missing_proc";
      h_lat_total = Sim.Metrics.histogram metrics "twopl.lat_total_us";
      rng = Sim.Rng.create (seed + node_id);
      store = Hashtbl.create 65536;
      pool = Sim.Worker_pool.create sim ~workers:config.Config.cores;
      lm = LM.create ~on_ready:(fun _ -> ());
      waits = Hashtbl.create 256;
      prepared = Hashtbl.create 256;
      next_txn = node_id }
  in
  t.lm <- LM.create ~on_ready:(fun uid -> on_locks_granted t uid);
  Net.Rpc.serve rpc addr (fun ~src:_ req ~reply ->
      match req with
      | Message.Lock_and_read { uid; reads; writes } ->
          Sim.Worker_pool.submit t.pool ~cost:config.Config.cost_msg_us
            (fun () -> do_lock_and_read t ~uid ~reads ~writes reply)
      | Message.Prepare { uid; writes } ->
          let cost =
            config.Config.cost_msg_us
            + (List.length writes * config.Config.cost_write_us)
          in
          Sim.Worker_pool.submit t.pool ~cost (fun () ->
              do_prepare t ~uid ~writes reply)
      | Message.Commit { uid } ->
          Sim.Worker_pool.submit t.pool ~cost:config.Config.cost_msg_us
            (fun () -> do_commit t ~uid reply)
      | Message.Release { uid } ->
          Sim.Worker_pool.submit t.pool ~cost:config.Config.cost_msg_us
            (fun () -> do_release t ~uid reply));
  t
