(* The chaos driver: run a seeded fault {!Schedule} against one engine
   through the generic kernel client loop, replay it to prove the trace
   is a pure function of the seed, run a crash-free reference, and check
   the invariants (see DESIGN.md, "Fault model"). *)

module type TARGET = sig
  include Kernel.Intf.ENGINE

  val transport : Net.Faults.transport
  (** How this engine's protocol reads the fault oracle: [Lossy] only for
      engines hardened against message loss. *)

  val set_trace :
    cluster -> (src:Net.Address.t -> dst:Net.Address.t -> unit) -> unit

  val drop_stats : cluster -> Net.Network.drop_stats

  val apply : cluster -> faults:Net.Faults.t -> Schedule.event -> unit
  (** Realize one schedule event: install it on the oracle, or (for
      crash/skew on engines with native support) schedule the state
      change on the cluster's simulation. *)

  val probes :
    cluster ->
    keys:string list ->
    exclude_nodes:int list ->
    (string * (unit -> int)) list
  (** Named monotone counters sampled during the run (watermarks,
      committed count).  Probes living on [exclude_nodes] are omitted —
      a recovering node legitimately rebuilds below its pre-crash
      watermark. *)
end

(* ---- targets ------------------------------------------------------------- *)

(* Crash and skew for engines without a native recovery / clock model:
   a crash is a stall window (the reliable transport buffers traffic
   until restart), skew is a pure-delay edict on the node's sends. *)
let reliable_apply faults = function
  | Schedule.Edict e -> Net.Faults.install faults [ e ]
  | Schedule.Partition { group; from_us; until_us } ->
      Net.Faults.partition faults
        ~group:(List.map Net.Address.of_int group)
        ~from_us ~until_us
  | Schedule.Crash { node; at_us; restart_at_us } ->
      Net.Faults.partition faults
        ~group:[ Net.Address.of_int node ]
        ~from_us:at_us ~until_us:restart_at_us
  | Schedule.Skew { node; at_us; skew_us } ->
      Net.Faults.install faults
        [ Net.Faults.edict
            ~src:(Net.Address.of_int node)
            ~extra_max_us:(abs skew_us) Net.Faults.Delay ~p:1.0 ~from_us:at_us
            ~until_us:(at_us + 5_000) ]

let committed_probe (type c) (module E : Kernel.Intf.ENGINE with type cluster = c)
    (cluster : c) =
  let m = E.metrics cluster in
  (E.committed_key, fun () -> Sim.Metrics.get m E.committed_key)

module Aloha_target = struct
  include Alohadb.Engine

  let transport = Net.Faults.Lossy

  let apply c ~faults = function
    | Schedule.Edict e -> Net.Faults.install faults [ e ]
    | Schedule.Partition { group; from_us; until_us } ->
        Net.Faults.partition faults
          ~group:(List.map Net.Address.of_int group)
          ~from_us ~until_us
    | Schedule.Crash { node; at_us; restart_at_us } ->
        let sim = Alohadb.Cluster.sim c in
        let srv = Alohadb.Cluster.server c node in
        Sim.Engine.schedule sim ~at:at_us (fun () ->
            Alohadb.Server.crash_be srv);
        Sim.Engine.schedule sim ~at:restart_at_us (fun () ->
            Alohadb.Server.restart_be srv)
    | Schedule.Skew { node; at_us; skew_us } ->
        let sim = Alohadb.Cluster.sim c in
        let srv = Alohadb.Cluster.server c node in
        Sim.Engine.schedule sim ~at:at_us (fun () ->
            Clocksync.Node_clock.skew_by (Alohadb.Server.clock srv) ~us:skew_us)

  let probes c ~keys ~exclude_nodes =
    let watermarks =
      List.filter_map
        (fun k ->
          let partition = Alohadb.Cluster.partition_of c k in
          (* Group-aware exclusion: a partition's probe is unreliable
             while ANY member of its replication group crashes during the
             run — its primary may be a promoted replica mid-replay, or
             (after the primary's rejoin) the home server rebuilding.
             Unreplicated groups are the singleton [partition], keeping
             the pre-replication behaviour exactly. *)
          let group = Alohadb.Cluster.group_members c ~partition in
          if List.exists (fun m -> List.mem m exclude_nodes) group then None
          else
            let key = Mvstore.Key.intern k in
            Some
              ( "watermark:" ^ k,
                fun () ->
                  (* through the route: reads the current primary *)
                  Functor_cc.Compute_engine.watermark
                    (Alohadb.Server.engine
                       (Alohadb.Cluster.primary_server c ~partition))
                    ~key ))
        keys
    in
    committed_probe (module Alohadb.Engine) c :: watermarks
end

module Calvin_target = struct
  include Calvin.Engine

  let transport = Net.Faults.Reliable
  let apply _c ~faults ev = reliable_apply faults ev

  let probes c ~keys:_ ~exclude_nodes:_ =
    [ committed_probe (module Calvin.Engine) c ]
end

module Twopl_target = struct
  include Twopl.Engine

  let transport = Net.Faults.Reliable
  let apply _c ~faults ev = reliable_apply faults ev

  let probes c ~keys:_ ~exclude_nodes:_ =
    [ committed_probe (module Twopl.Engine) c ]
end

type packed = Target : (module TARGET with type cluster = 'c) -> packed

let targets =
  [ ("aloha", Target (module Aloha_target));
    ("calvin", Target (module Calvin_target));
    ("twopl", Target (module Twopl_target)) ]

let target_of_name name = List.assoc_opt name targets

(* ---- workload ------------------------------------------------------------ *)

(* The same YCSB-style increment history the cross-engine test uses:
   commutative adds over a small shared keyspace, so the final state has
   a closed-form oracle no matter how the engine interleaved them. *)
type workload = {
  keys : string list;
  batch : ((int * int) * int) list;
  arrivals : (int * int) list;
  oracle : int array;
}

let make_workload ~seed ~n_servers =
  let n_keys = 6 * n_servers in
  let keys =
    List.init n_keys (fun i -> Printf.sprintf "c:%d:%d" (i mod n_servers) i)
  in
  (* Decorrelate from the schedule generator, which consumes the raw
     seed. *)
  let rng = Sim.Rng.create ((seed * 1_000_003) lxor 0x5eed) in
  let batch =
    List.init 60 (fun _ ->
        let k1 = Sim.Rng.int rng n_keys in
        let k2 = Sim.Rng.int rng n_keys in
        let delta = 1 + Sim.Rng.int rng 9 in
        ((k1, k2), delta))
  in
  let arrivals =
    List.mapi (fun i _ -> (1_000 + (i * 400), i mod n_servers)) batch
  in
  let oracle = Array.make n_keys 0 in
  List.iter
    (fun ((k1, k2), delta) ->
      oracle.(k1) <- oracle.(k1) + delta;
      if k2 <> k1 then oracle.(k2) <- oracle.(k2) + delta)
    batch;
  { keys; batch; arrivals; oracle }

let txn_of w (k1, k2) delta =
  let ks =
    List.sort_uniq compare [ List.nth w.keys k1; List.nth w.keys k2 ]
  in
  Kernel.Txn.make (List.map (fun k -> (k, Kernel.Txn.Add delta)) ks)

(* ---- one run ------------------------------------------------------------- *)

let horizon_us = 1_000_000
let probe_period_us = 5_000

type run_out = {
  trace : Trace.t;
  result : Kernel.Result.t;
  state : int array;  (** final committed value per workload key *)
  replies : int;
  probe_regressions : string list;
  committed_series : (int * int) list;
      (** (t_us, committed counter) sampled every probe period — the
          availability-under-chaos time series *)
  metric : string -> int;
  drops : Net.Network.drop_stats;
}

let exec (type c) (module T : TARGET with type cluster = c)
    ?compute ?replicas ?fastpath ?obs ~(schedule : Schedule.t) ~faulted () =
  let n = schedule.Schedule.n_servers in
  let w = make_workload ~seed:schedule.Schedule.seed ~n_servers:n in
  let faults =
    Net.Faults.create ~transport:T.transport ~seed:schedule.Schedule.seed ()
  in
  let params =
    Kernel.Params.make
      ?faults:(if faulted then Some faults else None)
      ?compute ?replicas ?fastpath ?obs ~n_servers:n ()
  in
  let cluster = T.create ~seed:schedule.Schedule.seed params in
  List.iter (fun k -> T.load cluster k (Functor_cc.Value.int 0)) w.keys;
  T.start cluster;
  if faulted then List.iter (T.apply cluster ~faults) schedule.Schedule.events;
  let sim = T.sim cluster in
  let trace = Trace.create () in
  T.set_trace cluster (fun ~src ~dst ->
      Trace.note trace ~now:(Sim.Engine.now sim) ~src ~dst);
  (* Monotonicity probes, sampled throughout the run.  Probes on a
     crashing node are excluded up front: recovery rebuilds from the
     checkpoint and the durable log, legitimately below the pre-crash
     in-memory watermark. *)
  let crashed_nodes =
    if not faulted then []
    else
      List.filter_map
        (function Schedule.Crash { node; _ } -> Some node | _ -> None)
        schedule.Schedule.events
  in
  let regressions = ref [] in
  let probes =
    Array.of_list (T.probes cluster ~keys:w.keys ~exclude_nodes:crashed_nodes)
  in
  let metrics = T.metrics cluster in
  let series = ref [] in
  let last = Array.map (fun _ -> min_int) probes in
  let rec sample () =
    Array.iteri
      (fun i (name, f) ->
        let v = f () in
        if v < last.(i) then
          regressions :=
            Printf.sprintf "%s regressed %d -> %d at t=%d" name last.(i) v
              (Sim.Engine.now sim)
            :: !regressions;
        last.(i) <- v)
      probes;
    series :=
      (Sim.Engine.now sim, Sim.Metrics.get metrics T.committed_key)
      :: !series;
    if Sim.Engine.now sim + probe_period_us < horizon_us then
      Sim.Engine.after sim probe_period_us sample
  in
  Sim.Engine.after sim probe_period_us sample;
  let replies = ref 0 in
  let remaining = ref w.batch in
  let gen ~fe:_ =
    match !remaining with
    | [] -> invalid_arg "chaos: scripted generator exhausted"
    | (ks, delta) :: tl ->
        remaining := tl;
        txn_of w ks delta
  in
  let result =
    Kernel.Run.run
      (module T)
      ~cluster ~gen
      ~arrival:(Kernel.Arrivals.Scripted { arrivals = w.arrivals })
      ~on_reply:(fun ~fe:_ _ -> incr replies)
      ?obs ~warmup_us:0 ~measure_us:horizon_us ~seed:schedule.Schedule.seed
      ()
  in
  let state =
    Array.of_list
      (List.map
         (fun k ->
           match T.read_committed cluster k with
           | Some v -> Functor_cc.Value.to_int v
           | None -> 0)
         w.keys)
  in
  let m = T.metrics cluster in
  ( w,
    { trace;
      result;
      state;
      replies = !replies;
      probe_regressions = List.rev !regressions;
      committed_series = List.rev !series;
      metric = (fun key -> Sim.Metrics.get m key);
      drops = T.drop_stats cluster } )

(* ---- invariants ---------------------------------------------------------- *)

type report = {
  seed : int;
  engine : string;
  compute : string option;
  replicas : int;
  fastpath : bool;
  trace_hash : string;
  trace_events : int;
  committed : int;
  submitted : int;
  availability : (int * int) list;
  drops : int;
  drop_detail : Net.Network.drop_stats;
  timeline : string list;
  violations : string list;
}

let passed r = r.violations = []

let check_state ~label ~(expected : int array) ~(actual : int array)
    ~(keys : string list) acc =
  let acc = ref acc in
  List.iteri
    (fun i k ->
      if actual.(i) <> expected.(i) then
        acc :=
          Printf.sprintf "%s: key %s = %d, expected %d" label k actual.(i)
            expected.(i)
          :: !acc)
    keys;
  !acc

let run_schedule ?compute ?replicas ?fastpath ?obs (Target (module T))
    ~(schedule : Schedule.t) =
  (* Only the faulted run carries the observability handle: the replay
     and reference runs exist to check invariants, and the ledger (when
     one is attached) should describe the run the timeline is about. *)
  let w, faulted =
    exec (module T) ?compute ?replicas ?fastpath ?obs ~schedule ~faulted:true
      ()
  in
  let _, replay =
    exec (module T) ?compute ?replicas ?fastpath ~schedule ~faulted:true ()
  in
  (* The reference runs at the same replication degree: the survival
     invariant is "a replicated faulted run equals a replicated fault-free
     run", and replication itself is proven behaviour-neutral against
     k = 1 by the differential test. *)
  let _, reference =
    exec (module T) ?compute ?replicas ?fastpath ~schedule ~faulted:false ()
  in
  let submitted = List.length w.batch in
  let v = ref [] in
  (* Determinism: the replay's trace must be byte-identical. *)
  if not (Trace.equal faulted.trace replay.trace) then
    v :=
      Printf.sprintf "trace hash not reproducible: %s (%d events) vs %s (%d)"
        (Trace.to_hex faulted.trace)
        (Trace.events faulted.trace)
        (Trace.to_hex replay.trace)
        (Trace.events replay.trace)
      :: !v;
  (* Completion soundness: every submission eventually replied. *)
  if faulted.replies <> submitted then
    v :=
      Printf.sprintf "completion: %d replies for %d submissions"
        faulted.replies submitted
      :: !v;
  (* Monotone probes (watermarks / committed counters). *)
  v := List.rev_append faulted.probe_regressions !v;
  (* Committed state vs the oracle, and vs the crash-free reference run.
     2PL may abandon transactions under induced lock-wait timeouts; when
     it gave none up the exact oracle applies, otherwise each key must
     stay at or below it (a lost-then-reapplied write would overshoot). *)
  let given_up =
    match List.assoc_opt "gave up" faulted.result.Kernel.Result.aborts with
    | Some n -> n
    | None -> 0
  in
  if given_up = 0 then begin
    v :=
      check_state ~label:"state vs oracle" ~expected:w.oracle
        ~actual:faulted.state ~keys:w.keys !v;
    v :=
      check_state ~label:"state vs crash-free reference"
        ~expected:reference.state ~actual:faulted.state ~keys:w.keys !v;
    if faulted.result.Kernel.Result.committed <> submitted then
      v :=
        Printf.sprintf "committed %d of %d with no give-ups"
          faulted.result.Kernel.Result.committed submitted
        :: !v
  end
  else
    List.iteri
      (fun i k ->
        if faulted.state.(i) > w.oracle.(i) then
          v :=
            Printf.sprintf "state above oracle: key %s = %d > %d" k
              faulted.state.(i) w.oracle.(i)
            :: !v)
      w.keys;
  (* At-most-once evaluation: in a crash-free run every installed functor
     is computed at most once (recovery legitimately recomputes). *)
  if T.name = "aloha" && not (Schedule.has_crash schedule) then begin
    let computed = faulted.metric "fcc.computed" in
    let installed = faulted.metric "aloha.functors_installed" in
    if computed > installed then
      v :=
        Printf.sprintf "at-most-once: %d computations for %d installs"
          computed installed
        :: !v
  end;
  { seed = schedule.Schedule.seed;
    engine = T.name;
    compute;
    replicas = (match replicas with Some k -> max 1 k | None -> 1);
    fastpath = (match fastpath with Some b -> b | None -> false);
    trace_hash = Trace.to_hex faulted.trace;
    trace_events = Trace.events faulted.trace;
    committed = faulted.result.Kernel.Result.committed;
    submitted;
    availability = faulted.committed_series;
    drops =
      faulted.drops.Net.Network.injected
      + faulted.drops.Net.Network.partitioned
      + faulted.drops.Net.Network.crashed
      + faulted.drops.Net.Network.unregistered;
    drop_detail = faulted.drops;
    timeline =
      (match obs with
      | Some ctl -> (
          match Obs.Ctl.ledger ctl with
          | Some l -> Obs.Ledger.to_lines l
          | None -> [])
      | None -> []);
    violations = List.rev !v }

let run_seed ?compute ?replicas ?fastpath ?obs t ~seed ~n_servers =
  let schedule =
    (* Replicated battery: crash every backend once (staggered); the
       generic mixed schedule otherwise. *)
    match replicas with
    | Some k when k > 1 -> Schedule.generate_replicated ~seed ~n_servers
    | Some _ | None -> Schedule.generate ~seed ~n_servers
  in
  run_schedule ?compute ?replicas ?fastpath ?obs t ~schedule

let trace_hash_of ?compute ?replicas ?fastpath (Target (module T))
    ~(schedule : Schedule.t) =
  let _, out =
    exec (module T) ?compute ?replicas ?fastpath ~schedule ~faulted:true ()
  in
  Trace.to_hex out.trace
