(** Order-sensitive digest of a run's message trace.

    Every attempted send is folded as [(now, src, dst)] into an FNV-1a
    accumulator (hook it up with [Cluster.set_trace]).  Two runs of the
    same seeded schedule must produce byte-identical digests — this is
    the observable form of the chaos determinism contract. *)

type t

val create : unit -> t
val note : t -> now:int -> src:Net.Address.t -> dst:Net.Address.t -> unit

val events : t -> int
(** Number of sends folded in. *)

val to_hex : t -> string
(** 16-hex-digit digest. *)

val equal : t -> t -> bool
(** Same digest and same event count. *)
