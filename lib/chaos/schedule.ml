type event =
  | Edict of Net.Faults.edict
  | Partition of { group : int list; from_us : int; until_us : int }
  | Crash of { node : int; at_us : int; restart_at_us : int }
  | Skew of { node : int; at_us : int; skew_us : int }

type t = { seed : int; n_servers : int; events : event list }

(* All fault windows live inside [window_lo, window_hi); the driver's
   scripted arrivals end around 25ms and the run horizon is long, so every
   window closes (and every crashed node restarts) with ample time left to
   drain retries and recovery. *)
let window_lo = 2_000
let window_hi = 45_000

let gen_edict rng ~n_servers =
  let kind =
    match Sim.Rng.int rng 4 with
    | 0 -> Net.Faults.Drop
    | 1 -> Net.Faults.Delay
    | 2 -> Net.Faults.Duplicate
    | _ -> Net.Faults.Reorder
  in
  let p = float_of_int (5 + Sim.Rng.int rng 25) /. 100. in
  let extra_max_us = 500 + Sim.Rng.int rng 4_500 in
  let from_us = window_lo + Sim.Rng.int rng 20_000 in
  let until_us = from_us + 3_000 + Sim.Rng.int rng (window_hi - from_us - 3_000) in
  let node () = Some (Net.Address.of_int (Sim.Rng.int rng n_servers)) in
  let src, dst =
    match Sim.Rng.int rng 3 with
    | 0 -> (None, None)
    | 1 -> (node (), None)
    | _ -> (None, node ())
  in
  Edict { Net.Faults.kind; p; extra_max_us; src; dst; from_us; until_us }

let gen_partition rng ~n_servers =
  (* A proper, non-empty subset of the servers; the complement keeps the
     epoch manager, so the group loses its control traffic too. *)
  let size = 1 + Sim.Rng.int rng (max 1 (n_servers - 1)) in
  let nodes = Array.init n_servers Fun.id in
  Sim.Rng.shuffle_in_place rng nodes;
  let group = Array.to_list (Array.sub nodes 0 size) in
  let from_us = 4_000 + Sim.Rng.int rng 10_000 in
  let until_us = from_us + 2_000 + Sim.Rng.int rng 6_000 in
  Partition { group; from_us; until_us }

let gen_crash rng ~n_servers =
  let node = Sim.Rng.int rng n_servers in
  let at_us = 5_000 + Sim.Rng.int rng 15_000 in
  let restart_at_us = at_us + 2_000 + Sim.Rng.int rng 8_000 in
  Crash { node; at_us; restart_at_us }

let gen_skew rng ~n_servers =
  let node = Sim.Rng.int rng n_servers in
  let at_us = window_lo + Sim.Rng.int rng 20_000 in
  let magnitude = 200 + Sim.Rng.int rng 1_800 in
  let skew_us = if Sim.Rng.bool rng then magnitude else -magnitude in
  Skew { node; at_us; skew_us }

let generate ~seed ~n_servers =
  if n_servers <= 0 then invalid_arg "Schedule.generate: n_servers";
  let rng = Sim.Rng.create seed in
  let edicts =
    List.init (1 + Sim.Rng.int rng 3) (fun _ -> gen_edict rng ~n_servers)
  in
  let partitions =
    if n_servers > 1 && Sim.Rng.bool rng then [ gen_partition rng ~n_servers ]
    else []
  in
  let crashes = if Sim.Rng.bool rng then [ gen_crash rng ~n_servers ] else [] in
  let skews =
    List.init (Sim.Rng.int rng 3) (fun _ -> gen_skew rng ~n_servers)
  in
  { seed; n_servers; events = edicts @ partitions @ crashes @ skews }

(* Replicated-cluster schedule: crash EVERY backend exactly once, in a
   random order, with the windows staggered far enough apart that at most
   one backend is down — or catching up after a rejoin — at any moment
   (crash + restart <= 7ms + detection 3ms + immediate re-ship, vs 25ms
   spacing).  That is the "any single backend loss" regime the
   replication survival invariant quantifies over; overlapping crashes
   within one replication group would need k > 2 to survive and are
   exercised separately.  Partitions are excluded: a partitioned (but
   live) primary is a split-brain problem, which the failure monitor —
   a crash detector, not a membership service — deliberately does not
   solve (see DESIGN.md §13). *)
let generate_replicated ~seed ~n_servers =
  if n_servers <= 0 then
    invalid_arg "Schedule.generate_replicated: n_servers";
  let rng = Sim.Rng.create seed in
  let edicts =
    List.init (Sim.Rng.int rng 2) (fun _ -> gen_edict rng ~n_servers)
  in
  let order = Array.init n_servers Fun.id in
  Sim.Rng.shuffle_in_place rng order;
  let crashes =
    List.init n_servers (fun i ->
        let at_us = 5_000 + (i * 25_000) + Sim.Rng.int rng 3_000 in
        let restart_at_us = at_us + 2_000 + Sim.Rng.int rng 5_000 in
        Crash { node = order.(i); at_us; restart_at_us })
  in
  let skews =
    List.init (Sim.Rng.int rng 3) (fun _ -> gen_skew rng ~n_servers)
  in
  { seed; n_servers; events = edicts @ crashes @ skews }

let has_crash t =
  List.exists (function Crash _ -> true | _ -> false) t.events

let pp_event ppf = function
  | Edict e ->
      let kind =
        match e.Net.Faults.kind with
        | Net.Faults.Drop -> "drop"
        | Delay -> "delay"
        | Duplicate -> "dup"
        | Reorder -> "reorder"
      in
      let filt name = function
        | None -> ""
        | Some a -> Printf.sprintf " %s=%d" name (Net.Address.to_int a)
      in
      Format.fprintf ppf "edict %s p=%.2f extra<=%dus%s%s [%d,%d)" kind
        e.Net.Faults.p e.Net.Faults.extra_max_us
        (filt "src" e.Net.Faults.src)
        (filt "dst" e.Net.Faults.dst)
        e.Net.Faults.from_us e.Net.Faults.until_us
  | Partition { group; from_us; until_us } ->
      Format.fprintf ppf "partition {%s} [%d,%d)"
        (String.concat "," (List.map string_of_int group))
        from_us until_us
  | Crash { node; at_us; restart_at_us } ->
      Format.fprintf ppf "crash node=%d at=%d restart=%d" node at_us
        restart_at_us
  | Skew { node; at_us; skew_us } ->
      Format.fprintf ppf "skew node=%d at=%d by=%dus" node at_us skew_us

let pp ppf t =
  Format.fprintf ppf "@[<v>schedule seed=%d n=%d" t.seed t.n_servers;
  List.iter (fun e -> Format.fprintf ppf "@,  %a" pp_event e) t.events;
  Format.fprintf ppf "@]"
