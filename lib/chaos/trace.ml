type t = { mutable hash : int64; mutable events : int }

(* FNV-1a offset basis / prime, folding each event field as one word. *)
let basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let create () = { hash = basis; events = 0 }

let mix h v = Int64.mul (Int64.logxor h (Int64.of_int v)) prime

let note t ~now ~src ~dst =
  t.hash <-
    mix (mix (mix t.hash now) (Net.Address.to_int src)) (Net.Address.to_int dst);
  t.events <- t.events + 1

let events t = t.events
let to_hex t = Printf.sprintf "%016Lx" t.hash
let equal a b = Int64.equal a.hash b.hash && a.events = b.events
