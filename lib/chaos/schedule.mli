(** Seeded fault schedules.

    A schedule is an engine-neutral description of what goes wrong during
    a run: probabilistic link edicts, a partition window, a backend crash
    with its restart time, and straggler clock skew.  [generate] is a
    pure function of [(seed, n_servers)], so a failing schedule is fully
    identified by its seed. *)

type event =
  | Edict of Net.Faults.edict
  | Partition of { group : int list; from_us : int; until_us : int }
      (** server-id group cut from the rest (including the epoch manager)
          during the window *)
  | Crash of { node : int; at_us : int; restart_at_us : int }
      (** backend-role crash and restart; engines without a recovery path
          interpret it as a stall window *)
  | Skew of { node : int; at_us : int; skew_us : int }
      (** step the node's local clock by [skew_us] (negative = backwards,
          which plateaus a monotone clock) *)

type t = { seed : int; n_servers : int; events : event list }

val generate : seed:int -> n_servers:int -> t
(** A mixed random schedule: 1-3 edicts, an optional partition window, an
    optional crash, 0-2 skew steps.  Every window closes before the
    drain horizon. *)

val generate_replicated : seed:int -> n_servers:int -> t
(** The replication battery's schedule shape: crash {e every} backend
    exactly once, in a seed-determined order, staggered ~25ms apart so at
    most one backend is down (or catching up) at any moment — the "any
    single backend loss" regime — plus 0-1 edicts and 0-2 skews.  No
    partition windows: the failure monitor is a crash detector, not a
    membership service. *)

val has_crash : t -> bool

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
