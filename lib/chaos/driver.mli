(** Run seeded fault {!Schedule}s against an engine and check the chaos
    invariants.

    For each schedule the driver performs three runs of the same scripted
    increment workload: the faulted run, a byte-for-byte replay (same
    seed, fresh cluster — their {!Trace} digests must be identical), and
    a crash-free reference.  It then checks:

    - {b completion soundness}: every submitted transaction eventually
      replied, despite loss / partitions / crashes;
    - {b state oracle}: the committed per-key totals equal the
      closed-form sum of the submitted increments, and equal the
      reference run's state (2PL, which may abandon transactions under
      induced lock-wait timeouts, is held to "at or below the oracle"
      when give-ups occurred);
    - {b determinism}: same seed, same trace hash;
    - {b monotone probes}: per-key value watermarks (ALOHA) and
      committed counters sampled during the run never regress — probes
      on a crashing node are excluded, since recovery rebuilds from the
      checkpoint and the durable log;
    - {b at-most-once evaluation}: in crash-free ALOHA runs,
      [fcc.computed <= aloha.functors_installed]. *)

module type TARGET = sig
  include Kernel.Intf.ENGINE

  val transport : Net.Faults.transport
  val set_trace :
    cluster -> (src:Net.Address.t -> dst:Net.Address.t -> unit) -> unit
  val drop_stats : cluster -> Net.Network.drop_stats
  val apply : cluster -> faults:Net.Faults.t -> Schedule.event -> unit
  val probes :
    cluster ->
    keys:string list ->
    exclude_nodes:int list ->
    (string * (unit -> int)) list
end

module Aloha_target : TARGET with type cluster = Alohadb.Cluster.t
module Calvin_target : TARGET
module Twopl_target : TARGET

type packed = Target : (module TARGET with type cluster = 'c) -> packed

val targets : (string * packed) list
(** [("aloha", …); ("calvin", …); ("twopl", …)]. *)

val target_of_name : string -> packed option

type report = {
  seed : int;
  engine : string;
  compute : string option;
      (** compute-phase mode the runs used (engine-specific; [None] =
          engine default) *)
  replicas : int;  (** replication degree the runs used (1 = none) *)
  fastpath : bool;
      (** the runs used the coordination-free commit lane for commutative
          transactions (the chaos workload is all-commutative, so every
          transaction takes it) *)
  trace_hash : string;
  trace_events : int;
  committed : int;
  submitted : int;  (** scripted transactions in the workload *)
  availability : (int * int) list;
      (** [(t_us, committed)] sampled every probe period during the
          faulted run — the availability-under-chaos time series *)
  drops : int;  (** total messages lost to injected faults *)
  drop_detail : Net.Network.drop_stats;
      (** the same drops broken out by cause, for CI artifacts *)
  timeline : string list;
      (** the faulted run's epoch-ledger JSONL segment
          ([Obs.Ledger.to_lines]) when [obs] carried a ledger; [[]]
          otherwise.  Append to TIMELINE.jsonl via
          [Harness.Report.write_timeline]. *)
  violations : string list;  (** empty = all invariants held *)
}

val passed : report -> bool

val run_schedule :
  ?compute:string -> ?replicas:int -> ?fastpath:bool -> ?obs:Obs.Ctl.t ->
  packed -> schedule:Schedule.t -> report
(** [compute] selects an engine-specific compute mode (ALOHA:
    "ondemand" / "pool" / "planned") for all three runs of the schedule.
    [replicas] sets the replication degree (engines without replication
    ignore it); the crash-free reference runs at the {e same} degree, so
    the state check reads "a replicated faulted run converges to a
    replicated fault-free run" — behaviour-neutrality of replication
    itself versus k = 1 is the differential test's job.  [obs] attaches
    an observability handle to the {e faulted} run only (tracing is
    behaviour-neutral, so the determinism check still holds against the
    bare replay); a ledger on it fills [report.timeline]. *)

val run_seed :
  ?compute:string -> ?replicas:int -> ?fastpath:bool -> ?obs:Obs.Ctl.t ->
  packed -> seed:int -> n_servers:int -> report
(** [run_schedule] on [Schedule.generate ~seed ~n_servers] — or, when
    [replicas > 1], on [Schedule.generate_replicated ~seed ~n_servers]
    (every backend crashed once, staggered). *)

val trace_hash_of :
  ?compute:string -> ?replicas:int -> ?fastpath:bool -> packed ->
  schedule:Schedule.t -> string
(** One faulted run, digest only (replay verification in tests). *)
