module Registry = Functor_cc.Registry
module Value = Functor_cc.Value

let read_of reads k = try List.assoc k reads with Not_found -> None

let arith prev arg = function
  | Txn.Add _ -> prev + arg
  | Txn.Subtr _ -> prev - arg
  | Txn.Max _ -> if arg > prev then arg else prev
  | Txn.Min _ -> if arg < prev then arg else prev
  | _ -> assert false

exception Aborted

let writes ~registry ~version ~reads ops =
  let eval_handler ~key handler read_set args =
    match Registry.find registry handler with
    | None -> raise Aborted
    | Some h ->
        let ctx =
          { Registry.key;
            version;
            reads = List.map (fun k -> (k, read_of reads k)) read_set;
            args }
        in
        h ctx
  in
  let one (key, op) =
    match op with
    | Txn.Put v -> [ (key, v) ]
    | Txn.Delete ->
        invalid_arg "Kernel.Apply: Delete has no static stored-proc form"
    | Txn.Add d | Txn.Subtr d | Txn.Max d | Txn.Min d ->
        (* Matches the ALOHA built-ins: total, absent key counts as 0. *)
        let prev =
          match read_of reads key with
          | None -> 0
          | Some v -> Value.to_int v
        in
        [ (key, Value.int (arith prev d op)) ]
    | Txn.Call { handler; read_set; args }
    | Txn.Det { handler; read_set; args; _ } -> (
        match eval_handler ~key handler read_set args with
        | Registry.Commit v -> [ (key, v) ]
        | Registry.Abort -> raise Aborted
        | Registry.Delete ->
            invalid_arg
              "Kernel.Apply: Delete has no static stored-proc form"
        | Registry.Commit_det (v, deps) ->
            (key, v)
            :: List.filter_map
                 (fun (dk, dw) ->
                   match dw with
                   | Registry.Dep_put w -> Some (dk, w)
                   | Registry.Dep_skip -> None
                   | Registry.Dep_delete ->
                       invalid_arg
                         "Kernel.Apply: Dep_delete has no static \
                          stored-proc form")
                 deps)
  in
  match List.concat_map one ops with
  | ws -> Some ws
  | exception Aborted -> None
