let run_window ~sim ~metrics ?obs ~warmup_us ~measure_us () =
  (match obs with
  | Some ctl -> Obs.Ctl.arm ctl ~sim ~for_us:(warmup_us + measure_us)
  | None -> ());
  Sim.Engine.run ~until:(Sim.Engine.now sim + warmup_us) sim;
  Sim.Metrics.reset metrics;
  (match obs with Some ctl -> Obs.Ctl.measure_reset ctl | None -> ());
  Sim.Engine.run ~until:(Sim.Engine.now sim + measure_us) sim

let run (type c) (module E : Intf.ENGINE with type cluster = c)
    ~(cluster : c) ~gen ~arrival ?on_reply ?obs ?(warmup_us = 150_000)
    ?(measure_us = 400_000) ?(seed = 7) () =
  let sim = E.sim cluster in
  let metrics = E.metrics cluster in
  let rng = Sim.Rng.create seed in
  let observe =
    match on_reply with
    | None -> fun ~fe:_ (_ : Txn.reply) -> ()
    | Some f -> f
  in
  Arrivals.install ~sim ~rng ~n_fes:(E.n_servers cluster) ~arrival
    ~submit:(fun ~fe ~done_k ->
      E.submit cluster ~fe (gen ~fe) ~k:(fun reply ->
          observe ~fe reply;
          done_k ()));
  run_window ~sim ~metrics ?obs ~warmup_us ~measure_us ();
  Result.extract ~metrics ~measure_us ~committed_key:E.committed_key
    ~latency_key:E.latency_key ~abort_keys:E.abort_keys
    ~counter_keys:E.counter_keys ~stage_keys:E.stage_keys

module Make (E : Intf.ENGINE) = struct
  let run ~cluster ~gen ~arrival ?on_reply ?obs ?warmup_us ?measure_us ?seed
      () =
    run
      (module E : Intf.ENGINE with type cluster = E.cluster)
      ~cluster ~gen ~arrival ?on_reply ?obs ?warmup_us ?measure_us ?seed ()
end
